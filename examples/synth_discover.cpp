// Re-runs the program-synthesis step of Appendices 5 and 7: enumerate the
// affine-loop hole space of the inter-unit travel-path template against the
// all-pairs-meet specification, for both cross-link families, and print the
// discovered programs as pseudo-code.
#include <cstdio>

#include "synth/inter_unit_spec.hpp"

namespace {

void discover(const char* title, qfto::CrossLinkFamily family,
              std::initializer_list<int> sizes) {
  using namespace qfto;
  const Sketch sketch = make_travel_path_sketch();
  const auto sols = sketch.solve_all([&](const HoleAssignment& a) {
    const TravelPathParams p = decode_travel_path(a);
    for (int l : sizes) {
      if (travel_path_coverage(l, family, p) < 1.0) return false;
    }
    return true;
  });
  std::printf("%s\n", title);
  std::printf("  hole space: %lld candidates, %lld examined, %zu solutions\n",
              static_cast<long long>(sketch.space_size()),
              static_cast<long long>(sketch.candidates_tried()), sols.size());
  for (const auto& a : sols) {
    const TravelPathParams p = decode_travel_path(a);
    std::printf(
        "  for i in 0 .. %d*L%+d - 1:\n"
        "      CPHASE on all open cross links\n"
        "      intra_swap(line A, parity = (i + %d) mod 2)\n"
        "      intra_swap(line B, parity = (i + %d) mod 2)   %s\n",
        p.rounds_coeff, p.rounds_offset, p.phase_a, p.phase_b,
        p.phase_a == p.phase_b ? "// synced" : "// one step late");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  discover("Sycamore inter-unit links (positions differ by 1; equal-position "
           "pairs excluded, fixed by swap-out):",
           qfto::CrossLinkFamily::kOffsetByOne, {6, 8, 10, 12});
  discover("2D-grid / lattice-surgery vertical links (equal positions):",
           qfto::CrossLinkFamily::kEqualPosition, {5, 6, 8, 9, 12});
  std::printf("Finding: the Sycamore family admits synced travel paths; the "
              "equal-position family forces the second line to start one step "
              "late — exactly the paper's Appendix 5 vs 7 distinction.\n");
  return 0;
}
