// Quantum Phase Estimation — the paper's flagship near-term consumer of the
// QFT kernel (Fig. 1). We estimate the eigenphase of U = RZ(2*pi*phi) on a
// 10-qubit heavy-hex device (N multiple of 5) whose counting register runs
// the *hardware-mapped inverse QFT* produced by our heavy-hex mapper.
//
// Circuit: counting register in uniform superposition, controlled-U^{2^j}
// phase kicks (CPHASE gates between counting qubit j and the eigenstate
// qubit), then the inverse QFT and readout of the most likely outcome.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "circuit/inverse.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "sim/statevector.hpp"

int main() {
  using namespace qfto;
  constexpr std::int32_t counting = 10;  // heavy-hex size (multiple of 5)
  const double phi = 0.314159;           // phase to estimate, in [0,1)

  // Hardware inverse QFT for the counting register: map the forward kernel
  // analytically (and verified, via the pipeline), then invert it (reverse +
  // conjugate) — linear depth and hardware compliance carry over verbatim.
  const MappedCircuit fwd = map_qft("heavy_hex", counting).mapped;
  const MappedCircuit inv_qft = inverse_mapped(fwd);

  // State preparation on the physical register. The eigenstate qubit of QPE
  // only contributes a phase kick exp(2*pi*i*phi*2^j) per counting qubit j,
  // so we prepare the kicked product state directly (standard QPE algebra)
  // and let the mapped inverse QFT do all the quantum work.
  const std::int32_t np = inv_qft.num_physical();
  StateVector sv(np);
  auto& amps = sv.amplitudes();
  amps.assign(amps.size(), Amplitude{0.0, 0.0});
  const std::uint64_t dim = std::uint64_t{1} << counting;
  const double norm = 1.0 / std::sqrt(static_cast<double>(dim));
  for (std::uint64_t x = 0; x < dim; ++x) {
    // Counting qubit j controls U^{2^j}: the register accumulates the phase
    // exp(2*pi*i * phi * x). Our kernel convention returns the result
    // bit-reversed, undone at readout below.
    double phase = 0.0;
    for (std::int32_t j = 0; j < counting; ++j) {
      if (x & (std::uint64_t{1} << j)) {
        phase += 2.0 * M_PI * phi * std::pow(2.0, j);
      }
    }
    // Embed logical x through the inverse kernel's *initial* mapping.
    std::uint64_t idx = 0;
    for (std::int32_t j = 0; j < counting; ++j) {
      if (x & (std::uint64_t{1} << j)) idx |= std::uint64_t{1} << inv_qft.initial[j];
    }
    amps[idx] = std::polar(norm, phase);
  }

  sv.apply(inv_qft.circuit);

  // Read out through the final mapping; the peak encodes round(phi * 2^n).
  std::uint64_t best = 0;
  double best_p = -1.0;
  for (std::uint64_t y = 0; y < dim; ++y) {
    std::uint64_t idx = 0;
    for (std::int32_t j = 0; j < counting; ++j) {
      if (y & (std::uint64_t{1} << j)) {
        idx |= std::uint64_t{1} << inv_qft.final_mapping[j];
      }
    }
    const double p = std::norm(sv.amplitudes()[idx]);
    if (p > best_p) {
      best_p = p;
      best = y;
    }
  }
  // Outcome bits arrive most-significant-first in our convention.
  std::uint64_t rev = 0;
  for (std::int32_t j = 0; j < counting; ++j) {
    if (best & (std::uint64_t{1} << j)) rev |= std::uint64_t{1} << (counting - 1 - j);
  }
  const double estimate = static_cast<double>(rev) / static_cast<double>(dim);
  const double err = std::min(std::abs(estimate - phi),
                              1.0 - std::abs(estimate - phi));

  std::printf("QPE with hardware-mapped inverse QFT on heavy-hex-%d\n", counting);
  std::printf("  true phase      : %.6f\n", phi);
  std::printf("  estimate        : %.6f  (outcome %llu / %llu, prob %.3f)\n",
              estimate, static_cast<unsigned long long>(rev),
              static_cast<unsigned long long>(dim), best_p);
  std::printf("  |error|         : %.6f (resolution 1/%llu = %.6f)\n", err,
              static_cast<unsigned long long>(dim), 1.0 / dim);
  return err <= 1.0 / dim ? 0 : 1;
}
