// Quickstart: compile a 16-qubit QFT for a 4x4 Google Sycamore through the
// unified MapperPipeline, and print the numbers the paper's evaluation
// reports (depth, gate counts).
//
//   $ ./quickstart
//
// Walks through the whole public API surface: the one-call map_qft facade
// (architecture factory + mapper + static checker behind it), the engine
// registry, and the simulation-based equivalence oracle.
#include <cstdio>
#include <fstream>

#include "pipeline/mapper_pipeline.hpp"
#include "qasm/qasm.hpp"
#include "verify/equivalence.hpp"

int main() {
  using namespace qfto;
  constexpr std::int32_t n = 16;  // 4x4 device

  // 1. One call: build the backend model, compile the QFT kernel for it and
  //    statically verify the result (every CPHASE on a coupled pair, every
  //    logical pair exactly once with the QFT angle, relaxed ordering
  //    windows respected, final mapping consistent). The mapper is
  //    analytical: no search, no recompilation across sizes.
  const MapResult result = map_qft("sycamore", n);
  if (!result.check.ok) {
    std::printf("verification FAILED: %s\n", result.check.error.c_str());
    return 1;
  }

  // 2. Any registered engine is one string away — these are the paper's
  //    four structured mappers, the three baselines, and the grid target.
  std::printf("registered engines:");
  for (const auto& name : MapperPipeline::global().engine_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // 3. Dynamically verify: the hardware circuit applies the same unitary as
  //    the textbook QFT on random states (exact up to 1e-9).
  const double err = mapped_equivalence_error(result.mapped);

  std::printf("QFT-%d on %s\n", n, result.graph.name().c_str());
  std::printf("  depth (cycles)   : %lld  (%.2f per qubit)\n",
              static_cast<long long>(result.check.depth),
              static_cast<double>(result.check.depth) / n);
  std::printf("  gate counts      : %s\n",
              result.check.counts.to_string().c_str());
  std::printf("  compile time     : %.4f s (+%.4f s verify)\n",
              result.timings.map_seconds, result.timings.check_seconds);
  std::printf("  simulation error : %.2e\n", err);
  std::printf("  initial mapping  : logical i -> physical %d..%d (unit order)\n",
              result.mapped.initial.front(), result.mapped.initial.back());

  // 4. Hand the kernel to any other stack as OpenQASM 2.0.
  std::ofstream("qft16_sycamore.qasm") << to_qasm(result.mapped);
  std::printf("  wrote qft16_sycamore.qasm (OpenQASM 2.0)\n");
  return err < 1e-9 ? 0 : 1;
}
