// Quickstart: compile a 16-qubit QFT for a 4x4 Google Sycamore, verify it,
// and print the numbers the paper's evaluation reports (depth, gate counts).
//
//   $ ./quickstart
//
// Walks through the whole public API surface: architecture factory, mapper,
// static checker, scheduler, and the simulation-based equivalence oracle.
#include <cstdio>
#include <fstream>

#include "arch/sycamore.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/scheduler.hpp"
#include "mapper/sycamore_mapper.hpp"
#include "qasm/qasm.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

int main() {
  using namespace qfto;
  constexpr std::int32_t m = 4;  // 4x4 device, N = 16 qubits

  // 1. Build the backend model and compile the QFT kernel for it. The mapper
  //    is analytical: no search, no recompilation across sizes.
  const CouplingGraph device = make_sycamore(m);
  const MappedCircuit mapped = map_qft_sycamore(m);

  // 2. Statically verify the hardware circuit: every CPHASE on a coupled
  //    pair, every logical pair exactly once with the QFT angle, relaxed
  //    ordering windows respected, final mapping consistent.
  const QftCheckResult check = check_qft_mapping(mapped, device);
  if (!check.ok) {
    std::printf("verification FAILED: %s\n", check.error.c_str());
    return 1;
  }

  // 3. Dynamically verify: the hardware circuit applies the same unitary as
  //    the textbook QFT on random states (exact up to 1e-9).
  const double err = mapped_equivalence_error(mapped);

  std::printf("QFT-%d on %s\n", m * m, device.name().c_str());
  std::printf("  depth (cycles)   : %lld  (%.2f per qubit)\n",
              static_cast<long long>(check.depth),
              static_cast<double>(check.depth) / (m * m));
  std::printf("  gate counts      : %s\n", check.counts.to_string().c_str());
  std::printf("  simulation error : %.2e\n", err);
  std::printf("  initial mapping  : logical i -> physical %d..%d (unit order)\n",
              mapped.initial.front(), mapped.initial.back());

  // 4. Hand the kernel to any other stack as OpenQASM 2.0.
  std::ofstream("qft16_sycamore.qasm") << to_qasm(mapped);
  std::printf("  wrote qft16_sycamore.qasm (OpenQASM 2.0)\n");
  return err < 1e-9 ? 0 : 1;
}
