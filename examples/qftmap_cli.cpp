// qftmap — command-line QFT kernel compiler.
//
//   qftmap --arch lnn       --n 64            [--out kernel.qasm]
//   qftmap --arch heavyhex  --n 50
//   qftmap --arch sycamore  --m 6   [--strict-ie]
//   qftmap --arch lattice   --m 12  [--synced]
//   qftmap --arch grid      --m 8
//   ... [--aqft K] [--cnot-basis] [--quiet]
//
// Compiles the QFT for the chosen backend, verifies it (static checker;
// simulation too when small enough), prints the resource report, and
// optionally writes OpenQASM 2.0.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/latency_model.hpp"
#include "arch/line.hpp"
#include "arch/grid.hpp"
#include "arch/sycamore.hpp"
#include "circuit/transforms.hpp"
#include "common/timer.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lattice_mapper.hpp"
#include "mapper/lnn_mapper.hpp"
#include "mapper/sycamore_mapper.hpp"
#include "qasm/qasm.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --arch {lnn|heavyhex|sycamore|lattice|grid} "
      "(--n N | --m M) [--out FILE] [--strict-ie] [--synced] [--aqft K] "
      "[--cnot-basis] [--quiet]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qfto;
  std::string arch, out_path;
  std::int32_t n = -1, m = -1, aqft = -1;
  bool strict_ie = false, synced = false, cnot_basis = false, quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (a == "--arch") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      arch = v;
    } else if (a == "--n") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      n = std::atoi(v);
    } else if (a == "--m") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      m = std::atoi(v);
    } else if (a == "--aqft") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      aqft = std::atoi(v);
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_path = v;
    } else if (a == "--strict-ie") {
      strict_ie = true;
    } else if (a == "--synced") {
      synced = true;
    } else if (a == "--cnot-basis") {
      cnot_basis = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (arch.empty()) return usage(argv[0]);

  try {
    WallTimer timer;
    MappedCircuit mc;
    CouplingGraph graph;
    LatencyFn latency = unit_latency;
    if (arch == "lnn") {
      if (n <= 0) return usage(argv[0]);
      mc = map_qft_lnn(n);
      graph = make_line(n);
    } else if (arch == "heavyhex") {
      if (n <= 0) return usage(argv[0]);
      mc = map_qft_heavy_hex(n);
      graph = make_heavy_hex(heavy_hex_layout(n));
    } else if (arch == "sycamore") {
      if (m <= 0) return usage(argv[0]);
      mc = map_qft_sycamore(m, strict_ie);
      graph = make_sycamore(m);
    } else if (arch == "lattice") {
      if (m <= 0) return usage(argv[0]);
      LatticeMapperOptions opts;
      opts.strict_ie = strict_ie;
      if (synced) opts.phase_offset = 0;
      mc = map_qft_lattice(m, opts);
      graph = make_lattice_surgery_rotated(m);
    } else if (arch == "grid") {
      if (m <= 0) return usage(argv[0]);
      LatticeMapperOptions opts;
      opts.strict_ie = strict_ie;
      if (synced) opts.phase_offset = 0;
      mc = map_qft_grid2d(m, opts);
      graph = make_grid(m, m);
    } else {
      return usage(argv[0]);
    }
    const double compile_s = timer.seconds();
    if (arch == "lattice") latency = lattice_latency(graph);

    const auto check = check_qft_mapping(mc, graph, latency);
    if (!check.ok) {
      std::fprintf(stderr, "INTERNAL ERROR — verification failed: %s\n",
                   check.error.c_str());
      return 1;
    }
    double sim_err = -1.0;
    if (mc.num_physical() <= 14) sim_err = mapped_equivalence_error(mc);

    if (aqft > 0) mc.circuit = prune_small_rotations(mc.circuit, aqft);
    if (cnot_basis) mc.circuit = decompose_to_cnot(mc.circuit);

    if (!quiet) {
      std::printf("backend        : %s (%d physical qubits)\n",
                  graph.name().c_str(), graph.num_qubits());
      std::printf("depth          : %lld cycles (%.2f per qubit)\n",
                  static_cast<long long>(check.depth),
                  static_cast<double>(check.depth) / graph.num_qubits());
      std::printf("gates          : %s\n", check.counts.to_string().c_str());
      std::printf("compile time   : %.4f s\n", compile_s);
      if (sim_err >= 0) std::printf("simulation err : %.2e\n", sim_err);
      if (aqft > 0 || cnot_basis) {
        std::printf("post-transform : %s\n",
                    count_gates(mc.circuit).to_string().c_str());
      }
    }
    if (!out_path.empty()) {
      std::ofstream f(out_path);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
      f << to_qasm(mc);
      if (!quiet) std::printf("wrote          : %s\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
