// qftmap — command-line QFT kernel compiler over the MapperPipeline registry.
//
//   qftmap --list
//   qftmap --arch lnn       --n 64            [--out kernel.qasm]
//   qftmap --arch heavy_hex --n 50
//   qftmap --arch sycamore  --m 6   [--strict-ie]
//   qftmap --arch lattice   --m 12  [--synced]
//   qftmap --arch sabre     --n 16  [--trials T]
//   qftmap --arch satmap    --n 5   [--budget SECONDS] [--solver BACKEND]
//                                   [--monolithic-sat] [--dump-cnf FILE.cnf]
//   qftmap --arch sycamore  --input circuit.qasm
//   qftmap --device examples/devices/grid9-noisy.json --input circuit.qasm
//                                   [--objective fidelity]
//   ... [--aqft K] [--cnot-basis] [--quiet]
//
// Every engine is selected by its registry name (`--list` enumerates them);
// the pipeline builds the native coupling graph, maps, and verifies with the
// static checker. Small instances are additionally simulated. Output can be
// written as OpenQASM 2.0.
//
// `--device FILE.json` loads a calibrated device description
// (arch/device_model.hpp documents the JSON schema): the routed engines map
// onto its coupling graph, verification charges its latency table, and the
// report gains the calibrated `log10 fidelity` line. Defaults `--arch` to
// `sabre` — a device file, not a topology name, then selects the scenario.
// `--objective fidelity` makes SABRE optimize expected log-success instead
// of depth.
//
// `--input FILE.qasm` switches to general-circuit ingestion: the file is
// parsed with from_qasm and routed onto the selected architecture through
// MapperPipeline::run_circuit (structured engines contribute their native
// topology and route with SABRE; satmap runs its SAT router), then verified
// gate-for-gate by the general checker — any OpenQASM 2.0 producer can feed
// this, not just our own QFT generator.
//
// SATMAP runs on a pluggable SAT backend (`--list-solvers` enumerates the
// registry; default "cdcl"). `--dump-cnf` exports the instance in flight
// when the run ended — most usefully a TLE'd probe — as DIMACS CNF for
// replay in external solvers.
//
// `--serve` switches to the long-running mode: newline-delimited JSON
// requests on stdin are dispatched through the async MappingService
// (priority queue, per-job deadlines, result cache) and JSON responses
// stream to stdout — see src/service/serve.hpp for the protocol.
//
// `--serve --listen HOST:PORT` serves the same protocol over TCP to any
// number of concurrent clients (plus a minimal HTTP adapter: GET /metrics,
// POST /map) — see src/service/net_server.hpp. `--max-inflight` bounds
// admitted jobs (excess is shed in-band); `--cache-file FILE` loads the
// result cache at startup and saves it crash-safely (temp file + atomic
// rename) after every graceful drain, so a warmed cache survives restarts.
// SIGTERM (or stdin EOF on an interactive stdin) drains gracefully: stop
// accepting, finish in-flight work, save the cache, then exit 0.
//
// `--faults SPEC` arms the fault-injection framework (same grammar as the
// QFTO_FAULTS environment variable — see src/common/fault.hpp) for chaos
// drills against a live server.
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "arch/device_model.hpp"
#include "circuit/stats.hpp"
#include "circuit/transforms.hpp"
#include "common/fault.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "qasm/qasm.hpp"
#include "sat/federation/ipasir_bridge.hpp"
#include "sat/solver_interface.hpp"
#include "service/mapping_service.hpp"
#include "service/net_server.hpp"
#include "service/serve.hpp"
#include "verify/equivalence.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --arch ENGINE (--n N | --m M | --input FILE.qasm) "
      "[--device FILE.json] [--objective depth|fidelity] "
      "[--out FILE] [--strict-ie] "
      "[--synced] [--trials T] [--budget SECONDS] [--solver BACKEND] "
      "[--solver-plugin [NAME=]LIB.so] [--portfolio] [--lanes L] "
      "[--linear-descent] "
      "[--monolithic-sat] [--dump-cnf FILE] [--aqft K] [--cnot-basis] "
      "[--quiet]\n       %s --serve [--threads T] [--cache-entries N] "
      "[--cache-ttl-seconds S] "
      "[--listen HOST:PORT] [--max-inflight N] [--max-pending N] "
      "[--drain-seconds S] [--cache-file FILE] [--faults SPEC]\n"
      "       %s --list | --list-solvers\n",
      argv0, argv0, argv0);
  return 2;
}

// SIGTERM/SIGINT handler target. request_stop() only stores a lock-free
// atomic, so calling it here is async-signal-safe.
qfto::net::NetServer* g_server = nullptr;
volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) {
  g_stop_requested = 1;
  if (g_server != nullptr) g_server->request_stop();
}

/// stdin-EOF drain only applies when stdin is a real peer (terminal, pipe,
/// socket). A detached daemon launched with `</dev/null` would otherwise
/// read instant EOF and drain before serving anything.
bool stdin_is_watchable() {
  if (isatty(STDIN_FILENO)) return true;
  struct stat st{};
  if (fstat(STDIN_FILENO, &st) != 0) return false;
  return S_ISFIFO(st.st_mode) || S_ISSOCK(st.st_mode);
}

/// Loads `path` into the service cache; a missing file is a cold start, not
/// an error. Returns false only on a malformed file.
bool load_cache_file(qfto::MappingService& service, const std::string& path) {
  std::ifstream in(path);
  if (!in) return true;  // cold start
  std::string error;
  if (!service.cache().load(in, &error)) {
    std::fprintf(stderr, "warning: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

/// Saves crash-safely (temp file + fsync + atomic rename — see
/// ResultCache::save_file); on failure the previous file is untouched.
void save_cache_file(qfto::MappingService& service, const std::string& path) {
  std::string error;
  if (!service.cache().save_file(path, &error)) {
    std::fprintf(stderr, "warning: %s\n", error.c_str());
  }
}

int list_engines() {
  const auto& pipeline = qfto::MapperPipeline::global();
  for (const auto& name : pipeline.engine_names()) {
    std::printf("%-14s %s\n", name.c_str(),
                pipeline.at(name).description().c_str());
  }
  return 0;
}

int list_solvers() {
  // Provenance per backend so operators can audit what a replica loaded:
  // built-ins against the binary, plugins against their shared-object path
  // and IPASIR signature string.
  for (const auto& row : qfto::sat::backend_provenance()) {
    if (row.plugin) {
      std::printf("%-14s plugin    %s  [%s]\n", row.name.c_str(),
                  row.path.c_str(), row.signature.c_str());
    } else {
      std::printf("%-14s built-in\n", row.name.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qfto;
  std::string arch, out_path, input_path;
  std::int32_t n = -1, m = -1, aqft = -1;
  MapOptions opts;
  bool cnot_basis = false, quiet = false, serve = false;
  MappingService::Options service_opts;
  net::NetServer::Options net_opts;
  std::string listen_spec, cache_file;

  // IPASIR plugins from the environment load before any argument acts (so
  // `--solver`, `--list-solvers` and `--serve` all see them). A broken spec
  // is an operator error — fail loudly, never map with a silently-missing
  // backend.
  try {
    sat::load_solver_plugins_from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "QFTO_SOLVER_PLUGINS: %s\n", e.what());
    return 2;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (a == "--list") {
      return list_engines();
    } else if (a == "--list-solvers") {
      return list_solvers();
    } else if (a == "--serve") {
      serve = true;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      service_opts.num_threads = std::atoi(v);
    } else if (a == "--cache-entries") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      service_opts.cache_capacity =
          static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--cache-ttl-seconds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      service_opts.cache_ttl_seconds = std::atof(v);
    } else if (a == "--listen") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      listen_spec = v;
    } else if (a == "--max-inflight") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      net_opts.max_inflight = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--max-pending") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      net_opts.max_pending_per_conn = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--drain-seconds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      net_opts.drain_seconds = std::atof(v);
    } else if (a == "--cache-file") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cache_file = v;
    } else if (a == "--faults") {
      // Fault injection for chaos drills: same spec grammar as QFTO_FAULTS
      // (e.g. "net.send.fail=prob:0.1;cache.save.rename=once"). Rejecting a
      // bad spec up front beats silently running an un-chaosed drill.
      const char* v = next();
      if (!v) return usage(argv[0]);
      std::string error;
      if (!fault::compiled_in()) {
        std::fprintf(stderr,
                     "--faults: fault injection compiled out "
                     "(rebuild with -DQFTO_FAULTS=ON)\n");
        return 2;
      }
      if (!fault::arm_spec(v, &error)) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        return 2;
      }
    } else if (a == "--arch") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      arch = v;
      if (arch == "heavyhex") arch = "heavy_hex";  // legacy spelling
    } else if (a == "--device") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      try {
        opts.device = std::make_shared<const DeviceModel>(
            DeviceModel::load_file(v));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--device: %s\n", e.what());
        return 2;
      }
    } else if (a == "--objective") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "depth") == 0) {
        opts.objective = Objective::kDepth;
      } else if (std::strcmp(v, "fidelity") == 0) {
        opts.objective = Objective::kFidelity;
      } else {
        return usage(argv[0]);
      }
    } else if (a == "--n") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      n = std::atoi(v);
    } else if (a == "--m") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      m = std::atoi(v);
    } else if (a == "--aqft") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      aqft = std::atoi(v);
    } else if (a == "--trials") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.sabre.trials = std::atoi(v);
    } else if (a == "--budget") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.satmap.time_budget_seconds = std::atof(v);
    } else if (a == "--solver") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.satmap.solver = v;
    } else if (a == "--solver-plugin") {
      // Loaded immediately, so it works in front of --list-solvers and
      // --solver on the same command line. Repeatable.
      const char* v = next();
      if (!v) return usage(argv[0]);
      try {
        sat::load_solver_plugin(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--solver-plugin: %s\n", e.what());
        return 2;
      }
    } else if (a == "--portfolio") {
      opts.satmap.portfolio = true;
    } else if (a == "--lanes") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.satmap.lanes = std::atoi(v);
      if (opts.satmap.lanes < 1) return usage(argv[0]);
    } else if (a == "--linear-descent") {
      opts.satmap.core_guided = false;
    } else if (a == "--monolithic-sat") {
      opts.satmap.incremental = false;
    } else if (a == "--dump-cnf") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.satmap.dump_cnf_path = v;
    } else if (a == "--input") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      input_path = v;
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_path = v;
    } else if (a == "--strict-ie") {
      opts.strict_ie = true;
    } else if (a == "--synced") {
      opts.lattice_phase_offset = 0;
    } else if (a == "--cnot-basis") {
      cnot_basis = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (serve) {
    MappingService service(service_opts);
    if (!cache_file.empty()) load_cache_file(service, cache_file);
    int rc = 0;
    if (listen_spec.empty()) {
      rc = run_serve_loop(std::cin, std::cout, service);
    } else {
      net::HostPort hp;
      std::string error;
      if (!net::parse_host_port(listen_spec, hp, error)) {
        std::fprintf(stderr, "--listen: %s\n", error.c_str());
        return 2;
      }
      net_opts.host = hp.host;
      net_opts.port = hp.port;
      try {
        net::NetServer server(service, net_opts);
        g_server = &server;
        std::signal(SIGTERM, handle_stop_signal);
        std::signal(SIGINT, handle_stop_signal);
        // The smoke scripts and humans both need the resolved address —
        // port 0 binds an ephemeral port.
        std::fprintf(stderr, "listening on %s:%u\n", server.host().c_str(),
                     static_cast<unsigned>(server.port()));
        std::thread stdin_watch;
        if (stdin_is_watchable()) {
          stdin_watch = std::thread([&server] {
            // Drain when the operator closes our stdin (^D, supervisor pipe
            // teardown) — the stdio-serve convention, kept over TCP.
            while (std::cin.get() != std::char_traits<char>::eof()) {
            }
            server.request_stop();
          });
          stdin_watch.detach();  // blocked in read(); exits with the process
        }
        server.run();
        server.stop_and_drain();
        g_server = nullptr;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
    if (!cache_file.empty()) save_cache_file(service, cache_file);
    return rc;
  }
  // A device file alone selects the scenario: route onto it with SABRE.
  if (arch.empty() && opts.device) arch = "sabre";
  if (arch.empty()) return usage(argv[0]);
  if (n <= 0 && m > 0) n = m * m;  // square backends take --m for convenience
  // --input is the size authority for general circuits; mixing it with an
  // explicit size is ambiguous, so it's rejected like a missing size.
  if (input_path.empty() ? n <= 0 : n > 0) return usage(argv[0]);

  try {
    Circuit input;  // parsed --input circuit; empty on the QFT path
    MapResult result;
    if (!input_path.empty()) {
      std::ifstream in(input_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      input = from_qasm(text.str());
      result = map_circuit(arch, input, opts);
    } else {
      result = map_qft(arch, n, opts);
    }
    if (!result.check.ok) {
      std::fprintf(stderr, "INTERNAL ERROR — verification failed: %s\n",
                   result.check.error.c_str());
      return 1;
    }
    double sim_err = -1.0;
    if (result.mapped.num_physical() <= 14) {
      sim_err = mapped_equivalence_error(
          result.mapped, 4, 0x51ab5,
          input_path.empty() ? nullptr : &input);
    }

    if (aqft > 0) {
      result.mapped.circuit = prune_small_rotations(result.mapped.circuit, aqft);
    }
    if (cnot_basis) {
      result.mapped.circuit = decompose_to_cnot(result.mapped.circuit);
    }

    if (!quiet) {
      std::printf("engine         : %s\n", result.engine.c_str());
      if (!input_path.empty()) {
        std::printf("input          : %s (%zu gates over %d qubits)\n",
                    input_path.c_str(), input.size(), input.num_qubits());
      }
      std::printf("backend        : %s (%d physical qubits)\n",
                  result.graph.name().c_str(), result.graph.num_qubits());
      if (opts.device) {
        std::printf("device         : %s (%d qubits, %zu edges, "
                    "fingerprint %016llx)\n",
                    opts.device->name().c_str(), opts.device->num_qubits(),
                    opts.device->edges().size(),
                    static_cast<unsigned long long>(
                        opts.device->fingerprint()));
      }
      if (result.n != result.requested_n) {
        std::printf("size           : requested %d, mapped native %d\n",
                    result.requested_n, result.n);
      }
      std::printf("depth          : %lld cycles (%.2f per qubit)\n",
                  static_cast<long long>(result.check.depth),
                  static_cast<double>(result.check.depth) /
                      result.graph.num_qubits());
      std::printf("gates          : %s\n",
                  result.check.counts.to_string().c_str());
      std::printf("log10 fidelity : %.4f%s\n", result.log10_fidelity,
                  opts.device ? " (calibrated)" : "");
      std::printf("compile time   : %.4f s (+%.4f s verify)\n",
                  result.timings.map_seconds, result.timings.check_seconds);
      if (result.timings.sat.solve_calls > 0) {
        std::printf("sat search     : %lld conflicts, %lld decisions, "
                    "%lld restarts over %lld solve calls\n",
                    static_cast<long long>(result.timings.sat.conflicts),
                    static_cast<long long>(result.timings.sat.decisions),
                    static_cast<long long>(result.timings.sat.restarts),
                    static_cast<long long>(result.timings.sat.solve_calls));
        if (!result.timings.sat_winner.empty()) {
          std::printf("portfolio win  : %s\n",
                      result.timings.sat_winner.c_str());
        }
      }
      if (sim_err >= 0) std::printf("simulation err : %.2e\n", sim_err);
      if (aqft > 0 || cnot_basis) {
        std::printf("post-transform : %s\n",
                    count_gates(result.mapped.circuit).to_string().c_str());
      }
    }
    if (!out_path.empty()) {
      std::ofstream f(out_path);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
      f << to_qasm(result.mapped);
      if (!quiet) std::printf("wrote          : %s\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
