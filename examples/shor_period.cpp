// Order finding — the core quantum step of Shor's algorithm (§1), exercising
// the QFT kernel mapped to the LNN backend. We find the multiplicative order
// r of a = 7 modulo N = 15 (r = 4).
//
// The modular-exponentiation oracle is applied classically to the state
// vector (the paper's scope is the QFT kernel, not arithmetic circuits —
// substitution documented in DESIGN.md); the quantum interference that
// reveals the period runs through our hardware-mapped QFT.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <vector>

#include "circuit/inverse.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "sim/statevector.hpp"

namespace {

// Continued-fraction expansion: best rational approximation p/q of x with
// q <= qmax; returns q.
std::int64_t cf_denominator(double x, std::int64_t qmax) {
  std::int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  double frac = x;
  for (int it = 0; it < 32; ++it) {
    const std::int64_t a = static_cast<std::int64_t>(std::floor(frac));
    const std::int64_t p2 = a * p1 + p0, q2 = a * q1 + q0;
    if (q2 > qmax) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    const double rem = frac - static_cast<double>(a);
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  return q1 == 0 ? 1 : q1;
}

}  // namespace

int main() {
  using namespace qfto;
  constexpr std::int64_t modulus = 15, base = 7;
  constexpr std::int32_t n = 8;  // counting register: 2^8 = 256 >= N^2? (demo)
  const std::uint64_t dim = std::uint64_t{1} << n;

  // |x>|a^x mod N> prepared by direct application of the oracle; then the
  // work register is "measured" by keeping one coset (standard analysis —
  // interference within a coset is what the QFT extracts).
  std::vector<std::int64_t> f(dim);
  for (std::uint64_t x = 0; x < dim; ++x) {
    std::int64_t v = 1;
    for (std::uint64_t k = 0; k < x; ++k) v = (v * base) % modulus;
    f[x] = v;
  }
  const std::int64_t kept = f[3];  // any observed work value
  std::vector<std::uint64_t> coset;
  for (std::uint64_t x = 0; x < dim; ++x) {
    if (f[x] == kept) coset.push_back(x);
  }

  // Hardware QFT on an 8-qubit line (LNN base case of the framework).
  const MappedCircuit qft = map_qft("lnn", n).mapped;

  StateVector sv(n);
  auto& amps = sv.amplitudes();
  amps.assign(amps.size(), Amplitude{0.0, 0.0});
  const double norm = 1.0 / std::sqrt(static_cast<double>(coset.size()));
  for (std::uint64_t x : coset) {
    // Our kernel realizes U|x> = DFT|rev(x)>: feed the bit-reversed coset so
    // the output is the plain DFT of the periodic set, then embed through
    // the initial mapping (identity for LNN, kept explicit).
    std::uint64_t rx = 0;
    for (std::int32_t j = 0; j < n; ++j) {
      if (x & (std::uint64_t{1} << j)) rx |= std::uint64_t{1} << (n - 1 - j);
    }
    std::uint64_t idx = 0;
    for (std::int32_t j = 0; j < n; ++j) {
      if (rx & (std::uint64_t{1} << j)) idx |= std::uint64_t{1} << qft.initial[j];
    }
    amps[idx] = Amplitude{norm, 0.0};
  }
  sv.apply(qft.circuit);

  // Sample the peaks: outcome y (read back through final mapping, undoing
  // the kernel's bit reversal) concentrates near multiples of dim/r.
  std::map<std::int64_t, double> order_votes;
  std::vector<std::pair<double, std::uint64_t>> outcomes;
  for (std::uint64_t y = 0; y < dim; ++y) {
    std::uint64_t idx = 0;
    for (std::int32_t j = 0; j < n; ++j) {
      if (y & (std::uint64_t{1} << j)) {
        idx |= std::uint64_t{1} << qft.final_mapping[j];
      }
    }
    const double p = std::norm(sv.amplitudes()[idx]);
    if (p > 1e-9) outcomes.push_back({p, y});
  }
  std::sort(outcomes.rbegin(), outcomes.rend());

  std::printf("Order finding for a=%lld mod %lld via hardware QFT-%d (LNN)\n",
              static_cast<long long>(base), static_cast<long long>(modulus), n);
  for (std::size_t i = 0; i < std::min<std::size_t>(outcomes.size(), 6); ++i) {
    const auto [p, y] = outcomes[i];
    const std::int64_t r = cf_denominator(static_cast<double>(y) / dim, modulus);
    std::printf("  outcome y=%3llu  prob=%.3f  y/2^n=%.4f  candidate r=%lld\n",
                static_cast<unsigned long long>(y), p,
                static_cast<double>(y) / dim, static_cast<long long>(r));
    order_votes[r] += p;
  }
  // The order is the least candidate r with a^r = 1 (mod N).
  std::int64_t found = 0;
  for (const auto& [r, weight] : order_votes) {
    std::int64_t v = 1;
    for (std::int64_t k = 0; k < r; ++k) v = (v * base) % modulus;
    if (r > 1 && v == 1) {
      found = r;
      break;
    }
  }
  std::printf("recovered order r = %lld (expected 4)\n",
              static_cast<long long>(found));
  if (found == 4) {
    const std::int64_t g1 = std::gcd<std::int64_t>(
        static_cast<std::int64_t>(std::pow(base, found / 2)) - 1, modulus);
    const std::int64_t g2 = std::gcd<std::int64_t>(
        static_cast<std::int64_t>(std::pow(base, found / 2)) + 1, modulus);
    std::printf("factors of %lld: %lld x %lld\n",
                static_cast<long long>(modulus), static_cast<long long>(g1),
                static_cast<long long>(g2));
  }
  return found == 4 ? 0 : 1;
}
