// Large-scale FT compilation (§7.2): compile QFT-1024 for the lattice-surgery
// backend and print the resource report — the scale at which only analytical
// mappers remain usable (SATMAP times out, SABRE takes minutes and produces
// ~10x the depth).
#include <cstdio>

#include "arch/lattice_surgery.hpp"
#include "arch/latency_model.hpp"
#include "common/timer.hpp"
#include "mapper/lattice_mapper.hpp"
#include "verify/qft_checker.hpp"

int main() {
  using namespace qfto;
  for (const std::int32_t m : {16, 24, 32}) {
    const std::int32_t n = m * m;
    WallTimer timer;
    const MappedCircuit mc = map_qft_lattice(m);
    const double compile_s = timer.seconds();
    const CouplingGraph g = make_lattice_surgery_rotated(m);
    const auto r = check_qft_mapping(mc, g, lattice_latency(g));
    if (!r.ok) {
      std::printf("m=%d FAILED: %s\n", m, r.error.c_str());
      return 1;
    }
    std::printf(
        "QFT-%-5d lattice %2dx%-2d  depth=%-7lld (%.2f/qubit)  SWAPs=%-8lld "
        "CPHASE=%-7lld  compile=%.3fs\n",
        n, m, m, static_cast<long long>(r.depth),
        static_cast<double>(r.depth) / n, static_cast<long long>(r.counts.swap),
        static_cast<long long>(r.counts.cphase), compile_s);
  }
  std::printf("\nDepth grows linearly in N = m*m; compile time stays in "
              "fractions of a second — no recompilation pressure at scale.\n");
  return 0;
}
