// Large-scale FT compilation (§7.2): compile QFT-1024 for the lattice-surgery
// backend through the MapperPipeline and print the resource report — the
// scale at which only analytical mappers remain usable (SATMAP times out,
// SABRE takes minutes and produces ~10x the depth).
#include <cstdio>

#include "pipeline/mapper_pipeline.hpp"

int main() {
  using namespace qfto;
  for (const std::int32_t m : {16, 24, 32}) {
    const std::int32_t n = m * m;
    const MapResult result = map_qft("lattice", n);
    if (!result.check.ok) {
      std::printf("m=%d FAILED: %s\n", m, result.check.error.c_str());
      return 1;
    }
    std::printf(
        "QFT-%-5d lattice %2dx%-2d  depth=%-7lld (%.2f/qubit)  SWAPs=%-8lld "
        "CPHASE=%-7lld  compile=%.3fs\n",
        n, m, m, static_cast<long long>(result.check.depth),
        static_cast<double>(result.check.depth) / n,
        static_cast<long long>(result.check.counts.swap),
        static_cast<long long>(result.check.counts.cphase),
        result.timings.map_seconds);
  }
  std::printf("\nDepth grows linearly in N = m*m; compile time stays in "
              "fractions of a second — no recompilation pressure at scale.\n");
  return 0;
}
