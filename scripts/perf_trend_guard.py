#!/usr/bin/env python3
"""Perf-trend guard over the BENCH_*.json artifacts.

Compares the current run's Google-Benchmark JSON output against the previous
CI run's uploaded artifact and fails (exit 1) when a guarded series regressed
by more than the threshold. Guarded series:

  * BENCH_checker.json  — items_per_second of the verify_* families (checker
    throughput in gates/s; the tentpole metric of the streaming/fused verify
    work);
  * BENCH_service.json  — items_per_second of the socket_* families (served
    requests/s through the TCP front-end);
  * BENCH_sat.json      — items_per_second of the satmap_portfolio/* family
    (SAT probes/s through the racing portfolio), with a per-guard threshold:
    a single Iterations(1) SAT search is far noisier than the throughput
    families, so only halvings fail the gate;
  * BENCH_aqft.json     — items_per_second of the fidelity_route/* families
    (gates/s through SABRE's calibrated-device routing, depth and fidelity
    objectives), with the same loose 0.50 threshold.

A missing baseline directory/file or an empty intersection of benchmark names
passes with a notice: the guard gates trends between comparable runs, it must
never block the first run, an expired-artifact run, or a benchmark rename.
Noise guard: series must regress against the *ratio* threshold; absolute
items/sec are machine-dependent and never compared across machines here
because both sides ran on the same runner pool.
"""

import argparse
import json
import os
import sys

# (file, name prefixes, label, threshold override or None for --threshold)
GUARDS = [
    ("BENCH_checker.json", ("verify_",), "verify throughput", None),
    ("BENCH_service.json", ("socket_",), "socket req/s", None),
    ("BENCH_sat.json", ("satmap_portfolio/",), "portfolio probes/s", 0.50),
    # Calibrated-device routing: SABRE trial counts dominate and are noisy
    # run to run, so like the SAT family only halvings fail the gate.
    ("BENCH_aqft.json", ("fidelity_route/",), "fidelity-aware routing", 0.50),
]


def load_series(path, prefixes):
    """name -> items_per_second for guarded benchmarks in one JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-guard: cannot read {path}: {e}")
        return None
    series = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            continue
        if not name.startswith(prefixes):
            continue
        ips = b.get("items_per_second")
        if isinstance(ips, (int, float)) and ips > 0:
            # Repeated entries (multiple repetitions): keep the best, the
            # stable measure of what the code can do on this machine.
            series[name] = max(series.get(name, 0.0), ips)
    return series


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True,
                    help="directory holding this run's BENCH_*.json")
    ap.add_argument("--baseline", required=True,
                    help="directory holding the previous run's artifact")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max allowed fractional regression (default 0.20)")
    args = ap.parse_args()

    regressions = []
    compared = 0
    for fname, prefixes, label, threshold in GUARDS:
        if threshold is None:
            threshold = args.threshold
        cur_path = os.path.join(args.current, fname)
        base_path = os.path.join(args.baseline, fname)
        if not os.path.exists(cur_path):
            print(f"perf-guard: {fname} not produced by this run — skipping")
            continue
        if not os.path.exists(base_path):
            print(f"perf-guard: no baseline {fname} — first run or expired "
                  f"artifact, passing")
            continue
        cur = load_series(cur_path, prefixes)
        base = load_series(base_path, prefixes)
        if cur is None or base is None:
            continue
        common = sorted(set(cur) & set(base))
        if not common:
            print(f"perf-guard: {fname}: no common benchmarks — renames? "
                  f"passing")
            continue
        for name in common:
            compared += 1
            ratio = cur[name] / base[name]
            status = "ok"
            if ratio < 1.0 - threshold:
                status = "REGRESSED"
                regressions.append(
                    f"{label}: {name}: {base[name]:.3e} -> {cur[name]:.3e} "
                    f"items/s ({(1.0 - ratio) * 100.0:.1f}% slower, "
                    f"threshold {threshold * 100.0:.0f}%)")
            print(f"perf-guard: {name}: {ratio:.3f}x baseline [{status}]")

    if regressions:
        print(f"\nperf-guard: {len(regressions)} regression(s):")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"perf-guard: {compared} series compared, none regressed beyond "
          f"their thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
