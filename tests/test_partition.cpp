#include <gtest/gtest.h>

#include "circuit/dag.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "mapper/partition.hpp"
#include "sim/unitary.hpp"

namespace qfto {
namespace {

// Mechanical proof of the §3.2 correctness claim: the partitioned order is a
// valid linearization of the *relaxed* dependence DAG of the textbook QFT and
// hence (independently confirmed below) the same unitary.

void expect_same_unitary(const Circuit& a, const Circuit& b) {
  EXPECT_LT(unitary_distance(circuit_unitary(a), circuit_unitary(b)), 1e-10);
}

TEST(Partition, TwoPartitionMatchesTextbookUnitary) {
  expect_same_unitary(qft_partitioned(4, {2, 2}), qft_logical(4));
  expect_same_unitary(qft_partitioned(5, {2, 3}), qft_logical(5));
  expect_same_unitary(qft_partitioned(6, {1, 5}), qft_logical(6));
}

TEST(Partition, KPartitionMatchesTextbookUnitary) {
  expect_same_unitary(qft_partitioned(6, {2, 2, 2}), qft_logical(6));
  expect_same_unitary(qft_partitioned(7, {3, 1, 2, 1}), qft_logical(7));
  expect_same_unitary(qft_partitioned(8, {1, 1, 1, 1, 1, 1, 1, 1}),
                      qft_logical(8));
}

TEST(Partition, RecursiveMatchesTextbookUnitary) {
  expect_same_unitary(qft_partitioned_recursive(8, 2, 2), qft_logical(8));
  expect_same_unitary(qft_partitioned_recursive(7, 3, 1), qft_logical(7));
}

TEST(Partition, GateCountsPreserved) {
  for (int n : {5, 9, 16, 33}) {
    const Circuit c = qft_partitioned(n, {n / 2, n - n / 2});
    const GateCounts gc = count_gates(c);
    EXPECT_EQ(gc.h, n);
    EXPECT_EQ(gc.cphase, qft_pair_count(n));
  }
}

// A gate-multiset-preserving reordering is valid iff it linearizes the
// relaxed DAG; check by replaying the window rule directly.
bool relaxed_valid(const Circuit& c, std::int32_t n) {
  std::vector<std::uint8_t> h(n, 0);
  for (const auto& g : c) {
    if (g.kind == GateKind::kH) {
      if (h[g.q0]) return false;
      h[g.q0] = 1;
    } else if (g.kind == GateKind::kCPhase) {
      const auto lo = std::min(g.q0, g.q1), hi = std::max(g.q0, g.q1);
      if (!h[lo] || h[hi]) return false;
    }
  }
  return true;
}

TEST(Partition, OrderIsRelaxedValidAcrossManyShapes) {
  for (int n = 2; n <= 24; ++n) {
    // Halves, thirds, singletons, and a lopsided split.
    EXPECT_TRUE(relaxed_valid(qft_partitioned(n, {n / 2, n - n / 2}), n));
    if (n >= 3) {
      EXPECT_TRUE(relaxed_valid(
          qft_partitioned(n, {n / 3, n / 3, n - 2 * (n / 3)}), n));
      EXPECT_TRUE(relaxed_valid(qft_partitioned(n, {1, n - 1}), n));
      EXPECT_TRUE(relaxed_valid(qft_partitioned(n, {n - 1, 1}), n));
    }
    EXPECT_TRUE(relaxed_valid(qft_partitioned_recursive(n, 2, 1), n));
  }
}

TEST(Partition, StrictOrderWouldReject) {
  // Sanity: the partitioned order genuinely uses commutativity — it is NOT a
  // linearization of the strict per-wire DAG for a 3-way split of 6 qubits.
  const Circuit textbook = qft_logical(6);
  const Circuit part = qft_partitioned(6, {2, 2, 2});
  // Build index mapping from gate identity; strict order demands IE(U0,U1)
  // gates appear in textbook relative order with IA(U1)'s H — the partition
  // moves H(2) after CPHASE(0,4), which textbook strictness forbids via
  // wire-2 ... wire-0 chains. We just verify the gate sequences differ while
  // the unitaries agree (checked above).
  EXPECT_NE(textbook.to_string(), part.to_string());
}

TEST(Partition, InputValidation) {
  EXPECT_THROW(qft_partitioned(4, {1, 1}), std::invalid_argument);
  EXPECT_THROW(qft_partitioned(4, {0, 4}), std::invalid_argument);
  EXPECT_THROW(qft_partitioned(0, {}), std::invalid_argument);
  EXPECT_THROW(qft_partitioned_recursive(4, 1, 1), std::invalid_argument);
}

TEST(Partition, IeBlockShape) {
  Circuit c(6);
  append_qft_ie(c, 0, 2, 2, 5);
  EXPECT_EQ(c.size(), 6u);  // 2 * 3 pairs
  for (const auto& g : c) EXPECT_EQ(g.kind, GateKind::kCPhase);
}

}  // namespace
}  // namespace qfto
