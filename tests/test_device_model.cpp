// Device descriptions end-to-end: the JSON loader's strict positioned
// validation, fingerprint semantics, builtin-spec equivalence with the
// topology builders, the nisq() latency regression, calibrated fidelity
// accounting, SABRE's fidelity objective, and the calibration-keyed
// ResultCache (fingerprint fragmentation + TTL aging).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "arch/device_model.hpp"
#include "arch/grid.hpp"
#include "arch/latency_model.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/line.hpp"
#include "baseline/sabre.hpp"
#include "circuit/qft_spec.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "service/result_cache.hpp"
#include "verify/fidelity.hpp"

namespace qfto {
namespace {

// A small well-formed device: a 4-cycle whose (1, 2) coupler is terrible.
const char* kRing4 = R"({
  "name": "ring4",
  "qubits": 4,
  "error_1q": [1e-4, 2e-4, 3e-4, 4e-4],
  "coherence_cycles": 20000,
  "edges": [
    {"a": 0, "b": 1, "error": 1e-3},
    {"a": 1, "b": 2, "error": 0.2},
    {"a": 2, "b": 3, "error": 1e-3},
    {"a": 3, "b": 0, "error": 1e-3}
  ]
})";

std::string error_of(const std::string& json) {
  try {
    DeviceModel::from_json(json);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(DeviceJson, HappyPath) {
  const DeviceModel dev = DeviceModel::from_json(kRing4);
  EXPECT_EQ(dev.name(), "ring4");
  EXPECT_EQ(dev.num_qubits(), 4);
  ASSERT_EQ(dev.edges().size(), 4u);
  EXPECT_DOUBLE_EQ(dev.qubit(2).error_1q, 3e-4);
  EXPECT_DOUBLE_EQ(dev.qubit(2).coherence_cycles, 20000.0);
  EXPECT_DOUBLE_EQ(dev.edge_error(1, 2), 0.2);
  EXPECT_DOUBLE_EQ(dev.edge_error(2, 1), 0.2);  // order-insensitive
  EXPECT_DOUBLE_EQ(dev.edge_error(0, 2, 0.5), 0.5);  // non-edge fallback
  EXPECT_EQ(dev.latency_classes(), 1u);

  const CouplingGraph g = dev.build_graph();
  EXPECT_EQ(g.num_qubits(), 4);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(3, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
}

TEST(DeviceJson, RejectsDuplicateEdge) {
  const std::string msg = error_of(R"({"qubits": 3, "edges": [
    {"a": 0, "b": 1}, {"a": 1, "b": 0}]})");
  EXPECT_NE(msg.find("duplicate edge"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
}

TEST(DeviceJson, RejectsOutOfRangeErrorRates) {
  const std::string edge = error_of(
      R"({"qubits": 2, "edges": [{"a": 0, "b": 1, "error": 1.0}]})");
  EXPECT_NE(edge.find("[0, 1)"), std::string::npos) << edge;
  const std::string oneq = error_of(
      R"({"qubits": 2, "error_1q": -0.5, "edges": [{"a": 0, "b": 1}]})");
  EXPECT_NE(oneq.find("error_1q"), std::string::npos) << oneq;
}

TEST(DeviceJson, RejectsQubitPastN) {
  const std::string msg =
      error_of(R"({"qubits": 3, "edges": [{"a": 0, "b": 3}]})");
  EXPECT_NE(msg.find("past n=3"), std::string::npos) << msg;
}

TEST(DeviceJson, RejectsTruncatedAndMalformedInputWithoutCrashing) {
  // Every prefix of a valid document must raise a positioned error, never
  // crash or accept — the classic truncated-file sweep.
  const std::string full = kRing4;
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string msg = error_of(full.substr(0, len));
    EXPECT_FALSE(msg.empty()) << "accepted truncation at byte " << len;
    EXPECT_NE(msg.find("device json"), std::string::npos) << msg;
  }
  EXPECT_NE(error_of(R"({"qubits": 2, "edges": [{"a": 0, "b": 1}],
                         "volts": 3})").find("unknown field"),
            std::string::npos);
  EXPECT_NE(error_of("").find("device json"), std::string::npos);
}

TEST(DeviceJson, LoadFileReportsPathAndMissingFile) {
  EXPECT_THROW(DeviceModel::load_file("/nonexistent/dev.json"),
               std::invalid_argument);
  try {
    DeviceModel::load_file("/nonexistent/dev.json");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dev.json"),
              std::string::npos);
  }
}

TEST(DeviceModelTest, FingerprintIgnoresNameTracksCalibration) {
  const DeviceModel base = DeviceModel::from_json(kRing4);
  std::string renamed = kRing4;
  renamed.replace(renamed.find("ring4"), 5, "other");
  EXPECT_EQ(DeviceModel::from_json(renamed).fingerprint(),
            base.fingerprint());

  std::string recalibrated = kRing4;
  recalibrated.replace(recalibrated.find("0.2"), 3, "0.3");
  EXPECT_NE(DeviceModel::from_json(recalibrated).fingerprint(),
            base.fingerprint());
}

TEST(DeviceModelTest, BuiltinSpecsMatchTopologyBuilders) {
  for (const std::string& name : DeviceModel::builtin_names()) {
    EXPECT_GT(DeviceModel::builtin(name, 4).num_qubits(), 0) << name;
  }
  const CouplingGraph line = make_line(5);
  const CouplingGraph from_dev = DeviceModel::builtin("line", 5).build_graph();
  ASSERT_EQ(from_dev.num_qubits(), line.num_qubits());
  EXPECT_EQ(from_dev.num_edges(), line.num_edges());
  for (std::int32_t a = 0; a < 5; ++a)
    for (std::int32_t b = 0; b < 5; ++b)
      EXPECT_EQ(from_dev.adjacent(a, b), line.adjacent(a, b)) << a << b;

  const CouplingGraph grid = make_grid(3, 3);
  const CouplingGraph gdev = DeviceModel::builtin("grid", 9).build_graph();
  ASSERT_EQ(gdev.num_qubits(), grid.num_qubits());
  EXPECT_EQ(gdev.num_edges(), grid.num_edges());

  EXPECT_THROW(DeviceModel::builtin("torus", 4), std::invalid_argument);
}

TEST(DeviceModelTest, LatticeBuiltinCarriesWeightedLatencies) {
  const DeviceModel dev = DeviceModel::builtin("lattice", 9);
  EXPECT_GT(dev.latency_classes(), 1u);
  // Link-dependent costs cannot resolve without the graph's labeling.
  EXPECT_THROW(dev.latency_model(), std::invalid_argument);
  const CouplingGraph g = dev.build_graph();
  const LatencyModel lat = dev.latency_model(g);
  // build_graph() labels link classes by its own ascending ordering, so the
  // comparison with the hand-written lattice model goes per physical edge
  // (node ids are preserved), not per LinkType enumerator.
  const CouplingGraph ref = make_lattice_surgery_rotated(3);
  const LatencyModel want = LatencyModel::lattice(ref);
  ASSERT_EQ(g.num_qubits(), ref.num_qubits());
  for (std::int32_t a = 0; a < g.num_qubits(); ++a) {
    for (std::int32_t b = a + 1; b < g.num_qubits(); ++b) {
      if (!ref.adjacent(a, b)) continue;
      ASSERT_TRUE(g.adjacent(a, b)) << a << "-" << b;
      EXPECT_EQ(lat.cycles(Gate::swap(a, b)), want.cycles(Gate::swap(a, b)))
          << "swap " << a << "-" << b;
      EXPECT_EQ(lat.cycles(Gate::cphase(a, b, 0.5)),
                want.cycles(Gate::cphase(a, b, 0.5)))
          << "cphase " << a << "-" << b;
    }
  }
}

// The regression ISSUE 10 pins: nisq() resolves from the default device
// spec's calibration table and that spec is deliberately unit-equivalent.
TEST(DeviceModelTest, NisqResolvesFromDefaultSpecAndEqualsUnit) {
  const LatencyModel nisq = LatencyModel::nisq();
  const LatencyModel unit = LatencyModel::unit();
  const LatencyModel spec = DeviceModel::nisq_spec().latency_model();
  for (std::size_t k = 0; k < kGateKindCount; ++k) {
    for (std::size_t l = 0; l < kLinkTypeCount; ++l) {
      const auto kind = static_cast<GateKind>(k);
      const auto link = static_cast<LinkType>(l);
      EXPECT_EQ(nisq.cycles_on_link(kind, link),
                unit.cycles_on_link(kind, link));
      EXPECT_EQ(nisq.cycles_on_link(kind, link),
                spec.cycles_on_link(kind, link));
    }
  }
}

TEST(FidelityTest, CalibratedWalkPenalizesBadEdges) {
  const DeviceModel dev = DeviceModel::from_json(kRing4);
  const LatencyModel lat = dev.latency_model(dev.build_graph());
  Circuit good(4);
  good.append(Gate::cnot(0, 1));
  Circuit bad(4);
  bad.append(Gate::cnot(1, 2));
  const double f_good = log10_fidelity(good, dev, lat);
  const double f_bad = log10_fidelity(bad, dev, lat);
  EXPECT_LT(f_good, 0.0);
  EXPECT_LT(f_bad, f_good);  // the 0.2-error coupler must cost more
}

TEST(FidelityTest, OverloadsAgreeOnDirection) {
  const Circuit c = qft_logical(4);
  const NoiseModel noisy{1e-3, 5e-2, 2e4};
  const NoiseModel clean{1e-5, 1e-4, 2e5};
  const LatencyModel lat = LatencyModel::unit();
  EXPECT_LT(log10_fidelity(c, noisy, lat), log10_fidelity(c, clean, lat));
  // Legacy LatencyFn shim still answers (and worse noise is still worse).
  EXPECT_LT(log10_fidelity(c, noisy), log10_fidelity(c, clean));
  EXPECT_LT(log10_fidelity(c, noisy, lat), 0.0);
}

TEST(PipelineDevice, DeviceSelectsScenarioEndToEnd) {
  MapOptions opts;
  opts.device = std::make_shared<const DeviceModel>(
      DeviceModel::load_file(std::string(QFTO_SOURCE_DIR) +
                             "/examples/devices/heavyhex7-calibrated.json"));
  const MapResult r = map_qft("sabre", 7, opts);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  EXPECT_EQ(r.graph.name(), "heavyhex7-calibrated");
  EXPECT_EQ(r.graph.num_qubits(), 7);
  EXPECT_LT(r.log10_fidelity, 0.0);

  // A device too small for the request fails loudly, naming the device.
  try {
    map_qft("sabre", 12, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("heavyhex7-calibrated"),
              std::string::npos)
        << e.what();
  }

  // Device and raw target are mutually exclusive.
  const CouplingGraph raw = make_line(8);
  MapOptions both = opts;
  both.target = &raw;
  EXPECT_THROW(map_qft("sabre", 7, both), std::invalid_argument);
}

TEST(PipelineDevice, FidelityObjectiveNeverLosesOnCalibratedDevice) {
  MapOptions depth_opts;
  depth_opts.device =
      std::make_shared<const DeviceModel>(DeviceModel::from_json(kRing4));
  MapOptions fid_opts = depth_opts;
  fid_opts.objective = Objective::kFidelity;

  const MapResult by_depth = map_qft("sabre", 4, depth_opts);
  const MapResult by_fid = map_qft("sabre", 4, fid_opts);
  ASSERT_TRUE(by_depth.check.ok) << by_depth.check.error;
  ASSERT_TRUE(by_fid.check.ok) << by_fid.check.error;
  // The fidelity objective selects by expected log-success over the same
  // trial budget, so it can never land on a worse circuit than the depth
  // objective's pick under its own metric.
  EXPECT_GE(by_fid.log10_fidelity, by_depth.log10_fidelity - 1e-9);
}

// Regression: the fidelity objective once livelocked on the shipped
// heavy-hex example device — the edge-error penalty rivaled the distance
// terms, so zero-progress swaps on low-error edges outscored progress
// forever and the router tripped its swap cap. The penalty is now bounded
// below the smallest distance quantum; this must route, and never lose to
// the depth objective on its own metric.
TEST(PipelineDevice, FidelityObjectiveRoutesTheExampleDevices) {
  for (const char* file :
       {"/examples/devices/heavyhex7-calibrated.json",
        "/examples/devices/grid9-noisy.json"}) {
    MapOptions depth_opts;
    depth_opts.device = std::make_shared<const DeviceModel>(
        DeviceModel::load_file(std::string(QFTO_SOURCE_DIR) + file));
    MapOptions fid_opts = depth_opts;
    fid_opts.objective = Objective::kFidelity;

    const MapResult by_depth = map_qft("sabre", 7, depth_opts);
    const MapResult by_fid = map_qft("sabre", 7, fid_opts);
    ASSERT_TRUE(by_depth.check.ok) << file << ": " << by_depth.check.error;
    ASSERT_TRUE(by_fid.check.ok) << file << ": " << by_fid.check.error;
    EXPECT_GE(by_fid.log10_fidelity, by_depth.log10_fidelity - 1e-9) << file;
  }
}

TEST(ResultCacheDevice, KeyCarriesDeviceFingerprintNotName) {
  MapOptions plain;
  const std::string base = ResultCache::key("sabre", 8, plain);
  EXPECT_EQ(base.find("dev="), std::string::npos);

  MapOptions with_dev;
  with_dev.device =
      std::make_shared<const DeviceModel>(DeviceModel::from_json(kRing4));
  const std::string keyed = ResultCache::key("sabre", 8, with_dev);
  EXPECT_NE(keyed.find("dev="), std::string::npos);
  EXPECT_NE(keyed, base);

  // Renaming the device must not fragment the cache...
  std::string renamed = kRing4;
  renamed.replace(renamed.find("ring4"), 5, "other");
  MapOptions with_renamed;
  with_renamed.device =
      std::make_shared<const DeviceModel>(DeviceModel::from_json(renamed));
  EXPECT_EQ(ResultCache::key("sabre", 8, with_renamed), keyed);

  // ...but editing one calibration value must miss it.
  std::string recalibrated = kRing4;
  recalibrated.replace(recalibrated.find("0.2"), 3, "0.3");
  MapOptions with_edit;
  with_edit.device =
      std::make_shared<const DeviceModel>(DeviceModel::from_json(recalibrated));
  EXPECT_NE(ResultCache::key("sabre", 8, with_edit), keyed);

  // The objective is part of the key too.
  MapOptions fid = with_dev;
  fid.objective = Objective::kFidelity;
  EXPECT_NE(ResultCache::key("sabre", 8, fid), keyed);
}

TEST(ResultCacheDevice, DeviceRequestsAreCacheableRawTargetsAreNot) {
  const MapperEngine& sabre = MapperPipeline::global().at("sabre");
  MapOptions opts;
  EXPECT_TRUE(ResultCache::cacheable(sabre, opts));
  opts.device =
      std::make_shared<const DeviceModel>(DeviceModel::from_json(kRing4));
  EXPECT_TRUE(ResultCache::cacheable(sabre, opts));
  const CouplingGraph g = make_line(4);
  MapOptions raw;
  raw.target = &g;
  EXPECT_FALSE(ResultCache::cacheable(sabre, raw));
}

TEST(ResultCacheTtl, ExpiresEntriesLazilyAndCountsThem) {
  ResultCache cache(8, 1, 0.02);  // 20ms TTL
  EXPECT_DOUBLE_EQ(cache.ttl_seconds(), 0.02);
  auto value = std::make_shared<const MapResult>();
  cache.put("k", value);
  EXPECT_NE(cache.get("k"), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(cache.get("k"), nullptr);
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_GE(s.misses, 1u);

  // put() refreshes the clock: a rewritten entry lives a full TTL again.
  cache.put("k", value);
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  cache.put("k", value);
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  EXPECT_NE(cache.get("k"), nullptr);

  // TTL 0 disables aging entirely.
  ResultCache ageless(8, 1, 0.0);
  ageless.put("k", value);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_NE(ageless.get("k"), nullptr);
  EXPECT_EQ(ageless.stats().expired, 0u);
}

}  // namespace
}  // namespace qfto
