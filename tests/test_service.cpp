// MappingService: queue/worker lifecycle, priority scheduling, pre-start and
// mid-run (incl. mid-SATMAP) cancellation, per-job deadlines, ResultCache
// bit-identity and fingerprint invalidation, and the --serve JSON protocol.
// The concurrency here is what the CI TSan leg locks in.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/device_model.hpp"
#include "arch/line.hpp"
#include "common/timer.hpp"
#include "mapper/lnn_mapper.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "qasm/qasm.hpp"
#include "service/mapping_service.hpp"
#include "service/result_cache.hpp"
#include "service/serve.hpp"

namespace qfto {
namespace {

using namespace std::chrono_literals;

// A controllable engine: maps QFT(n) on a line after napping in 1 ms slices,
// honouring the cooperative cancel token the way a real long engine does.
class SleeperEngine final : public MapperEngine {
 public:
  explicit SleeperEngine(double nap_seconds) : nap_seconds_(nap_seconds) {}
  std::string name() const override { return "sleeper"; }
  std::string description() const override { return "naps, then maps lnn"; }
  bool deterministic() const override { return false; }  // keep out of cache
  CouplingGraph build_graph(std::int32_t n,
                            const MapOptions&) const override {
    return make_line(n);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    WallTimer timer;
    while (timer.seconds() < nap_seconds_) {
      if (opts.cancel != nullptr &&
          opts.cancel->load(std::memory_order_relaxed)) {
        throw MapCancelled(false, "sleeper: cancelled mid-map");
      }
      std::this_thread::sleep_for(1ms);
    }
    return map_qft_lnn(n);
  }

 private:
  double nap_seconds_;
};

MapperPipeline pipeline_with_sleeper(double nap_seconds) {
  MapperPipeline pipeline = MapperPipeline::with_paper_engines();
  pipeline.register_engine(std::make_unique<SleeperEngine>(nap_seconds));
  return pipeline;
}

MappingService::Options service_options(std::int32_t threads,
                                        std::size_t cache_capacity = 1024) {
  MappingService::Options options;
  options.num_threads = threads;
  options.cache_capacity = cache_capacity;
  return options;
}

// --------------------------------------------------------------- plumbing --

TEST(Service, SubmitWaitRoundTrip) {
  MappingService service{service_options(2)};
  const JobResult out = service.submit({"lnn", 12, MapOptions{}}).wait();
  ASSERT_EQ(out.status, JobStatus::kDone) << out.error;
  ASSERT_NE(out.result, nullptr);
  EXPECT_TRUE(out.result->check.ok) << out.result->check.error;
  EXPECT_EQ(out.result->n, 12);
  EXPECT_GE(out.queue_seconds, 0.0);
  EXPECT_GE(out.dispatch_index, 0);
  EXPECT_TRUE(out.ok());
}

TEST(Service, EngineFailuresAreCapturedPerJob) {
  MappingService service{service_options(2)};
  const JobResult bad = service.submit({"nosuch", 8, MapOptions{}}).wait();
  EXPECT_EQ(bad.status, JobStatus::kFailed);
  EXPECT_NE(bad.error.find("unknown engine"), std::string::npos);
  EXPECT_EQ(bad.result, nullptr);

  MapOptions tle;
  tle.satmap.time_budget_seconds = 1e-6;
  const JobResult timeout = service.submit({"satmap", 8, tle}).wait();
  EXPECT_EQ(timeout.status, JobStatus::kFailed);
  EXPECT_NE(timeout.error.find("satmap"), std::string::npos);
}

TEST(Service, TryGetIsNonBlockingAndWaitForTimesOut) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.3);
  MappingService service{service_options(1), pipeline};
  JobHandle handle = service.submit({"sleeper", 4, MapOptions{}});
  // The nap dwarfs the submit latency, so the job cannot be done yet.
  EXPECT_FALSE(handle.try_get().has_value());
  EXPECT_FALSE(handle.wait_for(0.01).has_value());
  const JobResult out = handle.wait();
  EXPECT_EQ(out.status, JobStatus::kDone) << out.error;
  EXPECT_FALSE(handle.cancel()) << "terminal jobs are not cancellable";
}

// ----------------------------------------------------------- cancellation --

TEST(Service, QueuedJobCancelsImmediatelyWithoutWorkerTime) {
  const MapperPipeline pipeline = pipeline_with_sleeper(1.0);
  MappingService service{service_options(1), pipeline};
  JobHandle blocker = service.submit({"sleeper", 4, MapOptions{}});
  JobHandle queued = service.submit({"lnn", 8, MapOptions{}});

  ASSERT_TRUE(queued.cancel());
  // cancel() retires a queued job synchronously — no waiting on the blocker.
  const std::optional<JobResult> out = queued.try_get();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, JobStatus::kCancelled);
  EXPECT_NE(out->error.find("cancelled before start"), std::string::npos);
  EXPECT_EQ(out->dispatch_index, -1) << "no worker may have run it";

  ASSERT_TRUE(blocker.cancel());
  EXPECT_EQ(blocker.wait().status, JobStatus::kCancelled);
}

TEST(Service, MidSatmapCancellationReturnsWithinBudget) {
  // QFT-10 keeps SATMAP busy for seconds even on the incremental driver
  // (iterative deepening, then swap minimization burns toward the budget).
  // The token is polled inside the solver search and between probes, so
  // cancelling the in-flight job must return in milliseconds — far inside
  // the 60 s budget.
  MappingService service{service_options(1)};
  MapOptions opts;
  opts.satmap.time_budget_seconds = 60.0;
  JobHandle job = service.submit({"satmap", 10, opts});

  WallTimer spin;
  while (job.status() == JobStatus::kQueued && spin.seconds() < 10.0) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(job.status(), JobStatus::kRunning);
  std::this_thread::sleep_for(20ms);  // let it get into the solver

  WallTimer timer;
  ASSERT_TRUE(job.cancel());
  const JobResult out = job.wait();
  EXPECT_LT(timer.seconds(), 30.0) << "cancel must beat the 60 s budget";
  EXPECT_EQ(out.status, JobStatus::kCancelled);
  EXPECT_NE(out.error.find("cancel"), std::string::npos) << out.error;
}

// --------------------------------------------------------------- deadlines --

TEST(Service, DeadlineExpiryInQueueReportsDeadlineExceeded) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.3);
  MappingService service{service_options(1), pipeline};
  JobHandle blocker = service.submit({"sleeper", 4, MapOptions{}});

  MappingService::Submit submit;
  submit.deadline_seconds = 0.02;  // expires while the blocker runs
  const JobResult out =
      service.submit({"lnn", 8, MapOptions{}}, submit).wait();
  EXPECT_EQ(out.status, JobStatus::kExpired);
  EXPECT_NE(out.error.find("deadline exceeded"), std::string::npos)
      << out.error;
  EXPECT_EQ(blocker.wait().status, JobStatus::kDone);
}

TEST(Service, DeadlineExpiryMidRunReportsDeadlineExceeded) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.25);
  MappingService service{service_options(1), pipeline};
  MappingService::Submit submit;
  submit.deadline_seconds = 0.05;  // expires inside the sleeper's map stage
  const JobResult out =
      service.submit({"sleeper", 4, MapOptions{}}, submit).wait();
  EXPECT_EQ(out.status, JobStatus::kExpired);
  EXPECT_NE(out.error.find("deadline exceeded"), std::string::npos)
      << out.error;
}

TEST(Service, SatmapDeadlineClampsTheSolverBudget) {
  // The job-level deadline must reach SatmapOptions: under a 0.15 s
  // deadline a 60 s solver budget either TLEs inside the clamp or gets cut
  // off at the next pipeline stage — both surface as kExpired within
  // seconds instead of running for a minute.
  MappingService service{service_options(1)};
  MapOptions opts;
  opts.satmap.time_budget_seconds = 60.0;
  MappingService::Submit submit;
  submit.deadline_seconds = 0.15;
  WallTimer timer;
  const JobResult out = service.submit({"satmap", 10, opts}, submit).wait();
  EXPECT_EQ(out.status, JobStatus::kExpired);
  EXPECT_NE(out.error.find("deadline"), std::string::npos) << out.error;
  EXPECT_LT(timer.seconds(), 30.0);
}

// ---------------------------------------------------------------- priority --

TEST(Service, PriorityOrdersTheQueueFifoWithinLevel) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.4);
  MappingService service{service_options(1), pipeline};
  // The blocker must occupy the only worker before anything else is
  // submitted, so the remaining jobs demonstrably reorder in the queue.
  JobHandle blocker = service.submit({"sleeper", 4, MapOptions{}});
  WallTimer spin;
  while (blocker.status() == JobStatus::kQueued && spin.seconds() < 10.0) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(blocker.status(), JobStatus::kRunning);

  MappingService::Submit low, mid, top;
  low.priority = 0;
  mid.priority = 5;
  top.priority = 10;
  JobHandle a = service.submit({"lnn", 6, MapOptions{}}, low);
  JobHandle b = service.submit({"lnn", 7, MapOptions{}}, mid);
  JobHandle c = service.submit({"lnn", 9, MapOptions{}}, mid);
  JobHandle d = service.submit({"lnn", 10, MapOptions{}}, top);

  const JobResult rb = b.wait(), rc = c.wait(), rd = d.wait(),
                  ra = a.wait(), rblock = blocker.wait();
  ASSERT_TRUE(rblock.ok() && ra.ok() && rb.ok() && rc.ok() && rd.ok());
  EXPECT_LT(rblock.dispatch_index, rd.dispatch_index);
  EXPECT_LT(rd.dispatch_index, rb.dispatch_index) << "priority 10 before 5";
  EXPECT_LT(rb.dispatch_index, rc.dispatch_index) << "FIFO within level";
  EXPECT_LT(rc.dispatch_index, ra.dispatch_index) << "priority 5 before 0";
}

// ------------------------------------------------------------------- cache --

TEST(Service, CacheHitIsBitIdenticalWithZeroMapTime) {
  MappingService service{service_options(2)};
  const JobResult cold = service.submit({"lattice", 10, MapOptions{}}).wait();
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.result->cache_hit);

  const JobResult warm = service.submit({"lattice", 10, MapOptions{}}).wait();
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_TRUE(warm.result->cache_hit);
  EXPECT_EQ(warm.result->timings.map_seconds, 0.0);
  EXPECT_EQ(warm.result->timings.check_seconds, 0.0);

  // Bit-identical to a fresh pipeline.run on every payload field.
  const MapResult fresh = MapperPipeline::global().run("lattice", 10);
  const MapResult& hit = *warm.result;
  EXPECT_EQ(hit.engine, fresh.engine);
  EXPECT_EQ(hit.requested_n, fresh.requested_n);
  EXPECT_EQ(hit.n, fresh.n);
  EXPECT_EQ(hit.mapped.circuit.to_string(), fresh.mapped.circuit.to_string());
  EXPECT_EQ(hit.mapped.initial, fresh.mapped.initial);
  EXPECT_EQ(hit.mapped.final_mapping, fresh.mapped.final_mapping);
  EXPECT_EQ(hit.graph.name(), fresh.graph.name());
  EXPECT_EQ(hit.graph.num_qubits(), fresh.graph.num_qubits());
  EXPECT_EQ(hit.check.ok, fresh.check.ok);
  EXPECT_EQ(hit.check.depth, fresh.check.depth);
  EXPECT_EQ(hit.check.counts.h, fresh.check.counts.h);
  EXPECT_EQ(hit.check.counts.cphase, fresh.check.counts.cphase);
  EXPECT_EQ(hit.check.counts.swap, fresh.check.counts.swap);
  EXPECT_EQ(hit.check.counts.cnot, fresh.check.counts.cnot);
}

TEST(Service, CacheKeyUsesNativeSizeButEchoesRequestedSize) {
  MappingService service{service_options(2)};
  // n=10 and n=16 both snap to the native 16 on the lattice engine: the
  // second request must be a hit, yet echo its own requested size.
  const JobResult first = service.submit({"lattice", 10, MapOptions{}}).wait();
  ASSERT_TRUE(first.ok()) << first.error;
  const JobResult second =
      service.submit({"lattice", 16, MapOptions{}}).wait();
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.result->cache_hit);
  EXPECT_EQ(second.result->requested_n, 16);
  EXPECT_EQ(second.result->n, 16);
}

TEST(Service, CacheInvalidatedByAblationKnobs) {
  MappingService service{service_options(2)};
  MapOptions relaxed;
  MapOptions strict;
  strict.strict_ie = true;

  const JobResult r1 = service.submit({"sycamore", 36, relaxed}).wait();
  ASSERT_TRUE(r1.ok()) << r1.error;
  // Same engine and size, different ablation knob: must miss, and must map
  // to the strict variant (observably deeper, per the §3.3 ablation).
  const JobResult s1 = service.submit({"sycamore", 36, strict}).wait();
  ASSERT_TRUE(s1.ok()) << s1.error;
  EXPECT_FALSE(s1.result->cache_hit);
  EXPECT_GT(s1.result->check.depth, r1.result->check.depth);

  // Each variant now hits its own entry.
  const JobResult r2 = service.submit({"sycamore", 36, relaxed}).wait();
  const JobResult s2 = service.submit({"sycamore", 36, strict}).wait();
  ASSERT_TRUE(r2.ok() && s2.ok());
  EXPECT_TRUE(r2.result->cache_hit);
  EXPECT_TRUE(s2.result->cache_hit);
  EXPECT_EQ(r2.result->check.depth, r1.result->check.depth);
  EXPECT_EQ(s2.result->check.depth, s1.result->check.depth);

  const ResultCache::Stats stats = service.cache_stats();
  EXPECT_GE(stats.entries, 2u) << "both variants live side by side";
  EXPECT_GE(stats.hits, 2u);
}

TEST(Service, NonDeterministicAndTargetedRequestsAreNeverCached) {
  MappingService service{service_options(2)};
  MapOptions satmap_opts;
  satmap_opts.satmap.time_budget_seconds = 60.0;
  const JobResult a = service.submit({"satmap", 4, satmap_opts}).wait();
  const JobResult b = service.submit({"satmap", 4, satmap_opts}).wait();
  ASSERT_TRUE(a.ok() && b.ok()) << a.error << b.error;
  EXPECT_FALSE(a.result->cache_hit);
  EXPECT_FALSE(b.result->cache_hit) << "satmap is wall-clock dependent";

  const CouplingGraph target = make_line(9);
  MapOptions targeted;
  targeted.sabre.trials = 1;
  targeted.target = &target;
  const JobResult t1 = service.submit({"sabre", 9, targeted}).wait();
  const JobResult t2 = service.submit({"sabre", 9, targeted}).wait();
  ASSERT_TRUE(t1.ok() && t2.ok()) << t1.error << t2.error;
  EXPECT_FALSE(t2.result->cache_hit) << "caller-owned graphs are uncacheable";
}

TEST(Service, CacheCanBeDisabledPerJobAndPerService) {
  MappingService cacheless{service_options(2, /*cache_capacity=*/0)};
  ASSERT_TRUE(cacheless.submit({"lnn", 8, MapOptions{}}).wait().ok());
  const JobResult again = cacheless.submit({"lnn", 8, MapOptions{}}).wait();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.result->cache_hit);

  MappingService service{service_options(2)};
  ASSERT_TRUE(service.submit({"lnn", 8, MapOptions{}}).wait().ok());
  MappingService::Submit no_cache;
  no_cache.use_cache = false;
  const JobResult bypass =
      service.submit({"lnn", 8, MapOptions{}}, no_cache).wait();
  ASSERT_TRUE(bypass.ok());
  EXPECT_FALSE(bypass.result->cache_hit);
}

TEST(ResultCache, LruEvictsTheColdestEntryPerShard) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  const auto result = std::make_shared<const MapResult>();
  cache.put("a", result);
  cache.put("b", result);
  EXPECT_NE(cache.get("a"), nullptr);  // promotes "a" to MRU
  cache.put("c", result);              // evicts "b"
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCache, GlobalCapacityBoundHoldsWhenShardsDoNotDivide) {
  // 10 entries over 8 shards used to ceil-round to 2 per shard — a de facto
  // bound of 16. The quota split must keep the global total exact.
  ResultCache cache(/*capacity=*/10, /*shards=*/8);
  const auto result = std::make_shared<const MapResult>();
  for (int i = 0; i < 200; ++i) cache.put("key-" + std::to_string(i), result);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.capacity, 10u);
  EXPECT_EQ(stats.entries, 10u) << "never over, and full under pressure";
  EXPECT_EQ(stats.entries + stats.evictions, stats.insertions);
}

TEST(ResultCache, SaveLoadRoundTripServesBitIdenticalHits) {
  MappingService first{service_options(2)};
  const JobResult lat = first.submit({"lattice", 9, MapOptions{}}).wait();
  const JobResult line = first.submit({"lnn", 6, MapOptions{}}).wait();
  ASSERT_TRUE(lat.ok() && line.ok()) << lat.error << line.error;

  std::stringstream blob;
  ASSERT_TRUE(first.cache().save(blob));

  MappingService second{service_options(2)};
  std::string error;
  ASSERT_TRUE(second.cache().load(blob, &error)) << error;

  const JobResult warm = second.submit({"lattice", 9, MapOptions{}}).wait();
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_TRUE(warm.result->cache_hit) << "restored entries must hit";
  // The QASM codec is the payload authority: round-tripped gates, angles and
  // mappings must compare equal character for character.
  EXPECT_EQ(to_qasm(warm.result->mapped), to_qasm(lat.result->mapped));
  EXPECT_EQ(warm.result->n, lat.result->n);
  EXPECT_EQ(warm.result->graph.name(), lat.result->graph.name());
  EXPECT_EQ(warm.result->graph.num_qubits(), lat.result->graph.num_qubits());
  EXPECT_EQ(warm.result->graph.num_edges(), lat.result->graph.num_edges());
  EXPECT_EQ(warm.result->check.ok, lat.result->check.ok);
  EXPECT_EQ(warm.result->check.depth, lat.result->check.depth);
  EXPECT_EQ(warm.result->check.counts.cnot, lat.result->check.counts.cnot);
  EXPECT_EQ(warm.result->check.counts.swap, lat.result->check.counts.swap);
  EXPECT_EQ(warm.result->timings.map_seconds, 0.0);

  const JobResult warm2 = second.submit({"lnn", 6, MapOptions{}}).wait();
  ASSERT_TRUE(warm2.ok()) << warm2.error;
  EXPECT_TRUE(warm2.result->cache_hit);

  // Garbage fails with a message, never an exception.
  std::istringstream garbage("not a cache file\n");
  EXPECT_FALSE(second.cache().load(garbage, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ResultCache, KeyCoversEveryResultShapingKnob) {
  const MapOptions base;
  const std::string k = ResultCache::key("lattice", 16, base);
  {
    MapOptions o;
    o.strict_ie = true;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.lattice_phase_offset = 0;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.transversal_unit_swap = false;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.sabre.seed = 7;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.verify = false;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.verify_mode = VerifyMode::kReplay;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  // Every SATMAP field that shapes output must fragment the key — a stale
  // hit here would silently return wrong-backend results.
  {
    MapOptions o;
    o.satmap.time_budget_seconds = 99.0;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.max_layers = 7;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.minimize_swaps = false;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.solver = "dpll";
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.incremental = false;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.portfolio = true;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.lanes = 4;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.portfolio_backends = {"cdcl", "dpll"};
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.core_guided = false;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  // SABRE knobs, same audit.
  {
    MapOptions o;
    o.sabre.trials = 9;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.sabre.extended_weight += 0.25;
    EXPECT_NE(ResultCache::key("lattice", 16, o), k);
  }
  // Serving knobs must NOT fragment the key: a deadlined re-request of the
  // same mapping is still a hit.
  {
    MapOptions o;
    o.deadline_seconds = 2.5;
    std::atomic<bool> token{false};
    o.cancel = &token;
    EXPECT_EQ(ResultCache::key("lattice", 16, o), k);
  }
  {
    MapOptions o;
    o.satmap.dump_cnf_path = "/tmp/debug.cnf";
    sat::SolverStats sink;
    o.satmap.stats_out = &sink;
    std::string winner_sink;
    o.satmap.winner_out = &winner_sink;
    EXPECT_EQ(ResultCache::key("lattice", 16, o), k)
        << "debug hooks never shape the result";
  }
  EXPECT_NE(ResultCache::key("lattice", 25, base), k);
  EXPECT_NE(ResultCache::key("grid", 16, base), k);
}

// ------------------------------------------------------- batch front-end --

TEST(ServiceBatch, SecondIdenticalBatchIsServedFromTheCache) {
  // map_qft_batch rides MappingService::shared(): repeating a deterministic
  // batch must come back entirely from the cache, bit-identically.
  std::vector<BatchRequest> reqs;
  for (std::int32_t n : {4, 9, 16}) reqs.push_back({"lattice", n, MapOptions{}});
  const auto cold = map_qft_batch(reqs, 2);
  const auto warm = map_qft_batch(reqs, 2);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    ASSERT_TRUE(cold[i].ok) << cold[i].error;
    ASSERT_TRUE(warm[i].ok) << warm[i].error;
    EXPECT_TRUE(warm[i].result.cache_hit);
    EXPECT_EQ(warm[i].result.timings.map_seconds, 0.0);
    EXPECT_EQ(warm[i].result.mapped.circuit.to_string(),
              cold[i].result.mapped.circuit.to_string());
  }
}

// ---------------------------------------------------------- serve protocol --

TEST(Serve, ParsesTheDocumentedRequestShape) {
  const ServeRequest req = parse_serve_request(
      R"({"id": 7, "engine": "sycamore", "m": 6, "priority": 3,)"
      R"( "deadline": 1.5, "strict_ie": true, "cache": false})");
  ASSERT_TRUE(req.ok) << req.error;
  EXPECT_EQ(req.id, "7");
  EXPECT_EQ(req.request.engine, "sycamore");
  EXPECT_EQ(req.request.n, 36);
  EXPECT_TRUE(req.request.options.strict_ie);
  EXPECT_EQ(req.submit.priority, 3);
  EXPECT_DOUBLE_EQ(req.submit.deadline_seconds, 1.5);
  EXPECT_FALSE(req.submit.use_cache);
}

TEST(Serve, ParsesTheSatBackendKnobs) {
  const ServeRequest req = parse_serve_request(
      R"({"id": 9, "engine": "satmap", "n": 4, "budget": 30.0,)"
      R"( "solver": "dpll", "sat_incremental": false})");
  ASSERT_TRUE(req.ok) << req.error;
  EXPECT_EQ(req.request.options.satmap.solver, "dpll");
  EXPECT_FALSE(req.request.options.satmap.incremental);
  EXPECT_DOUBLE_EQ(req.request.options.satmap.time_budget_seconds, 30.0);

  // Defaults when absent.
  const ServeRequest plain =
      parse_serve_request(R"({"engine": "satmap", "n": 4})");
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_EQ(plain.request.options.satmap.solver, "cdcl");
  EXPECT_TRUE(plain.request.options.satmap.incremental);

  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "satmap", "n": 4, "solver": 3})").ok);
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "satmap", "n": 4, "solver": ""})").ok);
  EXPECT_FALSE(parse_serve_request(
                   R"({"engine": "satmap", "n": 4, "sat_incremental": 1})")
                   .ok);
}

TEST(Serve, ParsesThePortfolioKnobs) {
  const ServeRequest req = parse_serve_request(
      R"({"id": 11, "engine": "satmap", "n": 4, "portfolio": true,)"
      R"( "lanes": 4, "sat_core_guided": false})");
  ASSERT_TRUE(req.ok) << req.error;
  EXPECT_TRUE(req.request.options.satmap.portfolio);
  EXPECT_EQ(req.request.options.satmap.lanes, 4);
  EXPECT_FALSE(req.request.options.satmap.core_guided);

  // Defaults when absent.
  const ServeRequest plain =
      parse_serve_request(R"({"engine": "satmap", "n": 4})");
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_FALSE(plain.request.options.satmap.portfolio);
  EXPECT_EQ(plain.request.options.satmap.lanes, 2);
  EXPECT_TRUE(plain.request.options.satmap.core_guided);

  // Type and range failures come back in-band.
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "satmap", "n": 4, "portfolio": 1})")
          .ok);
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "satmap", "n": 4, "lanes": 0})").ok);
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "satmap", "n": 4, "lanes": 65})").ok);
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "satmap", "n": 4, "lanes": 2.5})").ok);
}

TEST(Serve, SatmapResponsesCarrySolverStats) {
  // An unknown backend fails in-band; a solved run reports its search
  // effort; analytical responses keep their pre-PR shape.
  std::istringstream in(
      "{\"id\": 1, \"engine\": \"satmap\", \"n\": 3, \"budget\": 60}\n"
      "{\"id\": 2, \"engine\": \"satmap\", \"n\": 3, \"solver\": \"bogus\"}\n"
      "{\"id\": 3, \"engine\": \"lnn\", \"n\": 8}\n");
  std::ostringstream out;
  MappingService service{service_options(1)};
  EXPECT_EQ(run_serve_loop(in, out, service), 0);

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << out.str();
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"sat_conflicts\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"sat_solve_calls\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("unknown solver backend"), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(lines[2].find("\"sat_conflicts\""), std::string::npos)
      << "analytical engines must not grow SAT fields";
}

TEST(Serve, PortfolioRunsNameTheirWinningLane) {
  // A portfolio satmap request reports which lane decided it; single-backend
  // requests keep their pre-PR shape (no portfolio_winner field).
  std::istringstream in(
      "{\"id\": 1, \"engine\": \"satmap\", \"n\": 3, \"budget\": 60,"
      " \"portfolio\": true, \"lanes\": 2}\n"
      "{\"id\": 2, \"engine\": \"satmap\", \"n\": 3, \"budget\": 60,"
      " \"cache\": false}\n");
  std::ostringstream out;
  MappingService service{service_options(1)};
  EXPECT_EQ(run_serve_loop(in, out, service), 0);

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u) << out.str();
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"portfolio_winner\":\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[1].find("\"portfolio_winner\""), std::string::npos)
      << "single-backend responses must not grow the field: " << lines[1];
}

TEST(Serve, RejectsMalformedLinesWithTheIdEchoed) {
  EXPECT_FALSE(parse_serve_request("").ok);
  EXPECT_FALSE(parse_serve_request("not json").ok);
  EXPECT_FALSE(parse_serve_request(R"({"engine": "lnn"})").ok)
      << "n is required";
  EXPECT_FALSE(parse_serve_request(R"({"n": 8})").ok) << "engine is required";
  EXPECT_FALSE(parse_serve_request(R"({"engine": "lnn", "n": 0})").ok);
  EXPECT_FALSE(parse_serve_request(R"({"engine": "lnn", "n": 8.5})").ok);
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "lnn", "n": 8, "n": 9})").ok)
      << "duplicate keys";

  const ServeRequest typo =
      parse_serve_request(R"({"id": "x", "engine": "lnn", "n": 8, "nap": 1})");
  EXPECT_FALSE(typo.ok);
  EXPECT_NE(typo.error.find("unknown field"), std::string::npos);
  EXPECT_EQ(typo.id, "\"x\"") << "id survives rejection for the response";
}

TEST(Serve, LoopStreamsResponsesInRequestOrderWithCacheHits) {
  std::istringstream in(
      "{\"id\": 1, \"engine\": \"lattice\", \"n\": 9}\n"
      "\n"  // blank lines are skipped
      "{\"id\": 2, \"engine\": \"lattice\", \"n\": 9}\n"
      "{\"id\": 3, \"engine\": \"nosuch\", \"n\": 4}\n"
      "{\"id\": 4, \"bad\"\n");
  std::ostringstream out;
  // One worker serializes the two identical requests, so the second is
  // guaranteed to find the first's cache entry (with more workers they may
  // race and both miss — the service does not coalesce in-flight twins).
  MappingService service{service_options(1)};
  EXPECT_EQ(run_serve_loop(in, out, service), 0);

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << out.str();
  EXPECT_NE(lines[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"map_seconds\":0,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("unknown engine"), std::string::npos);
  EXPECT_NE(lines[3].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[3].find("parse error"), std::string::npos);
}

TEST(Serve, UnicodeEscapesDecodeToUtf8) {
  const ServeRequest req =
      parse_serve_request(R"({"id": "q", "engine": "lnn", "n": 4})");
  ASSERT_TRUE(req.ok) << req.error;
  EXPECT_EQ(req.request.engine, "lnn");

  // Supplementary-plane escape: the surrogate pair combines into U+1F600
  // and re-encodes as four bytes of UTF-8 in the echoed id.
  const ServeRequest emoji = parse_serve_request(
      R"({"id": "\uD83D\uDE00", "engine": "lnn", "n": 4})");
  ASSERT_TRUE(emoji.ok) << emoji.error;
  EXPECT_EQ(emoji.id, "\"\xF0\x9F\x98\x80\"");

  const ServeRequest bmp = parse_serve_request(
      R"({"id": "\u00e9", "engine": "lnn", "n": 4})");
  ASSERT_TRUE(bmp.ok) << bmp.error;
  EXPECT_EQ(bmp.id, "\"\xC3\xA9\"");

  for (const char* bad : {
           R"({"id": "\uD83D", "engine": "lnn", "n": 4})",   // unpaired high
           R"({"id": "\uDE00", "engine": "lnn", "n": 4})",   // lone low
           R"({"id": "\uD83Dxy", "engine": "lnn", "n": 4})", // high then junk
           R"({"id": "\u12G4", "engine": "lnn", "n": 4})",   // bad hex digit
           R"({"id": "\u12)",                                // truncated
       }) {
    EXPECT_FALSE(parse_serve_request(bad).ok) << bad;
  }
}

ServeRequest parse_unterminated(std::string_view text) {
  // Heap buffer sized exactly to the payload, no NUL terminator: the ASan
  // leg turns any parser read past `end` into a hard failure.
  std::vector<char> exact(text.begin(), text.end());
  return parse_serve_request(std::string_view(exact.data(), exact.size()));
}

TEST(Serve, ParserNeverReadsPastAnUnterminatedBuffer) {
  EXPECT_TRUE(parse_unterminated(R"({"engine":"lnn","n":12})").ok);
  // Truncations ending inside every token class — keyword, number, string,
  // escape — must fail cleanly without touching bytes past the buffer.
  for (const char* bad : {
           R"({"cache":tru)",
           R"({"cache":t)",
           R"({"n":12)",
           R"({"n":)",
           R"({"n":1e)",
           R"({"engine":"ln)",
           R"({"engine":"ln\)",
           R"({"id":"\u00)",
           R"({"engine":"lnn","n":12)",
           R"({)",
       }) {
    EXPECT_FALSE(parse_unterminated(bad).ok) << bad;
  }
}

TEST(Serve, MetricsRequestAnswersInBandAndRejectsMixedShapes) {
  std::istringstream in(
      "{\"id\": 1, \"engine\": \"lnn\", \"n\": 8}\n"
      "{\"id\": 2, \"metrics\": true}\n"
      "{\"metrics\": true, \"n\": 4}\n"
      "{\"metrics\": false}\n");
  std::ostringstream out;
  MappingService service{service_options(1)};
  EXPECT_EQ(run_serve_loop(in, out, service), 0);

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << out.str();
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"metrics\":true"), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"workers\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"cache\":{"), std::string::npos);
  EXPECT_NE(lines[1].find("\"capacity\":1024"), std::string::npos);
  EXPECT_NE(lines[1].find("\"sat\":{"), std::string::npos);
  EXPECT_NE(lines[1].find("\"portfolio\":{\"races\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"lane_cancellations\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"map_seconds\":{\"count\":"), std::string::npos);
  EXPECT_NE(lines[2].find("no other fields"), std::string::npos) << lines[2];
  EXPECT_NE(lines[3].find("\\\"metrics\\\" must be true"), std::string::npos)
      << lines[3];
}

TEST(Serve, DeadClientStopsTheLoopAndCancelsTheBacklog) {
  // An output stream whose every write fails — the stdio equivalent of a
  // client that hung up.
  struct FailBuf : std::streambuf {
    int_type overflow(int_type) override { return traits_type::eof(); }
  };
  std::string input;
  for (int i = 0; i < 10; ++i) {
    input += "{\"id\": " + std::to_string(i) +
             ", \"engine\": \"sleeper\", \"n\": 4}\n";
  }
  std::istringstream in(input);
  FailBuf fail_buf;
  std::ostream out(&fail_buf);
  const MapperPipeline pipeline = pipeline_with_sleeper(0.5);
  MappingService service{service_options(1), pipeline};
  WallTimer timer;
  EXPECT_EQ(run_serve_loop(in, out, service), 1);
  // Ten naps at 0.5 s on one worker is 5 s if the loop grinds through the
  // whole backlog; noticing the dead stream after the first response and
  // cancelling the rest must beat that by a wide margin.
  EXPECT_LT(timer.seconds(), 3.0);
}

// ---------------------------------------------------- lifecycle under load --

TEST(Service, DestructionCancelsQueuedJobsAndJoinsWorkers) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.2);
  JobHandle running, queued;
  {
    MappingService service{service_options(1), pipeline};
    running = service.submit({"sleeper", 4, MapOptions{}});
    queued = service.submit({"lnn", 8, MapOptions{}});
    // Destructor: flips the running job's token, retires the queued one.
  }
  const JobResult ran = running.wait();
  EXPECT_TRUE(ran.status == JobStatus::kDone ||
              ran.status == JobStatus::kCancelled);
  EXPECT_EQ(queued.wait().status, JobStatus::kCancelled);
}

TEST(Service, DestructorOrphansGetQueueTimeAndTheCancelVocabulary) {
  // Shutdown retirement must account like JobHandle::cancel: same error
  // vocabulary, real queue_seconds (not 0.0), no dispatch index.
  const MapperPipeline pipeline = pipeline_with_sleeper(0.3);
  JobHandle queued;
  {
    MappingService service{service_options(1), pipeline};
    JobHandle blocker = service.submit({"sleeper", 4, MapOptions{}});
    queued = service.submit({"lnn", 8, MapOptions{}});
    std::this_thread::sleep_for(20ms);  // accrue observable queue time
  }
  const JobResult out = queued.wait();
  EXPECT_EQ(out.status, JobStatus::kCancelled);
  EXPECT_NE(out.error.find("cancelled before start"), std::string::npos)
      << out.error;
  EXPECT_GT(out.queue_seconds, 0.0)
      << "orphans spent real time queued; the accounting must say so";
  EXPECT_EQ(out.dispatch_index, -1);
}

TEST(Service, DestructionCancelsRunningJobsInsteadOfWaitingOutBudgets) {
  // Shutdown must flip the cancel token of in-flight jobs — destroying a
  // service mid-SATMAP may not block for the 60 s solver budget.
  JobHandle job;
  WallTimer timer;
  {
    MappingService service{service_options(1)};
    MapOptions opts;
    opts.satmap.time_budget_seconds = 60.0;
    job = service.submit({"satmap", 10, opts});
    WallTimer spin;
    while (job.status() == JobStatus::kQueued && spin.seconds() < 10.0) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(job.status(), JobStatus::kRunning);
    timer.reset();
  }
  EXPECT_LT(timer.seconds(), 30.0) << "join must not wait out the budget";
  const JobResult out = job.wait();
  EXPECT_TRUE(out.status == JobStatus::kCancelled ||
              out.status == JobStatus::kDone);
}

TEST(Service, ConcurrentMixedLoadKeepsEveryJobAccounted) {
  // The TSan workout: many producers submitting against one service while
  // workers serve hits and misses concurrently.
  MappingService service{service_options(4)};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 12;
  std::vector<std::thread> producers;
  std::vector<std::vector<JobHandle>> handles(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &handles, p]() {
      const char* engines[] = {"lnn", "heavy_hex", "sycamore", "lattice"};
      for (int i = 0; i < kPerProducer; ++i) {
        BatchRequest req;
        req.engine = engines[(p + i) % 4];
        req.n = 4 + (i % 3) * 5;
        handles[p].push_back(service.submit(std::move(req)));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& per_producer : handles) {
    for (auto& handle : per_producer) {
      const JobResult out = handle.wait();
      ASSERT_EQ(out.status, JobStatus::kDone) << out.error;
      EXPECT_TRUE(out.result->check.ok) << out.result->check.error;
    }
  }
  const ResultCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.hits, 0u) << "repeated requests must hit";
}

// ------------------------------------------------------- device requests --

// A 4-qubit line device as the inline-JSON value of a "device" field (the
// inner quotes are escaped because it rides inside a JSON string).
const char* kInlineDevice =
    R"("{\"qubits\": 4, \"edges\": [{\"a\": 0, \"b\": 1},)"
    R"( {\"a\": 1, \"b\": 2}, {\"a\": 2, \"b\": 3}]}")";

TEST(Serve, ParsesInlineDeviceAndObjective) {
  const ServeRequest req = parse_serve_request(
      std::string(R"({"id": 1, "engine": "sabre", "n": 4,)"
                  R"( "objective": "fidelity", "device": )") +
      kInlineDevice + "}");
  ASSERT_TRUE(req.ok) << req.error;
  EXPECT_TRUE(req.device_loaded);
  ASSERT_NE(req.request.options.device, nullptr);
  EXPECT_EQ(req.request.options.device->num_qubits(), 4);
  EXPECT_EQ(req.request.options.objective, Objective::kFidelity);

  const ServeRequest depth = parse_serve_request(
      R"({"engine": "sabre", "n": 4, "objective": "depth"})");
  ASSERT_TRUE(depth.ok) << depth.error;
  EXPECT_EQ(depth.request.options.objective, Objective::kDepth);
}

TEST(Serve, DeviceLoadFailuresAnswerInBandWithThePositionedMessage) {
  // Malformed inline document: the loader's positioned message comes back.
  const ServeRequest bad = parse_serve_request(
      R"({"id": 2, "engine": "sabre", "n": 4, "device": "{\"qubits\": 0}"})");
  EXPECT_FALSE(bad.ok);
  EXPECT_TRUE(bad.device_error);
  EXPECT_NE(bad.error.find("device json"), std::string::npos) << bad.error;
  EXPECT_EQ(bad.id, "2") << "id survives rejection for the response";

  // Missing file: same in-band path, the path named in the message.
  const ServeRequest missing = parse_serve_request(
      R"({"engine": "sabre", "n": 4, "device": "/nonexistent/dev.json"})");
  EXPECT_FALSE(missing.ok);
  EXPECT_TRUE(missing.device_error);
  EXPECT_NE(missing.error.find("/nonexistent/dev.json"), std::string::npos);

  // Wrong types fail loudly.
  EXPECT_FALSE(
      parse_serve_request(R"({"engine": "sabre", "n": 4, "device": 3})").ok);
  EXPECT_FALSE(parse_serve_request(
                   R"({"engine": "sabre", "n": 4, "objective": "speed"})")
                   .ok);
  EXPECT_FALSE(parse_serve_request(
                   R"({"engine": "sabre", "n": 4, "objective": true})")
                   .ok);
}

TEST(Serve, DeviceRequestsMapCacheAndRecalibrationMisses) {
  // Same request twice (one worker: the second is guaranteed to hit), then
  // the same shape with one edge's error rate edited — a different
  // fingerprint, which must miss.
  const std::string tail =
      std::string(R"("engine": "sabre", "n": 4, "device": )") + kInlineDevice +
      "}\n";
  const std::string edited_tail =
      std::string(R"("engine": "sabre", "n": 4, "device": )") +
      R"("{\"qubits\": 4, \"edges\": [{\"a\": 0, \"b\": 1, \"error\": 0.01},)"
      R"( {\"a\": 1, \"b\": 2}, {\"a\": 2, \"b\": 3}]}")" + "}\n";
  std::istringstream in(std::string(R"({"id": 1, )") + tail +
                        R"({"id": 2, )" + tail +
                        R"({"id": 3, )" + edited_tail);
  std::ostringstream out;
  MappingService service{service_options(1)};
  EXPECT_EQ(run_serve_loop(in, out, service), 0);

  std::vector<std::string> lines;
  std::istringstream reread(out.str());
  for (std::string line; std::getline(reread, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << out.str();
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"log10_fidelity\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"cache_hit\":false"), std::string::npos)
      << "edited calibration must not alias the cached entry";
}

TEST(Serve, MetricsCountDeviceLoadsAndCacheExpiry) {
  ServeMetrics metrics;
  ServeRequest loaded;
  loaded.ok = true;
  loaded.device_loaded = true;
  metrics.record_request(loaded);
  ServeRequest failed;
  failed.device_error = true;
  metrics.record_request(failed);
  metrics.record_request(ServeRequest{});  // no device involved
  EXPECT_EQ(metrics.device_loads.load(), 1u);
  EXPECT_EQ(metrics.device_load_errors.load(), 1u);

  MappingService::Options options = service_options(1);
  options.cache_ttl_seconds = 123.0;
  MappingService service{options};
  const std::string doc = metrics_json(service, metrics);
  EXPECT_NE(doc.find("\"devices\":{\"loaded\":1,\"load_errors\":1}"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"expired\":0"), std::string::npos) << doc;
}

TEST(Service, CacheTtlOptionAgesServedEntries) {
  MappingService::Options options = service_options(1);
  options.cache_ttl_seconds = 0.02;
  MappingService service{options};
  BatchRequest req;
  req.engine = "lattice";
  req.n = 9;
  ASSERT_EQ(service.submit(req).wait().status, JobStatus::kDone);
  std::this_thread::sleep_for(50ms);
  const JobResult again = service.submit(req).wait();
  ASSERT_EQ(again.status, JobStatus::kDone);
  EXPECT_FALSE(again.result->cache_hit) << "the entry should have aged out";
  EXPECT_GE(service.cache_stats().expired, 1u);
}

}  // namespace
}  // namespace qfto
