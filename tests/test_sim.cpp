#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/qft_spec.hpp"
#include "common/prng.hpp"
#include "sim/dft.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"

namespace qfto {
namespace {

constexpr double kTol = 1e-10;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, BasisState) {
  StateVector sv = StateVector::basis(3, 5);
  EXPECT_NEAR(std::abs(sv.amplitudes()[5]), 1.0, kTol);
}

TEST(StateVector, HadamardTwiceIsIdentity) {
  StateVector sv = StateVector::basis(2, 2);
  sv.apply(Gate::h(1));
  sv.apply(Gate::h(1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 1.0, kTol);
}

TEST(StateVector, XFlipsBit) {
  StateVector sv = StateVector::basis(3, 0b010);
  sv.apply(Gate::x(0));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0b011]), 1.0, kTol);
}

TEST(StateVector, CnotControlled) {
  StateVector sv = StateVector::basis(2, 0b01);  // q0=1 control
  sv.apply(Gate::cnot(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0b11]), 1.0, kTol);
  StateVector sv2 = StateVector::basis(2, 0b00);
  sv2.apply(Gate::cnot(0, 1));
  EXPECT_NEAR(std::abs(sv2.amplitudes()[0b00]), 1.0, kTol);
}

TEST(StateVector, SwapExchangesBits) {
  StateVector sv = StateVector::basis(3, 0b001);
  sv.apply(Gate::swap(0, 2));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0b100]), 1.0, kTol);
}

TEST(StateVector, SwapEqualsThreeCnots) {
  Xoshiro256ss rng(3);
  StateVector a(3), b(3);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Amplitude amp{rng.uniform_double(), rng.uniform_double()};
    a.amplitudes()[i] = amp;
    b.amplitudes()[i] = amp;
  }
  a.apply(Gate::swap(0, 2));
  b.apply(Gate::cnot(0, 2));
  b.apply(Gate::cnot(2, 0));
  b.apply(Gate::cnot(0, 2));
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), 0.0, kTol);
  }
}

TEST(StateVector, CphasePhasesOnlyBothOnes) {
  StateVector sv = StateVector::basis(2, 0b11);
  sv.apply(Gate::cphase(0, 1, M_PI / 2));
  const Amplitude expect = std::polar(1.0, M_PI / 2);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3] - expect), 0.0, kTol);
  StateVector sv2 = StateVector::basis(2, 0b01);
  sv2.apply(Gate::cphase(0, 1, M_PI / 2));
  EXPECT_NEAR(std::abs(sv2.amplitudes()[1] - Amplitude{1.0, 0.0}), 0.0, kTol);
}

TEST(StateVector, CphaseSymmetric) {
  StateVector a = StateVector::basis(2, 3), b = StateVector::basis(2, 3);
  a.apply(Gate::cphase(0, 1, 0.7));
  b.apply(Gate::cphase(1, 0, 0.7));
  EXPECT_NEAR(std::abs(a.amplitudes()[3] - b.amplitudes()[3]), 0.0, kTol);
}

TEST(StateVector, RzAppliesPhaseToOneBranch) {
  StateVector sv(1);
  sv.apply(Gate::h(0));
  sv.apply(Gate::rz(0, M_PI));
  sv.apply(Gate::h(0));
  // H Rz(pi) H = X up to global phase.
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 1.0, kTol);
}

TEST(StateVector, NormPreserved) {
  Xoshiro256ss rng(5);
  StateVector sv(4);
  auto& amps = sv.amplitudes();
  double n2 = 0;
  for (auto& a : amps) {
    a = Amplitude{rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
    n2 += std::norm(a);
  }
  for (auto& a : amps) a /= std::sqrt(n2);
  const Circuit c = qft_logical(4);
  sv.apply(c);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, PermuteQubits) {
  StateVector sv = StateVector::basis(3, 0b001);  // qubit 0 set
  sv.permute_qubits({2, 0, 1});                   // q0 -> position 2
  EXPECT_NEAR(std::abs(sv.amplitudes()[0b100]), 1.0, kTol);
}

namespace {
std::uint64_t bit_reverse(std::uint64_t x, int n) {
  std::uint64_t r = 0;
  for (int b = 0; b < n; ++b) {
    if (x & (1ull << b)) r |= 1ull << (n - 1 - b);
  }
  return r;
}
}  // namespace

// The key simulator correctness test. With qubit i = bit i of the index, the
// textbook-ordered circuit (H on q0 first) realizes U|x> = DFT|rev(x)>: the
// usual statement "the QFT circuit ends bit-reversed" expressed on the input
// side for our bit convention.
TEST(QftLogicalVsDft, BasisStates) {
  for (int n : {1, 2, 3, 5}) {
    const Circuit c = qft_logical(n);
    const std::uint64_t dim = 1ull << n;
    for (std::uint64_t x = 0; x < dim; x += 3) {
      StateVector sv = StateVector::basis(n, x);
      sv.apply(c);
      std::vector<std::complex<double>> ref(dim, {0.0, 0.0});
      ref[bit_reverse(x, n)] = {1.0, 0.0};
      qft_reference(ref);
      for (std::uint64_t y = 0; y < dim; ++y) {
        EXPECT_NEAR(std::abs(sv.amplitudes()[y] - ref[y]), 0.0, 1e-9)
            << "n=" << n << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(QftLogicalVsDft, RandomState) {
  const int n = 6;
  const std::uint64_t dim = 1ull << n;
  Xoshiro256ss rng(11);
  std::vector<std::complex<double>> amps(dim);
  double n2 = 0;
  for (auto& a : amps) {
    a = {rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
    n2 += std::norm(a);
  }
  for (auto& a : amps) a /= std::sqrt(n2);

  StateVector sv(n);
  sv.amplitudes() = amps;
  sv.apply(qft_logical(n));

  // Reference: bit-reverse the input amplitudes, then FFT.
  std::vector<std::complex<double>> ref(dim);
  for (std::uint64_t x = 0; x < dim; ++x) ref[bit_reverse(x, n)] = amps[x];
  qft_reference(ref);
  for (std::uint64_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitudes()[i] - ref[i]), 0.0, 1e-9);
  }
}

TEST(Unitary, ExtractAndCompare) {
  const Circuit c = qft_logical(3);
  const Unitary u = circuit_unitary(c);
  EXPECT_EQ(u.size(), 8u);
  EXPECT_NEAR(unitary_distance(u, u), 0.0, kTol);
  // QFT matrix entries all have magnitude 1/sqrt(8).
  for (const auto& col : u) {
    for (const auto& e : col) {
      EXPECT_NEAR(std::abs(e), 1.0 / std::sqrt(8.0), 1e-9);
    }
  }
}

TEST(Dft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> v(3);
  EXPECT_THROW(qft_reference(v), std::invalid_argument);
}

TEST(Dft, UnitaryOnDelta) {
  std::vector<std::complex<double>> v(8, {0.0, 0.0});
  v[0] = {1.0, 0.0};
  qft_reference(v);
  for (const auto& e : v) {
    EXPECT_NEAR(std::abs(e - std::complex<double>(1.0 / std::sqrt(8.0), 0.0)),
                0.0, 1e-12);
  }
}

}  // namespace
}  // namespace qfto
