#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "arch/line.hpp"
#include "circuit/qft_spec.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "verify/equivalence.hpp"
#include "verify/mapping_tracker.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

std::vector<PhysicalQubit> identity_map(std::int32_t n) {
  std::vector<PhysicalQubit> m(n);
  std::iota(m.begin(), m.end(), 0);
  return m;
}

// Hand-built valid mapped QFT on a 2-qubit line:
// H(0); CP(0,1); H(1)  with identity mappings.
MappedCircuit tiny_valid() {
  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  mc.circuit.append(Gate::h(1));
  mc.initial = identity_map(2);
  mc.final_mapping = identity_map(2);
  return mc;
}

TEST(MappingTracker, FollowsSwaps) {
  MappingTracker t(identity_map(3), 3);
  EXPECT_EQ(t.physical_of(0), 0);
  t.apply_swap(0, 1);
  EXPECT_EQ(t.physical_of(0), 1);
  EXPECT_EQ(t.physical_of(1), 0);
  EXPECT_EQ(t.logical_at(0), 1);
  t.apply_swap(1, 2);
  EXPECT_EQ(t.physical_of(0), 2);
}

TEST(MappingTracker, HandlesEmptyNodes) {
  MappingTracker t({2}, 3);  // one logical qubit at physical 2
  EXPECT_EQ(t.logical_at(0), kInvalidQubit);
  t.apply_swap(2, 0);
  EXPECT_EQ(t.physical_of(0), 0);
  EXPECT_EQ(t.logical_at(2), kInvalidQubit);
}

TEST(MappingTracker, RejectsBadMappings) {
  EXPECT_THROW(MappingTracker({0, 0}, 3), std::invalid_argument);
  EXPECT_THROW(MappingTracker({5}, 3), std::invalid_argument);
}

TEST(Checker, AcceptsValidTiny) {
  const CouplingGraph g = make_line(2);
  const auto r = check_qft_mapping(tiny_valid(), g);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.depth, 3);
  EXPECT_EQ(r.counts.cphase, 1);
}

TEST(Checker, RejectsNonAdjacentGate) {
  const CouplingGraph g = make_line(3);
  MappedCircuit mc;
  mc.circuit = Circuit(3);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::cphase(0, 2, qft_angle(0, 1)));
  mc.initial = identity_map(2);
  mc.final_mapping = identity_map(2);
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not coupled"), std::string::npos);
}

TEST(Checker, RejectsWrongAngle) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, 0.123));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("angle"), std::string::npos);
}

TEST(Checker, RejectsMissingPair) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing CPHASE"), std::string::npos);
}

TEST(Checker, RejectsWindowViolationBeforeH) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::cphase(0, 1, qft_angle(0, 1)));  // before H(0): invalid
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("before H(0)"), std::string::npos);
}

TEST(Checker, RejectsWindowViolationAfterH) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  c.append(Gate::cphase(0, 1, qft_angle(0, 1)));  // after H(1): invalid
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("after H(1)"), std::string::npos);
}

TEST(Checker, RejectsDuplicateH) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate H"), std::string::npos);
}

TEST(Checker, RejectsWrongFinalMapping) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  mc.final_mapping = {1, 0};  // circuit has no swaps
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("final mapping"), std::string::npos);
}

TEST(Checker, TracksSwapsIntoFinalMapping) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  mc.circuit.append(Gate::swap(0, 1));
  mc.circuit.append(Gate::h(0));  // logical 1 now at physical 0
  mc.initial = identity_map(2);
  mc.final_mapping = {1, 0};
  const auto r = check_qft_mapping(mc, g);
  EXPECT_TRUE(r.ok) << r.error;
}

// ------------------------------------------------------- incremental API --

TEST(IncrementalChecker, StreamsTinyValidCircuit) {
  const CouplingGraph g = make_line(2);
  const MappedCircuit mc = tiny_valid();
  IncrementalQftChecker chk(mc.initial, g);
  for (const Gate& gate : mc.circuit) ASSERT_TRUE(chk.push(gate));
  EXPECT_FALSE(chk.failed());
  EXPECT_EQ(chk.gates_seen(), 3);
  const auto r = chk.finish(mc.final_mapping);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.depth, 3);
  EXPECT_EQ(r.counts.cphase, 1);
  EXPECT_EQ(r.counts.h, 2);
}

TEST(IncrementalChecker, MidStreamStateIsObservable) {
  const CouplingGraph g = make_line(2);
  IncrementalQftChecker chk({0, 1}, g);
  EXPECT_EQ(chk.logical_at(0), 0);
  ASSERT_TRUE(chk.push(Gate::h(0)));
  EXPECT_EQ(chk.depth(), 1);
  ASSERT_TRUE(chk.push(Gate::swap(0, 1)));
  EXPECT_EQ(chk.logical_at(0), 1);
  EXPECT_EQ(chk.counts().swap, 1);
}

TEST(IncrementalChecker, RejectsOutOfRangeWires) {
  const CouplingGraph g = make_line(2);
  IncrementalQftChecker chk({0, 1}, g);
  EXPECT_FALSE(chk.push(Gate::h(7)));
  EXPECT_TRUE(chk.failed());
  EXPECT_NE(chk.error().find("out of range"), std::string::npos);
  // Subsequent gates are ignored once failed.
  EXPECT_FALSE(chk.push(Gate::h(0)));
}

TEST(IncrementalChecker, RejectsBadInitialMapping) {
  const CouplingGraph g = make_line(3);
  EXPECT_THROW(IncrementalQftChecker({0, 0}, g), std::invalid_argument);
  EXPECT_THROW(IncrementalQftChecker({5}, g), std::invalid_argument);
}

// --------------------------------------------------------- mutation suite --
//
// For every checker failure mode, corrupt a valid engine-mapped circuit and
// assert that the rewrite (check_qft_mapping), the legacy replay oracle
// (check_qft_mapping_replay) and the raw IncrementalQftChecker API all
// reject it with the same diagnosis — locking the streaming rewrite against
// silently accepting what the old checker refused.

class CheckerMutation : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    engine_ = GetParam();
    result_ = map_qft(engine_, 16);
    ASSERT_TRUE(result_.check.ok) << result_.check.error;
    latency_ = MapperPipeline::global().at(engine_).latency(result_.graph);
  }

  const CouplingGraph& graph() const { return result_.graph; }
  const MappedCircuit& valid() const { return result_.mapped; }

  std::vector<Gate> gates() const {
    const Circuit& c = valid().circuit;
    return std::vector<Gate>(c.begin(), c.end());
  }

  MappedCircuit rebuilt(const std::vector<Gate>& gates) const {
    MappedCircuit mc;
    mc.circuit = Circuit(valid().circuit.num_qubits());
    for (const Gate& g : gates) mc.circuit.append(g);
    mc.initial = valid().initial;
    mc.final_mapping = valid().final_mapping;
    return mc;
  }

  static std::size_t find_kind(const std::vector<Gate>& gates, GateKind kind) {
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (gates[i].kind == kind) return i;
    }
    return gates.size();
  }

  static std::size_t rfind_kind(const std::vector<Gate>& gates,
                                GateKind kind) {
    for (std::size_t i = gates.size(); i-- > 0;) {
      if (gates[i].kind == kind) return i;
    }
    return gates.size();
  }

  void expect_all_reject(const MappedCircuit& mc,
                         const std::string& substring) const {
    const auto fast = check_qft_mapping(mc, graph(), latency_);
    EXPECT_FALSE(fast.ok);
    EXPECT_NE(fast.error.find(substring), std::string::npos) << fast.error;

    const auto legacy = check_qft_mapping_replay(mc, graph(), latency_);
    EXPECT_FALSE(legacy.ok);
    EXPECT_EQ(fast.error, legacy.error);

    IncrementalQftChecker chk(mc.initial, graph(), latency_);
    for (const Gate& g : mc.circuit) {
      if (!chk.push(g)) break;
    }
    const auto streamed = chk.finish(mc.final_mapping);
    EXPECT_FALSE(streamed.ok);
    EXPECT_EQ(streamed.error, fast.error);
  }

  std::string engine_;
  MapResult result_;
  LatencyFn latency_;
};

TEST_P(CheckerMutation, ValidCircuitAcceptedIdenticallyByBothCheckers) {
  const auto fast = check_qft_mapping(valid(), graph(), latency_);
  const auto legacy = check_qft_mapping_replay(valid(), graph(), latency_);
  ASSERT_TRUE(fast.ok) << fast.error;
  ASSERT_TRUE(legacy.ok) << legacy.error;
  EXPECT_EQ(fast.depth, legacy.depth);
  EXPECT_EQ(fast.counts.h, legacy.counts.h);
  EXPECT_EQ(fast.counts.cphase, legacy.counts.cphase);
  EXPECT_EQ(fast.counts.swap, legacy.counts.swap);
  EXPECT_EQ(fast.counts.total(), legacy.counts.total());
}

TEST_P(CheckerMutation, RejectsNonCoupledGate) {
  auto gs = gates();
  const std::size_t i = find_kind(gs, GateKind::kCPhase);
  ASSERT_LT(i, gs.size());
  PhysicalQubit far = kInvalidQubit;
  for (PhysicalQubit p = 0; p < graph().num_qubits(); ++p) {
    if (p != gs[i].q0 && !graph().adjacent(gs[i].q0, p)) {
      far = p;
      break;
    }
  }
  ASSERT_NE(far, kInvalidQubit);
  gs[i].q1 = far;
  expect_all_reject(rebuilt(gs), "not coupled");
}

TEST_P(CheckerMutation, RejectsDuplicateH) {
  auto gs = gates();
  const std::size_t i = find_kind(gs, GateKind::kH);
  ASSERT_LT(i, gs.size());
  gs.insert(gs.begin() + i + 1, gs[i]);
  expect_all_reject(rebuilt(gs), "duplicate H");
}

TEST_P(CheckerMutation, RejectsMissingH) {
  auto gs = gates();
  const std::size_t i = rfind_kind(gs, GateKind::kH);
  ASSERT_LT(i, gs.size());
  gs.erase(gs.begin() + i);
  // Depending on what follows, either the H total or a Type-II window check
  // reports first; both diagnose the missing Hadamard.
  expect_all_reject(rebuilt(gs), "H");
}

TEST_P(CheckerMutation, RejectsDuplicateCphase) {
  auto gs = gates();
  const std::size_t i = find_kind(gs, GateKind::kCPhase);
  ASSERT_LT(i, gs.size());
  gs.insert(gs.begin() + i + 1, gs[i]);
  expect_all_reject(rebuilt(gs), "duplicate CPHASE");
}

TEST_P(CheckerMutation, RejectsMissingCphase) {
  auto gs = gates();
  const std::size_t i = find_kind(gs, GateKind::kCPhase);
  ASSERT_LT(i, gs.size());
  gs.erase(gs.begin() + i);
  expect_all_reject(rebuilt(gs), "missing CPHASE");
}

TEST_P(CheckerMutation, RejectsWrongAngle) {
  auto gs = gates();
  const std::size_t i = find_kind(gs, GateKind::kCPhase);
  ASSERT_LT(i, gs.size());
  gs[i].angle += 0.125;
  expect_all_reject(rebuilt(gs), "angle");
}

TEST_P(CheckerMutation, RejectsTypeIiOrderingViolation) {
  // Hoisting a CPHASE to the very front of the circuit breaks the relaxed
  // ordering window: no H has executed yet, so the pair is premature (or,
  // when SWAPs have shuffled the occupants, the stamped angle no longer
  // matches the pair at that node). Either way the window logic must refuse.
  auto gs = gates();
  const std::size_t i = find_kind(gs, GateKind::kCPhase);
  ASSERT_LT(i, gs.size());
  const Gate moved = gs[i];
  gs.erase(gs.begin() + i);
  gs.insert(gs.begin(), moved);
  expect_all_reject(rebuilt(gs), "pair {");
}

TEST_P(CheckerMutation, RejectsWrongFinalMapping) {
  MappedCircuit mc = valid();
  ASSERT_GE(mc.final_mapping.size(), 2u);
  std::swap(mc.final_mapping[0], mc.final_mapping[1]);
  expect_all_reject(mc, "final mapping");
}

INSTANTIATE_TEST_SUITE_P(Engines, CheckerMutation,
                         ::testing::Values("lnn", "heavy_hex", "lattice"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(Equivalence, AcceptsTextbookIdentityMapping) {
  MappedCircuit mc = tiny_valid();
  EXPECT_LT(mapped_equivalence_error(mc), 1e-10);
}

TEST(Equivalence, DetectsWrongCircuit) {
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  mc.circuit = c;
  EXPECT_GT(mapped_equivalence_error(mc), 1e-3);
}

TEST(Equivalence, HandlesAncillaQubits) {
  // Logical 1-qubit QFT placed on physical node 2 of a 3-node register.
  MappedCircuit mc;
  mc.circuit = Circuit(3);
  mc.circuit.append(Gate::h(2));
  mc.initial = {2};
  mc.final_mapping = {2};
  EXPECT_LT(mapped_equivalence_error(mc), 1e-10);
}

}  // namespace
}  // namespace qfto
