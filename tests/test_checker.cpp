#include <gtest/gtest.h>

#include <numeric>

#include "arch/line.hpp"
#include "circuit/qft_spec.hpp"
#include "verify/equivalence.hpp"
#include "verify/mapping_tracker.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

std::vector<PhysicalQubit> identity_map(std::int32_t n) {
  std::vector<PhysicalQubit> m(n);
  std::iota(m.begin(), m.end(), 0);
  return m;
}

// Hand-built valid mapped QFT on a 2-qubit line:
// H(0); CP(0,1); H(1)  with identity mappings.
MappedCircuit tiny_valid() {
  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  mc.circuit.append(Gate::h(1));
  mc.initial = identity_map(2);
  mc.final_mapping = identity_map(2);
  return mc;
}

TEST(MappingTracker, FollowsSwaps) {
  MappingTracker t(identity_map(3), 3);
  EXPECT_EQ(t.physical_of(0), 0);
  t.apply_swap(0, 1);
  EXPECT_EQ(t.physical_of(0), 1);
  EXPECT_EQ(t.physical_of(1), 0);
  EXPECT_EQ(t.logical_at(0), 1);
  t.apply_swap(1, 2);
  EXPECT_EQ(t.physical_of(0), 2);
}

TEST(MappingTracker, HandlesEmptyNodes) {
  MappingTracker t({2}, 3);  // one logical qubit at physical 2
  EXPECT_EQ(t.logical_at(0), kInvalidQubit);
  t.apply_swap(2, 0);
  EXPECT_EQ(t.physical_of(0), 0);
  EXPECT_EQ(t.logical_at(2), kInvalidQubit);
}

TEST(MappingTracker, RejectsBadMappings) {
  EXPECT_THROW(MappingTracker({0, 0}, 3), std::invalid_argument);
  EXPECT_THROW(MappingTracker({5}, 3), std::invalid_argument);
}

TEST(Checker, AcceptsValidTiny) {
  const CouplingGraph g = make_line(2);
  const auto r = check_qft_mapping(tiny_valid(), g);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.depth, 3);
  EXPECT_EQ(r.counts.cphase, 1);
}

TEST(Checker, RejectsNonAdjacentGate) {
  const CouplingGraph g = make_line(3);
  MappedCircuit mc;
  mc.circuit = Circuit(3);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::cphase(0, 2, qft_angle(0, 1)));
  mc.initial = identity_map(2);
  mc.final_mapping = identity_map(2);
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not coupled"), std::string::npos);
}

TEST(Checker, RejectsWrongAngle) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, 0.123));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("angle"), std::string::npos);
}

TEST(Checker, RejectsMissingPair) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing CPHASE"), std::string::npos);
}

TEST(Checker, RejectsWindowViolationBeforeH) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::cphase(0, 1, qft_angle(0, 1)));  // before H(0): invalid
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("before H(0)"), std::string::npos);
}

TEST(Checker, RejectsWindowViolationAfterH) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  c.append(Gate::cphase(0, 1, qft_angle(0, 1)));  // after H(1): invalid
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("after H(1)"), std::string::npos);
}

TEST(Checker, RejectsDuplicateH) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  c.append(Gate::h(1));
  mc.circuit = c;
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate H"), std::string::npos);
}

TEST(Checker, RejectsWrongFinalMapping) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc = tiny_valid();
  mc.final_mapping = {1, 0};  // circuit has no swaps
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("final mapping"), std::string::npos);
}

TEST(Checker, TracksSwapsIntoFinalMapping) {
  const CouplingGraph g = make_line(2);
  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  mc.circuit.append(Gate::swap(0, 1));
  mc.circuit.append(Gate::h(0));  // logical 1 now at physical 0
  mc.initial = identity_map(2);
  mc.final_mapping = {1, 0};
  const auto r = check_qft_mapping(mc, g);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Equivalence, AcceptsTextbookIdentityMapping) {
  MappedCircuit mc = tiny_valid();
  EXPECT_LT(mapped_equivalence_error(mc), 1e-10);
}

TEST(Equivalence, DetectsWrongCircuit) {
  MappedCircuit mc = tiny_valid();
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  mc.circuit = c;
  EXPECT_GT(mapped_equivalence_error(mc), 1e-3);
}

TEST(Equivalence, HandlesAncillaQubits) {
  // Logical 1-qubit QFT placed on physical node 2 of a 3-node register.
  MappedCircuit mc;
  mc.circuit = Circuit(3);
  mc.circuit.append(Gate::h(2));
  mc.initial = {2};
  mc.final_mapping = {2};
  EXPECT_LT(mapped_equivalence_error(mc), 1e-10);
}

}  // namespace
}  // namespace qfto
