#include <gtest/gtest.h>

#include <cmath>

#include "arch/latency_model.hpp"
#include "circuit/circuit.hpp"
#include "circuit/inverse.hpp"
#include "circuit/mapped_circuit.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/stats.hpp"

namespace qfto {
namespace {

TEST(Gate, Factories) {
  const Gate h = Gate::h(3);
  EXPECT_EQ(h.kind, GateKind::kH);
  EXPECT_FALSE(h.two_qubit());
  EXPECT_EQ(h.q0, 3);
  EXPECT_EQ(h.q1, kInvalidQubit);

  const Gate cp = Gate::cphase(1, 2, 0.5);
  EXPECT_TRUE(cp.two_qubit());
  EXPECT_DOUBLE_EQ(cp.angle, 0.5);

  EXPECT_TRUE(Gate::swap(0, 1).two_qubit());
  EXPECT_TRUE(Gate::cnot(0, 1).two_qubit());
  EXPECT_FALSE(Gate::rz(0, 1.0).two_qubit());
  EXPECT_FALSE(Gate::x(0).two_qubit());
}

TEST(Gate, TouchesAndToString) {
  const Gate cp = Gate::cphase(1, 2, 0.5);
  EXPECT_TRUE(cp.touches(1));
  EXPECT_TRUE(cp.touches(2));
  EXPECT_FALSE(cp.touches(0));
  EXPECT_NE(cp.to_string().find("CP"), std::string::npos);
}

TEST(Circuit, AppendValidation) {
  Circuit c(2);
  EXPECT_NO_THROW(c.append(Gate::h(0)));
  EXPECT_THROW(c.append(Gate::h(2)), std::invalid_argument);
  EXPECT_THROW(c.append(Gate::swap(0, 0)), std::invalid_argument);
  EXPECT_THROW(c.append(Gate::swap(0, 5)), std::invalid_argument);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, Extend) {
  Circuit a(2), b(2);
  a.append(Gate::h(0));
  b.append(Gate::h(1));
  a.extend(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wrong(3);
  EXPECT_THROW(a.extend(wrong), std::invalid_argument);
}

TEST(QftSpec, GateCount) {
  for (int n : {1, 2, 3, 8}) {
    const Circuit c = qft_logical(n);
    const GateCounts gc = count_gates(c);
    EXPECT_EQ(gc.h, n);
    EXPECT_EQ(gc.cphase, qft_pair_count(n));
    EXPECT_EQ(gc.swap, 0);
  }
}

TEST(QftSpec, Angles) {
  EXPECT_DOUBLE_EQ(qft_angle(0, 1), M_PI / 2.0);
  EXPECT_DOUBLE_EQ(qft_angle(0, 2), M_PI / 4.0);
  EXPECT_DOUBLE_EQ(qft_angle(3, 5), M_PI / 4.0);
  EXPECT_THROW(qft_angle(2, 2), std::invalid_argument);
}

TEST(Scheduler, SerialChainDepth) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  // Two H on wire 0 serialize; H on wire 1 is parallel.
  EXPECT_EQ(circuit_depth(c), 2);
}

TEST(Scheduler, TwoQubitBlocksBothWires) {
  Circuit c(3);
  c.append(Gate::cphase(0, 1, 1.0));
  c.append(Gate::cphase(1, 2, 1.0));
  c.append(Gate::cphase(0, 2, 1.0));
  EXPECT_EQ(circuit_depth(c), 3);
}

TEST(Scheduler, WeightedLatency) {
  Circuit c(2);
  c.append(Gate::swap(0, 1));
  c.append(Gate::cphase(0, 1, 1.0));
  auto lat = [](const Gate& g) -> Cycle {
    return g.kind == GateKind::kSwap ? 6 : 2;
  };
  EXPECT_EQ(circuit_depth(c, lat), 8);
}

TEST(Scheduler, LayersGroupByStart) {
  Circuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::h(1));
  c.append(Gate::cphase(0, 1, 1.0));
  c.append(Gate::h(2));
  const Schedule s = schedule_asap(c, unit_latency);
  const auto layers = s.layers();
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].size(), 3u);  // H0, H1, H2
  EXPECT_EQ(layers[1].size(), 1u);  // CP(0,1)
}

TEST(Scheduler, EmptyCircuit) {
  Circuit c(3);
  EXPECT_EQ(circuit_depth(c), 0);
}

TEST(Scheduler, LayersSkipEmptyStartCycles) {
  // Weighted latency leaves gaps between start cycles; the bucket fill must
  // drop the empty buckets exactly like the old sorted-map grouping did.
  Circuit c(2);
  c.append(Gate::swap(0, 1));        // starts 0, lasts 6
  c.append(Gate::cphase(0, 1, 1.0));  // starts 6
  c.append(Gate::h(0));               // starts 8
  auto lat = [](const Gate& g) -> Cycle {
    return g.kind == GateKind::kSwap ? 6 : 2;
  };
  const Schedule s = schedule_asap(c, lat);
  const auto layers = s.layers();
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0], (std::vector<std::int32_t>{0}));
  EXPECT_EQ(layers[1], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(layers[2], (std::vector<std::int32_t>{2}));
}

TEST(Scheduler, LatencyModelMatchesEquivalentCallable) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, 1.0));
  c.append(Gate::swap(1, 2));
  c.append(Gate::h(2));
  LatencyModel model;
  model.set_cost(GateKind::kSwap, 6).set_cost(GateKind::kCPhase, 2);
  auto fn = [](const Gate& g) -> Cycle {
    if (g.kind == GateKind::kSwap) return 6;
    if (g.kind == GateKind::kCPhase) return 2;
    return 1;
  };
  const Schedule a = schedule_asap(c, model);
  const Schedule b = schedule_asap(c, LatencyFn(fn));
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(circuit_depth(c, model), a.depth);
}

TEST(Stats, CountsAllKinds) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::x(1));
  c.append(Gate::rz(2, 0.1));
  c.append(Gate::cphase(0, 1, 0.2));
  c.append(Gate::swap(1, 2));
  c.append(Gate::cnot(0, 2));
  const GateCounts gc = count_gates(c);
  EXPECT_EQ(gc.h, 1);
  EXPECT_EQ(gc.x, 1);
  EXPECT_EQ(gc.rz, 1);
  EXPECT_EQ(gc.cphase, 1);
  EXPECT_EQ(gc.swap, 1);
  EXPECT_EQ(gc.cnot, 1);
  EXPECT_EQ(gc.total(), 6);
  EXPECT_EQ(gc.two_qubit(), 3);
}

TEST(Inverse, ReversesAndConjugates) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, 0.5));
  c.append(Gate::rz(1, 0.25));
  const Circuit inv = inverse_circuit(c);
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv[0].kind, GateKind::kRz);
  EXPECT_DOUBLE_EQ(inv[0].angle, -0.25);
  EXPECT_EQ(inv[1].kind, GateKind::kCPhase);
  EXPECT_DOUBLE_EQ(inv[1].angle, -0.5);
  EXPECT_EQ(inv[2].kind, GateKind::kH);
}

TEST(Inverse, MappedSwapsEndpoints) {
  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::swap(0, 1));
  mc.initial = {0, 1};
  mc.final_mapping = {1, 0};
  const MappedCircuit inv = inverse_mapped(mc);
  EXPECT_EQ(inv.initial, (std::vector<PhysicalQubit>{1, 0}));
  EXPECT_EQ(inv.final_mapping, (std::vector<PhysicalQubit>{0, 1}));
}

TEST(MappedCircuitHelpers, ValidMapping) {
  EXPECT_TRUE(valid_mapping({0, 2, 1}, 3));
  EXPECT_FALSE(valid_mapping({0, 0}, 3));
  EXPECT_FALSE(valid_mapping({0, 3}, 3));
  EXPECT_FALSE(valid_mapping({-1}, 3));
  EXPECT_TRUE(valid_mapping({}, 0));
}

}  // namespace
}  // namespace qfto
