#include <gtest/gtest.h>

#include "synth/inter_unit_spec.hpp"
#include "synth/sketch.hpp"

namespace qfto {
namespace {

TEST(Sketch, SpaceSize) {
  Sketch s({{"a", {0, 1}}, {"b", {1, 2, 3}}});
  EXPECT_EQ(s.space_size(), 6);
}

TEST(Sketch, FindsFirstSolution) {
  Sketch s({{"a", {0, 1, 2, 3}}, {"b", {0, 1, 2, 3}}});
  const auto sol = s.solve([](const HoleAssignment& a) {
    return a[0] + a[1] == 5;
  });
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0] + (*sol)[1], 5);
}

TEST(Sketch, SolveAllFindsEverySolution) {
  Sketch s({{"a", {0, 1, 2, 3}}, {"b", {0, 1, 2, 3}}});
  const auto sols = s.solve_all([](const HoleAssignment& a) {
    return (a[0] + a[1]) % 2 == 0;
  });
  EXPECT_EQ(sols.size(), 8u);
}

TEST(Sketch, ReturnsEmptyWhenUnsatisfiable) {
  Sketch s({{"a", {0, 1}}});
  EXPECT_FALSE(s.solve([](const HoleAssignment&) { return false; }).has_value());
}

TEST(Sketch, RejectsEmptyDomain) {
  std::vector<Hole> holes{{"a", {}}};
  EXPECT_THROW(Sketch{holes}, std::invalid_argument);
}

TEST(Sketch, RespectsLimit) {
  Sketch s({{"a", {0, 1, 2, 3, 4, 5, 6, 7}}});
  const auto sols =
      s.solve_all([](const HoleAssignment&) { return true; }, 3);
  EXPECT_EQ(sols.size(), 3u);
}

// ------- Appendix 5: Sycamore inter-unit pattern (offset-by-one links) -----

TEST(TravelPath, SyncedPhasesCoverSycamoreSpec) {
  // The paper's discovery: syncing both units' travel paths covers every
  // pair except equal positions, which the spec excludes.
  for (int L : {4, 6, 8, 12, 20}) {
    TravelPathParams p;
    p.phase_a = p.phase_b = 0;
    p.rounds_coeff = 2;
    p.rounds_offset = 1;
    EXPECT_DOUBLE_EQ(
        travel_path_coverage(L, CrossLinkFamily::kOffsetByOne, p), 1.0)
        << "L=" << L;
  }
}

TEST(TravelPath, SketchRediscoversSyncedSolutionForSycamore) {
  const Sketch sketch = make_travel_path_sketch();
  const auto sols = sketch.solve_all([](const HoleAssignment& a) {
    const TravelPathParams p = decode_travel_path(a);
    for (int L : {6, 8, 10}) {
      if (travel_path_coverage(L, CrossLinkFamily::kOffsetByOne, p) < 1.0) {
        return false;
      }
    }
    return true;
  });
  ASSERT_FALSE(sols.empty());
  // Every surviving solution has synced phases — the paper's key insight for
  // Sycamore (Appendix 5: equal travel paths for the two units).
  for (const auto& a : sols) {
    const TravelPathParams p = decode_travel_path(a);
    EXPECT_EQ(p.phase_a, p.phase_b);
  }
}

// ------- Appendix 7: 2D grid / lattice surgery (equal-position links) ------

TEST(TravelPath, OffsetPhasesRequiredForEqualPositionLinks) {
  // Appendix 7: with vertical (equal-position) links, synced movement pins
  // every qubit to the same partner; the rows must run out of phase.
  TravelPathParams synced;
  synced.phase_a = synced.phase_b = 0;
  synced.rounds_coeff = 3;
  synced.rounds_offset = 2;
  TravelPathParams offset = synced;
  offset.phase_b = 1;
  for (int L : {4, 6, 8, 10}) {
    EXPECT_LT(travel_path_coverage(L, CrossLinkFamily::kEqualPosition, synced),
              0.35)
        << "L=" << L;
    EXPECT_DOUBLE_EQ(
        travel_path_coverage(L, CrossLinkFamily::kEqualPosition, offset), 1.0)
        << "L=" << L;
  }
}

TEST(TravelPath, SketchRediscoversOffsetSolutionForGrid) {
  const Sketch sketch = make_travel_path_sketch();
  const auto sols = sketch.solve_all([](const HoleAssignment& a) {
    const TravelPathParams p = decode_travel_path(a);
    for (int L : {5, 6, 8, 9}) {
      if (travel_path_coverage(L, CrossLinkFamily::kEqualPosition, p) < 1.0) {
        return false;
      }
    }
    return true;
  });
  ASSERT_FALSE(sols.empty());
  for (const auto& a : sols) {
    const TravelPathParams p = decode_travel_path(a);
    EXPECT_NE(p.phase_a, p.phase_b);
  }
}

TEST(TravelPath, InsufficientRoundsFailSpec) {
  TravelPathParams p;
  p.phase_a = 0;
  p.phase_b = 1;
  p.rounds_coeff = 1;
  p.rounds_offset = -2;  // fewer than L rounds cannot cover L^2 pairs
  EXPECT_LT(travel_path_coverage(12, CrossLinkFamily::kEqualPosition, p), 1.0);
}

}  // namespace
}  // namespace qfto
