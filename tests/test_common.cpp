#include <gtest/gtest.h>

#include <set>

#include "common/format.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"

namespace qfto {
namespace {

TEST(Prng, Deterministic) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformBounds) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Prng, UniformCoversRange) {
  Xoshiro256ss rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, UniformDoubleInUnitInterval) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Timer, MeasuresNonNegative) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Deadline, NeverExpiresWithoutBudget) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e100);
}

TEST(Deadline, ExpiresImmediatelyOnTinyBudget) {
  Deadline d(1e-9);
  // Burn a bit of time.
  double x = 0;
  for (int i = 0; i < 10000; ++i) x += i;
  EXPECT_GE(x, 0.0);
  EXPECT_TRUE(d.expired());
}

TEST(Format, PadAndJoin) {
  EXPECT_EQ(pad("ab", 4), "ab  ");
  EXPECT_EQ(pad("abcd", 2), "abcd");
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Format, TableRender) {
  TablePrinter t({"col1", "c2"});
  t.add_row({"x", "yyyy"});
  const std::string s = t.render();
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

}  // namespace
}  // namespace qfto
