#include <gtest/gtest.h>

#include "arch/grid.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/latency_model.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "mapper/lattice_mapper.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

class LatticeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LatticeSweep, CheckerInvariants) {
  const int m = GetParam();
  const int n = m * m;
  const MappedCircuit mc = map_qft_lattice(m);
  const CouplingGraph g = make_lattice_surgery_rotated(m);
  const auto r = check_qft_mapping(mc, g, lattice_latency(g));
  ASSERT_TRUE(r.ok) << "m=" << m << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(n));
  EXPECT_EQ(r.counts.h, n);
}

TEST_P(LatticeSweep, LinearWeightedDepth) {
  const int m = GetParam();
  const int n = m * m;
  const MappedCircuit mc = map_qft_lattice(m);
  const CouplingGraph g = make_lattice_surgery_rotated(m);
  const auto r = check_qft_mapping(mc, g, lattice_latency(g));
  ASSERT_TRUE(r.ok) << r.error;
  // §6 engineering: 5N + O(1) weighted cycles; our closed-loop constant is
  // larger but must stay linear. Generous bound: 20N + O(m).
  EXPECT_LE(r.depth, 20 * n + 60 * m + 80) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LatticeSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12));

class LatticeSim : public ::testing::TestWithParam<int> {};

TEST_P(LatticeSim, UnitaryEquivalence) {
  const int m = GetParam();
  const MappedCircuit mc = map_qft_lattice(m);
  EXPECT_LT(mapped_equivalence_error(mc), 1e-9) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, LatticeSim, ::testing::Values(2, 3, 4));

TEST(Lattice, PhaseOffsetVariantsAllCorrect) {
  for (int offset : {0, 1}) {
    LatticeMapperOptions opts;
    opts.phase_offset = offset;
    const MappedCircuit mc = map_qft_lattice(5, opts);
    const CouplingGraph g = make_lattice_surgery_rotated(5);
    const auto r = check_qft_mapping(mc, g, lattice_latency(g));
    ASSERT_TRUE(r.ok) << "offset=" << offset << ": " << r.error;
  }
}

TEST(Lattice, OffsetPhaseBeatsSyncedPhase) {
  // §6/Fig. 16: the bottom unit starting one step late enables equal-column
  // meetings along the travel path; the synced variant must lean on the
  // fix-up and come out deeper.
  const CouplingGraph g = make_lattice_surgery_rotated(8);
  LatticeMapperOptions synced;
  synced.phase_offset = 0;
  const auto off = check_qft_mapping(map_qft_lattice(8), g, lattice_latency(g));
  const auto syn =
      check_qft_mapping(map_qft_lattice(8, synced), g, lattice_latency(g));
  ASSERT_TRUE(off.ok && syn.ok);
  EXPECT_LE(off.depth, syn.depth);
}

TEST(Lattice, WeightedDepthExceedsUnitDepth) {
  // The heterogeneous latency model must actually bite: weighted depth is
  // strictly larger than the naive unit-step count.
  const MappedCircuit mc = map_qft_lattice(6);
  const CouplingGraph g = make_lattice_surgery_rotated(6);
  const auto weighted = check_qft_mapping(mc, g, lattice_latency(g));
  const auto unit = check_qft_mapping(mc, g);
  ASSERT_TRUE(weighted.ok && unit.ok);
  EXPECT_GT(weighted.depth, unit.depth);
}

TEST(Lattice, StrictIeStillCorrectAndSlower) {
  const CouplingGraph g = make_lattice_surgery_rotated(8);
  LatticeMapperOptions strict;
  strict.strict_ie = true;
  const MappedCircuit mc = map_qft_lattice(8, strict);
  const auto rs = check_qft_mapping(mc, g, lattice_latency(g));
  ASSERT_TRUE(rs.ok) << rs.error;
  const auto rr = check_qft_mapping(map_qft_lattice(8), g, lattice_latency(g));
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_GT(rs.depth, rr.depth);
}

class Grid2dSweep : public ::testing::TestWithParam<int> {};

TEST_P(Grid2dSweep, AppendixSevenGridBackend) {
  const int m = GetParam();
  const CouplingGraph g = make_grid(m, m);
  const MappedCircuit mc = map_qft_grid2d(m);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << "m=" << m << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(m * m));
  // Uniform-latency depth stays linear in N.
  EXPECT_LE(r.depth, 10 * m * m + 40 * m + 60);
  if (m <= 4) {
    EXPECT_LT(mapped_equivalence_error(mc), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Grid2dSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 10));

TEST(Lattice, SwapCountGrowsQuadratically) {
  // #SWAP is Theta(N^2) = Theta(m^4) on every backend (all-to-all pairs over
  // sqrt(N) average distance); check the growth exponent is ~4 in m.
  const auto s6 = count_gates(map_qft_lattice(6).circuit).swap;
  const auto s12 = count_gates(map_qft_lattice(12).circuit).swap;
  const double ratio = static_cast<double>(s12) / s6;
  EXPECT_GT(ratio, 8.0);   // > m^3 growth
  EXPECT_LT(ratio, 32.0);  // < m^5 growth
}

}  // namespace
}  // namespace qfto
