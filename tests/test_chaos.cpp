// Chaos / fault-injection proof layer (src/common/fault.hpp): the framework's
// trigger grammar and determinism, the MappingService watchdog hard-enforcing
// deadlines (wedged-job retirement + worker resurrection), the error taxonomy
// and retry/backoff discipline under injected transport faults, crash-safe
// cache persistence, and a mixed-load chaos run with every fault point armed
// at 10% probability. Runs under the CI ASan+UBSan and TSan legs with
// QFTO_FAULTS=ON — zero crashes, zero deadlocks, well-formed responses is the
// contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "arch/line.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "mapper/lnn_mapper.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "service/mapping_service.hpp"
#include "service/net_server.hpp"
#include "service/result_cache.hpp"
#include "service/serve.hpp"
#include "service/transport.hpp"

namespace qfto {
namespace {

using namespace std::chrono_literals;
using net::LineReader;
using net::NetServer;
using net::RetryPolicy;
using net::RetryResult;
using net::Socket;

// Cancellable nap engine (same shape as test_service's).
class SleeperEngine final : public MapperEngine {
 public:
  explicit SleeperEngine(double nap_seconds) : nap_seconds_(nap_seconds) {}
  std::string name() const override { return "sleeper"; }
  std::string description() const override { return "naps, then maps lnn"; }
  bool deterministic() const override { return false; }
  CouplingGraph build_graph(std::int32_t n,
                            const MapOptions&) const override {
    return make_line(n);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    WallTimer timer;
    while (timer.seconds() < nap_seconds_) {
      if (opts.cancel != nullptr &&
          opts.cancel->load(std::memory_order_relaxed)) {
        throw MapCancelled(false, "sleeper: cancelled mid-map");
      }
      std::this_thread::sleep_for(1ms);
    }
    return map_qft_lnn(n);
  }

 private:
  double nap_seconds_;
};

// The watchdog's raison d'être: an engine that never polls its cancel token.
// It spins until the shared release flag is set or `cap_seconds` elapses, so
// tests control exactly how long the worker stays wedged — and can wait for
// every detached thread to leave engine code before the pipeline goes out of
// scope (the MappingService destructor contract).
std::atomic<int> g_stubborn_active{0};
std::atomic<bool> g_stubborn_release{false};

class StubbornEngine final : public MapperEngine {
 public:
  explicit StubbornEngine(double cap_seconds) : cap_seconds_(cap_seconds) {}
  std::string name() const override { return "stubborn"; }
  std::string description() const override { return "ignores cancel"; }
  bool deterministic() const override { return false; }
  CouplingGraph build_graph(std::int32_t n,
                            const MapOptions&) const override {
    return make_line(n);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions&) const override {
    struct Guard {
      Guard() { g_stubborn_active.fetch_add(1, std::memory_order_relaxed); }
      ~Guard() { g_stubborn_active.fetch_sub(1, std::memory_order_relaxed); }
    } guard;
    WallTimer timer;
    while (!g_stubborn_release.load(std::memory_order_relaxed) &&
           timer.seconds() < cap_seconds_) {
      std::this_thread::sleep_for(1ms);
    }
    return map_qft_lnn(n);
  }

 private:
  double cap_seconds_;
};

MapperPipeline chaos_pipeline(double sleeper_nap, double stubborn_cap) {
  MapperPipeline pipeline = MapperPipeline::with_paper_engines();
  pipeline.register_engine(std::make_unique<SleeperEngine>(sleeper_nap));
  pipeline.register_engine(std::make_unique<StubbornEngine>(stubborn_cap));
  return pipeline;
}

MappingService::Options service_options(std::int32_t threads,
                                        double grace = 5.0) {
  MappingService::Options options;
  options.num_threads = threads;
  options.cache_capacity = 1024;
  options.wedge_grace_seconds = grace;
  return options;
}

NetServer::Options loopback() {
  NetServer::Options options;
  options.host = "127.0.0.1";
  options.port = 0;
  return options;
}

/// Blocks until every stubborn engine invocation has returned — mandatory
/// before a test scope destroys the pipeline a detached wedged thread may
/// still be executing.
void wait_for_stubborn_exit() {
  g_stubborn_release.store(true, std::memory_order_relaxed);
  WallTimer timer;
  while (g_stubborn_active.load(std::memory_order_relaxed) != 0 &&
         timer.seconds() < 20.0) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(g_stubborn_active.load(std::memory_order_relaxed), 0)
      << "a stubborn engine invocation never returned";
}

/// Minimal structural JSON check: one object, braces balanced outside
/// strings, escapes honoured. The serve responses are flat, so this is
/// enough to catch truncated or interleaved writes.
bool json_well_formed(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int depth = 0;
  bool in_string = false, escaped = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth < 0) return false;
      if (depth == 0 && i + 1 != s.size()) return false;
    }
  }
  return depth == 0 && !in_string;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::compiled_in()) {
      GTEST_SKIP() << "fault injection compiled out (QFTO_FAULTS=OFF)";
    }
    fault::disarm_all();
    g_stubborn_release.store(false, std::memory_order_relaxed);
    ASSERT_EQ(g_stubborn_active.load(std::memory_order_relaxed), 0);
  }
  void TearDown() override {
    fault::disarm_all();
    g_stubborn_release.store(true, std::memory_order_relaxed);
  }
};

// ----------------------------------------------------- framework triggers --

TEST_F(ChaosTest, SpecGrammarParsesAndRejects) {
  std::string error;
  EXPECT_TRUE(fault::arm_spec(
      "service.job.throw=once;net.send.fail=prob:0.25:7@2", &error))
      << error;
  const std::vector<std::string> known = fault::known_points();
  EXPECT_NE(std::find(known.begin(), known.end(), "service.job.throw"),
            known.end());
  EXPECT_NE(std::find(known.begin(), known.end(), "net.send.fail"),
            known.end());

  EXPECT_FALSE(fault::arm_spec("no-equals-sign", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::arm_spec("x=prob:1.5", &error)) << "p > 1 must fail";
  EXPECT_FALSE(fault::arm_spec("x=nosuchtrigger", &error));

  fault::disarm_all();
  EXPECT_TRUE(fault::known_points().empty());
}

TEST_F(ChaosTest, CountedTriggersFireOnTheRightHit) {
  fault::arm("t.once", fault::once(3));
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(QFTO_FAULT_POINT("t.once"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(fault::hit_count("t.once"), 5u);
  EXPECT_EQ(fault::fired_count("t.once"), 1u);

  fault::arm("t.after", fault::after(2));
  fired.clear();
  for (int i = 0; i < 5; ++i) fired.push_back(QFTO_FAULT_POINT("t.after"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
}

TEST_F(ChaosTest, ProbabilisticTriggerIsSeededAndReplayable) {
  fault::arm("t.prob", fault::prob(1.0));
  EXPECT_TRUE(QFTO_FAULT_POINT("t.prob"));
  fault::arm("t.prob", fault::prob(0.0));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(QFTO_FAULT_POINT("t.prob"));

  const auto sample = [] {
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(QFTO_FAULT_POINT("t.prob"));
    return out;
  };
  fault::arm("t.prob", fault::prob(0.5, 42));
  const std::vector<bool> first = sample();
  fault::arm("t.prob", fault::prob(0.5, 42));  // re-arm resets the PRNG
  EXPECT_EQ(first, sample()) << "same seed must replay bit-identically";
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(ChaosTest, UnarmedPointsCostOneBranchAndStayQuiet) {
  // Nothing armed: the macro must not fire and must not register points.
  fault::disarm_all();
  EXPECT_FALSE(QFTO_FAULT_POINT("t.unarmed"));
  EXPECT_TRUE(fault::known_points().empty())
      << "disabled framework must not track hits";
}

// ------------------------------------------------- watchdog + resurrection --

TEST_F(ChaosTest, WatchdogRetiresWedgedJobAndReplacesWorker) {
  const MapperPipeline pipeline = chaos_pipeline(1.0, 30.0);
  MappingService service{service_options(1, /*grace=*/0.2), pipeline};
  ASSERT_EQ(service.num_threads(), 1);

  MappingService::Submit submit;
  submit.deadline_seconds = 0.1;
  const JobResult out =
      service.submit({"stubborn", 4, MapOptions{}}, submit).wait();
  EXPECT_EQ(out.status, JobStatus::kExpired);
  EXPECT_NE(out.error.find("watchdog"), std::string::npos) << out.error;

  const MappingService::Stats stats = service.stats();
  EXPECT_GE(stats.watchdog_fired, 1u);
  EXPECT_EQ(stats.jobs_wedged, 1u);
  EXPECT_EQ(stats.workers_replaced, 1u);
  EXPECT_EQ(service.num_threads(), 1) << "replacement keeps pool capacity";

  // The wedged worker is detached, its replacement must serve new work —
  // while the stubborn engine is *still running* on the detached thread.
  const JobResult next = service.submit({"lnn", 8, MapOptions{}}).wait();
  EXPECT_EQ(next.status, JobStatus::kDone) << next.error;

  wait_for_stubborn_exit();
}

TEST_F(ChaosTest, CooperativeEngineNeedsNoResurrection) {
  const MapperPipeline pipeline = chaos_pipeline(5.0, 1.0);
  MappingService service{service_options(1, /*grace=*/5.0), pipeline};

  MappingService::Submit submit;
  submit.deadline_seconds = 0.05;
  const JobResult out =
      service.submit({"sleeper", 4, MapOptions{}}, submit).wait();
  EXPECT_EQ(out.status, JobStatus::kExpired);
  EXPECT_NE(out.error.find("deadline exceeded"), std::string::npos)
      << out.error;

  const MappingService::Stats stats = service.stats();
  EXPECT_GE(stats.watchdog_fired, 1u) << "watchdog fires the cancel token";
  EXPECT_EQ(stats.jobs_wedged, 0u) << "a polling engine is never wedged";
  EXPECT_EQ(stats.workers_replaced, 0u);
}

// ----------------------------------------------------- worker fault paths --

TEST_F(ChaosTest, InjectedWorkerThrowsSurfaceAsFailedJobs) {
  MappingService service{service_options(2)};

  fault::arm("service.job.throw", fault::always());
  const JobResult thrown = service.submit({"lnn", 8, MapOptions{}}).wait();
  EXPECT_EQ(thrown.status, JobStatus::kFailed);
  EXPECT_NE(thrown.error.find("injected fault"), std::string::npos);

  fault::disarm_all();
  fault::arm("service.job.throw_nonstd", fault::always());
  const JobResult nonstd = service.submit({"lnn", 8, MapOptions{}}).wait();
  EXPECT_EQ(nonstd.status, JobStatus::kFailed);
  EXPECT_NE(nonstd.error.find("unknown error"), std::string::npos)
      << "catch (...) must report the placeholder message";

  fault::disarm_all();
  const JobResult clean = service.submit({"lnn", 8, MapOptions{}}).wait();
  EXPECT_EQ(clean.status, JobStatus::kDone)
      << "the pool must survive both throw paths: " << clean.error;
}

TEST_F(ChaosTest, NonStdThrowOverStdioCarriesTheTaxonomy) {
  MappingService service{service_options(1)};
  fault::arm("service.job.throw_nonstd", fault::always());

  std::istringstream in("{\"id\":7,\"engine\":\"lnn\",\"n\":6}\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve_loop(in, out, service), 0);
  const std::string line = out.str();
  EXPECT_TRUE(json_well_formed(line.substr(0, line.find('\n')))) << line;
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos) << line;
  EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"retryable\":false"), std::string::npos) << line;
}

TEST_F(ChaosTest, NonStdThrowOverSocketCarriesTheTaxonomy) {
  MappingService service{service_options(1)};
  NetServer server(service, loopback());
  server.start();
  fault::arm("service.job.throw_nonstd", fault::always());

  std::string error;
  Socket sock = net::dial(server.host(), server.port(), &error);
  ASSERT_TRUE(sock.valid()) << error;
  ASSERT_TRUE(sock.send_all("{\"id\":8,\"engine\":\"lnn\",\"n\":6}\n"));
  LineReader reader(sock);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_TRUE(json_well_formed(line)) << line;
  EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"retryable\":false"), std::string::npos) << line;

  fault::disarm_all();
  ASSERT_TRUE(sock.send_all("{\"id\":9,\"engine\":\"lnn\",\"n\":6}\n"));
  ASSERT_TRUE(reader.next(line));
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos) << line;
}

TEST_F(ChaosTest, InjectedQueueRejectionRetiresBeforeDispatch) {
  MappingService service{service_options(1)};
  fault::arm("service.queue.reject", fault::always());
  const JobResult out = service.submit({"lnn", 8, MapOptions{}}).wait();
  EXPECT_EQ(out.status, JobStatus::kCancelled);
  EXPECT_NE(out.error.find("injected"), std::string::npos) << out.error;
  EXPECT_EQ(out.dispatch_index, -1) << "no worker may have run it";
}

TEST_F(ChaosTest, InjectedSatBudgetExhaustionSurfacesInBand) {
  MappingService service{service_options(1)};
  fault::arm("sat.budget.exhaust", fault::always());
  MapOptions opts;
  opts.satmap.time_budget_seconds = 30.0;
  const JobResult out = service.submit({"satmap", 4, opts}).wait();
  EXPECT_EQ(out.status, JobStatus::kFailed);
  EXPECT_GE(fault::fired_count("sat.budget.exhaust"), 1u);
}

// ------------------------------------------------------- retry discipline --

TEST_F(ChaosTest, BackoffScheduleIsDeterministicAndClamped) {
  RetryPolicy policy;  // base 0.05, x2, max 1.0
  double prev = 0.0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double d = net::backoff_delay(policy, attempt);
    EXPECT_EQ(d, net::backoff_delay(policy, attempt)) << "must be pure";
    const double pre = std::min(
        policy.base_seconds * std::pow(policy.multiplier, attempt - 1),
        policy.max_seconds);
    EXPECT_GE(d, 0.5 * pre - 1e-12) << "attempt " << attempt;
    EXPECT_LE(d, pre + 1e-12) << "attempt " << attempt;
    if (attempt <= 3) EXPECT_GT(d, prev) << "early delays must grow";
    prev = d;
  }
  RetryPolicy other = policy;
  other.jitter_seed = 99;
  bool any_differ = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    any_differ |= net::backoff_delay(policy, attempt) !=
                  net::backoff_delay(other, attempt);
  }
  EXPECT_TRUE(any_differ) << "different seeds must jitter differently";
}

TEST_F(ChaosTest, RetryRecoversFromOneShed) {
  MappingService service{service_options(2)};
  NetServer server(service, loopback());
  server.start();
  fault::arm("serve.admit.shed", fault::once(1));

  RetryPolicy policy;
  policy.base_seconds = 0.002;
  policy.max_seconds = 0.01;
  const RetryResult out = net::request_with_retry(
      server.host(), server.port(), "{\"id\":1,\"engine\":\"lnn\",\"n\":6}",
      policy);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.attempts, 2) << "shed once, then admitted";
  EXPECT_NE(out.response.find("\"status\":\"ok\""), std::string::npos)
      << out.response;
  EXPECT_EQ(fault::fired_count("serve.admit.shed"), 1u);
}

TEST_F(ChaosTest, RetryRecoversFromOneSendFault) {
  MappingService service{service_options(2)};
  NetServer server(service, loopback());
  server.start();
  // The first send_all anywhere is the client's request write.
  fault::arm("net.send.fail", fault::once(1));

  RetryPolicy policy;
  policy.base_seconds = 0.002;
  policy.max_seconds = 0.01;
  const RetryResult out = net::request_with_retry(
      server.host(), server.port(), "{\"id\":2,\"engine\":\"lnn\",\"n\":6}",
      policy);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.attempts, 2);
  EXPECT_NE(out.response.find("\"status\":\"ok\""), std::string::npos);
}

// --------------------------------------------------- crash-safe cache I/O --

TEST_F(ChaosTest, CorruptCacheEntryCostsExactlyThatEntry) {
  MappingService service{service_options(1)};
  for (const std::int32_t n : {4, 6, 8}) {
    ASSERT_TRUE(service.submit({"lnn", n, MapOptions{}}).wait().ok());
  }
  ASSERT_EQ(service.cache_stats().entries, 3u);
  std::ostringstream saved;
  ASSERT_TRUE(service.cache().save(saved));

  // Mangle the second record's "key" header: that record must quarantine,
  // its neighbours must survive.
  std::string text = saved.str();
  const std::size_t first = text.find("\nentry\n");
  ASSERT_NE(first, std::string::npos);
  const std::size_t second = text.find("\nentry\n", first + 1);
  ASSERT_NE(second, std::string::npos);
  const std::size_t key_at = text.find("key ", second);
  ASSERT_NE(key_at, std::string::npos);
  text.replace(key_at, 3, "kex");

  ResultCache reloaded(1024, 8);
  std::istringstream in(text);
  std::string error;
  EXPECT_TRUE(reloaded.load(in, &error)) << error;
  EXPECT_NE(error.find("quarantined 1"), std::string::npos) << error;
  EXPECT_EQ(reloaded.stats().load_quarantined, 1u);
  EXPECT_EQ(reloaded.stats().entries, 2u)
      << "one corrupt record must cost exactly that record";

  // Truncation mid-record: everything before the cut still loads.
  ResultCache truncated(1024, 8);
  std::istringstream cut(saved.str().substr(0, second + 10));
  EXPECT_TRUE(truncated.load(cut, &error));
  EXPECT_EQ(truncated.stats().entries, 1u);
  EXPECT_EQ(truncated.stats().load_quarantined, 1u);

  // A wrong magic line is still a hard failure — not a cache file at all.
  ResultCache wrong(1024, 8);
  std::istringstream bad_magic("not-a-cache\n");
  EXPECT_FALSE(wrong.load(bad_magic, &error));
}

TEST_F(ChaosTest, SaveFileIsAtomicUnderInjectedFailures) {
  const std::string path = "chaos_cache_atomicity.qcache";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());

  MappingService service{service_options(1)};
  ASSERT_TRUE(service.submit({"lnn", 4, MapOptions{}}).wait().ok());
  std::string error;
  ASSERT_TRUE(service.cache().save_file(path, &error)) << error;
  const std::string before = slurp(path);
  ASSERT_FALSE(before.empty());
  EXPECT_FALSE(file_exists(tmp)) << "no temp droppings after success";

  // Grow the cache, then fail the write: the old file must be untouched.
  ASSERT_TRUE(service.submit({"lnn", 6, MapOptions{}}).wait().ok());
  fault::arm("cache.save.write", fault::always());
  EXPECT_FALSE(service.cache().save_file(path, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(slurp(path), before) << "failed save must not touch the target";
  EXPECT_FALSE(file_exists(tmp));

  // Fail the publish step (the rename): same contract.
  fault::disarm_all();
  fault::arm("cache.save.rename", fault::always());
  EXPECT_FALSE(service.cache().save_file(path, &error));
  EXPECT_NE(error.find("rename"), std::string::npos) << error;
  EXPECT_EQ(slurp(path), before);
  EXPECT_FALSE(file_exists(tmp));

  // Healthy again: the save goes through and the file round-trips.
  fault::disarm_all();
  ASSERT_TRUE(service.cache().save_file(path, &error)) << error;
  ResultCache reloaded(1024, 8);
  std::ifstream in(path);
  EXPECT_TRUE(reloaded.load(in, &error)) << error;
  EXPECT_EQ(reloaded.stats().entries, 2u);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- chaos proper --

TEST_F(ChaosTest, MixedLoadWithEveryFaultArmedRecoversCleanly) {
  const MapperPipeline pipeline = chaos_pipeline(0.2, 0.25);
  MappingService service{service_options(4, /*grace=*/0.05), pipeline};
  NetServer::Options options = loopback();
  options.max_inflight = 8;  // small enough that genuine sheds happen too
  NetServer server(service, options);
  server.start();

  // Wedge fuel first, before the spec goes live: stubborn jobs with short
  // deadlines deterministically force watchdog retirements and worker
  // replacements (armed job-throw faults could otherwise kill one before it
  // reached the engine, making the replacement count scheduling-dependent).
  // Their detached engine threads keep running through the chaos load below.
  for (int i = 0; i < 3; ++i) {
    MappingService::Submit submit;
    submit.deadline_seconds = 0.02;
    const JobResult out =
        service.submit({"stubborn", 4, MapOptions{}}, submit).wait();
    EXPECT_EQ(out.status, JobStatus::kExpired) << out.error;
  }
  EXPECT_GE(service.stats().workers_replaced, 3u);
  EXPECT_EQ(service.num_threads(), 4);

  // Every fault point in the catalogue, armed at ~10% with fixed seeds so a
  // failure replays bit-identically.
  std::string error;
  ASSERT_TRUE(fault::arm_spec(
      "net.send.fail=prob:0.1:11;"
      "net.send.short=prob:0.1:12@1;"
      "net.recv.fail=prob:0.1:13;"
      "net.recv.eof=prob:0.05:14;"
      "service.job.throw=prob:0.1:15;"
      "service.job.throw_nonstd=prob:0.1:16;"
      "service.queue.reject=prob:0.1:17;"
      "serve.admit.shed=prob:0.1:18;"
      "cache.save.write=prob:0.1:19;"
      "sat.budget.exhaust=prob:0.5:20",
      &error))
      << error;

  const std::vector<std::string> allowed_status = {
      "\"status\":\"ok\"",        "\"status\":\"error\"",
      "\"status\":\"cancelled\"", "\"status\":\"timeout\"",
      "\"status\":\"shed\""};
  int delivered = 0, succeeded = 0;
  constexpr int kRequests = 40;
  for (int i = 0; i < kRequests; ++i) {
    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.base_seconds = 0.002;
    policy.max_seconds = 0.02;
    policy.jitter_seed = static_cast<std::uint64_t>(i) + 1;
    const std::string request = "{\"id\":" + std::to_string(i) +
                                ",\"engine\":\"" +
                                (i % 3 == 0 ? "lattice" : "lnn") +
                                "\",\"n\":" + std::to_string(4 + i % 5) + "}";
    const RetryResult out = net::request_with_retry(
        server.host(), server.port(), request, policy);
    if (!out.ok) continue;  // transport faults won every attempt: acceptable
    ++delivered;
    ASSERT_TRUE(json_well_formed(out.response)) << out.response;
    bool recognized = false;
    for (const std::string& status : allowed_status) {
      recognized |= out.response.find(status) != std::string::npos;
    }
    EXPECT_TRUE(recognized) << "unknown taxonomy word: " << out.response;
    if (out.response.find("\"status\":\"ok\"") != std::string::npos) {
      ++succeeded;
    }
  }
  // Chaos tolerates lost responses and failed jobs, never a malformed one.
  EXPECT_GE(delivered, kRequests / 2) << "retry should deliver most answers";
  EXPECT_GE(succeeded, 1) << "some jobs must still complete under chaos";

  // Recovery: disarm everything — the pool must be at full capacity (every
  // wedged worker replaced) and serve clean traffic again.
  fault::disarm_all();
  const MappingService::Stats stats = service.stats();
  EXPECT_GE(stats.watchdog_fired, 3u);
  EXPECT_GE(stats.jobs_wedged, 3u);
  EXPECT_GE(stats.workers_replaced, 3u);
  EXPECT_EQ(service.num_threads(), 4);

  std::vector<JobHandle> recovery;
  for (int i = 0; i < 4; ++i) {
    recovery.push_back(service.submit({"lnn", 6 + i, MapOptions{}}));
  }
  for (JobHandle& handle : recovery) {
    const JobResult out = handle.wait();
    EXPECT_EQ(out.status, JobStatus::kDone) << out.error;
  }

  // Metrics must still reconcile with the service's own counters.
  std::string dial_error;
  Socket sock = net::dial(server.host(), server.port(), &dial_error);
  ASSERT_TRUE(sock.valid()) << dial_error;
  ASSERT_TRUE(sock.send_all("{\"metrics\":true}\n"));
  LineReader reader(sock);
  std::string metrics;
  ASSERT_TRUE(reader.next(metrics));
  EXPECT_TRUE(json_well_formed(metrics)) << metrics;
  const MappingService::Stats now = service.stats();
  const std::string service_doc =
      "\"service\":{\"watchdog_fired\":" + std::to_string(now.watchdog_fired) +
      ",\"jobs_wedged\":" + std::to_string(now.jobs_wedged) +
      ",\"workers_replaced\":" + std::to_string(now.workers_replaced) + "}";
  EXPECT_NE(metrics.find(service_doc), std::string::npos) << metrics;

  wait_for_stubborn_exit();
}

}  // namespace
}  // namespace qfto
