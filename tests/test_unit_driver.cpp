#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mapper/unit_driver.hpp"

namespace qfto {
namespace {

// Records the abstract operation sequence so we can check the driver
// schedules a valid unit-level QFT.
struct Recorder {
  std::int32_t units;
  std::vector<std::int32_t> occ;                      // slot -> unit
  std::vector<std::uint8_t> ia_done;
  std::vector<std::uint8_t> pair_done;                // units*units
  std::vector<std::string> log;

  explicit Recorder(std::int32_t u) : units(u), occ(u), ia_done(u, 0),
                                      pair_done(u * u, 0) {
    std::iota(occ.begin(), occ.end(), 0);
  }

  UnitOps ops() {
    UnitOps o;
    o.ia = [this](std::int32_t s) {
      const std::int32_t u = occ[s];
      // IA(u) legal only when every smaller pair arrived (Type II window).
      for (std::int32_t k = 0; k < u; ++k) {
        EXPECT_TRUE(pair_done[std::min(k, u) * units + std::max(k, u)])
            << "IA(" << u << ") before IE(" << k << "," << u << ")";
      }
      EXPECT_FALSE(ia_done[u]);
      ia_done[u] = 1;
      log.push_back("IA" + std::to_string(u));
    };
    o.ie = [this](std::int32_t s) {
      const std::int32_t a = occ[s], b = occ[s + 1];
      const std::int32_t lo = std::min(a, b), hi = std::max(a, b);
      EXPECT_TRUE(ia_done[lo]) << "IE before IA(min)";
      EXPECT_FALSE(ia_done[hi]) << "IE after IA(max)";
      EXPECT_FALSE(pair_done[lo * units + hi]) << "duplicate IE";
      pair_done[lo * units + hi] = 1;
      log.push_back("IE" + std::to_string(lo) + "," + std::to_string(hi));
    };
    o.unit_swap = [this](std::int32_t s) {
      std::swap(occ[s], occ[s + 1]);
      log.push_back("SW" + std::to_string(s));
    };
    return o;
  }

  bool complete() const {
    for (std::int32_t u = 0; u < units; ++u) {
      if (!ia_done[u]) return false;
      for (std::int32_t v = u + 1; v < units; ++v) {
        if (!pair_done[u * units + v]) return false;
      }
    }
    return true;
  }
};

class UnitDriverSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnitDriverSweep, SchedulesCompleteValidUnitQft) {
  Recorder rec(GetParam());
  const UnitOps ops = rec.ops();
  run_unit_qft(GetParam(), ops);
  EXPECT_TRUE(rec.complete()) << "units=" << GetParam();
}

TEST_P(UnitDriverSweep, FinalUnitOrderIsReversed) {
  const int u = GetParam();
  Recorder rec(u);
  const UnitOps ops = rec.ops();
  run_unit_qft(u, ops);
  for (int s = 0; s < u; ++s) {
    EXPECT_EQ(rec.occ[s], u - 1 - s);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UnitDriverSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21));

TEST(UnitDriver, SingleUnitJustIa) {
  Recorder rec(1);
  const UnitOps ops = rec.ops();
  run_unit_qft(1, ops);
  EXPECT_EQ(rec.log, (std::vector<std::string>{"IA0"}));
}

TEST(UnitDriver, SwapCountIsAllPairs) {
  const int u = 7;
  Recorder rec(u);
  const UnitOps ops = rec.ops();
  run_unit_qft(u, ops);
  int swaps = 0;
  for (const auto& entry : rec.log) swaps += entry[0] == 'S';
  EXPECT_EQ(swaps, u * (u - 1) / 2);  // full reversal at unit level
}

TEST(UnitDriver, MissingCallbacksRejected) {
  UnitOps ops;
  EXPECT_THROW(run_unit_qft(2, ops), std::invalid_argument);
  EXPECT_THROW(run_unit_qft(0, ops), std::invalid_argument);
}

}  // namespace
}  // namespace qfto
