#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "arch/grid.hpp"
#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/latency_model.hpp"
#include "arch/line.hpp"
#include "arch/sycamore.hpp"
#include "circuit/mapped_circuit.hpp"

namespace qfto {
namespace {

TEST(CouplingGraph, BasicEdges) {
  CouplingGraph g("g", 3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
}

TEST(CouplingGraph, LinkTypes) {
  CouplingGraph g("g", 3);
  g.add_edge(0, 1, LinkType::kFast);
  g.add_edge(1, 2, LinkType::kCnotOnly);
  EXPECT_EQ(g.link_type(0, 1), LinkType::kFast);
  EXPECT_EQ(g.link_type(2, 1), LinkType::kCnotOnly);
  EXPECT_FALSE(g.link_type(0, 2).has_value());
}

TEST(CouplingGraph, DegreeMatchesNeighborList) {
  const CouplingGraph g = make_grid(3, 3);
  for (PhysicalQubit q = 0; q < g.num_qubits(); ++q) {
    EXPECT_EQ(g.degree(q),
              static_cast<std::int32_t>(g.neighbors(q).size()));
  }
}

TEST(CouplingGraph, AdjacencyAgreesWithNeighborLists) {
  // The CSR fast path and the neighbor lists are maintained together; a
  // full cross-check over a link-typed graph locks them in sync.
  const CouplingGraph g = make_lattice_surgery_full(4);
  for (PhysicalQubit a = 0; a < g.num_qubits(); ++a) {
    for (PhysicalQubit b = 0; b < g.num_qubits(); ++b) {
      const auto& na = g.neighbors(a);
      const bool in_list = std::find(na.begin(), na.end(), b) != na.end();
      EXPECT_EQ(g.adjacent(a, b), in_list) << a << "," << b;
      EXPECT_EQ(g.link_type(a, b).has_value(), in_list) << a << "," << b;
    }
  }
}

TEST(CouplingGraph, DistanceOracleConcurrentFirstUse) {
  // Regression for the PR-2 lazy-init data race, re-targeted at the oracle
  // redesign: map_qft_batch maps on a shared graph from a thread pool, so
  // the oracle's first construction (double-checked in distances()) and its
  // internal row cache must both be race-free. Under ThreadSanitizer an
  // unsynchronized path reports here; without it the test still
  // cross-checks every value against a serially-built baseline.
  const CouplingGraph shared = make_lattice_surgery_rotated(8);
  const CouplingGraph reference = make_lattice_surgery_rotated(8);
  const auto expected = reference.distances().eager_matrix_for_tests();

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&shared, &expected, &mismatches, t]() {
      const std::int32_t n = shared.num_qubits();
      for (PhysicalQubit a = t; a < n; a += kThreads) {
        for (PhysicalQubit b = 0; b < n; ++b) {
          if (shared.distance(a, b) != expected[a][b]) ++mismatches;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(shared.connected());
}

TEST(CouplingGraph, CopyAndMoveKeepQueriesIntact) {
  CouplingGraph g("g", 4);
  g.add_edge(0, 1, LinkType::kFast);
  g.add_edge(1, 2, LinkType::kCnotOnly);
  (void)g.distance(0, 2);  // build the oracle; copies must not share it

  const CouplingGraph copy = g;
  EXPECT_TRUE(copy.adjacent(0, 1));
  EXPECT_EQ(copy.link_type(1, 2), LinkType::kCnotOnly);
  EXPECT_EQ(copy.distance(0, 2), 2);

  CouplingGraph moved = std::move(g);
  EXPECT_TRUE(moved.adjacent(1, 2));
  EXPECT_EQ(moved.link_type(0, 1), LinkType::kFast);
  EXPECT_EQ(moved.distance(0, 2), 2);
}

TEST(CouplingGraph, DistancesAndConnectivity) {
  const CouplingGraph line = make_line(5);
  EXPECT_EQ(line.distance(0, 4), 4);
  EXPECT_EQ(line.distance(2, 2), 0);
  EXPECT_TRUE(line.connected());

  CouplingGraph split("split", 4);
  split.add_edge(0, 1);
  split.add_edge(2, 3);
  EXPECT_FALSE(split.connected());
  EXPECT_EQ(split.distance(0, 3), -1);
}

TEST(Line, Structure) {
  const CouplingGraph g = make_line(4);
  EXPECT_EQ(g.num_qubits(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.adjacent(1, 2));
  EXPECT_FALSE(g.adjacent(0, 2));
}

TEST(Grid, Structure) {
  const CouplingGraph g = make_grid(3, 4);
  EXPECT_EQ(g.num_qubits(), 12);
  // 3*3 horizontal per row * 3 rows? horizontal: rows*(cols-1)=9,
  // vertical: (rows-1)*cols=8.
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_TRUE(g.adjacent(grid_node(0, 0, 4), grid_node(0, 1, 4)));
  EXPECT_TRUE(g.adjacent(grid_node(0, 0, 4), grid_node(1, 0, 4)));
  EXPECT_FALSE(g.adjacent(grid_node(0, 0, 4), grid_node(1, 1, 4)));
}

TEST(Sycamore, UnitLineIsPhysicalPath) {
  for (int m : {2, 4, 6}) {
    const CouplingGraph g = make_sycamore(m);
    const SycamoreLayout lay{m};
    EXPECT_TRUE(g.connected());
    for (int u = 0; u < lay.num_units(); ++u) {
      for (int p = 0; p + 1 < lay.unit_len(); ++p) {
        EXPECT_TRUE(g.adjacent(lay.unit_pos(u, p), lay.unit_pos(u, p + 1)))
            << "unit " << u << " pos " << p << " m=" << m;
      }
    }
  }
}

TEST(Sycamore, CrossUnitLinksMatchPredicate) {
  const int m = 4;
  const CouplingGraph g = make_sycamore(m);
  const SycamoreLayout lay{m};
  for (int u = 0; u + 1 < lay.num_units(); ++u) {
    for (int pa = 0; pa < lay.unit_len(); ++pa) {
      for (int pb = 0; pb < lay.unit_len(); ++pb) {
        const bool linked =
            g.adjacent(lay.unit_pos(u, pa), lay.unit_pos(u + 1, pb));
        EXPECT_EQ(linked, sycamore_cross_link(pa, pb))
            << "pa=" << pa << " pb=" << pb;
      }
    }
  }
}

TEST(Sycamore, NoSameLinePositionCrossLink) {
  // §5: two vertices at the same (line) position in adjacent units are not
  // directly connected.
  const SycamoreLayout lay{4};
  const CouplingGraph g = make_sycamore(4);
  for (int p = 0; p < lay.unit_len(); ++p) {
    EXPECT_FALSE(g.adjacent(lay.unit_pos(0, p), lay.unit_pos(1, p)));
  }
}

TEST(Sycamore, RejectsOddM) {
  EXPECT_THROW(make_sycamore(3), std::invalid_argument);
}

TEST(HeavyHex, PaperLayout) {
  const HeavyHexLayout lay = heavy_hex_layout(10);
  EXPECT_EQ(lay.num_qubits, 10);
  EXPECT_EQ(lay.main_len, 8);
  EXPECT_EQ(lay.num_dangling(), 2);
  EXPECT_EQ(lay.junctions, (std::vector<std::int32_t>{3, 7}));
  EXPECT_EQ(lay.junction_at(3), 0);
  EXPECT_EQ(lay.junction_at(7), 1);
  EXPECT_EQ(lay.junction_at(4), -1);

  const CouplingGraph g = make_heavy_hex(lay);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.num_edges(), 7 + 2);  // main chain + dangling links
  EXPECT_TRUE(g.adjacent(lay.main_node(3), lay.dangling_node(0)));
  EXPECT_FALSE(g.adjacent(lay.dangling_node(0), lay.dangling_node(1)));
}

TEST(HeavyHex, InitialMappingWalk) {
  // N=10: main 0..7, junctions at 3 and 7. Walk: q0..q3 on main 0..3,
  // q4 dangling0, q5..q8 on main 4..7, q9 dangling1.
  const HeavyHexLayout lay = heavy_hex_layout(10);
  const auto map = heavy_hex_initial_mapping(lay);
  ASSERT_EQ(map.size(), 10u);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[3], 3);
  EXPECT_EQ(map[4], lay.dangling_node(0));
  EXPECT_EQ(map[5], 4);
  EXPECT_EQ(map[8], 7);
  EXPECT_EQ(map[9], lay.dangling_node(1));
  EXPECT_TRUE(valid_mapping(map, lay.num_qubits));
}

TEST(HeavyHex, CustomLayoutValidation) {
  EXPECT_NO_THROW(heavy_hex_layout_custom(6, {1, 4}));
  EXPECT_THROW(heavy_hex_layout_custom(6, {7}), std::invalid_argument);
  EXPECT_THROW(heavy_hex_layout(7), std::invalid_argument);
}

TEST(LatticeSurgery, RotatedLinkTypes) {
  const CouplingGraph g = make_lattice_surgery_rotated(3);
  const LatticeLayout lay{3};
  EXPECT_EQ(g.link_type(lay.node(0, 0), lay.node(0, 1)), LinkType::kFast);
  EXPECT_EQ(g.link_type(lay.node(0, 0), lay.node(1, 0)), LinkType::kCnotOnly);
  EXPECT_FALSE(g.adjacent(lay.node(0, 0), lay.node(1, 1)));
  EXPECT_TRUE(g.connected());
}

TEST(LatticeSurgery, FullGraphHasBothFamilies) {
  const CouplingGraph g = make_lattice_surgery_full(3);
  const LatticeLayout lay{3};
  EXPECT_EQ(g.link_type(lay.node(0, 0), lay.node(0, 1)), LinkType::kCnotOnly);
  EXPECT_EQ(g.link_type(lay.node(0, 0), lay.node(1, 1)), LinkType::kFast);
  EXPECT_EQ(g.link_type(lay.node(0, 1), lay.node(1, 0)), LinkType::kFast);
  EXPECT_TRUE(g.connected());
}

TEST(LatencyModel, NisqUniform) {
  auto lat = nisq_latency();
  EXPECT_EQ(lat(Gate::h(0)), 1);
  EXPECT_EQ(lat(Gate::swap(0, 1)), 1);
}

TEST(LatencyModel, LatticeWeights) {
  const CouplingGraph g = make_lattice_surgery_rotated(3);
  const LatticeLayout lay{3};
  auto lat = lattice_latency(g);
  const auto a = lay.node(0, 0), right = lay.node(0, 1), down = lay.node(1, 0);
  EXPECT_EQ(lat(Gate::swap(a, right)), kLsFastSwapDepth);
  EXPECT_EQ(lat(Gate::swap(a, down)), kLsSlowSwapDepth);
  EXPECT_EQ(lat(Gate::cphase(a, down, 0.5)), kLsCphaseDepth);
  EXPECT_EQ(lat(Gate::cnot(a, right)), kLsCnotDepth);
  EXPECT_EQ(lat(Gate::h(a)), 1);
}

TEST(LatencyModel, ConcreteModelMatchesCallableAdapter) {
  const CouplingGraph g = make_lattice_surgery_rotated(3);
  const LatticeLayout lay{3};
  const LatencyModel model = LatencyModel::lattice(g);
  const auto fn = lattice_latency(g);
  const auto a = lay.node(0, 0), right = lay.node(0, 1), down = lay.node(1, 0);
  for (const Gate& gate :
       {Gate::swap(a, right), Gate::swap(a, down), Gate::cphase(a, down, 0.5),
        Gate::cnot(a, right), Gate::h(a)}) {
    EXPECT_EQ(model.cycles(gate), fn(gate)) << gate.to_string();
    EXPECT_EQ(model(gate), fn(gate)) << gate.to_string();
  }
}

TEST(LatencyModel, CyclesOnLinkSkipsTheGraphProbe) {
  const CouplingGraph g = make_lattice_surgery_rotated(3);
  const LatencyModel model = LatencyModel::lattice(g);
  EXPECT_EQ(model.cycles_on_link(GateKind::kSwap, LinkType::kFast),
            kLsFastSwapDepth);
  EXPECT_EQ(model.cycles_on_link(GateKind::kSwap, LinkType::kCnotOnly),
            kLsSlowSwapDepth);
  EXPECT_EQ(model.cycles_on_link(GateKind::kCPhase, LinkType::kCnotOnly),
            kLsCphaseDepth);
  EXPECT_EQ(model.cycles_on_link(GateKind::kH, LinkType::kStandard), 1);
}

TEST(LatencyModel, NonEdgeTwoQubitGateChargedSlow) {
  // Baselines evaluated leniently can emit gates off the link set; the seed
  // charged those the slow-SWAP cost and the model must keep doing so.
  const CouplingGraph g = make_lattice_surgery_rotated(3);
  const LatticeLayout lay{3};
  const LatencyModel model = LatencyModel::lattice(g);
  const Gate far = Gate::swap(lay.node(0, 0), lay.node(2, 2));
  ASSERT_FALSE(g.adjacent(far.q0, far.q1));
  EXPECT_EQ(model.cycles(far), kLsSlowSwapDepth);
}

TEST(LatencyModel, LinkTypedCostRequiresBoundGraph) {
  LatencyModel m;
  EXPECT_THROW(m.set_cost(GateKind::kSwap, LinkType::kFast, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace qfto
