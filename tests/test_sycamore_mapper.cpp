#include <gtest/gtest.h>

#include "arch/sycamore.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "mapper/sycamore_mapper.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

class SycamoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(SycamoreSweep, CheckerInvariants) {
  const int m = GetParam();
  const int n = m * m;
  const MappedCircuit mc = map_qft_sycamore(m);
  const CouplingGraph g = make_sycamore(m);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << "m=" << m << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(n));
  EXPECT_EQ(r.counts.h, n);
}

TEST_P(SycamoreSweep, LinearDepthBound) {
  const int m = GetParam();
  const int n = m * m;
  const MappedCircuit mc = map_qft_sycamore(m);
  const CouplingGraph g = make_sycamore(m);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  // §5 engineering: 7N + O(sqrt N). Our closed-loop constant is allowed up
  // to 12N + O(sqrt N) — still linear; measured constants in EXPERIMENTS.md.
  EXPECT_LE(r.depth, 12 * n + 40 * m + 64) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SycamoreSweep,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

class SycamoreSim : public ::testing::TestWithParam<int> {};

TEST_P(SycamoreSim, UnitaryEquivalence) {
  const int m = GetParam();
  const MappedCircuit mc = map_qft_sycamore(m);
  EXPECT_LT(mapped_equivalence_error(mc), 1e-9) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, SycamoreSim, ::testing::Values(2, 4));

TEST(Sycamore, TwoByTwoIsPureLnnOnFourQubits) {
  // m=2 has a single unit: the mapper degenerates to the LNN pattern.
  const MappedCircuit mc = map_qft_sycamore(2);
  const auto r = check_qft_mapping(mc, make_sycamore(2));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LE(r.depth, 4 * 4 + 8);
  EXPECT_EQ(count_gates(mc.circuit).swap, qft_pair_count(4));
}

TEST(Sycamore, DepthScalesLinearlyAcrossSizes) {
  // depth(m=10) / depth(m=6) should be close to N ratio (100/36), far from
  // the superlinear growth a generic router exhibits.
  const auto d6 = check_qft_mapping(map_qft_sycamore(6), make_sycamore(6));
  const auto d10 = check_qft_mapping(map_qft_sycamore(10), make_sycamore(10));
  ASSERT_TRUE(d6.ok && d10.ok);
  const double ratio = static_cast<double>(d10.depth) / d6.depth;
  EXPECT_LT(ratio, 1.6 * (100.0 / 36.0));
}

TEST(Sycamore, StrictIeCorrectAndSlower) {
  const CouplingGraph g = make_sycamore(6);
  const auto strict = check_qft_mapping(map_qft_sycamore(6, true), g);
  ASSERT_TRUE(strict.ok) << strict.error;
  const auto relaxed = check_qft_mapping(map_qft_sycamore(6), g);
  ASSERT_TRUE(relaxed.ok) << relaxed.error;
  EXPECT_GT(strict.depth, relaxed.depth);
}

TEST(Sycamore, StrictIeUnitaryEquivalent) {
  EXPECT_LT(mapped_equivalence_error(map_qft_sycamore(4, true)), 1e-9);
}

TEST(Sycamore, RejectsInvalidM) {
  EXPECT_THROW(map_qft_sycamore(3), std::invalid_argument);
  EXPECT_THROW(map_qft_sycamore(0), std::invalid_argument);
}

}  // namespace
}  // namespace qfto
