#include <gtest/gtest.h>

#include "arch/heavy_hex.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

class HeavyHexSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeavyHexSweep, CheckerInvariants) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_heavy_hex(n);
  const CouplingGraph g = make_heavy_hex(heavy_hex_layout(n));
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << "n=" << n << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(n));
  EXPECT_EQ(r.counts.h, n);
}

TEST_P(HeavyHexSweep, LinearDepthBound) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_heavy_hex(n);
  const CouplingGraph g = make_heavy_hex(heavy_hex_layout(n));
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  // §4: 5N + O(1) for the one-dangle-per-four configuration; allow slack for
  // small sizes and our closed-loop constant.
  EXPECT_LE(r.depth, 6 * n + 24) << "n=" << n;
}

TEST_P(HeavyHexSweep, DanglingQubitsCaptureSmallestIndices) {
  const int n = GetParam();
  const HeavyHexLayout lay = heavy_hex_layout(n);
  const MappedCircuit mc = map_qft_heavy_hex(n);
  // Final mapping: logical g sits on dangling node g (§4, Fig. 23).
  for (std::int32_t g = 0; g < lay.num_dangling(); ++g) {
    EXPECT_EQ(mc.final_mapping[g], lay.dangling_node(g)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeavyHexSweep,
                         ::testing::Values(5, 10, 15, 20, 25, 30, 40, 50, 75,
                                           100));

class HeavyHexSim : public ::testing::TestWithParam<int> {};

TEST_P(HeavyHexSim, UnitaryEquivalence) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_heavy_hex(n);
  EXPECT_LT(mapped_equivalence_error(mc), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, HeavyHexSim, ::testing::Values(5, 10));

class HeavyHexCustom
    : public ::testing::TestWithParam<std::pair<int, std::vector<int>>> {};

TEST_P(HeavyHexCustom, IrregularJunctionSpacings) {
  const auto& [main_len, junctions] = GetParam();
  const HeavyHexLayout lay = heavy_hex_layout_custom(main_len, junctions);
  const MappedCircuit mc = map_qft_heavy_hex(lay);
  const CouplingGraph g = make_heavy_hex(lay);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  // General bound from Appendix 3: <= 6N + O(1).
  EXPECT_LE(r.depth, 6 * lay.num_qubits + 24);
  if (lay.num_qubits <= 12) {
    EXPECT_LT(mapped_equivalence_error(mc), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, HeavyHexCustom,
    ::testing::Values(
        std::pair<int, std::vector<int>>{4, {}},          // plain line
        std::pair<int, std::vector<int>>{4, {0}},         // junction at start
        std::pair<int, std::vector<int>>{4, {3}},         // junction at end
        std::pair<int, std::vector<int>>{6, {0, 5}},      // both ends
        std::pair<int, std::vector<int>>{8, {1, 2, 5}},   // adjacent junctions
        std::pair<int, std::vector<int>>{10, {0, 1, 2}},  // clustered left
        std::pair<int, std::vector<int>>{5, {0, 1, 2, 3, 4}},  // comb
        std::pair<int, std::vector<int>>{30, {7, 21}},    // sparse
        std::pair<int, std::vector<int>>{16, {3, 7, 11, 15}}));  // paper-like

TEST(HeavyHex, NoDanglingEqualsLnnBehaviour) {
  const HeavyHexLayout lay = heavy_hex_layout_custom(12, {});
  const MappedCircuit mc = map_qft_heavy_hex(lay);
  const CouplingGraph g = make_heavy_hex(lay);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LE(r.depth, 4 * 12 + 8);
  const GateCounts gc = count_gates(mc.circuit);
  EXPECT_EQ(gc.swap, qft_pair_count(12));
}

TEST(HeavyHex, DepthConstantNearFiveN) {
  // The paper proves 5N + O(1) for the evaluated configuration. Confirm the
  // measured constant is close to 5 at a size where O(1) is negligible.
  const int n = 200;
  const MappedCircuit mc = map_qft_heavy_hex(n);
  const CouplingGraph g = make_heavy_hex(heavy_hex_layout(n));
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  const double constant = static_cast<double>(r.depth) / n;
  EXPECT_GE(constant, 3.5);
  EXPECT_LE(constant, 6.0);
}

}  // namespace
}  // namespace qfto
