// DistanceOracle: the closed-form/BFS redesign behind the retired
// distance_matrix(). Property sweep against the eager differential oracle on
// every registered topology, LRU row-cache eviction accounting, concurrent
// first use (the PR-2 TSan regression re-targeted at the per-row cache), and
// oracle invalidation across graph copy/move/mutation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "arch/distance_oracle.hpp"
#include "arch/grid.hpp"
#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/line.hpp"
#include "arch/sycamore.hpp"

namespace qfto {
namespace {

/// Asserts every (a,b) agrees with the eager all-pairs BFS matrix.
void expect_matches_eager(const CouplingGraph& g, const char* label) {
  const DistanceOracle& oracle = g.distances();
  const auto expected = oracle.eager_matrix_for_tests();
  const std::int32_t n = g.num_qubits();
  for (PhysicalQubit a = 0; a < n; ++a) {
    const DistanceOracle::RowPtr row = oracle.row(a);
    ASSERT_EQ(row->size(), static_cast<std::size_t>(n)) << label;
    for (PhysicalQubit b = 0; b < n; ++b) {
      ASSERT_EQ(oracle.distance(a, b), expected[a][b])
          << label << " (" << a << "," << b << ")";
      ASSERT_EQ((*row)[b], expected[a][b])
          << label << " row (" << a << "," << b << ")";
    }
  }
}

TEST(DistanceOracle, ClosedFormsMatchEagerBfsOnAllTopologies) {
  struct Case {
    const char* label;
    CouplingGraph graph;
    bool closed;
  };
  std::vector<Case> cases;
  cases.push_back({"line-1", make_line(1), true});
  cases.push_back({"line-9", make_line(9), true});
  cases.push_back({"grid-3x5", make_grid(3, 5), true});
  cases.push_back({"lattice-rot-4", make_lattice_surgery_rotated(4), true});
  cases.push_back({"lattice-full-4", make_lattice_surgery_full(4), true});
  cases.push_back({"heavy-hex-20", make_heavy_hex(heavy_hex_layout(20)), true});
  cases.push_back({"heavy-hex-custom",
                   make_heavy_hex(heavy_hex_layout_custom(7, {0, 2, 6})),
                   true});
  // Irregular topologies stay on the exact BFS path.
  cases.push_back({"sycamore-4", make_sycamore(4), false});
  cases.push_back(
      {"heavy-hex-device", make_heavy_hex_device(3, 5).graph, false});

  for (const Case& c : cases) {
    EXPECT_EQ(c.graph.distances().closed_form(), c.closed) << c.label;
    expect_matches_eager(c.graph, c.label);
    EXPECT_TRUE(c.graph.connected()) << c.label;
  }
}

TEST(DistanceOracle, ClosedFormsNeverRunBfs) {
  const CouplingGraph g = make_lattice_surgery_full(6);
  const DistanceOracle& oracle = g.distances();
  ASSERT_TRUE(oracle.closed_form());
  for (PhysicalQubit a = 0; a < g.num_qubits(); ++a) {
    (void)oracle.row(a);
    (void)oracle.distance(a, 0);
  }
  EXPECT_TRUE(oracle.connected());
  EXPECT_EQ(oracle.bfs_rows_computed(), 0);
  EXPECT_EQ(oracle.cached_rows(), 0u);
}

TEST(DistanceOracle, LruRowCacheEvictsBeyondBudgetAndKeepsHotRows) {
  // Force the cached-BFS path with a generic graph and a tiny explicit
  // budget, and prove both directions: re-querying inside the budget costs
  // no recomputation, overflowing it evicts the least-recently-used row.
  CouplingGraph g("ring", 12);
  for (std::int32_t i = 0; i < 12; ++i) g.add_edge(i, (i + 1) % 12);
  const DistanceOracle oracle(g, DistanceSpec{}, /*row_budget=*/4);
  ASSERT_FALSE(oracle.closed_form());
  EXPECT_EQ(oracle.row_budget(), 4u);

  for (PhysicalQubit a = 0; a < 4; ++a) (void)oracle.row(a);
  EXPECT_EQ(oracle.bfs_rows_computed(), 4);
  EXPECT_EQ(oracle.cached_rows(), 4u);

  // All four rows are resident: re-queries are pure cache hits.
  for (PhysicalQubit a = 0; a < 4; ++a) (void)oracle.distance(a, 6);
  EXPECT_EQ(oracle.bfs_rows_computed(), 4);

  // Touch row 0 (making row 1 the LRU victim), then overflow with row 4.
  (void)oracle.row(0);
  (void)oracle.row(4);
  EXPECT_EQ(oracle.bfs_rows_computed(), 5);
  EXPECT_EQ(oracle.cached_rows(), 4u);

  // Row 0 survived (recency); row 1 was evicted and must recompute.
  (void)oracle.row(0);
  EXPECT_EQ(oracle.bfs_rows_computed(), 5);
  (void)oracle.row(1);
  EXPECT_EQ(oracle.bfs_rows_computed(), 6);

  // Values stay exact throughout (ring of 12: d = min(|a-b|, 12-|a-b|)).
  for (PhysicalQubit a = 0; a < 12; ++a) {
    for (PhysicalQubit b = 0; b < 12; ++b) {
      const std::int32_t direct = a < b ? b - a : a - b;
      EXPECT_EQ(oracle.distance(a, b), std::min(direct, 12 - direct));
    }
  }
}

TEST(DistanceOracle, RowHandlesSurviveEviction) {
  // SABRE pins RowPtrs across rounds; a handle must stay valid and exact
  // after the LRU has evicted (and even recomputed) its row.
  CouplingGraph g("path", 8);
  for (std::int32_t i = 0; i + 1 < 8; ++i) g.add_edge(i, i + 1);
  const DistanceOracle oracle(g, DistanceSpec{}, /*row_budget=*/2);
  const DistanceOracle::RowPtr pinned = oracle.row(0);
  // Cycle every other row through the 2-slot cache: row 0 is evicted.
  for (PhysicalQubit a = 1; a < 8; ++a) (void)oracle.row(a);
  EXPECT_EQ(oracle.cached_rows(), 2u);
  // Re-querying row 0 recomputes it (proof the old row left the cache)...
  const std::int64_t before = oracle.bfs_rows_computed();
  const DistanceOracle::RowPtr fresh = oracle.row(0);
  EXPECT_EQ(oracle.bfs_rows_computed(), before + 1);
  // ...while the pinned handle kept serving the correct values throughout.
  for (PhysicalQubit b = 0; b < 8; ++b) {
    EXPECT_EQ((*pinned)[b], b);
    EXPECT_EQ((*fresh)[b], b);
  }
}

TEST(DistanceOracle, ConcurrentRowCacheFirstUse) {
  // TSan regression for the redesigned cache: many threads fault in and
  // evict BFS rows of a shared *generic* oracle concurrently, through the
  // graph-level double-checked distances() accessor.
  CouplingGraph shared("torus", 36);
  for (std::int32_t r = 0; r < 6; ++r) {
    for (std::int32_t c = 0; c < 6; ++c) {
      shared.add_edge(r * 6 + c, r * 6 + (c + 1) % 6);
      shared.add_edge(r * 6 + c, ((r + 1) % 6) * 6 + c);
    }
  }
  CouplingGraph reference = shared;
  const auto expected = reference.distances().eager_matrix_for_tests();

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&shared, &expected, &mismatches, t]() {
      const std::int32_t n = shared.num_qubits();
      for (int pass = 0; pass < 3; ++pass) {
        for (PhysicalQubit a = t; a < n; a += kThreads) {
          const DistanceOracle::RowPtr row = shared.distances().row(a);
          for (PhysicalQubit b = 0; b < n; ++b) {
            if ((*row)[b] != expected[a][b]) ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_FALSE(shared.distances().closed_form());
  EXPECT_GT(shared.distances().bfs_rows_computed(), 0);
}

TEST(DistanceOracle, SpecSurvivesCopyButMutationResetsIt) {
  CouplingGraph g = make_line(6);
  ASSERT_EQ(g.distance_spec().kind, DistanceSpec::Kind::kLine);
  ASSERT_TRUE(g.distances().closed_form());

  // Copy: spec carries over, oracle is rebuilt (never shared — it holds a
  // back-pointer to its owning graph).
  CouplingGraph copy = g;
  EXPECT_EQ(copy.distance_spec().kind, DistanceSpec::Kind::kLine);
  EXPECT_NE(&copy.distances(), &g.distances());
  EXPECT_EQ(copy.distance(0, 5), 5);

  // Mutation: a shortcut edge invalidates the line closed form; the spec
  // degrades to kGeneric and queries stay exact via BFS.
  copy.add_edge(0, 5);
  EXPECT_EQ(copy.distance_spec().kind, DistanceSpec::Kind::kGeneric);
  EXPECT_FALSE(copy.distances().closed_form());
  EXPECT_EQ(copy.distance(0, 5), 1);
  EXPECT_EQ(copy.distance(1, 5), 2);
  EXPECT_EQ(g.distance(0, 5), 5);  // source graph untouched

  // Move: queries keep working on the destination.
  CouplingGraph moved = std::move(copy);
  EXPECT_EQ(moved.distance(0, 5), 1);
  EXPECT_TRUE(moved.connected());
}

TEST(DistanceOracle, DisconnectedGenericGraphReportsMinusOne) {
  CouplingGraph split("split", 5);
  split.add_edge(0, 1);
  split.add_edge(2, 3);
  const DistanceOracle& oracle = split.distances();
  EXPECT_FALSE(oracle.connected());
  EXPECT_EQ(oracle.distance(0, 3), -1);
  EXPECT_EQ(oracle.distance(0, 4), -1);
  EXPECT_EQ(oracle.distance(0, 1), 1);
  EXPECT_EQ((*oracle.row(4))[0], -1);
}

TEST(DistanceOracle, DefaultBudgetIsBoundedAndFloored) {
  // Small n: floor of 16 rows. Large n: ~16 MiB worth of 4-byte rows.
  CouplingGraph small("s", 4);
  small.add_edge(0, 1);
  small.add_edge(1, 2);
  small.add_edge(2, 3);
  EXPECT_EQ(DistanceOracle(small, DistanceSpec{}).row_budget(), 16u);

  const CouplingGraph big = make_sycamore(64);  // 4096 nodes, kGeneric
  const std::size_t budget = big.distances().row_budget();
  EXPECT_GE(budget, 16u);
  EXPECT_LE(budget * big.num_qubits() * sizeof(std::int32_t),
            std::size_t{16} << 20);
}

}  // namespace
}  // namespace qfto
