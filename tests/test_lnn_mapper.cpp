#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "arch/line.hpp"
#include "circuit/inverse.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "common/prng.hpp"
#include "mapper/lnn_mapper.hpp"
#include "sim/statevector.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

class LnnSweep : public ::testing::TestWithParam<int> {};

TEST_P(LnnSweep, CheckerInvariants) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_lnn(n);
  const CouplingGraph g = make_line(n);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << "n=" << n << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(n));
  EXPECT_EQ(r.counts.h, n);
}

TEST_P(LnnSweep, LinearDepthBound) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_lnn(n);
  const CouplingGraph g = make_line(n);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  // Maslov/Zhang: ~4N cycles. Generous linear bound with a small additive
  // slack so tiny sizes pass.
  EXPECT_LE(r.depth, 4 * n + 8) << "n=" << n;
}

TEST_P(LnnSweep, SwapCountIsAllPairsCrossings) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_lnn(n);
  const GateCounts gc = count_gates(mc.circuit);
  // Full reversal: every pair crosses exactly once.
  EXPECT_EQ(gc.swap, qft_pair_count(n));
}

TEST_P(LnnSweep, FinalMappingIsReversed) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_lnn(n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(mc.final_mapping[i], n - 1 - i) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LnnSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 23,
                                           32, 40, 64, 100));

class LnnSim : public ::testing::TestWithParam<int> {};

TEST_P(LnnSim, UnitaryEquivalence) {
  const int n = GetParam();
  const MappedCircuit mc = map_qft_lnn(n);
  EXPECT_LT(mapped_equivalence_error(mc), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, LnnSim,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Lnn, DepthMatchesKnownConstants) {
  // Spot-check against the 4N + O(1) law on a large instance.
  const int n = 256;
  const MappedCircuit mc = map_qft_lnn(n);
  const CouplingGraph g = make_line(n);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.depth, 4 * n - 16);
  EXPECT_LE(r.depth, 4 * n + 8);
}

TEST(Lnn, RejectsZeroQubits) {
  EXPECT_THROW(map_qft_lnn(0), std::invalid_argument);
}

TEST(Lnn, ForwardThenInverseIsIdentity) {
  const int n = 6;
  const MappedCircuit fwd = map_qft_lnn(n);
  const MappedCircuit inv = inverse_mapped(fwd);
  StateVector sv(n);
  Xoshiro256ss rng(77);
  for (auto& a : sv.amplitudes()) {
    a = {rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
  }
  const auto before = sv.amplitudes();
  double norm = 0;
  for (auto& a : sv.amplitudes()) norm += std::norm(a);
  sv.apply(fwd.circuit);
  sv.apply(inv.circuit);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(std::abs(sv.amplitudes()[i] - before[i]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace qfto
