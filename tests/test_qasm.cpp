#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/line.hpp"
#include "arch/sycamore.hpp"
#include "baseline/sabre.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/transforms.hpp"
#include "common/prng.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lnn_mapper.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "qasm/qasm.hpp"
#include "sim/unitary.hpp"
#include "verify/circuit_checker.hpp"

namespace qfto {
namespace {

/// Random circuit over the full gate alphabet — the round-trip property
/// tests' input distribution (seed-stable PRNG, so failures reproduce).
Circuit random_circuit(Xoshiro256ss& rng, std::int32_t n,
                       std::int32_t num_gates) {
  Circuit c(n);
  for (std::int32_t i = 0; i < num_gates; ++i) {
    const auto a = static_cast<std::int32_t>(rng.uniform(n));
    const auto b = static_cast<std::int32_t>(
        (a + 1 + static_cast<std::int32_t>(rng.uniform(n - 1))) % n);
    const double angle = (rng.uniform_double() - 0.5) * 8.0;
    switch (rng.uniform(6)) {
      case 0: c.append(Gate::h(a)); break;
      case 1: c.append(Gate::x(a)); break;
      case 2: c.append(Gate::rz(a, angle)); break;
      case 3: c.append(Gate::cphase(a, b, angle)); break;
      case 4: c.append(Gate::swap(a, b)); break;
      default: c.append(Gate::cnot(a, b)); break;
    }
  }
  return c;
}

TEST(Qasm, HeaderAndRegister) {
  Circuit c(3);
  c.append(Gate::h(0));
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(q.find("h q[0];"), std::string::npos);
}

TEST(Qasm, AllGateKindsEmit) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::x(1));
  c.append(Gate::rz(2, 0.25));
  c.append(Gate::cphase(0, 1, 0.5));
  c.append(Gate::swap(1, 2));
  c.append(Gate::cnot(0, 2));
  const std::string q = to_qasm(c);
  for (const char* needle :
       {"h q[0];", "x q[1];", "rz(0.25) q[2];", "cu1(0.5) q[0],q[1];",
        "swap q[1],q[2];", "cx q[0],q[2];"}) {
    EXPECT_NE(q.find(needle), std::string::npos) << needle;
  }
}

TEST(Qasm, RoundTripPreservesGateList) {
  const Circuit orig = qft_logical(6);
  const Circuit back = from_qasm(to_qasm(orig));
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_TRUE(back[i] == orig[i]) << "gate " << i;
  }
}

TEST(Qasm, RoundTripMappedKernelExactUnitary) {
  const MappedCircuit mc = map_qft_lnn(5);
  const Circuit back = from_qasm(to_qasm(mc.circuit));
  EXPECT_LT(unitary_distance(circuit_unitary(mc.circuit),
                             circuit_unitary(back)),
            1e-12);
}

TEST(Qasm, RoundTripCnotBasis) {
  const Circuit lowered = decompose_to_cnot(map_qft_lnn(4).circuit);
  const Circuit back = from_qasm(to_qasm(lowered));
  ASSERT_EQ(back.size(), lowered.size());
  EXPECT_LT(
      unitary_distance(circuit_unitary(lowered), circuit_unitary(back)),
      1e-12);
}

TEST(Qasm, MappedHeaderCarriesMappings) {
  const MappedCircuit mc = map_qft_heavy_hex(10);
  const std::string q = to_qasm(mc);
  EXPECT_NE(q.find("initial mapping"), std::string::npos);
  EXPECT_NE(q.find("final mapping"), std::string::npos);
  // Comments must not break the parser.
  EXPECT_NO_THROW(from_qasm(q));
}

TEST(Qasm, ParsesPiExpressions) {
  const std::string text =
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
      "cu1(pi/4) q[0],q[1];\nrz(-pi) q[0];\nrz(pi*0.5) q[1];\n";
  const Circuit c = from_qasm(text);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0].angle, M_PI / 4, 1e-12);
  EXPECT_NEAR(c[1].angle, -M_PI, 1e-12);
  EXPECT_NEAR(c[2].angle, M_PI / 2, 1e-12);
}

TEST(Qasm, AcceptsCpAliasAndBarrier) {
  const std::string text =
      "OPENQASM 2.0;\nqreg q[2];\ncp(0.5) q[0],q[1];\nbarrier q[0],q[1];\n"
      "h q[1];\n";
  const Circuit c = from_qasm(text);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].kind, GateKind::kCPhase);
  EXPECT_EQ(c[1].kind, GateKind::kH);
}

TEST(Qasm, RejectsMalformedInput) {
  EXPECT_THROW(from_qasm("garbage"), std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; h r[0];"),
               std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; h q[5];"),
               std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; bogus q[0];"),
               std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; h q[0]"),
               std::invalid_argument);  // missing semicolon
}

TEST(Qasm, ErrorsCarryLineNumbers) {
  try {
    from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0];\nbogus q[1];\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

/// Expects `text` to fail with a positioned std::invalid_argument naming
/// `line`. Any other exception type is the bug class this PR fixes.
void expect_positioned_rejection(const std::string& text, int line) {
  try {
    from_qasm(text);
    FAIL() << "expected throw for: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line " + std::to_string(line)),
              std::string::npos)
        << e.what();
  } catch (const std::exception& e) {
    FAIL() << "non-invalid_argument escaped: " << e.what();
  }
}

// Regression: std::stoll used to escape raw std::out_of_range here.
TEST(QasmRegression, OversizedIntegerLiteralIsPositionedError) {
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[99999999999999999999];\n", 2);
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[3];\nh q[12345678901234567890123];\n", 3);
}

// Regression: std::stod used to escape raw std::out_of_range on rz(1e99999).
TEST(QasmRegression, OversizedRealLiteralIsPositionedError) {
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nrz(1e99999) q[0];\n",
                              3);
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[2];\ncu1(-1e9999) q[0],q[1];\n", 3);
}

// Regression: pi*1e308 / pi/1e-308 overflowed to infinity past the finite
// operand checks, and the resulting "rz(inf)" broke the emit->reparse round
// trip.
TEST(QasmRegression, PiExpressionOverflowIsPositionedError) {
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[2];\nrz(pi*1e308) q[0];\n", 3);
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[2];\nrz(-pi/1e-308) q[0];\n", 3);
}

// Regression: a lone sign used to escape an unpositioned "stoll"/"stod"
// invalid_argument instead of the documented parse error.
TEST(QasmRegression, LoneSignIsPositionedError) {
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nh q[-];\n", 3);
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nrz(-) q[0];\n", 3);
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nrz(+) q[0];\n", 3);
}

// Regression: the permissive number scan accepted '-'/'+'/'.'/'e' anywhere,
// so these all silently (mis)parsed — cu1(1.5-2) as 1.5, rz(1e+) as 1.
TEST(QasmRegression, TrailingGarbageInNumbersIsRejected) {
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[2];\ncu1(1.5-2) q[0],q[1];\n", 3);
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nrz(1e+) q[0];\n", 3);
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nrz(1..2) q[0];\n",
                              3);
  expect_positioned_rejection(
      "OPENQASM 2.0;\nqreg q[2];\nrz(1e2e3) q[0];\n", 3);
}

// `barrier;` with no operand list is legal QASM 2.0.
TEST(QasmRegression, BareBarrierIsAccepted) {
  const Circuit c = from_qasm(
      "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nbarrier;\nh q[1];\n");
  EXPECT_EQ(c.size(), 2u);
  expect_positioned_rejection("OPENQASM 2.0;\nqreg q[2];\nbarrier", 3);
}

// The fuzz harness's exception contract, spot-checked in-process: nothing
// but std::invalid_argument may escape, on any input.
TEST(QasmRegression, OnlyInvalidArgumentEverEscapes) {
  const std::vector<std::string> hostile = {
      "", "OPENQASM", "OPENQASM 2.0", "OPENQASM 2.0;",
      "OPENQASM 2.0;qreg q[0];", "OPENQASM 2.0;qreg q[-3];",
      "OPENQASM 2.0;qreg q[2];swap q[0],q[0];",
      "OPENQASM 2.0;qreg q[2];cu1(pi/0) q[0],q[1];",
      "OPENQASM 2.0;qreg q[2];cu1(pi/) q[0],q[1];",
      "OPENQASM 2.0;qreg q[2];rz(.e.) q[0];",
      "OPENQASM 2.0;qreg q[2];rz(++1) q[0];",
      "OPENQASM 2.0;qreg q[2];h q[999999999999999999999];",
      "OPENQASM 2.0;qreg q[1048577];",
      "// initial mapping (logical->physical): 0->\nOPENQASM 2.0;qreg q[1];",
      std::string(64, '['), std::string("qreg\0q", 6)};
  for (const auto& text : hostile) {
    try {
      from_qasm(text);
    } catch (const std::invalid_argument&) {
    } catch (const std::exception& e) {
      FAIL() << "non-invalid_argument escaped from_qasm on '" << text
             << "': " << e.what();
    }
    try {
      mapped_from_qasm(text);
    } catch (const std::invalid_argument&) {
    } catch (const std::exception& e) {
      FAIL() << "non-invalid_argument escaped mapped_from_qasm on '" << text
             << "': " << e.what();
    }
  }
}

TEST(QasmMapped, HeaderCommentsRoundTripExactly) {
  const MappedCircuit mc = map_qft_lnn(5);
  const MappedCircuit back = mapped_from_qasm(to_qasm(mc));
  EXPECT_EQ(back.initial, mc.initial);
  EXPECT_EQ(back.final_mapping, mc.final_mapping);
  ASSERT_EQ(back.circuit.size(), mc.circuit.size());
  for (std::size_t i = 0; i < mc.circuit.size(); ++i) {
    EXPECT_TRUE(back.circuit[i] == mc.circuit[i]) << "gate " << i;
  }
}

TEST(QasmMapped, PlainKernelParsesAsIdentityMapping) {
  const MappedCircuit mc =
      mapped_from_qasm("OPENQASM 2.0;\nqreg q[3];\nh q[1];\n");
  ASSERT_EQ(mc.num_logical(), 3);
  for (std::int32_t l = 0; l < 3; ++l) {
    EXPECT_EQ(mc.initial[l], l);
    EXPECT_EQ(mc.final_mapping[l], l);
  }
}

TEST(QasmMapped, RejectsInconsistentHeaders) {
  // Only one of the two mapping comments.
  EXPECT_THROW(
      mapped_from_qasm("// initial mapping (logical->physical): 0->0 1->1\n"
                       "OPENQASM 2.0;\nqreg q[2];\n"),
      std::invalid_argument);
  // Non-injective mapping.
  EXPECT_THROW(
      mapped_from_qasm("// initial mapping (logical->physical): 0->1 1->1\n"
                       "// final mapping (logical->physical): 0->0 1->1\n"
                       "OPENQASM 2.0;\nqreg q[2];\n"),
      std::invalid_argument);
  // Non-sequential entries.
  EXPECT_THROW(
      mapped_from_qasm("// initial mapping (logical->physical): 1->0 0->1\n"
                       "// final mapping (logical->physical): 0->0 1->1\n"
                       "OPENQASM 2.0;\nqreg q[2];\n"),
      std::invalid_argument);
  // Physical index outside the register.
  EXPECT_THROW(
      mapped_from_qasm("// initial mapping (logical->physical): 0->0 1->9\n"
                       "// final mapping (logical->physical): 0->0 1->1\n"
                       "OPENQASM 2.0;\nqreg q[2];\n"),
      std::invalid_argument);
}

// The ROADMAP round-trip property, randomized: from_qasm(to_qasm(c)) == c
// gate-for-gate over the full alphabet and a wide angle range.
TEST(QasmProperty, RandomCircuitsRoundTripGateForGate) {
  Xoshiro256ss rng(0xf022);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::int32_t>(2 + rng.uniform(7));
    const Circuit c =
        random_circuit(rng, n, static_cast<std::int32_t>(rng.uniform(41)));
    const Circuit back = from_qasm(to_qasm(c));
    ASSERT_EQ(back.num_qubits(), c.num_qubits());
    ASSERT_EQ(back.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_TRUE(back[i] == c[i]) << "trial " << trial << " gate " << i;
    }
  }
}

// Mapped kernels (mappings included) survive the file format unitary-exactly.
TEST(QasmProperty, RoutedKernelsRoundTripUnitaryExact) {
  Xoshiro256ss rng(0xbeef);
  const CouplingGraph line = make_line(4);
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit logical = random_circuit(rng, 4, 12);
    const MappedCircuit mc = sabre_route(logical, line);
    const MappedCircuit back = mapped_from_qasm(to_qasm(mc));
    EXPECT_EQ(back.initial, mc.initial);
    EXPECT_EQ(back.final_mapping, mc.final_mapping);
    EXPECT_LT(unitary_distance(circuit_unitary(mc.circuit),
                               circuit_unitary(back.circuit)),
              1e-12)
        << "trial " << trial;
  }
}

// Fixture: the checked-in QFT-16 sycamore kernel parses, re-verifies against
// the QFT spec on the sycamore graph, and its circuit feeds back through the
// general map_circuit entry point end-to-end.
TEST(QasmFixture, Qft16SycamoreParsesAndReverifies) {
  std::ifstream in(std::string(QFTO_SOURCE_DIR) + "/qft16_sycamore.qasm");
  ASSERT_TRUE(in) << "fixture missing";
  std::ostringstream text;
  text << in.rdbuf();

  const MappedCircuit mc = mapped_from_qasm(text.str());
  ASSERT_EQ(mc.num_logical(), 16);
  const CouplingGraph graph = make_sycamore(4);
  const QftCheckResult check =
      check_circuit_mapping(mc, qft_logical(16), graph);
  EXPECT_TRUE(check.ok) << check.error;

  const MapResult routed = map_circuit("sycamore", mc.circuit);
  EXPECT_TRUE(routed.check.ok) << routed.check.error;
  EXPECT_EQ(routed.n, 16);
  EXPECT_EQ(routed.graph.num_qubits(), 16);
}

}  // namespace
}  // namespace qfto
