#include <gtest/gtest.h>

#include "circuit/qft_spec.hpp"
#include "circuit/transforms.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lnn_mapper.hpp"
#include "qasm/qasm.hpp"
#include "sim/unitary.hpp"

namespace qfto {
namespace {

TEST(Qasm, HeaderAndRegister) {
  Circuit c(3);
  c.append(Gate::h(0));
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(q.find("h q[0];"), std::string::npos);
}

TEST(Qasm, AllGateKindsEmit) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::x(1));
  c.append(Gate::rz(2, 0.25));
  c.append(Gate::cphase(0, 1, 0.5));
  c.append(Gate::swap(1, 2));
  c.append(Gate::cnot(0, 2));
  const std::string q = to_qasm(c);
  for (const char* needle :
       {"h q[0];", "x q[1];", "rz(0.25) q[2];", "cu1(0.5) q[0],q[1];",
        "swap q[1],q[2];", "cx q[0],q[2];"}) {
    EXPECT_NE(q.find(needle), std::string::npos) << needle;
  }
}

TEST(Qasm, RoundTripPreservesGateList) {
  const Circuit orig = qft_logical(6);
  const Circuit back = from_qasm(to_qasm(orig));
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_TRUE(back[i] == orig[i]) << "gate " << i;
  }
}

TEST(Qasm, RoundTripMappedKernelExactUnitary) {
  const MappedCircuit mc = map_qft_lnn(5);
  const Circuit back = from_qasm(to_qasm(mc.circuit));
  EXPECT_LT(unitary_distance(circuit_unitary(mc.circuit),
                             circuit_unitary(back)),
            1e-12);
}

TEST(Qasm, RoundTripCnotBasis) {
  const Circuit lowered = decompose_to_cnot(map_qft_lnn(4).circuit);
  const Circuit back = from_qasm(to_qasm(lowered));
  ASSERT_EQ(back.size(), lowered.size());
  EXPECT_LT(
      unitary_distance(circuit_unitary(lowered), circuit_unitary(back)),
      1e-12);
}

TEST(Qasm, MappedHeaderCarriesMappings) {
  const MappedCircuit mc = map_qft_heavy_hex(10);
  const std::string q = to_qasm(mc);
  EXPECT_NE(q.find("initial mapping"), std::string::npos);
  EXPECT_NE(q.find("final mapping"), std::string::npos);
  // Comments must not break the parser.
  EXPECT_NO_THROW(from_qasm(q));
}

TEST(Qasm, ParsesPiExpressions) {
  const std::string text =
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
      "cu1(pi/4) q[0],q[1];\nrz(-pi) q[0];\nrz(pi*0.5) q[1];\n";
  const Circuit c = from_qasm(text);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0].angle, M_PI / 4, 1e-12);
  EXPECT_NEAR(c[1].angle, -M_PI, 1e-12);
  EXPECT_NEAR(c[2].angle, M_PI / 2, 1e-12);
}

TEST(Qasm, AcceptsCpAliasAndBarrier) {
  const std::string text =
      "OPENQASM 2.0;\nqreg q[2];\ncp(0.5) q[0],q[1];\nbarrier q[0],q[1];\n"
      "h q[1];\n";
  const Circuit c = from_qasm(text);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].kind, GateKind::kCPhase);
  EXPECT_EQ(c[1].kind, GateKind::kH);
}

TEST(Qasm, RejectsMalformedInput) {
  EXPECT_THROW(from_qasm("garbage"), std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; h r[0];"),
               std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; h q[5];"),
               std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; bogus q[0];"),
               std::invalid_argument);
  EXPECT_THROW(from_qasm("OPENQASM 2.0; qreg q[2]; h q[0]"),
               std::invalid_argument);  // missing semicolon
}

TEST(Qasm, ErrorsCarryLineNumbers) {
  try {
    from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0];\nbogus q[1];\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace qfto
