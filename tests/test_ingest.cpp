// General-circuit ingestion: MapperPipeline::run_circuit across the engine
// registry, the MappingTracker-based general checker (positive and tampered
// cases), circuit fingerprints in the ResultCache key, and the service /
// serve plumbing that carries parsed QASM end-to-end.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/line.hpp"
#include "baseline/sabre.hpp"
#include "circuit/qft_spec.hpp"
#include "common/prng.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "qasm/qasm.hpp"
#include "service/mapping_service.hpp"
#include "service/result_cache.hpp"
#include "service/serve.hpp"
#include "verify/circuit_checker.hpp"
#include "verify/equivalence.hpp"

namespace qfto {
namespace {

/// Small non-QFT workload exercising every gate kind, incl. explicit SWAPs.
Circuit sample_circuit(std::int32_t n) {
  Circuit c(n);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.375));
  c.append(Gate::cphase(1, n - 1, 0.25));
  c.append(Gate::swap(0, n - 1));
  c.append(Gate::x(n - 1));
  c.append(Gate::cphase(0, 1, -1.125));
  c.append(Gate::h(n - 1));
  return c;
}

TEST(MapCircuit, EveryRegisteredEngineAcceptsArbitraryCircuits) {
  const Circuit logical = sample_circuit(5);
  for (const auto& name : MapperPipeline::global().engine_names()) {
    if (name == "satmap") continue;  // covered separately with a budget
    const MapResult r = map_circuit(name, logical);
    EXPECT_TRUE(r.check.ok) << name << ": " << r.check.error;
    EXPECT_EQ(r.requested_n, 5) << name;
    EXPECT_EQ(r.n, 5) << name;
    EXPECT_GE(r.graph.num_qubits(), 5) << name;
    if (r.mapped.num_physical() <= 14) {
      EXPECT_LT(mapped_equivalence_error(r.mapped, 2, 0x5eed, &logical),
                1e-9)
          << name;
    }
  }
}

TEST(MapCircuit, SatmapRoutesGeneralCircuits) {
  Circuit logical(3);
  logical.append(Gate::h(0));
  logical.append(Gate::cnot(0, 2));
  logical.append(Gate::cphase(1, 2, 0.5));
  MapOptions opts;
  opts.satmap.time_budget_seconds = 60.0;
  const MapResult r = map_circuit("satmap", logical, opts);
  EXPECT_TRUE(r.check.ok) << r.check.error;
  EXPECT_LT(mapped_equivalence_error(r.mapped, 2, 0x5eed, &logical), 1e-9);
}

TEST(MapCircuit, HeavyHexDeviceRoutesArbitraryCircuitsOnTheFullGraph) {
  // The dormant device engine is registered: general circuits route (via
  // SABRE on the engine's native topology) onto the *unreduced* device graph
  // and verify through the general checker.
  const Circuit logical = sample_circuit(6);
  const MapResult r = map_circuit("heavy_hex_device", logical);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  EXPECT_EQ(r.n, 6);
  EXPECT_EQ(r.graph.num_qubits(), 13);  // one 13-qubit row holds 6 logicals
  EXPECT_LT(mapped_equivalence_error(r.mapped, 2, 0x5eed, &logical), 1e-9);
}

TEST(MapCircuit, QftSpecInputVerifiesThroughTheGeneralChecker) {
  const MapResult r = map_circuit("sabre", qft_logical(6));
  EXPECT_TRUE(r.check.ok) << r.check.error;
  EXPECT_EQ(r.check.counts.h, 6);
  EXPECT_EQ(r.check.counts.cphase, qft_pair_count(6));
}

TEST(MapCircuit, RejectsEmptyRegisterAndUnknownEngine) {
  EXPECT_THROW(map_circuit("sabre", Circuit(0)), std::invalid_argument);
  EXPECT_THROW(map_circuit("nosuch", sample_circuit(3)),
               std::invalid_argument);
}

// ------------------------------------------------------- general checker --

TEST(CircuitChecker, AcceptsRoutedCircuitAndCountsDepth) {
  const Circuit logical = sample_circuit(4);
  const CouplingGraph line = make_line(4);
  const MappedCircuit mc = sabre_route(logical, line);
  const QftCheckResult check = check_circuit_mapping(mc, logical, line);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.depth, 0);
  EXPECT_EQ(check.counts.total(),
            static_cast<std::int64_t>(mc.circuit.size()));
}

TEST(CircuitChecker, RejectsMissingGate) {
  const Circuit logical = sample_circuit(4);
  const CouplingGraph line = make_line(4);
  MappedCircuit mc = sabre_route(logical, line);
  Circuit truncated(mc.circuit.num_qubits());
  for (std::size_t i = 0; i + 1 < mc.circuit.size(); ++i) {
    truncated.append(mc.circuit[i]);
  }
  mc.circuit = truncated;
  const QftCheckResult check = check_circuit_mapping(mc, logical, line);
  EXPECT_FALSE(check.ok);
}

TEST(CircuitChecker, RejectsWrongAngleAndForeignGate) {
  const Circuit logical = sample_circuit(4);
  const CouplingGraph line = make_line(4);
  const MappedCircuit routed = sabre_route(logical, line);

  MappedCircuit wrong_angle = routed;
  Circuit tampered(routed.circuit.num_qubits());
  for (std::size_t i = 0; i < routed.circuit.size(); ++i) {
    Gate g = routed.circuit[i];
    if (g.kind == GateKind::kCPhase) g.angle += 1e-3;
    tampered.append(g);
  }
  wrong_angle.circuit = tampered;
  EXPECT_FALSE(check_circuit_mapping(wrong_angle, logical, line).ok);

  MappedCircuit extra = routed;
  extra.circuit.append(Gate::h(0));
  EXPECT_FALSE(check_circuit_mapping(extra, logical, line).ok);
}

TEST(CircuitChecker, RejectsNonEdgeGateAndStaleFinalMapping) {
  Circuit logical(4);
  logical.append(Gate::cphase(0, 3, 0.5));
  const CouplingGraph line = make_line(4);

  MappedCircuit non_edge;
  non_edge.circuit = Circuit(4);
  non_edge.circuit.append(Gate::cphase(0, 3, 0.5));  // 0-3 not a line edge
  non_edge.initial = {0, 1, 2, 3};
  non_edge.final_mapping = {0, 1, 2, 3};
  const QftCheckResult check = check_circuit_mapping(non_edge, logical, line);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("edge"), std::string::npos) << check.error;

  // A trailing SWAP moves the tracked mapping; the declared one goes stale.
  const Circuit simple = sample_circuit(4);
  MappedCircuit stale = sabre_route(simple, line);
  stale.circuit.append(Gate::swap(0, 1));
  EXPECT_FALSE(check_circuit_mapping(stale, simple, line).ok);
}

TEST(CircuitChecker, AcceptsDiagonalCommutationButNotBarrierCrossing) {
  // rz / cphase sharing a wire commute (relaxed DAG); an H is a barrier.
  Circuit logical(2);
  logical.append(Gate::rz(0, 0.25));
  logical.append(Gate::cphase(0, 1, 0.5));
  logical.append(Gate::h(0));

  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::cphase(0, 1, 0.5));  // commuted ahead of the rz
  mc.circuit.append(Gate::rz(0, 0.25));
  mc.circuit.append(Gate::h(0));
  mc.initial = {0, 1};
  mc.final_mapping = {0, 1};
  const CouplingGraph line = make_line(2);
  EXPECT_TRUE(check_circuit_mapping(mc, logical, line).ok);

  MappedCircuit crossed = mc;
  Circuit bad(2);
  bad.append(Gate::h(0));  // barrier hoisted above both diagonals
  bad.append(Gate::cphase(0, 1, 0.5));
  bad.append(Gate::rz(0, 0.25));
  crossed.circuit = bad;
  EXPECT_FALSE(check_circuit_mapping(crossed, logical, line).ok);
}

TEST(CircuitChecker, LogicalSwapsVerifyWhetherEmittedOrAbsorbed) {
  Circuit logical(3);
  logical.append(Gate::h(0));
  logical.append(Gate::swap(0, 2));
  logical.append(Gate::x(0));
  const CouplingGraph line = make_line(3);

  // Emitted: the router executes the SWAP as a gate.
  const MappedCircuit routed = sabre_route(logical, line);
  EXPECT_TRUE(check_circuit_mapping(routed, logical, line).ok);
  EXPECT_LT(mapped_equivalence_error(routed, 3, 0x5eed, &logical), 1e-9);

  // Absorbed: a mapper may realize the SWAP purely as relabeling, never
  // emitting it — the post-swap X(0) acts on the data that never left
  // physical 2, and the exit mapping carries the permutation.
  MappedCircuit absorbed;
  absorbed.circuit = Circuit(3);
  absorbed.circuit.append(Gate::h(0));
  absorbed.circuit.append(Gate::x(2));
  absorbed.initial = {0, 1, 2};
  absorbed.final_mapping = {2, 1, 0};
  EXPECT_TRUE(check_circuit_mapping(absorbed, logical, line).ok);
  EXPECT_LT(mapped_equivalence_error(absorbed, 3, 0x5eed, &logical), 1e-9);
}

// --------------------------------------------------- fingerprint / cache --

TEST(Fingerprint, ContentSensitiveAndStable) {
  const Circuit a = sample_circuit(4);
  const Circuit b = sample_circuit(4);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  Circuit angle_tweak = sample_circuit(4);
  angle_tweak.append(Gate::rz(0, 1e-9));
  EXPECT_NE(a.fingerprint(), angle_tweak.fingerprint());

  // Same gates, different register width.
  Circuit wide(5);
  for (const auto& g : a) wide.append(g);
  EXPECT_NE(a.fingerprint(), wide.fingerprint());

  const MapOptions opts;
  EXPECT_NE(ResultCache::key("sabre", 4, opts, &a),
            ResultCache::key("sabre", 4, opts, &angle_tweak));
  EXPECT_NE(ResultCache::key("sabre", 4, opts, &a),
            ResultCache::key("sabre", 4, opts, nullptr));
}

TEST(Service, GeneralCircuitsAreCachedByContent) {
  MappingService::Options sopts;
  sopts.num_threads = 1;
  MappingService service(sopts);

  const auto circuit = std::make_shared<const Circuit>(sample_circuit(4));
  BatchRequest req;
  req.engine = "sabre";
  req.circuit = circuit;  // n auto-filled by submit()

  const JobResult cold = service.submit(req).wait();
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.result->cache_hit);

  const JobResult warm = service.submit(req).wait();
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_TRUE(warm.result->cache_hit);
  EXPECT_EQ(warm.result->mapped.circuit.size(),
            cold.result->mapped.circuit.size());

  // Same engine, same width, different content: no stale hit.
  Circuit other = sample_circuit(4);
  other.append(Gate::h(2));
  BatchRequest req2;
  req2.engine = "sabre";
  req2.circuit = std::make_shared<const Circuit>(std::move(other));
  const JobResult distinct = service.submit(req2).wait();
  ASSERT_TRUE(distinct.ok()) << distinct.error;
  EXPECT_FALSE(distinct.result->cache_hit);
}

TEST(Service, CircuitSizeMismatchFailsInBand) {
  MappingService::Options sopts;
  sopts.num_threads = 1;
  MappingService service(sopts);
  BatchRequest req;
  req.engine = "sabre";
  req.n = 7;  // circuit says 4
  req.circuit = std::make_shared<const Circuit>(sample_circuit(4));
  const JobResult out = service.submit(req).wait();
  EXPECT_EQ(out.status, JobStatus::kFailed);
  EXPECT_NE(out.error.find("does not match"), std::string::npos) << out.error;
}

// ------------------------------------------------------- serve protocol --

TEST(ServeQasm, ParsesQasmFieldAndDerivesN) {
  const ServeRequest req = parse_serve_request(
      R"({"id": 7, "engine": "sabre", )"
      R"("qasm": "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n"})");
  ASSERT_TRUE(req.ok) << req.error;
  ASSERT_NE(req.request.circuit, nullptr);
  EXPECT_EQ(req.request.n, 3);
  EXPECT_EQ(req.request.circuit->size(), 2u);
}

TEST(ServeQasm, RejectsBadQasmWithPositionedErrorInBand) {
  const ServeRequest req = parse_serve_request(
      R"({"engine": "sabre", "qasm": "OPENQASM 2.0;\nqreg q[2];\nbogus;\n"})");
  EXPECT_FALSE(req.ok);
  EXPECT_NE(req.error.find("line 3"), std::string::npos) << req.error;
}

TEST(ServeQasm, QasmIsExclusiveWithExplicitSizes) {
  const ServeRequest req = parse_serve_request(
      R"({"engine": "sabre", "n": 3, )"
      R"("qasm": "OPENQASM 2.0;\nqreg q[3];\nh q[0];\n"})");
  EXPECT_FALSE(req.ok);
  EXPECT_NE(req.error.find("mutually exclusive"), std::string::npos)
      << req.error;
}

}  // namespace
}  // namespace qfto
