#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "arch/grid.hpp"
#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/latency_model.hpp"
#include "arch/line.hpp"
#include "arch/sycamore.hpp"
#include "baseline/lnn_baseline.hpp"
#include "baseline/sabre.hpp"
#include "baseline/satmap.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/stats.hpp"
#include "mapper/lnn_mapper.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

// ---------------------------------------------------------------- SABRE ----

struct SabreCase {
  std::string name;
  CouplingGraph graph;
  std::int32_t n;  // QFT size
};

std::vector<SabreCase> sabre_cases() {
  std::vector<SabreCase> cases;
  cases.push_back({"line8", make_line(8), 8});
  cases.push_back({"grid3x3", make_grid(3, 3), 9});
  cases.push_back({"sycamore4", make_sycamore(4), 16});
  cases.push_back({"heavyhex10", make_heavy_hex(heavy_hex_layout(10)), 10});
  cases.push_back({"latticefull4", make_lattice_surgery_full(4), 16});
  return cases;
}

class SabreOverArchs : public ::testing::TestWithParam<int> {};

TEST_P(SabreOverArchs, ProducesValidQftMapping) {
  const SabreCase c = sabre_cases()[GetParam()];
  SabreOptions opts;
  opts.trials = 2;
  const MappedCircuit mc = sabre_route(qft_logical(c.n), c.graph, opts);
  const auto r = check_qft_mapping(mc, c.graph);
  ASSERT_TRUE(r.ok) << c.name << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(c.n));
}

TEST_P(SabreOverArchs, UnitaryEquivalenceSmall) {
  const SabreCase c = sabre_cases()[GetParam()];
  if (c.n > 10) GTEST_SKIP() << "simulation too large";
  SabreOptions opts;
  opts.trials = 1;
  const MappedCircuit mc = sabre_route(qft_logical(c.n), c.graph, opts);
  EXPECT_LT(mapped_equivalence_error(mc), 1e-9) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Archs, SabreOverArchs, ::testing::Range(0, 5));

TEST(Sabre, NoSwapsNeededWhenAllAdjacent) {
  // QFT-2 on a 2-node line: never needs a SWAP.
  const CouplingGraph g = make_line(2);
  const MappedCircuit mc = sabre_route(qft_logical(2), g);
  EXPECT_EQ(count_gates(mc.circuit).swap, 0);
}

TEST(Sabre, SeedChangesOutcome) {
  // Fig. 27: SABRE output varies with the random seed.
  const CouplingGraph g = make_grid(2, 2);
  const Circuit qft = qft_logical(4);
  std::set<std::string> outputs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    outputs.insert(sabre_route_single(qft, g, seed).circuit.to_string());
  }
  EXPECT_GT(outputs.size(), 1u);
}

TEST(Sabre, MultiTrialNotWorseThanSingle) {
  const CouplingGraph g = make_grid(3, 3);
  const Circuit qft = qft_logical(9);
  SabreOptions one;
  one.trials = 1;
  SabreOptions five;
  five.trials = 5;
  const auto d1 = circuit_depth(sabre_route(qft, g, one).circuit);
  const auto d5 = circuit_depth(sabre_route(qft, g, five).circuit);
  EXPECT_LE(d5, d1);
}

TEST(Sabre, RelaxedDagOptionStillValid) {
  const CouplingGraph g = make_grid(3, 3);
  SabreOptions opts;
  opts.use_relaxed_dag = true;
  opts.trials = 2;
  const MappedCircuit mc = sabre_route(qft_logical(9), g, opts);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LT(mapped_equivalence_error(mc), 1e-9);
}

TEST(Sabre, RejectsDisconnectedGraph) {
  CouplingGraph g("disc", 4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(sabre_route(qft_logical(4), g), std::invalid_argument);
}

TEST(Sabre, HandlesNonQftCircuits) {
  // SABRE is a general router: a CNOT+RZ circuit routes fine (validated by
  // simulation rather than the QFT checker).
  Circuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 3));
  c.append(Gate::rz(3, 0.3));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::cnot(0, 2));
  const CouplingGraph g = make_line(4);
  const MappedCircuit mc = sabre_route(c, g);
  EXPECT_LT(mapped_equivalence_error(mc, 4, 0x5eed, &c), 1e-9);
}

// ------------------------------------------------------------- LNN path ----

TEST(LnnBaseline, SnakeOnLatticeIsValid) {
  for (int m : {3, 4, 5}) {
    const CouplingGraph g = make_lattice_surgery_full(m);
    const auto path = lattice_snake_path(m);
    const MappedCircuit mc = map_qft_on_path(g, path);
    const auto r = check_qft_mapping(mc, g, lattice_latency(g));
    ASSERT_TRUE(r.ok) << "m=" << m << ": " << r.error;
    EXPECT_EQ(r.counts.cphase, qft_pair_count(m * m));
  }
}

TEST(LnnBaseline, SnakePathUsesOnlySlowLinks) {
  const int m = 4;
  const CouplingGraph g = make_lattice_surgery_full(m);
  const auto path = lattice_snake_path(m);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(g.link_type(path[i], path[i + 1]), LinkType::kCnotOnly);
  }
}

TEST(LnnBaseline, WeightedDepthWorseThanUnitAware) {
  // §2.3 discussion: on lattice surgery the Hamiltonian-path LNN pays slow
  // SWAPs everywhere; the unit-aware mapper must beat it in weighted depth.
  const int m = 6;
  const CouplingGraph full = make_lattice_surgery_full(m);
  const auto lnn =
      check_qft_mapping(map_qft_on_path(full, lattice_snake_path(m)), full,
                        lattice_latency(full));
  ASSERT_TRUE(lnn.ok) << lnn.error;

  const CouplingGraph rot = make_lattice_surgery_rotated(m);
  // (compare against our mapper in bench; here assert the LNN weighted depth
  // exceeds its own unit-latency depth by the slow-swap factor's signature)
  const auto lnn_unit = check_qft_mapping(
      map_qft_on_path(full, lattice_snake_path(m)), full, unit_latency);
  EXPECT_GT(lnn.depth, 3 * lnn_unit.depth);
}

TEST(LnnBaseline, RejectsBrokenPath) {
  const CouplingGraph g = make_line(4);
  EXPECT_THROW(map_qft_on_path(g, {0, 2, 1, 3}), std::invalid_argument);
}

// --------------------------------------------------------------- SATMAP ----

TEST(Satmap, SolvesQft2OnLine) {
  const CouplingGraph g = make_line(2);
  SatmapOptions opts;
  opts.time_budget_seconds = 20.0;
  const SatmapResult r = satmap_route(qft_logical(2), g, opts);
  ASSERT_TRUE(r.solved);
  const auto chk = check_qft_mapping(r.mapped, g);
  ASSERT_TRUE(chk.ok) << chk.error;
  EXPECT_EQ(r.swaps, 0);
  EXPECT_EQ(chk.depth, 3);  // H, CP, H is depth-optimal
}

TEST(Satmap, SolvesQft3OnLineOptimally) {
  const CouplingGraph g = make_line(3);
  SatmapOptions opts;
  opts.time_budget_seconds = 30.0;
  const SatmapResult r = satmap_route(qft_logical(3), g, opts);
  ASSERT_TRUE(r.solved);
  const auto chk = check_qft_mapping(r.mapped, g);
  ASSERT_TRUE(chk.ok) << chk.error;
  EXPECT_LT(mapped_equivalence_error(r.mapped), 1e-9);
}

TEST(Satmap, SolvesQft4OnGrid) {
  // The Table 1 "2*2 Sycamore" scale. SATMAP found depth 10 / 3 SWAPs there.
  const CouplingGraph g = make_grid(2, 2);
  SatmapOptions opts;
  opts.time_budget_seconds = 60.0;
  const SatmapResult r = satmap_route(qft_logical(4), g, opts);
  ASSERT_TRUE(r.solved) << "timed out";
  const auto chk = check_qft_mapping(r.mapped, g);
  ASSERT_TRUE(chk.ok) << chk.error;
  EXPECT_LT(mapped_equivalence_error(r.mapped), 1e-9);
  EXPECT_LE(r.swaps, 4);
}

TEST(Satmap, TimesOutOnLargerInstances) {
  // The Table 1 behaviour for >= 16 qubits under a tight budget.
  const CouplingGraph g = make_sycamore(4);
  SatmapOptions opts;
  opts.time_budget_seconds = 0.5;
  const SatmapResult r = satmap_route(qft_logical(16), g, opts);
  EXPECT_FALSE(r.solved);
  EXPECT_TRUE(r.timed_out);
}

TEST(Satmap, IncrementalMatchesMonolithicOnOutcomes) {
  // The acceptance bar for the incremental rewrite: bit-compatible verdicts,
  // minimal T and minimal SWAP count against the re-encode-per-probe oracle,
  // on every instance CI can afford to solve both ways.
  struct Case {
    std::int32_t n;
    CouplingGraph graph;
  };
  const std::vector<Case> cases = {
      {2, make_line(2)},    {3, make_line(3)},    {4, make_line(4)},
      {4, make_grid(2, 2)}, {5, make_line(5)},
      // Spare physical cells (n < np): movement may slide a qubit into an
      // empty neighbour instead of exchanging with an occupant.
      {3, make_grid(2, 2)}, {5, make_grid(2, 3)},
  };
  for (const Case& c : cases) {
    SatmapOptions inc;
    inc.time_budget_seconds = 120.0;
    SatmapOptions mono = inc;
    mono.incremental = false;
    const SatmapResult a = satmap_route(qft_logical(c.n), c.graph, inc);
    const SatmapResult b = satmap_route(qft_logical(c.n), c.graph, mono);
    ASSERT_TRUE(a.solved) << "incremental TLE at n=" << c.n;
    ASSERT_TRUE(b.solved) << "monolithic TLE at n=" << c.n;
    EXPECT_EQ(a.layers, b.layers) << "minimal T diverged at n=" << c.n;
    EXPECT_EQ(a.swaps, b.swaps) << "minimal SWAPs diverged at n=" << c.n;
    const auto chk_a = check_qft_mapping(a.mapped, c.graph);
    const auto chk_b = check_qft_mapping(b.mapped, c.graph);
    ASSERT_TRUE(chk_a.ok) << chk_a.error;
    ASSERT_TRUE(chk_b.ok) << chk_b.error;
    EXPECT_EQ(chk_a.counts.swap, chk_b.counts.swap);
  }
}

TEST(Satmap, SpareCellSlidesExtractValidCircuits) {
  // Regression: with n < np the model may move a qubit into an *empty*
  // physical cell. extract() used to emit such a slide only when it went
  // toward a higher physical id (the paired-transposition dedup), silently
  // teleporting down-moves and corrupting the mapped circuit.
  for (const bool incremental : {true, false}) {
    for (const bool minimize : {true, false}) {
      const CouplingGraph g = make_grid(2, 2);
      SatmapOptions opts;
      opts.time_budget_seconds = 120.0;
      opts.incremental = incremental;
      opts.minimize_swaps = minimize;
      const SatmapResult r = satmap_route(qft_logical(3), g, opts);
      ASSERT_TRUE(r.solved) << "inc=" << incremental << " min=" << minimize;
      const auto chk = check_qft_mapping(r.mapped, g);
      ASSERT_TRUE(chk.ok) << "inc=" << incremental << " min=" << minimize
                          << ": " << chk.error;
      EXPECT_LT(mapped_equivalence_error(r.mapped), 1e-9)
          << "inc=" << incremental << " min=" << minimize;
    }
  }
}

TEST(Satmap, DpllBackendSolvesTheSmallestInstances) {
  // The reference backend is exponentially weaker, but must agree with CDCL
  // where it reaches: the differential value of a second registered engine.
  const CouplingGraph g = make_line(3);
  SatmapOptions opts;
  opts.time_budget_seconds = 60.0;
  opts.solver = "dpll";
  const SatmapResult r = satmap_route(qft_logical(3), g, opts);
  ASSERT_TRUE(r.solved) << "dpll timed out on QFT-3";
  const auto chk = check_qft_mapping(r.mapped, g);
  ASSERT_TRUE(chk.ok) << chk.error;

  SatmapOptions cdcl_opts;
  cdcl_opts.time_budget_seconds = 60.0;
  const SatmapResult c = satmap_route(qft_logical(3), g, cdcl_opts);
  ASSERT_TRUE(c.solved);
  EXPECT_EQ(r.layers, c.layers);
  EXPECT_EQ(r.swaps, c.swaps);
}

TEST(Satmap, UnknownSolverBackendThrows) {
  SatmapOptions opts;
  opts.solver = "no-such-backend";
  EXPECT_THROW(satmap_route(qft_logical(2), make_line(2), opts),
               std::invalid_argument);
}

TEST(Satmap, SurfacesSolverStats) {
  const CouplingGraph g = make_line(3);
  SatmapOptions opts;
  opts.time_budget_seconds = 60.0;
  sat::SolverStats sink;
  opts.stats_out = &sink;
  const SatmapResult r = satmap_route(qft_logical(3), g, opts);
  ASSERT_TRUE(r.solved);
  EXPECT_GE(r.stats.solve_calls, 2) << "deepening plus swap minimization";
  EXPECT_GT(r.stats.decisions, 0);
  EXPECT_GT(r.stats.clauses, 0);
  EXPECT_EQ(sink.solve_calls, r.stats.solve_calls);
  EXPECT_EQ(sink.conflicts, r.stats.conflicts);
}

TEST(Satmap, DumpCnfExportsTheInFlightInstance) {
  for (const bool incremental : {true, false}) {
    const std::string path = ::testing::TempDir() + "satmap_tle_" +
                             (incremental ? "inc" : "mono") + ".cnf";
    SatmapOptions opts;
    opts.time_budget_seconds = 0.5;  // certain TLE on QFT-16 / sycamore
    opts.incremental = incremental;
    opts.minimize_swaps = false;
    opts.dump_cnf_path = path;
    const SatmapResult r =
        satmap_route(qft_logical(16), make_sycamore(4), opts);
    EXPECT_TRUE(r.timed_out);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no dump at " << path;
    std::string line;
    bool has_problem_line = false;
    while (std::getline(in, line)) {
      if (line.rfind("p cnf ", 0) == 0) {
        has_problem_line = true;
        break;
      }
    }
    EXPECT_TRUE(has_problem_line) << path << " is not DIMACS";
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace qfto
