#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "circuit/transforms.hpp"
#include "common/prng.hpp"
#include "mapper/lnn_mapper.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"

namespace qfto {
namespace {

TEST(DecomposeToCnot, SwapExpandsToThreeCnots) {
  Circuit c(2);
  c.append(Gate::swap(0, 1));
  const Circuit d = decompose_to_cnot(c);
  const GateCounts gc = count_gates(d);
  EXPECT_EQ(gc.cnot, 3);
  EXPECT_EQ(gc.swap, 0);
  EXPECT_LT(unitary_distance(circuit_unitary(c), circuit_unitary(d)), 1e-12);
}

TEST(DecomposeToCnot, CphaseExactForManyAngles) {
  for (double angle : {0.1, 0.5, M_PI / 2, M_PI / 1024, -0.7, M_PI}) {
    Circuit c(2);
    c.append(Gate::cphase(0, 1, angle));
    const Circuit d = decompose_to_cnot(c);
    EXPECT_LT(unitary_distance(circuit_unitary(c), circuit_unitary(d)), 1e-12)
        << "angle=" << angle;
    EXPECT_EQ(count_gates(d).cnot, 2);
    EXPECT_EQ(count_gates(d).rz, 3);
  }
}

TEST(DecomposeToCnot, WholeMappedQftStaysExact) {
  const MappedCircuit mc = map_qft_lnn(5);
  const Circuit d = decompose_to_cnot(mc.circuit);
  EXPECT_LT(unitary_distance(circuit_unitary(mc.circuit), circuit_unitary(d)),
            1e-10);
  const GateCounts before = count_gates(mc.circuit);
  const GateCounts after = count_gates(d);
  EXPECT_EQ(after.cnot, 3 * before.swap + 2 * before.cphase);
  EXPECT_EQ(after.swap, 0);
  EXPECT_EQ(after.cphase, 0);
}

TEST(PruneSmallRotations, ExactWhenCutoffCoversAll) {
  const Circuit full = qft_logical(6);
  const Circuit same = prune_small_rotations(full, 5);
  EXPECT_EQ(same.size(), full.size());
}

TEST(PruneSmallRotations, DropCountMatchesFormula) {
  for (int n : {4, 8, 12}) {
    for (int k : {1, 2, 3}) {
      const Circuit pruned = prune_small_rotations(qft_logical(n), k);
      EXPECT_EQ(count_gates(pruned).cphase, aqft_pair_count(n, k))
          << "n=" << n << " k=" << k;
      EXPECT_EQ(count_gates(pruned).h, n);
    }
  }
}

TEST(PruneSmallRotations, FidelityDegradesGracefully) {
  // Coppersmith: AQFT with cutoff k approximates the QFT with error
  // shrinking as k grows. Measure state overlap on a random input.
  const int n = 8;
  Xoshiro256ss rng(5);
  std::vector<Amplitude> psi(1u << n);
  double n2 = 0;
  for (auto& a : psi) {
    a = {rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
    n2 += std::norm(a);
  }
  for (auto& a : psi) a /= std::sqrt(n2);

  StateVector exact(n);
  exact.amplitudes() = psi;
  exact.apply(qft_logical(n));

  double prev = 0.0;
  for (int k : {2, 3, 4, 5, 7}) {
    StateVector approx(n);
    approx.amplitudes() = psi;
    approx.apply(prune_small_rotations(qft_logical(n), k));
    const double overlap = StateVector::overlap(exact, approx);
    EXPECT_GE(overlap, prev - 1e-9) << "k=" << k;  // monotone-ish improvement
    prev = overlap;
    if (k >= 4) EXPECT_GT(overlap, 0.98) << "k=" << k;
  }
  EXPECT_GT(prev, 1.0 - 1e-9);  // k = n-1 is exact
}

TEST(PruneSmallRotations, MappedKernelStaysHardwareValidAfterPruning) {
  // Pruning only deletes CPHASEs, so coupling and windows remain intact;
  // the pruned mapped kernel equals the pruned logical kernel.
  const int n = 6, k = 3;
  const MappedCircuit mc = map_qft_lnn(n);
  MappedCircuit pruned = mc;
  pruned.circuit = prune_small_rotations(mc.circuit, k);

  StateVector a(n), b(n);
  Xoshiro256ss rng(9);
  for (std::uint64_t i = 0; i < a.dim(); ++i) {
    const Amplitude amp{rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
    a.amplitudes()[i] = amp;
    b.amplitudes()[i] = amp;
  }
  // Normalize both identically.
  const double nn = a.norm();
  for (auto& x : a.amplitudes()) x /= nn;
  for (auto& x : b.amplitudes()) x /= nn;

  a.apply(pruned.circuit);
  // Reference: logical pruned QFT then the mapped kernel's final relabeling.
  b.apply(prune_small_rotations(qft_logical(n), k));
  std::vector<std::int32_t> perm(n);
  for (int l = 0; l < n; ++l) perm[l] = pruned.final_mapping[l];
  b.permute_qubits(perm);
  for (std::uint64_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), 0.0, 1e-9);
  }
}

TEST(AqftPairCount, Formula) {
  EXPECT_EQ(aqft_pair_count(5, 4), qft_pair_count(5));
  EXPECT_EQ(aqft_pair_count(5, 100), qft_pair_count(5));
  EXPECT_EQ(aqft_pair_count(4, 1), 3);
  EXPECT_EQ(aqft_pair_count(4, 2), 5);
}

}  // namespace
}  // namespace qfto
