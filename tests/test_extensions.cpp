// Tests for the extension modules: the heavy-hex device reduction
// (Appendix 1), the fidelity model, and the threaded simulator path.
#include <gtest/gtest.h>

#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/latency_model.hpp"
#include "baseline/sabre.hpp"
#include "circuit/qft_spec.hpp"
#include "common/prng.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lattice_mapper.hpp"
#include "sim/statevector.hpp"
#include "verify/equivalence.hpp"
#include "verify/fidelity.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

// ------------------------------------ heavy-hex device & reduction ---------

TEST(HeavyHexDevice, StructureCounts) {
  const HeavyHexDevice dev = make_heavy_hex_device(3, 9);
  // 3 rows * 9 + 2 gaps * 3 bridges.
  EXPECT_EQ(dev.graph.num_qubits(), 27 + 6);
  EXPECT_TRUE(dev.graph.connected());
  EXPECT_EQ(dev.bridges.size(), 2u);
  EXPECT_EQ(dev.bridges[0].size(), 3u);
  // Bridge 0 of gap 0 connects (0,0) and (1,0).
  EXPECT_TRUE(dev.graph.adjacent(dev.row_node(0, 0), dev.bridges[0][0]));
  EXPECT_TRUE(dev.graph.adjacent(dev.bridges[0][0], dev.row_node(1, 0)));
}

TEST(HeavyHexDevice, RejectsBadShape) {
  EXPECT_THROW(make_heavy_hex_device(2, 8), std::invalid_argument);
  EXPECT_THROW(make_heavy_hex_device(0, 9), std::invalid_argument);
}

TEST(HeavyHexReductionTest, SnakeIsContiguousAndCoversEverything) {
  const HeavyHexDevice dev = make_heavy_hex_device(3, 9);
  const HeavyHexReduction red = simplify_heavy_hex(dev);
  // Main line contiguity on the device graph.
  for (std::size_t i = 0; i + 1 < red.main_line.size(); ++i) {
    EXPECT_TRUE(dev.graph.adjacent(red.main_line[i], red.main_line[i + 1]))
        << i;
  }
  // Every node is on the main line or dangling, exactly once.
  std::vector<int> seen(dev.graph.num_qubits(), 0);
  for (auto p : red.main_line) ++seen[p];
  for (const auto& [pos, node] : red.dangling) {
    ++seen[node];
    // Dangling node is coupled to its junction.
    EXPECT_TRUE(dev.graph.adjacent(red.main_line[pos], node));
  }
  for (auto s : seen) EXPECT_EQ(s, 1);
}

class DeviceSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DeviceSweep, FullDeviceQftMapsAndVerifies) {
  const auto [rows, cols] = GetParam();
  const HeavyHexDevice dev = make_heavy_hex_device(rows, cols);
  const MappedCircuit mc = map_qft_heavy_hex_device(dev);
  const auto r = check_qft_mapping(mc, dev.graph);
  ASSERT_TRUE(r.ok) << "rows=" << rows << " cols=" << cols << ": " << r.error;
  EXPECT_EQ(r.counts.cphase, qft_pair_count(dev.graph.num_qubits()));
  EXPECT_LE(r.depth, 6 * dev.graph.num_qubits() + 40);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DeviceSweep,
                         ::testing::Values(std::pair{1, 5}, std::pair{2, 5},
                                           std::pair{2, 9}, std::pair{3, 9},
                                           std::pair{4, 13}, std::pair{5, 13}));

TEST(HeavyHexDevice, SmallDeviceUnitaryEquivalence) {
  const HeavyHexDevice dev = make_heavy_hex_device(2, 5);  // 10 + 2 = 12
  const MappedCircuit mc = map_qft_heavy_hex_device(dev);
  EXPECT_LT(mapped_equivalence_error(mc, 2), 1e-9);
}

// ------------------------------------------------------ fidelity model -----

TEST(Fidelity, MoreGatesMeanLowerFidelity) {
  Circuit small(2), big(2);
  small.append(Gate::h(0));
  for (int i = 0; i < 50; ++i) big.append(Gate::swap(0, 1));
  EXPECT_GT(log10_fidelity(small), log10_fidelity(big));
}

TEST(Fidelity, DepthTermMatters) {
  // Same gates, but serialized on one wire vs spread over many.
  Circuit serial(2), parallel(8);
  for (int i = 0; i < 8; ++i) serial.append(Gate::h(i % 2));
  for (int i = 0; i < 8; ++i) parallel.append(Gate::h(i));
  NoiseModel nm;
  nm.coherence_cycles = 10;  // make the depth term dominant
  EXPECT_GT(log10_fidelity(parallel, nm), log10_fidelity(serial, nm));
}

TEST(Fidelity, OursBeatsSabreInDepthDominatedRegime) {
  // The paper's noise argument quantified. In the decoherence-limited (FT)
  // regime — small gate errors, finite idle-coherence horizon — our linear
  // depth wins even though this closed-loop realization spends more SWAPs
  // than SABRE (EXPERIMENTS.md quantifies the SWAP-count deviation).
  const int m = 10;
  const CouplingGraph rot = make_lattice_surgery_rotated(m);
  const CouplingGraph full = make_lattice_surgery_full(m);
  const MappedCircuit ours = map_qft_lattice(m);
  SabreOptions opts;
  opts.trials = 1;
  const MappedCircuit sabre = sabre_route(qft_logical(m * m), full, opts);

  NoiseModel ft;
  ft.error_1q = 1e-7;
  ft.error_2q = 1e-6;
  ft.coherence_cycles = 500;
  EXPECT_GT(log10_fidelity(ours.circuit, ft, lattice_latency(rot)),
            log10_fidelity(sabre.circuit, ft));

  // Conversely, a gate-error-dominated NISQ model rewards SABRE's smaller
  // SWAP budget on this backend — the trade-off is real and documented.
  NoiseModel nisq;  // defaults: e2 = 5e-3 dominates
  EXPECT_LT(log10_fidelity(ours.circuit, nisq, lattice_latency(rot)),
            log10_fidelity(sabre.circuit, nisq));
}

// --------------------------------------------------- threaded simulator ----

TEST(ThreadedSim, MatchesSerialOnLargeRegister) {
  const std::int32_t n = 19;  // 2^19 amplitudes: above the parallel threshold
  Circuit c(n);
  Xoshiro256ss rng(3);
  for (int i = 0; i < 60; ++i) {
    const auto q0 = static_cast<std::int32_t>(rng.uniform(n));
    switch (rng.uniform(3)) {
      case 0: c.append(Gate::h(q0)); break;
      case 1: c.append(Gate::rz(q0, rng.uniform_double())); break;
      default: {
        auto q1 = static_cast<std::int32_t>(rng.uniform(n));
        if (q1 == q0) q1 = (q0 + 1) % n;
        c.append(Gate::cphase(q0, q1, rng.uniform_double()));
      }
    }
  }
  StateVector serial(n);
  serial.apply(c);

  StateVector::set_num_threads(4);
  StateVector threaded(n);
  threaded.apply(c);
  StateVector::set_num_threads(1);

  EXPECT_GT(StateVector::overlap(serial, threaded), 1.0 - 1e-12);
  // Exact amplitude agreement, not just overlap:
  for (std::uint64_t i = 0; i < serial.dim(); i += 4097) {
    EXPECT_NEAR(std::abs(serial.amplitudes()[i] - threaded.amplitudes()[i]),
                0.0, 1e-12);
  }
}

TEST(ThreadedSim, ThreadCountValidation) {
  EXPECT_THROW(StateVector::set_num_threads(0), std::invalid_argument);
  StateVector::set_num_threads(2);
  EXPECT_EQ(StateVector::num_threads(), 2);
  StateVector::set_num_threads(1);
}

}  // namespace
}  // namespace qfto
