// Conformance suite for every registered sat::SolverInterface backend: one
// parameterized battery asserting the contract SATMAP's incremental search
// driver leans on — model soundness, cores-free assumption semantics
// (kUnsat under assumptions never poisons the instance), incremental clause
// addition, cancel/timeout behaviour, determinism across identical runs,
// and the DIMACS debug dump. Runs against "cdcl", "dpll" and anything a
// downstream registers. The mid-solve cancellation test exercises the
// cross-thread cancel token, which is what the CI TSan leg locks in.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "sat/cardinality.hpp"
#include "sat/federation/ipasir_bridge.hpp"
#include "sat/solver_interface.hpp"

namespace qfto::sat {
namespace {

// Loads the in-tree IPASIR stub .so before INSTANTIATE_TEST_SUITE_P below
// evaluates solver_backend_names(), so the dlopen'd backend runs the exact
// same conformance battery as the built-ins. Static-initialization order is
// top-to-bottom within this TU, which is the only ordering this relies on.
#ifdef QFTO_IPASIR_STUB_PATH
std::string& stub_load_error() {
  static std::string error;
  return error;
}
const std::string& stub_backend_name() {
  static const std::string name = [] {
    try {
      return load_solver_plugin(QFTO_IPASIR_STUB_PATH);
    } catch (const std::exception& e) {
      stub_load_error() = e.what();
      return std::string();
    }
  }();
  return name;
}
const std::string& kStubLoaded = stub_backend_name();
#endif

class SatBackend : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<SolverInterface> fresh() const {
    return make_solver(GetParam());
  }
};

/// n-pigeons-into-(n-1)-holes: small, UNSAT, requires real search.
void encode_pigeonhole(SolverInterface& s, int pigeons) {
  const int holes = pigeons - 1;
  std::vector<std::vector<std::int32_t>> x(pigeons,
                                           std::vector<std::int32_t>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> row;
    for (int h = 0; h < holes; ++h) row.push_back(Lit::pos(x[p][h]));
    add_at_least_one(s, row);
  }
  for (int h = 0; h < holes; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < pigeons; ++p) col.push_back(Lit::pos(x[p][h]));
    add_at_most_one(s, col);
  }
}

/// Planted-solution random 3-SAT; returns the clauses for model checking.
std::vector<std::vector<Lit>> encode_planted(SolverInterface& s, int nv,
                                             int nc, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<std::int32_t> vars(nv);
  std::vector<bool> planted(nv);
  for (int i = 0; i < nv; ++i) {
    vars[i] = s.new_var();
    planted[i] = rng.uniform(2) == 1;
  }
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < nc; ++c) {
    std::vector<Lit> cl;
    bool satisfied = false;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng.uniform(nv));
      const bool neg = rng.uniform(2) == 1;
      cl.push_back(neg ? Lit::neg(vars[v]) : Lit::pos(vars[v]));
      satisfied |= (planted[v] != neg);
    }
    if (!satisfied) {
      cl[0] = cl[0].sign() ? Lit::pos(cl[0].var()) : Lit::neg(cl[0].var());
    }
    clauses.push_back(cl);
    s.add_clause(cl);
  }
  return clauses;
}

bool model_satisfies(const SolverInterface& s,
                     const std::vector<std::vector<Lit>>& clauses) {
  for (const auto& cl : clauses) {
    bool ok = false;
    for (Lit l : cl) ok |= (s.value(l.var()) != l.sign());
    if (!ok) return false;
  }
  return true;
}

TEST_P(SatBackend, ReportsItsRegistryName) {
  EXPECT_EQ(fresh()->name(), GetParam());
}

TEST_P(SatBackend, ModelsAreSoundOnPlantedRandomThreeSat) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto s = fresh();
    const auto clauses = encode_planted(*s, 20, 85, seed);
    ASSERT_EQ(s->solve({}), Result::kSat) << "seed " << seed;
    EXPECT_TRUE(model_satisfies(*s, clauses)) << "seed " << seed;
  }
}

TEST_P(SatBackend, PigeonholeIsUnsat) {
  auto s = fresh();
  encode_pigeonhole(*s, 5);
  EXPECT_EQ(s->solve({}), Result::kUnsat);
}

TEST_P(SatBackend, AssumptionsConstrainOnlyTheCall) {
  auto s = fresh();
  const auto a = s->new_var();
  const auto b = s->new_var();
  s->add_binary(Lit::pos(a), Lit::pos(b));

  ASSERT_EQ(s->solve({Lit::neg(a)}), Result::kSat);
  EXPECT_FALSE(s->value(a));
  EXPECT_TRUE(s->value(b));

  // Contradicting assumptions: UNSAT *under them*, not forever.
  EXPECT_EQ(s->solve({Lit::neg(a), Lit::neg(b)}), Result::kUnsat);
  ASSERT_EQ(s->solve({}), Result::kSat) << "instance must stay usable";
  ASSERT_EQ(s->solve({Lit::pos(a)}), Result::kSat);
  EXPECT_TRUE(s->value(a));
}

TEST_P(SatBackend, AssumptionRefutationLeavesLaterProbesIntact) {
  // The shape of SATMAP's deepening loop: activation literal per horizon;
  // refuting one horizon must not damage the next.
  auto s = fresh();
  const auto x = s->new_var();
  const auto act1 = s->new_var();
  const auto act2 = s->new_var();
  // act1 forces x and ~x (contradiction); act2 only forces x.
  s->add_implication(Lit::pos(act1), Lit::pos(x));
  s->add_implication(Lit::pos(act1), Lit::neg(x));
  s->add_implication(Lit::pos(act2), Lit::pos(x));

  EXPECT_EQ(s->solve({Lit::pos(act1)}), Result::kUnsat);
  s->add_unit(Lit::neg(act1));  // retire the refuted horizon
  ASSERT_EQ(s->solve({Lit::pos(act2)}), Result::kSat);
  EXPECT_TRUE(s->value(x));
}

TEST_P(SatBackend, ClausesAddedBetweenCallsTightenTheInstance) {
  auto s = fresh();
  const auto a = s->new_var();
  const auto b = s->new_var();
  s->add_binary(Lit::pos(a), Lit::pos(b));
  ASSERT_EQ(s->solve({}), Result::kSat);

  s->add_unit(Lit::neg(a));
  ASSERT_EQ(s->solve({}), Result::kSat);
  EXPECT_FALSE(s->value(a));
  EXPECT_TRUE(s->value(b));

  s->add_unit(Lit::neg(b));
  EXPECT_EQ(s->solve({}), Result::kUnsat);
  EXPECT_EQ(s->solve({}), Result::kUnsat) << "root UNSAT is terminal";
}

TEST_P(SatBackend, PreSetCancelTokenReturnsTimeout) {
  auto s = fresh();
  encode_pigeonhole(*s, 7);
  std::atomic<bool> cancel{true};
  EXPECT_EQ(s->solve({}, 0.0, &cancel), Result::kTimeout);
}

TEST_P(SatBackend, TinyBudgetTimesOutOnAHardInstance) {
  // On a very fast machine kUnsat is acceptable; kSat never is.
  auto s = fresh();
  encode_pigeonhole(*s, 9);
  EXPECT_NE(s->solve({}, 1e-6), Result::kSat);
}

TEST_P(SatBackend, MidSolveCancellationFromAnotherThread) {
  // A pigeonhole instance far beyond the reference backends' reach keeps the
  // solver busy until the token flips — the exact cross-thread shape the
  // MappingService uses to abort in-flight SATMAP jobs (TSan-checked in CI).
  auto s = fresh();
  encode_pigeonhole(*s, 11);
  std::atomic<bool> cancel{false};
  std::thread canceller([&cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.store(true, std::memory_order_relaxed);
  });
  const Result r = s->solve({}, 60.0, &cancel);
  canceller.join();
  EXPECT_NE(r, Result::kSat);
}

TEST_P(SatBackend, IdenticalRunsAreBitIdentical) {
  // Two fresh instances fed the same clause/solve sequence must agree on
  // verdicts, models and effort counters — the reproducibility SATMAP's
  // deterministic CI comparisons rely on.
  const auto run = [this](std::vector<bool>& model, SolverStats& stats) {
    auto s = fresh();
    const auto clauses = encode_planted(*s, 18, 76, 42);
    (void)clauses;
    EXPECT_EQ(s->solve({}), Result::kSat);
    s->add_unit(Lit::neg(0));
    EXPECT_EQ(s->solve({Lit::pos(1)}) == Result::kSat,
              s->solve({Lit::pos(1)}) == Result::kSat);
    model.clear();
    for (std::int32_t v = 0; v < s->num_vars(); ++v) {
      model.push_back(s->value(v));
    }
    stats = s->stats();
  };
  std::vector<bool> model_a, model_b;
  SolverStats stats_a, stats_b;
  run(model_a, stats_a);
  run(model_b, stats_b);
  EXPECT_EQ(model_a, model_b);
  EXPECT_EQ(stats_a.conflicts, stats_b.conflicts);
  EXPECT_EQ(stats_a.decisions, stats_b.decisions);
  EXPECT_EQ(stats_a.propagations, stats_b.propagations);
  EXPECT_EQ(stats_a.solve_calls, stats_b.solve_calls);
}

TEST_P(SatBackend, StatsAccumulateAcrossCalls) {
  auto s = fresh();
  encode_planted(*s, 16, 68, 7);
  ASSERT_EQ(s->solve({}), Result::kSat);
  const SolverStats first = s->stats();
  EXPECT_EQ(first.solve_calls, 1);
  EXPECT_GT(first.vars, 0);
  EXPECT_GT(first.clauses, 0);
  ASSERT_EQ(s->solve({}), Result::kSat);
  const SolverStats second = s->stats();
  EXPECT_EQ(second.solve_calls, 2);
  EXPECT_GE(second.conflicts, first.conflicts);
  EXPECT_GE(second.decisions, first.decisions);
}

// Tiny DIMACS reader for the round-trip test below (p-line, unit-terminated
// clauses, 'c' comments).
void feed_dimacs(const std::string& text, SolverInterface& s) {
  std::istringstream in(text);
  std::string tok;
  std::int32_t declared_vars = 0;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
    } else if (tok == "p") {
      std::string cnf;
      in >> cnf >> declared_vars;
      std::int32_t clause_count = 0;
      in >> clause_count;
      while (s.num_vars() < declared_vars) s.new_var();
    } else {
      std::vector<Lit> clause;
      std::int32_t l = std::stoi(tok);
      while (l != 0) {
        clause.push_back(l > 0 ? Lit::pos(l - 1) : Lit::neg(-l - 1));
        if (!(in >> l)) break;
      }
      s.add_clause(std::move(clause));
    }
  }
}

TEST_P(SatBackend, DimacsDumpReplaysToTheSameVerdict) {
  auto s = fresh();
  const auto clauses = encode_planted(*s, 14, 56, 3);
  (void)clauses;
  const auto gate = s->new_var();
  s->add_implication(Lit::pos(gate), Lit::pos(0));
  s->add_implication(Lit::pos(gate), Lit::neg(0));

  // Assumption-free dump: same verdict on replay.
  std::ostringstream plain;
  s->dump_dimacs(plain, {});
  auto replay = fresh();
  feed_dimacs(plain.str(), *replay);
  EXPECT_EQ(replay->solve({}), s->solve({}));

  // The refuting assumption exported as a unit flips the replay to UNSAT —
  // the "replay a TLE'd probe in an external solver" flow.
  std::ostringstream gated;
  s->dump_dimacs(gated, {Lit::pos(gate)});
  auto refuted = fresh();
  feed_dimacs(gated.str(), *refuted);
  EXPECT_EQ(s->solve({Lit::pos(gate)}), Result::kUnsat);
  EXPECT_EQ(refuted->solve({}), Result::kUnsat);
}

TEST_P(SatBackend, DumpAfterRootUnsatStaysUnsat) {
  auto s = fresh();
  const auto a = s->new_var();
  s->add_unit(Lit::pos(a));
  s->add_unit(Lit::neg(a));
  std::ostringstream out;
  s->dump_dimacs(out, {});
  auto replay = fresh();
  feed_dimacs(out.str(), *replay);
  EXPECT_EQ(replay->solve({}), Result::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredBackends, SatBackend,
    ::testing::ValuesIn(solver_backend_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ------------------------------------------------ cross-backend agreement --

TEST(SatBackendRegistry, KnowsTheInTreeBackends) {
  const auto names = solver_backend_names();
  EXPECT_TRUE(has_solver_backend("cdcl"));
  EXPECT_TRUE(has_solver_backend("dpll"));
  EXPECT_GE(names.size(), 2u);
  EXPECT_THROW(make_solver("no-such-backend"), std::invalid_argument);
}

#ifdef QFTO_IPASIR_STUB_PATH
TEST(IpasirPlugin, StubLoadsAndRegisters) {
  ASSERT_EQ(stub_load_error(), "") << "dlopen/resolve failed";
  ASSERT_FALSE(stub_backend_name().empty());
  EXPECT_TRUE(has_solver_backend(stub_backend_name()));
  // Name derives from the library stem with the "lib" prefix stripped.
  EXPECT_EQ(stub_backend_name(), "qfto_ipasir_stub");
}

TEST(IpasirPlugin, ProvenanceReportsPathAndSignature) {
  bool found = false;
  for (const auto& row : backend_provenance()) {
    if (row.name != stub_backend_name()) {
      EXPECT_FALSE(row.plugin) << row.name << " is built in";
      continue;
    }
    found = true;
    EXPECT_TRUE(row.plugin);
    EXPECT_EQ(row.path, QFTO_IPASIR_STUB_PATH);
    EXPECT_EQ(row.signature, "qfto-cdcl-ipasir-stub-1.0");
  }
  EXPECT_TRUE(found);
}

TEST(IpasirPlugin, ReloadingTheSamePluginIsIdempotent) {
  // A second load of an already-registered path must not crash or duplicate
  // the backend; a fresh name for the same .so is a distinct registration.
  EXPECT_EQ(load_solver_plugin(QFTO_IPASIR_STUB_PATH), stub_backend_name());
  const auto names = solver_backend_names();
  EXPECT_EQ(1, std::count(names.begin(), names.end(), stub_backend_name()));
}

TEST(IpasirPlugin, MissingLibraryFailsLoudly) {
  EXPECT_THROW(load_solver_plugin("/no/such/libsolver.so"),
               std::runtime_error);
}
#endif  // QFTO_IPASIR_STUB_PATH

TEST(SatBackendRegistry, BackendsAgreeOnRandomInstances) {
  // Differential check near the 3-SAT phase transition (clause/var ≈ 4.26),
  // where both verdicts occur: every backend must agree on every instance.
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    Xoshiro256ss rng(seed);
    const int nv = 12, nc = 51;
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < nc; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        const auto v = static_cast<std::int32_t>(rng.uniform(nv));
        cl.push_back(rng.uniform(2) ? Lit::pos(v) : Lit::neg(v));
      }
      clauses.push_back(cl);
    }
    Result reference = Result::kTimeout;
    for (const auto& name : solver_backend_names()) {
      auto s = make_solver(name);
      for (int v = 0; v < nv; ++v) s->new_var();
      for (const auto& cl : clauses) s->add_clause(cl);
      const Result r = s->solve({});
      ASSERT_NE(r, Result::kTimeout) << name << " seed " << seed;
      if (reference == Result::kTimeout) {
        reference = r;
      } else {
        EXPECT_EQ(r, reference) << name << " disagrees on seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace qfto::sat
