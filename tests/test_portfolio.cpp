// Portfolio racer tests: the PortfolioSolver must be answer-identical to a
// single backend (verdicts, and downstream SATMAP's minimal T / minimal
// SWAP count), actually cancel its losing lanes, forward external cancel
// tokens, and keep its process-wide racing counters honest. The losing-lane
// checks race real threads, which is what the CI TSan leg locks in.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/grid.hpp"
#include "arch/line.hpp"
#include "baseline/satmap.hpp"
#include "circuit/qft_spec.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "sat/federation/portfolio.hpp"
#include "sat/solver_interface.hpp"
#include "verify/qft_checker.hpp"

namespace qfto::sat {
namespace {

// ------------------------------------------------------- test-only backend --

/// Never decides anything: spins until the cooperative cancel token flips
/// (or a failsafe deadline passes), then reports kTimeout. Racing it against
/// a real backend makes "the losing lane was actually cancelled" a
/// deterministic assertion instead of a timing accident.
class HangSolver final : public SolverInterface {
 public:
  std::string name() const override { return "hang"; }
  std::int32_t new_var() override { return num_vars_++; }
  std::int32_t num_vars() const override { return num_vars_; }
  void add_clause(std::vector<Lit> lits) override {
    clauses_.push_back(std::move(lits));
  }
  Result solve(const std::vector<Lit>& /*assumptions*/, double budget_seconds,
               const std::atomic<bool>* cancel) override {
    ++stats_.solve_calls;
    // Failsafe: never wedge the test binary if cancellation is broken —
    // that failure mode shows up as a kTimeout long after the winner, which
    // the assertions below still catch via the cancellation counters.
    const Deadline failsafe(budget_seconds > 0.0 ? budget_seconds : 30.0);
    while (!(cancel != nullptr && cancel->load(std::memory_order_relaxed)) &&
           !failsafe.expired()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return Result::kTimeout;
  }
  bool value(std::int32_t /*var*/) const override { return false; }
  SolverStats stats() const override {
    SolverStats s = stats_;
    s.clauses = static_cast<std::int64_t>(clauses_.size());
    s.vars = num_vars_;
    return s;
  }
  void dump_dimacs(std::ostream& /*out*/,
                   const std::vector<Lit>& /*extra_units*/) const override {}
  using SolverInterface::dump_dimacs;

 private:
  std::int32_t num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  SolverStats stats_;
};

const bool kHangRegistered = [] {
  register_solver_backend("hang", [] {
    return std::unique_ptr<SolverInterface>(std::make_unique<HangSolver>());
  });
  return true;
}();

// ------------------------------------------------------------ SAT helpers --

std::vector<std::vector<Lit>> encode_planted(SolverInterface& s, int nv,
                                             int nc, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<std::int32_t> vars(nv);
  std::vector<bool> planted(nv);
  for (int i = 0; i < nv; ++i) {
    vars[i] = s.new_var();
    planted[i] = rng.uniform(2) == 1;
  }
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < nc; ++c) {
    std::vector<Lit> cl;
    bool satisfied = false;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng.uniform(nv));
      const bool neg = rng.uniform(2) == 1;
      cl.push_back(neg ? Lit::neg(vars[v]) : Lit::pos(vars[v]));
      satisfied |= (planted[v] != neg);
    }
    if (!satisfied) {
      cl[0] = cl[0].sign() ? Lit::pos(cl[0].var()) : Lit::neg(cl[0].var());
    }
    clauses.push_back(cl);
    s.add_clause(cl);
  }
  return clauses;
}

bool model_satisfies(const SolverInterface& s,
                     const std::vector<std::vector<Lit>>& clauses) {
  for (const auto& cl : clauses) {
    bool ok = false;
    for (Lit l : cl) ok |= (s.value(l.var()) != l.sign());
    if (!ok) return false;
  }
  return true;
}

// ------------------------------------------------------- solver-level tests --

TEST(PortfolioSolver, SatModelIsSoundAndWinnerIsLabelled) {
  ASSERT_TRUE(kHangRegistered);
  PortfolioOptions opts;
  opts.lanes = 3;
  opts.clamp_to_cores = false;  // assert real racing even on 1-core runners
  PortfolioSolver s(opts);
  EXPECT_EQ(s.num_lanes(), 3);
  EXPECT_EQ(s.name(), "portfolio[cdcl#0,cdcl#1,cdcl#2]");
  EXPECT_EQ(s.winner(), "") << "no probe decided yet";

  const auto clauses = encode_planted(s, 20, 85, 5);
  ASSERT_EQ(s.solve({}), Result::kSat);
  EXPECT_TRUE(model_satisfies(s, clauses));
  EXPECT_NE(s.winner(), "");
  EXPECT_EQ(s.winner().rfind("cdcl#", 0), 0u) << s.winner();
}

TEST(PortfolioSolver, UnsatVerdictMatchesSingleBackend) {
  PortfolioOptions opts;
  opts.lanes = 2;
  opts.clamp_to_cores = false;
  PortfolioSolver s(opts);
  // x & ~x via two units is root-level UNSAT in every lane.
  const auto x = s.new_var();
  s.add_unit(Lit::pos(x));
  s.add_unit(Lit::neg(x));
  EXPECT_EQ(s.solve({}), Result::kUnsat);
  EXPECT_EQ(s.solve({}), Result::kUnsat) << "root UNSAT is terminal";
}

TEST(PortfolioSolver, AssumptionsConstrainOnlyTheCall) {
  PortfolioOptions opts;
  opts.lanes = 2;
  opts.clamp_to_cores = false;
  PortfolioSolver s(opts);
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_binary(Lit::pos(a), Lit::pos(b));
  ASSERT_EQ(s.solve({Lit::neg(a)}), Result::kSat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_EQ(s.solve({Lit::neg(a), Lit::neg(b)}), Result::kUnsat);
  ASSERT_EQ(s.solve({}), Result::kSat) << "instance must stay usable";
}

TEST(PortfolioSolver, SingleLaneIsBitIdenticalToTheBareBackend) {
  // Lane 0 keeps the backend's deterministic default (no diversification),
  // so a 1-lane portfolio must reproduce the bare backend exactly: verdict,
  // model and search-effort counters.
  PortfolioOptions opts;
  opts.lanes = 1;
  PortfolioSolver racing(opts);
  auto bare = make_solver("cdcl");
  const auto clauses_a = encode_planted(racing, 18, 76, 42);
  const auto clauses_b = encode_planted(*bare, 18, 76, 42);
  ASSERT_EQ(racing.solve({}), Result::kSat);
  ASSERT_EQ(bare->solve({}), Result::kSat);
  for (std::int32_t v = 0; v < bare->num_vars(); ++v) {
    EXPECT_EQ(racing.value(v), bare->value(v)) << "model diverged at " << v;
  }
  EXPECT_EQ(racing.stats().conflicts, bare->stats().conflicts);
  EXPECT_EQ(racing.stats().decisions, bare->stats().decisions);
  EXPECT_EQ(racing.stats().propagations, bare->stats().propagations);
}

TEST(PortfolioSolver, LosingLanesAreActuallyCancelled) {
  ASSERT_TRUE(kHangRegistered);
  reset_portfolio_counters();
  PortfolioOptions opts;
  opts.lanes = 2;
  opts.clamp_to_cores = false;
  opts.backends = {"cdcl", "hang"};
  opts.stagger_us = 0;  // both lanes race immediately
  PortfolioSolver s(opts);
  EXPECT_EQ(s.name(), "portfolio[cdcl#0,hang#1]");

  const auto a = s.new_var();
  s.add_unit(Lit::pos(a));
  // The hang lane never answers: a definitive verdict here proves the cdcl
  // lane won AND the hang lane was interrupted (solve() only returns once
  // every lane has left its inner solve).
  ASSERT_EQ(s.solve({}), Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_EQ(s.winner(), "cdcl#0");
  EXPECT_GE(s.lane_cancellations(), 1);

  const PortfolioCounters c = portfolio_counters();
  EXPECT_EQ(c.races, 1);
  EXPECT_GE(c.lane_cancellations, 1);
  EXPECT_EQ(c.wins_by_backend.count("hang"), 0u);
  ASSERT_EQ(c.wins_by_backend.count("cdcl"), 1u);
  EXPECT_EQ(c.wins_by_backend.at("cdcl"), 1);

  // Three more probes: the winner table must keep ranking cdcl first and
  // every probe must keep cancelling the hang lane.
  for (int probe = 0; probe < 3; ++probe) {
    ASSERT_EQ(s.solve({}), Result::kSat) << "probe " << probe;
  }
  EXPECT_GE(s.lane_cancellations(), 4);
  EXPECT_EQ(portfolio_counters().races, 4);
}

TEST(PortfolioSolver, ExternalCancelTokenWinsOverEveryLane) {
  ASSERT_TRUE(kHangRegistered);
  PortfolioOptions opts;
  opts.lanes = 2;
  opts.clamp_to_cores = false;
  opts.backends = {"hang", "hang"};
  PortfolioSolver s(opts);
  const auto a = s.new_var();
  s.add_unit(Lit::pos(a));

  std::atomic<bool> cancel{false};
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true, std::memory_order_relaxed);
  });
  const Result r = s.solve({}, 30.0, &cancel);
  canceller.join();
  EXPECT_EQ(r, Result::kTimeout);
  EXPECT_EQ(s.winner(), "") << "no lane may claim a cancelled probe";
}

TEST(PortfolioSolver, StatsSumLanesAndCountPortfolioProbes) {
  PortfolioOptions opts;
  opts.lanes = 2;
  opts.clamp_to_cores = false;
  PortfolioSolver s(opts);
  encode_planted(s, 16, 68, 7);
  ASSERT_EQ(s.solve({}), Result::kSat);
  const SolverStats st = s.stats();
  EXPECT_EQ(st.solve_calls, 1) << "portfolio-level probes, not lane calls";
  EXPECT_EQ(st.vars, 16);
  EXPECT_GT(st.clauses, 0);
}

// --------------------------------------------------------- SATMAP coupling --

TEST(PortfolioSatmap, OptimaMatchSingleBackendOnLineAndGrid) {
  // The acceptance bar: racing changes wall-clock, never answers. Same
  // minimal T and minimal SWAP count as the single-backend incremental
  // driver on every instance CI can afford to solve twice.
  struct Case {
    std::int32_t n;
    CouplingGraph graph;
  };
  const std::vector<Case> cases = {
      {3, make_line(3)},
      {4, make_line(4)},
      {4, make_grid(2, 2)},
      {5, make_line(5)},
      {5, make_grid(2, 3)},
  };
  for (const Case& c : cases) {
    SatmapOptions single;
    single.time_budget_seconds = 120.0;
    SatmapOptions racing = single;
    racing.portfolio = true;
    racing.lanes = 2;
    const SatmapResult a = satmap_route(qft_logical(c.n), c.graph, single);
    const SatmapResult b = satmap_route(qft_logical(c.n), c.graph, racing);
    ASSERT_TRUE(a.solved) << "single-backend TLE at n=" << c.n;
    ASSERT_TRUE(b.solved) << "portfolio TLE at n=" << c.n;
    EXPECT_EQ(a.layers, b.layers) << "minimal T diverged at n=" << c.n;
    EXPECT_EQ(a.swaps, b.swaps) << "minimal SWAPs diverged at n=" << c.n;
    EXPECT_EQ(a.winner, "") << "single-backend runs carry no winner";
    EXPECT_NE(b.winner, "") << "portfolio runs must name the deciding lane";
    const auto chk = check_qft_mapping(b.mapped, c.graph);
    ASSERT_TRUE(chk.ok) << "n=" << c.n << ": " << chk.error;
  }
}

TEST(PortfolioSatmap, LinearDescentMatchesCoreGuidedDescent) {
  // The bisecting SWAP descent must land on the same minimum as the
  // decrement-by-one loop it replaced (both are complete searches).
  const CouplingGraph g = make_line(5);
  SatmapOptions bisect;
  bisect.time_budget_seconds = 120.0;
  SatmapOptions linear = bisect;
  linear.core_guided = false;
  const SatmapResult a = satmap_route(qft_logical(5), g, bisect);
  const SatmapResult b = satmap_route(qft_logical(5), g, linear);
  ASSERT_TRUE(a.solved);
  ASSERT_TRUE(b.solved);
  EXPECT_EQ(a.layers, b.layers);
  EXPECT_EQ(a.swaps, b.swaps);
}

}  // namespace
}  // namespace qfto::sat
