// Property-based and failure-injection tests: randomized layouts, randomized
// corruption of known-good circuits (the checker must catch every class of
// fault), and cross-validation between the static checker and the simulator.
#include <gtest/gtest.h>

#include "arch/grid.hpp"
#include "arch/heavy_hex.hpp"
#include "arch/sycamore.hpp"
#include "baseline/lnn_baseline.hpp"
#include "circuit/qft_spec.hpp"
#include "common/prng.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/qft_state.hpp"
#include "mapper/sycamore_mapper.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "verify/equivalence.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace {

// ---------------------------------------------- randomized heavy-hex -------

class RandomHeavyHex : public ::testing::TestWithParam<int> {};

TEST_P(RandomHeavyHex, AnyJunctionPlacementMapsCorrectly) {
  Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const std::int32_t main_len =
        4 + static_cast<std::int32_t>(rng.uniform(28));
    std::vector<std::int32_t> junctions;
    for (std::int32_t p = 0; p < main_len; ++p) {
      if (rng.uniform(100) < 30) junctions.push_back(p);
    }
    const HeavyHexLayout lay = heavy_hex_layout_custom(main_len, junctions);
    const MappedCircuit mc = map_qft_heavy_hex(lay);
    const CouplingGraph g = make_heavy_hex(lay);
    const auto r = check_qft_mapping(mc, g);
    ASSERT_TRUE(r.ok) << "seed=" << GetParam() << " trial=" << trial
                      << " main_len=" << main_len << ": " << r.error;
    EXPECT_LE(r.depth, 6 * lay.num_qubits + 30);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHeavyHex, ::testing::Range(1, 9));

// ------------------------------------------------ failure injection --------

MappedCircuit golden() { return map_qft_sycamore(4); }

TEST(FailureInjection, DeletingAnyCphaseIsCaught) {
  const MappedCircuit base = golden();
  const CouplingGraph g = make_sycamore(4);
  Xoshiro256ss rng(42);
  int tested = 0;
  while (tested < 10) {
    const std::size_t victim = rng.uniform(base.circuit.size());
    if (base.circuit[victim].kind != GateKind::kCPhase) continue;
    MappedCircuit broken = base;
    Circuit c(base.circuit.num_qubits());
    for (std::size_t i = 0; i < base.circuit.size(); ++i) {
      if (i != victim) c.append(base.circuit[i]);
    }
    broken.circuit = std::move(c);
    EXPECT_FALSE(check_qft_mapping(broken, g).ok);
    ++tested;
  }
}

TEST(FailureInjection, DeletingAnySwapIsCaught) {
  // Removing a SWAP desynchronizes the tracked mapping: later gates hit the
  // wrong logical pairs or the final mapping mismatches.
  const MappedCircuit base = golden();
  const CouplingGraph g = make_sycamore(4);
  Xoshiro256ss rng(43);
  int tested = 0;
  while (tested < 10) {
    const std::size_t victim = rng.uniform(base.circuit.size());
    if (base.circuit[victim].kind != GateKind::kSwap) continue;
    MappedCircuit broken = base;
    Circuit c(base.circuit.num_qubits());
    for (std::size_t i = 0; i < base.circuit.size(); ++i) {
      if (i != victim) c.append(base.circuit[i]);
    }
    broken.circuit = std::move(c);
    EXPECT_FALSE(check_qft_mapping(broken, g).ok);
    ++tested;
  }
}

TEST(FailureInjection, PerturbingAnyAngleIsCaught) {
  const MappedCircuit base = golden();
  const CouplingGraph g = make_sycamore(4);
  Xoshiro256ss rng(44);
  int tested = 0;
  while (tested < 10) {
    const std::size_t victim = rng.uniform(base.circuit.size());
    if (base.circuit[victim].kind != GateKind::kCPhase) continue;
    MappedCircuit broken = base;
    Circuit c(base.circuit.num_qubits());
    for (std::size_t i = 0; i < base.circuit.size(); ++i) {
      Gate gate = base.circuit[i];
      if (i == victim) gate.angle *= 1.5;
      c.append(gate);
    }
    broken.circuit = std::move(c);
    EXPECT_FALSE(check_qft_mapping(broken, g).ok);
    ++tested;
  }
}

TEST(FailureInjection, SwappedGateOrderAcrossHWindowIsCaught) {
  // Move the first CPHASE after the H on its larger qubit: window violation.
  MappedCircuit mc;
  mc.circuit = Circuit(2);
  mc.circuit.append(Gate::h(0));
  mc.circuit.append(Gate::h(1));  // closes the window for pair {0,1}
  mc.circuit.append(Gate::cphase(0, 1, qft_angle(0, 1)));
  mc.initial = {0, 1};
  mc.final_mapping = {0, 1};
  CouplingGraph g("pair", 2);
  g.add_edge(0, 1);
  const auto r = check_qft_mapping(mc, g);
  EXPECT_FALSE(r.ok);
  // And the simulator agrees the unitary is wrong:
  EXPECT_GT(mapped_equivalence_error(mc), 1e-3);
}

// -------------------------------------- checker vs simulator agreement -----

TEST(CrossValidation, CheckerAcceptImpliesSimulatorAccept) {
  // Any circuit the checker accepts must be unitarily equivalent; sweep the
  // small sizes of every mapper family on one seed.
  struct Item {
    MappedCircuit mc;
    const char* what;
  };
  std::vector<Item> items;
  items.push_back({map_qft_sycamore(2), "sycamore-2"});
  items.push_back({map_qft_heavy_hex(10), "heavyhex-10"});
  items.push_back({map_qft_on_path(make_grid(3, 3),
                                   {0, 1, 2, 5, 4, 3, 6, 7, 8}),
                   "grid-snake-9"});
  for (const auto& item : items) {
    EXPECT_LT(mapped_equivalence_error(item.mc), 1e-9) << item.what;
  }
}

TEST(CrossValidation, SnakePathOnGridMatchesLnnLaw) {
  const CouplingGraph g = make_grid(4, 4);
  std::vector<PhysicalQubit> path;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      path.push_back(grid_node(r, r % 2 == 0 ? c : 3 - c, 4));
    }
  }
  const MappedCircuit mc = map_qft_on_path(g, path);
  const auto r = check_qft_mapping(mc, g);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LE(r.depth, 4 * 16 + 8);
}

// ------------------------------- cross-engine unitary equivalence ----------

// For every registered engine and small n, the mapped hardware circuit must
// be unitarily equivalent to the reference QFT — checked by simulation via
// verify/equivalence.hpp, independently of the static checker's reasoning.
class EngineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalence, SmallSizesMatchReferenceQft) {
  const std::string engine = GetParam();
  MapOptions opts;
  opts.sabre.trials = 2;
  opts.satmap.time_budget_seconds = 60.0;
  // SATMAP's search space explodes with size (Table 1); stay tiny there.
  const std::int32_t max_n = engine == "satmap" ? 4 : 6;
  for (std::int32_t n = 2; n <= max_n; ++n) {
    const MapResult r = map_qft(engine, n, opts);
    ASSERT_TRUE(r.check.ok) << engine << " n=" << n << ": " << r.check.error;
    EXPECT_LT(mapped_equivalence_error(r.mapped), 1e-9)
        << engine << " requested n=" << n << " native n=" << r.n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineEquivalence,
    ::testing::Values("lnn", "heavy_hex", "sycamore", "lattice", "grid",
                      "lnn_baseline", "sabre", "satmap"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// -------------------------------------------------- QftState algebra -------

TEST(QftStateProperty, WindowsNeverDeadlockUnderRandomGreedyOrder) {
  // Repeatedly pick any enabled operation at random; the relaxed dependence
  // structure must always drain completely (it is a DAG).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256ss rng(seed);
    const std::int32_t n = 12;
    QftState st(n);
    std::int64_t steps = 0;
    while (!st.all_done()) {
      ASSERT_LT(++steps, 100000) << "deadlock";
      std::vector<std::pair<std::int32_t, std::int32_t>> choices;
      for (std::int32_t a = 0; a < n; ++a) {
        if (st.can_self(a)) choices.push_back({a, -1});
        for (std::int32_t b = a + 1; b < n; ++b) {
          if (st.can_pair(a, b)) choices.push_back({a, b});
        }
      }
      ASSERT_FALSE(choices.empty()) << "stalled with work remaining";
      const auto [a, b] = choices[rng.uniform(choices.size())];
      if (b < 0) {
        st.mark_self(a);
      } else {
        st.mark_pair(a, b);
      }
    }
    EXPECT_EQ(st.pairs_remaining(), 0);
    EXPECT_EQ(st.selfs_remaining(), 0);
  }
}

}  // namespace
}  // namespace qfto
