#include <gtest/gtest.h>

#include <numeric>

#include "arch/lattice_surgery.hpp"
#include "arch/sycamore.hpp"
#include "mapper/two_line_ie.hpp"

namespace qfto {
namespace {

// Harness: two adjacent units on a real backend, with IA(lower unit)
// pre-marked done so every cross pair's window is open (the regime in which
// QFT-IE runs inside the unit driver).
struct IeHarness {
  CouplingGraph graph;
  QftState state;
  Line line_a, line_b;
  std::vector<LayerEmitter::EdgeHandle> links;
  std::unique_ptr<LayerEmitter> em;

  IeHarness(CouplingGraph g, std::vector<PhysicalQubit> a,
            std::vector<PhysicalQubit> b, std::vector<CrossLink> l)
      : graph(std::move(g)),
        state(static_cast<std::int32_t>(a.size() + b.size())) {
    std::vector<PhysicalQubit> initial;
    initial.insert(initial.end(), a.begin(), a.end());
    initial.insert(initial.end(), b.begin(), b.end());
    em = std::make_unique<LayerEmitter>(graph, initial, state);
    line_a = Line(*em, std::move(a));
    line_b = Line(*em, std::move(b));
    links = resolve_cross_links(*em, line_a, line_b, l);
    // Open every cross window: logicals of line A (the smaller indices) have
    // their H done; intra-A pairs marked done so can_self held.
    const std::int32_t na = static_cast<std::int32_t>(line_a.size());
    for (std::int32_t i = 0; i < na; ++i) {
      for (std::int32_t j = 0; j < i; ++j) state.mark_pair(j, i);
      state.mark_self(i);
    }
  }

  bool all_cross_pairs_done() const {
    const std::int32_t na = static_cast<std::int32_t>(line_a.size());
    const std::int32_t nb = static_cast<std::int32_t>(line_b.size());
    for (std::int32_t a = 0; a < na; ++a) {
      for (std::int32_t b = 0; b < nb; ++b) {
        if (!state.pair_done(a, na + b)) return false;
      }
    }
    return true;
  }
};

IeHarness sycamore_harness(std::int32_t m) {
  const SycamoreLayout lay{m};
  std::vector<PhysicalQubit> a(lay.unit_len()), b(lay.unit_len());
  for (std::int32_t p = 0; p < lay.unit_len(); ++p) {
    a[p] = lay.unit_pos(0, p);
    b[p] = lay.unit_pos(1, p);
  }
  std::vector<CrossLink> links;
  for (std::int32_t pa = 1; pa < lay.unit_len(); pa += 2) {
    links.push_back({pa, pa - 1});
    if (pa + 1 < lay.unit_len()) links.push_back({pa, pa + 1});
  }
  return IeHarness(make_sycamore(m), std::move(a), std::move(b),
                   std::move(links));
}

IeHarness lattice_harness(std::int32_t m) {
  const LatticeLayout lay{m};
  std::vector<PhysicalQubit> a(m), b(m);
  for (std::int32_t c = 0; c < m; ++c) {
    a[c] = lay.node(0, c);
    b[c] = lay.node(1, c);
  }
  std::vector<CrossLink> links;
  for (std::int32_t c = 0; c < m; ++c) links.push_back({c, c});
  return IeHarness(make_lattice_surgery_rotated(m), std::move(a), std::move(b),
                   std::move(links));
}

class SycamoreIeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SycamoreIeSweep, SyncedPathCompletesAllPairs) {
  IeHarness h = sycamore_harness(GetParam());
  run_two_line_ie(*h.em, h.line_a, h.line_b, h.links, {0, 0});
  EXPECT_TRUE(h.all_cross_pairs_done());
}

TEST_P(SycamoreIeSweep, LinearLayerCount) {
  IeHarness h = sycamore_harness(GetParam());
  run_two_line_ie(*h.em, h.line_a, h.line_b, h.links, {0, 0});
  // O(L) layers for L = 2m line length (paper: 3*(2m+1) steps).
  EXPECT_LE(h.em->layer_index(), 8 * 2 * GetParam() + 32) << GetParam();
}

// m >= 4: a 2x2 Sycamore has a single unit and no inter-unit links.
INSTANTIATE_TEST_SUITE_P(Sizes, SycamoreIeSweep,
                         ::testing::Values(4, 6, 8, 10, 12));

class LatticeIeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LatticeIeSweep, OffsetPathCompletesAllPairs) {
  IeHarness h = lattice_harness(GetParam());
  run_two_line_ie(*h.em, h.line_a, h.line_b, h.links, {0, 1});
  EXPECT_TRUE(h.all_cross_pairs_done());
}

TEST_P(LatticeIeSweep, SyncedPathAlsoCompletesViaFixup) {
  // With equal-position links, synced phases pin partners; the engine's
  // fix-up must still drive it to completion (correctness regardless of the
  // phase choice — performance is the ablation's concern).
  IeHarness h = lattice_harness(GetParam());
  run_two_line_ie(*h.em, h.line_a, h.line_b, h.links, {0, 0});
  EXPECT_TRUE(h.all_cross_pairs_done());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LatticeIeSweep,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16));

TEST(TwoLineIe, OffsetFasterThanSyncedOnEqualPositionLinks) {
  IeHarness off = lattice_harness(10);
  run_two_line_ie(*off.em, off.line_a, off.line_b, off.links, {0, 1});
  IeHarness syn = lattice_harness(10);
  run_two_line_ie(*syn.em, syn.line_a, syn.line_b, syn.links, {0, 0});
  EXPECT_LT(off.em->layer_index(), syn.em->layer_index());
}

TEST(TwoLineIe, EmptyLinkSetRejected) {
  IeHarness h = lattice_harness(3);
  EXPECT_THROW(run_two_line_ie(*h.em, h.line_a, h.line_b, {}, {0, 1}),
               std::invalid_argument);
}

TEST(TwoLineIe, NoOpWhenAllPairsAlreadyDone) {
  IeHarness h = lattice_harness(3);
  const std::int32_t na = 3;
  for (std::int32_t a = 0; a < na; ++a) {
    for (std::int32_t b = 0; b < 3; ++b) h.state.mark_pair(a, na + b);
  }
  run_two_line_ie(*h.em, h.line_a, h.line_b, h.links, {0, 1});
  EXPECT_EQ(h.em->gates_emitted(), 0);
}

TEST(LineShiftLayer, MovesEveryQubitAtParityZeroEvenLength) {
  IeHarness h = lattice_harness(4);
  const auto before = h.em->tracker().logical_to_physical();
  h.em->next_layer();
  const std::int32_t swaps = line_shift_layer(*h.em, h.line_a, 0);
  EXPECT_EQ(swaps, 2);
  const auto after = h.em->tracker().logical_to_physical();
  for (std::int32_t l = 0; l < 4; ++l) EXPECT_NE(before[l], after[l]);
}

}  // namespace
}  // namespace qfto
