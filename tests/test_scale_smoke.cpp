// Device-scale smoke test: the tentpole claim of the oracle/fused-verify
// redesign is that QFT-8192 on the lattice backend is interactive — mapped
// AND verified in under a second of wall clock in a Release build.
//
// The assertions only run in optimized, unsanitized builds: Debug and
// sanitizer configs execute a heavily reduced size purely for coverage, since
// their per-gate costs are 10-50x and a wall-clock bound there measures the
// instrumentation, not the code.
//
// The budget self-calibrates to the host's memory system: device-scale
// emission is store-bandwidth-bound (the QFT-8192 gate stream alone is
// ~1.6 GB of first-touch writes), so the test measures fresh-memory store
// bandwidth once and widens the budget by kReferenceStoreGBps / measured
// when the host is slower than the reference machine. On hardware at or
// above the reference the factor is 1 and the advertised bounds are asserted
// verbatim. QFTO_SMOKE_BUDGET_SCALE (a float multiplier, e.g. "3") relaxes
// further for shared CI runners.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "circuit/qft_spec.hpp"
#include "pipeline/mapper_pipeline.hpp"

namespace qfto {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#if defined(NDEBUG)
constexpr bool kOptimized = true;
#else
constexpr bool kOptimized = false;
#endif

/// Fresh-store bandwidth a machine must reach for the verbatim bounds:
/// writing gate-sized records into just-allocated memory, page faults
/// included — the exact cost profile of device-scale emission. Desktop-class
/// hosts measure well above this; slow VMs scale the budget up proportionally.
constexpr double kReferenceStoreGBps = 6.0;

double measured_store_gbps() {
  constexpr std::size_t kBytes = 128u << 20;
  constexpr std::size_t kCount = kBytes / sizeof(Gate);
  std::vector<Gate> buf;
  buf.reserve(kCount);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kCount; ++i) {
    buf.push_back(Gate::cphase(static_cast<std::int32_t>(i),
                               static_cast<std::int32_t>(i + 1), 0.5));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(t1 - t0).count();
  return s > 0.0 ? kBytes / s / 1e9 : kReferenceStoreGBps;
}

double budget_scale() {
  static const double machine = [] {
    const double factor =
        std::clamp(kReferenceStoreGBps / measured_store_gbps(), 1.0, 10.0);
    if (factor > 1.0) {
      std::printf("[ scale    ] host below reference store bandwidth; "
                  "budgets widened %.2fx\n", factor);
    }
    return factor;
  }();
  const char* env = std::getenv("QFTO_SMOKE_BUDGET_SCALE");
  if (env == nullptr || *env == '\0') return machine;
  const double scale = std::atof(env);
  return machine * (scale > 0.0 ? scale : 1.0);
}

/// Maps + verifies QFT(n) on `engine` and asserts correctness; returns the
/// map+check wall clock.
double timed_run(const std::string& engine, std::int32_t n,
                 double budget_seconds) {
  const MapResult r = map_qft(engine, n);
  EXPECT_TRUE(r.check.ok) << engine << " n=" << n << ": " << r.check.error;
  EXPECT_EQ(r.check.counts.cphase, qft_pair_count(r.n));
  EXPECT_EQ(r.check.counts.h, r.n);
  const double seconds = r.timings.total_seconds();
  if (budget_seconds > 0.0) {
    EXPECT_LT(seconds, budget_seconds)
        << engine << " n=" << n << " (native " << r.n << ", "
        << r.check.counts.total() << " gates) took " << seconds << " s";
  }
  return seconds;
}

TEST(ScaleSmoke, Qft4096LatticeMapsAndVerifiesInteractively) {
  if (!kOptimized || kSanitized) {
    timed_run("lattice", 256, /*budget_seconds=*/0.0);  // coverage only
    GTEST_SKIP() << "wall-clock budget asserted only in Release builds";
  }
  timed_run("lattice", 4096, 0.5 * budget_scale());
}

TEST(ScaleSmoke, Qft8192LatticeMapsAndVerifiesUnderOneSecond) {
  // The headline acceptance bound: requested 8192 snaps to the native 91x91
  // lattice (n = 8281, ~68.6M gates), mapped and fused-verified < 1 s.
  if (!kOptimized || kSanitized) {
    timed_run("lattice", 256, /*budget_seconds=*/0.0);
    GTEST_SKIP() << "wall-clock budget asserted only in Release builds";
  }
  timed_run("lattice", 8192, 1.0 * budget_scale());
}

TEST(ScaleSmoke, FusedVerifyLeavesNoSeparateCheckPass) {
  // At any size, the fused path reports essentially zero check_seconds: the
  // verification work rides the map stage.
  const MapResult r = map_qft("lattice", kOptimized && !kSanitized ? 1024 : 64);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  EXPECT_EQ(r.timings.check_seconds, 0.0);
}

}  // namespace
}  // namespace qfto
