#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/dag.hpp"
#include "circuit/qft_spec.hpp"

namespace qfto {
namespace {

TEST(Dag, IsDiagonal) {
  EXPECT_TRUE(is_diagonal(GateKind::kCPhase));
  EXPECT_TRUE(is_diagonal(GateKind::kRz));
  EXPECT_FALSE(is_diagonal(GateKind::kH));
  EXPECT_FALSE(is_diagonal(GateKind::kSwap));
  EXPECT_FALSE(is_diagonal(GateKind::kCnot));
}

TEST(Dag, StrictChainsPerWire) {
  Circuit c(2);
  c.append(Gate::cphase(0, 1, 0.1));  // 0
  c.append(Gate::cphase(0, 1, 0.2));  // 1
  c.append(Gate::h(0));               // 2
  const Dag d = build_strict_dag(c);
  // 0 -> 1 (shared wires), 1 -> 2 (wire 0).
  EXPECT_EQ(d.succ[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(d.succ[1], (std::vector<std::int32_t>{2}));
  EXPECT_TRUE(d.succ[2].empty());
  EXPECT_EQ(d.roots(), (std::vector<std::int32_t>{0}));
}

TEST(Dag, RelaxedCommutesDiagonals) {
  Circuit c(3);
  c.append(Gate::cphase(0, 1, 0.1));  // 0
  c.append(Gate::cphase(0, 2, 0.2));  // 1 — shares wire 0, but commutes
  c.append(Gate::h(0));               // 2 — barrier
  const Dag strict = build_strict_dag(c);
  const Dag relaxed = build_relaxed_dag(c);
  // Strict: 0 -> 1 exists. Relaxed: it must not.
  EXPECT_FALSE(strict.succ[0].empty());
  EXPECT_TRUE(relaxed.succ[0] == (std::vector<std::int32_t>{2}));
  EXPECT_TRUE(relaxed.succ[1] == (std::vector<std::int32_t>{2}));
  // Both diagonal gates are roots under relaxed ordering.
  const auto roots = relaxed.roots();
  EXPECT_EQ(roots.size(), 2u);
}

TEST(Dag, RelaxedBarrierOrdersAroundH) {
  // This is the paper's Type II example: G(i,j) ... H(j) ... G(j,k).
  Circuit c(3);
  c.append(Gate::cphase(0, 1, 0.1));  // 0: G(q0,q1)
  c.append(Gate::h(1));               // 1: H(q1)
  c.append(Gate::cphase(1, 2, 0.2));  // 2: G(q1,q2)
  const Dag d = build_relaxed_dag(c);
  EXPECT_EQ(d.succ[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(d.succ[1], (std::vector<std::int32_t>{2}));
}

TEST(Dag, TopologicalOrderValid) {
  const Circuit c = qft_logical(6);
  for (const Dag& d : {build_strict_dag(c), build_relaxed_dag(c)}) {
    const auto order = d.topological_order();
    EXPECT_EQ(order.size(), c.size());
    EXPECT_TRUE(respects_dag(d, order));
  }
}

TEST(Dag, RespectsDagDetectsViolation) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cphase(0, 1, 0.1));
  const Dag d = build_strict_dag(c);
  EXPECT_TRUE(respects_dag(d, {0, 1}));
  EXPECT_FALSE(respects_dag(d, {1, 0}));
  EXPECT_FALSE(respects_dag(d, {0}));
  EXPECT_FALSE(respects_dag(d, {0, 0}));
}

// Counts ordered gate pairs (transitive reachability) — the real measure of
// how constraining a DAG is, independent of redundant edges.
std::size_t ordered_pairs(const Dag& d) {
  const std::size_t n = d.size();
  std::vector<std::vector<std::uint8_t>> reach(n,
                                               std::vector<std::uint8_t>(n, 0));
  const auto order = d.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::int32_t g = *it;
    for (auto s : d.succ[g]) {
      reach[g][s] = 1;
      for (std::size_t k = 0; k < n; ++k) reach[g][k] |= reach[s][k];
    }
  }
  std::size_t count = 0;
  for (const auto& row : reach) {
    for (auto v : row) count += v;
  }
  return count;
}

TEST(Dag, QftRelaxedIsStrictlyLessConstraining) {
  const Circuit c = qft_logical(8);
  EXPECT_LT(ordered_pairs(build_relaxed_dag(c)),
            ordered_pairs(build_strict_dag(c)));
}

TEST(Dag, QftRelaxedRootsAreFirstQubitGates) {
  // In QFT all of H(0) is the sole root under relaxed ordering: every CPHASE
  // {0,j} needs H(0) first, every other H needs earlier pairs.
  const Circuit c = qft_logical(5);
  const Dag d = build_relaxed_dag(c);
  const auto roots = d.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(c[roots[0]].kind, GateKind::kH);
  EXPECT_EQ(c[roots[0]].q0, 0);
}

}  // namespace
}  // namespace qfto
