// Socket transport: framing, host:port parsing, the latency histogram, and
// the NetServer end to end — concurrent clients, per-connection response
// order, admission control / shedding, oversized and partial frames,
// mid-stream disconnects cancelling abandoned work, the HTTP adapter, and
// graceful drain. Runs under the CI TSan leg: every reader/writer/accept
// thread interaction here is what that leg locks in.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/line.hpp"
#include "common/timer.hpp"
#include "mapper/lnn_mapper.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "service/mapping_service.hpp"
#include "service/net_server.hpp"
#include "service/result_cache.hpp"
#include "service/serve.hpp"
#include "service/transport.hpp"

namespace qfto {
namespace {

using namespace std::chrono_literals;
using net::LineReader;
using net::NetServer;
using net::Socket;

// Cancellable nap engine (same shape as test_service's): long enough to
// still be in flight when a test disconnects/sheds/drains around it.
class SleeperEngine final : public MapperEngine {
 public:
  explicit SleeperEngine(double nap_seconds) : nap_seconds_(nap_seconds) {}
  std::string name() const override { return "sleeper"; }
  std::string description() const override { return "naps, then maps lnn"; }
  bool deterministic() const override { return false; }
  CouplingGraph build_graph(std::int32_t n,
                            const MapOptions&) const override {
    return make_line(n);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    WallTimer timer;
    while (timer.seconds() < nap_seconds_) {
      if (opts.cancel != nullptr &&
          opts.cancel->load(std::memory_order_relaxed)) {
        throw MapCancelled(false, "sleeper: cancelled mid-map");
      }
      std::this_thread::sleep_for(1ms);
    }
    return map_qft_lnn(n);
  }

 private:
  double nap_seconds_;
};

MapperPipeline pipeline_with_sleeper(double nap_seconds) {
  MapperPipeline pipeline = MapperPipeline::with_paper_engines();
  pipeline.register_engine(std::make_unique<SleeperEngine>(nap_seconds));
  return pipeline;
}

MappingService::Options service_options(std::int32_t threads) {
  MappingService::Options options;
  options.num_threads = threads;
  options.cache_capacity = 1024;
  return options;
}

NetServer::Options loopback(std::uint16_t port = 0) {
  NetServer::Options options;
  options.host = "127.0.0.1";
  options.port = port;
  return options;
}

Socket connect_to(const NetServer& server) {
  std::string error;
  Socket sock = net::dial(server.host(), server.port(), &error);
  EXPECT_TRUE(sock.valid()) << error;
  return sock;
}

std::string read_line(LineReader& reader) {
  std::string line;
  EXPECT_TRUE(reader.next(line))
      << "status=" << static_cast<int>(reader.status());
  return line;
}

// ----------------------------------------------------------- pure pieces --

TEST(Transport, ParseHostPort) {
  net::HostPort hp;
  std::string error;
  ASSERT_TRUE(net::parse_host_port("127.0.0.1:8080", hp, error)) << error;
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 8080);
  ASSERT_TRUE(net::parse_host_port("localhost:0", hp, error)) << error;
  EXPECT_EQ(hp.port, 0);

  EXPECT_FALSE(net::parse_host_port("no-port", hp, error));
  EXPECT_FALSE(net::parse_host_port(":123", hp, error));
  EXPECT_FALSE(net::parse_host_port("127.0.0.1:", hp, error));
  EXPECT_FALSE(net::parse_host_port("127.0.0.1:99999", hp, error));
  EXPECT_FALSE(net::parse_host_port("127.0.0.1:12x", hp, error));
  EXPECT_FALSE(net::parse_host_port("not.a.host:80", hp, error));
}

TEST(Transport, LatencyHistogramQuantiles) {
  net::LatencyHistogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0.0) << "empty histogram reads zero";
  for (int i = 0; i < 99; ++i) hist.record(1e-3);
  hist.record(1.0);
  EXPECT_EQ(hist.count(), 100u);
  // Log-bucketed: ~19% relative resolution around the true value.
  EXPECT_NEAR(hist.quantile(0.5), 1e-3, 0.3e-3);
  EXPECT_NEAR(hist.quantile(0.99), 1e-3, 0.3e-3);
  EXPECT_NEAR(hist.quantile(1.0), 1.0, 0.3);
}

TEST(Transport, EphemeralPortIsReported) {
  MappingService service{service_options(1)};
  NetServer server(service, loopback());
  EXPECT_GT(server.port(), 0) << "port 0 must resolve to the bound port";
}

// ------------------------------------------------------------ happy path --

TEST(Transport, JsonRoundTripWithCacheHit) {
  // One worker serializes the identical requests so the second is
  // guaranteed to find the first's cache entry (in-flight twins can race on
  // a wider pool and both miss).
  MappingService service{service_options(1)};
  NetServer server(service, loopback());
  server.start();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  ASSERT_TRUE(sock.send_all("{\"id\":1,\"engine\":\"lattice\",\"n\":9}\n"
                            "{\"id\":2,\"engine\":\"lattice\",\"n\":9}\n"));
  const std::string first = read_line(reader);
  const std::string second = read_line(reader);
  EXPECT_NE(first.find("\"id\":1"), std::string::npos) << first;
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_NE(first.find("\"cache_hit\":false"), std::string::npos) << first;
  EXPECT_NE(second.find("\"id\":2"), std::string::npos) << second;
  EXPECT_NE(second.find("\"cache_hit\":true"), std::string::npos) << second;
}

TEST(Transport, ConcurrentClientsKeepTheirOwnOrder) {
  MappingService service{service_options(4)};
  NetServer server(service, loopback());
  server.start();

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Socket sock = connect_to(server);
      LineReader reader(sock);
      std::string batch;
      for (int r = 0; r < kRequests; ++r) {
        // Mixed priorities scramble service-side completion order; the
        // response stream must stay in request order regardless.
        batch += "{\"id\":" + std::to_string(c * 100 + r) +
                 ",\"engine\":\"lnn\",\"n\":" + std::to_string(4 + r) +
                 ",\"priority\":" + std::to_string(r % 3) + "}\n";
      }
      if (!sock.send_all(batch)) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        std::string line;
        if (!reader.next(line) ||
            line.find("\"id\":" + std::to_string(c * 100 + r) + ",") ==
                std::string::npos ||
            line.find("\"ok\":true") == std::string::npos) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The counter bumps after the send, so the last client can observe its
  // response a beat before the increment lands — poll briefly.
  WallTimer timer;
  while (server.metrics().responses.load() <
             static_cast<std::uint64_t>(kClients * kRequests) &&
         timer.seconds() < 2.0) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(server.metrics().responses.load(),
            static_cast<std::uint64_t>(kClients * kRequests));
}

// -------------------------------------------------------------- negatives --

TEST(Transport, OversizedLineGetsInBandErrorThenClose) {
  MappingService service{service_options(1)};
  NetServer::Options options = loopback();
  options.max_line = 512;
  NetServer server(service, options);
  server.start();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  const std::string huge(2048, 'x');
  ASSERT_TRUE(sock.send_all(huge));  // no newline yet: one unframed blob
  const std::string line = read_line(reader);
  EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("exceeds"), std::string::npos) << line;
  std::string extra;
  EXPECT_FALSE(reader.next(extra)) << "server must stop reading after abuse";
}

TEST(Transport, PartialFrameIsDroppedSilently) {
  MappingService service{service_options(1)};
  NetServer server(service, loopback());
  server.start();

  Socket sock = connect_to(server);
  // A request with no trailing newline is an incomplete frame: the server
  // must not guess at it (and must not hang — EOF retires the connection).
  ASSERT_TRUE(sock.send_all("{\"id\":9,\"engine\":\"lnn\",\"n\":4}"));
  ::shutdown(sock.fd(), SHUT_WR);
  LineReader reader(sock);
  std::string line;
  EXPECT_FALSE(reader.next(line)) << "no response for a partial frame: "
                                  << line;
  EXPECT_EQ(reader.status(), LineReader::Status::kEof);
}

TEST(Transport, EmbeddedNulIsAnInBandParseError) {
  MappingService service{service_options(1)};
  NetServer server(service, loopback());
  server.start();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  std::string request = "{\"id\":3,\"engine\":\"lnn\",\"n\":4}";
  request[request.size() - 2] = '\0';  // NUL where a digit was
  request += '\n';
  ASSERT_TRUE(sock.send_all(request));
  const std::string line = read_line(reader);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos) << line;
  EXPECT_NE(line.find("parse error"), std::string::npos) << line;
  EXPECT_EQ(server.metrics().parse_errors.load(), 1u);
}

TEST(Transport, MidStreamDisconnectCancelsAbandonedJobs) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.5);
  MappingService service{service_options(1), pipeline};
  NetServer server(service, loopback());
  server.start();

  {
    Socket sock = connect_to(server);
    std::string batch;
    for (int r = 0; r < 8; ++r) {
      batch += "{\"id\":" + std::to_string(r) +
               ",\"engine\":\"sleeper\",\"n\":4}\n";
    }
    ASSERT_TRUE(sock.send_all(batch));
    // Give the reader time to submit, then vanish without reading a byte.
    std::this_thread::sleep_for(100ms);
  }

  // 8 sleeper jobs at 0.5 s on one worker is 4 s if nothing cancels them.
  // The writer must detect the dead client and cancel the backlog well
  // before that.
  WallTimer timer;
  while (server.metrics().in_flight.load() > 0 && timer.seconds() < 3.0) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(server.metrics().in_flight.load(), 0)
      << "abandoned jobs must be cancelled";
  EXPECT_LT(timer.seconds(), 3.0);
}

// ----------------------------------------------------- admission control --

TEST(Transport, ShedsAtMaxInflight) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.5);
  MappingService service{service_options(1), pipeline};
  NetServer::Options options = loopback();
  options.max_inflight = 1;
  NetServer server(service, options);
  server.start();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  ASSERT_TRUE(sock.send_all("{\"id\":1,\"engine\":\"sleeper\",\"n\":4}\n"
                            "{\"id\":2,\"engine\":\"lnn\",\"n\":4}\n"));
  const std::string first = read_line(reader);
  const std::string second = read_line(reader);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_NE(second.find("\"status\":\"shed\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"id\":2"), std::string::npos) << second;
  EXPECT_EQ(server.metrics().shed.load(), 1u);

  // Shedding is per-request, not per-connection: once the queue clears, the
  // same connection is served again.
  ASSERT_TRUE(sock.send_all("{\"id\":3,\"engine\":\"lnn\",\"n\":4}\n"));
  const std::string third = read_line(reader);
  EXPECT_NE(third.find("\"ok\":true"), std::string::npos) << third;
}

// ----------------------------------------------------------------- metrics --

TEST(Transport, MetricsMatchCacheStatsOverBothProtocols) {
  // One worker: the identical requests must be a deterministic miss+hit for
  // the exact cache-stats comparison below.
  MappingService service{service_options(1)};
  NetServer server(service, loopback());
  server.start();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  ASSERT_TRUE(sock.send_all("{\"id\":1,\"engine\":\"lattice\",\"n\":9}\n"
                            "{\"id\":1,\"engine\":\"lattice\",\"n\":9}\n"));
  read_line(reader);
  read_line(reader);
  // The metrics snapshot is taken at admission time, so only request it
  // once the two job responses have been read (and thus recorded).
  ASSERT_TRUE(sock.send_all("{\"metrics\":true}\n"));
  const std::string inband = read_line(reader);
  const ResultCache::Stats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  const std::string cache_doc =
      "\"cache\":{\"hits\":" + std::to_string(stats.hits) +
      ",\"misses\":" + std::to_string(stats.misses) +
      ",\"insertions\":" + std::to_string(stats.insertions) +
      ",\"evictions\":" + std::to_string(stats.evictions) +
      ",\"expired\":" + std::to_string(stats.expired) +
      ",\"load_quarantined\":" + std::to_string(stats.load_quarantined) +
      ",\"entries\":" + std::to_string(stats.entries) +
      ",\"capacity\":" + std::to_string(stats.capacity) + "}";
  EXPECT_NE(inband.find(cache_doc), std::string::npos) << inband;
  EXPECT_NE(inband.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(inband.find("\"map_seconds\":{\"count\":2"), std::string::npos)
      << inband;

  // Same document over HTTP.
  Socket http = connect_to(server);
  ASSERT_TRUE(http.send_all("GET /metrics HTTP/1.1\r\n"
                            "Host: x\r\nConnection: close\r\n\r\n"));
  LineReader http_reader(http);
  EXPECT_EQ(read_line(http_reader), "HTTP/1.1 200 OK");
  std::string line;
  while (http_reader.next(line) && !line.empty()) {
  }
  const std::string body = read_line(http_reader);
  EXPECT_NE(body.find(cache_doc), std::string::npos) << body;
}

TEST(Transport, HttpPostMapAndErrorStatuses) {
  MappingService service{service_options(2)};
  NetServer server(service, loopback());
  server.start();

  const auto http_request = [&](const std::string& payload,
                                std::string* status) {
    Socket sock = connect_to(server);
    std::string req = "POST /map HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                      std::to_string(payload.size()) + "\r\n\r\n" + payload;
    EXPECT_TRUE(sock.send_all(req));
    LineReader reader(sock);
    *status = read_line(reader);
    std::string line;
    while (reader.next(line) && !line.empty()) {
    }
    return read_line(reader);
  };

  std::string status;
  const std::string ok = http_request("{\"engine\":\"lnn\",\"n\":5}", &status);
  EXPECT_EQ(status, "HTTP/1.1 200 OK");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"n\":5"), std::string::npos) << ok;

  const std::string bad = http_request("not json at all", &status);
  EXPECT_EQ(status, "HTTP/1.1 400 Bad Request");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;

  Socket sock = connect_to(server);
  ASSERT_TRUE(sock.send_all("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"));
  LineReader reader(sock);
  EXPECT_EQ(read_line(reader), "HTTP/1.1 404 Not Found");
}

// ------------------------------------------------------------------ drain --

TEST(Transport, DrainFinishesInFlightAndRefusesNewConnections) {
  const MapperPipeline pipeline = pipeline_with_sleeper(0.3);
  MappingService service{service_options(1), pipeline};
  NetServer server(service, loopback());
  server.start();
  const std::uint16_t port = server.port();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  ASSERT_TRUE(sock.send_all("{\"id\":1,\"engine\":\"sleeper\",\"n\":4}\n"));
  std::this_thread::sleep_for(50ms);  // let the job reach a worker

  server.request_stop();
  server.stop_and_drain();

  // The in-flight job finished inside the drain budget and its response
  // reached us even though the server was shutting down.
  const std::string line = read_line(reader);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;

  std::string error;
  Socket refused = net::dial("127.0.0.1", port, &error);
  if (refused.valid()) {
    // The listener is closed; at most the OS accepts and immediately
    // resets. A request must never be answered.
    LineReader dead_reader(refused);
    refused.send_all("{\"id\":2,\"engine\":\"lnn\",\"n\":4}\n");
    std::string none;
    EXPECT_FALSE(dead_reader.next(none));
  }
}

TEST(Transport, DrainPastBudgetCancelsStragglers) {
  const MapperPipeline pipeline = pipeline_with_sleeper(30.0);
  MappingService service{service_options(1), pipeline};
  NetServer::Options options = loopback();
  options.drain_seconds = 0.2;
  NetServer server(service, options);
  server.start();

  Socket sock = connect_to(server);
  LineReader reader(sock);
  ASSERT_TRUE(sock.send_all("{\"id\":1,\"engine\":\"sleeper\",\"n\":4}\n"));
  std::this_thread::sleep_for(50ms);

  WallTimer timer;
  server.request_stop();
  server.stop_and_drain();
  EXPECT_LT(timer.seconds(), 10.0)
      << "a 30 s job must not hold the drain hostage";

  const std::string line = read_line(reader);
  EXPECT_NE(line.find("\"status\":\"cancelled\""), std::string::npos) << line;
}

}  // namespace
}  // namespace qfto
