#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "sat/cardinality.hpp"
#include "sat/solver.hpp"

namespace qfto::sat {
namespace {

TEST(Sat, TrivialSat) {
  Solver s;
  const auto a = s.new_var();
  s.add_unit(Lit::pos(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const auto a = s.new_var();
  s.add_unit(Lit::pos(a));
  s.add_unit(Lit::neg(a));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, EmptyClauseUnsat) {
  Solver s;
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  const auto a = s.new_var();
  s.add_clause({Lit::pos(a), Lit::neg(a)});
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Sat, Implications) {
  Solver s;
  const auto a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_implication(Lit::pos(a), Lit::pos(b));
  s.add_implication(Lit::pos(b), Lit::pos(c));
  s.add_unit(Lit::pos(a));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT requiring real search.
  Solver s;
  const int pigeons = 4, holes = 3;
  std::vector<std::vector<std::int32_t>> x(pigeons,
                                           std::vector<std::int32_t>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> row;
    for (int h = 0; h < holes; ++h) row.push_back(Lit::pos(x[p][h]));
    add_at_least_one(s, row);
  }
  for (int h = 0; h < holes; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < pigeons; ++p) col.push_back(Lit::pos(x[p][h]));
    add_at_most_one(s, col);
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, GraphColoringSat) {
  // 5-cycle is 3-colorable but not 2-colorable.
  auto build = [](int colors) {
    auto s = std::make_unique<Solver>();
    std::vector<std::vector<std::int32_t>> v(5,
                                             std::vector<std::int32_t>(colors));
    for (auto& row : v) {
      for (auto& var : row) var = s->new_var();
    }
    for (int i = 0; i < 5; ++i) {
      std::vector<Lit> row;
      for (int c = 0; c < colors; ++c) row.push_back(Lit::pos(v[i][c]));
      add_exactly_one(*s, row);
      const int j = (i + 1) % 5;
      for (int c = 0; c < colors; ++c) {
        s->add_binary(Lit::neg(v[i][c]), Lit::neg(v[j][c]));
      }
    }
    return s;
  };
  EXPECT_EQ(build(3)->solve(), Result::kSat);
  EXPECT_EQ(build(2)->solve(), Result::kUnsat);
}

TEST(Sat, RandomThreeSatSmokeBothPolarities) {
  // Random planted-solution 3-SAT instances must come back SAT, and the
  // returned model must satisfy every clause.
  Xoshiro256ss rng(123);
  for (int inst = 0; inst < 10; ++inst) {
    Solver s;
    const int nv = 30;
    std::vector<std::int32_t> vars(nv);
    std::vector<bool> planted(nv);
    for (int i = 0; i < nv; ++i) {
      vars[i] = s.new_var();
      planted[i] = rng.uniform(2) == 1;
    }
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 120; ++c) {
      std::vector<Lit> cl;
      bool satisfied = false;
      for (int k = 0; k < 3; ++k) {
        const int v = static_cast<int>(rng.uniform(nv));
        const bool neg = rng.uniform(2) == 1;
        cl.push_back(neg ? Lit::neg(vars[v]) : Lit::pos(vars[v]));
        satisfied |= (planted[v] != neg);
      }
      if (!satisfied) {
        // Flip one literal to keep the planted assignment valid.
        cl[0] = cl[0].sign() ? Lit::pos(cl[0].var()) : Lit::neg(cl[0].var());
      }
      clauses.push_back(cl);
      s.add_clause(cl);
    }
    ASSERT_EQ(s.solve(), Result::kSat) << "instance " << inst;
    for (const auto& cl : clauses) {
      bool ok = false;
      for (Lit l : cl) ok |= (s.value(l.var()) != l.sign());
      EXPECT_TRUE(ok);
    }
  }
}

TEST(Sat, TimeoutReported) {
  // A hard pigeonhole instance with an absurdly small budget must time out
  // (or, on a very fast machine, prove UNSAT — both are acceptable; what is
  // not acceptable is SAT).
  Solver s;
  const int pigeons = 9, holes = 8;
  std::vector<std::vector<std::int32_t>> x(pigeons,
                                           std::vector<std::int32_t>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> row;
    for (int h = 0; h < holes; ++h) row.push_back(Lit::pos(x[p][h]));
    add_at_least_one(s, row);
  }
  for (int h = 0; h < holes; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < pigeons; ++p) col.push_back(Lit::pos(x[p][h]));
    add_at_most_one(s, col);
  }
  EXPECT_NE(s.solve(1e-6), Result::kSat);
}

TEST(Sat, AssumptionsPinDecisionsForOneCall) {
  Solver s;
  const auto a = s.new_var(), b = s.new_var();
  s.add_binary(Lit::pos(a), Lit::pos(b));
  ASSERT_EQ(s.solve({Lit::neg(a)}), Result::kSat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_EQ(s.solve({Lit::neg(a), Lit::neg(b)}), Result::kUnsat);
  // Cores-free semantics: the refutation was scoped to the call.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Sat, LearntClausesAreRetainedAcrossCalls) {
  // Refuting an activation literal forces real conflict analysis; the learnt
  // clauses must survive into the next call (the whole point of driving
  // SATMAP's deepening through one incremental instance).
  Solver s;
  const int pigeons = 4, holes = 3;
  std::vector<std::vector<std::int32_t>> x(pigeons,
                                           std::vector<std::int32_t>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  const auto act = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> row{Lit::neg(act)};
    for (int h = 0; h < holes; ++h) row.push_back(Lit::pos(x[p][h]));
    s.add_clause(row);  // act -> pigeon p is placed
  }
  for (int h = 0; h < holes; ++h) {
    std::vector<Lit> col;
    for (int p = 0; p < pigeons; ++p) col.push_back(Lit::pos(x[p][h]));
    add_at_most_one(s, col);
  }
  const std::int64_t original = s.num_clauses();
  EXPECT_EQ(s.solve({Lit::pos(act)}), Result::kUnsat);
  EXPECT_GT(s.num_conflicts(), 0);
  EXPECT_GE(s.num_clauses(), original) << "learnt clauses must be retained";
  // Without the activation the relaxed instance is SAT in the same solver.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Sat, StatsCountersAreMonotone) {
  Solver s;
  const auto a = s.new_var(), b = s.new_var();
  s.add_binary(Lit::pos(a), Lit::pos(b));
  ASSERT_EQ(s.solve(), Result::kSat);
  const SolverStats first = s.stats();
  EXPECT_EQ(first.solve_calls, 1);
  ASSERT_EQ(s.solve({Lit::neg(b)}), Result::kSat);
  const SolverStats second = s.stats();
  EXPECT_EQ(second.solve_calls, 2);
  EXPECT_GE(second.decisions, first.decisions);
  EXPECT_GE(second.propagations, first.propagations);
}

TEST(Cardinality, AtMostKBoundary) {
  const int n = 5;
  for (int k = 0; k < n; ++k) {
    for (int forced = 0; forced <= n; ++forced) {
      Solver s;
      std::vector<Lit> lits;
      for (int i = 0; i < n; ++i) lits.push_back(Lit::pos(s.new_var()));
      add_at_most_k(s, lits, k);
      for (int i = 0; i < forced; ++i) s.add_unit(lits[i]);
      const Result expected = forced <= k ? Result::kSat : Result::kUnsat;
      EXPECT_EQ(s.solve(), expected) << "k=" << k << " forced=" << forced;
    }
  }
}

TEST(Cardinality, AtMostKCountsModels) {
  // With n=5, k=2 and no other constraints the instance is SAT and any model
  // has at most 2 of the base vars true.
  Solver s;
  std::vector<Lit> lits;
  std::vector<std::int32_t> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(s.new_var());
    lits.push_back(Lit::pos(vars.back()));
  }
  add_at_most_k(s, lits, 2);
  ASSERT_EQ(s.solve(), Result::kSat);
  int count = 0;
  for (auto v : vars) count += s.value(v);
  EXPECT_LE(count, 2);
}

TEST(Cardinality, ExactlyOne) {
  Solver s;
  std::vector<Lit> lits;
  std::vector<std::int32_t> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(s.new_var());
    lits.push_back(Lit::pos(vars.back()));
  }
  add_exactly_one(s, lits);
  ASSERT_EQ(s.solve(), Result::kSat);
  int count = 0;
  for (auto v : vars) count += s.value(v);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace qfto::sat
