// MapperPipeline facade: registry contents, checker-clean sweeps per engine
// on the native coupling graph, size snapping, option forwarding, the
// routed-baseline target override, and clean failure on unknown engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "arch/heavy_hex.hpp"
#include "arch/sycamore.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/stats.hpp"
#include "mapper/lnn_mapper.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "sat/solver_interface.hpp"

namespace qfto {
namespace {

// ---------------------------------------------------------------- registry --

TEST(PipelineRegistry, ListsAllSevenPaperEngines) {
  const auto names = MapperPipeline::global().engine_names();
  for (const char* required :
       {"lnn", "heavy_hex", "heavy_hex_device", "sycamore", "lattice", "sabre",
        "satmap", "lnn_baseline"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing engine: " << required;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PipelineRegistry, EveryEngineDescribesItself) {
  const auto& pipeline = MapperPipeline::global();
  for (const auto& name : pipeline.engine_names()) {
    EXPECT_TRUE(pipeline.has(name));
    EXPECT_NE(pipeline.find(name), nullptr);
    EXPECT_EQ(pipeline.at(name).name(), name);
    EXPECT_FALSE(pipeline.at(name).description().empty()) << name;
  }
}

TEST(PipelineRegistry, UnknownEngineFailsCleanly) {
  const auto& pipeline = MapperPipeline::global();
  EXPECT_FALSE(pipeline.has("nosuch"));
  EXPECT_EQ(pipeline.find("nosuch"), nullptr);
  EXPECT_THROW(pipeline.at("nosuch"), std::invalid_argument);
  EXPECT_THROW(pipeline.run("nosuch", 4), std::invalid_argument);
  EXPECT_THROW(map_qft("", 4), std::invalid_argument);
  try {
    map_qft("nosuch", 4);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error message must name the known engines so CLIs can relay it.
    EXPECT_NE(std::string(e.what()).find("lnn"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sycamore"), std::string::npos);
  }
}

TEST(PipelineRegistry, CustomEngineCanBeRegisteredAndRun) {
  class EchoLnn final : public MapperEngine {
   public:
    std::string name() const override { return "echo_lnn"; }
    std::string description() const override { return "lnn under a new key"; }
    CouplingGraph build_graph(std::int32_t n,
                              const MapOptions&) const override {
      CouplingGraph g("echo-line", n);
      for (std::int32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
      return g;
    }
    MappedCircuit map(std::int32_t n, const CouplingGraph&,
                      const MapOptions&) const override {
      return map_qft_lnn(n);
    }
  };
  MapperPipeline pipeline = MapperPipeline::with_paper_engines();
  pipeline.register_engine(std::make_unique<EchoLnn>());
  ASSERT_TRUE(pipeline.has("echo_lnn"));
  const MapResult r = pipeline.run("echo_lnn", 8);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  EXPECT_EQ(r.check.counts.cphase, qft_pair_count(8));
}

// ------------------------------------------------- per-engine checker sweep --

struct SweepCase {
  const char* engine;
  std::vector<std::int32_t> sizes;  // requested sizes (snapping exercised)
};

class EngineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineSweep, CheckerCleanOnNativeGraph) {
  const SweepCase& c = GetParam();
  MapOptions opts;
  opts.sabre.trials = 1;                   // keep the heuristic sweep fast
  opts.satmap.time_budget_seconds = 60.0;  // tiny instances only
  for (const std::int32_t n : c.sizes) {
    const MapResult r = map_qft(c.engine, n, opts);
    ASSERT_TRUE(r.check.ok)
        << c.engine << " n=" << n << ": " << r.check.error;
    EXPECT_EQ(r.engine, c.engine);
    EXPECT_EQ(r.requested_n, n);
    EXPECT_GE(r.n, n) << "native size must not shrink the request";
    EXPECT_EQ(r.mapped.num_logical(), r.n);
    EXPECT_EQ(r.check.counts.cphase, qft_pair_count(r.n));
    EXPECT_EQ(r.check.counts.h, r.n);
    EXPECT_GE(r.graph.num_qubits(), r.n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineSweep,
    ::testing::Values(
        SweepCase{"lnn", {1, 2, 3, 5, 8, 16, 33}},
        SweepCase{"heavy_hex", {5, 10, 12, 20, 50}},
        SweepCase{"heavy_hex_device", {5, 13, 14, 30, 60}},
        SweepCase{"sycamore", {4, 9, 16, 36, 64}},
        SweepCase{"lattice", {4, 9, 10, 25, 64}},
        SweepCase{"grid", {4, 9, 25, 49}},
        SweepCase{"lnn_baseline", {4, 9, 25, 49}},
        SweepCase{"sabre", {4, 9, 16}},
        SweepCase{"satmap", {3, 4}}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.engine);
    });

// --------------------------------------------------- size snapping details --

TEST(PipelineSnapping, SycamoreRoundsUpToEvenSquare) {
  const MapResult r = map_qft("sycamore", 30, MapOptions{});
  EXPECT_EQ(r.n, 36);  // m=6 (m=5.48 rounded up, then made even)
  EXPECT_EQ(r.graph.num_qubits(), 36);
  EXPECT_TRUE(r.check.ok) << r.check.error;
}

TEST(PipelineSnapping, HeavyHexRoundsUpToMultipleOfFive) {
  EXPECT_EQ(map_qft("heavy_hex", 11).n, 15);
  EXPECT_EQ(map_qft("heavy_hex", 3).n, 5);
}

TEST(PipelineSnapping, LatticeRoundsUpToSquare) {
  EXPECT_EQ(map_qft("lattice", 10).n, 16);
  EXPECT_EQ(map_qft("lnn_baseline", 2).n, 4);
}

TEST(PipelineSnapping, HeavyHexDeviceSnapsToFullDeviceSizes) {
  // 13-qubit rows, 4 bridges per gap: r rows hold N = 17r - 4 qubits.
  EXPECT_EQ(map_qft("heavy_hex_device", 5).n, 13);    // r=1: a bare row
  EXPECT_EQ(map_qft("heavy_hex_device", 13).n, 13);
  EXPECT_EQ(map_qft("heavy_hex_device", 14).n, 30);   // r=2
  EXPECT_EQ(map_qft("heavy_hex_device", 47).n, 47);   // r=3 exactly
  const MapResult r = map_qft("heavy_hex_device", 31);
  EXPECT_EQ(r.n, 47);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  // The result is verified on the *full* device graph — bridge links the
  // reduction deletes are present (and simply unused).
  EXPECT_EQ(r.graph.num_qubits(), 47);
  EXPECT_GT(r.graph.num_edges(), 46);  // more than a spanning tree: full device
}

TEST(PipelineSnapping, ExactNativeSizesAreKept) {
  EXPECT_EQ(map_qft("lnn", 7).n, 7);
  EXPECT_EQ(map_qft("sycamore", 16).n, 16);
  EXPECT_EQ(map_qft("heavy_hex", 20).n, 20);
}

// ------------------------------------------------------- option forwarding --

TEST(PipelineOptions, StrictIeCostsDepthOnSycamore) {
  MapOptions strict;
  strict.strict_ie = true;
  const MapResult relaxed = map_qft("sycamore", 36);
  const MapResult strict_r = map_qft("sycamore", 36, strict);
  ASSERT_TRUE(relaxed.check.ok && strict_r.check.ok);
  EXPECT_GT(strict_r.check.depth, relaxed.check.depth);
}

TEST(PipelineOptions, TargetOverrideRoutesSabreOnDeviceGraph) {
  const CouplingGraph g = make_sycamore(4);
  MapOptions opts;
  opts.sabre.trials = 1;
  opts.target = &g;
  const MapResult r = map_qft("sabre", 16, opts);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  EXPECT_EQ(r.graph.name(), g.name());
  EXPECT_EQ(r.graph.num_qubits(), 16);
}

TEST(PipelineOptions, TargetSmallerThanCircuitIsRejected) {
  const CouplingGraph g = make_sycamore(2);  // 4 qubits
  MapOptions opts;
  opts.target = &g;
  EXPECT_THROW(map_qft("sabre", 9, opts), std::invalid_argument);
}

TEST(PipelineOptions, VerifyOffSkipsTheChecker) {
  MapOptions opts;
  opts.verify = false;
  const MapResult r = map_qft("lnn", 12, opts);
  EXPECT_FALSE(r.check.ok);  // untouched default
  EXPECT_TRUE(r.check.error.empty());
  EXPECT_EQ(r.timings.check_seconds, 0.0);
  EXPECT_EQ(r.mapped.num_logical(), 12);
}

namespace {

void expect_same_map_result(const MapResult& a, const MapResult& b,
                            const std::string& label) {
  ASSERT_TRUE(a.check.ok) << label << ": " << a.check.error;
  ASSERT_TRUE(b.check.ok) << label << ": " << b.check.error;
  EXPECT_EQ(a.check.depth, b.check.depth) << label;
  EXPECT_EQ(a.check.error, b.check.error) << label;
  EXPECT_EQ(a.check.counts.h, b.check.counts.h) << label;
  EXPECT_EQ(a.check.counts.cphase, b.check.counts.cphase) << label;
  EXPECT_EQ(a.check.counts.swap, b.check.counts.swap) << label;
  EXPECT_EQ(a.check.counts.cnot, b.check.counts.cnot) << label;
  EXPECT_EQ(a.check.counts.total(), b.check.counts.total()) << label;
  EXPECT_EQ(a.n, b.n) << label;
  EXPECT_EQ(a.mapped.circuit.to_string(), b.mapped.circuit.to_string())
      << label;
  EXPECT_EQ(a.mapped.initial, b.mapped.initial) << label;
  EXPECT_EQ(a.mapped.final_mapping, b.mapped.final_mapping) << label;
}

}  // namespace

TEST(PipelineVerify, FusedStreamAndReplayModesAreBitIdentical) {
  // All three verify modes must agree exactly — same verdict, depth, counts
  // and circuit — for every registered engine. kFused silently falls back to
  // streaming for the routed baselines (they bypass LayerEmitter), which this
  // sweep also exercises.
  const auto& pipeline = MapperPipeline::global();
  for (const auto& name : pipeline.engine_names()) {
    MapOptions base;
    base.sabre.trials = 1;
    base.satmap.time_budget_seconds = 60.0;
    const std::int32_t n = name == "satmap" ? 4 : (name == "sabre" ? 9 : 16);

    MapOptions fused = base;
    fused.verify_mode = VerifyMode::kFused;
    MapOptions streaming = base;
    streaming.verify_mode = VerifyMode::kStream;
    MapOptions replay = base;
    replay.verify_mode = VerifyMode::kReplay;

    const MapResult f = pipeline.run(name, n, fused);
    const MapResult s = pipeline.run(name, n, streaming);
    const MapResult r = pipeline.run(name, n, replay);
    expect_same_map_result(f, s, name + " fused-vs-stream");
    expect_same_map_result(f, r, name + " fused-vs-replay");
  }
}

TEST(PipelineVerify, FusedModeMatchesReplayAcrossSizes) {
  // Acceptance sweep: per-engine bit-identical MapResults between the fused
  // emitter audit and the pre-redesign replay checker on QFT-{16,64,256}.
  // SATMAP is skipped (TLE territory at these sizes); SABRE pinned to one
  // trial stays deterministic.
  const auto& pipeline = MapperPipeline::global();
  for (const std::int32_t n : {16, 64, 256}) {
    for (const auto& name : pipeline.engine_names()) {
      if (name == "satmap") continue;
      if (name == "sabre" && n > 64) continue;  // routing time, not coverage
      MapOptions fused;
      fused.sabre.trials = 1;
      fused.verify_mode = VerifyMode::kFused;
      MapOptions replay = fused;
      replay.verify_mode = VerifyMode::kReplay;
      const MapResult f = pipeline.run(name, n, fused);
      const MapResult r = pipeline.run(name, n, replay);
      expect_same_map_result(f, r,
                             name + " n=" + std::to_string(n));
    }
  }
}

TEST(PipelineOptions, SatmapBudgetExhaustionThrowsRuntimeError) {
  MapOptions opts;
  opts.satmap.time_budget_seconds = 1e-6;  // certain TLE
  EXPECT_THROW(map_qft("satmap", 8, opts), std::runtime_error);
}

TEST(PipelineOptions, SatmapSolverStatsSurfaceIntoTimings) {
  MapOptions opts;
  opts.satmap.time_budget_seconds = 60.0;
  const MapResult r = map_qft("satmap", 3, opts);
  ASSERT_TRUE(r.check.ok) << r.check.error;
  EXPECT_GT(r.timings.sat.solve_calls, 0);
  EXPECT_GT(r.timings.sat.decisions, 0);
  EXPECT_GT(r.timings.sat.vars, 0);

  // A caller-installed sink sees the same numbers the pipeline recorded.
  sat::SolverStats sink;
  MapOptions with_sink = opts;
  with_sink.satmap.stats_out = &sink;
  const MapResult again = map_qft("satmap", 3, with_sink);
  ASSERT_TRUE(again.check.ok);
  EXPECT_EQ(sink.solve_calls, again.timings.sat.solve_calls);
  EXPECT_EQ(sink.conflicts, again.timings.sat.conflicts);

  // Analytical engines never run a solver.
  const MapResult lnn = map_qft("lnn", 8);
  EXPECT_EQ(lnn.timings.sat.solve_calls, 0);
  EXPECT_EQ(lnn.timings.sat.decisions, 0);
}

TEST(PipelineOptions, SatmapSolverBackendSelectable) {
  MapOptions opts;
  opts.satmap.time_budget_seconds = 60.0;
  opts.satmap.solver = "dpll";
  const MapResult r = map_qft("satmap", 2, opts);
  ASSERT_TRUE(r.check.ok) << r.check.error;

  MapOptions bogus;
  bogus.satmap.solver = "no-such-backend";
  EXPECT_THROW(map_qft("satmap", 2, bogus), std::invalid_argument);
}

// ------------------------------------------------------- batch front-end --

TEST(PipelineBatch, ResultsComeBackInRequestOrder) {
  std::vector<BatchRequest> reqs;
  for (const char* engine : {"lnn", "heavy_hex", "sycamore", "lattice"}) {
    reqs.push_back({engine, 16, MapOptions{}});
  }
  const auto items = map_qft_batch(reqs, 4);
  ASSERT_EQ(items.size(), reqs.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(items[i].ok) << reqs[i].engine << ": " << items[i].error;
    EXPECT_EQ(items[i].result.engine, reqs[i].engine);
    EXPECT_TRUE(items[i].result.check.ok) << items[i].result.check.error;
  }
}

TEST(PipelineBatch, ParallelMatchesSerialForAnalyticalEngines) {
  std::vector<BatchRequest> reqs;
  for (std::int32_t n : {4, 9, 16, 25, 36}) {
    reqs.push_back({"lattice", n, MapOptions{}});
  }
  const auto serial = map_qft_batch(reqs, 1);
  const auto parallel = map_qft_batch(reqs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok && parallel[i].ok);
    EXPECT_EQ(serial[i].result.mapped.circuit.to_string(),
              parallel[i].result.mapped.circuit.to_string());
  }
}

TEST(PipelineBatch, PerItemFailuresDoNotAbortTheBatch) {
  MapOptions tle;
  tle.satmap.time_budget_seconds = 1e-6;
  const std::vector<BatchRequest> reqs = {
      {"lnn", 8, MapOptions{}},
      {"nosuch", 8, MapOptions{}},
      {"satmap", 8, tle},
      {"sycamore", 4, MapOptions{}},
  };
  const auto items = map_qft_batch(reqs, 2);
  ASSERT_EQ(items.size(), 4u);
  EXPECT_TRUE(items[0].ok);
  EXPECT_FALSE(items[1].ok);
  EXPECT_NE(items[1].error.find("unknown engine"), std::string::npos);
  EXPECT_FALSE(items[2].ok);
  EXPECT_NE(items[2].error.find("satmap"), std::string::npos);
  EXPECT_TRUE(items[3].ok);
}

TEST(PipelineBatch, EmptyBatchIsFine) {
  EXPECT_TRUE(map_qft_batch({}).empty());
}

// ------------------------------------------------------------ determinism --

TEST(PipelineDeterminism, StructuredEnginesAreSeedFree) {
  // Analytical mappers must emit byte-identical circuits run to run — the
  // consistency guarantee the paper contrasts with SABRE (Fig. 27).
  for (const char* engine : {"lnn", "heavy_hex", "sycamore", "lattice"}) {
    const MapResult a = map_qft(engine, 16);
    const MapResult b = map_qft(engine, 16);
    EXPECT_EQ(a.mapped.circuit.to_string(), b.mapped.circuit.to_string())
        << engine;
    EXPECT_EQ(a.mapped.initial, b.mapped.initial) << engine;
    EXPECT_EQ(a.mapped.final_mapping, b.mapped.final_mapping) << engine;
  }
}

}  // namespace
}  // namespace qfto
