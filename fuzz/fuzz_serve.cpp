// libFuzzer harness over the serve-protocol surface — the other half of the
// ROADMAP's fuzzing item (part (a): the request JSON grammar). Two modes,
// selected by the first input byte:
//
//   * raw (even first byte): the remaining bytes are one request line fed to
//     parse_serve_request verbatim. Properties: the parser never escapes an
//     exception, a rejected request always carries an error message, and the
//     echoed `id` token can always be embedded back into a response without
//     breaking JSON well-formedness (the id is the one piece of client text
//     a response repeats verbatim).
//
//   * structured (odd first byte): the remaining bytes index a dictionary of
//     protocol keys and values, building a request that usually gets past
//     the parser — this drives the full request loop (run_serve_loop over a
//     shared MappingService) deep into submit/cache/deadline handling with
//     bounded job sizes. Property: every response line is well-formed JSON
//     carrying the error-taxonomy vocabulary.
//
// Build modes mirror fuzz_qasm.cpp: QFTO_FUZZ=ON links libFuzzer
// (`./fuzz_serve fuzz/corpus_serve -max_total_time=30`);
// QFTO_FUZZ_REPLAY_MAIN compiles a plain main() for the fuzz_serve_corpus
// ctest entry that sweeps the seed corpus on every CI leg.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "service/mapping_service.hpp"
#include "service/serve.hpp"

namespace {

[[noreturn]] void violate(const char* what) {
  std::fprintf(stderr, "fuzz_serve: property violated: %s\n", what);
  std::abort();
}

/// Minimal structural JSON check (flat objects): braces balanced outside
/// strings, escapes honoured, exactly one top-level object.
bool json_well_formed(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int depth = 0;
  bool in_string = false, escaped = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth < 0) return false;
      if (depth == 0 && i + 1 != s.size()) return false;
    }
  }
  return depth == 0 && !in_string;
}

/// One small shared service: fuzz iterations reuse the worker pool (and its
/// cache — repeated requests exercise the hit path). Leaked deliberately so
/// no destructor races libFuzzer's exit path.
qfto::MappingService& shared_service() {
  static qfto::MappingService* service = [] {
    qfto::MappingService::Options options;
    options.num_threads = 2;
    options.cache_capacity = 64;
    return new qfto::MappingService(options);
  }();
  return *service;
}

void check_raw(const std::string& line) {
  qfto::ServeRequest req;
  try {
    req = qfto::parse_serve_request(line);
  } catch (...) {
    violate("parse_serve_request escaped an exception");
  }
  if (!req.ok && req.error.empty()) {
    violate("rejected request carries no error message");
  }
  if (req.id.empty()) violate("echo id may be \"null\", never empty");
  // The id token is echoed verbatim into every response; whatever the
  // parser accepted must embed cleanly.
  if (!json_well_formed(qfto::serve_inband_error(req.id, "shed", "probe"))) {
    violate("accepted id breaks response JSON well-formedness");
  }
}

// Dictionary-built requests: mostly-valid lines that reach past the parser
// into the queue/cache/deadline machinery. Values are bounded so no fuzz
// input can buy an expensive mapping job.
const char* const kKeys[] = {"engine", "n",       "m",     "id",
                             "priority", "deadline", "cache", "verify",
                             "trials", "seed",    "metrics", "strict_ie",
                             "device", "objective", "bogus_key"};
const char* const kValues[] = {"\"lnn\"",  "\"lattice\"", "\"nosuch\"",
                               "1",        "4",           "9",
                               "0",        "-3",          "true",
                               "false",    "null",        "0.001",
                               "1e9",      "\"x\\\"y\"",  "[1,2]",
                               "{}",       "\"\\u0041\"",
                               // Device-description payloads: a loadable
                               // inline document, a truncated one, and a
                               // missing file — all must answer in-band.
                               "\"{\\\"qubits\\\": 4, \\\"edges\\\": "
                               "[{\\\"a\\\": 0, \\\"b\\\": 1}, {\\\"a\\\": 1, "
                               "\\\"b\\\": 2}, {\\\"a\\\": 2, "
                               "\\\"b\\\": 3}]}\"",
                               "\"{\\\"qubits\\\": 4, \\\"edg\"",
                               "\"/nonexistent/device.json\"",
                               "\"fidelity\"", "\"depth\""};

void check_structured(const std::uint8_t* data, std::size_t size) {
  std::string line = "{";
  bool first = true;
  for (std::size_t i = 0; i + 1 < size && i < 16; i += 2) {
    if (!first) line += ",";
    first = false;
    line += std::string("\"") +
            kKeys[data[i] % (sizeof(kKeys) / sizeof(kKeys[0]))] + "\":";
    line += kValues[data[i + 1] % (sizeof(kValues) / sizeof(kValues[0]))];
  }
  line += "}\n";

  std::istringstream in(line);
  std::ostringstream out;
  qfto::run_serve_loop(in, out, shared_service());
  std::istringstream responses(out.str());
  std::string response;
  while (std::getline(responses, response)) {
    if (!json_well_formed(response)) {
      std::fprintf(stderr, "fuzz_serve: request %s response %s\n",
                   line.c_str(), response.c_str());
      violate("response line is not well-formed JSON");
    }
    if (response.find("\"ok\":") == std::string::npos) {
      violate("response line carries no ok field");
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  if (data[0] % 2 == 0) {
    check_raw(std::string(reinterpret_cast<const char*>(data + 1), size - 1));
  } else {
    check_structured(data + 1, size - 1);
  }
  return 0;
}

#ifdef QFTO_FUZZ_REPLAY_MAIN
#include <filesystem>
#include <fstream>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(p);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s CORPUS_DIR_OR_FILE...\n", argv[0]);
    return 2;
  }
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size());
  }
  std::printf("fuzz_serve: %zu corpus inputs replayed clean\n",
              inputs.size());
  return 0;
}
#endif  // QFTO_FUZZ_REPLAY_MAIN
