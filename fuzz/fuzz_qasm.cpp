// libFuzzer harness over the OpenQASM ingestion surface — the ROADMAP's
// "QASM round-trip fuzzing" item. Properties enforced on every input:
//   1. from_qasm / mapped_from_qasm never escape any exception other than
//      the documented std::invalid_argument (oversized literals, lone signs
//      and trailing garbage once leaked raw std::out_of_range /
//      std::invalid_argument out of std::stoll/std::stod — exactly the
//      defect class this harness exists to catch);
//   2. anything that parses round-trips exactly: to_qasm of the parsed
//      circuit reparses gate-for-gate (and mapping-for-mapping through the
//      mapped header comments).
//
// Build modes:
//   * QFTO_FUZZ=ON (clang): linked against libFuzzer (-fsanitize=fuzzer),
//     `./fuzz_qasm fuzz/corpus -max_total_time=30`.
//   * QFTO_FUZZ_REPLAY_MAIN: plain executable that replays corpus files or
//     directories through the same callback — this is the `fuzz_qasm_corpus`
//     ctest entry, so every CI leg (including ASan+UBSan) sweeps the seed
//     corpus per push without needing clang.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "qasm/qasm.hpp"

namespace {

/// Aborts loudly (the fuzzer treats it as a crash) with the violated
/// property named — distinguishable from a sanitizer report.
[[noreturn]] void violate(const char* what) {
  std::fprintf(stderr, "fuzz_qasm: property violated: %s\n", what);
  std::abort();
}

// The round-trip checks run OUTSIDE the parse's catch block: a circuit that
// parsed but then fails to reparse (or reparses differently) is a property
// violation and must crash the harness, never be mistaken for an ordinary
// rejection of the original input.

void check_round_trip(const qfto::Circuit& c) {
  qfto::Circuit back;
  try {
    back = qfto::from_qasm(qfto::to_qasm(c));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_qasm: reparse threw: %s\n", e.what());
    violate("emitted text of a parsed circuit failed to reparse");
  }
  if (back.num_qubits() != c.num_qubits() || back.size() != c.size()) {
    violate("round trip changed circuit shape");
  }
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!(back[i] == c[i])) violate("round trip changed a gate");
  }
}

void check_mapped_round_trip(const qfto::MappedCircuit& mc) {
  qfto::MappedCircuit back;
  try {
    back = qfto::mapped_from_qasm(qfto::to_qasm(mc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_qasm: mapped reparse threw: %s\n", e.what());
    violate("emitted text of a parsed mapped circuit failed to reparse");
  }
  if (back.initial != mc.initial || back.final_mapping != mc.final_mapping) {
    violate("round trip changed a mapping header");
  }
  if (back.circuit.size() != mc.circuit.size()) {
    violate("mapped round trip changed circuit shape");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  bool parsed = false;
  qfto::Circuit circuit;
  try {
    circuit = qfto::from_qasm(text);
    parsed = true;
  } catch (const std::invalid_argument&) {
    // The one documented failure mode: positioned parse error.
  }
  if (parsed) check_round_trip(circuit);

  bool mapped_parsed = false;
  qfto::MappedCircuit mapped;
  try {
    mapped = qfto::mapped_from_qasm(text);
    mapped_parsed = true;
  } catch (const std::invalid_argument&) {
  }
  if (mapped_parsed) check_mapped_round_trip(mapped);
  return 0;
}

#ifdef QFTO_FUZZ_REPLAY_MAIN
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(p);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s CORPUS_DIR_OR_FILE...\n", argv[0]);
    return 2;
  }
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size());
  }
  std::printf("fuzz_qasm: %zu corpus inputs replayed clean\n", inputs.size());
  return 0;
}
#endif  // QFTO_FUZZ_REPLAY_MAIN
