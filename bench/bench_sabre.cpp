// SABRE routing + DistanceOracle throughput at device scale — the router
// path the oracle redesign targets. Before the redesign, routing a handful
// of gates on an 8192-node target paid the full O(n²) distance matrix (256MB
// and seconds of BFS) before the first swap was scored; now the router
// touches only the rows its frontier pins.
//
// Families:
//   route_sparse/<topo>/nN — SABRE-route a K=32-gate random CX circuit on an
//                            N-node grid / full lattice-surgery graph (one
//                            trial, fixed seed). items = gates routed.
//   oracle_query/<topo>/nN — random-pair distance queries through the
//                            oracle's closed forms. items = queries.
//   oracle_rows/<topo>/nN  — full row materialization (what DistView pins
//                            per frontier node). items = row entries.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arch/grid.hpp"
#include "arch/lattice_surgery.hpp"
#include "baseline/sabre.hpp"
#include "common/prng.hpp"

namespace {

using namespace qfto;

std::int32_t side_for(int n) {
  std::int32_t m = 1;
  while (static_cast<std::int64_t>(m) * m < n) ++m;
  return m;
}

CouplingGraph build_topo(const std::string& topo, int n) {
  const std::int32_t m = side_for(n);
  if (topo == "grid") return make_grid(m, m);
  return make_lattice_surgery_full(m);
}

struct Case {
  CouplingGraph graph;
  Circuit logical;

  Case(const std::string& topo, int n)
      : graph(build_topo(topo, n)), logical(graph.num_qubits()) {
    // K random CX gates over the whole register: a sparse workload whose
    // routing cost is frontier-sized, not register-sized.
    Xoshiro256ss rng(0x5abe + n);
    const std::int32_t q = graph.num_qubits();
    for (int k = 0; k < 32; ++k) {
      const auto a = static_cast<std::int32_t>(rng.uniform(q));
      std::int32_t b = a;
      while (b == a) b = static_cast<std::int32_t>(rng.uniform(q));
      logical.append(Gate::cnot(a, b));
    }
  }
};

Case& get_case(const std::string& topo, int n) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<Case>> cache;
  std::lock_guard<std::mutex> lock(mu);
  const std::string key = topo + "/" + std::to_string(n);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  return *cache.emplace(key, std::make_unique<Case>(topo, n)).first->second;
}

void BM_RouteSparse(benchmark::State& state, const std::string& topo, int n) {
  Case& c = get_case(topo, n);
  SabreOptions opts;
  opts.trials = 1;
  opts.seed = 0xfeed;
  std::int64_t emitted = 0;
  for (auto _ : state) {
    const MappedCircuit mc = sabre_route(c.logical, c.graph, opts);
    emitted = static_cast<std::int64_t>(mc.circuit.size());
    benchmark::DoNotOptimize(mc.final_mapping.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.logical.size()));
  state.counters["hw_gates"] = static_cast<double>(emitted);
}

void BM_OracleQuery(benchmark::State& state, const std::string& topo, int n) {
  Case& c = get_case(topo, n);
  const DistanceOracle& oracle = c.graph.distances();
  Xoshiro256ss rng(0xd157);
  const std::int32_t q = c.graph.num_qubits();
  std::int64_t sum = 0;
  for (auto _ : state) {
    const auto a = static_cast<std::int32_t>(rng.uniform(q));
    const auto b = static_cast<std::int32_t>(rng.uniform(q));
    sum += oracle.distance(a, b);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}

void BM_OracleRows(benchmark::State& state, const std::string& topo, int n) {
  Case& c = get_case(topo, n);
  const DistanceOracle& oracle = c.graph.distances();
  Xoshiro256ss rng(0x505);
  const std::int32_t q = c.graph.num_qubits();
  for (auto _ : state) {
    const auto a = static_cast<std::int32_t>(rng.uniform(q));
    const DistanceOracle::RowPtr row = oracle.row(a);
    benchmark::DoNotOptimize(row->data());
  }
  state.SetItemsProcessed(state.iterations() * c.graph.num_qubits());
}

const int register_all = [] {
  using Fn = void (*)(benchmark::State&, const std::string&, int);
  const std::pair<const char*, Fn> families[] = {
      {"route_sparse", BM_RouteSparse},
      {"oracle_query", BM_OracleQuery},
      {"oracle_rows", BM_OracleRows},
  };
  for (const auto& [family, fn] : families) {
    for (const char* topo : {"grid", "lattice_full"}) {
      for (const int n : {1024, 4096, 8192}) {
        const std::string name = std::string(family) + "/" + topo + "/n" +
                                 std::to_string(n);
        const std::string topo_s = topo;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [fn, topo_s, n](benchmark::State& st) { fn(st, topo_s, n); })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  return 0;
}();

}  // namespace
