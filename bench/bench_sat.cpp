// SATMAP search-driver comparison: monolithic re-encode-per-probe vs the
// incremental single-instance driver (assumption-gated horizons, retained
// learnt clauses, assumption-tightened SWAP counter), on QFT-{4..8} x
// {line, 2xK grid}.
//
// A structural note the numbers only make sense with: for QFT (and every
// routing-pressure family we tried — mirrored pairings, hub chains, rings),
// the strict-DAG critical path is a *tight* horizon bound: the first
// deepening probe at T = lower is already SAT, so the T-deepening loop
// contributes exactly one probe and the iterated probe sequence of a SATMAP
// run is the SWAP-minimization descent at fixed T (budget = model swaps - 1
// until UNSAT proves the minimum). That descent is where the incremental
// driver's reuse pays: the monolithic baseline re-encodes the full
// time-expanded instance per budget probe and re-learns it from scratch,
// the incremental driver pays the encoding once and carries learnt clauses
// and saved phases through every probe.
//
// Families:
//   satmap_depth_probe/<arch>_<driver>/n — minimize_swaps off: encode + the
//       single depth-feasibility probe. Isolates encoding cost; both
//       drivers do the same solver work here.
//   satmap_route/<arch>_<driver>/n — the full production search (depth
//       probe + SWAP-minimization descent): the end-to-end comparison.
//
// Counters (per run): sat_conflicts, sat_decisions, sat_propagations,
// sat_clauses (database size, summed over probes on the monolithic path —
// the re-encode overhead made visible), solve_calls, solved/layers/swaps.
// Runs are pinned to Iterations(1): each iteration is a whole SAT search,
// and the counters, not single-shot wall time, are the stable signal.
//
// QFTO_BENCH_SAT_BUDGET (seconds, default 60) bounds every run; a TLE shows
// up as solved=0 rather than a hung CI leg.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "arch/grid.hpp"
#include "arch/line.hpp"
#include "baseline/satmap.hpp"
#include "circuit/qft_spec.hpp"

namespace {

using namespace qfto;

double budget_seconds() {
  const char* v = std::getenv("QFTO_BENCH_SAT_BUDGET");
  return v != nullptr ? std::atof(v) : 60.0;
}

CouplingGraph arch_graph(const std::string& kind, std::int32_t n) {
  if (kind == "line") return make_line(n);
  return make_grid(2, (n + 1) / 2);  // smallest 2xK grid holding n qubits
}

void report(benchmark::State& state, const SatmapResult& r) {
  state.counters["sat_conflicts"] = static_cast<double>(r.stats.conflicts);
  state.counters["sat_decisions"] = static_cast<double>(r.stats.decisions);
  state.counters["sat_propagations"] =
      static_cast<double>(r.stats.propagations);
  state.counters["sat_clauses"] = static_cast<double>(r.stats.clauses);
  state.counters["solve_calls"] = static_cast<double>(r.stats.solve_calls);
  state.counters["solved"] = r.solved ? 1.0 : 0.0;
  state.counters["layers"] = static_cast<double>(r.layers);
  state.counters["swaps"] = static_cast<double>(r.swaps);
}

void satmap_bench(benchmark::State& state, const char* kind, bool incremental,
                  bool minimize) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const CouplingGraph g = arch_graph(kind, n);
  SatmapResult last;
  for (auto _ : state) {
    SatmapOptions opts;
    opts.incremental = incremental;
    opts.minimize_swaps = minimize;
    opts.time_budget_seconds = budget_seconds();
    last = satmap_route(qft_logical(n), g, opts);
  }
  report(state, last);
}

void satmap_depth_probe(benchmark::State& state, const char* kind,
                        bool incremental) {
  satmap_bench(state, kind, incremental, /*minimize=*/false);
}

void satmap_route_full(benchmark::State& state, const char* kind,
                       bool incremental) {
  satmap_bench(state, kind, incremental, /*minimize=*/true);
}

#define QFTO_SAT_BENCH(fn, arch, range_lo, range_hi)                     \
  BENCHMARK_CAPTURE(fn, arch##_monolithic, #arch, false)                 \
      ->DenseRange(range_lo, range_hi)                                   \
      ->Iterations(1)                                                    \
      ->Unit(benchmark::kMillisecond)                                    \
      ->UseRealTime();                                                   \
  BENCHMARK_CAPTURE(fn, arch##_incremental, #arch, true)                 \
      ->DenseRange(range_lo, range_hi)                                   \
      ->Iterations(1)                                                    \
      ->Unit(benchmark::kMillisecond)                                    \
      ->UseRealTime();

QFTO_SAT_BENCH(satmap_depth_probe, line, 4, 8)
QFTO_SAT_BENCH(satmap_depth_probe, grid, 4, 8)
QFTO_SAT_BENCH(satmap_route_full, line, 4, 8)
QFTO_SAT_BENCH(satmap_route_full, grid, 4, 6)

#undef QFTO_SAT_BENCH

}  // namespace
