// SATMAP search-driver comparison: monolithic re-encode-per-probe vs the
// incremental single-instance driver (assumption-gated horizons, retained
// learnt clauses, assumption-tightened SWAP counter), on QFT-{4..8} x
// {line, 2xK grid}.
//
// A structural note the numbers only make sense with: for QFT (and every
// routing-pressure family we tried — mirrored pairings, hub chains, rings),
// the strict-DAG critical path is a *tight* horizon bound: the first
// deepening probe at T = lower is already SAT, so the T-deepening loop
// contributes exactly one probe and the iterated probe sequence of a SATMAP
// run is the SWAP-minimization descent at fixed T (budget = model swaps - 1
// until UNSAT proves the minimum). That descent is where the incremental
// driver's reuse pays: the monolithic baseline re-encodes the full
// time-expanded instance per budget probe and re-learns it from scratch,
// the incremental driver pays the encoding once and carries learnt clauses
// and saved phases through every probe.
//
// Families:
//   satmap_depth_probe/<arch>_<driver>/n — minimize_swaps off: encode + the
//       single depth-feasibility probe. Isolates encoding cost; both
//       drivers do the same solver work here.
//   satmap_route/<arch>_<driver>/n — the full production search (depth
//       probe + SWAP-minimization descent): the end-to-end comparison.
//
// Counters (per run): sat_conflicts, sat_decisions, sat_propagations,
// sat_clauses (database size, summed over probes on the monolithic path —
// the re-encode overhead made visible), solve_calls, solved/layers/swaps.
// Runs are pinned to Iterations(1): each iteration is a whole SAT search,
// and the counters, not single-shot wall time, are the stable signal.
//
// QFTO_BENCH_SAT_BUDGET (seconds, default 60) bounds every run; a TLE shows
// up as solved=0 rather than a hung CI leg.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "arch/grid.hpp"
#include "arch/line.hpp"
#include "baseline/satmap.hpp"
#include "circuit/qft_spec.hpp"

namespace {

using namespace qfto;

double budget_seconds() {
  const char* v = std::getenv("QFTO_BENCH_SAT_BUDGET");
  return v != nullptr ? std::atof(v) : 60.0;
}

CouplingGraph arch_graph(const std::string& kind, std::int32_t n) {
  if (kind == "line") return make_line(n);
  return make_grid(2, (n + 1) / 2);  // smallest 2xK grid holding n qubits
}

void report(benchmark::State& state, const SatmapResult& r) {
  state.counters["sat_conflicts"] = static_cast<double>(r.stats.conflicts);
  state.counters["sat_decisions"] = static_cast<double>(r.stats.decisions);
  state.counters["sat_propagations"] =
      static_cast<double>(r.stats.propagations);
  state.counters["sat_clauses"] = static_cast<double>(r.stats.clauses);
  state.counters["solve_calls"] = static_cast<double>(r.stats.solve_calls);
  state.counters["solved"] = r.solved ? 1.0 : 0.0;
  state.counters["layers"] = static_cast<double>(r.layers);
  state.counters["swaps"] = static_cast<double>(r.swaps);
}

void satmap_bench(benchmark::State& state, const char* kind, bool incremental,
                  bool minimize) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const CouplingGraph g = arch_graph(kind, n);
  SatmapResult last;
  for (auto _ : state) {
    SatmapOptions opts;
    opts.incremental = incremental;
    opts.minimize_swaps = minimize;
    opts.time_budget_seconds = budget_seconds();
    last = satmap_route(qft_logical(n), g, opts);
  }
  report(state, last);
}

void satmap_depth_probe(benchmark::State& state, const char* kind,
                        bool incremental) {
  satmap_bench(state, kind, incremental, /*minimize=*/false);
}

void satmap_route_full(benchmark::State& state, const char* kind,
                       bool incremental) {
  satmap_bench(state, kind, incremental, /*minimize=*/true);
}

#define QFTO_SAT_BENCH(fn, arch, range_lo, range_hi)                     \
  BENCHMARK_CAPTURE(fn, arch##_monolithic, #arch, false)                 \
      ->DenseRange(range_lo, range_hi)                                   \
      ->Iterations(1)                                                    \
      ->Unit(benchmark::kMillisecond)                                    \
      ->UseRealTime();                                                   \
  BENCHMARK_CAPTURE(fn, arch##_incremental, #arch, true)                 \
      ->DenseRange(range_lo, range_hi)                                   \
      ->Iterations(1)                                                    \
      ->Unit(benchmark::kMillisecond)                                    \
      ->UseRealTime();

QFTO_SAT_BENCH(satmap_depth_probe, line, 4, 8)
QFTO_SAT_BENCH(satmap_depth_probe, grid, 4, 8)
QFTO_SAT_BENCH(satmap_route_full, line, 4, 8)
QFTO_SAT_BENCH(satmap_route_full, grid, 4, 6)

#undef QFTO_SAT_BENCH

// Portfolio racing family: the full production search decided by L
// diversified cdcl lanes (L=1 is the bare incremental driver — the baseline
// the +<10% wall-clock acceptance bar compares against). items = portfolio-
// level probes, so items_per_second is probe throughput: the series the
// perf-trend guard watches (satmap_portfolio_ prefix, loose threshold — a
// single SAT search is noisy).
void satmap_portfolio(benchmark::State& state, const char* kind,
                      std::int32_t lanes) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const CouplingGraph g = arch_graph(kind, n);
  SatmapResult last;
  for (auto _ : state) {
    SatmapOptions opts;
    opts.time_budget_seconds = budget_seconds();
    opts.portfolio = lanes > 1;
    opts.lanes = lanes;
    last = satmap_route(qft_logical(n), g, opts);
  }
  report(state, last);
  state.counters["lanes"] = static_cast<double>(lanes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          last.stats.solve_calls);
}

// Grid stops at 6 for the same reason satmap_route_full does: QFT-8 on the
// 2x4 grid is TLE territory at the CI budget, and a budget-truncated SWAP
// descent guards nothing stable.
#define QFTO_SAT_PORTFOLIO_BENCH(arch, lanes, lo, hi)                    \
  BENCHMARK_CAPTURE(satmap_portfolio, arch##_lanes##lanes, #arch, lanes) \
      ->DenseRange(lo, hi, 2)                                            \
      ->Iterations(1)                                                    \
      ->Unit(benchmark::kMillisecond)                                    \
      ->UseRealTime();

QFTO_SAT_PORTFOLIO_BENCH(line, 1, 6, 8)
QFTO_SAT_PORTFOLIO_BENCH(line, 2, 6, 8)
QFTO_SAT_PORTFOLIO_BENCH(line, 4, 6, 8)
QFTO_SAT_PORTFOLIO_BENCH(grid, 1, 6, 6)
QFTO_SAT_PORTFOLIO_BENCH(grid, 2, 6, 6)
QFTO_SAT_PORTFOLIO_BENCH(grid, 4, 6, 6)

#undef QFTO_SAT_PORTFOLIO_BENCH

}  // namespace
