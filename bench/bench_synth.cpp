// Program-synthesis cost (Appendices 5 & 7): time to enumerate the affine
// hole space against the all-pairs-meet specification, for both cross-link
// families. The search is milliseconds — the paper's point that structured
// templates tame the otherwise huge mapping search space.
#include <benchmark/benchmark.h>

#include "synth/inter_unit_spec.hpp"

namespace {

using namespace qfto;

void BM_SynthSycamorePattern(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  const Sketch sketch = make_travel_path_sketch();
  for (auto _ : state) {
    auto sols = sketch.solve_all([&](const HoleAssignment& a) {
      return travel_path_coverage(L, CrossLinkFamily::kOffsetByOne,
                                  decode_travel_path(a)) >= 1.0;
    });
    benchmark::DoNotOptimize(sols.size());
  }
  state.counters["line_len"] = L;
}
BENCHMARK(BM_SynthSycamorePattern)->Arg(8)->Arg(16)->Arg(32);

void BM_SynthGridPattern(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  const Sketch sketch = make_travel_path_sketch();
  for (auto _ : state) {
    auto sols = sketch.solve_all([&](const HoleAssignment& a) {
      return travel_path_coverage(L, CrossLinkFamily::kEqualPosition,
                                  decode_travel_path(a)) >= 1.0;
    });
    benchmark::DoNotOptimize(sols.size());
  }
  state.counters["line_len"] = L;
}
BENCHMARK(BM_SynthGridPattern)->Arg(8)->Arg(16)->Arg(32);

void BM_CoverageCheckOnly(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  TravelPathParams p;
  p.phase_b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        travel_path_coverage(L, CrossLinkFamily::kEqualPosition, p));
  }
  state.counters["line_len"] = L;
}
BENCHMARK(BM_CoverageCheckOnly)->Arg(16)->Arg(64);

}  // namespace
