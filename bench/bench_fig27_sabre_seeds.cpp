// Fig. 27 (Appendix 6): randomness of SABRE's output. QFT-4 on a 2x2 grid,
// ten seeds: initial mapping, gate order, depth and SWAP count all vary —
// the paper's argument for why heuristic routing gives no consistency
// guarantee across runs, unlike an analytical kernel.
#include <set>

#include "arch/grid.hpp"
#include "baseline/sabre.hpp"
#include "bench_common.hpp"
#include "circuit/qft_spec.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  const CouplingGraph g = make_grid(2, 2);
  const Circuit qft = qft_logical(4);
  TablePrinter table({"seed", "depth", "#SWAP", "initial mapping"});
  std::set<std::string> distinct_circuits;
  std::set<Cycle> depths;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const MappedCircuit mc = sabre_route_single(qft, g, seed);
    const Measured m = measure(mc, g, 0.0);
    depths.insert(m.depth);
    distinct_circuits.insert(mc.circuit.to_string());
    std::string mapping;
    for (std::size_t l = 0; l < mc.initial.size(); ++l) {
      mapping += "q" + std::to_string(l) + ">Q" +
                 std::to_string(mc.initial[l]) + " ";
    }
    table.add_row({std::to_string(seed), std::to_string(m.depth),
                   std::to_string(m.swaps), mapping});
  }
  std::printf("Fig. 27 — SABRE seed randomness (QFT-4, 2x2 grid)\n\n%s\n",
              table.render().c_str());
  std::printf("distinct circuits over 10 seeds: %zu; distinct depths: %zu\n",
              distinct_circuits.size(), depths.size());

  // Contrast: the analytical engines behind the pipeline are seed-free —
  // ten runs, one distinct circuit.
  std::set<std::string> ours;
  for (int run = 0; run < 10; ++run) {
    ours.insert(map_qft("sycamore", 4).mapped.circuit.to_string());
  }
  std::printf("our `sycamore` engine, 10 runs: %zu distinct circuit(s)\n",
              ours.size());
  return 0;
}
