// Extension study: Coppersmith's approximate QFT (the paper's reference [9])
// applied to our mapped kernels. Pruning rotations below pi/2^k deletes
// CPHASEs from the hardware circuit without touching SWAPs, so hardware
// compliance is preserved; this quantifies the depth/gate savings and the
// state fidelity per cutoff.
#include <cmath>

#include "bench_common.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/transforms.hpp"
#include "common/prng.hpp"
#include "sim/statevector.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  const std::int32_t n = 16;
  const MappedCircuit full = map_qft("lnn", n).mapped;

  // Reference state for fidelity.
  Xoshiro256ss rng(11);
  std::vector<Amplitude> psi(std::uint64_t{1} << n);
  double n2 = 0;
  for (auto& a : psi) {
    a = {rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
    n2 += std::norm(a);
  }
  for (auto& a : psi) a /= std::sqrt(n2);
  StateVector exact(n);
  exact.amplitudes() = psi;
  exact.apply(full.circuit);

  TablePrinter t({"cutoff k", "CPHASE kept", "2q gates", "depth", "fidelity"});
  for (std::int32_t k : {2, 3, 4, 5, 6, 8, 15}) {
    const Circuit pruned = prune_small_rotations(full.circuit, k);
    const GateCounts gc = count_gates(pruned);
    StateVector approx(n);
    approx.amplitudes() = psi;
    approx.apply(pruned);
    const double fid = StateVector::overlap(exact, approx);
    t.add_row({std::to_string(k), std::to_string(gc.cphase),
               std::to_string(gc.two_qubit()),
               std::to_string(circuit_depth(pruned)),
               fmt_double(fid, 6)});
  }
  std::printf("Approximate QFT on the mapped LNN kernel, n=%d (k=%d is "
              "exact)\n\n%s\n",
              n, n - 1, t.render().c_str());
  return 0;
}
