// Calibrated-device routing + Coppersmith AQFT pruning, as Google-Benchmark
// families so the Release CI leg uploads BENCH_aqft.json and the perf-trend
// guard tracks the fidelity-aware router.
//
// Families:
//   fidelity_route/<obj>/N — map QFT(N) with SABRE onto a calibrated 4x4
//                            grid device carrying three bad couplers, under
//                            the depth vs fidelity objective. The
//                            log10_fidelity counter is the comparison: the
//                            fidelity objective must win expected
//                            log-success on this device; depth shows what it
//                            pays for that. items = gates routed.
//   aqft_prune/K           — prune rotations below pi/2^K from the mapped
//                            LNN QFT-16 kernel (the paper's reference [9]);
//                            counters report the surviving CPHASEs and
//                            depth. items = gates scanned.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "arch/device_model.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/stats.hpp"
#include "circuit/transforms.hpp"
#include "pipeline/mapper_pipeline.hpp"

namespace {

using namespace qfto;

// A 4x4 grid whose (5,6), (6,10) and (9,10) couplers are an order of
// magnitude worse than the rest — routes through the centre cost real
// fidelity, so the two objectives disagree.
std::shared_ptr<const DeviceModel> noisy_grid16() {
  static const std::shared_ptr<const DeviceModel> dev = [] {
    std::string json =
        "{\"name\": \"grid16-noisy\", \"qubits\": 16,"
        " \"error_1q\": 1.5e-4, \"coherence_cycles\": 20000, \"edges\": [";
    bool first = true;
    auto edge = [&](int a, int b) {
      const bool bad = (a == 5 && b == 6) || (a == 6 && b == 10) ||
                       (a == 9 && b == 10);
      if (!first) json += ",";
      first = false;
      json += "{\"a\": " + std::to_string(a) +
              ", \"b\": " + std::to_string(b) +
              ", \"error\": " + (bad ? "6e-2" : "5e-3") + "}";
    };
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        const int q = r * 4 + c;
        if (c + 1 < 4) edge(q, q + 1);
        if (r + 1 < 4) edge(q, q + 4);
      }
    }
    json += "]}";
    return std::make_shared<const DeviceModel>(DeviceModel::from_json(json));
  }();
  return dev;
}

void fidelity_route(benchmark::State& state, Objective objective) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  MapOptions opts;
  opts.device = noisy_grid16();
  opts.objective = objective;
  MapResult result;
  for (auto _ : state) {
    result = map_qft("sabre", n, opts);
    // Not DoNotOptimize(result.log10_fidelity): the "+m,r" lvalue
    // constraint makes this gcc write a stale register back over the
    // double, corrupting the counter read below.
    benchmark::ClobberMemory();
  }
  state.counters["log10_fidelity"] = result.log10_fidelity;
  state.counters["depth"] = static_cast<double>(result.check.depth);
  state.counters["swaps"] = static_cast<double>(result.check.counts.swap);
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(result.mapped.circuit.size()));
}

void fidelity_route_depth(benchmark::State& state) {
  fidelity_route(state, Objective::kDepth);
}
void fidelity_route_fidelity(benchmark::State& state) {
  fidelity_route(state, Objective::kFidelity);
}

BENCHMARK(fidelity_route_depth)
    ->Name("fidelity_route/depth")
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(fidelity_route_fidelity)
    ->Name("fidelity_route/fidelity")
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void aqft_prune(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const MappedCircuit full = map_qft("lnn", 16).mapped;
  Circuit pruned;
  for (auto _ : state) {
    pruned = prune_small_rotations(full.circuit, k);
    benchmark::DoNotOptimize(pruned);
  }
  const GateCounts gc = count_gates(pruned);
  state.counters["cphase_kept"] = static_cast<double>(gc.cphase);
  state.counters["depth"] = static_cast<double>(circuit_depth(pruned));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(full.circuit.size()));
}

BENCHMARK(aqft_prune)->Name("aqft_prune")->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMicrosecond);

}  // namespace
