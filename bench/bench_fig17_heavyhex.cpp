// Fig. 17: depth (a) and #SWAP (b) versus qubit count on the heavy-hex
// backend — our approach vs SABRE, N = 10..100 in steps of 10. Expected
// shape: both metrics linear-ish for ours (depth ~5N, SWAPs ~N^2/2 crossing
// count), SABRE above ours and growing faster, with depth reduced to roughly
// a quarter of SABRE's (§7.1.2).
#include "arch/heavy_hex.hpp"
#include "bench_common.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  const long sabre_trials = env_long("QFTO_SABRE_TRIALS", 3);
  TablePrinter table({"N", "OursDepth", "SabreDepth", "DepthRatio",
                      "Ours#SWAP", "Sabre#SWAP", "SwapRatio", "OursCT(s)",
                      "SabreCT(s)"});
  double depth_ratio_sum = 0, swap_ratio_sum = 0;
  int count = 0;
  for (std::int32_t n = 10; n <= 100; n += 10) {
    const Measured mo = run_engine("heavy_hex", n);
    const double ours_ct = mo.seconds;

    // SABRE routes on the same heavy-hex graph via the target override.
    const CouplingGraph g = make_heavy_hex(heavy_hex_layout(n));
    MapOptions sb;
    sb.sabre.trials = static_cast<std::int32_t>(sabre_trials);
    sb.target = &g;
    const Measured ms = run_engine("sabre", n, sb);

    const double dr = static_cast<double>(mo.depth) / ms.depth;
    const double sr = static_cast<double>(mo.swaps) / ms.swaps;
    depth_ratio_sum += dr;
    swap_ratio_sum += sr;
    ++count;
    table.add_row({std::to_string(n), std::to_string(mo.depth),
                   std::to_string(ms.depth), fmt_double(dr, 2),
                   std::to_string(mo.swaps), std::to_string(ms.swaps),
                   fmt_double(sr, 2), fmt_double(ours_ct, 3),
                   fmt_double(ms.seconds, 2)});
  }
  std::printf("Fig. 17 — heavy-hex: ours vs SABRE (paper: our depth ~24%% of "
              "SABRE's, our SWAPs ~48%% of SABRE's)\n\n%s\n",
              table.render().c_str());
  std::printf("mean depth ratio ours/SABRE = %.2f, mean SWAP ratio = %.2f\n",
              depth_ratio_sum / count, swap_ratio_sum / count);
  return 0;
}
