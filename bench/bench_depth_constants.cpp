// The linear-depth guarantee (§4, §5, §6): depth / N for every backend
// across a wide size sweep, all through the MapperPipeline registry (each
// engine is checked under its native latency model). Paper constants: LNN
// 4N, heavy-hex 5N (special case; <=6N general), Sycamore 7N + O(sqrt N),
// lattice surgery 5N + O(1) weighted. Our closed-loop constants are reported
// in EXPERIMENTS.md; the point of this table is that depth/N converges to a
// constant (linearity), which no general-purpose router achieves.
#include "bench_common.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  TablePrinter t({"backend", "N", "depth", "depth/N"});
  struct Sweep {
    const char* label;
    const char* engine;
    std::vector<std::int32_t> sizes;
  };
  const std::vector<Sweep> sweeps = {
      {"LNN", "lnn", {64, 128, 256, 512, 1024}},
      {"Heavy-hex", "heavy_hex", {100, 200, 400, 600, 1000}},
      {"Sycamore", "sycamore", {64, 144, 256, 576, 1024}},
      {"Lattice(w)", "lattice", {100, 256, 576, 1024}},
  };
  for (const auto& sweep : sweeps) {
    for (const std::int32_t n : sweep.sizes) {
      const Measured m = run_engine(sweep.engine, n);
      t.add_row({sweep.label, std::to_string(n), std::to_string(m.depth),
                 fmt_double(static_cast<double>(m.depth) / n, 3)});
    }
  }
  std::printf("Depth constants — linearity of the guaranteed solutions "
              "(paper: 4N LNN, 5N heavy-hex, 7N Sycamore, 5N lattice)\n\n%s\n",
              t.render().c_str());
  return 0;
}
