// The linear-depth guarantee (§4, §5, §6): depth / N for every backend
// across a wide size sweep. Paper constants: LNN 4N, heavy-hex 5N (special
// case; <=6N general), Sycamore 7N + O(sqrt N), lattice surgery 5N + O(1)
// weighted. Our closed-loop constants are reported in EXPERIMENTS.md; the
// point of this table is that depth/N converges to a constant (linearity),
// which no general-purpose router achieves.
#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/line.hpp"
#include "arch/sycamore.hpp"
#include "bench_common.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lattice_mapper.hpp"
#include "mapper/lnn_mapper.hpp"
#include "mapper/sycamore_mapper.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  {
    TablePrinter t({"backend", "N", "depth", "depth/N"});
    for (std::int32_t n : {64, 128, 256, 512, 1024}) {
      const CouplingGraph g = make_line(n);
      const Measured m = measure(map_qft_lnn(n), g, 0.0);
      t.add_row({"LNN", std::to_string(n), std::to_string(m.depth),
                 fmt_double(static_cast<double>(m.depth) / n, 3)});
    }
    for (std::int32_t n : {100, 200, 400, 600, 1000}) {
      const CouplingGraph g = make_heavy_hex(heavy_hex_layout(n));
      const Measured m = measure(map_qft_heavy_hex(n), g, 0.0);
      t.add_row({"Heavy-hex", std::to_string(n), std::to_string(m.depth),
                 fmt_double(static_cast<double>(m.depth) / n, 3)});
    }
    for (std::int32_t mm : {8, 12, 16, 24, 32}) {
      const CouplingGraph g = make_sycamore(mm);
      const Measured m = measure(map_qft_sycamore(mm), g, 0.0);
      t.add_row({"Sycamore", std::to_string(mm * mm),
                 std::to_string(m.depth),
                 fmt_double(static_cast<double>(m.depth) / (mm * mm), 3)});
    }
    for (std::int32_t mm : {10, 16, 24, 32}) {
      const CouplingGraph g = make_lattice_surgery_rotated(mm);
      const Measured m =
          measure(map_qft_lattice(mm), g, 0.0, lattice_latency(g));
      t.add_row({"Lattice(w)", std::to_string(mm * mm),
                 std::to_string(m.depth),
                 fmt_double(static_cast<double>(m.depth) / (mm * mm), 3)});
    }
    std::printf("Depth constants — linearity of the guaranteed solutions "
                "(paper: 4N LNN, 5N heavy-hex, 7N Sycamore, 5N lattice)\n\n%s\n",
                t.render().c_str());
  }
  return 0;
}
