// Shared helpers for the table-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/latency_model.hpp"
#include "circuit/stats.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "verify/qft_checker.hpp"

namespace qfto::bench {

struct Measured {
  Cycle depth = 0;
  std::int64_t swaps = 0;
  double seconds = 0.0;
  bool ok = false;
};

/// Checks a mapped circuit and packages the paper's metrics. Aborts the
/// process on verification failure: a benchmark must never report numbers
/// for an invalid circuit.
inline Measured measure(const MappedCircuit& mc, const CouplingGraph& g,
                        double seconds,
                        const LatencyFn& latency = unit_latency) {
  const auto r = check_qft_mapping(mc, g, latency);
  if (!r.ok) {
    std::fprintf(stderr, "BENCH ABORT — invalid mapping on %s: %s\n",
                 g.name().c_str(), r.error.c_str());
    std::abort();
  }
  return Measured{r.depth, r.counts.swap, seconds, true};
}

/// Runs a registered pipeline engine end-to-end (map + native-latency check)
/// and packages the paper's metrics; `seconds` reports mapping time only.
/// Aborts on verification failure, like measure().
inline Measured run_engine(const std::string& engine, std::int32_t n,
                           MapOptions opts = {}) {
  opts.verify = true;
  const MapResult r = map_qft(engine, n, opts);
  if (!r.check.ok) {
    std::fprintf(stderr, "BENCH ABORT — invalid %s mapping on %s: %s\n",
                 engine.c_str(), r.graph.name().c_str(),
                 r.check.error.c_str());
    std::abort();
  }
  return Measured{r.check.depth, r.check.counts.swap, r.timings.map_seconds,
                  true};
}

/// Environment-tunable knob, e.g. SATMAP budget or SABRE trial count.
inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

}  // namespace qfto::bench
