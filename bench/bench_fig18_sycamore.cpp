// Fig. 18: depth (a) and #SWAP (b) versus qubit count on Google Sycamore —
// our approach vs SABRE, m = 2..10 (N = 4..100). Paper shape: our depth
// about half of SABRE's at 100 qubits, ~20% fewer SWAPs, with SABRE ahead
// only at the very smallest sizes.
#include "arch/sycamore.hpp"
#include "bench_common.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  const long sabre_trials = env_long("QFTO_SABRE_TRIALS", 3);
  TablePrinter table({"m", "N", "OursDepth", "SabreDepth", "DepthRatio",
                      "Ours#SWAP", "Sabre#SWAP", "SwapRatio", "OursCT(s)",
                      "SabreCT(s)"});
  for (std::int32_t m = 2; m <= 10; m += 2) {
    const std::int32_t n = m * m;
    const Measured mo = run_engine("sycamore", n);
    const double ours_ct = mo.seconds;

    // SABRE routes on the same Sycamore graph via the target override.
    const CouplingGraph g = make_sycamore(m);
    MapOptions sb;
    sb.sabre.trials = static_cast<std::int32_t>(sabre_trials);
    sb.target = &g;
    const Measured ms = run_engine("sabre", n, sb);

    table.add_row({std::to_string(m), std::to_string(n),
                   std::to_string(mo.depth), std::to_string(ms.depth),
                   fmt_double(static_cast<double>(mo.depth) / ms.depth, 2),
                   std::to_string(mo.swaps), std::to_string(ms.swaps),
                   fmt_double(static_cast<double>(mo.swaps) / ms.swaps, 2),
                   fmt_double(ours_ct, 3), fmt_double(ms.seconds, 2)});
  }
  std::printf("Fig. 18 — Sycamore: ours vs SABRE (paper: ~50%% lower depth, "
              "~20%% fewer SWAPs at 100 qubits)\n\n%s\n",
              table.render().c_str());
  return 0;
}
