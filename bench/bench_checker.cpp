// Checker/scheduler throughput on mapped QFT circuits — the verify hot path
// the ROADMAP flags (QFT-1024 lattice verification dominates map time).
//
// Families, each on QFT-{64,256,1024,2048} x {lnn, heavy_hex, sycamore,
// lattice}:
//   verify_seed        — pre-PR checker, faithfully replicated: linear
//                        neighbor scan for adjacency, lower_bound over a
//                        sorted edge list for link types, std::function
//                        latency, and separate replay/schedule/count passes.
//   verify_replay      — the in-library legacy algorithm
//                        (check_qft_mapping_replay) on the O(1) graph.
//   verify_incremental — the streaming IncrementalQftChecker fused pass.
//   schedule_fn        — schedule_asap through a std::function latency.
//   schedule_model     — schedule_asap devirtualized through LatencyModel.
//
// Throughput is reported as items/sec where an item is one gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/latency_model.hpp"
#include "circuit/qft_spec.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/stats.hpp"
#include "pipeline/mapper_pipeline.hpp"
#include "verify/mapping_tracker.hpp"
#include "verify/qft_checker.hpp"

namespace {

using namespace qfto;

// ------------------------------------------------- pre-PR graph queries --

std::int64_t pack_edge(PhysicalQubit a, PhysicalQubit b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::int64_t>(a) << 32) | static_cast<std::uint32_t>(b);
}

/// The seed CouplingGraph's query structures: per-node neighbor vectors
/// scanned with std::find, and a sorted packed-edge list binary-searched for
/// link types. Rebuilt here so the pre-PR cost stays measurable after the
/// graph itself moved to O(1) lookups.
struct SeedGraphQueries {
  std::int32_t n = 0;
  std::string name;
  std::vector<std::vector<PhysicalQubit>> adj;
  std::vector<std::pair<std::int64_t, LinkType>> edge_types;  // sorted

  explicit SeedGraphQueries(const CouplingGraph& g)
      : n(g.num_qubits()), name(g.name()), adj(g.num_qubits()) {
    for (PhysicalQubit a = 0; a < n; ++a) {
      adj[a] = g.neighbors(a);
      for (PhysicalQubit b : adj[a]) {
        if (a < b) edge_types.push_back({pack_edge(a, b), *g.link_type(a, b)});
      }
    }
    std::sort(edge_types.begin(), edge_types.end());
  }

  bool adjacent(PhysicalQubit a, PhysicalQubit b) const {
    if (a < 0 || b < 0 || a >= n || b >= n) return false;
    const auto& na = adj[a];
    return std::find(na.begin(), na.end(), b) != na.end();
  }

  std::optional<LinkType> link_type(PhysicalQubit a, PhysicalQubit b) const {
    const auto key = pack_edge(a, b);
    auto it = std::lower_bound(
        edge_types.begin(), edge_types.end(), key,
        [](const auto& e, std::int64_t k) { return e.first < k; });
    if (it == edge_types.end() || it->first != key) return std::nullopt;
    return it->second;
  }
};

/// The seed's qft_angle: an eagerly built require() message plus a libm pow
/// per call. Bit-identical values to the current ldexp form — replicated so
/// the pre-PR per-gate cost stays in the baseline measurement.
double seed_qft_angle(LogicalQubit i, LogicalQubit j) {
  require(i < j, std::string("qft_angle: expects i < j"));
  return M_PI / std::pow(2.0, static_cast<double>(j - i));
}

// The seed compiled is_two_qubit and MappingTracker::apply_swap in other
// translation units, so every call was an out-of-line jump; noinline keeps
// that cost in the baseline now that the library versions inline.
__attribute__((noinline)) bool seed_two_qubit(GateKind kind) {
  switch (kind) {
    case GateKind::kCPhase:
    case GateKind::kSwap:
    case GateKind::kCnot:
      return true;
    default:
      return false;
  }
}

struct SeedTracker {
  std::vector<PhysicalQubit> l2p;
  std::vector<LogicalQubit> p2l;

  SeedTracker(const std::vector<PhysicalQubit>& initial,
              std::int32_t num_physical)
      : l2p(initial), p2l(num_physical, kInvalidQubit) {
    for (std::size_t l = 0; l < l2p.size(); ++l) p2l[l2p[l]] = l;
  }

  LogicalQubit logical_at(PhysicalQubit p) const { return p2l[p]; }
  PhysicalQubit physical_of(LogicalQubit l) const { return l2p[l]; }

  __attribute__((noinline)) void apply_swap(PhysicalQubit a, PhysicalQubit b) {
    require(a >= 0 && b >= 0 && a < static_cast<std::int32_t>(p2l.size()) &&
                b < static_cast<std::int32_t>(p2l.size()) && a != b,
            std::string("MappingTracker::apply_swap: bad nodes"));
    const LogicalQubit la = p2l[a], lb = p2l[b];
    p2l[a] = lb;
    p2l[b] = la;
    if (la != kInvalidQubit) l2p[la] = b;
    if (lb != kInvalidQubit) l2p[lb] = a;
  }
};

/// The seed scheduler: same ASAP arithmetic, but per-gate latency through a
/// std::function and per-gate out-of-line two_qubit calls.
Cycle seed_circuit_depth(const Circuit& c,
                         const std::function<Cycle(const Gate&)>& latency) {
  std::vector<Cycle> start(c.size(), 0);  // the Schedule the seed built
  std::vector<Cycle> ready(c.num_qubits(), 0);
  Cycle depth = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c[i];
    Cycle t = ready[g.q0];
    if (seed_two_qubit(g.kind)) t = std::max(t, ready[g.q1]);
    const Cycle dur = latency(g);
    start[i] = t;
    ready[g.q0] = t + dur;
    if (seed_two_qubit(g.kind)) ready[g.q1] = t + dur;
    depth = std::max(depth, t + dur);
  }
  benchmark::DoNotOptimize(start.data());
  return depth;
}

/// Pre-PR check_qft_mapping, verbatim except that graph queries go through
/// SeedGraphQueries. Fails abort the benchmark, so error strings are terse.
QftCheckResult seed_check(const MappedCircuit& mc, const SeedGraphQueries& g,
                          const LatencyFn& latency) {
  QftCheckResult bad;
  const std::int32_t n = mc.num_logical();
  if (mc.circuit.num_qubits() != g.n) return bad;
  if (!valid_mapping(mc.initial, g.n)) return bad;
  if (!valid_mapping(mc.final_mapping, g.n)) return bad;

  SeedTracker tracker(mc.initial, g.n);
  std::vector<std::uint8_t> h_seen(n, 0);
  std::vector<std::uint8_t> pair_seen(static_cast<std::size_t>(n) * n, 0);
  std::int64_t pairs = 0, hs = 0;
  auto pidx = [n](LogicalQubit lo, LogicalQubit hi) {
    return static_cast<std::size_t>(lo) * n + hi;
  };

  for (std::size_t i = 0; i < mc.circuit.size(); ++i) {
    const Gate& gate = mc.circuit[i];
    if (seed_two_qubit(gate.kind) && !g.adjacent(gate.q0, gate.q1)) return bad;
    switch (gate.kind) {
      case GateKind::kSwap:
        tracker.apply_swap(gate.q0, gate.q1);
        break;
      case GateKind::kH: {
        const LogicalQubit l = tracker.logical_at(gate.q0);
        if (l == kInvalidQubit || h_seen[l]) return bad;
        h_seen[l] = 1;
        ++hs;
        break;
      }
      case GateKind::kCPhase: {
        const LogicalQubit a = tracker.logical_at(gate.q0);
        const LogicalQubit b = tracker.logical_at(gate.q1);
        if (a == kInvalidQubit || b == kInvalidQubit) return bad;
        const LogicalQubit lo = std::min(a, b), hi = std::max(a, b);
        if (pair_seen[pidx(lo, hi)]) return bad;
        if (std::abs(gate.angle - seed_qft_angle(lo, hi)) > 1e-12) return bad;
        if (!h_seen[lo] || h_seen[hi]) return bad;
        pair_seen[pidx(lo, hi)] = 1;
        ++pairs;
        break;
      }
      default:
        return bad;
    }
  }

  if (hs != n || pairs != qft_pair_count(n)) return bad;
  for (LogicalQubit l = 0; l < n; ++l) {
    if (tracker.physical_of(l) != mc.final_mapping[l]) return bad;
  }

  QftCheckResult r;
  r.ok = true;
  r.depth = seed_circuit_depth(mc.circuit, latency);
  r.counts = count_gates(mc.circuit);
  return r;
}

// --------------------------------------------------------- cached cases --

struct Case {
  MapResult result;
  LatencyModel model;  // bound to result.graph
  LatencyFn fn;        // the same model behind std::function
  std::unique_ptr<SeedGraphQueries> seed;
  LatencyFn seed_fn;   // pre-PR latency callback over the seed queries
  std::int64_t gates = 0;
};

Case& get_case(const std::string& engine, int n) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<Case>> cache;
  std::lock_guard<std::mutex> lock(mu);
  const std::string key = engine + "/" + std::to_string(n);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  auto c = std::make_unique<Case>();
  MapOptions opts;
  opts.verify = false;  // mapping setup only; verification is the benchmark
  c->result = MapperPipeline::global().run(engine, n, opts);
  c->model = MapperPipeline::global().at(engine).latency_model(c->result.graph);
  c->fn = LatencyFn(c->model);
  c->seed = std::make_unique<SeedGraphQueries>(c->result.graph);
  if (engine == "lattice") {
    const SeedGraphQueries* sq = c->seed.get();
    c->seed_fn = [sq](const Gate& gate) -> Cycle {
      if (!seed_two_qubit(gate.kind)) return 1;
      const auto type = sq->link_type(gate.q0, gate.q1);
      const bool fast = type.has_value() && *type == LinkType::kFast;
      switch (gate.kind) {
        case GateKind::kSwap:
          return fast ? kLsFastSwapDepth : kLsSlowSwapDepth;
        case GateKind::kCnot:
          return kLsCnotDepth;
        case GateKind::kCPhase:
          return kLsCphaseDepth;
        default:
          return 1;
      }
    };
  } else {
    c->seed_fn = [](const Gate&) -> Cycle { return 1; };
  }
  c->gates = static_cast<std::int64_t>(c->result.mapped.circuit.size());

  // Sanity: a benchmark must never time an invalid mapping.
  const auto chk =
      check_qft_mapping(c->result.mapped, c->result.graph, c->model);
  if (!chk.ok) {
    std::fprintf(stderr, "BENCH ABORT — invalid %s mapping: %s\n",
                 engine.c_str(), chk.error.c_str());
    std::abort();
  }
  return *cache.emplace(key, std::move(c)).first->second;
}

// ------------------------------------------------------------ benchmarks --

void BM_VerifySeed(benchmark::State& state, const std::string& engine, int n) {
  Case& c = get_case(engine, n);
  for (auto _ : state) {
    const auto r = seed_check(c.result.mapped, *c.seed, c.seed_fn);
    if (!r.ok) state.SkipWithError("seed checker rejected a valid mapping");
    benchmark::DoNotOptimize(r.depth);
  }
  state.SetItemsProcessed(state.iterations() * c.gates);
}

void BM_VerifyReplay(benchmark::State& state, const std::string& engine,
                     int n) {
  Case& c = get_case(engine, n);
  for (auto _ : state) {
    const auto r = check_qft_mapping_replay(c.result.mapped, c.result.graph,
                                            c.fn);
    if (!r.ok) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.depth);
  }
  state.SetItemsProcessed(state.iterations() * c.gates);
}

void BM_VerifyIncremental(benchmark::State& state, const std::string& engine,
                          int n) {
  Case& c = get_case(engine, n);
  for (auto _ : state) {
    const auto r =
        check_qft_mapping(c.result.mapped, c.result.graph, c.model);
    if (!r.ok) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.depth);
  }
  state.SetItemsProcessed(state.iterations() * c.gates);
}

void BM_ScheduleFn(benchmark::State& state, const std::string& engine, int n) {
  Case& c = get_case(engine, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_asap(c.result.mapped.circuit, c.fn).depth);
  }
  state.SetItemsProcessed(state.iterations() * c.gates);
}

void BM_ScheduleModel(benchmark::State& state, const std::string& engine,
                      int n) {
  Case& c = get_case(engine, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_asap(c.result.mapped.circuit, c.model).depth);
  }
  state.SetItemsProcessed(state.iterations() * c.gates);
}

// Device-scale end-to-end: map + fused verify through the pipeline (the path
// the scale smoke asserts interactive). Unlike the families above, there is
// no cached circuit — each iteration pays emission, page faults and the fused
// audit, exactly as a fresh `map_qft` call does. items = gates produced.
void BM_MapFused(benchmark::State& state, const std::string& engine, int n) {
  std::int64_t gates = 0;
  for (auto _ : state) {
    const MapResult r = MapperPipeline::global().run(engine, n, MapOptions{});
    if (!r.check.ok) state.SkipWithError(r.check.error.c_str());
    gates = r.check.counts.total();
    benchmark::DoNotOptimize(r.check.depth);
  }
  state.SetItemsProcessed(state.iterations() * gates);
}

const int register_all = [] {
  using Fn = void (*)(benchmark::State&, const std::string&, int);
  const std::pair<const char*, Fn> families[] = {
      {"verify_seed", BM_VerifySeed},
      {"verify_replay", BM_VerifyReplay},
      {"verify_incremental", BM_VerifyIncremental},
      {"schedule_fn", BM_ScheduleFn},
      {"schedule_model", BM_ScheduleModel},
  };
  auto add = [](const std::string& name, Fn fn, const std::string& engine,
                int n) {
    benchmark::RegisterBenchmark(
        name.c_str(),
        [fn, engine, n](benchmark::State& st) { fn(st, engine, n); })
        ->Unit(benchmark::kMillisecond);
  };
  for (const auto& [family, fn] : families) {
    for (const char* engine : {"lnn", "heavy_hex", "sycamore", "lattice"}) {
      for (const int n : {64, 256, 1024, 2048}) {
        add(std::string(family) + "/" + engine + "/n" + std::to_string(n), fn,
            engine, n);
      }
    }
  }
  // Device-scale additions, lattice only: the full-matrix families above
  // would spend minutes per size there, so past 2048 we track just the
  // streaming checker, the scheduler and the end-to-end fused path.
  for (const int n : {4096, 8192}) {
    add("verify_incremental/lattice/n" + std::to_string(n),
        BM_VerifyIncremental, "lattice", n);
    add("schedule_model/lattice/n" + std::to_string(n), BM_ScheduleModel,
        "lattice", n);
  }
  for (const int n : {1024, 4096, 8192}) {
    add("map_fused/lattice/n" + std::to_string(n), BM_MapFused, "lattice", n);
  }
  return 0;
}();

}  // namespace
