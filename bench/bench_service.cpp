// MappingService throughput and latency — the serving-path numbers the
// ROADMAP's batch-service item asks for.
//
// Families:
//   service_cold/<engine>/n    — submit+wait with the cache disabled: every
//                                request runs the full map+verify pipeline
//                                on a worker.
//   service_cached/<engine>/n  — identical request against a warmed cache:
//                                the hit path (probe, copy, zeroed timings).
//                                cold/cached is the memoization payoff; the
//                                acceptance bar is >= 10x on the analytical
//                                engines.
//   service_queue_mixed        — a burst of mixed-engine jobs per iteration
//                                on a cold cache; avg_queue_us reports the
//                                mean time a job sat queued before a worker
//                                picked it up.
//   batch_via_service/n        — map_qft_batch riding the shared persistent
//                                pool (the pre-service number spawned and
//                                joined a fresh thread pool per call).
//
// Items/sec counts requests; UseRealTime everywhere because the work happens
// on service workers while the benchmark thread blocks in wait().
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "pipeline/batch.hpp"
#include "service/mapping_service.hpp"

namespace {

using namespace qfto;

MappingService::Options options_with(std::int32_t threads,
                                     std::size_t cache_capacity) {
  MappingService::Options options;
  options.num_threads = threads;
  options.cache_capacity = cache_capacity;
  return options;
}

void service_cold(benchmark::State& state, const char* engine) {
  MappingService service{options_with(0, /*cache_capacity=*/0)};
  const auto n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const JobResult out = service.submit({engine, n, MapOptions{}}).wait();
    if (!out.ok()) {
      state.SkipWithError(out.error.c_str());
      return;
    }
    benchmark::DoNotOptimize(out.result);
  }
  state.SetItemsProcessed(state.iterations());
}

void service_cached(benchmark::State& state, const char* engine) {
  MappingService service{options_with(0, /*cache_capacity=*/1024)};
  const auto n = static_cast<std::int32_t>(state.range(0));
  const JobResult warm = service.submit({engine, n, MapOptions{}}).wait();
  if (!warm.ok()) {
    state.SkipWithError(warm.error.c_str());
    return;
  }
  for (auto _ : state) {
    const JobResult out = service.submit({engine, n, MapOptions{}}).wait();
    if (!out.ok() || !out.result->cache_hit) {
      state.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(out.result);
  }
  state.SetItemsProcessed(state.iterations());
}

void service_queue_mixed(benchmark::State& state) {
  // Mixed engine load with caching off: every job occupies a worker, so the
  // queue-latency number reflects scheduling, not memoization.
  const std::vector<BatchRequest> burst = {
      {"lattice", 256, MapOptions{}},   {"sycamore", 256, MapOptions{}},
      {"heavy_hex", 250, MapOptions{}}, {"lnn", 256, MapOptions{}},
      {"lattice", 100, MapOptions{}},   {"sycamore", 100, MapOptions{}},
      {"heavy_hex", 100, MapOptions{}}, {"lnn", 100, MapOptions{}},
  };
  MappingService service{options_with(0, /*cache_capacity=*/0)};
  double queue_seconds_total = 0.0;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    std::vector<JobHandle> handles;
    handles.reserve(burst.size());
    for (const BatchRequest& req : burst) handles.push_back(service.submit(req));
    for (JobHandle& handle : handles) {
      const JobResult out = handle.wait();
      if (!out.ok()) {
        state.SkipWithError(out.error.c_str());
        return;
      }
      queue_seconds_total += out.queue_seconds;
      ++jobs;
    }
  }
  state.SetItemsProcessed(jobs);
  state.counters["avg_queue_us"] =
      jobs == 0 ? 0.0 : 1e6 * queue_seconds_total / static_cast<double>(jobs);
}

void batch_via_service(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  std::vector<BatchRequest> requests;
  for (const char* engine : {"lnn", "heavy_hex", "sycamore", "lattice"}) {
    BatchRequest req;
    req.engine = engine;
    req.n = n;
    req.options.verify = true;
    requests.push_back(std::move(req));
  }
  std::uint64_t round = 0;
  for (auto _ : state) {
    // Bust the shared service's cache each iteration (the sabre seed is in
    // the option fingerprint but ignored by the analytical mappers), so
    // this measures full batch map+verify throughput, not cache probes —
    // service_cached already covers the hit path.
    ++round;
    for (BatchRequest& req : requests) req.options.sabre.seed = round;
    const auto items = map_qft_batch(requests);
    for (const BatchItem& item : items) {
      if (!item.ok) {
        state.SkipWithError(item.error.c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}

BENCHMARK_CAPTURE(service_cold, lnn, "lnn")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cold, heavy_hex, "heavy_hex")
    ->Arg(250)->Arg(1000)->UseRealTime();
BENCHMARK_CAPTURE(service_cold, sycamore, "sycamore")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cold, lattice, "lattice")
    ->Arg(256)->Arg(1024)->UseRealTime();

BENCHMARK_CAPTURE(service_cached, lnn, "lnn")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cached, heavy_hex, "heavy_hex")
    ->Arg(250)->Arg(1000)->UseRealTime();
BENCHMARK_CAPTURE(service_cached, sycamore, "sycamore")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cached, lattice, "lattice")
    ->Arg(256)->Arg(1024)->UseRealTime();

BENCHMARK(service_queue_mixed)->UseRealTime();
BENCHMARK(batch_via_service)->Arg(100)->Arg(256)->UseRealTime();

}  // namespace
