// MappingService throughput and latency — the serving-path numbers the
// ROADMAP's batch-service item asks for.
//
// Families:
//   service_cold/<engine>/n    — submit+wait with the cache disabled: every
//                                request runs the full map+verify pipeline
//                                on a worker.
//   service_cached/<engine>/n  — identical request against a warmed cache:
//                                the hit path (probe, copy, zeroed timings).
//                                cold/cached is the memoization payoff; the
//                                acceptance bar is >= 10x on the analytical
//                                engines.
//   service_queue_mixed        — a burst of mixed-engine jobs per iteration
//                                on a cold cache; avg_queue_us reports the
//                                mean time a job sat queued before a worker
//                                picked it up.
//   batch_via_service/n        — map_qft_batch riding the shared persistent
//                                pool (the pre-service number spawned and
//                                joined a fresh thread pool per call).
//   socket_mixed_load/clients  — sustained req/s through the TCP front-end:
//                                N concurrent socket clients pushing a mixed
//                                QFT + general-QASM (sabre) stream through
//                                the NetServer; p50/p99 map and queue
//                                latency read back from the server's own
//                                /metrics histograms.
//
// Items/sec counts requests; UseRealTime everywhere because the work happens
// on service workers while the benchmark thread blocks in wait().
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/batch.hpp"
#include "service/mapping_service.hpp"
#include "service/net_server.hpp"
#include "service/serve.hpp"
#include "service/transport.hpp"

namespace {

using namespace qfto;

MappingService::Options options_with(std::int32_t threads,
                                     std::size_t cache_capacity) {
  MappingService::Options options;
  options.num_threads = threads;
  options.cache_capacity = cache_capacity;
  return options;
}

void service_cold(benchmark::State& state, const char* engine) {
  MappingService service{options_with(0, /*cache_capacity=*/0)};
  const auto n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const JobResult out = service.submit({engine, n, MapOptions{}}).wait();
    if (!out.ok()) {
      state.SkipWithError(out.error.c_str());
      return;
    }
    benchmark::DoNotOptimize(out.result);
  }
  state.SetItemsProcessed(state.iterations());
}

void service_cached(benchmark::State& state, const char* engine) {
  MappingService service{options_with(0, /*cache_capacity=*/1024)};
  const auto n = static_cast<std::int32_t>(state.range(0));
  const JobResult warm = service.submit({engine, n, MapOptions{}}).wait();
  if (!warm.ok()) {
    state.SkipWithError(warm.error.c_str());
    return;
  }
  for (auto _ : state) {
    const JobResult out = service.submit({engine, n, MapOptions{}}).wait();
    if (!out.ok() || !out.result->cache_hit) {
      state.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(out.result);
  }
  state.SetItemsProcessed(state.iterations());
}

void service_queue_mixed(benchmark::State& state) {
  // Mixed engine load with caching off: every job occupies a worker, so the
  // queue-latency number reflects scheduling, not memoization.
  const std::vector<BatchRequest> burst = {
      {"lattice", 256, MapOptions{}},   {"sycamore", 256, MapOptions{}},
      {"heavy_hex", 250, MapOptions{}}, {"lnn", 256, MapOptions{}},
      {"lattice", 100, MapOptions{}},   {"sycamore", 100, MapOptions{}},
      {"heavy_hex", 100, MapOptions{}}, {"lnn", 100, MapOptions{}},
  };
  MappingService service{options_with(0, /*cache_capacity=*/0)};
  double queue_seconds_total = 0.0;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    std::vector<JobHandle> handles;
    handles.reserve(burst.size());
    for (const BatchRequest& req : burst) handles.push_back(service.submit(req));
    for (JobHandle& handle : handles) {
      const JobResult out = handle.wait();
      if (!out.ok()) {
        state.SkipWithError(out.error.c_str());
        return;
      }
      queue_seconds_total += out.queue_seconds;
      ++jobs;
    }
  }
  state.SetItemsProcessed(jobs);
  state.counters["avg_queue_us"] =
      jobs == 0 ? 0.0 : 1e6 * queue_seconds_total / static_cast<double>(jobs);
}

void batch_via_service(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  std::vector<BatchRequest> requests;
  for (const char* engine : {"lnn", "heavy_hex", "sycamore", "lattice"}) {
    BatchRequest req;
    req.engine = engine;
    req.n = n;
    req.options.verify = true;
    requests.push_back(std::move(req));
  }
  std::uint64_t round = 0;
  for (auto _ : state) {
    // Bust the shared service's cache each iteration (the sabre seed is in
    // the option fingerprint but ignored by the analytical mappers), so
    // this measures full batch map+verify throughput, not cache probes —
    // service_cached already covers the hit path.
    ++round;
    for (BatchRequest& req : requests) req.options.sabre.seed = round;
    const auto items = map_qft_batch(requests);
    for (const BatchItem& item : items) {
      if (!item.ok) {
        state.SkipWithError(item.error.c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}

BENCHMARK_CAPTURE(service_cold, lnn, "lnn")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cold, heavy_hex, "heavy_hex")
    ->Arg(250)->Arg(1000)->UseRealTime();
BENCHMARK_CAPTURE(service_cold, sycamore, "sycamore")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cold, lattice, "lattice")
    ->Arg(256)->Arg(1024)->UseRealTime();

BENCHMARK_CAPTURE(service_cached, lnn, "lnn")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cached, heavy_hex, "heavy_hex")
    ->Arg(250)->Arg(1000)->UseRealTime();
BENCHMARK_CAPTURE(service_cached, sycamore, "sycamore")
    ->Arg(256)->Arg(1024)->UseRealTime();
BENCHMARK_CAPTURE(service_cached, lattice, "lattice")
    ->Arg(256)->Arg(1024)->UseRealTime();

void socket_mixed_load(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kPerClientPerIter = 8;
  MappingService service{options_with(0, /*cache_capacity=*/4096)};
  net::NetServer::Options sopts;
  sopts.host = "127.0.0.1";
  sopts.port = 0;  // ephemeral
  net::NetServer server(service, sopts);
  server.start();

  // JSON-escaped OpenQASM 2.0 payload: the general-circuit ingestion path
  // (from_qasm + sabre) mixed in with the QFT engines.
  const std::string qasm =
      "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[4];\\n"
      "h q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];\\ncx q[2],q[3];\\n";
  const std::vector<std::string> payloads = {
      "{\"engine\":\"lattice\",\"n\":256}",
      "{\"engine\":\"sycamore\",\"n\":100}",
      "{\"engine\":\"lnn\",\"n\":128}",
      "{\"engine\":\"sabre\",\"trials\":1,\"qasm\":\"" + qasm + "\"}",
  };

  std::atomic<bool> failed{false};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::string error;
        net::Socket sock = net::dial(server.host(), server.port(), &error);
        if (!sock.valid()) {
          failed = true;
          return;
        }
        net::LineReader reader(sock);
        std::string batch;
        for (int r = 0; r < kPerClientPerIter; ++r) {
          batch += payloads[(c + r) % payloads.size()] + "\n";
        }
        if (!sock.send_all(batch)) {
          failed = true;
          return;
        }
        std::string line;
        for (int r = 0; r < kPerClientPerIter; ++r) {
          if (!reader.next(line) ||
              line.find("\"ok\":true") == std::string::npos) {
            failed = true;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed.load()) {
      state.SkipWithError("socket client failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clients) *
                          kPerClientPerIter);
  const ServeMetrics& m = server.metrics();
  state.counters["map_p50_us"] = 1e6 * m.map_latency.quantile(0.5);
  state.counters["map_p99_us"] = 1e6 * m.map_latency.quantile(0.99);
  state.counters["queue_p50_us"] = 1e6 * m.queue_latency.quantile(0.5);
  state.counters["queue_p99_us"] = 1e6 * m.queue_latency.quantile(0.99);
  state.counters["shed"] =
      static_cast<double>(m.shed.load(std::memory_order_relaxed));
}

void socket_retry_under_shed(benchmark::State& state) {
  // Clients hammering an admission-constrained server through
  // net::request_with_retry: sheds come back `retryable`, the client backs
  // off and re-sends. Measures delivered-request throughput with the retry
  // discipline absorbing the sheds; retries_per_req reports its cost.
  const int clients = static_cast<int>(state.range(0));
  constexpr int kPerClientPerIter = 4;
  MappingService service{options_with(2, /*cache_capacity=*/0)};
  net::NetServer::Options sopts;
  sopts.host = "127.0.0.1";
  sopts.port = 0;
  sopts.max_inflight = 2;  // tight bound: concurrent clients WILL be shed
  net::NetServer server(service, sopts);
  server.start();

  std::atomic<bool> failed{false};
  std::atomic<std::int64_t> attempts_total{0};
  std::int64_t delivered = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::RetryPolicy policy;
        policy.max_attempts = 8;
        policy.base_seconds = 0.001;
        policy.max_seconds = 0.05;
        policy.jitter_seed = static_cast<std::uint64_t>(c) + 1;
        for (int r = 0; r < kPerClientPerIter; ++r) {
          const net::RetryResult out = net::request_with_retry(
              server.host(), server.port(),
              "{\"engine\":\"lnn\",\"n\":64}", policy);
          attempts_total.fetch_add(out.attempts, std::memory_order_relaxed);
          if (!out.ok ||
              out.response.find("\"status\":\"ok\"") == std::string::npos) {
            failed = true;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed.load()) {
      state.SkipWithError("retry client exhausted its attempts");
      return;
    }
    delivered += static_cast<std::int64_t>(clients) * kPerClientPerIter;
  }
  state.SetItemsProcessed(delivered);
  state.counters["retries_per_req"] =
      delivered == 0
          ? 0.0
          : static_cast<double>(attempts_total.load() - delivered) /
                static_cast<double>(delivered);
  state.counters["shed"] = static_cast<double>(
      server.metrics().shed.load(std::memory_order_relaxed));
}

BENCHMARK(service_queue_mixed)->UseRealTime();
BENCHMARK(batch_via_service)->Arg(100)->Arg(256)->UseRealTime();
BENCHMARK(socket_mixed_load)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(socket_retry_under_shed)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
