// Ablations for the design choices DESIGN.md calls out, all driven through
// the MapperPipeline registry:
//   A. Insight 1 (relaxed ordering) handed to a general router: SABRE with
//      the relaxed (commutativity-aware) DAG vs the strict DAG.
//   B. §6 travel-path phase: bottom unit one step late vs synced, on the
//      lattice-surgery mapper (Fig. 16's design point).
//   C. §3.3 inter-unit pattern: QFT-IE-relaxed vs QFT-IE-strict.
//   D. §2.3 latency awareness: our unit-based mapper (weighted, rotated
//      graph) vs the LNN Hamiltonian-path solution charged real latencies.
#include "arch/heavy_hex.hpp"
#include "arch/sycamore.hpp"
#include "bench_common.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  {
    TablePrinter t({"arch", "N", "strictDepth", "relaxDepth", "strict#SW",
                    "relax#SW"});
    struct Case {
      std::string name;
      CouplingGraph g;
      std::int32_t n;
    };
    std::vector<Case> cases;
    cases.push_back({"sycamore-4x4", make_sycamore(4), 16});
    cases.push_back({"sycamore-6x6", make_sycamore(6), 36});
    cases.push_back({"heavyhex-20", make_heavy_hex(heavy_hex_layout(20)), 20});
    cases.push_back({"heavyhex-30", make_heavy_hex(heavy_hex_layout(30)), 30});
    for (const auto& c : cases) {
      MapOptions strict;
      strict.sabre.trials = 3;
      strict.target = &c.g;
      MapOptions relaxed = strict;
      relaxed.sabre.use_relaxed_dag = true;
      const Measured ms = run_engine("sabre", c.n, strict);
      const Measured mr = run_engine("sabre", c.n, relaxed);
      t.add_row({c.name, std::to_string(c.n), std::to_string(ms.depth),
                 std::to_string(mr.depth), std::to_string(ms.swaps),
                 std::to_string(mr.swaps)});
    }
    std::printf("Ablation A — commutativity (Insight 1) inside SABRE\n\n%s\n",
                t.render().c_str());
  }

  {
    TablePrinter t({"m", "N", "offsetDepth", "syncedDepth", "speedup"});
    for (std::int32_t m : {8, 12, 16, 20}) {
      MapOptions synced;
      synced.lattice_phase_offset = 0;
      const Measured off = run_engine("lattice", m * m);
      const Measured syn = run_engine("lattice", m * m, synced);
      t.add_row({std::to_string(m), std::to_string(m * m),
                 std::to_string(off.depth), std::to_string(syn.depth),
                 fmt_double(static_cast<double>(syn.depth) / off.depth, 2)});
    }
    std::printf("Ablation B — travel-path phase offset (Fig. 16: bottom unit "
                "one step late) vs synced\n\n%s\n",
                t.render().c_str());
  }

  {
    // §3.3: "The QFT-IE-relaxed version is two times faster than the
    // QFT-IE-strict version." We compare whole-kernel depth with the
    // inter-unit pattern switched between the two regimes.
    TablePrinter t({"backend", "N", "relaxedDepth", "strictDepth",
                    "strict/relaxed"});
    MapOptions strict;
    strict.strict_ie = true;
    for (std::int32_t m : {4, 6, 8, 10}) {
      const Measured rel = run_engine("sycamore", m * m);
      const Measured str = run_engine("sycamore", m * m, strict);
      t.add_row({"sycamore", std::to_string(m * m), std::to_string(rel.depth),
                 std::to_string(str.depth),
                 fmt_double(static_cast<double>(str.depth) / rel.depth, 2)});
    }
    for (std::int32_t m : {8, 12, 16}) {
      const Measured rel = run_engine("lattice", m * m);
      const Measured str = run_engine("lattice", m * m, strict);
      t.add_row({"lattice(w)", std::to_string(m * m),
                 std::to_string(rel.depth), std::to_string(str.depth),
                 fmt_double(static_cast<double>(str.depth) / rel.depth, 2)});
    }
    std::printf("Ablation C — QFT-IE-relaxed vs QFT-IE-strict (§3.3: relaxed "
                "is ~2x faster)\n\n%s\n",
                t.render().c_str());
  }

  {
    TablePrinter t({"m", "N", "oursDepth", "lnnDepth", "lnn/ours"});
    for (std::int32_t m : {8, 12, 16, 20}) {
      const Measured ours = run_engine("lattice", m * m);
      const Measured lnn = run_engine("lnn_baseline", m * m);
      t.add_row({std::to_string(m), std::to_string(m * m),
                 std::to_string(ours.depth), std::to_string(lnn.depth),
                 fmt_double(static_cast<double>(lnn.depth) / ours.depth, 2)});
    }
    std::printf("Ablation D — latency awareness on lattice surgery: ours vs "
                "Hamiltonian-path LNN (both charged real latencies)\n\n%s\n",
                t.render().c_str());
  }
  return 0;
}
