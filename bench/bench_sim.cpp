// State-vector simulator throughput — the substrate behind every
// equivalence check ("we write an open-source simulator to check the
// correctness of our outcome", §7). Reports gates/second over the mapped
// LNN QFT at several register sizes, plus per-gate-kind microbenchmarks.
#include <benchmark/benchmark.h>

#include "circuit/qft_spec.hpp"
#include "mapper/lnn_mapper.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qfto;

void BM_SimQftLogical(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  const Circuit c = qft_logical(n);
  for (auto _ : state) {
    StateVector sv(n);
    sv.apply(c);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.size()));
  state.counters["qubits"] = n;
}
BENCHMARK(BM_SimQftLogical)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_SimQftMappedLnn(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  const MappedCircuit mc = map_qft_lnn(n);
  for (auto _ : state) {
    StateVector sv(n);
    sv.apply(mc.circuit);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mc.circuit.size()));
  state.counters["qubits"] = n;
}
BENCHMARK(BM_SimQftMappedLnn)->Arg(8)->Arg(12)->Arg(16);

void BM_GateH(benchmark::State& state) {
  StateVector sv(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    sv.apply(Gate::h(3));
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateH)->Arg(16)->Arg(20);

void BM_GateCPhase(benchmark::State& state) {
  StateVector sv(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    sv.apply(Gate::cphase(2, 7, 0.3));
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateCPhase)->Arg(16)->Arg(20);

void BM_GateSwap(benchmark::State& state) {
  StateVector sv(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    sv.apply(Gate::swap(1, 9));
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateSwap)->Arg(16)->Arg(20);

}  // namespace
