// Fig. 19: depth (a) and #SWAP (b) on the lattice-surgery FT backend —
// our approach vs SABRE vs the LNN Hamiltonian-path baseline, m = 10..32
// (N = 100..1024). As in §7.2, the baselines run on the all-links graph at
// uniform latency (a concession in their favor); ours pays the §2.3
// heterogeneous latencies and still wins. Paper headline: ~92% lower depth
// than SABRE at 1024 qubits; SABRE competitive on SWAPs only below ~144.
#include "arch/lattice_surgery.hpp"
#include "bench_common.hpp"

using namespace qfto;
using namespace qfto::bench;

int main() {
  const long sabre_trials = env_long("QFTO_SABRE_TRIALS", 1);
  const long sabre_max_m = env_long("QFTO_SABRE_MAX_M", 32);
  TablePrinter table({"m", "N", "OursDepth", "LnnDepth", "SabreDepth",
                      "Ours#SWAP", "Lnn#SWAP", "Sabre#SWAP", "OursCT(s)",
                      "SabreCT(s)"});
  for (std::int32_t m : {10, 12, 16, 20, 24, 28, 32}) {
    const std::int32_t n = m * m;

    // `lattice` and `lnn_baseline` both charge the §2.3 weighted latencies
    // natively (rotated vs full graph).
    const Measured ours = run_engine("lattice", n);
    const double ours_ct = ours.seconds;
    const Measured lnn = run_engine("lnn_baseline", n);

    std::string sabre_depth = "skipped", sabre_swaps = "-", sabre_ct = "-";
    if (m <= sabre_max_m) {
      // §7.2 concession: SABRE gets every link of the full graph and is
      // charged uniform latency.
      const CouplingGraph full = make_lattice_surgery_full(m);
      MapOptions sb;
      sb.sabre.trials = static_cast<std::int32_t>(sabre_trials);
      sb.target = &full;
      const Measured ms = run_engine("sabre", n, sb);
      sabre_depth = std::to_string(ms.depth);
      sabre_swaps = std::to_string(ms.swaps);
      sabre_ct = fmt_double(ms.seconds, 1);
    }

    table.add_row({std::to_string(m), std::to_string(n),
                   std::to_string(ours.depth), std::to_string(lnn.depth),
                   sabre_depth, std::to_string(ours.swaps),
                   std::to_string(lnn.swaps), sabre_swaps,
                   fmt_double(ours_ct, 3), sabre_ct});
  }
  std::printf(
      "Fig. 19 — lattice surgery: ours (weighted, rotated graph) vs LNN "
      "(weighted, snake path) vs SABRE (uniform latency, all links)\n\n%s\n",
      table.render().c_str());
  return 0;
}
