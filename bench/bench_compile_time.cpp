// Compilation-time scaling (§7.1.1 / §7.3): our mappers are analytical —
// compile time is the time to *write out* the linear-size-in-gates circuit —
// versus SABRE whose per-instance routing time grows quickly. google-benchmark
// timings; one benchmark per backend plus SABRE reference points.
#include <benchmark/benchmark.h>

#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/sycamore.hpp"
#include "baseline/sabre.hpp"
#include "circuit/qft_spec.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lattice_mapper.hpp"
#include "mapper/lnn_mapper.hpp"
#include "mapper/sycamore_mapper.hpp"
#include "pipeline/mapper_pipeline.hpp"

namespace {

using namespace qfto;

void BM_MapLnn(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_qft_lnn(n));
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_MapLnn)->Arg(64)->Arg(256)->Arg(1024);

void BM_MapHeavyHex(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_qft_heavy_hex(n));
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_MapHeavyHex)->Arg(50)->Arg(200)->Arg(1000);

void BM_MapSycamore(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_qft_sycamore(m));
  }
  state.counters["qubits"] = m * m;
}
BENCHMARK(BM_MapSycamore)->Arg(6)->Arg(16)->Arg(32);

void BM_MapLattice(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_qft_lattice(m));
  }
  state.counters["qubits"] = m * m;
}
BENCHMARK(BM_MapLattice)->Arg(10)->Arg(20)->Arg(32);

// Facade overhead: the same lattice compile through MapperPipeline, with
// the graph build included and the checker off (map) or on (map+verify).
void BM_PipelineLatticeMap(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  MapOptions opts;
  opts.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_qft("lattice", m * m, opts));
  }
  state.counters["qubits"] = m * m;
}
BENCHMARK(BM_PipelineLatticeMap)->Arg(10)->Arg(20)->Arg(32);

void BM_PipelineLatticeMapVerify(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_qft("lattice", m * m));
  }
  state.counters["qubits"] = m * m;
}
BENCHMARK(BM_PipelineLatticeMapVerify)->Arg(10)->Arg(20)->Arg(32);

void BM_SabreRoute(benchmark::State& state) {
  const std::int32_t m = static_cast<std::int32_t>(state.range(0));
  const CouplingGraph g = make_lattice_surgery_full(m);
  const Circuit qft = qft_logical(m * m);
  SabreOptions opts;
  opts.trials = 1;
  opts.bidirectional_passes = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sabre_route(qft, g, opts));
  }
  state.counters["qubits"] = m * m;
}
BENCHMARK(BM_SabreRoute)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
