// Table 1: our approach vs SATMAP and SABRE across Sycamore (2*2, 4*4, 6*6),
// heavy-hex (2*5, 4*5, 6*5) and lattice surgery (10*10, 20*20, 30*30) —
// depth, #SWAP, compilation time. All engines run through the MapperPipeline
// registry; SATMAP runs under a scaled-down time budget (env
// QFTO_SATMAP_BUDGET, default 10 s; the paper used 2 h) and is expected to
// TLE beyond the smallest instances, as in the paper.
#include <stdexcept>

#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/sycamore.hpp"
#include "bench_common.hpp"

using namespace qfto;
using namespace qfto::bench;

namespace {

struct Row {
  std::string arch_name;
  std::string config;
  std::int32_t n;
  std::string engine;            // pipeline engine for "ours"
  CouplingGraph baseline_graph;  // graph baselines may use (§7.2)
  bool run_satmap;
};

}  // namespace

int main() {
  const double satmap_budget = env_double("QFTO_SATMAP_BUDGET", 10.0);
  const long sabre_trials = env_long("QFTO_SABRE_TRIALS", 3);
  const long max_n_satmap = env_long("QFTO_SATMAP_MAX_N", 10);

  std::vector<Row> rows;
  for (std::int32_t m : {2, 4, 6}) {
    rows.push_back({"Sycamore", std::to_string(m) + "*" + std::to_string(m),
                    m * m, "sycamore", make_sycamore(m),
                    m * m <= max_n_satmap});
  }
  for (std::int32_t groups : {2, 4, 6}) {
    const std::int32_t n = 5 * groups;
    rows.push_back({"Heavy-hex", std::to_string(groups) + "*5", n, "heavy_hex",
                    make_heavy_hex(heavy_hex_layout(n)), n <= max_n_satmap});
  }
  for (std::int32_t m : {10, 20, 30}) {
    // §7.2: baselines get the full link set at uniform latency (favors
    // them); our lattice engine pays the §2.3 weighted latencies natively.
    rows.push_back({"Lattice", std::to_string(m) + "*" + std::to_string(m),
                    m * m, "lattice", make_lattice_surgery_full(m),
                    m * m <= max_n_satmap});
  }

  TablePrinter table({"Architecture", "config", "OursDepth", "Ours#SWAP",
                      "OursCT(s)", "SatDepth", "Sat#SWAP", "SatCT(s)",
                      "SabreDepth", "Sabre#SWAP", "SabreCT(s)"});

  for (const auto& row : rows) {
    const Measured mo = run_engine(row.engine, row.n);

    std::string sat_depth = "TLE", sat_swaps = "N/A", sat_ct = "TLE";
    if (row.run_satmap) {
      MapOptions so;
      so.satmap.time_budget_seconds = satmap_budget;
      so.target = &row.baseline_graph;
      try {
        const Measured ms = run_engine("satmap", row.n, so);
        sat_depth = std::to_string(ms.depth);
        sat_swaps = std::to_string(ms.swaps);
        sat_ct = fmt_double(ms.seconds, 2);
      } catch (const std::runtime_error&) {
        sat_ct = "TLE(" + fmt_double(satmap_budget, 0) + "s)";
      }
    }

    MapOptions sb;
    sb.sabre.trials = static_cast<std::int32_t>(sabre_trials);
    sb.target = &row.baseline_graph;
    const Measured msab = run_engine("sabre", row.n, sb);

    table.add_row({row.arch_name, row.config, std::to_string(mo.depth),
                   std::to_string(mo.swaps), fmt_double(mo.seconds, 3),
                   sat_depth, sat_swaps, sat_ct, std::to_string(msab.depth),
                   std::to_string(msab.swaps), fmt_double(msab.seconds, 2)});
  }

  std::printf("Table 1 — ours vs SATMAP vs SABRE (CT: compile time; TLE: "
              "budget %.0fs exceeded; paper used a 2h budget)\n\n%s\n",
              satmap_budget, table.render().c_str());
  std::printf("Notes: SABRE/SATMAP run on the all-links uniform-latency graph "
              "for lattice surgery (the paper's concession in §7.2); our "
              "lattice depth is weighted by the §2.3 latency model.\n");
  return 0;
}
