// Table 1: our approach vs SATMAP and SABRE across Sycamore (2*2, 4*4, 6*6),
// heavy-hex (2*5, 4*5, 6*5) and lattice surgery (10*10, 20*20, 30*30) —
// depth, #SWAP, compilation time. SATMAP runs under a scaled-down time
// budget (env QFTO_SATMAP_BUDGET, default 10 s; the paper used 2 h) and is
// expected to TLE beyond the smallest instances, as in the paper.
#include <functional>

#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/sycamore.hpp"
#include "baseline/sabre.hpp"
#include "baseline/satmap.hpp"
#include "bench_common.hpp"
#include "circuit/qft_spec.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lattice_mapper.hpp"
#include "mapper/sycamore_mapper.hpp"

using namespace qfto;
using namespace qfto::bench;

namespace {

struct Row {
  std::string arch_name;
  std::string config;
  std::int32_t n;
  CouplingGraph graph;                      // graph our mapper uses
  CouplingGraph baseline_graph;             // graph baselines may use (§7.2)
  std::function<MappedCircuit()> ours;
  bool weighted;  // lattice surgery: apply the §2.3 latency model
  bool run_satmap;
};

}  // namespace

int main() {
  const double satmap_budget = env_double("QFTO_SATMAP_BUDGET", 10.0);
  const long sabre_trials = env_long("QFTO_SABRE_TRIALS", 3);
  const long max_n_satmap = env_long("QFTO_SATMAP_MAX_N", 10);

  std::vector<Row> rows;
  for (std::int32_t m : {2, 4, 6}) {
    CouplingGraph g = make_sycamore(m);
    rows.push_back({"Sycamore", std::to_string(m) + "*" + std::to_string(m),
                    m * m, g, g, [m] { return map_qft_sycamore(m); }, false,
                    m * m <= max_n_satmap});
  }
  for (std::int32_t groups : {2, 4, 6}) {
    const std::int32_t n = 5 * groups;
    CouplingGraph g = make_heavy_hex(heavy_hex_layout(n));
    rows.push_back({"Heavy-hex", std::to_string(groups) + "*5", n, g, g,
                    [n] { return map_qft_heavy_hex(n); }, false,
                    n <= max_n_satmap});
  }
  for (std::int32_t m : {10, 20, 30}) {
    CouplingGraph rot = make_lattice_surgery_rotated(m);
    CouplingGraph full = make_lattice_surgery_full(m);
    rows.push_back({"Lattice", std::to_string(m) + "*" + std::to_string(m),
                    m * m, rot, full, [m] { return map_qft_lattice(m); }, true,
                    m * m <= max_n_satmap});
  }

  TablePrinter table({"Architecture", "config", "OursDepth", "Ours#SWAP",
                      "OursCT(s)", "SatDepth", "Sat#SWAP", "SatCT(s)",
                      "SabreDepth", "Sabre#SWAP", "SabreCT(s)"});

  for (auto& row : rows) {
    const LatencyFn latency =
        row.weighted ? lattice_latency(row.graph) : unit_latency;
    WallTimer t;
    const MappedCircuit ours = row.ours();
    const Measured mo = measure(ours, row.graph, t.seconds(), latency);

    std::string sat_depth = "TLE", sat_swaps = "N/A", sat_ct = "TLE";
    if (row.run_satmap) {
      SatmapOptions so;
      so.time_budget_seconds = satmap_budget;
      const SatmapResult sr = satmap_route(qft_logical(row.n), row.graph, so);
      if (sr.solved) {
        const Measured ms =
            measure(sr.mapped, row.graph, sr.seconds, latency);
        sat_depth = std::to_string(ms.depth);
        sat_swaps = std::to_string(ms.swaps);
        sat_ct = fmt_double(sr.seconds, 2);
      } else {
        sat_ct = "TLE(" + fmt_double(satmap_budget, 0) + "s)";
      }
    }

    SabreOptions sb;
    sb.trials = static_cast<std::int32_t>(sabre_trials);
    WallTimer ts;
    // §7.2: baselines get the full link set at uniform latency (favors them).
    const MappedCircuit sabre =
        sabre_route(qft_logical(row.n), row.baseline_graph, sb);
    const Measured msab = measure(sabre, row.baseline_graph, ts.seconds());

    table.add_row({row.arch_name, row.config, std::to_string(mo.depth),
                   std::to_string(mo.swaps), fmt_double(mo.seconds, 3),
                   sat_depth, sat_swaps, sat_ct, std::to_string(msab.depth),
                   std::to_string(msab.swaps), fmt_double(msab.seconds, 2)});
  }

  std::printf("Table 1 — ours vs SATMAP vs SABRE (CT: compile time; TLE: "
              "budget %.0fs exceeded; paper used a 2h budget)\n\n%s\n",
              satmap_budget, table.render().c_str());
  std::printf("Notes: SABRE/SATMAP run on the all-links uniform-latency graph "
              "for lattice surgery (the paper's concession in §7.2); our "
              "lattice depth is weighted by the §2.3 latency model.\n");
  return 0;
}
