// Sketch-lite: enumerative program synthesis over integer holes (§2.4).
// The paper uses SKETCH to fill "??" holes in affine loop templates for the
// inter-unit travel paths (Appendices 5 and 7); the hole spaces involved are
// tiny (phases in {0,1}, loop-bound coefficients in small ranges), so an
// exhaustive enumerator with a semantic specification callback reproduces the
// workflow faithfully and deterministically.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace qfto {

struct Hole {
  std::string name;
  std::vector<std::int32_t> domain;
};

/// An assignment gives each hole (by index) a value from its domain.
using HoleAssignment = std::vector<std::int32_t>;

/// Returns true when the candidate program satisfies the specification.
using SketchSpec = std::function<bool(const HoleAssignment&)>;

class Sketch {
 public:
  explicit Sketch(std::vector<Hole> holes);

  const std::vector<Hole>& holes() const { return holes_; }

  /// Total size of the search space (product of domain sizes).
  std::int64_t space_size() const;

  /// First satisfying assignment in lexicographic domain order, if any.
  std::optional<HoleAssignment> solve(const SketchSpec& spec) const;

  /// All satisfying assignments (bounded by `limit`).
  std::vector<HoleAssignment> solve_all(const SketchSpec& spec,
                                        std::int64_t limit = 1 << 20) const;

  /// Number of candidates examined by the last solve call.
  std::int64_t candidates_tried() const { return tried_; }

 private:
  std::vector<Hole> holes_;
  mutable std::int64_t tried_ = 0;
};

}  // namespace qfto
