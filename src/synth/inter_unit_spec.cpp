#include "synth/inter_unit_spec.hpp"

#include <numeric>

namespace qfto {

double travel_path_coverage(std::int32_t line_len, CrossLinkFamily family,
                            const TravelPathParams& params) {
  require(line_len >= 2, "travel_path_coverage: line too short");
  const std::int32_t L = line_len;
  std::vector<std::int32_t> occ_a(L), occ_b(L);
  std::iota(occ_a.begin(), occ_a.end(), 0);
  std::iota(occ_b.begin(), occ_b.end(), 0);

  std::vector<std::uint8_t> met(static_cast<std::size_t>(L) * L, 0);
  auto meet = [&](std::int32_t pa, std::int32_t pb) {
    met[static_cast<std::size_t>(occ_a[pa]) * L + occ_b[pb]] = 1;
  };
  auto shift = [L](std::vector<std::int32_t>& occ, std::int32_t parity) {
    for (std::int32_t i = parity & 1; i + 1 < L; i += 2) {
      std::swap(occ[i], occ[i + 1]);
    }
  };

  const std::int64_t rounds =
      static_cast<std::int64_t>(params.rounds_coeff) * L + params.rounds_offset;
  for (std::int64_t r = 0; r < rounds; ++r) {
    if (family == CrossLinkFamily::kOffsetByOne) {
      for (std::int32_t p = 1; p < L; p += 2) {
        meet(p, p - 1);
        if (p + 1 < L) meet(p, p + 1);
      }
    } else {
      for (std::int32_t p = 0; p < L; ++p) meet(p, p);
    }
    shift(occ_a, static_cast<std::int32_t>(r + params.phase_a));
    shift(occ_b, static_cast<std::int32_t>(r + params.phase_b));
  }

  std::int64_t required = 0, satisfied = 0;
  for (std::int32_t a = 0; a < L; ++a) {
    for (std::int32_t b = 0; b < L; ++b) {
      if (family == CrossLinkFamily::kOffsetByOne && a == b) {
        continue;  // paper's exclusion: fixed by the swap-out trick
      }
      ++required;
      satisfied += met[static_cast<std::size_t>(a) * L + b];
    }
  }
  return required == 0 ? 1.0
                       : static_cast<double>(satisfied) /
                             static_cast<double>(required);
}

Sketch make_travel_path_sketch() {
  return Sketch({
      {"phase_a", {0, 1}},
      {"phase_b", {0, 1}},
      {"rounds_coeff", {1, 2, 3}},
      {"rounds_offset", {-2, -1, 0, 1, 2}},
  });
}

TravelPathParams decode_travel_path(const HoleAssignment& a) {
  require(a.size() == 4, "decode_travel_path: wrong assignment size");
  return TravelPathParams{a[0], a[1], a[2], a[3]};
}

}  // namespace qfto
