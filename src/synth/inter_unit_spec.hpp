// Abstract (position-only) model of the inter-unit travel-path template and
// the all-pairs-meet specifications of Appendices 5 and 7. This is the
// "implementation + specification" pair fed to the sketch solver: the
// template is
//     for i in 0 .. T-1:
//         CPHASE on every open cross link
//         odd-even SWAP layer on line A at parity (i + phase_a) mod 2
//         odd-even SWAP layer on line B at parity (i + phase_b) mod 2
// with holes phase_a, phase_b and T = coeff*L + offset, and the spec asks
// that every (A,B) occupant pair aligns with a cross link at least once —
// except pairs the backend provably cannot align (Sycamore's equal-position
// pairs), which the paper fixes with the swap-out trick.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "synth/sketch.hpp"

namespace qfto {

enum class CrossLinkFamily {
  kOffsetByOne,    // Sycamore: A position p (odd) ~ B position p±1 (§5)
  kEqualPosition,  // 2D grid / lattice surgery verticals (Appendix 7)
};

struct TravelPathParams {
  std::int32_t phase_a = 0;
  std::int32_t phase_b = 0;
  std::int32_t rounds_coeff = 2;   // T = rounds_coeff * L + rounds_offset
  std::int32_t rounds_offset = 0;
};

/// Fraction of required pairs that meet under the parameters (1.0 = spec
/// satisfied). For kOffsetByOne, equal-start-position pairs are excluded from
/// the requirement, mirroring the paper's specification.
double travel_path_coverage(std::int32_t line_len, CrossLinkFamily family,
                            const TravelPathParams& params);

/// The hole space used by the paper-shaped sketch (phases in {0,1},
/// coefficient in {1,2,3}, offset in {-2..2}).
Sketch make_travel_path_sketch();

/// Decodes a sketch assignment into parameters (same hole order as
/// make_travel_path_sketch).
TravelPathParams decode_travel_path(const HoleAssignment& a);

}  // namespace qfto
