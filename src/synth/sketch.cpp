#include "synth/sketch.hpp"

#include <optional>

namespace qfto {

Sketch::Sketch(std::vector<Hole> holes) : holes_(std::move(holes)) {
  for (const auto& h : holes_) {
    require(!h.domain.empty(), "Sketch: hole with empty domain");
  }
}

std::int64_t Sketch::space_size() const {
  std::int64_t size = 1;
  for (const auto& h : holes_) size *= static_cast<std::int64_t>(h.domain.size());
  return size;
}

std::optional<HoleAssignment> Sketch::solve(const SketchSpec& spec) const {
  auto all = solve_all(spec, 1);
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::vector<HoleAssignment> Sketch::solve_all(const SketchSpec& spec,
                                              std::int64_t limit) const {
  tried_ = 0;
  std::vector<HoleAssignment> found;
  HoleAssignment current(holes_.size());
  std::vector<std::size_t> idx(holes_.size(), 0);
  const std::size_t k = holes_.size();
  while (true) {
    for (std::size_t i = 0; i < k; ++i) current[i] = holes_[i].domain[idx[i]];
    ++tried_;
    if (spec(current)) {
      found.push_back(current);
      if (static_cast<std::int64_t>(found.size()) >= limit) return found;
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < k) {
      if (++idx[pos] < holes_[pos].domain.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == k) break;
    if (k == 0) break;
  }
  return found;
}

}  // namespace qfto
