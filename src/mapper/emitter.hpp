// LayerEmitter: the single funnel through which every analytical mapper
// emits gates. It enforces, at construction time of the circuit (not after
// the fact), the three hardware rules:
//   * two-qubit gates only on coupling-graph edges,
//   * one gate per physical qubit per layer,
//   * CPHASE only when the relaxed-ordering window (QftState) allows it.
// It simultaneously tracks the logical<->physical mapping through SWAPs and
// stamps the correct QFT angle on every CPHASE from the logical indices.
//
// Fused verification: constructed with a verify::EmitAudit, the emitter also
// maintains the latency-weighted ASAP depth and gate counts gate-by-gate —
// the same arithmetic, in the same gate order, as IncrementalQftChecker —
// and renders the verdict in finish(). The construction-time rules above
// discharge the checker's per-gate obligations (adjacency, exactly-once
// pairs/Hs in the relaxed window, tracked final mapping), so the pipeline
// can skip its separate post-hoc verification stream entirely: the audited
// QftCheckResult is bit-identical to check_qft_mapping on the same circuit.
//
// The try_* methods are header-inline deliberately: they are the per-gate
// hot path (tens of millions of calls at device scale), and cross-TU calls
// cost more than the work they do.
#pragma once

#include "arch/coupling_graph.hpp"
#include "circuit/mapped_circuit.hpp"
#include "mapper/qft_state.hpp"
#include "verify/mapping_tracker.hpp"
#include "verify/verifier.hpp"

namespace qfto {

class LayerEmitter {
 public:
  /// `audit` (optional) arms fused verification; it must outlive the
  /// emitter, and its latency model is consulted once per emitted gate.
  LayerEmitter(const CouplingGraph& graph,
               std::vector<PhysicalQubit> initial_mapping, QftState& state,
               verify::EmitAudit* audit = nullptr);

  const CouplingGraph& graph() const { return graph_; }
  const MappingTracker& tracker() const { return tracker_; }
  QftState& state() { return state_; }

  LogicalQubit occupant(PhysicalQubit p) const {
    return tracker_.logical_at(p);
  }

  /// A pre-resolved coupling edge: adjacency was proven (and the link type
  /// captured for the audit's latency charge) by resolve_edge, so the
  /// per-gate try_* fast paths skip the CSR probe. Handles stay valid as
  /// long as the graph does — mappers hold it const for the whole emission.
  struct EdgeHandle {
    PhysicalQubit a;
    PhysicalQubit b;
    LinkType link;
  };

  /// Probes the coupling graph once; throws if (a, b) is not an edge.
  /// Mappers whose physical structure is fixed (slot lines, cross links)
  /// resolve each edge once up front instead of per emitted gate.
  EdgeHandle resolve_edge(PhysicalQubit a, PhysicalQubit b) const {
    const auto link = graph_.link_type(a, b);
    require(link.has_value(), "resolve_edge: nodes not coupled");
    return EdgeHandle{a, b, *link};
  }

  /// Pre-sizes the gate store (growth reallocation of a multi-GB gate vector
  /// dominated device-scale emission). Mappers with a swap-count estimate
  /// call it once up front.
  void reserve_gates(std::int64_t gate_count) {
    if (gate_count > 0) {
      circuit_.reserve(static_cast<std::size_t>(gate_count));
    }
  }

  /// Closes the current layer; subsequent gates start a new parallel layer.
  void next_layer() { ++layer_; }

  bool busy(PhysicalQubit p) const { return busy_layer_[p] == layer_; }

  /// Emits CPHASE between the occupants of the edge's endpoints if the
  /// window allows and both nodes are idle this layer. Returns true if
  /// emitted. The handle variant is the hot path: adjacency and link type
  /// were resolved once, so nothing per-gate touches the CSR.
  bool try_cphase(const EdgeHandle& e) {
    const PhysicalQubit a = e.a, b = e.b;
    if (busy(a) || busy(b)) return false;
    const LogicalQubit la = tracker_.logical_at(a);
    const LogicalQubit lb = tracker_.logical_at(b);
    if (la == kInvalidQubit || lb == kInvalidQubit) return false;
    if (!state_.can_pair(la, lb)) return false;
    const auto lo = std::min(la, lb), hi = std::max(la, lb);
    // The paper writes G(target, control) with the larger index as control;
    // the unitary is symmetric, so record (lo, hi) canonically on physical
    // wires. The angle depends only on the gap; the table keeps qft_angle's
    // libm scaling out of the per-gate path.
    circuit_.append(
        Gate::cphase(a, b, angle_by_gap_[static_cast<std::size_t>(hi - lo)]));
    state_.mark_pair(la, lb);
    mark_busy(a);
    mark_busy(b);
    ++gates_emitted_;
    if (audit_ != nullptr) {
      audit_step(GateKind::kCPhase, a, b, e.link);
      ++audit_counts_.cphase;
    }
    return true;
  }

  bool try_cphase(PhysicalQubit a, PhysicalQubit b) {
    return try_cphase(resolve_edge(a, b));
  }

  /// Emits H on the occupant of p if enabled and idle. Returns true if so.
  bool try_h(PhysicalQubit p) {
    if (busy(p)) return false;
    const LogicalQubit l = tracker_.logical_at(p);
    if (l == kInvalidQubit || !state_.can_self(l)) return false;
    circuit_.append(Gate::h(p));
    state_.mark_self(l);
    mark_busy(p);
    ++gates_emitted_;
    if (audit_ != nullptr) {
      audit_step(GateKind::kH, p, kInvalidQubit, LinkType::kStandard);
      ++audit_counts_.h;
    }
    return true;
  }

  /// Emits SWAP on the edge if both endpoints are idle (adjacency was
  /// enforced at resolve time).
  bool try_swap(const EdgeHandle& e) {
    const PhysicalQubit a = e.a, b = e.b;
    if (busy(a) || busy(b)) return false;
    circuit_.append(Gate::swap(a, b));
    tracker_.apply_swap(a, b);
    mark_busy(a);
    mark_busy(b);
    ++gates_emitted_;
    if (audit_ != nullptr) {
      audit_step(GateKind::kSwap, a, b, e.link);
      ++audit_counts_.swap;
    }
    return true;
  }

  bool try_swap(PhysicalQubit a, PhysicalQubit b) {
    return try_swap(resolve_edge(a, b));
  }

  /// Total gates emitted (stall detection) and per-kind tallies.
  std::int64_t gates_emitted() const { return gates_emitted_; }
  std::int64_t layer_index() const { return layer_; }

  /// Finalizes into a MappedCircuit (emitter unusable afterwards). With an
  /// audit armed, also renders the fused verification verdict.
  MappedCircuit finish() &&;

 private:
  void mark_busy(PhysicalQubit p) { busy_layer_[p] = layer_; }

  /// Same ASAP recurrence, in the same gate order, as the streaming checker
  /// — the audited depth is bit-identical to post-hoc verification.
  void audit_step(GateKind kind, PhysicalQubit a, PhysicalQubit b,
                  LinkType link) {
    Cycle t = audit_ready_[a];
    if (b != kInvalidQubit) t = std::max(t, audit_ready_[b]);
    const Cycle fin = t + audit_->model.cycles_on_link(kind, link);
    audit_ready_[a] = fin;
    if (b != kInvalidQubit) audit_ready_[b] = fin;
    if (fin > audit_depth_) audit_depth_ = fin;
  }

  const CouplingGraph& graph_;
  Circuit circuit_;
  std::vector<PhysicalQubit> initial_;
  MappingTracker tracker_;
  QftState& state_;
  std::vector<double> angle_by_gap_;      // qft_angle(0, gap)
  std::vector<std::int64_t> busy_layer_;  // last layer index that used node p
  std::int64_t layer_ = 0;
  std::int64_t gates_emitted_ = 0;

  verify::EmitAudit* audit_ = nullptr;
  std::vector<Cycle> audit_ready_;  // fused ASAP state, one per wire
  Cycle audit_depth_ = 0;
  GateCounts audit_counts_;
};

}  // namespace qfto
