// LayerEmitter: the single funnel through which every analytical mapper
// emits gates. It enforces, at construction time of the circuit (not after
// the fact), the three hardware rules:
//   * two-qubit gates only on coupling-graph edges,
//   * one gate per physical qubit per layer,
//   * CPHASE only when the relaxed-ordering window (QftState) allows it.
// It simultaneously tracks the logical<->physical mapping through SWAPs and
// stamps the correct QFT angle on every CPHASE from the logical indices.
#pragma once

#include "arch/coupling_graph.hpp"
#include "circuit/mapped_circuit.hpp"
#include "mapper/qft_state.hpp"
#include "verify/mapping_tracker.hpp"

namespace qfto {

class LayerEmitter {
 public:
  LayerEmitter(const CouplingGraph& graph,
               std::vector<PhysicalQubit> initial_mapping, QftState& state);

  const CouplingGraph& graph() const { return graph_; }
  const MappingTracker& tracker() const { return tracker_; }
  QftState& state() { return state_; }

  LogicalQubit occupant(PhysicalQubit p) const { return tracker_.logical_at(p); }

  /// Closes the current layer; subsequent gates start a new parallel layer.
  void next_layer();

  bool busy(PhysicalQubit p) const;

  /// Emits CPHASE between the occupants of a and b if the window allows and
  /// both nodes are idle this layer. Returns true if emitted.
  bool try_cphase(PhysicalQubit a, PhysicalQubit b);

  /// Emits H on the occupant of p if enabled and idle. Returns true if so.
  bool try_h(PhysicalQubit p);

  /// Emits SWAP(a,b) if both idle (adjacency always enforced).
  bool try_swap(PhysicalQubit a, PhysicalQubit b);

  /// Total gates emitted (stall detection) and per-kind tallies.
  std::int64_t gates_emitted() const { return gates_emitted_; }
  std::int64_t layer_index() const { return layer_; }

  /// Finalizes into a MappedCircuit (emitter unusable afterwards).
  MappedCircuit finish() &&;

 private:
  const CouplingGraph& graph_;
  Circuit circuit_;
  std::vector<PhysicalQubit> initial_;
  MappingTracker tracker_;
  QftState& state_;
  std::vector<std::int64_t> busy_layer_;  // last layer index that used node p
  std::int64_t layer_ = 0;
  std::int64_t gates_emitted_ = 0;

  void mark_busy(PhysicalQubit p);
};

}  // namespace qfto
