#include "mapper/lnn_mapper.hpp"

#include <numeric>

#include "arch/line.hpp"
#include "mapper/line_engine.hpp"

namespace qfto {

MappedCircuit map_qft_lnn(std::int32_t n, verify::EmitAudit* audit) {
  require(n >= 1, "map_qft_lnn: n >= 1");
  const CouplingGraph g = make_line(n);
  QftState state(n);
  std::vector<PhysicalQubit> initial(n);
  std::iota(initial.begin(), initial.end(), 0);
  LayerEmitter em(g, initial, state, audit);
  em.reserve_gates(2 * (static_cast<std::int64_t>(n) * (n - 1) / 2 + n));
  std::vector<PhysicalQubit> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  run_line_qft(em, Line(em, std::move(nodes)));
  return std::move(em).finish();
}

}  // namespace qfto
