#include "mapper/lnn_mapper.hpp"

#include <numeric>

#include "arch/line.hpp"
#include "mapper/line_engine.hpp"

namespace qfto {

MappedCircuit map_qft_lnn(std::int32_t n) {
  require(n >= 1, "map_qft_lnn: n >= 1");
  const CouplingGraph g = make_line(n);
  QftState state(n);
  std::vector<PhysicalQubit> initial(n);
  std::iota(initial.begin(), initial.end(), 0);
  LayerEmitter em(g, initial, state);
  std::vector<PhysicalQubit> line(n);
  std::iota(line.begin(), line.end(), 0);
  run_line_qft(em, line);
  return std::move(em).finish();
}

}  // namespace qfto
