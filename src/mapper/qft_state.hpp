// Progress tracker for the relaxed-ordering QFT dependence structure
// (Insight 1, §3.1). The QFT on n objects consists of one "self" operation
// per object (H at qubit granularity, QFT-IA at unit granularity) and one
// pairwise operation per pair (CPHASE / QFT-IE). The only true dependences
// (Type II) are:
//   pair {a,b}, a<b: runs after self(a) and before self(b);
//   self(a): runs after every pair {k,a} with k < a.
// This class answers "may X run now?" and tracks completion; the same code
// drives both qubit-level mappers and the unit-level divide-and-conquer.
//
// Header-only on purpose: can_pair/mark_pair sit inside every emitter's
// per-gate loop, and the pair set is a packed upper-triangular bitset —
// n(n-1)/2 bits (~4 MiB at n ≈ 8k) instead of the n² bytes (~68 MB) the
// byte-matrix version needed, so the whole working set stays cache-resident
// at device scale.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace qfto {

class QftState {
 public:
  explicit QftState(std::int32_t n)
      : n_(n),
        self_done_(static_cast<std::size_t>(n), 0),
        pair_done_((pair_count(n) + 63) / 64, 0),
        row_base_(static_cast<std::size_t>(n), 0),
        pending_smaller_(static_cast<std::size_t>(n), 0),
        pairs_remaining_(pair_count(n)),
        selfs_remaining_(n) {
    require(n >= 0, "QftState: negative n");
    std::uint64_t base = 0;
    for (std::int32_t a = 0; a < n; ++a) {
      pending_smaller_[a] = a;
      row_base_[a] = base;
      base += static_cast<std::uint64_t>(n - 1 - a);
    }
  }

  std::int32_t n() const { return n_; }

  bool self_done(std::int32_t a) const { return self_done_[a]; }

  bool pair_done(std::int32_t a, std::int32_t b) const {
    return pair_bit(idx(a, b));
  }

  /// Pair {a,b} may run iff not done, self(min) done, self(max) not done.
  bool can_pair(std::int32_t a, std::int32_t b) const {
    if (a == b || pair_bit(idx(a, b))) return false;
    const auto [lo, hi] = std::minmax(a, b);
    return self_done_[lo] && !self_done_[hi];
  }

  /// self(a) may run iff not done and every pair {k,a}, k<a is done.
  bool can_self(std::int32_t a) const {
    return !self_done_[a] && pending_smaller_[a] == 0;
  }

  void mark_pair(std::int32_t a, std::int32_t b) {
    const std::uint64_t i = idx(a, b);
    require(a != b && !pair_bit(i), "QftState::mark_pair: invalid");
    pair_done_[i >> 6] |= std::uint64_t{1} << (i & 63);
    --pending_smaller_[std::max(a, b)];
    --pairs_remaining_;
  }

  void mark_self(std::int32_t a) {
    require(!self_done_[a], "QftState::mark_self: already done");
    self_done_[a] = 1;
    --selfs_remaining_;
  }

  std::int64_t pairs_remaining() const { return pairs_remaining_; }
  std::int32_t selfs_remaining() const { return selfs_remaining_; }
  bool all_done() const {
    return pairs_remaining_ == 0 && selfs_remaining_ == 0;
  }

 private:
  static std::int64_t pair_count(std::int32_t n) {
    return static_cast<std::int64_t>(n) * (n - 1) / 2;
  }

  /// Packed upper-triangular bit index of pair {a,b}: row_base_[lo] replaces
  /// the closed-form lo*(2n-lo-1)/2 multiply with one table load.
  std::uint64_t idx(std::int32_t a, std::int32_t b) const {
    const auto [lo, hi] = std::minmax(a, b);
    return row_base_[lo] + static_cast<std::uint64_t>(hi - lo - 1);
  }

  bool pair_bit(std::uint64_t i) const {
    return (pair_done_[i >> 6] >> (i & 63)) & 1u;
  }

  std::int32_t n_ = 0;
  std::vector<std::uint8_t> self_done_;
  std::vector<std::uint64_t> pair_done_;  // triangular, n(n-1)/2 bits
  std::vector<std::uint64_t> row_base_;   // idx of pair {a,a+1} per row a
  /// pending_smaller_[a] = #pairs {k,a}, k<a not yet done (gates self(a)).
  std::vector<std::int32_t> pending_smaller_;
  std::int64_t pairs_remaining_ = 0;
  std::int32_t selfs_remaining_ = 0;
};

}  // namespace qfto
