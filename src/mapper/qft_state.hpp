// Progress tracker for the relaxed-ordering QFT dependence structure
// (Insight 1, §3.1). The QFT on n objects consists of one "self" operation
// per object (H at qubit granularity, QFT-IA at unit granularity) and one
// pairwise operation per pair (CPHASE / QFT-IE). The only true dependences
// (Type II) are:
//   pair {a,b}, a<b: runs after self(a) and before self(b);
//   self(a): runs after every pair {k,a} with k < a.
// This class answers "may X run now?" and tracks completion; the same code
// drives both qubit-level mappers and the unit-level divide-and-conquer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace qfto {

class QftState {
 public:
  explicit QftState(std::int32_t n);

  std::int32_t n() const { return n_; }

  bool self_done(std::int32_t a) const { return self_done_[a]; }
  bool pair_done(std::int32_t a, std::int32_t b) const;

  /// Pair {a,b} may run iff not done, self(min) done, self(max) not done.
  bool can_pair(std::int32_t a, std::int32_t b) const;

  /// self(a) may run iff not done and every pair {k,a}, k<a is done.
  bool can_self(std::int32_t a) const;

  void mark_pair(std::int32_t a, std::int32_t b);
  void mark_self(std::int32_t a);

  std::int64_t pairs_remaining() const { return pairs_remaining_; }
  std::int32_t selfs_remaining() const { return selfs_remaining_; }
  bool all_done() const { return pairs_remaining_ == 0 && selfs_remaining_ == 0; }

 private:
  std::size_t idx(std::int32_t a, std::int32_t b) const;

  std::int32_t n_ = 0;
  std::vector<std::uint8_t> self_done_;
  std::vector<std::uint8_t> pair_done_;
  /// pending_smaller_[a] = #pairs {k,a}, k<a not yet done (gates self(a)).
  std::vector<std::int32_t> pending_smaller_;
  std::int64_t pairs_remaining_ = 0;
  std::int32_t selfs_remaining_ = 0;
};

}  // namespace qfto
