#include "mapper/two_line_ie.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace qfto {

std::vector<LayerEmitter::EdgeHandle> resolve_cross_links(
    const LayerEmitter& em, const Line& line_a, const Line& line_b,
    const std::vector<CrossLink>& links) {
  std::vector<LayerEmitter::EdgeHandle> handles;
  handles.reserve(links.size());
  for (const auto& [pa, pb] : links) {
    handles.push_back(em.resolve_edge(line_a[static_cast<std::size_t>(pa)],
                                      line_b[static_cast<std::size_t>(pb)]));
  }
  return handles;
}

std::int32_t line_shift_layer(LayerEmitter& em, const Line& line,
                              std::int32_t parity) {
  std::int32_t emitted = 0;
  for (std::size_t i = static_cast<std::size_t>(parity & 1); i + 1 < line.size();
       i += 2) {
    if (em.try_swap(line.edge(i))) ++emitted;
  }
  return emitted;
}

namespace {

std::int64_t owed_pairs(const LayerEmitter& em, const Line& line_a,
                        const Line& line_b, const QftState& state) {
  std::int64_t owed = 0;
  for (PhysicalQubit pa : line_a.nodes()) {
    const LogicalQubit a = em.tracker().logical_at(pa);
    for (PhysicalQubit pb : line_b.nodes()) {
      const LogicalQubit b = em.tracker().logical_at(pb);
      if (!state.pair_done(a, b)) ++owed;
    }
  }
  return owed;
}

// Type-I wavefront for QFT-IE-strict (Fig. 25/26): pair (a, b) may fire only
// when it is the next pair in textbook order on BOTH wires. Ranks are the
// positions of the logical ids in each line's sorted occupant list; legal
// pairs at any instant form an anti-diagonal front.
class StrictFront {
 public:
  StrictFront(const LayerEmitter& em, const Line& line_a, const Line& line_b) {
    auto occupants = [&](const Line& line) {
      std::vector<LogicalQubit> ls;
      for (PhysicalQubit p : line.nodes()) {
        ls.push_back(em.tracker().logical_at(p));
      }
      std::sort(ls.begin(), ls.end());
      return ls;
    };
    sorted_a_ = occupants(line_a);
    sorted_b_ = occupants(line_b);
    next_b_.assign(sorted_a_.size(), 0);
    next_a_.assign(sorted_b_.size(), 0);
  }

  bool allowed(LogicalQubit a, LogicalQubit b) const {
    const std::int32_t ra = rank(sorted_a_, a), rb = rank(sorted_b_, b);
    return next_b_[ra] == rb && next_a_[rb] == ra;
  }

  void advance(LogicalQubit a, LogicalQubit b) {
    ++next_b_[rank(sorted_a_, a)];
    ++next_a_[rank(sorted_b_, b)];
  }

 private:
  static std::int32_t rank(const std::vector<LogicalQubit>& sorted,
                           LogicalQubit l) {
    return static_cast<std::int32_t>(
        std::lower_bound(sorted.begin(), sorted.end(), l) - sorted.begin());
  }

  std::vector<LogicalQubit> sorted_a_, sorted_b_;
  std::vector<std::int32_t> next_b_, next_a_;
};

std::int32_t cphase_layer(LayerEmitter& em,
                          const std::vector<LayerEmitter::EdgeHandle>& links,
                          StrictFront* strict) {
  std::int32_t emitted = 0;
  for (const auto& e : links) {
    if (strict) {
      const LogicalQubit a = em.tracker().logical_at(e.a);
      const LogicalQubit b = em.tracker().logical_at(e.b);
      if (a == kInvalidQubit || b == kInvalidQubit || !strict->allowed(a, b)) {
        continue;
      }
      if (em.try_cphase(e)) {
        strict->advance(a, b);
        ++emitted;
      }
    } else if (em.try_cphase(e)) {
      ++emitted;
    }
  }
  return emitted;
}

}  // namespace

void run_two_line_ie(LayerEmitter& em, const Line& line_a, const Line& line_b,
                     const std::vector<LayerEmitter::EdgeHandle>& links,
                     const TwoLineIeConfig& cfg) {
  require(!links.empty(), "run_two_line_ie: no cross links");
  std::int64_t owed = owed_pairs(em, line_a, line_b, em.state());
  if (owed == 0) return;

  std::optional<StrictFront> strict_front;
  if (cfg.strict) strict_front.emplace(em, line_a, line_b);
  StrictFront* strict = strict_front ? &*strict_front : nullptr;

  // Strict ordering serves at most one anti-diagonal front per alignment, so
  // it legitimately needs about twice the rounds (§3.3's 2x claim).
  const std::int64_t main_cap =
      (cfg.strict ? 8 : 4) *
          static_cast<std::int64_t>(line_a.size() + line_b.size()) +
      32;
  std::int32_t rounds_without_progress = 0;
  const std::int32_t patience =
      cfg.strict ? 8 + static_cast<std::int32_t>(line_a.size() + line_b.size())
                 : 2;
  for (std::int64_t round = 0; owed > 0 && round <= main_cap; ++round) {
    em.next_layer();
    const std::int32_t fired = cphase_layer(em, links, strict);
    owed -= fired;
    if (owed == 0) return;
    rounds_without_progress = fired > 0 ? 0 : rounds_without_progress + 1;
    if (rounds_without_progress > patience) break;  // exhausted: mop up

    em.next_layer();
    line_shift_layer(em, line_a, (round + cfg.parity_a) & 1);
    line_shift_layer(em, line_b, (round + cfg.parity_b) & 1);
  }

  // First-line fix-up — the paper's same-position CPHASE trick, batched:
  // shift one line by one layer, interact at the new alignment, shift back.
  // Three layers per attempt; resolves the Sycamore equal-position leftovers
  // (and most lattice stragglers) without disturbing the arrangement.
  for (std::int32_t parity = 0; parity < 2 && owed > 0; ++parity) {
    for (const auto* line : {&line_a, &line_b}) {
      em.next_layer();
      line_shift_layer(em, *line, parity);
      em.next_layer();
      owed -= cphase_layer(em, links, strict);
      em.next_layer();
      line_shift_layer(em, *line, parity);  // restore
      if (owed == 0) return;
    }
  }

  // Guaranteed mop-up: the generalization of the same-position trick.
  // Freeze line A; line B alone runs the odd-even bounce, whose triangle-wave
  // trajectories visit every position within ~2·L rounds, so every leftover
  // pair whose A-side qubit sits on a link-bearing position must align.
  // Link families that skip positions (Sycamore exposes only odd A
  // positions) need the A line shifted by one layer between bounce passes so
  // every qubit takes a turn on a linked position. Still O(L) layers total.
  const std::int64_t bounce_cap =
      (cfg.strict ? 6 : 2) *
          static_cast<std::int64_t>(std::max(line_a.size(), line_b.size())) +
      8;
  for (std::int32_t pass = 0; owed > 0; ++pass) {
    const std::int32_t pass_cap =
        cfg.strict
            ? 8 + 2 * static_cast<std::int32_t>(
                          std::max(line_a.size(), line_b.size()))
            : 4;
    if (pass >= pass_cap) {
      throw std::logic_error("run_two_line_ie: mop-up passes exceeded with " +
                             std::to_string(owed) + " pairs owed");
    }
    if (pass > 0) {
      em.next_layer();
      line_shift_layer(em, line_a, pass & 1);
    }
    std::int32_t idle = 0;
    const std::int32_t idle_cap =
        cfg.strict ? 8 + static_cast<std::int32_t>(line_b.size()) : 4;
    for (std::int64_t r = 0; owed > 0 && r <= bounce_cap && idle <= idle_cap;
         ++r) {
      em.next_layer();
      line_shift_layer(em, line_b, static_cast<std::int32_t>(r) & 1);
      em.next_layer();
      const std::int32_t fired = cphase_layer(em, links, strict);
      owed -= fired;
      idle = fired > 0 ? 0 : idle + 1;
    }
  }
}

}  // namespace qfto
