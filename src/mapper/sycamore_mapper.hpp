// Google Sycamore QFT mapper (§5): units of two rows (a 2m-qubit line each),
// intra-unit QFT via the LNN engine, inter-unit QFT-IE via the synced travel
// path (relaxed ordering), adjacent units exchanged with the 3-step unit
// SWAP, all orchestrated by the unit-level divide-and-conquer (Fig. 14).
// Depth 7N + O(sqrt(N)) per the paper; our closed-loop realization achieves
// the same linear law with a comparable constant (see EXPERIMENTS.md).
#pragma once

#include "circuit/mapped_circuit.hpp"
#include "verify/verifier.hpp"

namespace qfto {

/// m must be even and >= 2; N = m*m. `strict_ie` switches the inter-unit
/// pattern from QFT-IE-relaxed to QFT-IE-strict (§3.3 ablation, ~2x slower).
/// `audit`, when non-null, engages fused verification (verify::EmitAudit).
MappedCircuit map_qft_sycamore(std::int32_t m, bool strict_ie = false,
                               verify::EmitAudit* audit = nullptr);

}  // namespace qfto
