#include "mapper/line_engine.hpp"

#include <stdexcept>

namespace qfto {

namespace {

LogicalQubit occ(const LayerEmitter& em, PhysicalQubit p) {
  return em.tracker().logical_at(p);
}

}  // namespace

std::int32_t line_interaction_layer(LayerEmitter& em, const Line& line) {
  std::int32_t emitted = 0;
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    if (em.try_cphase(line.edge(i))) ++emitted;
  }
  for (PhysicalQubit p : line.nodes()) {
    if (em.try_h(p)) ++emitted;
  }
  return emitted;
}

std::int32_t line_movement_layer(LayerEmitter& em, const Line& line,
                                 bool ascending, const NodeVeto& frozen) {
  std::int32_t emitted = 0;
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    const PhysicalQubit pa = line[i], pb = line[i + 1];
    if (frozen && (frozen(pa) || frozen(pb))) continue;
    const LogicalQubit a = occ(em, pa), b = occ(em, pb);
    if (a == kInvalidQubit || b == kInvalidQubit) continue;
    const bool uncrossed = ascending ? (a < b) : (a > b);
    if (uncrossed && em.state().pair_done(a, b)) {
      if (em.try_swap(line.edge(i))) ++emitted;
    }
  }
  return emitted;
}

bool line_monotone(const LayerEmitter& em, const Line& line, bool ascending) {
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    const LogicalQubit a = occ(em, line[i]), b = occ(em, line[i + 1]);
    if (ascending ? (a > b) : (a < b)) return false;
  }
  return true;
}

void line_presort_ascending(LayerEmitter& em, const Line& line) {
  while (!line_monotone(em, line, /*ascending=*/true)) {
    em.next_layer();
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
      const LogicalQubit a = occ(em, line[i]), b = occ(em, line[i + 1]);
      if (a != kInvalidQubit && b != kInvalidQubit && a > b) {
        em.try_swap(line.edge(i));
      }
    }
  }
}

void run_line_qft(LayerEmitter& em, const Line& line) {
  if (line.empty()) return;
  const bool asc_ok = line_monotone(em, line, true);
  const bool desc_ok = line_monotone(em, line, false);
  if (!asc_ok && !desc_ok) line_presort_ascending(em, line);
  const bool ascending = line_monotone(em, line, true);

  // Count the interactions still owed among this line's occupants.
  std::int64_t pending = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const LogicalQubit a = occ(em, line[i]);
    if (!em.state().self_done(a)) ++pending;
    for (std::size_t j = i + 1; j < line.size(); ++j) {
      const LogicalQubit b = occ(em, line[j]);
      if (!em.state().pair_done(a, b)) ++pending;
    }
  }

  std::int32_t idle_rounds = 0;
  while (pending > 0) {
    em.next_layer();
    const std::int32_t interacted = line_interaction_layer(em, line);
    pending -= interacted;
    std::int32_t moved = 0;
    if (pending > 0) {
      em.next_layer();
      moved = line_movement_layer(em, line, ascending);
    }
    if (interacted == 0 && moved == 0) {
      if (++idle_rounds > 2) {
        throw std::logic_error("run_line_qft: stalled — line occupants "
                               "cannot complete their QFT locally");
      }
    } else {
      idle_rounds = 0;
    }
  }
}

}  // namespace qfto
