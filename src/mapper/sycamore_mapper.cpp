#include "mapper/sycamore_mapper.hpp"

#include "arch/sycamore.hpp"
#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"
#include "mapper/two_line_ie.hpp"
#include "mapper/unit_driver.hpp"

namespace qfto {

MappedCircuit map_qft_sycamore(std::int32_t m, bool strict_ie) {
  require(m >= 2 && m % 2 == 0, "map_qft_sycamore: m must be even and >= 2");
  const SycamoreLayout lay{m};
  const CouplingGraph g = make_sycamore(m);
  const std::int32_t n = lay.num_qubits();
  const std::int32_t units = lay.num_units();
  const std::int32_t len = lay.unit_len();

  // Initial mapping: natural order along each unit line, units stacked —
  // logical u*2m + p sits at line position p of unit slot u.
  std::vector<PhysicalQubit> initial(n);
  for (std::int32_t u = 0; u < units; ++u) {
    for (std::int32_t p = 0; p < len; ++p) {
      initial[u * len + p] = lay.unit_pos(u, p);
    }
  }
  QftState state(n);
  LayerEmitter em(g, initial, state);

  // Physical line of each unit slot (slots are fixed; contents move).
  std::vector<std::vector<PhysicalQubit>> slot_line(units);
  for (std::int32_t u = 0; u < units; ++u) {
    slot_line[u].resize(len);
    for (std::int32_t p = 0; p < len; ++p) slot_line[u][p] = lay.unit_pos(u, p);
  }

  // Cross links between vertically adjacent slots, in line coordinates.
  std::vector<CrossLink> cross;
  for (std::int32_t pa = 1; pa < len; pa += 2) {
    cross.push_back({pa, pa - 1});
    if (pa + 1 < len) cross.push_back({pa, pa + 1});
  }

  UnitOps ops;
  ops.ia = [&](std::int32_t s) { run_line_qft(em, slot_line[s]); };
  ops.ie = [&](std::int32_t s) {
    // Both units follow the same travel path (synced phases) — the Sycamore
    // regime of §5; the engine's fix-up supplies the equal-position pairs.
    TwoLineIeConfig cfg{0, 0};
    cfg.strict = strict_ie;
    run_two_line_ie(em, slot_line[s], slot_line[s + 1], cross, cfg);
  };
  ops.unit_swap = [&](std::int32_t s) {
    // 3-step order-preserving unit SWAP across the cross-link matching
    // {(lower 2c+1 of slot s, upper 2c of slot s+1)}:
    //   cross matching, intra-unit pair layer in both units, cross matching.
    const auto& a = slot_line[s];
    const auto& b = slot_line[s + 1];
    em.next_layer();
    for (std::int32_t c = 0; 2 * c + 1 < len; ++c) em.try_swap(a[2 * c + 1], b[2 * c]);
    em.next_layer();
    for (std::int32_t c = 0; 2 * c + 1 < len; ++c) {
      em.try_swap(a[2 * c], a[2 * c + 1]);
      em.try_swap(b[2 * c], b[2 * c + 1]);
    }
    em.next_layer();
    for (std::int32_t c = 0; 2 * c + 1 < len; ++c) em.try_swap(a[2 * c + 1], b[2 * c]);
  };

  run_unit_qft(units, ops);
  return std::move(em).finish();
}

}  // namespace qfto
