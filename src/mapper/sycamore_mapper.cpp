#include "mapper/sycamore_mapper.hpp"

#include "arch/sycamore.hpp"
#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"
#include "mapper/two_line_ie.hpp"
#include "mapper/unit_driver.hpp"

namespace qfto {

MappedCircuit map_qft_sycamore(std::int32_t m, bool strict_ie,
                               verify::EmitAudit* audit) {
  require(m >= 2 && m % 2 == 0, "map_qft_sycamore: m must be even and >= 2");
  const SycamoreLayout lay{m};
  const CouplingGraph g = make_sycamore(m);
  const std::int32_t n = lay.num_qubits();
  const std::int32_t units = lay.num_units();
  const std::int32_t len = lay.unit_len();

  // Initial mapping: natural order along each unit line, units stacked —
  // logical u*2m + p sits at line position p of unit slot u.
  std::vector<PhysicalQubit> initial(n);
  for (std::int32_t u = 0; u < units; ++u) {
    for (std::int32_t p = 0; p < len; ++p) {
      initial[u * len + p] = lay.unit_pos(u, p);
    }
  }
  QftState state(n);
  LayerEmitter em(g, initial, state, audit);
  em.reserve_gates(2 * (static_cast<std::int64_t>(n) * (n - 1) / 2 + n));

  // Physical line of each unit slot (slots are fixed; contents move), with
  // intra-line edges pre-resolved.
  std::vector<Line> lines;
  lines.reserve(static_cast<std::size_t>(units));
  for (std::int32_t u = 0; u < units; ++u) {
    std::vector<PhysicalQubit> nodes(static_cast<std::size_t>(len));
    for (std::int32_t p = 0; p < len; ++p) {
      nodes[static_cast<std::size_t>(p)] = lay.unit_pos(u, p);
    }
    lines.emplace_back(em, std::move(nodes));
  }

  // Cross links between vertically adjacent slots, in line coordinates,
  // resolved once per slot pair. The diagonal matching used by unit_swap —
  // (lower 2c+1 of slot s, upper 2c of slot s+1) — is a subset of these
  // links; keep its handles separately for the 3-step move.
  std::vector<CrossLink> cross;
  for (std::int32_t pa = 1; pa < len; pa += 2) {
    cross.push_back({pa, pa - 1});
    if (pa + 1 < len) cross.push_back({pa, pa + 1});
  }
  std::vector<std::vector<LayerEmitter::EdgeHandle>> vert(
      static_cast<std::size_t>(units - 1));
  std::vector<std::vector<LayerEmitter::EdgeHandle>> diag(
      static_cast<std::size_t>(units - 1));
  for (std::int32_t s = 0; s + 1 < units; ++s) {
    vert[s] = resolve_cross_links(em, lines[s], lines[s + 1], cross);
    for (std::int32_t c = 0; 2 * c + 1 < len; ++c) {
      diag[s].push_back(
          em.resolve_edge(lines[s][2 * c + 1], lines[s + 1][2 * c]));
    }
  }

  UnitOps ops;
  ops.ia = [&](std::int32_t s) { run_line_qft(em, lines[s]); };
  ops.ie = [&](std::int32_t s) {
    // Both units follow the same travel path (synced phases) — the Sycamore
    // regime of §5; the engine's fix-up supplies the equal-position pairs.
    TwoLineIeConfig cfg{0, 0};
    cfg.strict = strict_ie;
    run_two_line_ie(em, lines[s], lines[s + 1], vert[s], cfg);
  };
  ops.unit_swap = [&](std::int32_t s) {
    // 3-step order-preserving unit SWAP across the diagonal matching:
    //   cross matching, intra-unit pair layer in both units, cross matching.
    em.next_layer();
    for (const auto& e : diag[s]) em.try_swap(e);
    em.next_layer();
    for (std::int32_t c = 0; 2 * c + 1 < len; ++c) {
      em.try_swap(lines[s].edge(2 * c));
      em.try_swap(lines[s + 1].edge(2 * c));
    }
    em.next_layer();
    for (const auto& e : diag[s]) em.try_swap(e);
  };

  run_unit_qft(units, ops);
  return std::move(em).finish();
}

}  // namespace qfto
