// QFT-IE: bipartite all-to-all interaction between two adjacent units whose
// qubits each form a physical line (§3.3, §5, §6, Appendices 5 & 7).
//
// Both lines run the LNN-inspired travel path of Fig. 13(a): a full odd-even
// SWAP layer per round, with a per-line parity phase. Between movement
// layers, a CPHASE layer fires every open cross link whose logical pair is
// still owed (relaxed ordering: all IE gates commute, §3.1, so any order
// works). Two regimes from the paper:
//   * Sycamore: both units synced (equal phases); pairs that start at equal
//     line positions can then never meet (no equal-position link), so a
//     fix-up desynchronizes one line for a single round and restores it —
//     the paper's "SWAP horizontally, CPHASE, SWAP back" trick, batched.
//   * Lattice surgery / 2D grid: links join equal positions, so the two
//     lines must run with *different* phases (the bottom unit starts one
//     step late, Fig. 16); the same fix-up logic covers boundary cases.
// The engine is closed-loop: it counts the owed pairs up front and runs until
// none remain, throwing if a round cap is exceeded (never observed; guards
// against misconfigured link sets).
//
// Cross links arrive pre-resolved (EdgeHandles): unit slots are fixed
// physical structure, so callers resolve each cross edge once per slot pair
// instead of probing the CSR on every CPHASE layer — the same redesign as
// the Line type in line_engine.hpp.
#pragma once

#include <vector>

#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"

namespace qfto {

struct CrossLink {
  std::int32_t pa;  // position in line A
  std::int32_t pb;  // position in line B
};

/// Resolves positional cross links between two slot lines into edge handles,
/// validating each against the coupling graph. Callers with fixed slots do
/// this once per slot pair and reuse the handles for every IE between them.
std::vector<LayerEmitter::EdgeHandle> resolve_cross_links(
    const LayerEmitter& em, const Line& line_a, const Line& line_b,
    const std::vector<CrossLink>& links);

struct TwoLineIeConfig {
  std::int32_t parity_a = 0;  // movement phase of line A
  std::int32_t parity_b = 0;  // movement phase of line B
  /// QFT-IE-strict (Appendix 5, Fig. 25/26): also respect Type-I ordering —
  /// pair (a_i, b_j) only after (a_i, b_{j'}) for j' < j and (a_{i'}, b_j)
  /// for i' < i (ranks by logical index). Needed for kernels whose two-qubit
  /// interactions do not commute; about 2x slower than relaxed (§3.3).
  bool strict = false;
};

/// Executes QFT-IE between the occupants of lineA and lineB. `links` are the
/// cross edges (A-side endpoint first), typically from resolve_cross_links.
/// Intra-line order on exit is whatever the travel path leaves (callers
/// renormalize via the line engine's presort when they next run QFT-IA).
void run_two_line_ie(LayerEmitter& em, const Line& line_a, const Line& line_b,
                     const std::vector<LayerEmitter::EdgeHandle>& links,
                     const TwoLineIeConfig& cfg = {});

/// Full odd-even SWAP layer at `parity` on one line (the Fig. 13(a) step).
/// Returns the number of SWAPs emitted. Does not advance the layer.
std::int32_t line_shift_layer(LayerEmitter& em, const Line& line,
                              std::int32_t parity);

}  // namespace qfto
