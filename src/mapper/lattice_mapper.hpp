// Lattice-surgery (FT) QFT mapper (§6): each row of the rotated grid
// (Fig. 15(a)) is a unit whose internal links are the fast diagonal-tile
// family; rows are joined by CNOT-only vertical links. Intra-unit QFT runs on
// the fast links; inter-unit QFT-IE runs the offset travel path (the bottom
// unit starts one step late — Fig. 16 / Appendix 7, equal-position links);
// unit SWAP is one transversal layer of vertical SWAPs (3 CNOTs each, depth
// 6). Depth is linear in N under the heterogeneous latency model of §2.3;
// the paper engineers 5N + O(1), our closed-loop realization achieves the
// same law with a larger constant (quantified in EXPERIMENTS.md).
#pragma once

#include "circuit/mapped_circuit.hpp"
#include "verify/verifier.hpp"

namespace qfto {

struct LatticeMapperOptions {
  /// When false, units are exchanged with *fast-link* routing inside rows
  /// instead of transversal vertical SWAPs — used by the latency ablation.
  bool transversal_unit_swap = true;
  /// Offset between the travel-path phases of adjacent units (§6 / Fig. 16:
  /// the bottom unit starts one step late). 0 reproduces the broken "synced"
  /// variant in which equal-position pairs still work (links join equal
  /// positions on this backend) but coverage is slower.
  std::int32_t phase_offset = 1;
  /// QFT-IE-strict instead of relaxed (§3.3 ablation; ~2x slower IE).
  bool strict_ie = false;
};

/// m >= 2; N = m*m, on the rotated lattice-surgery graph. `audit`, when
/// non-null, engages fused verification (verify::EmitAudit).
MappedCircuit map_qft_lattice(std::int32_t m,
                              const LatticeMapperOptions& opts = {},
                              verify::EmitAudit* audit = nullptr);

/// Appendix 7's plain 2D N-by-N grid backend (axial links, uniform latency):
/// the same row-unit scheme on `make_grid(m, m)`. The paper notes "2xN grid
/// architecture does not exist in modern architectures" — this target exists
/// for the synthesis study and as a clean comparison point.
MappedCircuit map_qft_grid2d(std::int32_t m,
                             const LatticeMapperOptions& opts = {},
                             verify::EmitAudit* audit = nullptr);

}  // namespace qfto
