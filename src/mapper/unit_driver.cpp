#include "mapper/unit_driver.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

#include "mapper/qft_state.hpp"

namespace qfto {

void run_unit_qft(std::int32_t num_units, const UnitOps& ops) {
  require(num_units >= 1, "run_unit_qft: need at least one unit");
  require(ops.ia && ops.ie && ops.unit_swap, "run_unit_qft: missing callbacks");
  if (num_units == 1) {
    ops.ia(0);
    return;
  }

  QftState state(num_units);
  std::vector<std::int32_t> occ(num_units);  // slot -> unit id
  std::iota(occ.begin(), occ.end(), 0);

  std::int32_t idle_rounds = 0;
  while (!state.all_done()) {
    bool progress = false;
    std::vector<std::uint8_t> busy(num_units, 0);

    // Interaction round: IE on adjacent slots, then IA on enabled units.
    for (std::int32_t s = 0; s + 1 < num_units; ++s) {
      if (busy[s] || busy[s + 1]) continue;
      if (state.can_pair(occ[s], occ[s + 1])) {
        ops.ie(s);
        state.mark_pair(occ[s], occ[s + 1]);
        busy[s] = busy[s + 1] = 1;
        progress = true;
      }
    }
    for (std::int32_t s = 0; s < num_units; ++s) {
      if (!busy[s] && state.can_self(occ[s])) {
        ops.ia(s);
        state.mark_self(occ[s]);
        busy[s] = 1;
        progress = true;
      }
    }

    // Movement round: unit reversal, crossing once interacted.
    std::fill(busy.begin(), busy.end(), 0);
    for (std::int32_t s = 0; s + 1 < num_units; ++s) {
      if (busy[s] || busy[s + 1]) continue;
      if (occ[s] < occ[s + 1] && state.pair_done(occ[s], occ[s + 1])) {
        ops.unit_swap(s);
        std::swap(occ[s], occ[s + 1]);
        busy[s] = busy[s + 1] = 1;
        progress = true;
      }
    }

    if (!progress) {
      if (++idle_rounds > 2) {
        throw std::logic_error("run_unit_qft: stalled with " +
                               std::to_string(state.pairs_remaining()) +
                               " unit pairs pending");
      }
    } else {
      idle_rounds = 0;
    }
  }
}

}  // namespace qfto
