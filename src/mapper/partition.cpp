#include "mapper/partition.hpp"

#include <numeric>

#include "circuit/qft_spec.hpp"

namespace qfto {

void append_qft_ie(Circuit& c, std::int32_t a0, std::int32_t a1,
                   std::int32_t b0, std::int32_t b1) {
  for (std::int32_t i = a0; i < a1; ++i) {
    for (std::int32_t j = b0; j < b1; ++j) {
      c.append(Gate::cphase(i, j, qft_angle(std::min(i, j), std::max(i, j))));
    }
  }
}

namespace {

void append_qft_ia(Circuit& c, std::int32_t lo, std::int32_t hi) {
  for (std::int32_t i = lo; i < hi; ++i) {
    c.append(Gate::h(i));
    for (std::int32_t j = i + 1; j < hi; ++j) {
      c.append(Gate::cphase(i, j, qft_angle(i, j)));
    }
  }
}

// Fig. 8: QFT-IA(range, range_list) for a list of consecutive sub-ranges.
void append_partitioned(Circuit& c, const std::vector<std::int32_t>& bounds) {
  const std::size_t k = bounds.size() - 1;
  for (std::size_t u = 0; u < k; ++u) {
    append_qft_ia(c, bounds[u], bounds[u + 1]);
    for (std::size_t v = u + 1; v < k; ++v) {
      append_qft_ie(c, bounds[u], bounds[u + 1], bounds[v], bounds[v + 1]);
    }
  }
}

void append_recursive(Circuit& c, std::int32_t lo, std::int32_t hi,
                      std::int32_t fanout, std::int32_t leaf) {
  const std::int32_t len = hi - lo;
  if (len <= leaf || len < 2 * fanout) {
    append_qft_ia(c, lo, hi);
    return;
  }
  std::vector<std::int32_t> bounds{lo};
  for (std::int32_t u = 0; u < fanout; ++u) {
    bounds.push_back(lo + static_cast<std::int32_t>(
                              (static_cast<std::int64_t>(len) * (u + 1)) / fanout));
  }
  for (std::int32_t u = 0; u < fanout; ++u) {
    append_recursive(c, bounds[u], bounds[u + 1], fanout, leaf);
    for (std::int32_t v = u + 1; v < fanout; ++v) {
      append_qft_ie(c, bounds[u], bounds[u + 1], bounds[v], bounds[v + 1]);
    }
  }
}

}  // namespace

Circuit qft_partitioned(std::int32_t n, const std::vector<std::int32_t>& sizes) {
  require(n >= 1, "qft_partitioned: n >= 1");
  std::vector<std::int32_t> bounds{0};
  for (auto s : sizes) {
    require(s > 0, "qft_partitioned: sizes must be positive");
    bounds.push_back(bounds.back() + s);
  }
  require(bounds.back() == n, "qft_partitioned: sizes must sum to n");
  Circuit c(n);
  append_partitioned(c, bounds);
  return c;
}

Circuit qft_partitioned_recursive(std::int32_t n, std::int32_t fanout,
                                  std::int32_t leaf) {
  require(n >= 1 && fanout >= 2 && leaf >= 1,
          "qft_partitioned_recursive: bad parameters");
  Circuit c(n);
  append_recursive(c, 0, n, fanout, leaf);
  return c;
}

}  // namespace qfto
