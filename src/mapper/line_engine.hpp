// The LNN QFT base case (§2.2, Fig. 3) as a closed-loop engine.
//
// Instead of hard-coding the published gate pattern, we *derive* it each run:
// alternate (a) interaction layers — a maximal set of CPHASEs on adjacent
// pairs whose relaxed-ordering window is open, plus H gates on enabled idle
// qubits — with (b) movement layers — SWAPs for adjacent pairs that have
// interacted and still need to cross in the global reversal. Starting from an
// ascending placement this reproduces Fig. 3 exactly (each pair of logical
// indices sums to a constant per layer, final mapping reversed); the engine
// additionally handles descending and arbitrary placements (via a pre-sort),
// which the unit-based Sycamore / lattice-surgery mappers need after unit
// moves. Every emission goes through LayerEmitter, so hardware compliance is
// enforced while the circuit is built.
//
// Engines operate on a Line: the physical node list plus its adjacent-edge
// handles, resolved against the coupling graph once at construction. The
// per-layer loops run tens of millions of try_* calls at device scale, and
// pre-resolving moves the CSR adjacency probe out of every one of them.
#pragma once

#include <functional>
#include <vector>

#include "mapper/emitter.hpp"

namespace qfto {

/// Optional veto: movement layers skip SWAPs touching a node for which this
/// returns true (heavy-hex freezes a qubit that is about to park).
using NodeVeto = std::function<bool(PhysicalQubit)>;

/// A physical line (consecutive nodes coupled pairwise) with each adjacent
/// edge pre-resolved. Construction validates every (i, i+1) adjacency, so a
/// Line is proof the path exists in the graph.
class Line {
 public:
  Line() = default;
  Line(const LayerEmitter& em, std::vector<PhysicalQubit> nodes)
      : nodes_(std::move(nodes)) {
    if (!nodes_.empty()) edges_.reserve(nodes_.size() - 1);
    for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
      edges_.push_back(em.resolve_edge(nodes_[i], nodes_[i + 1]));
    }
  }

  const std::vector<PhysicalQubit>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  PhysicalQubit operator[](std::size_t i) const { return nodes_[i]; }
  /// Edge joining nodes i and i+1.
  const LayerEmitter::EdgeHandle& edge(std::size_t i) const {
    return edges_[i];
  }

 private:
  std::vector<PhysicalQubit> nodes_;
  std::vector<LayerEmitter::EdgeHandle> edges_;
};

/// One interaction layer over `line`: CPHASEs left-to-right, then H on idle
/// enabled occupants. Returns the number of gates emitted. Does not advance
/// the layer.
std::int32_t line_interaction_layer(LayerEmitter& em, const Line& line);

/// One movement layer: SWAP every adjacent pair (left a, right b) with
/// pair done and still uncrossed (ascending: a<b must end b..a; descending
/// symmetric). Returns number of SWAPs.
std::int32_t line_movement_layer(LayerEmitter& em, const Line& line,
                                 bool ascending,
                                 const NodeVeto& frozen = nullptr);

/// True if occupants of `line` are monotone (asc or desc as requested).
bool line_monotone(const LayerEmitter& em, const Line& line, bool ascending);

/// Pure-SWAP odd-even sort of the occupants into ascending order. Safe: any
/// pair it crosses without interacting re-meets during the subsequent
/// reversal. Used to renormalize a unit after inter-unit traffic.
void line_presort_ascending(LayerEmitter& em, const Line& line);

/// Full QFT-IA on this line: presort if non-monotone, then run interaction /
/// movement rounds until every occupant pair has interacted and every
/// occupant has its H. Throws on stall (cannot happen for monotone inputs;
/// the guard protects against future misuse).
void run_line_qft(LayerEmitter& em, const Line& line);

}  // namespace qfto
