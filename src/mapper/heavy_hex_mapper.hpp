// Heavy-hex QFT mapper (§4): a non-trivial extension of the LNN pattern to a
// main line with dangling points.
//
// Closed-loop realization of the paper's Algorithm 1 intuition:
//  * the main line runs the LNN interaction/movement rounds;
//  * whenever the occupant of a junction node can interact with the dangling
//    neighbor (relaxed-ordering window open), the junction CPHASE takes
//    priority over main-line traffic — these are the paper's "extra stops";
//  * the g-th dangling point permanently captures logical qubit g: when q_g
//    reaches the junction under dangling point g (traveling right in the
//    reversal flow), it swaps up and disengages from the LNN movement,
//    releasing the dangling point's original occupant into the main line.
// Remaining partners of a parked qubit interact through the junction link as
// they stream past. Depth is 5N + O(1) for the paper's one-dangle-per-four
// configuration and <= 6N + O(1) in general (Appendices 2-3).
#pragma once

#include "arch/heavy_hex.hpp"
#include "circuit/mapped_circuit.hpp"
#include "verify/verifier.hpp"

namespace qfto {

/// `audit`, when non-null, engages fused verification (verify::EmitAudit).
MappedCircuit map_qft_heavy_hex(const HeavyHexLayout& lay,
                                verify::EmitAudit* audit = nullptr);

/// Paper configuration (N multiple of 5).
MappedCircuit map_qft_heavy_hex(std::int32_t n,
                                verify::EmitAudit* audit = nullptr);

/// End-to-end path for a *full* heavy-hex device (Appendix 1): reduce the
/// device to a main line with dangling points, run the canonical mapper, and
/// relabel the result back onto the device's physical nodes. The returned
/// circuit is valid on dev.graph (the deleted links are simply never used).
/// The audit transfers through the relabeling: depth and counts are
/// relabel-invariant, so the canonical run's verdict holds on the device.
MappedCircuit map_qft_heavy_hex_device(const HeavyHexDevice& dev,
                                       verify::EmitAudit* audit = nullptr);

}  // namespace qfto
