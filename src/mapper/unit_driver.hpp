// Unit-level divide-and-conquer (§3.2 + Fig. 14): the QFT over k units on a
// "unit line" has exactly the dependence shape of the QFT itself —
//   QFT-IA(U)      <->  H(q)        (self operation)
//   QFT-IE(Ui,Uj)  <->  CPHASE(i,j) (pair operation)
//   unit SWAP      <->  SWAP
// — so the same greedy reversal that drives the LNN base case schedules the
// units: IE on adjacent unit slots when the window (IA(min) done, IA(max)
// not) is open, IA when every smaller IE arrived, unit swaps once a pair of
// adjacent units has interacted and still needs to cross. The callbacks
// realize each unit-level operation as concrete hardware gates; operations on
// disjoint units emitted in the same round are re-parallelized by the ASAP
// scheduler when depth is measured.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace qfto {

struct UnitOps {
  /// QFT-IA on the unit currently in slot `s`.
  std::function<void(std::int32_t s)> ia;
  /// QFT-IE between the units currently in adjacent slots `s` and `s+1`.
  std::function<void(std::int32_t s)> ie;
  /// Unit SWAP between adjacent slots `s` and `s+1`.
  std::function<void(std::int32_t s)> unit_swap;
};

/// Runs the unit-level QFT over `num_units` slots whose initial occupants are
/// units 0..num_units-1 in slot order. Throws on stall.
void run_unit_qft(std::int32_t num_units, const UnitOps& ops);

}  // namespace qfto
