#include "mapper/heavy_hex_mapper.hpp"

#include <stdexcept>

#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"

namespace qfto {

MappedCircuit map_qft_heavy_hex(const HeavyHexLayout& lay,
                                verify::EmitAudit* audit) {
  const std::int32_t n = lay.num_qubits;
  require(n >= 1, "map_qft_heavy_hex: empty layout");
  const CouplingGraph g = make_heavy_hex(lay);
  QftState state(n);
  LayerEmitter em(g, heavy_hex_initial_mapping(lay), state, audit);
  em.reserve_gates(2 * (static_cast<std::int64_t>(n) * (n - 1) / 2 + n));

  const std::int32_t num_dangle = lay.num_dangling();
  std::vector<std::uint8_t> parked(num_dangle, 0);

  std::vector<PhysicalQubit> main_nodes(lay.main_len);
  for (std::int32_t p = 0; p < lay.main_len; ++p) {
    main_nodes[p] = lay.main_node(p);
  }
  const Line main_line(em, std::move(main_nodes));

  // Junction <-> dangling edges, resolved once (used every round for both
  // the interaction layer and the parking swaps).
  std::vector<LayerEmitter::EdgeHandle> junction_edge;
  junction_edge.reserve(static_cast<std::size_t>(num_dangle));
  for (std::int32_t j = 0; j < num_dangle; ++j) {
    junction_edge.push_back(em.resolve_edge(lay.main_node(lay.junctions[j]),
                                            lay.dangling_node(j)));
  }

  // Veto for movement: a qubit waiting to park must not drift past its
  // junction, and nothing may move through an in-flight parking node.
  auto frozen = [&](PhysicalQubit node) {
    const std::int32_t j = lay.junction_at(node);  // main node id == position
    if (j < 0) return false;
    if (parked[j]) return false;
    return em.occupant(node) == static_cast<LogicalQubit>(j);
  };

  const std::int64_t round_cap = 8 * static_cast<std::int64_t>(n) + 64;
  std::int32_t idle_rounds = 0;
  for (std::int64_t round = 0; !state.all_done(); ++round) {
    if (round > round_cap) {
      throw std::logic_error("map_qft_heavy_hex: round cap exceeded");
    }
    std::int64_t before = em.gates_emitted();

    // Interaction layer. Junction links first (the paper's "extra stops"
    // prioritize CPHASEs with dangling qubits), then the main line, then H.
    em.next_layer();
    for (std::int32_t j = 0; j < num_dangle; ++j) {
      em.try_cphase(junction_edge[j]);
    }
    line_interaction_layer(em, main_line);
    for (std::int32_t j = 0; j < num_dangle; ++j) {
      em.try_h(lay.dangling_node(j));
    }

    // Movement layer. Parking swaps first, then LNN movement on the main
    // line (ascending start: the reversal flow of Fig. 3).
    em.next_layer();
    for (std::int32_t j = 0; j < num_dangle; ++j) {
      if (parked[j]) continue;
      const LayerEmitter::EdgeHandle& e = junction_edge[j];
      const LogicalQubit on_main = em.occupant(e.a);
      const LogicalQubit on_dangle = em.occupant(e.b);
      if (on_main == static_cast<LogicalQubit>(j) &&
          state.pair_done(on_main, on_dangle)) {
        if (em.try_swap(e)) parked[j] = 1;
      }
    }
    line_movement_layer(em, main_line, /*ascending=*/true, frozen);

    if (em.gates_emitted() == before) {
      if (++idle_rounds > 3) {
        throw std::logic_error(
            "map_qft_heavy_hex: stalled with " +
            std::to_string(state.pairs_remaining()) + " pairs and " +
            std::to_string(state.selfs_remaining()) + " H gates pending");
      }
    } else {
      idle_rounds = 0;
    }
  }
  return std::move(em).finish();
}

MappedCircuit map_qft_heavy_hex(std::int32_t n, verify::EmitAudit* audit) {
  return map_qft_heavy_hex(heavy_hex_layout(n), audit);
}

MappedCircuit map_qft_heavy_hex_device(const HeavyHexDevice& dev,
                                       verify::EmitAudit* audit) {
  const HeavyHexReduction red = simplify_heavy_hex(dev);
  const HeavyHexLayout canon = red.canonical();
  // The audit rides the canonical run: the relabeling below is a bijection
  // onto device nodes that preserves gate order, durations (links keep their
  // kinds) and the logical assignment, so depth/counts and the verdict are
  // unchanged by it.
  const MappedCircuit canonical = map_qft_heavy_hex(canon, audit);

  // Canonical physical id -> device node.
  std::vector<PhysicalQubit> relabel(canon.num_qubits);
  for (std::size_t p = 0; p < red.main_line.size(); ++p) {
    relabel[canon.main_node(static_cast<std::int32_t>(p))] = red.main_line[p];
  }
  for (std::size_t g = 0; g < red.dangling.size(); ++g) {
    relabel[canon.dangling_node(static_cast<std::int32_t>(g))] =
        red.dangling[g].second;
  }

  MappedCircuit out;
  out.circuit = Circuit(dev.graph.num_qubits());
  out.circuit.reserve(canonical.circuit.size());
  for (const Gate& g : canonical.circuit) {
    Gate hw = g;
    hw.q0 = relabel[g.q0];
    if (g.two_qubit()) hw.q1 = relabel[g.q1];
    out.circuit.append(hw);
  }
  out.initial.reserve(canonical.initial.size());
  for (PhysicalQubit p : canonical.initial) out.initial.push_back(relabel[p]);
  for (PhysicalQubit p : canonical.final_mapping) {
    out.final_mapping.push_back(relabel[p]);
  }
  return out;
}

}  // namespace qfto
