#include "mapper/qft_state.hpp"

#include <algorithm>

namespace qfto {

QftState::QftState(std::int32_t n)
    : n_(n),
      self_done_(n, 0),
      pair_done_(static_cast<std::size_t>(n) * n, 0),
      pending_smaller_(n, 0),
      pairs_remaining_(static_cast<std::int64_t>(n) * (n - 1) / 2),
      selfs_remaining_(n) {
  require(n >= 0, "QftState: negative n");
  for (std::int32_t a = 0; a < n; ++a) pending_smaller_[a] = a;
}

std::size_t QftState::idx(std::int32_t a, std::int32_t b) const {
  const auto [lo, hi] = std::minmax(a, b);
  return static_cast<std::size_t>(lo) * n_ + hi;
}

bool QftState::pair_done(std::int32_t a, std::int32_t b) const {
  return pair_done_[idx(a, b)] != 0;
}

bool QftState::can_pair(std::int32_t a, std::int32_t b) const {
  if (a == b || pair_done(a, b)) return false;
  const auto [lo, hi] = std::minmax(a, b);
  return self_done_[lo] && !self_done_[hi];
}

bool QftState::can_self(std::int32_t a) const {
  return !self_done_[a] && pending_smaller_[a] == 0;
}

void QftState::mark_pair(std::int32_t a, std::int32_t b) {
  require(a != b && !pair_done(a, b), "QftState::mark_pair: invalid");
  pair_done_[idx(a, b)] = 1;
  const std::int32_t hi = std::max(a, b);
  --pending_smaller_[hi];
  --pairs_remaining_;
}

void QftState::mark_self(std::int32_t a) {
  require(!self_done_[a], "QftState::mark_self: already done");
  self_done_[a] = 1;
  --selfs_remaining_;
}

}  // namespace qfto
