// Linear-nearest-neighbor QFT mapper (§2.2): the Maslov / Zhang linear-depth
// base case. Depth 4N + O(1), zero recompilation across sizes, final mapping
// q_i -> Q_{N-1-i}.
#pragma once

#include "circuit/mapped_circuit.hpp"

namespace qfto {

MappedCircuit map_qft_lnn(std::int32_t n);

}  // namespace qfto
