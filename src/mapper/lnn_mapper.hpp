// Linear-nearest-neighbor QFT mapper (§2.2): the Maslov / Zhang linear-depth
// base case. Depth 4N + O(1), zero recompilation across sizes, final mapping
// q_i -> Q_{N-1-i}.
#pragma once

#include "circuit/mapped_circuit.hpp"
#include "verify/verifier.hpp"

namespace qfto {

/// `audit`, when non-null, engages fused verification: the emitter fills it
/// with the checker-identical verdict/depth/counts as it emits (see
/// verify::EmitAudit). Pass the EmitAudit's model before calling.
MappedCircuit map_qft_lnn(std::int32_t n, verify::EmitAudit* audit = nullptr);

}  // namespace qfto
