#include "mapper/lattice_mapper.hpp"

#include "arch/grid.hpp"
#include "arch/lattice_surgery.hpp"
#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"
#include "mapper/two_line_ie.hpp"
#include "mapper/unit_driver.hpp"

namespace qfto {

namespace {

// Shared row-unit scheme for any m-by-m backend whose rows are lines and
// whose inter-row links join equal columns (rotated lattice surgery and the
// plain 2D grid of Appendix 7).
MappedCircuit map_qft_row_units(const CouplingGraph& g, std::int32_t m,
                                const LatticeMapperOptions& opts) {
  const std::int32_t n = m * m;
  auto node = [m](std::int32_t r, std::int32_t c) { return r * m + c; };

  // Natural ordering, row-major (Fig. 15(a)).
  std::vector<PhysicalQubit> initial(n);
  for (std::int32_t r = 0; r < m; ++r) {
    for (std::int32_t c = 0; c < m; ++c) initial[r * m + c] = node(r, c);
  }
  QftState state(n);
  LayerEmitter em(g, initial, state);

  std::vector<std::vector<PhysicalQubit>> slot_line(m);
  for (std::int32_t r = 0; r < m; ++r) {
    slot_line[r].resize(m);
    for (std::int32_t c = 0; c < m; ++c) slot_line[r][c] = node(r, c);
  }

  // Vertical links join equal column positions.
  std::vector<CrossLink> cross;
  for (std::int32_t c = 0; c < m; ++c) cross.push_back({c, c});

  UnitOps ops;
  ops.ia = [&](std::int32_t s) { run_line_qft(em, slot_line[s]); };
  ops.ie = [&](std::int32_t s) {
    TwoLineIeConfig cfg{0, opts.phase_offset};
    cfg.strict = opts.strict_ie;
    run_two_line_ie(em, slot_line[s], slot_line[s + 1], cross, cfg);
  };
  ops.unit_swap = [&](std::int32_t s) {
    em.next_layer();
    if (opts.transversal_unit_swap) {
      for (std::int32_t c = 0; c < m; ++c) {
        em.try_swap(slot_line[s][c], slot_line[s + 1][c]);
      }
    } else {
      // Ablation variant: exchange via three vertical layers restricted to
      // even/odd columns — strictly worse; kept to quantify the §6 claim
      // that transversal vertical SWAPs are the right unit move.
      for (std::int32_t c = 0; c < m; c += 2) {
        em.try_swap(slot_line[s][c], slot_line[s + 1][c]);
      }
      em.next_layer();
      for (std::int32_t c = 1; c < m; c += 2) {
        em.try_swap(slot_line[s][c], slot_line[s + 1][c]);
      }
    }
  };

  run_unit_qft(m, ops);
  return std::move(em).finish();
}

}  // namespace

MappedCircuit map_qft_lattice(std::int32_t m,
                              const LatticeMapperOptions& opts) {
  require(m >= 2, "map_qft_lattice: m >= 2");
  return map_qft_row_units(make_lattice_surgery_rotated(m), m, opts);
}

MappedCircuit map_qft_grid2d(std::int32_t m,
                             const LatticeMapperOptions& opts) {
  require(m >= 2, "map_qft_grid2d: m >= 2");
  return map_qft_row_units(make_grid(m, m), m, opts);
}

}  // namespace qfto
