#include "mapper/lattice_mapper.hpp"

#include "arch/grid.hpp"
#include "arch/lattice_surgery.hpp"
#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"
#include "mapper/two_line_ie.hpp"
#include "mapper/unit_driver.hpp"

namespace qfto {

namespace {

// Shared row-unit scheme for any m-by-m backend whose rows are lines and
// whose inter-row links join equal columns (rotated lattice surgery and the
// plain 2D grid of Appendix 7).
MappedCircuit map_qft_row_units(const CouplingGraph& g, std::int32_t m,
                                const LatticeMapperOptions& opts,
                                verify::EmitAudit* audit) {
  const std::int32_t n = m * m;
  auto node = [m](std::int32_t r, std::int32_t c) { return r * m + c; };

  // Natural ordering, row-major (Fig. 15(a)).
  std::vector<PhysicalQubit> initial(n);
  for (std::int32_t r = 0; r < m; ++r) {
    for (std::int32_t c = 0; c < m; ++c) initial[r * m + c] = node(r, c);
  }
  QftState state(n);
  LayerEmitter em(g, initial, state, audit);
  em.reserve_gates(2 * (static_cast<std::int64_t>(n) * (n - 1) / 2 + n));

  // Slots are fixed physical structure: resolve every row line and every
  // vertical edge chain once, before emitting a single gate.
  std::vector<Line> lines;
  lines.reserve(static_cast<std::size_t>(m));
  for (std::int32_t r = 0; r < m; ++r) {
    std::vector<PhysicalQubit> row(static_cast<std::size_t>(m));
    for (std::int32_t c = 0; c < m; ++c) {
      row[static_cast<std::size_t>(c)] = node(r, c);
    }
    lines.emplace_back(em, std::move(row));
  }

  // Vertical links join equal column positions.
  std::vector<CrossLink> cross;
  for (std::int32_t c = 0; c < m; ++c) cross.push_back({c, c});
  std::vector<std::vector<LayerEmitter::EdgeHandle>> vert(
      static_cast<std::size_t>(m - 1));
  for (std::int32_t s = 0; s + 1 < m; ++s) {
    vert[static_cast<std::size_t>(s)] =
        resolve_cross_links(em, lines[s], lines[s + 1], cross);
  }

  UnitOps ops;
  ops.ia = [&](std::int32_t s) { run_line_qft(em, lines[s]); };
  ops.ie = [&](std::int32_t s) {
    TwoLineIeConfig cfg{0, opts.phase_offset};
    cfg.strict = opts.strict_ie;
    run_two_line_ie(em, lines[s], lines[s + 1], vert[s], cfg);
  };
  ops.unit_swap = [&](std::int32_t s) {
    em.next_layer();
    if (opts.transversal_unit_swap) {
      for (std::int32_t c = 0; c < m; ++c) em.try_swap(vert[s][c]);
    } else {
      // Ablation variant: exchange via three vertical layers restricted to
      // even/odd columns — strictly worse; kept to quantify the §6 claim
      // that transversal vertical SWAPs are the right unit move.
      for (std::int32_t c = 0; c < m; c += 2) em.try_swap(vert[s][c]);
      em.next_layer();
      for (std::int32_t c = 1; c < m; c += 2) em.try_swap(vert[s][c]);
    }
  };

  run_unit_qft(m, ops);
  return std::move(em).finish();
}

}  // namespace

MappedCircuit map_qft_lattice(std::int32_t m, const LatticeMapperOptions& opts,
                              verify::EmitAudit* audit) {
  require(m >= 2, "map_qft_lattice: m >= 2");
  return map_qft_row_units(make_lattice_surgery_rotated(m), m, opts, audit);
}

MappedCircuit map_qft_grid2d(std::int32_t m, const LatticeMapperOptions& opts,
                             verify::EmitAudit* audit) {
  require(m >= 2, "map_qft_grid2d: m >= 2");
  return map_qft_row_units(make_grid(m, m), m, opts, audit);
}

}  // namespace qfto
