// Logical-level sub-kernel partitioning (§3.2, Fig. 7/8): reorders the QFT
// gate list into QFT-IA blocks (within a sub-range) and QFT-IE blocks
// (between sub-ranges), optionally recursively. The reordering is proven
// correct in the paper by Type-II preservation; our tests re-prove it
// mechanically (relaxed-DAG validity + unitary equivalence).
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

/// A partition of [0, n) into consecutive ranges given by their sizes.
/// Sizes must be positive and sum to n.
Circuit qft_partitioned(std::int32_t n, const std::vector<std::int32_t>& sizes);

/// k-ary recursive partitioning: splits every range into `fanout` nearly
/// equal sub-ranges until ranges have <= `leaf` qubits (Fig. 8's range_list
/// recursion).
Circuit qft_partitioned_recursive(std::int32_t n, std::int32_t fanout,
                                  std::int32_t leaf);

/// The QFT-IE block between [a0, a1) and [b0, b1) in original relative order.
void append_qft_ie(Circuit& c, std::int32_t a0, std::int32_t a1,
                   std::int32_t b0, std::int32_t b1);

}  // namespace qfto
