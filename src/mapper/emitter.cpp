#include "mapper/emitter.hpp"

#include "circuit/qft_spec.hpp"

namespace qfto {

LayerEmitter::LayerEmitter(const CouplingGraph& graph,
                           std::vector<PhysicalQubit> initial_mapping,
                           QftState& state)
    : graph_(graph),
      circuit_(graph.num_qubits()),
      initial_(std::move(initial_mapping)),
      tracker_(initial_, graph.num_qubits()),
      state_(state),
      busy_layer_(graph.num_qubits(), -1) {
  require(static_cast<std::int32_t>(initial_.size()) == state.n(),
          "LayerEmitter: mapping size must equal QftState size");
}

void LayerEmitter::next_layer() { ++layer_; }

bool LayerEmitter::busy(PhysicalQubit p) const {
  return busy_layer_[p] == layer_;
}

void LayerEmitter::mark_busy(PhysicalQubit p) { busy_layer_[p] = layer_; }

bool LayerEmitter::try_cphase(PhysicalQubit a, PhysicalQubit b) {
  if (busy(a) || busy(b)) return false;
  require(graph_.adjacent(a, b), "try_cphase: nodes not coupled");
  const LogicalQubit la = tracker_.logical_at(a);
  const LogicalQubit lb = tracker_.logical_at(b);
  if (la == kInvalidQubit || lb == kInvalidQubit) return false;
  if (!state_.can_pair(la, lb)) return false;
  const auto lo = std::min(la, lb), hi = std::max(la, lb);
  // The paper writes G(target, control) with the larger index as control; the
  // unitary is symmetric, so record (lo, hi) canonically on physical wires.
  circuit_.append(Gate::cphase(a, b, qft_angle(lo, hi)));
  state_.mark_pair(la, lb);
  mark_busy(a);
  mark_busy(b);
  ++gates_emitted_;
  return true;
}

bool LayerEmitter::try_h(PhysicalQubit p) {
  if (busy(p)) return false;
  const LogicalQubit l = tracker_.logical_at(p);
  if (l == kInvalidQubit || !state_.can_self(l)) return false;
  circuit_.append(Gate::h(p));
  state_.mark_self(l);
  mark_busy(p);
  ++gates_emitted_;
  return true;
}

bool LayerEmitter::try_swap(PhysicalQubit a, PhysicalQubit b) {
  if (busy(a) || busy(b)) return false;
  require(graph_.adjacent(a, b), "try_swap: nodes not coupled");
  circuit_.append(Gate::swap(a, b));
  tracker_.apply_swap(a, b);
  mark_busy(a);
  mark_busy(b);
  ++gates_emitted_;
  return true;
}

MappedCircuit LayerEmitter::finish() && {
  MappedCircuit mc;
  mc.circuit = std::move(circuit_);
  mc.initial = std::move(initial_);
  mc.final_mapping = tracker_.logical_to_physical();
  return mc;
}

}  // namespace qfto
