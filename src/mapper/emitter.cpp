#include "mapper/emitter.hpp"

#include "circuit/qft_spec.hpp"

namespace qfto {

LayerEmitter::LayerEmitter(const CouplingGraph& graph,
                           std::vector<PhysicalQubit> initial_mapping,
                           QftState& state, verify::EmitAudit* audit)
    : graph_(graph),
      circuit_(graph.num_qubits()),
      initial_(std::move(initial_mapping)),
      tracker_(initial_, graph.num_qubits()),
      state_(state),
      busy_layer_(graph.num_qubits(), -1),
      audit_(audit) {
  require(static_cast<std::int32_t>(initial_.size()) == state.n(),
          "LayerEmitter: mapping size must equal QftState size");
  // CPHASE angles depend only on the logical gap; resolve them once.
  const std::int32_t n = state.n();
  angle_by_gap_.resize(static_cast<std::size_t>(n > 0 ? n : 1), 0.0);
  for (std::int32_t gap = 1; gap < n; ++gap) {
    angle_by_gap_[static_cast<std::size_t>(gap)] = qft_angle(0, gap);
  }
  if (audit_ != nullptr) {
    audit_ready_.assign(static_cast<std::size_t>(graph.num_qubits()), 0);
  }
}

MappedCircuit LayerEmitter::finish() && {
  if (audit_ != nullptr) {
    audit_->engaged = true;
    QftCheckResult& r = audit_->result;
    if (!state_.all_done()) {
      // Matches the totals phase of IncrementalQftChecker::finish(): the
      // emitter's windows make partial progress the only possible defect.
      r.ok = false;
      r.error = state_.selfs_remaining() != 0
                    ? "missing H gates: got " +
                          std::to_string(state_.n() - state_.selfs_remaining()) +
                          " of " + std::to_string(state_.n())
                    : "missing CPHASE: " +
                          std::to_string(state_.pairs_remaining()) +
                          " pair(s) unfinished";
    } else {
      r.ok = true;
      r.error.clear();
      r.depth = audit_depth_;
      r.counts = audit_counts_;
    }
  }
  MappedCircuit mc;
  mc.circuit = std::move(circuit_);
  mc.initial = std::move(initial_);
  mc.final_mapping = tracker_.logical_to_physical();
  return mc;
}

}  // namespace qfto
