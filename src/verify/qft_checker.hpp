// Static verifier for mapped QFT circuits — the analogue of the paper's
// correctness simulator, but exhaustive and size-independent. It replays the
// hardware circuit while tracking the logical mapping and asserts:
//   1. every two-qubit gate acts on a coupling-graph edge;
//   2. every logical pair {i,j} receives exactly one CPHASE, with the QFT
//      angle pi/2^{j-i};
//   3. every logical qubit receives exactly one H;
//   4. relaxed-ordering validity (Type II of §3.1): a CPHASE on {i,j}, i<j,
//      executes after H(i) and before H(j) — a schedule satisfying this is
//      unitarily equal to the textbook QFT, which the equivalence tests
//      confirm independently on small sizes;
//   5. the declared final mapping matches the tracked one.
#pragma once

#include <string>

#include "arch/coupling_graph.hpp"
#include "arch/latency_model.hpp"
#include "circuit/mapped_circuit.hpp"
#include "circuit/stats.hpp"

namespace qfto {

struct QftCheckResult {
  bool ok = false;
  std::string error;      // empty when ok
  Cycle depth = 0;        // under the supplied latency model
  GateCounts counts;

  explicit operator bool() const { return ok; }
};

QftCheckResult check_qft_mapping(const MappedCircuit& mc,
                                 const CouplingGraph& g,
                                 const LatencyFn& latency = unit_latency);

}  // namespace qfto
