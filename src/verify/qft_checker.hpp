// Static verifier for mapped QFT circuits — the analogue of the paper's
// correctness simulator, but exhaustive and size-independent. It tracks the
// logical mapping through the hardware circuit and asserts:
//   1. every two-qubit gate acts on a coupling-graph edge;
//   2. every logical pair {i,j} receives exactly one CPHASE, with the QFT
//      angle pi/2^{j-i};
//   3. every logical qubit receives exactly one H;
//   4. relaxed-ordering validity (Type II of §3.1): a CPHASE on {i,j}, i<j,
//      executes after H(i) and before H(j) — a schedule satisfying this is
//      unitarily equal to the textbook QFT, which the equivalence tests
//      confirm independently on small sizes;
//   5. the declared final mapping matches the tracked one.
//
// IncrementalQftChecker is the streaming form: gates are fed one at a time
// and the adjacency/ordering/angle checks, the latency-weighted ASAP depth,
// and the gate counts are all maintained in that single pass — no post-hoc
// replay, no separate scheduling or counting walks. Pair bookkeeping is a
// packed triangular bitset (n(n-1)/2 bits ≈ n²/16 bytes instead of the n²
// bytes the old checker allocated). check_qft_mapping is a thin driver over
// it; check_qft_mapping_replay preserves the original multi-pass algorithm
// as a differential oracle for tests and benchmarks.
#pragma once

#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "arch/latency_model.hpp"
#include "circuit/mapped_circuit.hpp"
#include "circuit/stats.hpp"

namespace qfto {

struct QftCheckResult {
  bool ok = false;
  std::string error;      // empty when ok
  Cycle depth = 0;        // under the supplied latency model
  GateCounts counts;

  explicit operator bool() const { return ok; }
};

class IncrementalQftChecker {
 public:
  /// Begins verification of a QFT(initial.size()) mapping onto `g` with
  /// `initial` as the logical->physical entry mapping. The graph must
  /// outlive the checker; `initial` must be an injection (throws otherwise —
  /// check_qft_mapping pre-validates and reports instead).
  IncrementalQftChecker(const std::vector<PhysicalQubit>& initial,
                        const CouplingGraph& g,
                        LatencyModel latency = LatencyModel());

  /// Compat form for arbitrary latency callbacks; `latency` must outlive
  /// the checker (the rvalue overload is deleted so a temporary cannot
  /// dangle). Pays one std::function call per gate — prefer the
  /// LatencyModel constructor on hot paths.
  IncrementalQftChecker(const std::vector<PhysicalQubit>& initial,
                        const CouplingGraph& g, const LatencyFn& latency);
  IncrementalQftChecker(const std::vector<PhysicalQubit>& initial,
                        const CouplingGraph& g, LatencyFn&& latency) = delete;

  /// Feeds the next gate. Returns false once verification has failed;
  /// subsequent gates are ignored.
  bool push(const Gate& gate);

  /// push() minus the wire-range guards — for gates whose indices were
  /// already validated against a Circuit with the graph's qubit count (the
  /// check_qft_mapping drivers). Out-of-range indices are undefined here.
  bool push_trusted(const Gate& gate);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::int64_t gates_seen() const { return gates_seen_; }

  /// Latency-weighted ASAP makespan of the gates fed so far.
  Cycle depth() const { return depth_; }
  const GateCounts& counts() const { return counts_; }

  /// Logical qubit currently at physical node p (kInvalidQubit if empty).
  LogicalQubit logical_at(PhysicalQubit p) const { return p2l_[p]; }

  /// Completes the check: totals (every H, every pair exactly once) and the
  /// declared final mapping. The verdict carries depth and gate counts.
  QftCheckResult finish(const std::vector<PhysicalQubit>& declared_final);

 private:
  template <bool kTrusted>
  bool push_impl(const Gate& gate);

  bool fail_gate(const Gate& gate, const std::string& what);
  bool fail(std::string msg);

  bool h_bit(LogicalQubit l) const {
    return (h_seen_[static_cast<std::size_t>(l) >> 6] >>
            (static_cast<std::size_t>(l) & 63)) &
           1u;
  }
  void set_h_bit(LogicalQubit l) {
    h_seen_[static_cast<std::size_t>(l) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(l) & 63);
  }

  /// Packed upper-triangular index of pair (lo,hi), 0 <= lo < hi < n.
  /// row_base_ replaces the closed-form lo*(2n-lo-1)/2 multiply with one
  /// table load on the per-gate path.
  std::size_t pair_index(LogicalQubit lo, LogicalQubit hi) const {
    return static_cast<std::size_t>(row_base_[lo] + (hi - lo - 1));
  }
  bool pair_bit(std::size_t idx) const {
    return (pair_seen_[idx >> 6] >> (idx & 63)) & 1u;
  }
  void set_pair_bit(std::size_t idx) {
    pair_seen_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }

  const CouplingGraph* graph_;
  LatencyModel model_;
  const LatencyFn* fn_ = nullptr;  // non-null only for the compat constructor

  std::int32_t n_ = 0;
  std::int32_t num_physical_ = 0;
  // Only the physical->logical direction is tracked while streaming (a SWAP
  // is then branch-free); the logical->physical view is inverted once in
  // finish() for the final-mapping comparison.
  std::vector<LogicalQubit> p2l_;
  std::vector<double> angle_by_gap_;      // qft_angle(0, gap), gap = hi - lo
  std::vector<std::uint64_t> h_seen_;     // one bit per logical qubit
  std::vector<std::uint64_t> pair_seen_;  // triangular, n(n-1)/2 bits
  std::vector<std::uint64_t> row_base_;   // pair_index of (lo, lo+1) per row
  std::int64_t hs_ = 0;
  std::int64_t pairs_ = 0;
  GateCounts counts_;

  std::vector<Cycle> ready_;  // fused ASAP scheduler state, one per wire
  Cycle depth_ = 0;

  std::int64_t gates_seen_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// Single-pass verification driven by IncrementalQftChecker; the fast path
/// the pipeline uses.
QftCheckResult check_qft_mapping(const MappedCircuit& mc,
                                 const CouplingGraph& g,
                                 const LatencyModel& latency);

/// Compat overload for arbitrary latency callbacks.
QftCheckResult check_qft_mapping(const MappedCircuit& mc,
                                 const CouplingGraph& g,
                                 const LatencyFn& latency = unit_latency);

/// The pre-rewrite checker: full replay, then separate scheduling and
/// counting passes over the circuit. Kept as the differential oracle — tests
/// assert it agrees with the streaming checker bit-for-bit, and
/// bench_checker measures the rewrite against it.
QftCheckResult check_qft_mapping_replay(const MappedCircuit& mc,
                                        const CouplingGraph& g,
                                        const LatencyFn& latency = unit_latency);

}  // namespace qfto
