// Bidirectional logical<->physical mapping that follows SWAP gates.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace qfto {

class MappingTracker {
 public:
  MappingTracker() = default;

  /// logical_to_physical[l] = physical qubit initially holding logical l.
  MappingTracker(const std::vector<PhysicalQubit>& logical_to_physical,
                 std::int32_t num_physical);

  std::int32_t num_logical() const {
    return static_cast<std::int32_t>(l2p_.size());
  }
  std::int32_t num_physical() const {
    return static_cast<std::int32_t>(p2l_.size());
  }

  /// Physical location of logical qubit l.
  PhysicalQubit physical_of(LogicalQubit l) const { return l2p_[l]; }

  /// Logical qubit at physical node p, or kInvalidQubit if unoccupied.
  LogicalQubit logical_at(PhysicalQubit p) const { return p2l_[p]; }

  /// Exchanges the contents of two physical nodes (either may be empty).
  /// Inline: the verifier calls this once per SWAP gate.
  void apply_swap(PhysicalQubit a, PhysicalQubit b) {
    require(a >= 0 && b >= 0 && a < num_physical() && b < num_physical() &&
                a != b,
            "MappingTracker::apply_swap: bad nodes");
    const LogicalQubit la = p2l_[a], lb = p2l_[b];
    p2l_[a] = lb;
    p2l_[b] = la;
    if (la != kInvalidQubit) l2p_[la] = b;
    if (lb != kInvalidQubit) l2p_[lb] = a;
  }

  const std::vector<PhysicalQubit>& logical_to_physical() const { return l2p_; }

 private:
  std::vector<PhysicalQubit> l2p_;
  std::vector<LogicalQubit> p2l_;
};

}  // namespace qfto
