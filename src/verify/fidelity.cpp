#include "verify/fidelity.hpp"

#include <cmath>
#include <vector>

#include "arch/device_model.hpp"

namespace qfto {

namespace {

// SWAP = 3 CNOTs; CPHASE = 2 CNOTs (see circuit/transforms.hpp).
constexpr double kSwapCnots = 3.0;
constexpr double kCphaseCnots = 2.0;

}  // namespace

double log10_fidelity(const GateCounts& counts, Cycle depth,
                      const NoiseModel& model) {
  const double one_q = static_cast<double>(counts.h + counts.x + counts.rz);
  const double two_q = static_cast<double>(counts.cnot) +
                       kSwapCnots * static_cast<double>(counts.swap) +
                       kCphaseCnots * static_cast<double>(counts.cphase);
  double log10f = one_q * std::log10(1.0 - model.error_1q) +
                  two_q * std::log10(1.0 - model.error_2q);
  log10f += -static_cast<double>(depth) / model.coherence_cycles /
            std::log(10.0);
  return log10f;
}

double log10_fidelity(const Circuit& c, const NoiseModel& model,
                      const LatencyModel& latency) {
  return log10_fidelity(count_gates(c), circuit_depth(c, latency), model);
}

double log10_fidelity(const Circuit& c, const DeviceModel& device,
                      const LatencyModel& latency) {
  const double ln10 = std::log(10.0);
  double log10f = 0.0;
  std::vector<bool> used(static_cast<std::size_t>(device.num_qubits()), false);
  const auto touch = [&](std::int32_t q) {
    if (q >= 0 && q < device.num_qubits())
      used[static_cast<std::size_t>(q)] = true;
  };
  for (const Gate& g : c) {
    touch(g.q0);
    if (is_two_qubit(g.kind)) {
      touch(g.q1);
      const double e2 = device.edge_error(g.q0, g.q1);
      const double per_cnot = std::log10(1.0 - e2);
      switch (g.kind) {
        case GateKind::kSwap: log10f += kSwapCnots * per_cnot; break;
        case GateKind::kCPhase: log10f += kCphaseCnots * per_cnot; break;
        default: log10f += per_cnot; break;
      }
    } else if (g.q0 >= 0 && g.q0 < device.num_qubits()) {
      log10f += std::log10(1.0 - device.qubit(g.q0).error_1q);
    } else {
      log10f += std::log10(1.0 - device.mean_error_1q());
    }
  }
  const double depth = static_cast<double>(circuit_depth(c, latency));
  for (std::int32_t q = 0; q < device.num_qubits(); ++q) {
    if (!used[static_cast<std::size_t>(q)]) continue;
    log10f += -depth / device.qubit(q).coherence_cycles / ln10;
  }
  return log10f;
}

double log10_fidelity(const Circuit& c, const NoiseModel& model,
                      const LatencyFn& latency) {
  return log10_fidelity(count_gates(c), circuit_depth(c, latency), model);
}

}  // namespace qfto
