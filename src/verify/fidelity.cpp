#include "verify/fidelity.hpp"

#include <cmath>

#include "circuit/stats.hpp"

namespace qfto {

double log10_fidelity(const Circuit& c, const NoiseModel& model,
                      const LatencyFn& latency) {
  const GateCounts gc = count_gates(c);
  const double one_q = static_cast<double>(gc.h + gc.x + gc.rz);
  // SWAP = 3 CNOTs; CPHASE = 2 CNOTs (see circuit/transforms.hpp).
  const double two_q = static_cast<double>(gc.cnot) +
                       3.0 * static_cast<double>(gc.swap) +
                       2.0 * static_cast<double>(gc.cphase);
  const Cycle depth = circuit_depth(c, latency);
  double log10f = one_q * std::log10(1.0 - model.error_1q) +
                  two_q * std::log10(1.0 - model.error_2q);
  log10f += -static_cast<double>(depth) / model.coherence_cycles /
            std::log(10.0);
  return log10f;
}

}  // namespace qfto
