#include "verify/verifier.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <optional>
#include <tuple>
#include <utility>

#include "circuit/dag.hpp"
#include "verify/mapping_tracker.hpp"

namespace qfto {
namespace verify {

namespace {

QftCheckResult fail_result(std::string msg) {
  QftCheckResult r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

/// Verifier that was dead on arrival (header validation failed): ignores
/// every gate and reports the stored error at finish().
class DeadVerifier final : public Verifier {
 public:
  explicit DeadVerifier(std::string error) : error_(std::move(error)) {}
  bool push(const Gate&) override { return false; }
  bool failed() const override { return true; }
  QftCheckResult finish(const std::vector<PhysicalQubit>&) override {
    return fail_result(error_);
  }

 private:
  std::string error_;
};

class QftVerifier final : public Verifier {
 public:
  QftVerifier(const std::vector<PhysicalQubit>& initial,
              const CouplingGraph& g, LatencyModel latency)
      : checker_(initial, g, latency) {}
  bool push(const Gate& gate) override { return checker_.push(gate); }
  bool failed() const override { return checker_.failed(); }
  QftCheckResult finish(
      const std::vector<PhysicalQubit>& declared_final) override {
    return checker_.finish(declared_final);
  }

 private:
  IncrementalQftChecker checker_;
};

/// Matching key: kind, operand labels (sorted for the symmetric CPHASE —
/// its unitary ignores orientation), exact angle bit pattern. Routers copy
/// angles verbatim, so bit equality is the right notion.
using GateKey =
    std::tuple<std::uint8_t, std::int32_t, std::int32_t, std::uint64_t>;

GateKey key_of(GateKind kind, std::int32_t a, std::int32_t b, double angle) {
  if (kind == GateKind::kCPhase && a > b) std::swap(a, b);
  std::uint64_t angle_bits = 0;
  std::memcpy(&angle_bits, &angle, sizeof(angle_bits));
  return {static_cast<std::uint8_t>(kind), a, b, angle_bits};
}

/// Streaming refactor of the old check_circuit_mapping: all the reference-
/// side preprocessing (SWAP-elimination relabeling, relaxed DAG, ready
/// buckets) happens once at construction; push() matches one emitted gate.
class IncrementalCircuitChecker final : public Verifier {
 public:
  IncrementalCircuitChecker(const Circuit& logical,
                            const std::vector<PhysicalQubit>& initial,
                            const CouplingGraph& g, LatencyModel latency)
      : graph_(&g),
        latency_(latency),
        n_(logical.num_qubits()),
        num_physical_(g.num_qubits()) {
    if (static_cast<std::int32_t>(initial.size()) != n_) {
      fail("initial mapping size does not match the logical circuit");
      return;
    }
    if (!valid_mapping(initial, num_physical_)) {
      fail("initial mapping is not an injection");
      return;
    }

    // Reference side: eliminate logical SWAP gates by relabeling — data[w]
    // is the original wire label whose value currently sits on wire w. The
    // canonical circuit is SWAP-free and expressed in data labels, exactly
    // the labels MappingTracker recovers on the hardware side (it follows
    // every physical SWAP, including ones a router emitted for a logical
    // SWAP gate).
    data_.resize(static_cast<std::size_t>(n_));
    std::iota(data_.begin(), data_.end(), 0);
    canon_ = Circuit(n_);
    for (const Gate& gate : logical) {
      if (gate.kind == GateKind::kSwap) {
        std::swap(data_[gate.q0], data_[gate.q1]);
        continue;
      }
      Gate relabeled = gate;
      relabeled.q0 = data_[gate.q0];
      if (gate.two_qubit()) relabeled.q1 = data_[gate.q1];
      canon_.append(relabeled);
    }

    // Relaxed dependency DAG over the canonical circuit; `ready` buckets the
    // currently schedulable gates by matching key, so each emitted gate is
    // matched in O(log #keys). Equal-key gates that are simultaneously ready
    // have identical successor barriers (same kind, wires, angle), so
    // popping any of them is safe.
    dag_ = build_relaxed_dag(canon_);
    indegree_.resize(canon_.size());
    for (std::size_t i = 0; i < canon_.size(); ++i) {
      indegree_[i] = static_cast<std::int32_t>(dag_.pred[i].size());
    }
    for (std::size_t i = 0; i < canon_.size(); ++i) {
      if (indegree_[i] == 0) {
        const Gate& c = canon_[i];
        ready_[key_of(c.kind, c.q0, c.q1, c.angle)].push_back(
            static_cast<std::int32_t>(i));
      }
    }
    tracker_.emplace(initial, num_physical_);
    busy_.assign(static_cast<std::size_t>(num_physical_), 0);
  }

  bool push(const Gate& gate) override {
    if (failed_) return false;
    const std::int64_t gi = gate_index_++;
    const bool two = gate.two_qubit();
    if (gate.q0 < 0 || gate.q0 >= num_physical_ ||
        (two && (gate.q1 < 0 || gate.q1 >= num_physical_ ||
                 gate.q1 == gate.q0))) {
      return fail(at(gi, gate) + ": physical qubit out of range");
    }
    if (two && !graph_->adjacent(gate.q0, gate.q1)) {
      return fail(at(gi, gate) + ": not a coupling-graph edge");
    }

    // Fused ASAP depth + counts (same recurrence as schedule_asap_with).
    Cycle start = busy_[gate.q0];
    if (two) start = std::max(start, busy_[gate.q1]);
    const Cycle finish_at = start + latency_(gate);
    busy_[gate.q0] = finish_at;
    if (two) busy_[gate.q1] = finish_at;
    depth_ = std::max(depth_, finish_at);
    switch (gate.kind) {
      case GateKind::kH: ++counts_.h; break;
      case GateKind::kX: ++counts_.x; break;
      case GateKind::kRz: ++counts_.rz; break;
      case GateKind::kCPhase: ++counts_.cphase; break;
      case GateKind::kSwap: ++counts_.swap; break;
      case GateKind::kCnot: ++counts_.cnot; break;
    }

    if (gate.kind == GateKind::kSwap) {
      tracker_->apply_swap(gate.q0, gate.q1);
      return true;
    }
    const LogicalQubit l0 = tracker_->logical_at(gate.q0);
    const LogicalQubit l1 = two ? tracker_->logical_at(gate.q1) : kInvalidQubit;
    if (l0 == kInvalidQubit || (two && l1 == kInvalidQubit)) {
      return fail(at(gi, gate) +
                  ": acts on a physical qubit holding no logical qubit");
    }
    const auto it = ready_.find(key_of(gate.kind, l0, l1, gate.angle));
    if (it == ready_.end() || it->second.empty()) {
      return fail(at(gi, gate) +
                  ": no matching logical gate is schedulable here "
                  "(wrong gate, angle, or dependency order)");
    }
    const std::int32_t ci = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) ready_.erase(it);
    ++matched_;
    for (const std::int32_t succ : dag_.succ[ci]) {
      if (--indegree_[succ] == 0) {
        const Gate& c = canon_[static_cast<std::size_t>(succ)];
        ready_[key_of(c.kind, c.q0, c.q1, c.angle)].push_back(succ);
      }
    }
    return true;
  }

  bool failed() const override { return failed_; }

  QftCheckResult finish(
      const std::vector<PhysicalQubit>& declared_final) override {
    if (failed_) return fail_result(error_);
    if (matched_ != canon_.size()) {
      return fail_result("mapped circuit is missing " +
                         std::to_string(canon_.size() - matched_) +
                         " logical gate(s)");
    }
    if (static_cast<std::int32_t>(declared_final.size()) != n_) {
      return fail_result("final mapping size does not match the logical "
                         "circuit");
    }
    for (std::int32_t w = 0; w < n_; ++w) {
      // Output of logical wire w is data[w]'s value; the tracker knows
      // where that data ended up physically.
      if (declared_final[w] != tracker_->physical_of(data_[w])) {
        return fail_result(
            "final mapping mismatch on logical qubit " + std::to_string(w) +
            ": declared " + std::to_string(declared_final[w]) + ", tracked " +
            std::to_string(tracker_->physical_of(data_[w])));
      }
    }
    QftCheckResult r;
    r.ok = true;
    r.depth = depth_;
    r.counts = counts_;
    return r;
  }

 private:
  static std::string at(std::int64_t gi, const Gate& gate) {
    return "gate " + std::to_string(gi) + " (" + gate.to_string() + ")";
  }
  bool fail(std::string msg) {
    failed_ = true;
    error_ = std::move(msg);
    return false;
  }

  const CouplingGraph* graph_;
  LatencyModel latency_;
  std::int32_t n_ = 0;
  std::int32_t num_physical_ = 0;

  std::vector<std::int32_t> data_;
  Circuit canon_{0};
  Dag dag_;
  std::vector<std::int32_t> indegree_;
  std::map<GateKey, std::vector<std::int32_t>> ready_;
  std::optional<MappingTracker> tracker_;
  std::vector<Cycle> busy_;
  Cycle depth_ = 0;
  GateCounts counts_;
  std::size_t matched_ = 0;
  std::int64_t gate_index_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

std::unique_ptr<Verifier> make_qft_verifier(
    const std::vector<PhysicalQubit>& initial, const CouplingGraph& g,
    LatencyModel latency) {
  if (!valid_mapping(initial, g.num_qubits())) {
    return std::make_unique<DeadVerifier>("initial mapping is not an "
                                          "injection");
  }
  return std::make_unique<QftVerifier>(initial, g, latency);
}

std::unique_ptr<Verifier> make_circuit_verifier(
    const Circuit& logical, const std::vector<PhysicalQubit>& initial,
    const CouplingGraph& g, LatencyModel latency) {
  return std::make_unique<IncrementalCircuitChecker>(logical, initial, g,
                                                     latency);
}

QftCheckResult verify_mapped(Verifier& v, const MappedCircuit& mc) {
  for (const Gate& gate : mc.circuit) {
    if (!v.push(gate)) break;
  }
  return v.finish(mc.final_mapping);
}

}  // namespace verify
}  // namespace qfto
