#include "verify/equivalence.hpp"

#include <cmath>

#include "circuit/qft_spec.hpp"
#include "common/prng.hpp"
#include "sim/statevector.hpp"

namespace qfto {

namespace {

std::uint64_t embed_index(std::uint64_t x,
                          const std::vector<PhysicalQubit>& map) {
  std::uint64_t y = 0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (x & (std::uint64_t{1} << i)) y |= std::uint64_t{1} << map[i];
  }
  return y;
}

}  // namespace

double mapped_equivalence_error(const MappedCircuit& mc, std::int32_t trials,
                                std::uint64_t seed, const Circuit* logical) {
  const std::int32_t n = mc.num_logical();
  const std::int32_t p = mc.num_physical();
  require(p <= 22, "mapped_equivalence_error: physical register too large");
  Circuit fallback;
  if (logical == nullptr) {
    fallback = qft_logical(n);
    logical = &fallback;
  }
  Xoshiro256ss rng(seed);
  double worst = 0.0;
  const std::uint64_t ldim = std::uint64_t{1} << n;

  for (std::int32_t t = 0; t < trials; ++t) {
    // Random normalized logical state.
    std::vector<Amplitude> psi(ldim);
    double norm2 = 0.0;
    for (auto& a : psi) {
      a = Amplitude{rng.uniform_double() - 0.5, rng.uniform_double() - 0.5};
      norm2 += std::norm(a);
    }
    const double inv = 1.0 / std::sqrt(norm2);
    for (auto& a : psi) a *= inv;

    // Hardware side: embed through the initial mapping, run the circuit.
    StateVector phys(p);
    auto& pa = phys.amplitudes();
    pa.assign(pa.size(), Amplitude{0.0, 0.0});
    for (std::uint64_t x = 0; x < ldim; ++x) {
      pa[embed_index(x, mc.initial)] = psi[x];
    }
    phys.apply(mc.circuit);

    // Reference side: run the logical circuit, embed through final mapping.
    StateVector ref(n);
    ref.amplitudes() = psi;
    ref.apply(*logical);

    std::vector<Amplitude> expected(pa.size(), Amplitude{0.0, 0.0});
    for (std::uint64_t y = 0; y < ldim; ++y) {
      expected[embed_index(y, mc.final_mapping)] = ref.amplitudes()[y];
    }
    for (std::size_t i = 0; i < pa.size(); ++i) {
      worst = std::max(worst, std::abs(pa[i] - expected[i]));
    }
  }
  return worst;
}

}  // namespace qfto
