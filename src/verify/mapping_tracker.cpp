#include "verify/mapping_tracker.hpp"

namespace qfto {

MappingTracker::MappingTracker(
    const std::vector<PhysicalQubit>& logical_to_physical,
    std::int32_t num_physical)
    : l2p_(logical_to_physical), p2l_(num_physical, kInvalidQubit) {
  require(static_cast<std::int32_t>(l2p_.size()) <= num_physical,
          "MappingTracker: more logical than physical qubits");
  for (std::size_t l = 0; l < l2p_.size(); ++l) {
    const PhysicalQubit p = l2p_[l];
    require(p >= 0 && p < num_physical, "MappingTracker: mapping out of range");
    require(p2l_[p] == kInvalidQubit, "MappingTracker: mapping not injective");
    p2l_[p] = static_cast<LogicalQubit>(l);
  }
}

}  // namespace qfto
