#include "verify/qft_checker.hpp"

#include <cmath>
#include <cstdio>

#include "circuit/qft_spec.hpp"
#include "circuit/scheduler.hpp"
#include "verify/mapping_tracker.hpp"

namespace qfto {

namespace {

QftCheckResult fail(std::string msg) {
  QftCheckResult r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

std::string gate_ctx(std::size_t i, const Gate& g) {
  return "gate #" + std::to_string(i) + " " + g.to_string();
}

}  // namespace

QftCheckResult check_qft_mapping(const MappedCircuit& mc,
                                 const CouplingGraph& g,
                                 const LatencyFn& latency) {
  const std::int32_t n = mc.num_logical();
  if (mc.circuit.num_qubits() != g.num_qubits()) {
    return fail("circuit/physical qubit count mismatch");
  }
  if (!valid_mapping(mc.initial, g.num_qubits())) {
    return fail("initial mapping is not an injection");
  }
  if (!valid_mapping(mc.final_mapping, g.num_qubits())) {
    return fail("final mapping is not an injection");
  }

  MappingTracker tracker(mc.initial, g.num_qubits());
  std::vector<std::uint8_t> h_seen(n, 0);
  std::vector<std::uint8_t> pair_seen(static_cast<std::size_t>(n) * n, 0);
  std::int64_t pairs = 0, hs = 0;
  auto pidx = [n](LogicalQubit lo, LogicalQubit hi) {
    return static_cast<std::size_t>(lo) * n + hi;
  };

  for (std::size_t i = 0; i < mc.circuit.size(); ++i) {
    const Gate& gate = mc.circuit[i];
    if (gate.two_qubit() && !g.adjacent(gate.q0, gate.q1)) {
      return fail(gate_ctx(i, gate) + ": qubits not coupled on " + g.name());
    }
    switch (gate.kind) {
      case GateKind::kSwap:
        tracker.apply_swap(gate.q0, gate.q1);
        break;
      case GateKind::kH: {
        const LogicalQubit l = tracker.logical_at(gate.q0);
        if (l == kInvalidQubit) return fail(gate_ctx(i, gate) + ": H on empty node");
        if (h_seen[l]) return fail(gate_ctx(i, gate) + ": duplicate H on logical " + std::to_string(l));
        h_seen[l] = 1;
        ++hs;
        break;
      }
      case GateKind::kCPhase: {
        const LogicalQubit a = tracker.logical_at(gate.q0);
        const LogicalQubit b = tracker.logical_at(gate.q1);
        if (a == kInvalidQubit || b == kInvalidQubit) {
          return fail(gate_ctx(i, gate) + ": CPHASE touches empty node");
        }
        const LogicalQubit lo = std::min(a, b), hi = std::max(a, b);
        if (pair_seen[pidx(lo, hi)]) {
          return fail(gate_ctx(i, gate) + ": duplicate CPHASE on logical pair {" +
                      std::to_string(lo) + "," + std::to_string(hi) + "}");
        }
        if (std::abs(gate.angle - qft_angle(lo, hi)) > 1e-12) {
          return fail(gate_ctx(i, gate) + ": wrong angle for pair {" +
                      std::to_string(lo) + "," + std::to_string(hi) + "}");
        }
        // Relaxed-ordering window (Type II).
        if (!h_seen[lo]) {
          return fail(gate_ctx(i, gate) + ": pair {" + std::to_string(lo) + "," +
                      std::to_string(hi) + "} before H(" + std::to_string(lo) + ")");
        }
        if (h_seen[hi]) {
          return fail(gate_ctx(i, gate) + ": pair {" + std::to_string(lo) + "," +
                      std::to_string(hi) + "} after H(" + std::to_string(hi) + ")");
        }
        pair_seen[pidx(lo, hi)] = 1;
        ++pairs;
        break;
      }
      default:
        return fail(gate_ctx(i, gate) + ": unexpected gate kind in QFT mapping");
    }
  }

  if (hs != n) {
    return fail("missing H gates: got " + std::to_string(hs) + " of " +
                std::to_string(n));
  }
  if (pairs != qft_pair_count(n)) {
    // Identify one missing pair for the error message.
    for (LogicalQubit a = 0; a < n; ++a) {
      for (LogicalQubit b = a + 1; b < n; ++b) {
        if (!pair_seen[pidx(a, b)]) {
          return fail("missing CPHASE for pair {" + std::to_string(a) + "," +
                      std::to_string(b) + "}");
        }
      }
    }
  }
  for (LogicalQubit l = 0; l < n; ++l) {
    if (tracker.physical_of(l) != mc.final_mapping[l]) {
      return fail("declared final mapping wrong for logical " +
                  std::to_string(l));
    }
  }

  QftCheckResult r;
  r.ok = true;
  r.depth = circuit_depth(mc.circuit, latency);
  r.counts = count_gates(mc.circuit);
  return r;
}

}  // namespace qfto
