#include "verify/qft_checker.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/qft_spec.hpp"
#include "circuit/scheduler.hpp"
#include "verify/mapping_tracker.hpp"

namespace qfto {

namespace {

QftCheckResult fail_result(std::string msg) {
  QftCheckResult r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

std::string gate_ctx(std::int64_t i, const Gate& g) {
  return "gate #" + std::to_string(i) + " " + g.to_string();
}

}  // namespace

// ------------------------------------------------- IncrementalQftChecker --

IncrementalQftChecker::IncrementalQftChecker(
    const std::vector<PhysicalQubit>& initial, const CouplingGraph& g,
    LatencyModel latency)
    : graph_(&g),
      model_(latency),
      n_(static_cast<std::int32_t>(initial.size())),
      num_physical_(g.num_qubits()),
      p2l_(static_cast<std::size_t>(g.num_qubits()), kInvalidQubit),
      h_seen_((static_cast<std::size_t>(n_) + 63) / 64, 0),
      pair_seen_((static_cast<std::size_t>(qft_pair_count(n_)) + 63) / 64, 0),
      ready_(static_cast<std::size_t>(g.num_qubits()), 0) {
  require(n_ <= num_physical_,
          "IncrementalQftChecker: more logical than physical qubits");
  for (std::size_t l = 0; l < initial.size(); ++l) {
    const PhysicalQubit p = initial[l];
    require(p >= 0 && p < num_physical_,
            "IncrementalQftChecker: mapping out of range");
    require(p2l_[p] == kInvalidQubit,
            "IncrementalQftChecker: mapping not injective");
    p2l_[p] = static_cast<LogicalQubit>(l);
  }
  // Expected CPHASE angles depend only on the logical gap; resolving them
  // once keeps qft_angle (and its libm scaling) out of the per-gate path.
  angle_by_gap_.resize(static_cast<std::size_t>(n_ > 0 ? n_ : 1), 0.0);
  for (std::int32_t gap = 1; gap < n_; ++gap) {
    angle_by_gap_[static_cast<std::size_t>(gap)] = qft_angle(0, gap);
  }
  row_base_.resize(static_cast<std::size_t>(n_ > 0 ? n_ : 1), 0);
  std::uint64_t base = 0;
  for (std::int32_t lo = 0; lo < n_; ++lo) {
    row_base_[static_cast<std::size_t>(lo)] = base;
    base += static_cast<std::uint64_t>(n_ - 1 - lo);
  }
}

IncrementalQftChecker::IncrementalQftChecker(
    const std::vector<PhysicalQubit>& initial, const CouplingGraph& g,
    const LatencyFn& latency)
    : IncrementalQftChecker(initial, g) {
  fn_ = &latency;
}

bool IncrementalQftChecker::fail(std::string msg) {
  failed_ = true;
  error_ = std::move(msg);
  return false;
}

bool IncrementalQftChecker::fail_gate(const Gate& gate,
                                      const std::string& what) {
  return fail(gate_ctx(gates_seen_ - 1, gate) + what);
}

template <bool kTrusted>
bool IncrementalQftChecker::push_impl(const Gate& gate) {
  if (failed_) return false;
  ++gates_seen_;
  const bool two = gate.two_qubit();
  if (!kTrusted) {
    // Gates may arrive from outside a Circuit (which validates on append),
    // so guard the wire indices before they index checker state.
    if (gate.q0 < 0 || gate.q0 >= num_physical_) {
      return fail_gate(gate, ": physical qubit out of range");
    }
    if (two &&
        (gate.q1 < 0 || gate.q1 >= num_physical_ || gate.q1 == gate.q0)) {
      return fail_gate(gate, ": physical qubit out of range");
    }
  }
  // One probe serves both the adjacency check and the latency charge.
  LinkType link = LinkType::kStandard;
  if (two) {
    const auto lt = graph_->link_type(gate.q0, gate.q1);
    if (!lt) {
      return fail_gate(gate, ": qubits not coupled on " + graph_->name());
    }
    link = *lt;
  }
  switch (gate.kind) {
    case GateKind::kSwap: {
      const LogicalQubit la = p2l_[gate.q0];
      p2l_[gate.q0] = p2l_[gate.q1];
      p2l_[gate.q1] = la;
      ++counts_.swap;
      break;
    }
    case GateKind::kH: {
      const LogicalQubit l = p2l_[gate.q0];
      if (l == kInvalidQubit) return fail_gate(gate, ": H on empty node");
      if (h_bit(l)) {
        return fail_gate(gate, ": duplicate H on logical " + std::to_string(l));
      }
      set_h_bit(l);
      ++hs_;
      ++counts_.h;
      break;
    }
    case GateKind::kCPhase: {
      const LogicalQubit a = p2l_[gate.q0];
      const LogicalQubit b = p2l_[gate.q1];
      if (a == kInvalidQubit || b == kInvalidQubit) {
        return fail_gate(gate, ": CPHASE touches empty node");
      }
      const LogicalQubit lo = std::min(a, b), hi = std::max(a, b);
      const std::size_t idx = pair_index(lo, hi);
      if (pair_bit(idx)) {
        return fail_gate(gate, ": duplicate CPHASE on logical pair {" +
                                   std::to_string(lo) + "," +
                                   std::to_string(hi) + "}");
      }
      if (std::abs(gate.angle -
                   angle_by_gap_[static_cast<std::size_t>(hi - lo)]) > 1e-12) {
        return fail_gate(gate, ": wrong angle for pair {" + std::to_string(lo) +
                                   "," + std::to_string(hi) + "}");
      }
      // Relaxed-ordering window (Type II).
      if (!h_bit(lo)) {
        return fail_gate(gate, ": pair {" + std::to_string(lo) + "," +
                                   std::to_string(hi) + "} before H(" +
                                   std::to_string(lo) + ")");
      }
      if (h_bit(hi)) {
        return fail_gate(gate, ": pair {" + std::to_string(lo) + "," +
                                   std::to_string(hi) + "} after H(" +
                                   std::to_string(hi) + ")");
      }
      set_pair_bit(idx);
      ++pairs_;
      ++counts_.cphase;
      break;
    }
    default:
      return fail_gate(gate, ": unexpected gate kind in QFT mapping");
  }
  // Fused ASAP scheduling — same arithmetic as schedule_asap, maintained
  // inline so verification never needs a second walk over the circuit.
  Cycle t = ready_[gate.q0];
  if (two) t = std::max(t, ready_[gate.q1]);
  const Cycle dur =
      fn_ != nullptr ? (*fn_)(gate) : model_.cycles_on_link(gate.kind, link);
  ready_[gate.q0] = t + dur;
  if (two) ready_[gate.q1] = t + dur;
  depth_ = std::max(depth_, t + dur);
  return true;
}

bool IncrementalQftChecker::push(const Gate& gate) {
  return push_impl<false>(gate);
}

bool IncrementalQftChecker::push_trusted(const Gate& gate) {
  return push_impl<true>(gate);
}

QftCheckResult IncrementalQftChecker::finish(
    const std::vector<PhysicalQubit>& declared_final) {
  if (failed_) return fail_result(error_);
  if (hs_ != n_) {
    fail("missing H gates: got " + std::to_string(hs_) + " of " +
         std::to_string(n_));
    return fail_result(error_);
  }
  if (pairs_ != qft_pair_count(n_)) {
    // Identify one missing pair for the error message. Word-parallel: the
    // packed triangular bitset is compared 64 pairs at a time against
    // all-ones (O(n²/64) instead of O(n²) bit probes), then the first zero
    // bit is mapped back to (a,b) by binary search on row_base_.
    const std::uint64_t total =
        static_cast<std::uint64_t>(qft_pair_count(n_));
    for (std::size_t w = 0; w < pair_seen_.size(); ++w) {
      const std::uint64_t valid =
          std::min<std::uint64_t>(64, total - 64 * w);
      const std::uint64_t want =
          valid == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid) - 1;
      const std::uint64_t missing = ~pair_seen_[w] & want;
      if (missing == 0) continue;
      const std::uint64_t idx =
          64 * w + static_cast<std::uint64_t>(__builtin_ctzll(missing));
      const auto it = std::upper_bound(row_base_.begin(),
                                       row_base_.begin() + n_, idx);
      const auto a =
          static_cast<LogicalQubit>(it - row_base_.begin() - 1);
      const auto b = static_cast<LogicalQubit>(
          a + 1 + (idx - row_base_[static_cast<std::size_t>(a)]));
      fail("missing CPHASE for pair {" + std::to_string(a) + "," +
           std::to_string(b) + "}");
      return fail_result(error_);
    }
  }
  if (static_cast<std::int32_t>(declared_final.size()) != n_) {
    fail("declared final mapping has wrong size");
    return fail_result(error_);
  }
  // Invert the tracked occupancy once for the final-mapping comparison.
  std::vector<PhysicalQubit> physical_of(static_cast<std::size_t>(n_),
                                         kInvalidQubit);
  for (PhysicalQubit p = 0; p < num_physical_; ++p) {
    if (p2l_[p] != kInvalidQubit) physical_of[p2l_[p]] = p;
  }
  for (LogicalQubit l = 0; l < n_; ++l) {
    if (physical_of[l] != declared_final[l]) {
      fail("declared final mapping wrong for logical " + std::to_string(l));
      return fail_result(error_);
    }
  }
  QftCheckResult r;
  r.ok = true;
  r.depth = depth_;
  r.counts = counts_;
  return r;
}

// ------------------------------------------------------ streaming drivers --

namespace {

template <typename Checker>
QftCheckResult run_stream(Checker& checker, const MappedCircuit& mc) {
  // Circuit::append validated every wire index, and the driver checked the
  // circuit against the graph's qubit count, so the trusted path applies.
  for (const Gate& gate : mc.circuit) {
    if (!checker.push_trusted(gate)) break;
  }
  return checker.finish(mc.final_mapping);
}

/// Header validation shared by every entry point; empty string when sane.
std::string header_error(const MappedCircuit& mc, const CouplingGraph& g) {
  if (mc.circuit.num_qubits() != g.num_qubits()) {
    return "circuit/physical qubit count mismatch";
  }
  if (!valid_mapping(mc.initial, g.num_qubits())) {
    return "initial mapping is not an injection";
  }
  if (!valid_mapping(mc.final_mapping, g.num_qubits())) {
    return "final mapping is not an injection";
  }
  return {};
}

}  // namespace

QftCheckResult check_qft_mapping(const MappedCircuit& mc,
                                 const CouplingGraph& g,
                                 const LatencyModel& latency) {
  std::string err = header_error(mc, g);
  if (!err.empty()) return fail_result(std::move(err));
  IncrementalQftChecker checker(mc.initial, g, latency);
  return run_stream(checker, mc);
}

QftCheckResult check_qft_mapping(const MappedCircuit& mc,
                                 const CouplingGraph& g,
                                 const LatencyFn& latency) {
  std::string err = header_error(mc, g);
  if (!err.empty()) return fail_result(std::move(err));
  IncrementalQftChecker checker(mc.initial, g, latency);
  return run_stream(checker, mc);
}

// -------------------------------------------------------- replay (legacy) --

QftCheckResult check_qft_mapping_replay(const MappedCircuit& mc,
                                        const CouplingGraph& g,
                                        const LatencyFn& latency) {
  const std::int32_t n = mc.num_logical();
  std::string err = header_error(mc, g);
  if (!err.empty()) return fail_result(std::move(err));

  MappingTracker tracker(mc.initial, g.num_qubits());
  std::vector<std::uint8_t> h_seen(n, 0);
  std::vector<std::uint8_t> pair_seen(static_cast<std::size_t>(n) * n, 0);
  std::int64_t pairs = 0, hs = 0;
  auto pidx = [n](LogicalQubit lo, LogicalQubit hi) {
    return static_cast<std::size_t>(lo) * n + hi;
  };

  for (std::size_t i = 0; i < mc.circuit.size(); ++i) {
    const Gate& gate = mc.circuit[i];
    if (gate.two_qubit() && !g.adjacent(gate.q0, gate.q1)) {
      return fail_result(gate_ctx(i, gate) + ": qubits not coupled on " +
                         g.name());
    }
    switch (gate.kind) {
      case GateKind::kSwap:
        tracker.apply_swap(gate.q0, gate.q1);
        break;
      case GateKind::kH: {
        const LogicalQubit l = tracker.logical_at(gate.q0);
        if (l == kInvalidQubit) {
          return fail_result(gate_ctx(i, gate) + ": H on empty node");
        }
        if (h_seen[l]) {
          return fail_result(gate_ctx(i, gate) + ": duplicate H on logical " +
                             std::to_string(l));
        }
        h_seen[l] = 1;
        ++hs;
        break;
      }
      case GateKind::kCPhase: {
        const LogicalQubit a = tracker.logical_at(gate.q0);
        const LogicalQubit b = tracker.logical_at(gate.q1);
        if (a == kInvalidQubit || b == kInvalidQubit) {
          return fail_result(gate_ctx(i, gate) + ": CPHASE touches empty node");
        }
        const LogicalQubit lo = std::min(a, b), hi = std::max(a, b);
        if (pair_seen[pidx(lo, hi)]) {
          return fail_result(gate_ctx(i, gate) +
                             ": duplicate CPHASE on logical pair {" +
                             std::to_string(lo) + "," + std::to_string(hi) +
                             "}");
        }
        if (std::abs(gate.angle - qft_angle(lo, hi)) > 1e-12) {
          return fail_result(gate_ctx(i, gate) + ": wrong angle for pair {" +
                             std::to_string(lo) + "," + std::to_string(hi) +
                             "}");
        }
        // Relaxed-ordering window (Type II).
        if (!h_seen[lo]) {
          return fail_result(gate_ctx(i, gate) + ": pair {" +
                             std::to_string(lo) + "," + std::to_string(hi) +
                             "} before H(" + std::to_string(lo) + ")");
        }
        if (h_seen[hi]) {
          return fail_result(gate_ctx(i, gate) + ": pair {" +
                             std::to_string(lo) + "," + std::to_string(hi) +
                             "} after H(" + std::to_string(hi) + ")");
        }
        pair_seen[pidx(lo, hi)] = 1;
        ++pairs;
        break;
      }
      default:
        return fail_result(gate_ctx(i, gate) +
                           ": unexpected gate kind in QFT mapping");
    }
  }

  if (hs != n) {
    return fail_result("missing H gates: got " + std::to_string(hs) + " of " +
                       std::to_string(n));
  }
  if (pairs != qft_pair_count(n)) {
    for (LogicalQubit a = 0; a < n; ++a) {
      for (LogicalQubit b = a + 1; b < n; ++b) {
        if (!pair_seen[pidx(a, b)]) {
          return fail_result("missing CPHASE for pair {" + std::to_string(a) +
                             "," + std::to_string(b) + "}");
        }
      }
    }
  }
  for (LogicalQubit l = 0; l < n; ++l) {
    if (tracker.physical_of(l) != mc.final_mapping[l]) {
      return fail_result("declared final mapping wrong for logical " +
                         std::to_string(l));
    }
  }

  QftCheckResult r;
  r.ok = true;
  r.depth = circuit_depth(mc.circuit, latency);
  r.counts = count_gates(mc.circuit);
  return r;
}

}  // namespace qfto
