// Depth- and gate-count-driven fidelity estimate. The paper's motivation for
// minimizing both metrics is noise: "smaller depth and fewer gate operations
// mean a lower possibility of being affected by external noise" (§7). This
// model turns the two compilation metrics into one comparable success
// probability:
//     F = (1-e1)^{#1q} * (1-e2)^{#2q-equivalents} * exp(-depth/T)
// with SWAP counted as three two-qubit gates (CPHASE as two) and T an
// idle-coherence horizon in cycles. Default rates are representative NISQ
// numbers; the model is for *relative* comparison (ours vs SABRE), not
// absolute prediction.
//
// Three resolutions, coarsest to finest:
//   - GateCounts + depth: the closed-form core — no schedule pass, used when
//     the checker already counted and scheduled (pipeline verify).
//   - Circuit + NoiseModel + LatencyModel: uniform rates, concrete cycle
//     table (the PR-2 hot-path form; the LatencyFn signature below is a
//     compatibility shim over it).
//   - Circuit + DeviceModel: per-qubit 1q error/coherence and per-edge 2q
//     error from the calibration table — what SABRE's fidelity objective and
//     the device-aware pipeline report. Decoherence charges every *used*
//     qubit for the full depth, so the absolute scale differs from the
//     closed-form's single exp(-depth/T) term; comparisons are valid within
//     one resolution, not across them.
#pragma once

#include "arch/latency_model.hpp"
#include "circuit/mapped_circuit.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/stats.hpp"

namespace qfto {

class DeviceModel;

struct NoiseModel {
  double error_1q = 1e-4;
  double error_2q = 5e-3;
  double coherence_cycles = 2e4;  // T in units of scheduler cycles
};

/// Closed-form core over already-computed statistics: log10 of the estimated
/// success probability (log keeps hundreds of thousands of gates
/// representable; higher is better, always <= 0).
double log10_fidelity(const GateCounts& counts, Cycle depth,
                      const NoiseModel& model);

/// Uniform-rate estimate with the depth resolved by a concrete LatencyModel
/// cycle table (which must be bound to the circuit's graph if any cost is
/// link-dependent).
double log10_fidelity(const Circuit& c, const NoiseModel& model,
                      const LatencyModel& latency);

/// Calibrated estimate: per-qubit error_1q, per-edge error_2q (SWAP = 3
/// CNOT-equivalents, CPHASE = 2, charged at the edge's rate), and
/// decoherence summed over every qubit the circuit touches at that qubit's
/// own coherence horizon. `latency` should be device.latency_model(graph).
double log10_fidelity(const Circuit& c, const DeviceModel& device,
                      const LatencyModel& latency);

/// Legacy LatencyFn adapter kept as a thin shim over the LatencyModel form —
/// existing call sites (and their defaults) keep compiling.
double log10_fidelity(const Circuit& c, const NoiseModel& model = {},
                      const LatencyFn& latency = unit_latency);

}  // namespace qfto
