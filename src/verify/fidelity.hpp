// Depth- and gate-count-driven fidelity estimate. The paper's motivation for
// minimizing both metrics is noise: "smaller depth and fewer gate operations
// mean a lower possibility of being affected by external noise" (§7). This
// model turns the two compilation metrics into one comparable success
// probability:
//     F = (1-e1)^{#1q} * (1-e2)^{#2q-equivalents} * exp(-depth/T)
// with SWAP counted as three two-qubit gates and T an idle-coherence horizon
// in cycles. Default rates are representative NISQ numbers; the model is for
// *relative* comparison (ours vs SABRE), not absolute prediction.
#pragma once

#include "circuit/mapped_circuit.hpp"
#include "circuit/scheduler.hpp"

namespace qfto {

struct NoiseModel {
  double error_1q = 1e-4;
  double error_2q = 5e-3;
  double coherence_cycles = 2e4;  // T in units of scheduler cycles
};

/// log10 of the estimated success probability (log keeps hundreds of
/// thousands of gates representable; higher is better).
double log10_fidelity(const Circuit& c, const NoiseModel& model = {},
                      const LatencyFn& latency = unit_latency);

}  // namespace qfto
