// Dynamic (simulation-based) equivalence between a mapped hardware circuit
// and the logical QFT. Complements the static checker: the checker proves the
// schedule is a valid relaxed reordering; this proves the unitary itself on
// random states, catching any error in the checker's own reasoning.
#pragma once

#include <cstdint>

#include "circuit/mapped_circuit.hpp"

namespace qfto {

/// Max |amplitude difference| between (mapped circuit applied to an embedded
/// random logical state, read out through the final mapping) and (reference
/// logical circuit applied to the same state), over `trials` random states.
/// `logical` defaults to qft_logical(n) when null.
double mapped_equivalence_error(const MappedCircuit& mc,
                                std::int32_t trials = 4,
                                std::uint64_t seed = 0x51ab5,
                                const Circuit* logical = nullptr);

}  // namespace qfto
