// One streaming verification interface over both checker families.
//
// verify::Verifier is the push-based contract the pipeline, the service and
// the emitters program against: feed mapped gates one at a time, then
// finish() against the declared final mapping to obtain the QftCheckResult
// (verdict + latency-weighted ASAP depth + gate counts). Two factories cover
// the two specs this repo verifies against:
//
//   * make_qft_verifier — wraps IncrementalQftChecker (the QFT spec);
//   * make_circuit_verifier — IncrementalCircuitChecker, the streaming
//     refactor of the old single-function check_circuit_mapping: the
//     canonical SWAP-free relabeling, relaxed dependency DAG and ready
//     buckets are built once in the constructor, and each push() performs
//     one gate's worth of matching. check_circuit_mapping survives as a
//     thin driver over it.
//
// EmitAudit is the fused form: instead of re-streaming the finished gate
// list through a Verifier, a LayerEmitter constructed with an EmitAudit
// maintains the same ASAP depth/count arithmetic gate-by-gate *as it emits*.
// The emitter's construction-time invariants (adjacency require on every
// two-qubit gate, QftState's exactly-once pair/H windows, MappingTracker
// injectivity, angles stamped from logical ids) discharge exactly the
// checker's per-gate obligations, so the audited result is bit-identical to
// post-hoc check_qft_mapping — the pipeline cross-checks this in
// tests/test_pipeline.cpp — while the separate O(gates) verification pass
// disappears entirely.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "arch/latency_model.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapped_circuit.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {
namespace verify {

/// Streaming mapped-circuit verifier. push() returns false once verification
/// has failed (subsequent gates are ignored); finish() renders the verdict.
class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual bool push(const Gate& gate) = 0;
  virtual bool failed() const = 0;
  virtual QftCheckResult finish(
      const std::vector<PhysicalQubit>& declared_final) = 0;
};

/// Verifier for the QFT spec: wraps IncrementalQftChecker. An invalid
/// `initial` yields a verifier that reports the header error at finish()
/// instead of throwing.
std::unique_ptr<Verifier> make_qft_verifier(
    const std::vector<PhysicalQubit>& initial, const CouplingGraph& g,
    LatencyModel latency = LatencyModel());

/// Verifier for an arbitrary logical circuit: IncrementalCircuitChecker.
/// `logical` and `g` must outlive the verifier.
std::unique_ptr<Verifier> make_circuit_verifier(
    const Circuit& logical, const std::vector<PhysicalQubit>& initial,
    const CouplingGraph& g, LatencyModel latency = LatencyModel());

/// Streams mc.circuit through `v` and finishes against mc.final_mapping.
QftCheckResult verify_mapped(Verifier& v, const MappedCircuit& mc);

/// Fused emit-time verification handle. Construct with the latency model the
/// result will be judged under, pass to LayerEmitter (directly or through
/// MapOptions); after the mapper finishes, `engaged` says whether the emitter
/// audited (structured emitters do; routed baselines that bypass
/// LayerEmitter leave it false and the pipeline falls back to a streaming
/// Verifier pass), and `result` carries the verdict.
struct EmitAudit {
  LatencyModel model;
  bool engaged = false;
  QftCheckResult result;
};

}  // namespace verify
}  // namespace qfto
