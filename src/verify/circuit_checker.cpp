#include "verify/circuit_checker.hpp"

#include "verify/verifier.hpp"

namespace qfto {

namespace {

QftCheckResult failure(std::string msg) {
  QftCheckResult r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

}  // namespace

// Thin driver over the streaming verify::IncrementalCircuitChecker (see
// verify/verifier.cpp): header validation needs the whole MappedCircuit, the
// per-gate matching is one push() per emitted gate.
QftCheckResult check_circuit_mapping(const MappedCircuit& mc,
                                     const Circuit& logical,
                                     const CouplingGraph& g,
                                     const LatencyModel& latency) {
  const std::int32_t n = logical.num_qubits();
  const std::int32_t num_physical = g.num_qubits();
  if (mc.circuit.num_qubits() != num_physical) {
    return failure("mapped circuit register size does not match the graph");
  }
  if (mc.num_logical() != n) {
    return failure("initial mapping size does not match the logical circuit");
  }
  if (static_cast<std::int32_t>(mc.final_mapping.size()) != n) {
    return failure("final mapping size does not match the logical circuit");
  }
  if (!valid_mapping(mc.initial, num_physical)) {
    return failure("initial mapping is not an injection");
  }
  if (!valid_mapping(mc.final_mapping, num_physical)) {
    return failure("final mapping is not an injection");
  }
  auto verifier = verify::make_circuit_verifier(logical, mc.initial, g,
                                                latency);
  return verify::verify_mapped(*verifier, mc);
}

}  // namespace qfto
