#include "verify/circuit_checker.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <tuple>
#include <vector>

#include "circuit/dag.hpp"
#include "verify/mapping_tracker.hpp"

namespace qfto {

namespace {

/// Matching key: kind, operand labels (sorted for the symmetric CPHASE —
/// its unitary ignores orientation), exact angle bit pattern. Routers copy
/// angles verbatim, so bit equality is the right notion.
using GateKey = std::tuple<std::uint8_t, std::int32_t, std::int32_t,
                           std::uint64_t>;

GateKey key_of(GateKind kind, std::int32_t a, std::int32_t b, double angle) {
  if (kind == GateKind::kCPhase && a > b) std::swap(a, b);
  std::uint64_t angle_bits = 0;
  std::memcpy(&angle_bits, &angle, sizeof(angle_bits));
  return {static_cast<std::uint8_t>(kind), a, b, angle_bits};
}

QftCheckResult failure(std::string msg) {
  QftCheckResult r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

}  // namespace

QftCheckResult check_circuit_mapping(const MappedCircuit& mc,
                                     const Circuit& logical,
                                     const CouplingGraph& g,
                                     const LatencyModel& latency) {
  const std::int32_t n = logical.num_qubits();
  const std::int32_t num_physical = g.num_qubits();
  if (mc.circuit.num_qubits() != num_physical) {
    return failure("mapped circuit register size does not match the graph");
  }
  if (mc.num_logical() != n) {
    return failure("initial mapping size does not match the logical circuit");
  }
  if (static_cast<std::int32_t>(mc.final_mapping.size()) != n) {
    return failure("final mapping size does not match the logical circuit");
  }
  if (!valid_mapping(mc.initial, num_physical)) {
    return failure("initial mapping is not an injection");
  }
  if (!valid_mapping(mc.final_mapping, num_physical)) {
    return failure("final mapping is not an injection");
  }

  // Reference side: eliminate logical SWAP gates by relabeling — data[w] is
  // the original wire label whose value currently sits on wire w. The
  // canonical circuit is SWAP-free and expressed in data labels, exactly the
  // labels MappingTracker recovers on the hardware side (it follows every
  // physical SWAP, including ones a router emitted for a logical SWAP gate).
  std::vector<std::int32_t> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  Circuit canon(n);
  for (const Gate& gate : logical) {
    if (gate.kind == GateKind::kSwap) {
      std::swap(data[gate.q0], data[gate.q1]);
      continue;
    }
    Gate relabeled = gate;
    relabeled.q0 = data[gate.q0];
    if (gate.two_qubit()) relabeled.q1 = data[gate.q1];
    canon.append(relabeled);
  }

  // Relaxed dependency DAG over the canonical circuit; `ready` buckets the
  // currently schedulable gates by matching key, so each emitted gate is
  // matched in O(log #keys). Equal-key gates that are simultaneously ready
  // have identical successor barriers (same kind, wires, angle), so popping
  // any of them is safe.
  const Dag dag = build_relaxed_dag(canon);
  std::vector<std::int32_t> indegree(canon.size());
  for (std::size_t i = 0; i < canon.size(); ++i) {
    indegree[i] = static_cast<std::int32_t>(dag.pred[i].size());
  }
  std::map<GateKey, std::vector<std::int32_t>> ready;
  for (std::size_t i = 0; i < canon.size(); ++i) {
    if (indegree[i] == 0) {
      const Gate& c = canon[static_cast<std::size_t>(i)];
      ready[key_of(c.kind, c.q0, c.q1, c.angle)].push_back(
          static_cast<std::int32_t>(i));
    }
  }

  MappingTracker tracker(mc.initial, num_physical);
  std::vector<Cycle> busy(static_cast<std::size_t>(num_physical), 0);
  Cycle depth = 0;
  GateCounts counts;
  std::size_t matched = 0;

  for (std::size_t gi = 0; gi < mc.circuit.size(); ++gi) {
    const Gate& gate = mc.circuit[gi];
    const std::string at = "gate " + std::to_string(gi) + " (" +
                           gate.to_string() + ")";
    if (gate.two_qubit() && !g.adjacent(gate.q0, gate.q1)) {
      return failure(at + ": not a coupling-graph edge");
    }

    // Fused ASAP depth + counts (same recurrence as schedule_asap_with).
    Cycle start = busy[gate.q0];
    if (gate.two_qubit()) start = std::max(start, busy[gate.q1]);
    const Cycle finish = start + latency(gate);
    busy[gate.q0] = finish;
    if (gate.two_qubit()) busy[gate.q1] = finish;
    depth = std::max(depth, finish);
    switch (gate.kind) {
      case GateKind::kH: ++counts.h; break;
      case GateKind::kX: ++counts.x; break;
      case GateKind::kRz: ++counts.rz; break;
      case GateKind::kCPhase: ++counts.cphase; break;
      case GateKind::kSwap: ++counts.swap; break;
      case GateKind::kCnot: ++counts.cnot; break;
    }

    if (gate.kind == GateKind::kSwap) {
      tracker.apply_swap(gate.q0, gate.q1);
      continue;
    }
    const LogicalQubit l0 = tracker.logical_at(gate.q0);
    const LogicalQubit l1 =
        gate.two_qubit() ? tracker.logical_at(gate.q1) : kInvalidQubit;
    if (l0 == kInvalidQubit || (gate.two_qubit() && l1 == kInvalidQubit)) {
      return failure(at + ": acts on a physical qubit holding no logical "
                          "qubit");
    }
    const auto it = ready.find(key_of(gate.kind, l0, l1, gate.angle));
    if (it == ready.end() || it->second.empty()) {
      return failure(at + ": no matching logical gate is schedulable here "
                          "(wrong gate, angle, or dependency order)");
    }
    const std::int32_t ci = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) ready.erase(it);
    ++matched;
    for (const std::int32_t succ : dag.succ[ci]) {
      if (--indegree[succ] == 0) {
        const Gate& c = canon[static_cast<std::size_t>(succ)];
        ready[key_of(c.kind, c.q0, c.q1, c.angle)].push_back(succ);
      }
    }
  }

  if (matched != canon.size()) {
    return failure("mapped circuit is missing " +
                   std::to_string(canon.size() - matched) +
                   " logical gate(s)");
  }
  for (std::int32_t w = 0; w < n; ++w) {
    // Output of logical wire w is data[w]'s value; the tracker knows where
    // that data ended up physically.
    if (mc.final_mapping[w] != tracker.physical_of(data[w])) {
      return failure("final mapping mismatch on logical qubit " +
                     std::to_string(w) + ": declared " +
                     std::to_string(mc.final_mapping[w]) + ", tracked " +
                     std::to_string(tracker.physical_of(data[w])));
    }
  }

  QftCheckResult r;
  r.ok = true;
  r.depth = depth;
  r.counts = counts;
  return r;
}

}  // namespace qfto
