// Static verifier for arbitrary mapped circuits — the general-circuit
// counterpart of qft_checker. Where IncrementalQftChecker proves a hardware
// circuit implements the QFT spec, this proves it implements a caller-
// supplied logical circuit:
//   1. every two-qubit gate acts on a coupling-graph edge;
//   2. with SWAPs interpreted as permutation updates (MappingTracker), the
//      remaining gates — translated back to logical labels — form a valid
//      relaxed-DAG reordering of the logical circuit: a bijective, gate-for-
//      gate matching in which only diagonal gates (CPHASE/RZ) may commute
//      past each other (Insight 1 of the paper), which is unitarily sound;
//   3. logical SWAP gates are handled by wire relabeling on the reference
//      side (SWAP . U(a,b) = U(b,a) . SWAP exactly), so inputs containing
//      explicit SWAPs verify whether the mapper emitted or absorbed them;
//   4. the declared final mapping matches the tracked permutation.
// Depth (under the supplied latency model) and gate counts are computed in
// the same single pass. The simulation-based mapped_equivalence_error
// remains the dynamic oracle on small sizes; this checker is the exhaustive,
// size-independent one the pipeline's general entry point (map_circuit)
// runs on every result.
#pragma once

#include "arch/coupling_graph.hpp"
#include "arch/latency_model.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapped_circuit.hpp"
#include "verify/qft_checker.hpp"

namespace qfto {

/// Verifies that `mc` implements `logical` on `g`. Shares QftCheckResult
/// with the QFT checker so MapResult::check is entry-point agnostic.
QftCheckResult check_circuit_mapping(const MappedCircuit& mc,
                                     const Circuit& logical,
                                     const CouplingGraph& g,
                                     const LatencyModel& latency =
                                         LatencyModel());

}  // namespace qfto
