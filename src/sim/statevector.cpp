#include "sim/statevector.hpp"

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace qfto {

namespace {

std::atomic<std::int32_t> g_threads{1};
constexpr std::uint64_t kParallelThreshold = std::uint64_t{1} << 18;

// Fork/join over [0, total) in contiguous chunks. `body(lo, hi)` must be
// safe on disjoint ranges.
template <typename Body>
void parallel_for(std::uint64_t total, const Body& body) {
  const std::int32_t threads = g_threads.load(std::memory_order_relaxed);
  if (threads <= 1 || total < kParallelThreshold) {
    body(0, total);
    return;
  }
  std::vector<std::thread> pool;
  const std::uint64_t chunk = (total + threads - 1) / threads;
  for (std::int32_t t = 0; t < threads; ++t) {
    const std::uint64_t lo = chunk * t;
    const std::uint64_t hi = std::min(total, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&body, lo, hi] { body(lo, hi); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace

void StateVector::set_num_threads(std::int32_t threads) {
  require(threads >= 1, "StateVector::set_num_threads: threads >= 1");
  g_threads.store(threads, std::memory_order_relaxed);
}

std::int32_t StateVector::num_threads() {
  return g_threads.load(std::memory_order_relaxed);
}

StateVector::StateVector(std::int32_t num_qubits) : n_(num_qubits) {
  require(num_qubits >= 0 && num_qubits <= 28,
          "StateVector: qubit count out of supported range");
  amp_.assign(std::uint64_t{1} << n_, Amplitude{0.0, 0.0});
  amp_[0] = Amplitude{1.0, 0.0};
}

StateVector StateVector::basis(std::int32_t num_qubits, std::uint64_t x) {
  StateVector sv(num_qubits);
  require(x < sv.dim(), "StateVector::basis: index out of range");
  sv.amp_[0] = Amplitude{0.0, 0.0};
  sv.amp_[x] = Amplitude{1.0, 0.0};
  return sv;
}

void StateVector::apply(const Gate& g) {
  switch (g.kind) {
    case GateKind::kH: apply_h(g.q0); break;
    case GateKind::kX: apply_x(g.q0); break;
    case GateKind::kRz: apply_rz(g.q0, g.angle); break;
    case GateKind::kCPhase: apply_cphase(g.q0, g.q1, g.angle); break;
    case GateKind::kSwap: apply_swap(g.q0, g.q1); break;
    case GateKind::kCnot: apply_cnot(g.q0, g.q1); break;
  }
}

void StateVector::apply(const Circuit& c) {
  require(c.num_qubits() == n_, "StateVector::apply: qubit count mismatch");
  for (const auto& g : c) apply(g);
}

void StateVector::apply_h(std::int32_t q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  // Each k in [0, dim/2) names one (i0, i1) pair; pairs are disjoint, so the
  // loop parallelizes over contiguous k-ranges without synchronization.
  parallel_for(dim() >> 1, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t k = lo; k < hi; ++k) {
      const std::uint64_t i0 = ((k & ~(bit - 1)) << 1) | (k & (bit - 1));
      const std::uint64_t i1 = i0 | bit;
      const Amplitude a0 = amp_[i0], a1 = amp_[i1];
      amp_[i0] = (a0 + a1) * inv_sqrt2;
      amp_[i1] = (a0 - a1) * inv_sqrt2;
    }
  });
}

void StateVector::apply_x(std::int32_t q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::uint64_t base = 0; base < dim(); base += bit << 1) {
    for (std::uint64_t off = 0; off < bit; ++off) {
      std::swap(amp_[base | off], amp_[base | off | bit]);
    }
  }
}

void StateVector::apply_rz(std::int32_t q, double angle) {
  // diag(1, e^{i*angle}) up to global phase.
  const std::uint64_t bit = std::uint64_t{1} << q;
  const Amplitude phase = std::polar(1.0, angle);
  parallel_for(dim(), [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      if (i & bit) amp_[i] *= phase;
    }
  });
}

void StateVector::apply_cphase(std::int32_t a, std::int32_t b, double angle) {
  const std::uint64_t mask = (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
  const Amplitude phase = std::polar(1.0, angle);
  parallel_for(dim(), [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      if ((i & mask) == mask) amp_[i] *= phase;
    }
  });
}

void StateVector::apply_swap(std::int32_t a, std::int32_t b) {
  const std::uint64_t ba = std::uint64_t{1} << a;
  const std::uint64_t bb = std::uint64_t{1} << b;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    const bool va = i & ba, vb = i & bb;
    if (va && !vb) {
      const std::uint64_t j = (i & ~ba) | bb;
      std::swap(amp_[i], amp_[j]);
    }
  }
}

void StateVector::apply_cnot(std::int32_t control, std::int32_t target) {
  const std::uint64_t bc = std::uint64_t{1} << control;
  const std::uint64_t bt = std::uint64_t{1} << target;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if ((i & bc) && !(i & bt)) {
      std::swap(amp_[i], amp_[i | bt]);
    }
  }
}

void StateVector::permute_qubits(const std::vector<std::int32_t>& perm) {
  require(perm.size() == static_cast<std::size_t>(n_),
          "permute_qubits: wrong permutation size");
  std::vector<Amplitude> out(dim());
  for (std::uint64_t x = 0; x < dim(); ++x) {
    std::uint64_t y = 0;
    for (std::int32_t q = 0; q < n_; ++q) {
      if (x & (std::uint64_t{1} << q)) y |= std::uint64_t{1} << perm[q];
    }
    out[y] = amp_[x];
  }
  amp_ = std::move(out);
}

double StateVector::norm() const {
  double s = 0.0;
  for (const auto& a : amp_) s += std::norm(a);
  return std::sqrt(s);
}

double StateVector::overlap(const StateVector& a, const StateVector& b) {
  require(a.n_ == b.n_, "overlap: dimension mismatch");
  Amplitude dot{0.0, 0.0};
  for (std::uint64_t i = 0; i < a.dim(); ++i) {
    dot += std::conj(a.amp_[i]) * b.amp_[i];
  }
  return std::abs(dot);
}

}  // namespace qfto
