// Reference discrete Fourier transform of an amplitude vector. The n-qubit
// QFT acts on amplitudes exactly as out[y] = (1/sqrt(D)) * sum_x in[x] *
// exp(+2*pi*i*x*y/D) with D = 2^n, so an iterative radix-2 FFT gives an
// O(D log D) independent oracle for the simulator tests.
#pragma once

#include <complex>
#include <vector>

namespace qfto {

/// In-place unitary DFT with the +i sign convention above. Size must be a
/// power of two.
void qft_reference(std::vector<std::complex<double>>& amplitudes);

}  // namespace qfto
