#include "sim/unitary.hpp"

#include <cmath>

#include "sim/statevector.hpp"

namespace qfto {

Unitary circuit_unitary(const Circuit& c) {
  require(c.num_qubits() <= 12, "circuit_unitary: matrix would be too large");
  const std::uint64_t dim = std::uint64_t{1} << c.num_qubits();
  Unitary u(dim);
  for (std::uint64_t x = 0; x < dim; ++x) {
    StateVector sv = StateVector::basis(c.num_qubits(), x);
    sv.apply(c);
    u[x] = sv.amplitudes();
  }
  return u;
}

double unitary_distance(const Unitary& a, const Unitary& b) {
  require(a.size() == b.size(), "unitary_distance: dimension mismatch");
  double worst = 0.0;
  for (std::size_t x = 0; x < a.size(); ++x) {
    require(a[x].size() == b[x].size(), "unitary_distance: column mismatch");
    for (std::size_t y = 0; y < a[x].size(); ++y) {
      worst = std::max(worst, std::abs(a[x][y] - b[x][y]));
    }
  }
  return worst;
}

}  // namespace qfto
