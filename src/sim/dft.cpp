#include "sim/dft.hpp"

#include <cmath>

#include "common/types.hpp"

namespace qfto {

void qft_reference(std::vector<std::complex<double>>& a) {
  const std::size_t n = a.size();
  require(n != 0 && (n & (n - 1)) == 0, "qft_reference: size not a power of 2");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  // Cooley-Tukey with the + sign (inverse-DFT convention used by the QFT).
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wl = std::polar(1.0, ang);
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = a[i + k];
        const auto v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (auto& x : a) x *= scale;
}

}  // namespace qfto
