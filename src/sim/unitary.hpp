// Full-unitary extraction for small circuits (matrix tests, n <= ~8).
#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

/// Column-major unitary: U[y][x] would be row y, col x; we store
/// u[x] = circuit applied to |x>, i.e. u[x][y] is amplitude <y|U|x>.
using Unitary = std::vector<std::vector<std::complex<double>>>;

Unitary circuit_unitary(const Circuit& c);

/// Max |a - b| over all entries, after aligning global phase per column is
/// NOT done — the circuits we compare agree exactly, not just per-phase.
double unitary_distance(const Unitary& a, const Unitary& b);

}  // namespace qfto
