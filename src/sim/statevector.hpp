// Dense state-vector simulator — the correctness substrate (the paper ships
// "an open-source simulator to check the correctness of our outcome"; this is
// ours). Qubit i is bit i of the basis index. Amplitude loops are written
// stride-free over contiguous halves so the compiler can vectorize them.
#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

using Amplitude = std::complex<double>;

class StateVector {
 public:
  /// |0...0> on n qubits (n <= 28 guarded; memory is 16 * 2^n bytes).
  explicit StateVector(std::int32_t num_qubits);

  /// Computational basis state |x>.
  static StateVector basis(std::int32_t num_qubits, std::uint64_t x);

  std::int32_t num_qubits() const { return n_; }
  std::uint64_t dim() const { return std::uint64_t{1} << n_; }

  const std::vector<Amplitude>& amplitudes() const { return amp_; }
  std::vector<Amplitude>& amplitudes() { return amp_; }

  void apply(const Gate& g);
  void apply(const Circuit& c);

  /// Applies the permutation q -> perm[q] of qubit labels: amplitude of basis
  /// state x moves to the index whose bit perm[q] equals bit q of x.
  void permute_qubits(const std::vector<std::int32_t>& perm);

  double norm() const;

  /// |<a|b>|, for equivalence-up-to-global-phase checks.
  static double overlap(const StateVector& a, const StateVector& b);

  /// Worker-thread count for the amplitude loops of H / CPHASE / RZ on
  /// registers with >= 2^18 amplitudes (smaller registers stay serial — the
  /// fork/join overhead dominates below that). 1 disables threading.
  static void set_num_threads(std::int32_t threads);
  static std::int32_t num_threads();

 private:
  void apply_h(std::int32_t q);
  void apply_x(std::int32_t q);
  void apply_rz(std::int32_t q, double angle);
  void apply_cphase(std::int32_t a, std::int32_t b, double angle);
  void apply_swap(std::int32_t a, std::int32_t b);
  void apply_cnot(std::int32_t control, std::int32_t target);

  std::int32_t n_ = 0;
  std::vector<Amplitude> amp_;
};

}  // namespace qfto
