// IBM heavy-hex model (§4, Appendix 1). The paper deletes links from the
// heavy-hex lattice to obtain a *simplified coupling graph*: one main line
// plus dangling points hanging off "T junctions". In the evaluated
// configuration there is one dangling qubit per group of five (four qubits on
// the main line, one dangling), i.e. a junction every fourth main-line node.
#pragma once

#include <vector>

#include "arch/coupling_graph.hpp"

namespace qfto {

struct HeavyHexLayout {
  std::int32_t num_qubits = 0;   // N (multiple of 5 in the paper's sweep)
  std::int32_t main_len = 0;     // N1 = number of main-line nodes
  /// Main-line positions that carry a dangling neighbor, ascending.
  std::vector<std::int32_t> junctions;

  std::int32_t num_dangling() const {
    return static_cast<std::int32_t>(junctions.size());
  }
  /// Physical id of main-line position p (0-based from the left end).
  PhysicalQubit main_node(std::int32_t p) const { return p; }
  /// Physical id of the g-th dangling node.
  PhysicalQubit dangling_node(std::int32_t g) const { return main_len + g; }
  /// Index of the junction at main position p, or -1.
  std::int32_t junction_at(std::int32_t p) const;
};

/// Paper configuration: N multiple of 5, groups of five = four main-line
/// qubits + one dangling attached to the last main-line qubit of the group
/// (main positions 3, 7, 11, ...).
HeavyHexLayout heavy_hex_layout(std::int32_t n);

/// General configuration from explicit junction positions on a main line of
/// length `main_len` (used by property tests to stress irregular spacings).
HeavyHexLayout heavy_hex_layout_custom(std::int32_t main_len,
                                       std::vector<std::int32_t> junctions);

CouplingGraph make_heavy_hex(const HeavyHexLayout& lay);

/// The full heavy-hex device (Fig. 4(b)/Fig. 20 left): `rows` lines of
/// `cols` qubits each, joined by bridge qubits every four columns. We place
/// bridges so both row ends carry one (cols must be ≡ 1 mod 4, like IBM's
/// 127-qubit devices with 15-qubit rows), which is what lets the Appendix-1
/// reduction snake turn at row ends.
struct HeavyHexDevice {
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  CouplingGraph graph;
  /// bridge_node(gap, k): the k-th bridge between row `gap` and `gap`+1.
  std::vector<std::vector<PhysicalQubit>> bridges;

  PhysicalQubit row_node(std::int32_t r, std::int32_t c) const {
    return r * cols + c;
  }
};

HeavyHexDevice make_heavy_hex_device(std::int32_t rows, std::int32_t cols);

/// Appendix-1 reduction: delete links so the device becomes one main line
/// with dangling points (Fig. 20 right). The main line snakes through the
/// rows, descending through one end bridge per gap; every other bridge keeps
/// only its upper link and dangles.
struct HeavyHexReduction {
  /// Physical nodes of the main line, in line order.
  std::vector<PhysicalQubit> main_line;
  /// (main-line position of the junction, dangling physical node), sorted by
  /// position.
  std::vector<std::pair<std::int32_t, PhysicalQubit>> dangling;

  /// Equivalent canonical layout (junction positions on the main line).
  HeavyHexLayout canonical() const;
};

HeavyHexReduction simplify_heavy_hex(const HeavyHexDevice& dev);

/// Initial logical placement (Fig. 10): walk the main line left to right
/// assigning ascending logical indices; immediately after a junction node,
/// the next index goes to its dangling neighbor. Returns logical -> physical.
std::vector<PhysicalQubit> heavy_hex_initial_mapping(const HeavyHexLayout& lay);

}  // namespace qfto
