#include "arch/lattice_surgery.hpp"

namespace qfto {

CouplingGraph make_lattice_surgery_full(std::int32_t m) {
  require(m >= 2, "make_lattice_surgery_full: m >= 2");
  const LatticeLayout lay{m};
  CouplingGraph g("lattice-full-" + std::to_string(m) + "x" +
                      std::to_string(m),
                  m * m);
  for (std::int32_t r = 0; r < m; ++r) {
    for (std::int32_t c = 0; c < m; ++c) {
      if (c + 1 < m) {
        g.add_edge(lay.node(r, c), lay.node(r, c + 1), LinkType::kCnotOnly);
      }
      if (r + 1 < m) {
        g.add_edge(lay.node(r, c), lay.node(r + 1, c), LinkType::kCnotOnly);
        if (c + 1 < m) {
          g.add_edge(lay.node(r, c), lay.node(r + 1, c + 1), LinkType::kFast);
        }
        if (c - 1 >= 0) {
          g.add_edge(lay.node(r, c), lay.node(r + 1, c - 1), LinkType::kFast);
        }
      }
    }
  }
  // Axial + both diagonal families = king moves: Chebyshev distance.
  g.set_distance_spec(DistanceSpec::king_grid(m, m));
  return g;
}

CouplingGraph make_lattice_surgery_rotated(std::int32_t m) {
  require(m >= 2, "make_lattice_surgery_rotated: m >= 2");
  const LatticeLayout lay{m};
  CouplingGraph g("lattice-rot-" + std::to_string(m) + "x" + std::to_string(m),
                  m * m);
  for (std::int32_t r = 0; r < m; ++r) {
    for (std::int32_t c = 0; c < m; ++c) {
      // Row-internal links are the fast (diagonal-tile) family.
      if (c + 1 < m) {
        g.add_edge(lay.node(r, c), lay.node(r, c + 1), LinkType::kFast);
      }
      // Between rows only CNOT-only links survive the rotation.
      if (r + 1 < m) {
        g.add_edge(lay.node(r, c), lay.node(r + 1, c), LinkType::kCnotOnly);
      }
    }
  }
  // Axial links only: Manhattan distance.
  g.set_distance_spec(DistanceSpec::grid(m, m));
  return g;
}

}  // namespace qfto
