// Google Sycamore model (§5). The paper views the m×m diagonal grid through
// its unit decomposition: every two consecutive rows form a *unit* whose 2m
// qubits lie on a line under the diagonal couplers (Fig. 12); adjacent units
// are joined by diagonal links between the lower row of one unit and the
// upper row of the next, present exactly when the *line positions* differ by
// one (Fig. 13(b)/24) — in particular there is no link between equal line
// positions, which is what makes the synced travel path non-trivial and
// forces the paper's fix-up for "same column" pairs.
#pragma once

#include "arch/coupling_graph.hpp"

namespace qfto {

struct SycamoreLayout {
  std::int32_t m = 0;  // grid side; the paper evaluates even m

  std::int32_t num_qubits() const { return m * m; }
  std::int32_t num_units() const { return m / 2; }
  /// Qubits per unit; they form a physical line (zigzag through two rows).
  std::int32_t unit_len() const { return 2 * m; }

  /// Physical node id at grid coordinates.
  PhysicalQubit node(std::int32_t row, std::int32_t col) const {
    return row * m + col;
  }

  /// Physical node at line-position `pos` (0..2m-1) of unit `unit`.
  /// Even positions sit on the unit's upper row, odd on the lower row.
  PhysicalQubit unit_pos(std::int32_t unit, std::int32_t pos) const {
    const std::int32_t row = 2 * unit + (pos % 2);
    const std::int32_t col = pos / 2;
    return node(row, col);
  }
};

/// Builds the coupling graph described above. Requires even m >= 2.
CouplingGraph make_sycamore(std::int32_t m);

/// Cross-unit adjacency in *line coordinates*: position `pa` of unit u is
/// linked to position `pb` of unit u+1 iff pa is odd (lower row) and
/// |pa - pb| == 1 (so pb is even, on the upper row of the next unit).
bool sycamore_cross_link(std::int32_t pa, std::int32_t pb);

}  // namespace qfto
