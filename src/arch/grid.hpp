// Rectangular grid with axial (horizontal/vertical) couplers. Used for the
// Appendix-7 2×N / 2D-grid patterns and as a generic baseline topology.
#pragma once

#include "arch/coupling_graph.hpp"

namespace qfto {

/// rows × cols grid, node id = r * cols + c, axial edges only.
CouplingGraph make_grid(std::int32_t rows, std::int32_t cols);

inline PhysicalQubit grid_node(std::int32_t r, std::int32_t c,
                               std::int32_t cols) {
  return r * cols + c;
}

}  // namespace qfto
