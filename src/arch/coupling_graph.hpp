// Hardware coupling graphs. Nodes are physical qubits; edges are the links on
// which two-qubit gates may execute. Lattice surgery additionally tags each
// link with a type, because SWAP latency is heterogeneous there (§2.3).
//
// Layout: neighbor lists (insertion-ordered, for BFS and router candidate
// enumeration) plus a flat CSR — row offsets into one contiguous array of
// (neighbor, link type) entries, sorted per row — in the spirit of
// CryptoMiniSat's flat watch lists. `adjacent` and `link_type` are the
// verifier/scheduler hot path (one query per two-qubit gate): a row-offset
// load and a degree-bounded scan of one cache line, O(max_degree) = O(1) for
// the bounded-degree device graphs this repo targets, no allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "arch/distance_oracle.hpp"
#include "common/types.hpp"

namespace qfto {

enum class LinkType : std::uint8_t {
  kStandard,  // NISQ coupler: every gate costs one cycle
  kFast,      // lattice surgery: diagonal tiles, SWAP depth 2
  kCnotOnly,  // lattice surgery: axial tiles, SWAP = 3 CNOTs = depth 6
};

/// Number of LinkType enumerators (latency tables index on it).
inline constexpr std::size_t kLinkTypeCount = 3;
static_assert(
    static_cast<std::size_t>(LinkType::kCnotOnly) + 1 == kLinkTypeCount,
    "update kLinkTypeCount when extending LinkType");

class CouplingGraph {
 public:
  CouplingGraph() = default;
  CouplingGraph(std::string name, std::int32_t num_qubits);

  // The lazy CSR cache carries a mutex/flag guard, so the copy/move family
  // is user-defined: graph data is copied, guards are fresh per object and
  // the distance oracle is rebuilt lazily (it holds a back-pointer to its
  // owning graph, so it must never be shared across graph objects).
  CouplingGraph(const CouplingGraph& other);
  CouplingGraph& operator=(const CouplingGraph& other);
  CouplingGraph(CouplingGraph&& other) noexcept;
  CouplingGraph& operator=(CouplingGraph&& other) noexcept;
  ~CouplingGraph() = default;

  const std::string& name() const { return name_; }
  std::int32_t num_qubits() const { return num_qubits_; }

  /// Adds an undirected edge; duplicate edges are rejected. Not safe against
  /// concurrent queries — build the graph fully before sharing it.
  void add_edge(PhysicalQubit a, PhysicalQubit b,
                LinkType type = LinkType::kStandard);

  /// Degree-bounded CSR row scan.
  bool adjacent(PhysicalQubit a, PhysicalQubit b) const {
    if (a < 0 || b < 0 || a >= num_qubits_ || b >= num_qubits_ || a == b) {
      return false;
    }
    ensure_csr();
    const std::int32_t end = csr_offset_[a + 1];
    for (std::int32_t i = csr_offset_[a]; i < end; ++i) {
      if (csr_[i].nbr == b) return true;
    }
    return false;
  }

  /// Link type of edge (a,b); nullopt when not adjacent. The type sits
  /// inline in the CSR entry, so the same row scan answers both questions.
  std::optional<LinkType> link_type(PhysicalQubit a, PhysicalQubit b) const {
    if (a < 0 || b < 0 || a >= num_qubits_ || b >= num_qubits_ || a == b) {
      return std::nullopt;
    }
    ensure_csr();
    const std::int32_t end = csr_offset_[a + 1];
    for (std::int32_t i = csr_offset_[a]; i < end; ++i) {
      if (csr_[i].nbr == b) return csr_[i].type;
    }
    return std::nullopt;
  }

  const std::vector<PhysicalQubit>& neighbors(PhysicalQubit q) const;

  std::int32_t degree(PhysicalQubit q) const {
    return static_cast<std::int32_t>(adj_[q].size());
  }

  std::int64_t num_edges() const { return num_edges_; }

  /// Attaches the closed-form distance hint for this topology. Builders call
  /// it once construction is complete; add_edge resets the spec to kGeneric
  /// (and drops any built oracle), so a mutated graph silently degrades to
  /// exact BFS rows rather than serving stale closed forms.
  void set_distance_spec(DistanceSpec spec);

  const DistanceSpec& distance_spec() const { return spec_; }

  /// On-demand distance oracle — the replacement for the retired O(n²)
  /// distance_matrix(). Built on first use under a double-checked guard, so
  /// concurrent readers (e.g. map_qft_batch workers sharing one target
  /// graph) are safe; the oracle's own row cache is internally synchronized.
  const DistanceOracle& distances() const;

  /// Hop distance; -1 when unreachable. Convenience over distances() —
  /// routers that query in bulk should pin oracle rows instead.
  std::int32_t distance(PhysicalQubit a, PhysicalQubit b) const;

  /// True if the graph is connected (needed by every mapper).
  bool connected() const;

 private:
  struct CsrEntry {
    PhysicalQubit nbr;
    LinkType type;
  };

  /// Finalizes the flat CSR from the build-time rows on first query after a
  /// mutation; amortized so add_edge stays O(degree) and graph construction
  /// stays linear in edges.
  void ensure_csr() const {
    if (!csr_ready_.load(std::memory_order_acquire)) build_csr();
  }
  void build_csr() const;
  void copy_from(const CouplingGraph& other);

  std::string name_;
  std::int32_t num_qubits_ = 0;
  std::int64_t num_edges_ = 0;
  std::vector<std::vector<PhysicalQubit>> adj_;
  // Build-time adjacency with inline link types; appended by add_edge.
  std::vector<std::vector<CsrEntry>> rows_;
  // Flat CSR finalized from rows_ (sorted per row): row q is
  // csr_[csr_offset_[q] .. csr_offset_[q+1]). Lazily built under the same
  // double-checked guard pattern as the distance cache.
  mutable std::vector<std::int32_t> csr_offset_;  // num_qubits + 1
  mutable std::vector<CsrEntry> csr_;             // 2 * num_edges
  mutable std::atomic<bool> csr_ready_{false};
  mutable std::mutex csr_mutex_;

  // Closed-form hint set by the topology builders; kGeneric by default and
  // after any mutation.
  DistanceSpec spec_;
  // Lazily built oracle, published with release/acquire so that first use
  // from a thread pool is race-free. Never copied or moved between graph
  // objects (it back-references this graph); copy/move reset it.
  mutable std::shared_ptr<const DistanceOracle> oracle_;
  mutable std::atomic<bool> oracle_ready_{false};
  mutable std::mutex oracle_mutex_;
};

}  // namespace qfto
