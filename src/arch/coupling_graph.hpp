// Hardware coupling graphs. Nodes are physical qubits; edges are the links on
// which two-qubit gates may execute. Lattice surgery additionally tags each
// link with a type, because SWAP latency is heterogeneous there (§2.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace qfto {

enum class LinkType : std::uint8_t {
  kStandard,  // NISQ coupler: every gate costs one cycle
  kFast,      // lattice surgery: diagonal tiles, SWAP depth 2
  kCnotOnly,  // lattice surgery: axial tiles, SWAP = 3 CNOTs = depth 6
};

class CouplingGraph {
 public:
  CouplingGraph() = default;
  CouplingGraph(std::string name, std::int32_t num_qubits);

  const std::string& name() const { return name_; }
  std::int32_t num_qubits() const { return num_qubits_; }

  /// Adds an undirected edge; duplicate edges are rejected.
  void add_edge(PhysicalQubit a, PhysicalQubit b,
                LinkType type = LinkType::kStandard);

  bool adjacent(PhysicalQubit a, PhysicalQubit b) const;

  /// Link type of edge (a,b); nullopt when not adjacent.
  std::optional<LinkType> link_type(PhysicalQubit a, PhysicalQubit b) const;

  const std::vector<PhysicalQubit>& neighbors(PhysicalQubit q) const;

  std::int64_t num_edges() const { return num_edges_; }

  /// All-pairs hop distances (unweighted BFS). Computed on first use and
  /// cached; SABRE's heuristic consumes this.
  const std::vector<std::vector<std::int32_t>>& distance_matrix() const;

  std::int32_t distance(PhysicalQubit a, PhysicalQubit b) const;

  /// True if the graph is connected (needed by every mapper).
  bool connected() const;

 private:
  std::string name_;
  std::int32_t num_qubits_ = 0;
  std::int64_t num_edges_ = 0;
  std::vector<std::vector<PhysicalQubit>> adj_;
  // Edge types keyed by packed (min,max) pair.
  std::vector<std::pair<std::int64_t, LinkType>> edge_types_;  // sorted
  mutable std::vector<std::vector<std::int32_t>> dist_;        // lazy

  static std::int64_t pack(PhysicalQubit a, PhysicalQubit b);
};

}  // namespace qfto
