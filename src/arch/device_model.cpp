#include "arch/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "arch/grid.hpp"
#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/line.hpp"
#include "arch/sycamore.hpp"
#include "common/prng.hpp"

namespace qfto {

namespace {

// ------------------------------------------------------- positioned parser --
// Device files are nested JSON (arrays of edge objects), which the serve
// protocol's flat parser cannot express — so the loader carries its own
// small recursive-descent parser. It parses only the shapes the schema
// needs (objects, arrays, strings, numbers), tracks the current line, and
// positions every rejection the way from_qasm does: callers see
// "device json line N: <what>" and can print it verbatim.

class DeviceJsonParser {
 public:
  explicit DeviceJsonParser(std::string_view text, std::string where)
      : p_(text.data()), end_(text.data() + text.size()),
        where_(std::move(where)) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(where_ + " line " + std::to_string(line_) +
                                ": " + what);
  }

  void skip_ws() {
    while (p_ < end_) {
      const char c = *p_;
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++p_;
    }
  }

  bool at_end() {
    skip_ws();
    return p_ >= end_;
  }

  char peek() {
    skip_ws();
    if (p_ >= end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c, const char* what) {
    if (peek() != c) {
      fail(std::string("expected ") + what + ", got '" + *p_ + "'");
    }
    ++p_;
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (p_ < end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\n') fail("unterminated string");
      if (c == '\\') {
        if (p_ >= end_) fail("dangling escape");
        const char esc = *p_++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: fail("unsupported string escape");
        }
      }
      out += c;
    }
    if (p_ >= end_) fail("unterminated string");
    ++p_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    char buf[64];
    std::size_t len = 0;
    while (p_ + len < end_) {
      const char c = p_[len];
      const bool number_char = (c >= '0' && c <= '9') || c == '+' ||
                               c == '-' || c == '.' || c == 'e' || c == 'E';
      if (!number_char) break;
      if (len + 1 >= sizeof(buf)) fail("number token too long");
      buf[len] = c;
      ++len;
    }
    if (len == 0) fail("expected a number");
    buf[len] = '\0';
    char* num_end = nullptr;
    const double v = std::strtod(buf, &num_end);
    if (num_end != buf + len) fail("malformed number");
    if (!std::isfinite(v)) fail("non-finite number");
    p_ += len;
    return v;
  }

  /// Object walker: calls `on_key(key)` for each member; the callback must
  /// consume the value. Enforces the {"k": v, ...} punctuation.
  template <typename OnKey>
  void parse_object(OnKey&& on_key) {
    expect('{', "'{'");
    if (peek() == '}') {
      ++p_;
      return;
    }
    for (;;) {
      const std::string key = [&] {
        skip_ws();
        return parse_string();
      }();
      expect(':', "':'");
      on_key(key);
      const char c = peek();
      if (c == ',') {
        ++p_;
        continue;
      }
      if (c == '}') {
        ++p_;
        return;
      }
      fail("expected ',' or '}'");
    }
  }

  /// Array walker: calls `on_element()` per element (which must consume it).
  template <typename OnElement>
  void parse_array(OnElement&& on_element) {
    expect('[', "'['");
    if (peek() == ']') {
      ++p_;
      return;
    }
    for (;;) {
      on_element();
      const char c = peek();
      if (c == ',') {
        ++p_;
        continue;
      }
      if (c == ']') {
        ++p_;
        return;
      }
      fail("expected ',' or ']'");
    }
  }

  std::int32_t line() const { return line_; }

 private:
  const char* p_;
  const char* end_;
  std::string where_;
  std::int32_t line_ = 1;
};

/// Scalar-or-array field: broadcasts a scalar to all n slots, or requires
/// exactly n array elements. `check` validates each value.
template <typename Check>
void parse_per_qubit(DeviceJsonParser& p, std::vector<double>& out,
                     std::size_t n, const char* key, Check&& check) {
  if (p.peek() == '[') {
    std::size_t i = 0;
    p.parse_array([&] {
      const double v = p.parse_number();
      check(v);
      if (i >= n) p.fail(std::string("\"") + key + "\" array longer than n");
      out[i++] = v;
    });
    if (i != n) {
      p.fail(std::string("\"") + key + "\" array has " + std::to_string(i) +
             " entries, expected " + std::to_string(n));
    }
  } else {
    const double v = p.parse_number();
    check(v);
    std::fill(out.begin(), out.end(), v);
  }
}

Cycle as_cycle(DeviceJsonParser& p, double v, const char* key) {
  if (v < 1.0 || v > 1e6 || v != std::floor(v)) {
    p.fail(std::string("\"") + key +
           "\" must be an integral cycle count in [1, 1e6]");
  }
  return static_cast<Cycle>(v);
}

}  // namespace

DeviceModel DeviceModel::from_json(std::string_view text) {
  return [&] {
    DeviceJsonParser p(text, "device json");
    DeviceModel dev;
    bool saw_qubits = false, saw_edges = false;
    double error_1q = 1e-4, coherence = 2e4;
    std::vector<double> error_1q_arr, coherence_arr;
    bool error_1q_is_array = false, coherence_is_array = false;

    p.parse_object([&](const std::string& key) {
      if (key == "name") {
        dev.name_ = p.parse_string();
      } else if (key == "qubits") {
        const double v = p.parse_number();
        if (v < 1.0 || v > 16'777'216.0 || v != std::floor(v)) {
          p.fail("\"qubits\" must be an integer in [1, 16777216]");
        }
        dev.num_qubits_ = static_cast<std::int32_t>(v);
        saw_qubits = true;
      } else if (key == "latency_1q") {
        dev.latency_1q_ = as_cycle(p, p.parse_number(), "latency_1q");
      } else if (key == "error_1q") {
        // Deferred: the per-qubit array length check needs "qubits", which
        // may appear later in the object.
        error_1q_is_array = p.peek() == '[';
        if (error_1q_is_array) {
          p.parse_array([&] { error_1q_arr.push_back(p.parse_number()); });
        } else {
          error_1q = p.parse_number();
        }
      } else if (key == "coherence_cycles") {
        coherence_is_array = p.peek() == '[';
        if (coherence_is_array) {
          p.parse_array([&] { coherence_arr.push_back(p.parse_number()); });
        } else {
          coherence = p.parse_number();
        }
      } else if (key == "edges") {
        saw_edges = true;
        p.parse_array([&] {
          DeviceEdge e;
          bool saw_a = false, saw_b = false, saw_swap = false;
          p.parse_object([&](const std::string& ek) {
            if (ek == "a" || ek == "b") {
              const double v = p.parse_number();
              if (v < 0.0 || v > 16'777'215.0 || v != std::floor(v)) {
                p.fail("edge \"" + ek + "\" must be a qubit index");
              }
              (ek == "a" ? e.a : e.b) = static_cast<PhysicalQubit>(v);
              (ek == "a" ? saw_a : saw_b) = true;
            } else if (ek == "latency") {
              e.latency = as_cycle(p, p.parse_number(), "latency");
            } else if (ek == "swap_latency") {
              e.swap_latency = as_cycle(p, p.parse_number(), "swap_latency");
              saw_swap = true;
            } else if (ek == "error") {
              e.error_2q = p.parse_number();
              if (!(e.error_2q >= 0.0 && e.error_2q < 1.0)) {
                p.fail("edge \"error\" must be in [0, 1)");
              }
            } else {
              p.fail("unknown edge field \"" + ek + "\"");
            }
          });
          if (!saw_a || !saw_b) p.fail("edge needs \"a\" and \"b\"");
          if (!saw_swap) e.swap_latency = 3 * e.latency;  // SWAP = 3 CNOTs
          if (e.a == e.b) {
            p.fail("edge (" + std::to_string(e.a) + ", " + std::to_string(e.b) +
                   ") is a self-loop");
          }
          // Checked here, not just in finalize(), so the rejection carries
          // the offending edge's line.
          for (const DeviceEdge& prev : dev.edges_) {
            if (edge_index_key(prev.a, prev.b) == edge_index_key(e.a, e.b)) {
              p.fail("duplicate edge (" + std::to_string(e.a) + ", " +
                     std::to_string(e.b) + ")");
            }
          }
          dev.edges_.push_back(e);
        });
      } else {
        // Typos fail loudly instead of silently calibrating with defaults —
        // the serve protocol's unknown-field discipline.
        p.fail("unknown field \"" + key + "\"");
      }
    });
    if (!p.at_end()) p.fail("trailing content after device object");
    if (!saw_qubits) p.fail("missing \"qubits\"");
    if (!saw_edges || dev.edges_.empty()) {
      p.fail("missing or empty \"edges\"");
    }

    const auto n = static_cast<std::size_t>(dev.num_qubits_);
    const auto check_rate = [&](double v) {
      if (!(v >= 0.0 && v < 1.0)) p.fail("\"error_1q\" must be in [0, 1)");
    };
    const auto check_coherence = [&](double v) {
      if (!(v > 0.0)) p.fail("\"coherence_cycles\" must be > 0");
    };
    dev.qubits_.resize(n);
    if (error_1q_is_array) {
      if (error_1q_arr.size() != n) {
        p.fail("\"error_1q\" array has " +
               std::to_string(error_1q_arr.size()) + " entries, expected " +
               std::to_string(n));
      }
      for (double v : error_1q_arr) check_rate(v);
      for (std::size_t i = 0; i < n; ++i) dev.qubits_[i].error_1q = error_1q_arr[i];
    } else {
      check_rate(error_1q);
      for (auto& q : dev.qubits_) q.error_1q = error_1q;
    }
    if (coherence_is_array) {
      if (coherence_arr.size() != n) {
        p.fail("\"coherence_cycles\" array has " +
               std::to_string(coherence_arr.size()) + " entries, expected " +
               std::to_string(n));
      }
      for (double v : coherence_arr) check_coherence(v);
      for (std::size_t i = 0; i < n; ++i) {
        dev.qubits_[i].coherence_cycles = coherence_arr[i];
      }
    } else {
      check_coherence(coherence);
      for (auto& q : dev.qubits_) q.coherence_cycles = coherence;
    }

    dev.finalize("device json");
    return dev;
  }();
}

DeviceModel DeviceModel::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("device file " + path + ": cannot open");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::invalid_argument& e) {
    // Re-throw with the path in front so a multi-device operator log stays
    // attributable; the positioned line stays intact.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void DeviceModel::finalize(const std::string& where) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument(where + ": " + what);
  };
  require(num_qubits_ >= 1, where + ": device has no qubits");
  if (qubits_.size() != static_cast<std::size_t>(num_qubits_)) {
    qubits_.resize(static_cast<std::size_t>(num_qubits_));
  }
  edge_index_.clear();
  edge_index_.reserve(edges_.size());
  classes_.clear();
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const DeviceEdge& e = edges_[i];
    if (e.a == e.b) {
      fail("edge (" + std::to_string(e.a) + ", " + std::to_string(e.b) +
           ") is a self-loop");
    }
    if (e.a < 0 || e.b < 0 || e.a >= num_qubits_ || e.b >= num_qubits_) {
      fail("edge (" + std::to_string(e.a) + ", " + std::to_string(e.b) +
           ") references a qubit past n=" + std::to_string(num_qubits_));
    }
    if (!edge_index_.emplace(edge_index_key(e.a, e.b), i).second) {
      fail("duplicate edge (" + std::to_string(e.a) + ", " +
           std::to_string(e.b) + ")");
    }
    const std::pair<Cycle, Cycle> cls{e.latency, e.swap_latency};
    if (std::find(classes_.begin(), classes_.end(), cls) == classes_.end()) {
      classes_.push_back(cls);
    }
  }
  if (classes_.size() > kLinkTypeCount) {
    fail("device carries " + std::to_string(classes_.size()) +
         " distinct (latency, swap_latency) classes; at most " +
         std::to_string(kLinkTypeCount) + " are supported");
  }
  std::sort(classes_.begin(), classes_.end());
}

double DeviceModel::edge_error(PhysicalQubit a, PhysicalQubit b,
                               double fallback) const {
  const auto it = edge_index_.find(edge_index_key(a, b));
  return it == edge_index_.end() ? fallback : edges_[it->second].error_2q;
}

std::uint64_t DeviceModel::fingerprint() const {
  // splitmix64-chained content hash (the Circuit::fingerprint discipline):
  // every calibration value feeds the chain, so editing one error rate on
  // one edge yields a different device identity — and a different cache key.
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^
                    static_cast<std::uint64_t>(num_qubits_);
  const auto mix = [&h](std::uint64_t v) {
    h = SplitMix64(h ^ v).next();
  };
  const auto mix_double = [&](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(latency_1q_));
  for (const DeviceQubit& q : qubits_) {
    mix_double(q.error_1q);
    mix_double(q.coherence_cycles);
  }
  for (const DeviceEdge& e : edges_) {
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.a)) << 32) |
        static_cast<std::uint32_t>(e.b));
    mix(static_cast<std::uint64_t>(e.latency));
    mix(static_cast<std::uint64_t>(e.swap_latency));
    mix_double(e.error_2q);
  }
  return h;
}

CouplingGraph DeviceModel::build_graph() const {
  CouplingGraph g(name_.empty() ? "device" : name_, num_qubits_);
  for (const DeviceEdge& e : edges_) {
    const auto cls = std::find(classes_.begin(), classes_.end(),
                               std::pair<Cycle, Cycle>{e.latency,
                                                       e.swap_latency}) -
                     classes_.begin();
    g.add_edge(e.a, e.b, static_cast<LinkType>(cls));
  }
  // No closed-form spec: irregular device graphs resolve distances through
  // the oracle's LRU-budgeted BFS rows, which is exactly the generic path.
  return g;
}

LatencyModel DeviceModel::resolve_latency(const CouplingGraph* g) const {
  require(!classes_.empty(), "DeviceModel: finalize() not run (no edges)");
  LatencyModel m;
  m.set_cost(GateKind::kH, latency_1q_);
  m.set_cost(GateKind::kX, latency_1q_);
  m.set_cost(GateKind::kRz, latency_1q_);
  if (classes_.size() == 1) {
    // Uniform device: no cost varies by link, so the hot path keeps its
    // probe-free table load (and no graph binding is needed).
    m.set_cost(GateKind::kCnot, classes_[0].first);
    m.set_cost(GateKind::kCPhase, classes_[0].first);
    m.set_cost(GateKind::kSwap, classes_[0].second);
    return m;
  }
  require(g != nullptr,
          "DeviceModel::latency_model(): device has link-dependent costs; "
          "pass the graph");
  m.bind(*g);
  // Non-edge gates (lenient baseline evaluation) charge the worst class, the
  // same pessimistic convention LatencyModel::lattice uses: first fill every
  // link slot with the last (slowest) class, then overwrite the real ones.
  m.set_cost(GateKind::kCnot, classes_.back().first);
  m.set_cost(GateKind::kCPhase, classes_.back().first);
  m.set_cost(GateKind::kSwap, classes_.back().second);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const auto link = static_cast<LinkType>(c);
    m.set_cost(GateKind::kCnot, link, classes_[c].first);
    m.set_cost(GateKind::kCPhase, link, classes_[c].first);
    m.set_cost(GateKind::kSwap, link, classes_[c].second);
  }
  return m;
}

LatencyModel DeviceModel::latency_model(const CouplingGraph& g) const {
  return resolve_latency(&g);
}

LatencyModel DeviceModel::latency_model() const {
  return resolve_latency(nullptr);
}

double DeviceModel::mean_error_1q() const {
  double sum = 0.0;
  for (const DeviceQubit& q : qubits_) sum += q.error_1q;
  return qubits_.empty() ? 0.0 : sum / static_cast<double>(qubits_.size());
}

double DeviceModel::mean_error_2q() const {
  double sum = 0.0;
  for (const DeviceEdge& e : edges_) sum += e.error_2q;
  return edges_.empty() ? 0.0 : sum / static_cast<double>(edges_.size());
}

double DeviceModel::mean_coherence_cycles() const {
  double sum = 0.0;
  for (const DeviceQubit& q : qubits_) sum += q.coherence_cycles;
  return qubits_.empty() ? 2e4 : sum / static_cast<double>(qubits_.size());
}

// ----------------------------------------------------------- builtin specs --

DeviceModel DeviceModel::from_graph(std::string name, const CouplingGraph& g,
                                    const Cycle latency[kLinkTypeCount],
                                    const Cycle swap_latency[kLinkTypeCount]) {
  DeviceModel dev;
  dev.name_ = std::move(name);
  dev.num_qubits_ = g.num_qubits();
  dev.qubits_.resize(static_cast<std::size_t>(g.num_qubits()));
  for (std::int32_t a = 0; a < g.num_qubits(); ++a) {
    for (const PhysicalQubit b : g.neighbors(a)) {
      if (b <= a) continue;  // undirected: take each edge once
      DeviceEdge e;
      e.a = a;
      e.b = b;
      const auto type = g.link_type(a, b).value_or(LinkType::kStandard);
      e.latency = latency[static_cast<std::size_t>(type)];
      e.swap_latency = swap_latency[static_cast<std::size_t>(type)];
      dev.edges_.push_back(e);
    }
  }
  dev.finalize("DeviceModel::from_graph(" + dev.name_ + ")");
  return dev;
}

namespace {

/// Smallest m >= lo with m*m >= n (the engines' snapping rule).
std::int32_t grid_side_for(std::int32_t n, std::int32_t lo) {
  std::int32_t m = lo;
  while (static_cast<std::int64_t>(m) * m < n) ++m;
  return m;
}

DeviceModel uniform_spec(std::string name, const CouplingGraph& g) {
  const Cycle lat[kLinkTypeCount] = {1, 1, 1};
  const Cycle swap[kLinkTypeCount] = {3, 3, 3};
  return DeviceModel::from_graph(std::move(name), g, lat, swap);
}

}  // namespace

DeviceModel DeviceModel::builtin(const std::string& topology,
                                 std::int32_t n) {
  require(n >= 1, "DeviceModel::builtin: n >= 1");
  require(n <= 16'777'216, "DeviceModel::builtin: n too large");
  if (topology == "line" || topology == "lnn") {
    return uniform_spec("line-" + std::to_string(n), make_line(n));
  }
  if (topology == "grid") {
    const std::int32_t m = grid_side_for(n, 2);
    return uniform_spec("grid-" + std::to_string(m) + "x" + std::to_string(m),
                        make_grid(m, m));
  }
  if (topology == "heavy_hex") {
    const std::int32_t native = n <= 5 ? 5 : (n + 4) / 5 * 5;
    return uniform_spec("heavy-hex-" + std::to_string(native),
                        make_heavy_hex(heavy_hex_layout(native)));
  }
  if (topology == "sycamore") {
    std::int32_t m = grid_side_for(n, 2);
    if (m % 2 != 0) ++m;
    return uniform_spec("sycamore-" + std::to_string(m), make_sycamore(m));
  }
  if (topology == "lattice") {
    // The §2.3 weighted calibration: CNOT/CPHASE cost 2 on any link, SWAP
    // costs 2 on fast (diagonal-tile) links and 3 CNOTs = 6 on axial ones.
    const std::int32_t m = grid_side_for(n, 2);
    const Cycle lat[kLinkTypeCount] = {kLsCnotDepth, kLsCnotDepth,
                                       kLsCnotDepth};
    const Cycle swap[kLinkTypeCount] = {kLsSlowSwapDepth, kLsFastSwapDepth,
                                        kLsSlowSwapDepth};
    return from_graph("lattice-" + std::to_string(m),
                      make_lattice_surgery_rotated(m), lat, swap);
  }
  std::string known;
  for (const std::string& name : builtin_names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  throw std::invalid_argument("DeviceModel::builtin: unknown topology '" +
                              topology + "' (known: " + known + ")");
}

std::vector<std::string> DeviceModel::builtin_names() {
  return {"line", "grid", "heavy_hex", "sycamore", "lattice"};
}

const DeviceModel& DeviceModel::nisq_spec() {
  // The smallest device exhibiting the default NISQ calibration: one
  // uniform 1-cycle class, default error rates. nisq() resolves its cycle
  // table from here instead of aliasing unit() — and the spec is
  // deliberately unit-equivalent (SWAP included: the idealized NISQ
  // abstraction charges one cycle per gate, unlike a generic device's
  // 3-CNOT SWAP default), which LatencyModel.NisqUniform pins.
  static const DeviceModel spec = [] {
    const Cycle lat[kLinkTypeCount] = {1, 1, 1};
    const Cycle swap[kLinkTypeCount] = {1, 1, 1};
    return from_graph("nisq-default", make_line(2), lat, swap);
  }();
  return spec;
}

}  // namespace qfto
