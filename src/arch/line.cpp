#include "arch/line.hpp"

namespace qfto {

CouplingGraph make_line(std::int32_t n) {
  CouplingGraph g("line-" + std::to_string(n), n);
  for (std::int32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.set_distance_spec(DistanceSpec::line());
  return g;
}

}  // namespace qfto
