// Per-gate latency models (§2.3). NISQ backends count one cycle per gate.
// Lattice surgery is heterogeneous: a CNOT (or CPHASE, realized at the same
// cost) takes 2 cycles on any link; a SWAP takes 2 cycles on a fast
// (diagonal-tile) link but 3 CNOTs = 6 cycles on a CNOT-only (axial) link.
// Single-qubit gates take one cycle.
#pragma once

#include "arch/coupling_graph.hpp"
#include "circuit/scheduler.hpp"

namespace qfto {

/// Every gate costs one cycle — the paper's NISQ "step" count.
LatencyFn nisq_latency();

/// Lattice-surgery weighted latency. The returned callable holds a reference
/// to `g`; the graph must outlive it. Gates on non-edges (never produced by
/// our mappers; possible for baselines evaluated leniently) are charged the
/// slow-link cost.
LatencyFn lattice_latency(const CouplingGraph& g);

/// Latency constants, exposed for tests and documentation.
inline constexpr Cycle kLsCnotDepth = 2;
inline constexpr Cycle kLsCphaseDepth = 2;
inline constexpr Cycle kLsFastSwapDepth = 2;
inline constexpr Cycle kLsSlowSwapDepth = 6;

}  // namespace qfto
