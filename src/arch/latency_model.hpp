// Per-gate latency models (§2.3). NISQ backends count one cycle per gate.
// Lattice surgery is heterogeneous: a CNOT (or CPHASE, realized at the same
// cost) takes 2 cycles on any link; a SWAP takes 2 cycles on a fast
// (diagonal-tile) link but 3 CNOTs = 6 cycles on a CNOT-only (axial) link.
// Single-qubit gates take one cycle.
//
// LatencyModel is the concrete form the scheduler/verifier hot path consumes:
// a (gate kind × link type) cycle table resolved once per graph. Evaluating a
// gate is a table load — plus one O(1) link_type probe only for kinds whose
// cost actually varies by link — with no std::function indirection. The
// LatencyFn free functions below remain as thin adapters for existing code.
#pragma once

#include "arch/coupling_graph.hpp"
#include "circuit/scheduler.hpp"

namespace qfto {

/// Latency constants, exposed for tests and documentation.
inline constexpr Cycle kLsCnotDepth = 2;
inline constexpr Cycle kLsCphaseDepth = 2;
inline constexpr Cycle kLsFastSwapDepth = 2;
inline constexpr Cycle kLsSlowSwapDepth = 6;

class LatencyModel {
 public:
  /// Unit model: every gate takes one cycle.
  LatencyModel() {
    for (std::size_t k = 0; k < kGateKindCount; ++k) {
      for (std::size_t l = 0; l < kLinkTypeCount; ++l) table_[k][l] = 1;
    }
  }

  /// Every gate costs one cycle — the paper's NISQ "step" count.
  static LatencyModel unit() { return LatencyModel(); }

  /// The NISQ model resolved from DeviceModel::nisq_spec()'s calibration
  /// table — no longer a hardcoded alias of unit(), though the default spec
  /// is deliberately unit-equivalent (pinned by a regression test).
  static LatencyModel nisq();

  /// Lattice-surgery weighted latency resolved against `g`'s link types. The
  /// model holds a pointer to `g`; the graph must outlive it. Gates on
  /// non-edges (never produced by our mappers; possible for baselines
  /// evaluated leniently) are charged the slow-link cost.
  static LatencyModel lattice(const CouplingGraph& g);

  /// Binds the graph used to resolve link-dependent costs (must outlive the
  /// model). Required before any link-specific set_cost.
  LatencyModel& bind(const CouplingGraph& g) {
    graph_ = &g;
    return *this;
  }

  /// Sets the cost of `kind` uniformly across link types.
  LatencyModel& set_cost(GateKind kind, Cycle cycles) {
    const auto k = static_cast<std::size_t>(kind);
    for (std::size_t l = 0; l < kLinkTypeCount; ++l) table_[k][l] = cycles;
    varies_[k] = false;
    return *this;
  }

  /// Sets a link-dependent cost; the kind now pays one link_type probe per
  /// gate. Requires a bound graph.
  LatencyModel& set_cost(GateKind kind, LinkType link, Cycle cycles) {
    require(graph_ != nullptr,
            "LatencyModel::set_cost: bind a graph before link-typed costs");
    table_[static_cast<std::size_t>(kind)][static_cast<std::size_t>(link)] =
        cycles;
    varies_[static_cast<std::size_t>(kind)] = true;
    return *this;
  }

  Cycle cycles(const Gate& gate) const {
    const auto k = static_cast<std::size_t>(gate.kind);
    if (!varies_[k]) return table_[k][0];
    const auto link = graph_->link_type(gate.q0, gate.q1);
    const auto l = link ? static_cast<std::size_t>(*link)
                        : static_cast<std::size_t>(LinkType::kCnotOnly);
    return table_[k][l];
  }

  /// Table lookup when the caller already resolved the gate's link type —
  /// the incremental checker fuses its adjacency probe with the link fetch,
  /// so charging latency costs no second graph query.
  Cycle cycles_on_link(GateKind kind, LinkType link) const {
    return table_[static_cast<std::size_t>(kind)]
                 [static_cast<std::size_t>(link)];
  }

  Cycle operator()(const Gate& gate) const { return cycles(gate); }

 private:
  Cycle table_[kGateKindCount][kLinkTypeCount];
  bool varies_[kGateKindCount] = {};
  const CouplingGraph* graph_ = nullptr;
};

/// Devirtualized scheduling: the model inlines into the ASAP core.
inline Schedule schedule_asap(const Circuit& c, const LatencyModel& model) {
  return schedule_asap_with(c,
                            [&model](const Gate& g) { return model.cycles(g); });
}

inline Cycle circuit_depth(const Circuit& c, const LatencyModel& model) {
  return schedule_asap(c, model).depth;
}

/// Every gate costs one cycle — LatencyFn adapter over LatencyModel::nisq().
LatencyFn nisq_latency();

/// Lattice-surgery weighted latency as a LatencyFn. The returned callable
/// holds a reference to `g`; the graph must outlive it.
LatencyFn lattice_latency(const CouplingGraph& g);

}  // namespace qfto
