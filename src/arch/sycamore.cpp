#include "arch/sycamore.hpp"

namespace qfto {

CouplingGraph make_sycamore(std::int32_t m) {
  require(m >= 2 && m % 2 == 0, "make_sycamore: m must be even and >= 2");
  const SycamoreLayout lay{m};
  CouplingGraph g("sycamore-" + std::to_string(m) + "x" + std::to_string(m),
                  m * m);
  for (std::int32_t r = 0; r + 1 < m; ++r) {
    const bool intra_unit = (r % 2 == 0);
    for (std::int32_t c = 0; c < m; ++c) {
      if (intra_unit) {
        // Upper row r to lower row r+1 inside one unit: same column plus the
        // diagonal that closes the zigzag line (lower c to upper c+1).
        g.add_edge(lay.node(r, c), lay.node(r + 1, c));
        if (c + 1 < m) g.add_edge(lay.node(r + 1, c), lay.node(r, c + 1));
      } else {
        // Lower row of unit u (line positions 2c+1) to upper row of unit u+1
        // (line positions 2c'): linked iff the *line* positions differ by
        // exactly one (§5 / Fig. 13(b)), i.e. c' = c or c' = c+1. There is
        // never a link between equal line positions (they have equal parity).
        g.add_edge(lay.node(r, c), lay.node(r + 1, c));
        if (c + 1 < m) g.add_edge(lay.node(r, c), lay.node(r + 1, c + 1));
      }
    }
  }
  return g;
}

bool sycamore_cross_link(std::int32_t pa, std::int32_t pb) {
  // pa in unit u's line coordinates (odd = lower row), pb in unit u+1's
  // (even = upper row): linked iff the line positions differ by one.
  if (pa % 2 == 0 || pb % 2 != 0) return false;
  return pb == pa - 1 || pb == pa + 1;
}

}  // namespace qfto
