#include "arch/heavy_hex.hpp"

#include <algorithm>

namespace qfto {

std::int32_t HeavyHexLayout::junction_at(std::int32_t p) const {
  auto it = std::lower_bound(junctions.begin(), junctions.end(), p);
  if (it == junctions.end() || *it != p) return -1;
  return static_cast<std::int32_t>(it - junctions.begin());
}

HeavyHexLayout heavy_hex_layout(std::int32_t n) {
  require(n >= 5 && n % 5 == 0,
          "heavy_hex_layout: paper configuration needs N multiple of 5");
  HeavyHexLayout lay;
  lay.num_qubits = n;
  lay.main_len = 4 * n / 5;
  for (std::int32_t p = 3; p < lay.main_len; p += 4) lay.junctions.push_back(p);
  return lay;
}

HeavyHexLayout heavy_hex_layout_custom(std::int32_t main_len,
                                       std::vector<std::int32_t> junctions) {
  std::sort(junctions.begin(), junctions.end());
  require(std::unique(junctions.begin(), junctions.end()) == junctions.end(),
          "heavy_hex_layout_custom: duplicate junction");
  for (auto p : junctions) {
    require(p >= 0 && p < main_len,
            "heavy_hex_layout_custom: junction off the main line");
  }
  HeavyHexLayout lay;
  lay.main_len = main_len;
  lay.junctions = std::move(junctions);
  lay.num_qubits = main_len + lay.num_dangling();
  return lay;
}

CouplingGraph make_heavy_hex(const HeavyHexLayout& lay) {
  CouplingGraph g("heavy-hex-" + std::to_string(lay.num_qubits),
                  lay.num_qubits);
  for (std::int32_t p = 0; p + 1 < lay.main_len; ++p) {
    g.add_edge(lay.main_node(p), lay.main_node(p + 1));
  }
  for (std::int32_t j = 0; j < lay.num_dangling(); ++j) {
    g.add_edge(lay.main_node(lay.junctions[j]), lay.dangling_node(j));
  }
  // main_node(p) == p and dangling_node(g) == main_len + g, exactly the id
  // scheme the closed form assumes.
  g.set_distance_spec(DistanceSpec::heavy_hex(lay.main_len, lay.junctions));
  return g;
}

HeavyHexDevice make_heavy_hex_device(std::int32_t rows, std::int32_t cols) {
  require(rows >= 1 && cols >= 5 && cols % 4 == 1,
          "make_heavy_hex_device: need rows >= 1, cols = 4k+1 >= 5");
  HeavyHexDevice dev;
  dev.rows = rows;
  dev.cols = cols;
  const std::int32_t bridges_per_gap = (cols - 1) / 4 + 1;
  const std::int32_t n =
      rows * cols + (rows - 1) * bridges_per_gap;
  dev.graph = CouplingGraph(
      "heavy-hex-device-" + std::to_string(rows) + "x" + std::to_string(cols),
      n);
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c + 1 < cols; ++c) {
      dev.graph.add_edge(dev.row_node(r, c), dev.row_node(r, c + 1));
    }
  }
  PhysicalQubit next = rows * cols;
  dev.bridges.resize(std::max(rows - 1, 0));
  for (std::int32_t gap = 0; gap + 1 < rows; ++gap) {
    for (std::int32_t k = 0; k < bridges_per_gap; ++k) {
      const std::int32_t c = 4 * k;
      const PhysicalQubit b = next++;
      dev.bridges[gap].push_back(b);
      dev.graph.add_edge(dev.row_node(gap, c), b);
      dev.graph.add_edge(b, dev.row_node(gap + 1, c));
    }
  }
  return dev;
}

HeavyHexLayout HeavyHexReduction::canonical() const {
  std::vector<std::int32_t> junctions;
  junctions.reserve(dangling.size());
  for (const auto& [pos, node] : dangling) junctions.push_back(pos);
  return heavy_hex_layout_custom(static_cast<std::int32_t>(main_line.size()),
                                 junctions);
}

HeavyHexReduction simplify_heavy_hex(const HeavyHexDevice& dev) {
  HeavyHexReduction red;
  // Snake: even rows left->right, odd rows right->left; descend through the
  // bridge at the row end we arrive at (rightmost bridge for even rows,
  // leftmost for odd). All other bridges keep the link to their *upper* row
  // and dangle there.
  for (std::int32_t r = 0; r < dev.rows; ++r) {
    const bool l2r = (r % 2 == 0);
    for (std::int32_t i = 0; i < dev.cols; ++i) {
      const std::int32_t c = l2r ? i : dev.cols - 1 - i;
      red.main_line.push_back(dev.row_node(r, c));
    }
    if (r + 1 < dev.rows) {
      const std::int32_t exit_col = l2r ? dev.cols - 1 : 0;
      const std::size_t exit_bridge_idx = l2r ? dev.bridges[r].size() - 1 : 0;
      red.main_line.push_back(dev.bridges[r][exit_bridge_idx]);
      // Remaining bridges of this gap dangle off the upper row.
      for (std::size_t k = 0; k < dev.bridges[r].size(); ++k) {
        if (k == exit_bridge_idx) continue;
        const std::int32_t c = static_cast<std::int32_t>(4 * k);
        require(c != exit_col, "simplify_heavy_hex: bridge layout broken");
        // Position of (r, c) in the snake built so far.
        const std::int32_t pos =
            r * (dev.cols + 1) + (l2r ? c : dev.cols - 1 - c);
        red.dangling.push_back({pos, dev.bridges[r][k]});
      }
    }
  }
  std::sort(red.dangling.begin(), red.dangling.end());
  return red;
}

std::vector<PhysicalQubit> heavy_hex_initial_mapping(
    const HeavyHexLayout& lay) {
  std::vector<PhysicalQubit> logical_to_physical(lay.num_qubits);
  LogicalQubit next = 0;
  for (std::int32_t p = 0; p < lay.main_len; ++p) {
    logical_to_physical[next++] = lay.main_node(p);
    const std::int32_t j = lay.junction_at(p);
    if (j >= 0) logical_to_physical[next++] = lay.dangling_node(j);
  }
  return logical_to_physical;
}

}  // namespace qfto
