#include "arch/latency_model.hpp"

#include "arch/device_model.hpp"

namespace qfto {

LatencyModel LatencyModel::nisq() {
  // Resolved from the default NISQ device spec, not hardwired: editing the
  // spec's calibration changes what nisq() means, which is the point.
  return DeviceModel::nisq_spec().latency_model();
}

LatencyModel LatencyModel::lattice(const CouplingGraph& g) {
  LatencyModel m;
  m.bind(g);
  m.set_cost(GateKind::kCnot, kLsCnotDepth);
  m.set_cost(GateKind::kCPhase, kLsCphaseDepth);
  m.set_cost(GateKind::kSwap, kLsSlowSwapDepth);
  m.set_cost(GateKind::kSwap, LinkType::kFast, kLsFastSwapDepth);
  return m;
}

LatencyFn nisq_latency() { return LatencyFn(LatencyModel::nisq()); }

LatencyFn lattice_latency(const CouplingGraph& g) {
  return LatencyFn(LatencyModel::lattice(g));
}

}  // namespace qfto
