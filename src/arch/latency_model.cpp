#include "arch/latency_model.hpp"

namespace qfto {

LatencyFn nisq_latency() {
  return [](const Gate&) -> Cycle { return 1; };
}

LatencyFn lattice_latency(const CouplingGraph& g) {
  return [&g](const Gate& gate) -> Cycle {
    if (!gate.two_qubit()) return 1;
    const auto type = g.link_type(gate.q0, gate.q1);
    const bool fast = type.has_value() && *type == LinkType::kFast;
    switch (gate.kind) {
      case GateKind::kSwap:
        return fast ? kLsFastSwapDepth : kLsSlowSwapDepth;
      case GateKind::kCnot:
        return kLsCnotDepth;
      case GateKind::kCPhase:
        return kLsCphaseDepth;
      default:
        return 1;
    }
  };
}

}  // namespace qfto
