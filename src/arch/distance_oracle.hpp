// On-demand hop-distance oracle — the device-scale replacement for the
// retired CouplingGraph::distance_matrix(). The eager all-pairs matrix is
// O(n²) memory and O(n·E) BFS before the first query; at the 10k-qubit sizes
// the ROADMAP targets that is ~400 MB and seconds of setup. The oracle
// answers the same queries from O(n·deg) state:
//
//   * every registered regular topology carries a DistanceSpec set by its
//     builder, and distances are evaluated in closed form per query —
//     |a-b| on lines, Manhattan on axial grids (plain grid and the rotated
//     lattice-surgery view), Chebyshev on the full lattice-surgery graph
//     (axial + both diagonal families = king moves), and junction arithmetic
//     on the simplified heavy-hex line-with-dangling layout;
//   * irregular graphs (Sycamore's diagonal grid, heavy-hex devices, custom
//     edge lists) fall back to single-source CSR-BFS rows cached under an
//     LRU row budget, so memory stays bounded no matter how many sources a
//     router touches.
//
// Rows are handed out as shared_ptrs, so a handle stays valid after the LRU
// evicts the row — routers (SABRE) pin the rows of the round's frontier and
// query them lock-free. The full eager matrix survives only as
// eager_matrix_for_tests(), the differential oracle the property sweep in
// tests/test_distance_oracle.cpp compares every topology against.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace qfto {

class CouplingGraph;

/// Topology hint the builders attach to a CouplingGraph so the oracle can
/// answer distance queries in closed form. Mutating the graph (add_edge)
/// resets the spec to kGeneric — correctness never depends on the hint.
struct DistanceSpec {
  enum class Kind : std::uint8_t {
    kGeneric,   // no structure known: cached CSR-BFS rows
    kLine,      // path graph: d = |a - b|
    kGrid,      // rows x cols axial grid: Manhattan distance
    kKingGrid,  // rows x cols with axial + both diagonals: Chebyshev distance
    kHeavyHex,  // simplified heavy-hex: main line + dangling junction nodes
  };

  Kind kind = Kind::kGeneric;
  std::int32_t rows = 0;  // kGrid / kKingGrid
  std::int32_t cols = 0;  // kGrid / kKingGrid (node id = r * cols + c)
  std::int32_t main_len = 0;               // kHeavyHex
  std::vector<std::int32_t> junctions;     // kHeavyHex: dangle g hangs at [g]

  static DistanceSpec line() {
    DistanceSpec s;
    s.kind = Kind::kLine;
    return s;
  }
  static DistanceSpec grid(std::int32_t rows, std::int32_t cols) {
    DistanceSpec s;
    s.kind = Kind::kGrid;
    s.rows = rows;
    s.cols = cols;
    return s;
  }
  static DistanceSpec king_grid(std::int32_t rows, std::int32_t cols) {
    DistanceSpec s;
    s.kind = Kind::kKingGrid;
    s.rows = rows;
    s.cols = cols;
    return s;
  }
  static DistanceSpec heavy_hex(std::int32_t main_len,
                                std::vector<std::int32_t> junctions) {
    DistanceSpec s;
    s.kind = Kind::kHeavyHex;
    s.main_len = main_len;
    s.junctions = std::move(junctions);
    return s;
  }
};

class DistanceOracle {
 public:
  /// A materialized distance row (source fixed, indexed by target). Shared:
  /// handles stay valid after the LRU evicts the row from the cache.
  using RowPtr = std::shared_ptr<const std::vector<std::int32_t>>;

  /// `g` must outlive the oracle (CouplingGraph owns its oracle and resets
  /// it on copy/move/mutation, so the pointer never dangles there).
  /// `row_budget` caps the BFS row cache; 0 picks a default sized so the
  /// cache stays within ~16 MiB regardless of n (at least 16 rows).
  DistanceOracle(const CouplingGraph& g, DistanceSpec spec,
                 std::size_t row_budget = 0);

  /// Hop distance between physical nodes a and b; -1 when unreachable.
  /// Closed-form specs are pure arithmetic; kGeneric takes the row-cache
  /// mutex (safe for concurrent first use from a thread pool).
  std::int32_t distance(PhysicalQubit a, PhysicalQubit b) const;

  /// Full distance row from source `a`. Closed-form specs materialize a
  /// fresh row (O(n), uncached); kGeneric serves the LRU-cached BFS row.
  RowPtr row(PhysicalQubit a) const;

  /// True when distances are evaluated in closed form (no BFS, no cache).
  bool closed_form() const {
    return spec_.kind != DistanceSpec::Kind::kGeneric;
  }

  const DistanceSpec& spec() const { return spec_; }

  /// True when every node is reachable from node 0 (empty graph counts as
  /// connected). Computed once (closed-form specs by construction; kGeneric
  /// by one BFS) and memoized.
  bool connected() const;

  std::size_t row_budget() const { return row_budget_; }

  /// Current BFS row cache occupancy (kGeneric only; 0 for closed forms).
  std::size_t cached_rows() const;

  /// Total BFS row computations since construction — lets tests prove both
  /// that eviction happened (recomputation after overflow) and that LRU
  /// recency protects hot rows (no recomputation on a re-query).
  std::int64_t bfs_rows_computed() const;

  /// Differential oracle for tests: the old eager all-pairs BFS matrix,
  /// computed from scratch on every call (never cached, never consulted by
  /// queries). O(n²) — test-only by design.
  std::vector<std::vector<std::int32_t>> eager_matrix_for_tests() const;

 private:
  std::int32_t closed_distance(PhysicalQubit a, PhysicalQubit b) const;
  std::vector<std::int32_t> bfs_from(PhysicalQubit a) const;
  RowPtr cached_row_locked(PhysicalQubit a) const;

  const CouplingGraph* g_;
  DistanceSpec spec_;
  std::size_t row_budget_ = 0;

  // LRU row cache (kGeneric). lru_ front = most recently used.
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::int32_t, RowPtr> rows_;
  mutable std::list<std::int32_t> lru_;
  mutable std::unordered_map<std::int32_t, std::list<std::int32_t>::iterator>
      lru_pos_;
  mutable std::int64_t bfs_rows_computed_ = 0;
  mutable std::int8_t connected_ = -1;  // -1 unknown, else 0/1 (guarded)
};

}  // namespace qfto
