#include "arch/grid.hpp"

namespace qfto {

CouplingGraph make_grid(std::int32_t rows, std::int32_t cols) {
  CouplingGraph g(
      "grid-" + std::to_string(rows) + "x" + std::to_string(cols),
      rows * cols);
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(grid_node(r, c, cols), grid_node(r, c + 1, cols));
      if (r + 1 < rows) g.add_edge(grid_node(r, c, cols), grid_node(r + 1, c, cols));
    }
  }
  g.set_distance_spec(DistanceSpec::grid(rows, cols));
  return g;
}

}  // namespace qfto
