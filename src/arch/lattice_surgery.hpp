// Surface-code lattice-surgery model (§2.3, §6).
//
// Two views of the same device:
//  * `make_lattice_surgery_full(m)`  — the Fig. 5(b) data-qubit graph with
//    both link families (axial + diagonal), uniform cost. This is what the
//    baselines (SABRE / LNN) are allowed to use, per §7.2 ("all links are
//    used for both baselines").
//  * `make_lattice_surgery_rotated(m)` — the Fig. 15(a) rotated view our
//    mapper uses: within a row the links are the *fast* diagonal family
//    (SWAP depth 2), between rows only the CNOT-only links remain
//    (SWAP = 3 CNOTs = depth 6); the redundant edges are eliminated.
#pragma once

#include "arch/coupling_graph.hpp"

namespace qfto {

struct LatticeLayout {
  std::int32_t m = 0;  // grid side; N = m*m

  std::int32_t num_qubits() const { return m * m; }
  PhysicalQubit node(std::int32_t row, std::int32_t col) const {
    return row * m + col;
  }
};

CouplingGraph make_lattice_surgery_full(std::int32_t m);
CouplingGraph make_lattice_surgery_rotated(std::int32_t m);

}  // namespace qfto
