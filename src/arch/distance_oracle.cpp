#include "arch/distance_oracle.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>

#include "arch/coupling_graph.hpp"

namespace qfto {

namespace {

// Default LRU budget: keep the cache within ~16 MiB of int32 rows, but never
// below 16 rows so small irregular graphs behave like an eager matrix. There
// are only n distinct rows, so the budget never usefully exceeds max(n, 16)
// and is capped there — a 4-node graph reports 16, not 16 MiB worth of slots.
std::size_t default_row_budget(std::int32_t n) {
  if (n <= 0) return 16;
  const std::size_t rows = static_cast<std::size_t>(n);
  const std::size_t row_bytes = sizeof(std::int32_t) * rows;
  const std::size_t budget = (16u << 20) / row_bytes;
  return std::min(std::max<std::size_t>(rows, 16),
                  std::max<std::size_t>(16, budget));
}

}  // namespace

DistanceOracle::DistanceOracle(const CouplingGraph& g, DistanceSpec spec,
                               std::size_t row_budget)
    : g_(&g),
      spec_(std::move(spec)),
      row_budget_(row_budget == 0 ? default_row_budget(g.num_qubits())
                                  : row_budget) {
  if (spec_.kind == DistanceSpec::Kind::kHeavyHex) {
    require(spec_.main_len +
                    static_cast<std::int32_t>(spec_.junctions.size()) ==
                g.num_qubits(),
            "DistanceOracle: heavy-hex spec does not cover the graph");
  } else if (spec_.kind == DistanceSpec::Kind::kGrid ||
             spec_.kind == DistanceSpec::Kind::kKingGrid) {
    require(static_cast<std::int64_t>(spec_.rows) * spec_.cols ==
                g.num_qubits(),
            "DistanceOracle: grid spec does not cover the graph");
  }
}

std::int32_t DistanceOracle::closed_distance(PhysicalQubit a,
                                             PhysicalQubit b) const {
  switch (spec_.kind) {
    case DistanceSpec::Kind::kLine:
      return std::abs(a - b);
    case DistanceSpec::Kind::kGrid: {
      const std::int32_t dr = std::abs(a / spec_.cols - b / spec_.cols);
      const std::int32_t dc = std::abs(a % spec_.cols - b % spec_.cols);
      return dr + dc;
    }
    case DistanceSpec::Kind::kKingGrid: {
      const std::int32_t dr = std::abs(a / spec_.cols - b / spec_.cols);
      const std::int32_t dc = std::abs(a % spec_.cols - b % spec_.cols);
      return std::max(dr, dc);
    }
    case DistanceSpec::Kind::kHeavyHex: {
      // Main-line node id == its line position; dangling node g sits one hop
      // off the line at junction position junctions[g].
      const std::int32_t main_len = spec_.main_len;
      const bool a_dangle = a >= main_len;
      const bool b_dangle = b >= main_len;
      const std::int32_t pa = a_dangle ? spec_.junctions[a - main_len] : a;
      const std::int32_t pb = b_dangle ? spec_.junctions[b - main_len] : b;
      const std::int32_t hops = (a_dangle ? 1 : 0) + (b_dangle ? 1 : 0);
      if (a_dangle && b_dangle && pa == pb) {
        // Two dangles on one junction would both project to the same spot;
        // the builders never create that, but keep the formula total.
        return a == b ? 0 : 2;
      }
      return hops + std::abs(pa - pb);
    }
    case DistanceSpec::Kind::kGeneric:
      break;
  }
  require(false, "DistanceOracle: closed_distance on generic spec");
  return -1;
}

std::vector<std::int32_t> DistanceOracle::bfs_from(PhysicalQubit a) const {
  const std::int32_t n = g_->num_qubits();
  std::vector<std::int32_t> d(static_cast<std::size_t>(n), -1);
  d[a] = 0;
  std::queue<PhysicalQubit> bfs;
  bfs.push(a);
  while (!bfs.empty()) {
    const PhysicalQubit u = bfs.front();
    bfs.pop();
    for (PhysicalQubit v : g_->neighbors(u)) {
      if (d[v] < 0) {
        d[v] = d[u] + 1;
        bfs.push(v);
      }
    }
  }
  return d;
}

DistanceOracle::RowPtr DistanceOracle::cached_row_locked(
    PhysicalQubit a) const {
  auto it = rows_.find(a);
  if (it != rows_.end()) {
    // Refresh recency.
    auto pos = lru_pos_.find(a);
    lru_.splice(lru_.begin(), lru_, pos->second);
    pos->second = lru_.begin();
    return it->second;
  }
  auto row = std::make_shared<const std::vector<std::int32_t>>(bfs_from(a));
  ++bfs_rows_computed_;
  if (rows_.size() >= row_budget_ && !lru_.empty()) {
    const std::int32_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    rows_.erase(victim);
  }
  rows_.emplace(a, row);
  lru_.push_front(a);
  lru_pos_[a] = lru_.begin();
  return row;
}

std::int32_t DistanceOracle::distance(PhysicalQubit a, PhysicalQubit b) const {
  require(a >= 0 && a < g_->num_qubits() && b >= 0 && b < g_->num_qubits(),
          "DistanceOracle::distance: node out of range");
  if (closed_form()) return closed_distance(a, b);
  std::lock_guard<std::mutex> lock(mutex_);
  return (*cached_row_locked(a))[b];
}

DistanceOracle::RowPtr DistanceOracle::row(PhysicalQubit a) const {
  require(a >= 0 && a < g_->num_qubits(),
          "DistanceOracle::row: node out of range");
  if (closed_form()) {
    const std::int32_t n = g_->num_qubits();
    std::vector<std::int32_t> r(static_cast<std::size_t>(n));
    for (std::int32_t b = 0; b < n; ++b) r[b] = closed_distance(a, b);
    return std::make_shared<const std::vector<std::int32_t>>(std::move(r));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return cached_row_locked(a);
}

bool DistanceOracle::connected() const {
  if (g_->num_qubits() == 0) return true;
  // Every closed-form topology is connected by construction.
  if (closed_form()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (connected_ < 0) {
    const auto row = cached_row_locked(0);
    connected_ = std::all_of(row->begin(), row->end(),
                             [](std::int32_t x) { return x >= 0; })
                     ? 1
                     : 0;
  }
  return connected_ == 1;
}

std::size_t DistanceOracle::cached_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

std::int64_t DistanceOracle::bfs_rows_computed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bfs_rows_computed_;
}

std::vector<std::vector<std::int32_t>> DistanceOracle::eager_matrix_for_tests()
    const {
  const std::int32_t n = g_->num_qubits();
  std::vector<std::vector<std::int32_t>> m;
  m.reserve(static_cast<std::size_t>(n));
  for (std::int32_t a = 0; a < n; ++a) m.push_back(bfs_from(a));
  return m;
}

}  // namespace qfto
