// Calibrated device descriptions — the ROADMAP's device-realism item. A
// DeviceModel is *data*, not a compile-time topology choice: qubit count, an
// edge list carrying per-edge two-qubit latency (in scheduler cycles) and
// error rate, and per-qubit single-qubit error + coherence horizons. It is
// loaded from a device JSON file (or built from the generated builtin specs,
// which re-express the five hardcoded topologies as device descriptions), and
// everything downstream — CouplingGraph shape, LatencyModel cycle table,
// fidelity accounting, SABRE's fidelity-aware cost mode, the ResultCache key
// — resolves from it. Topologies stop being the source of truth; the enum of
// builders survives only as a convenience namespace.
//
// JSON schema (single top-level object; unknown keys fail loudly):
//
//   {
//     "name": "falcon-7",            // optional label (not fingerprinted)
//     "qubits": 7,                   // required, >= 1
//     "latency_1q": 1,               // optional, cycles per 1q gate (def 1)
//     "error_1q": 1e-4,              // scalar or per-qubit array of n
//     "coherence_cycles": 20000,     // scalar or per-qubit array of n
//     "edges": [                     // required, >= 1 entry
//       {"a": 0, "b": 1},            // defaults: latency 1, error 5e-3,
//       {"a": 1, "b": 2,             //           swap_latency 3*latency
//        "latency": 2, "error": 0.012, "swap_latency": 6}
//     ]
//   }
//
// Validation is strict and every rejection is positioned ("device json line
// N: ..."), mirroring from_qasm: duplicate edges, out-of-range error rates,
// qubit indices past n, truncated input — all raise std::invalid_argument,
// never crash. Distinct per-edge (latency, swap_latency) pairs become the
// graph's link classes; since LatencyModel resolves costs per link type,
// a device may carry at most kLinkTypeCount (= 3) distinct latency classes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "arch/latency_model.hpp"

namespace qfto {

/// One calibrated coupler. `latency` is the two-qubit (CNOT/CPHASE) cost in
/// cycles; `swap_latency` the SWAP cost (defaults to 3 * latency — three
/// CNOTs); `error_2q` the per-application two-qubit error rate in [0, 1).
struct DeviceEdge {
  PhysicalQubit a = 0;
  PhysicalQubit b = 0;
  Cycle latency = 1;
  Cycle swap_latency = 3;
  double error_2q = 5e-3;
};

/// Per-qubit calibration: single-qubit error rate and idle-coherence horizon
/// in scheduler cycles.
struct DeviceQubit {
  double error_1q = 1e-4;
  double coherence_cycles = 2e4;
};

class DeviceModel {
 public:
  DeviceModel() = default;

  /// Parses a device JSON document. Throws std::invalid_argument with a
  /// line-positioned message on any syntactic or semantic problem.
  static DeviceModel from_json(std::string_view text);

  /// from_json over a file's bytes; the path prefixes the positioned error.
  /// A missing/unreadable file throws too — a request naming a device that
  /// cannot be loaded must fail loudly, never map on an idealized fallback.
  static DeviceModel load_file(const std::string& path);

  /// The five builtin topologies re-expressed as generated device specs:
  /// "line", "grid", "heavy_hex", "sycamore", "lattice". `n` snaps up to the
  /// topology's native size exactly as the corresponding engine does; the
  /// calibration is the uniform default (lattice carries its §2.3 weighted
  /// latencies: 2-cycle CNOT/CPHASE, SWAP 2 on fast links and 6 on axial).
  static DeviceModel builtin(const std::string& topology, std::int32_t n);
  static std::vector<std::string> builtin_names();

  /// The default NISQ spec LatencyModel::nisq() resolves from: one uniform
  /// 1-cycle latency class, default error rates.
  static const DeviceModel& nisq_spec();

  /// Wraps an existing coupling graph (uniform default calibration, with a
  /// per-link-type latency table) — how the builtins are generated.
  static DeviceModel from_graph(std::string name, const CouplingGraph& g,
                                const Cycle latency[kLinkTypeCount],
                                const Cycle swap_latency[kLinkTypeCount]);

  const std::string& name() const { return name_; }
  std::int32_t num_qubits() const { return num_qubits_; }
  const std::vector<DeviceQubit>& qubits() const { return qubits_; }
  const DeviceQubit& qubit(PhysicalQubit q) const {
    return qubits_[static_cast<std::size_t>(q)];
  }
  const std::vector<DeviceEdge>& edges() const { return edges_; }

  /// Two-qubit error rate of the (a, b) coupler; `fallback` when the pair is
  /// not an edge (lenient evaluation of baseline circuits, like the latency
  /// table's non-edge convention).
  double edge_error(PhysicalQubit a, PhysicalQubit b,
                    double fallback = 5e-3) const;

  /// Order-insensitive 64-bit content fingerprint (splitmix64-chained) over
  /// the calibration: qubit count, per-qubit rates, every edge's endpoints,
  /// latencies and error rate. The cosmetic `name` is excluded — relabeling
  /// a device must not fragment the result cache, while editing any single
  /// calibration value must miss it.
  std::uint64_t fingerprint() const;

  /// Number of distinct (latency, swap_latency) classes (<= kLinkTypeCount).
  std::size_t latency_classes() const { return classes_.size(); }

  /// The coupling graph this device describes: every edge tagged with its
  /// latency class as the LinkType (classes sorted ascending). Irregular
  /// shapes are fine — distances come from the oracle's generic BFS rows.
  CouplingGraph build_graph() const;

  /// The calibration table as a LatencyModel resolved against `g` (which
  /// must be build_graph()'s result, or share its link-class labeling, and
  /// must outlive the model).
  LatencyModel latency_model(const CouplingGraph& g) const;

  /// Uniform-device resolution (exactly one latency class): no graph needed
  /// because no cost varies by link. This is the nisq() path.
  LatencyModel latency_model() const;

  /// Mean rates over the device — the closed-form NoiseModel equivalent for
  /// callers that don't walk gate-by-gate.
  double mean_error_1q() const;
  double mean_error_2q() const;
  double mean_coherence_cycles() const;

 private:
  /// Validates, assigns latency classes and builds the edge index. `where`
  /// prefixes error messages. Called by every factory.
  void finalize(const std::string& where);

  /// Shared resolution core; `g` may be null only for uniform devices.
  LatencyModel resolve_latency(const CouplingGraph* g) const;

  static std::uint64_t edge_index_key(PhysicalQubit a, PhysicalQubit b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  std::string name_;
  std::int32_t num_qubits_ = 0;
  Cycle latency_1q_ = 1;
  std::vector<DeviceQubit> qubits_;
  std::vector<DeviceEdge> edges_;
  /// Distinct (latency, swap_latency) pairs, sorted ascending; an edge's
  /// index into this vector is its LinkType in build_graph()'s labeling.
  std::vector<std::pair<Cycle, Cycle>> classes_;
  std::unordered_map<std::uint64_t, std::size_t> edge_index_;
};

}  // namespace qfto
