// Linear-nearest-neighbor (LNN) topology: qubit i couples to i±1.
#pragma once

#include "arch/coupling_graph.hpp"

namespace qfto {

CouplingGraph make_line(std::int32_t n);

}  // namespace qfto
