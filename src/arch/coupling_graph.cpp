#include "arch/coupling_graph.hpp"

#include <algorithm>
#include <utility>

namespace qfto {

CouplingGraph::CouplingGraph(std::string name, std::int32_t num_qubits)
    : name_(std::move(name)),
      num_qubits_(num_qubits),
      adj_(num_qubits),
      rows_(num_qubits) {
  require(num_qubits >= 0, "CouplingGraph: negative qubit count");
}

void CouplingGraph::copy_from(const CouplingGraph& other) {
  name_ = other.name_;
  num_qubits_ = other.num_qubits_;
  num_edges_ = other.num_edges_;
  adj_ = other.adj_;
  rows_ = other.rows_;
  spec_ = other.spec_;
  // Snapshot the lazy CSR under the source's guard so copying a graph that
  // another thread is lazily initializing stays race-free. The distance
  // oracle is NOT copied — it back-references its owning graph — so the copy
  // rebuilds it lazily on first query.
  {
    std::lock_guard<std::mutex> lock(other.csr_mutex_);
    csr_offset_ = other.csr_offset_;
    csr_ = other.csr_;
    csr_ready_.store(other.csr_ready_.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  oracle_.reset();
  oracle_ready_.store(false, std::memory_order_release);
}

CouplingGraph::CouplingGraph(const CouplingGraph& other) { copy_from(other); }

CouplingGraph& CouplingGraph::operator=(const CouplingGraph& other) {
  if (this != &other) copy_from(other);
  return *this;
}

CouplingGraph::CouplingGraph(CouplingGraph&& other) noexcept {
  *this = std::move(other);
}

CouplingGraph& CouplingGraph::operator=(CouplingGraph&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    num_qubits_ = other.num_qubits_;
    num_edges_ = other.num_edges_;
    adj_ = std::move(other.adj_);
    rows_ = std::move(other.rows_);
    spec_ = std::move(other.spec_);
    {
      std::lock_guard<std::mutex> lock(other.csr_mutex_);
      csr_offset_ = std::move(other.csr_offset_);
      csr_ = std::move(other.csr_);
      csr_ready_.store(other.csr_ready_.load(std::memory_order_acquire),
                       std::memory_order_release);
      other.csr_ready_.store(false, std::memory_order_relaxed);
    }
    // The moved-from graph's oracle back-references a graph whose adjacency
    // was just moved away — drop it on both sides; this graph rebuilds
    // lazily against its own storage.
    {
      std::lock_guard<std::mutex> lock(other.oracle_mutex_);
      other.oracle_.reset();
      other.oracle_ready_.store(false, std::memory_order_relaxed);
    }
    oracle_.reset();
    oracle_ready_.store(false, std::memory_order_release);
  }
  return *this;
}

void CouplingGraph::build_csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_ready_.load(std::memory_order_relaxed)) return;
  csr_offset_.assign(static_cast<std::size_t>(num_qubits_) + 1, 0);
  for (PhysicalQubit q = 0; q < num_qubits_; ++q) {
    csr_offset_[q + 1] =
        csr_offset_[q] + static_cast<std::int32_t>(rows_[q].size());
  }
  csr_.clear();
  csr_.reserve(static_cast<std::size_t>(csr_offset_[num_qubits_]));
  for (PhysicalQubit q = 0; q < num_qubits_; ++q) {
    csr_.insert(csr_.end(), rows_[q].begin(), rows_[q].end());
    // Sorted rows keep the probe deterministic and cache-friendly.
    std::sort(csr_.begin() + csr_offset_[q], csr_.begin() + csr_offset_[q + 1],
              [](const CsrEntry& x, const CsrEntry& y) { return x.nbr < y.nbr; });
  }
  csr_ready_.store(true, std::memory_order_release);
}

void CouplingGraph::add_edge(PhysicalQubit a, PhysicalQubit b, LinkType type) {
  require(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
          "CouplingGraph::add_edge: bad endpoints");
  // Duplicate check against the build-time row (degree-bounded) rather than
  // the public adjacent(), so building E edges never re-finalizes the CSR.
  for (const CsrEntry& e : rows_[a]) {
    require(e.nbr != b, "CouplingGraph::add_edge: duplicate edge");
  }
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  rows_[a].push_back(CsrEntry{b, type});
  rows_[b].push_back(CsrEntry{a, type});
  ++num_edges_;
  // Invalidate the lazy caches (mutation is not concurrent-safe by contract).
  // A closed-form spec no longer describes the mutated graph, so distances
  // degrade to exact generic BFS rows.
  spec_ = DistanceSpec{};
  oracle_.reset();
  oracle_ready_.store(false, std::memory_order_release);
  csr_ready_.store(false, std::memory_order_release);
}

const std::vector<PhysicalQubit>& CouplingGraph::neighbors(
    PhysicalQubit q) const {
  return adj_[q];
}

void CouplingGraph::set_distance_spec(DistanceSpec spec) {
  spec_ = std::move(spec);
  oracle_.reset();
  oracle_ready_.store(false, std::memory_order_release);
}

const DistanceOracle& CouplingGraph::distances() const {
  // Double-checked lazy init: map_qft_batch maps on a shared graph from a
  // thread pool, so first use must not race.
  if (!oracle_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(oracle_mutex_);
    if (!oracle_ready_.load(std::memory_order_relaxed)) {
      oracle_ = std::make_shared<const DistanceOracle>(*this, spec_);
      oracle_ready_.store(true, std::memory_order_release);
    }
  }
  return *oracle_;
}

std::int32_t CouplingGraph::distance(PhysicalQubit a, PhysicalQubit b) const {
  return distances().distance(a, b);
}

bool CouplingGraph::connected() const { return distances().connected(); }

}  // namespace qfto
