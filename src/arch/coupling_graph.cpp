#include "arch/coupling_graph.hpp"

#include <algorithm>
#include <queue>

namespace qfto {

CouplingGraph::CouplingGraph(std::string name, std::int32_t num_qubits)
    : name_(std::move(name)), num_qubits_(num_qubits), adj_(num_qubits) {
  require(num_qubits >= 0, "CouplingGraph: negative qubit count");
}

std::int64_t CouplingGraph::pack(PhysicalQubit a, PhysicalQubit b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::int64_t>(a) << 32) | static_cast<std::uint32_t>(b);
}

void CouplingGraph::add_edge(PhysicalQubit a, PhysicalQubit b, LinkType type) {
  require(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
          "CouplingGraph::add_edge: bad endpoints");
  require(!adjacent(a, b), "CouplingGraph::add_edge: duplicate edge");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  const auto key = pack(a, b);
  auto it = std::lower_bound(
      edge_types_.begin(), edge_types_.end(), key,
      [](const auto& e, std::int64_t k) { return e.first < k; });
  edge_types_.insert(it, {key, type});
  ++num_edges_;
  dist_.clear();  // invalidate cache
}

bool CouplingGraph::adjacent(PhysicalQubit a, PhysicalQubit b) const {
  if (a < 0 || b < 0 || a >= num_qubits_ || b >= num_qubits_) return false;
  const auto& na = adj_[a];
  return std::find(na.begin(), na.end(), b) != na.end();
}

std::optional<LinkType> CouplingGraph::link_type(PhysicalQubit a,
                                                 PhysicalQubit b) const {
  const auto key = pack(a, b);
  auto it = std::lower_bound(
      edge_types_.begin(), edge_types_.end(), key,
      [](const auto& e, std::int64_t k) { return e.first < k; });
  if (it == edge_types_.end() || it->first != key) return std::nullopt;
  return it->second;
}

const std::vector<PhysicalQubit>& CouplingGraph::neighbors(
    PhysicalQubit q) const {
  return adj_[q];
}

const std::vector<std::vector<std::int32_t>>& CouplingGraph::distance_matrix()
    const {
  if (!dist_.empty()) return dist_;
  dist_.assign(num_qubits_, std::vector<std::int32_t>(num_qubits_, -1));
  for (PhysicalQubit s = 0; s < num_qubits_; ++s) {
    auto& d = dist_[s];
    d[s] = 0;
    std::queue<PhysicalQubit> bfs;
    bfs.push(s);
    while (!bfs.empty()) {
      const PhysicalQubit u = bfs.front();
      bfs.pop();
      for (PhysicalQubit v : adj_[u]) {
        if (d[v] < 0) {
          d[v] = d[u] + 1;
          bfs.push(v);
        }
      }
    }
  }
  return dist_;
}

std::int32_t CouplingGraph::distance(PhysicalQubit a, PhysicalQubit b) const {
  return distance_matrix()[a][b];
}

bool CouplingGraph::connected() const {
  if (num_qubits_ == 0) return true;
  const auto& d = distance_matrix()[0];
  return std::all_of(d.begin(), d.end(), [](std::int32_t x) { return x >= 0; });
}

}  // namespace qfto
