#include "arch/coupling_graph.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace qfto {

CouplingGraph::CouplingGraph(std::string name, std::int32_t num_qubits)
    : name_(std::move(name)),
      num_qubits_(num_qubits),
      adj_(num_qubits),
      rows_(num_qubits) {
  require(num_qubits >= 0, "CouplingGraph: negative qubit count");
}

void CouplingGraph::copy_from(const CouplingGraph& other) {
  name_ = other.name_;
  num_qubits_ = other.num_qubits_;
  num_edges_ = other.num_edges_;
  adj_ = other.adj_;
  rows_ = other.rows_;
  // Snapshot the lazy caches under the source's guards so copying a graph
  // that another thread is lazily initializing stays race-free.
  {
    std::lock_guard<std::mutex> lock(other.csr_mutex_);
    csr_offset_ = other.csr_offset_;
    csr_ = other.csr_;
    csr_ready_.store(other.csr_ready_.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(other.dist_mutex_);
  dist_ = other.dist_;
  dist_ready_.store(other.dist_ready_.load(std::memory_order_acquire),
                    std::memory_order_release);
}

CouplingGraph::CouplingGraph(const CouplingGraph& other) { copy_from(other); }

CouplingGraph& CouplingGraph::operator=(const CouplingGraph& other) {
  if (this != &other) copy_from(other);
  return *this;
}

CouplingGraph::CouplingGraph(CouplingGraph&& other) noexcept {
  *this = std::move(other);
}

CouplingGraph& CouplingGraph::operator=(CouplingGraph&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    num_qubits_ = other.num_qubits_;
    num_edges_ = other.num_edges_;
    adj_ = std::move(other.adj_);
    rows_ = std::move(other.rows_);
    {
      std::lock_guard<std::mutex> lock(other.csr_mutex_);
      csr_offset_ = std::move(other.csr_offset_);
      csr_ = std::move(other.csr_);
      csr_ready_.store(other.csr_ready_.load(std::memory_order_acquire),
                       std::memory_order_release);
      other.csr_ready_.store(false, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(other.dist_mutex_);
    dist_ = std::move(other.dist_);
    dist_ready_.store(other.dist_ready_.load(std::memory_order_acquire),
                      std::memory_order_release);
    other.dist_ready_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

void CouplingGraph::build_csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_ready_.load(std::memory_order_relaxed)) return;
  csr_offset_.assign(static_cast<std::size_t>(num_qubits_) + 1, 0);
  for (PhysicalQubit q = 0; q < num_qubits_; ++q) {
    csr_offset_[q + 1] =
        csr_offset_[q] + static_cast<std::int32_t>(rows_[q].size());
  }
  csr_.clear();
  csr_.reserve(static_cast<std::size_t>(csr_offset_[num_qubits_]));
  for (PhysicalQubit q = 0; q < num_qubits_; ++q) {
    csr_.insert(csr_.end(), rows_[q].begin(), rows_[q].end());
    // Sorted rows keep the probe deterministic and cache-friendly.
    std::sort(csr_.begin() + csr_offset_[q], csr_.begin() + csr_offset_[q + 1],
              [](const CsrEntry& x, const CsrEntry& y) { return x.nbr < y.nbr; });
  }
  csr_ready_.store(true, std::memory_order_release);
}

void CouplingGraph::add_edge(PhysicalQubit a, PhysicalQubit b, LinkType type) {
  require(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
          "CouplingGraph::add_edge: bad endpoints");
  // Duplicate check against the build-time row (degree-bounded) rather than
  // the public adjacent(), so building E edges never re-finalizes the CSR.
  for (const CsrEntry& e : rows_[a]) {
    require(e.nbr != b, "CouplingGraph::add_edge: duplicate edge");
  }
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  rows_[a].push_back(CsrEntry{b, type});
  rows_[b].push_back(CsrEntry{a, type});
  ++num_edges_;
  // Invalidate the lazy caches (mutation is not concurrent-safe by contract).
  dist_.clear();
  dist_ready_.store(false, std::memory_order_release);
  csr_ready_.store(false, std::memory_order_release);
}

const std::vector<PhysicalQubit>& CouplingGraph::neighbors(
    PhysicalQubit q) const {
  return adj_[q];
}

const std::vector<std::vector<std::int32_t>>& CouplingGraph::distance_matrix()
    const {
  // Double-checked lazy init: map_qft_batch maps on a shared graph from a
  // thread pool, so first use must not race.
  if (!dist_ready_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(dist_mutex_);
    if (!dist_ready_.load(std::memory_order_relaxed)) {
      dist_.assign(num_qubits_, std::vector<std::int32_t>(num_qubits_, -1));
      for (PhysicalQubit s = 0; s < num_qubits_; ++s) {
        auto& d = dist_[s];
        d[s] = 0;
        std::queue<PhysicalQubit> bfs;
        bfs.push(s);
        while (!bfs.empty()) {
          const PhysicalQubit u = bfs.front();
          bfs.pop();
          for (PhysicalQubit v : adj_[u]) {
            if (d[v] < 0) {
              d[v] = d[u] + 1;
              bfs.push(v);
            }
          }
        }
      }
      dist_ready_.store(true, std::memory_order_release);
    }
  }
  return dist_;
}

std::int32_t CouplingGraph::distance(PhysicalQubit a, PhysicalQubit b) const {
  return distance_matrix()[a][b];
}

bool CouplingGraph::connected() const {
  if (num_qubits_ == 0) return true;
  const auto& d = distance_matrix()[0];
  return std::all_of(d.begin(), d.end(), [](std::int32_t x) { return x >= 0; });
}

}  // namespace qfto
