#include "common/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace qfto {
namespace fault {

bool compiled_in() {
#ifdef QFTO_FAULTS_DISABLED
  return false;
#else
  return true;
#endif
}

Trigger always() {
  Trigger t;
  t.kind = Trigger::Kind::kAlways;
  return t;
}

Trigger once(std::uint64_t nth_hit) {
  Trigger t;
  t.kind = Trigger::Kind::kOnce;
  t.count = nth_hit == 0 ? 1 : nth_hit;
  return t;
}

Trigger after(std::uint64_t hits) {
  Trigger t;
  t.kind = Trigger::Kind::kAfter;
  t.count = hits;
  return t;
}

Trigger prob(double probability, std::uint64_t seed) {
  Trigger t;
  t.kind = Trigger::Kind::kProb;
  t.probability = probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0 : probability);
  t.seed = seed;
  return t;
}

Trigger delay_ms(std::uint32_t ms) {
  Trigger t;
  t.kind = Trigger::Kind::kDelayOnly;
  t.latency_ms = ms;
  return t;
}

#ifdef QFTO_FAULTS_DISABLED

void arm(const std::string&, Trigger) {}
bool arm_spec(const std::string&, std::string* error) {
  if (error) *error = "fault injection compiled out (QFTO_FAULTS=OFF)";
  return false;
}
void disarm_all() {}
std::uint64_t hit_count(const std::string&) { return 0; }
std::uint64_t fired_count(const std::string&) { return 0; }
std::vector<std::string> known_points() { return {}; }

namespace detail {
std::atomic<bool> g_enabled{false};
bool should_fire(const char*) { return false; }
}  // namespace detail

#else  // faults compiled in

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

struct PointState {
  bool armed = false;
  Trigger trigger;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  std::uint64_t prng = 0;  // per-point PRNG state for kProb
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, PointState> points;
  std::uint64_t armed_count = 0;

  Registry() {
    // Environment arming happens once, before any point can be checked —
    // the first call into the registry constructs this singleton.
    const char* spec = std::getenv("QFTO_FAULTS");
    if (spec != nullptr && *spec != '\0') {
      std::string err;
      if (!arm_spec_locked(spec, &err)) {
        // A malformed env spec should be loud but not fatal: the process
        // may not be a test binary. Keep whatever parsed.
        std::fprintf(stderr, "qfto: ignoring bad QFTO_FAULTS clause: %s\n",
                     err.c_str());
      }
    }
  }

  // splitmix64 — tiny, seedable, good enough for fire/don't-fire decisions.
  static std::uint64_t next_rand(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  void arm_locked(const std::string& name, const Trigger& trigger) {
    PointState& p = points[name];
    if (!p.armed) ++armed_count;
    p.armed = true;
    p.trigger = trigger;
    p.hits = 0;
    p.fired = 0;
    p.prng = trigger.seed;
    g_enabled.store(armed_count > 0, std::memory_order_relaxed);
  }

  bool arm_spec_locked(const std::string& spec, std::string* error) {
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find(';', pos);
      if (end == std::string::npos) end = spec.size();
      std::string clause = spec.substr(pos, end - pos);
      pos = end + 1;
      if (clause.empty()) continue;
      std::size_t eq = clause.find('=');
      if (eq == std::string::npos || eq == 0) {
        if (error) *error = "expected name=trigger in \"" + clause + "\"";
        return false;
      }
      std::string name = clause.substr(0, eq);
      std::string body = clause.substr(eq + 1);
      // Optional `@LATENCY_MS` suffix on any trigger.
      std::uint32_t latency = 0;
      std::size_t at = body.rfind('@');
      if (at != std::string::npos) {
        if (!parse_u32(body.substr(at + 1), &latency)) {
          if (error) *error = "bad latency suffix in \"" + clause + "\"";
          return false;
        }
        body = body.substr(0, at);
      }
      Trigger t;
      if (!parse_trigger(body, &t)) {
        if (error) *error = "bad trigger \"" + body + "\" in \"" + clause + "\"";
        return false;
      }
      t.latency_ms = t.kind == Trigger::Kind::kDelayOnly ? t.latency_ms : latency;
      arm_locked(name, t);
    }
    return true;
  }

  static bool parse_u64(const std::string& s, std::uint64_t* out) {
    if (s.empty()) return false;
    std::uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      if (v > (UINT64_MAX - 9) / 10) return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
  }

  static bool parse_u32(const std::string& s, std::uint32_t* out) {
    std::uint64_t v = 0;
    if (!parse_u64(s, &v) || v > UINT32_MAX) return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
  }

  static bool parse_prob(const std::string& s, double* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    if (!(v >= 0.0 && v <= 1.0)) return false;
    *out = v;
    return true;
  }

  static bool parse_trigger(const std::string& body, Trigger* out) {
    if (body == "always") {
      *out = always();
      return true;
    }
    auto starts = [&](const char* prefix) {
      return body.rfind(prefix, 0) == 0;
    };
    if (starts("once:")) {
      std::uint64_t n = 0;
      if (!parse_u64(body.substr(5), &n) || n == 0) return false;
      *out = once(n);
      return true;
    }
    if (body == "once") {
      *out = once(1);
      return true;
    }
    if (starts("after:")) {
      std::uint64_t n = 0;
      if (!parse_u64(body.substr(6), &n)) return false;
      *out = after(n);
      return true;
    }
    if (starts("prob:")) {
      std::string rest = body.substr(5);
      std::size_t colon = rest.find(':');
      double p = 0.0;
      std::uint64_t seed = 1;
      if (colon == std::string::npos) {
        if (!parse_prob(rest, &p)) return false;
      } else {
        if (!parse_prob(rest.substr(0, colon), &p)) return false;
        if (!parse_u64(rest.substr(colon + 1), &seed)) return false;
      }
      *out = prob(p, seed);
      return true;
    }
    if (starts("delay:")) {
      std::uint32_t ms = 0;
      if (!parse_u32(body.substr(6), &ms)) return false;
      *out = delay_ms(ms);
      return true;
    }
    return false;
  }
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: survives static destruction
  return *r;
}

}  // namespace

bool should_fire(const char* point) {
  Registry& reg = registry();
  bool fire = false;
  std::uint32_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    PointState& p = reg.points[point];
    ++p.hits;
    if (!p.armed) return false;
    const Trigger& t = p.trigger;
    switch (t.kind) {
      case Trigger::Kind::kAlways:
        fire = true;
        break;
      case Trigger::Kind::kOnce:
        fire = (p.hits == t.count);
        break;
      case Trigger::Kind::kAfter:
        fire = (p.hits > t.count);
        break;
      case Trigger::Kind::kProb: {
        // Top 53 bits → uniform double in [0, 1).
        double u = static_cast<double>(Registry::next_rand(p.prng) >> 11) *
                   (1.0 / 9007199254740992.0);
        fire = (u < t.probability);
        break;
      }
      case Trigger::Kind::kDelayOnly:
        fire = false;
        sleep_ms = t.latency_ms;
        break;
    }
    if (fire) {
      ++p.fired;
      sleep_ms = t.latency_ms;
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fire;
}

}  // namespace detail

void arm(const std::string& point, Trigger trigger) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.arm_locked(point, trigger);
}

bool arm_spec(const std::string& spec, std::string* error) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.arm_spec_locked(spec, error);
}

void disarm_all() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.points.clear();
  reg.armed_count = 0;
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t hit_count(const std::string& point) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.hits;
}

std::uint64_t fired_count(const std::string& point) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.fired;
}

std::vector<std::string> known_points() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.points.size());
  for (const auto& kv : reg.points) names.push_back(kv.first);
  return names;
}

#endif  // QFTO_FAULTS_DISABLED

}  // namespace fault
}  // namespace qfto
