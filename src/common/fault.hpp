// Deterministic fault-injection framework — the robustness counterpart of the
// sanitizer matrix. Production code declares *named fault points* at the
// places that can actually fail in the field (socket send/recv, cache file
// I/O, worker job execution, SAT budget exhaustion, queue admission):
//
//   if (QFTO_FAULT_POINT("cache.save.write")) return false;  // injected fail
//
// and tests/chaos runs arm those points with triggers:
//
//   * always            — fire on every hit
//   * once:N            — fire exactly once, on the N-th hit (1-based)
//   * after:N           — fire on every hit after the first N
//   * prob:P[:SEED]     — fire with probability P per hit, seeded
//                         (splitmix64), so a chaos run replays bit-identically
//   * delay:MS          — latency-only: sleep MS milliseconds, never "fire"
//
// Any trigger may carry a latency suffix `@MS` (sleep MS ms whenever the
// trigger fires) — e.g. `net.send.fail=prob:0.1:42@5`.
//
// Arming channels, in precedence order:
//   1. programmatic test API (arm / arm_spec / disarm_all below),
//   2. the `--faults SPEC` CLI flag (qftmap passes it to arm_spec),
//   3. the QFTO_FAULTS environment variable (parsed on first use).
// A SPEC is `name=trigger[;name=trigger...]`.
//
// Cost model: compiled out entirely under -DQFTO_FAULTS=OFF (the macro folds
// to `false` at compile time); when compiled in but disarmed, a fault point
// is one relaxed atomic load and a predictable branch — cheap enough to keep
// in Debug/sanitizer builds' hot paths. Hit/fired counters are kept per
// point while *any* point is armed, so chaos tests can assert that the paths
// they meant to exercise were actually reached.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace qfto {
namespace fault {

/// True when the framework was compiled in (QFTO_FAULTS=ON builds). Tests
/// that need injection GTEST_SKIP when this is false.
bool compiled_in();

/// One armed trigger. Build with the helpers below or parse from a spec.
struct Trigger {
  enum class Kind { kAlways, kOnce, kAfter, kProb, kDelayOnly };
  Kind kind = Kind::kAlways;
  std::uint64_t count = 0;     // kOnce: the hit to fire on; kAfter: threshold
  double probability = 0.0;    // kProb
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  // kProb PRNG seed
  std::uint32_t latency_ms = 0;  // sleep when the trigger fires (or on every
                                 // hit for kDelayOnly)
};

Trigger always();
Trigger once(std::uint64_t nth_hit);
Trigger after(std::uint64_t hits);
Trigger prob(double probability, std::uint64_t seed = 1);
Trigger delay_ms(std::uint32_t ms);

/// Arms (or re-arms, resetting counters) one point. No-op when compiled out.
void arm(const std::string& point, Trigger trigger);

/// Parses and arms a `name=trigger[;name=trigger...]` spec (the CLI/env
/// grammar). False with a message in `error` on a malformed spec; points
/// armed before the bad clause stay armed.
bool arm_spec(const std::string& spec, std::string* error = nullptr);

/// Disarms every point and zeroes all counters. Tests call this in
/// SetUp/TearDown so armed faults never leak across test cases.
void disarm_all();

/// Times the point was evaluated / actually fired since it was armed (0 for
/// never-armed points). Hits are counted for every *known* point while the
/// framework is enabled — including observed-but-unarmed points, which are
/// auto-registered so coverage can be asserted.
std::uint64_t hit_count(const std::string& point);
std::uint64_t fired_count(const std::string& point);

/// Every point name seen (armed or observed) since the last disarm_all().
std::vector<std::string> known_points();

// ------------------------------------------------------------- hot path --

namespace detail {
/// True when at least one point is armed — the only state the disarmed fast
/// path reads.
extern std::atomic<bool> g_enabled;
/// Slow path: look up `point`, count the hit, evaluate its trigger (and
/// sleep out any injected latency). Only called while g_enabled.
bool should_fire(const char* point);
}  // namespace detail

/// The fault-point check behind QFTO_FAULT_POINT. Inline so the disarmed
/// case is one relaxed load at the call site.
inline bool check(const char* point) {
#ifdef QFTO_FAULTS_DISABLED
  (void)point;
  return false;
#else
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return false;
  return detail::should_fire(point);
#endif
}

}  // namespace fault
}  // namespace qfto

/// Canonical call-site spelling: branch-on-atomic-load when armed-but-cold,
/// constant false when compiled out.
#define QFTO_FAULT_POINT(name) ::qfto::fault::check(name)
