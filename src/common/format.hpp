// Small text helpers for table-style benchmark output (no external deps).
#pragma once

#include <string>
#include <vector>

namespace qfto {

/// Right-pads (or truncates) `s` to `width` characters.
std::string pad(const std::string& s, std::size_t width);

/// Formats a double with `prec` digits after the decimal point.
std::string fmt_double(double v, int prec = 2);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Simple fixed-width table printer used by the bench binaries so that every
/// table in the paper is emitted in a uniform, diffable format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to a string.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qfto
