#include "common/format.hpp"

#include <algorithm>
#include <cstdio>

namespace qfto {

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  std::string out = s;
  out.append(width - s.size(), ' ');
  return out;
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c] + 2);
  }
  out += '\n';
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += pad(row[c], widths[c] + 2);
    }
    out += '\n';
  }
  return out;
}

}  // namespace qfto
