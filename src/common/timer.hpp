// Wall-clock timer used to report compilation times (Table 1 "CT(s)") and to
// enforce solver timeouts (SATMAP's 2-hour budget, scaled down for CI).
#pragma once

#include <chrono>

namespace qfto {

class WallTimer {
 public:
  WallTimer();

  /// Seconds elapsed since construction or the last reset().
  double seconds() const;

  void reset();

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deadline helper: `Deadline d(1.5); ... if (d.expired()) abort_search();`
class Deadline {
 public:
  /// A non-positive budget means "never expires".
  explicit Deadline(double budget_seconds);

  bool expired() const;

  /// Seconds left, clamped at 0 once the budget is exhausted. Careful when
  /// forwarding this as another budget: consumers that treat a non-positive
  /// budget as "never expires" (e.g. sat::Solver::solve) must check
  /// expired() first, or a run that exhausts its budget between calls gets
  /// an *unlimited* continuation instead of an immediate timeout.
  double remaining_seconds() const;

 private:
  WallTimer timer_;
  double budget_;
};

}  // namespace qfto
