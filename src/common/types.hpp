// Core scalar types and small helpers shared across qfto.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace qfto {

/// Index of a *logical* qubit (program qubit). QFT on n qubits uses 0..n-1.
using LogicalQubit = std::int32_t;

/// Index of a *physical* qubit (hardware node in a coupling graph).
using PhysicalQubit = std::int32_t;

/// A scheduled time step (cycle) in a layered circuit.
using Cycle = std::int64_t;

inline constexpr LogicalQubit kInvalidQubit = -1;

/// Throwing assert used for API-contract violations; active in all builds so
/// that the verification layers can rely on it in release benchmarks. The
/// const char* overload keeps literal-message call sites allocation-free on
/// the success path (hot loops call require per gate).
inline void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace qfto
