#include "common/timer.hpp"

namespace qfto {

WallTimer::WallTimer() : start_(std::chrono::steady_clock::now()) {}

double WallTimer::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

void WallTimer::reset() { start_ = std::chrono::steady_clock::now(); }

Deadline::Deadline(double budget_seconds) : budget_(budget_seconds) {}

bool Deadline::expired() const {
  return budget_ > 0.0 && timer_.seconds() >= budget_;
}

double Deadline::remaining_seconds() const {
  if (budget_ <= 0.0) return 1e300;
  const double r = budget_ - timer_.seconds();
  return r > 0.0 ? r : 0.0;
}

}  // namespace qfto
