#include "common/prng.hpp"

namespace qfto {

SplitMix64::SplitMix64(std::uint64_t seed) : state_(seed) {}

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256ss::operator()() {
  auto rotl = [](std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::uniform(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for the
  // bounds used in this codebase but we keep the rejection loop for rigor.
  if (bound == 0) return 0;
  while (true) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Xoshiro256ss::uniform_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace qfto
