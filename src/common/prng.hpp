// Deterministic, seed-stable PRNGs. SABRE trials and the synthesizer need
// reproducible randomness across platforms, so we do not use std::mt19937
// distributions (whose outputs are implementation-defined for some adaptors).
#pragma once

#include <array>
#include <cstdint>

namespace qfto {

/// SplitMix64: used to seed other generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed);
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, tiny state.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed = 0x5eed5eedULL);

  std::uint64_t operator()();

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace qfto
