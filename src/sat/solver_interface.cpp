#include "sat/solver_interface.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "sat/dpll_solver.hpp"
#include "sat/solver.hpp"

namespace qfto::sat {

bool SolverInterface::dump_dimacs(const std::string& path,
                                  const std::vector<Lit>& extra_units) const {
  std::ofstream out(path);
  if (!out) return false;
  dump_dimacs(out, extra_units);
  return static_cast<bool>(out);
}

void write_dimacs(std::ostream& out, const std::string& backend,
                  bool root_unsat, std::int32_t num_vars,
                  const Lit* root_facts, std::size_t num_root_facts,
                  const std::vector<const std::vector<Lit>*>& clauses,
                  const std::vector<Lit>& extra_units) {
  const auto emit_lit = [&out](Lit l) {
    out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
  };
  out << "c qfto " << backend
      << " instance (original clauses + root-level facts)\n";
  if (root_unsat) {
    // A root contradiction was reached while adding clauses; the original
    // clause set is no longer recoverable, so emit a minimal UNSAT core.
    out << "c instance is UNSAT at the root\np cnf 1 2\n1 0\n-1 0\n";
    return;
  }
  out << "p cnf " << std::max<std::int32_t>(1, num_vars) << ' '
      << num_root_facts + clauses.size() + extra_units.size() << '\n';
  for (std::size_t i = 0; i < num_root_facts; ++i) {
    emit_lit(root_facts[i]);
    out << "0\n";
  }
  for (const std::vector<Lit>* clause : clauses) {
    for (const Lit l : *clause) emit_lit(l);
    out << "0\n";
  }
  for (const Lit l : extra_units) {
    emit_lit(l);
    out << "0\n";
  }
}

namespace {

struct Registry {
  Registry() {
    factories["cdcl"] = [] {
      return std::unique_ptr<SolverInterface>(std::make_unique<Solver>());
    };
    factories["dpll"] = [] {
      return std::unique_ptr<SolverInterface>(std::make_unique<DpllSolver>());
    };
  }

  std::mutex mutex;
  std::map<std::string, SolverFactory> factories;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_solver_backend(const std::string& name, SolverFactory factory) {
  if (name.empty()) throw std::invalid_argument("sat: empty backend name");
  if (!factory) throw std::invalid_argument("sat: null backend factory");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> solver_backend_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [key, factory] : r.factories) names.push_back(key);
  return names;  // std::map iteration order is already sorted
}

bool has_solver_backend(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.factories.count(name) != 0;
}

std::unique_ptr<SolverInterface> make_solver(const std::string& name) {
  SolverFactory factory;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it != r.factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const auto& key : solver_backend_names()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::invalid_argument("sat: unknown solver backend '" + name +
                                "' (known: " + known + ")");
  }
  return factory();
}

}  // namespace qfto::sat
