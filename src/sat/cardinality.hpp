// Cardinality encodings over our SAT solver: exactly-one (pairwise) and
// at-most-k (sequential counter, Sinz 2005) — the pieces SATMAP needs for
// mapping injectivity and SWAP-budget constraints.
#pragma once

#include <vector>

#include "sat/solver_interface.hpp"

namespace qfto::sat {

/// At least one of `lits`.
void add_at_least_one(SolverInterface& s, const std::vector<Lit>& lits);

/// Pairwise at-most-one.
void add_at_most_one(SolverInterface& s, const std::vector<Lit>& lits);

void add_exactly_one(SolverInterface& s, const std::vector<Lit>& lits);

/// Sinz sequential-counter registers over `lits`: r[i][j] = "at least j+1
/// of lits[0..i]", encoded with one-directional implications (enough for
/// enforcement). Requires 1 <= width <= lits.size(). The last row
/// r[n-1][j] is the unary output chain "at least j+1 of all lits" —
/// assume its negations to tighten a bound incrementally (SATMAP's SWAP
/// descent), or pair the registers with overflow clauses for a baked-in
/// bound (add_at_most_k below).
std::vector<std::vector<Lit>> add_sequential_counter(SolverInterface& s,
                                                     const std::vector<Lit>& lits,
                                                     std::int32_t width);

/// Sequential-counter at-most-k (creates O(n*k) auxiliary variables).
void add_at_most_k(SolverInterface& s, const std::vector<Lit>& lits, std::int32_t k);

}  // namespace qfto::sat
