// Cardinality encodings over our SAT solver: exactly-one (pairwise) and
// at-most-k (sequential counter, Sinz 2005) — the pieces SATMAP needs for
// mapping injectivity and SWAP-budget constraints.
#pragma once

#include <vector>

#include "sat/solver.hpp"

namespace qfto::sat {

/// At least one of `lits`.
void add_at_least_one(Solver& s, const std::vector<Lit>& lits);

/// Pairwise at-most-one.
void add_at_most_one(Solver& s, const std::vector<Lit>& lits);

void add_exactly_one(Solver& s, const std::vector<Lit>& lits);

/// Sequential-counter at-most-k (creates O(n*k) auxiliary variables).
void add_at_most_k(Solver& s, const std::vector<Lit>& lits, std::int32_t k);

}  // namespace qfto::sat
