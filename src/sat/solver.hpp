// Self-contained CDCL SAT solver — the "cdcl" backend behind SolverInterface
// and the substrate under the SATMAP baseline (Molavi et al., MICRO'22, use a
// MaxSAT engine; we reproduce the behaviour with our own solver so the
// repository has no external dependencies).
// Features: two-watched-literal propagation, first-UIP clause learning,
// EVSIDS-style activity ordering, Luby restarts, phase saving, a wall-clock
// budget so callers can reproduce the paper's "TLE after 2h" outcomes at
// friendlier time scales, and MiniSat-style solve-under-assumptions:
// assumption literals are pinned as the first decision levels of every
// restart, learnt clauses are retained across calls (they are implied by the
// clause database alone, never by a call's assumptions), and kUnsat under
// assumptions leaves the instance reusable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/timer.hpp"
#include "sat/solver_interface.hpp"

namespace qfto::sat {

class Solver final : public SolverInterface {
 public:
  Solver() = default;

  std::string name() const override { return "cdcl"; }

  /// Creates a fresh variable, returns its index.
  std::int32_t new_var() override;
  std::int32_t num_vars() const override {
    return static_cast<std::int32_t>(phase_.size());
  }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  /// Backtracks to the root level first, so the model of a previous kSat
  /// call is invalidated — extract models before growing the instance.
  void add_clause(std::vector<Lit> lits) override;

  /// Solves under `assumptions` with an optional wall-clock budget (<= 0:
  /// unlimited). See SolverInterface::solve for the cancel contract.
  Result solve(const std::vector<Lit>& assumptions,
               double budget_seconds = 0.0,
               const std::atomic<bool>* cancel = nullptr) override;

  /// Assumption-free legacy entry point (pre-interface callers).
  Result solve(double budget_seconds = 0.0,
               const std::atomic<bool>* cancel = nullptr) {
    return solve(kNoAssumptions, budget_seconds, cancel);
  }

  /// Model access after kSat.
  bool value(std::int32_t var) const override;

  SolverStats stats() const override;
  void dump_dimacs(std::ostream& out,
                   const std::vector<Lit>& extra_units = {}) const override;
  using SolverInterface::dump_dimacs;

  /// IPASIR-style cooperative interrupt (the hook the in-tree IPASIR stub
  /// rides): when set, polled at the same cadence as the cancel flag, and a
  /// true return aborts the running solve() with kTimeout. Replaces any
  /// previous hook; pass {} to clear. Not thread-safe against a running
  /// solve — install it between calls, like IPASIR prescribes.
  void set_terminate(std::function<bool()> hook) {
    terminate_ = std::move(hook);
  }

  /// Seeds per-variable phase/activity jitter so portfolio lanes explore
  /// the space in different orders; applies to existing variables and, via
  /// the stored seed, to every variable created later. Seed 0 restores the
  /// deterministic default (all-false phases, zero activity).
  void diversify(std::uint64_t seed) override;

  std::int64_t num_conflicts() const { return conflicts_; }
  std::int64_t num_decisions() const { return decisions_; }
  std::int64_t num_clauses() const { return static_cast<std::int64_t>(clauses_.size()); }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };

  enum : std::int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  static const std::vector<Lit> kNoAssumptions;

  std::int8_t lit_value(Lit l) const {
    const std::int8_t v = assign_[l.var()];
    if (v == kUndef) return kUndef;
    return l.sign() ? static_cast<std::int8_t>(-v) : v;
  }

  void enqueue(Lit l, std::int32_t reason);
  std::int32_t propagate();  // returns conflicting clause index or -1
  void analyze(std::int32_t confl, std::vector<Lit>& learnt, std::int32_t& bt);
  void backtrack(std::int32_t level);
  Lit pick_branch();
  void bump_var(std::int32_t v);
  void decay_var_activity();
  void reduce_learnts();
  void simplify_at_root();
  static std::int64_t luby(std::int64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<std::int32_t>> watches_;  // per literal code
  std::vector<std::int8_t> assign_;                 // per var
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> reason_;  // clause index or -1
  std::vector<std::uint8_t> phase_;   // saved phases
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;
  double var_inc_ = 1.0;
  bool unsat_ = false;
  std::int64_t conflicts_ = 0;
  std::int64_t decisions_ = 0;
  std::int64_t propagations_ = 0;
  std::int64_t restarts_ = 0;
  std::int64_t solve_calls_ = 0;
  std::function<bool()> terminate_;
  std::uint64_t diversify_seed_ = 0;

  // Binary-heap order on activity, rebuilt lazily (simple and adequate for
  // the instance sizes SATMAP reaches before TLE).
  std::vector<std::int32_t> order_;
  void rebuild_order();

  /// Root-trail size at the last simplify_at_root(), so incremental calls
  /// only pay for re-simplification when new root facts arrived.
  std::size_t simplified_at_ = 0;
};

}  // namespace qfto::sat
