// Self-contained CDCL SAT solver — the substrate under the SATMAP baseline
// (Molavi et al., MICRO'22, use a MaxSAT engine; we reproduce the behaviour
// with our own solver so the repository has no external dependencies).
// Features: two-watched-literal propagation, first-UIP clause learning,
// EVSIDS-style activity ordering, Luby restarts, phase saving, and a
// wall-clock budget so callers can reproduce the paper's "TLE after 2h"
// outcomes at friendlier time scales.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/timer.hpp"

namespace qfto::sat {

/// Literal: variable v (0-based) with sign; encoded as 2v (positive) or
/// 2v+1 (negated).
struct Lit {
  std::int32_t code = -1;

  static Lit pos(std::int32_t v) { return Lit{2 * v}; }
  static Lit neg(std::int32_t v) { return Lit{2 * v + 1}; }
  Lit operator~() const { return Lit{code ^ 1}; }
  std::int32_t var() const { return code >> 1; }
  bool sign() const { return code & 1; }  // true = negated
  bool operator==(const Lit& o) const { return code == o.code; }
};

enum class Result { kSat, kUnsat, kTimeout };

class Solver {
 public:
  Solver() = default;

  /// Creates a fresh variable, returns its index.
  std::int32_t new_var();
  std::int32_t num_vars() const { return static_cast<std::int32_t>(phase_.size()); }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  void add_clause(std::vector<Lit> lits);
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  /// a -> b.
  void add_implication(Lit a, Lit b) { add_clause({~a, b}); }

  /// Solves with an optional wall-clock budget (<=0: unlimited). `cancel`,
  /// when non-null, is polled at the same cadence as the deadline: another
  /// thread flipping it true makes solve() return kTimeout within a few
  /// thousand decisions — the cooperative-cancellation hook the mapping
  /// service uses to abort in-flight SATMAP jobs.
  Result solve(double budget_seconds = 0.0,
               const std::atomic<bool>* cancel = nullptr);

  /// Model access after kSat.
  bool value(std::int32_t var) const;

  std::int64_t num_conflicts() const { return conflicts_; }
  std::int64_t num_decisions() const { return decisions_; }
  std::int64_t num_clauses() const { return static_cast<std::int64_t>(clauses_.size()); }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };

  enum : std::int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  std::int8_t lit_value(Lit l) const {
    const std::int8_t v = assign_[l.var()];
    if (v == kUndef) return kUndef;
    return l.sign() ? static_cast<std::int8_t>(-v) : v;
  }

  void enqueue(Lit l, std::int32_t reason);
  std::int32_t propagate();  // returns conflicting clause index or -1
  void analyze(std::int32_t confl, std::vector<Lit>& learnt, std::int32_t& bt);
  void backtrack(std::int32_t level);
  Lit pick_branch();
  void bump_var(std::int32_t v);
  void decay_var_activity();
  void reduce_learnts();
  static std::int64_t luby(std::int64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<std::int32_t>> watches_;  // per literal code
  std::vector<std::int8_t> assign_;                 // per var
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> reason_;  // clause index or -1
  std::vector<std::uint8_t> phase_;   // saved phases
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;
  double var_inc_ = 1.0;
  bool unsat_ = false;
  std::int64_t conflicts_ = 0;
  std::int64_t decisions_ = 0;

  // Binary-heap order on activity, rebuilt lazily (simple and adequate for
  // the instance sizes SATMAP reaches before TLE).
  std::vector<std::int32_t> order_;
  void rebuild_order();
};

}  // namespace qfto::sat
