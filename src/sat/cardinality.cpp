#include "sat/cardinality.hpp"

#include "common/types.hpp"

namespace qfto::sat {

void add_at_least_one(SolverInterface& s, const std::vector<Lit>& lits) {
  s.add_clause(lits);
}

void add_at_most_one(SolverInterface& s, const std::vector<Lit>& lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      s.add_binary(~lits[i], ~lits[j]);
    }
  }
}

void add_exactly_one(SolverInterface& s, const std::vector<Lit>& lits) {
  add_at_least_one(s, lits);
  add_at_most_one(s, lits);
}

std::vector<std::vector<Lit>> add_sequential_counter(
    SolverInterface& s, const std::vector<Lit>& lits, std::int32_t width) {
  const std::int32_t n = static_cast<std::int32_t>(lits.size());
  qfto::require(width >= 1 && width <= n,
                "add_sequential_counter: width out of range");
  std::vector<std::vector<Lit>> r(n, std::vector<Lit>(width));
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < width; ++j) r[i][j] = Lit::pos(s.new_var());
  }
  // x0 -> r[0][0]
  s.add_implication(lits[0], r[0][0]);
  for (std::int32_t j = 1; j < width; ++j) s.add_unit(~r[0][j]);
  for (std::int32_t i = 1; i < n; ++i) {
    s.add_implication(lits[i], r[i][0]);
    s.add_implication(r[i - 1][0], r[i][0]);
    for (std::int32_t j = 1; j < width; ++j) {
      // x_i ∧ r[i-1][j-1] -> r[i][j]
      s.add_ternary(~lits[i], ~r[i - 1][j - 1], r[i][j]);
      s.add_implication(r[i - 1][j], r[i][j]);
    }
  }
  return r;
}

void add_at_most_k(SolverInterface& s, const std::vector<Lit>& lits, std::int32_t k) {
  qfto::require(k >= 0, "add_at_most_k: negative k");
  const std::int32_t n = static_cast<std::int32_t>(lits.size());
  if (k >= n) return;
  if (k == 0) {
    for (Lit l : lits) s.add_unit(~l);
    return;
  }
  const auto r = add_sequential_counter(s, lits, k);
  for (std::int32_t i = 1; i < n; ++i) {
    // x_i ∧ r[i-1][k-1] -> conflict
    s.add_binary(~lits[i], ~r[i - 1][k - 1]);
  }
}

}  // namespace qfto::sat
