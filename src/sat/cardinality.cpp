#include "sat/cardinality.hpp"

#include "common/types.hpp"

namespace qfto::sat {

void add_at_least_one(Solver& s, const std::vector<Lit>& lits) {
  s.add_clause(lits);
}

void add_at_most_one(Solver& s, const std::vector<Lit>& lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      s.add_binary(~lits[i], ~lits[j]);
    }
  }
}

void add_exactly_one(Solver& s, const std::vector<Lit>& lits) {
  add_at_least_one(s, lits);
  add_at_most_one(s, lits);
}

void add_at_most_k(Solver& s, const std::vector<Lit>& lits, std::int32_t k) {
  qfto::require(k >= 0, "add_at_most_k: negative k");
  const std::int32_t n = static_cast<std::int32_t>(lits.size());
  if (k >= n) return;
  if (k == 0) {
    for (Lit l : lits) s.add_unit(~l);
    return;
  }
  // Sinz sequential counter: r[i][j] = "at least j+1 of the first i+1 lits".
  std::vector<std::vector<std::int32_t>> r(n, std::vector<std::int32_t>(k));
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < k; ++j) r[i][j] = s.new_var();
  }
  // x0 -> r[0][0]
  s.add_implication(lits[0], Lit::pos(r[0][0]));
  for (std::int32_t j = 1; j < k; ++j) s.add_unit(~Lit::pos(r[0][j]));
  for (std::int32_t i = 1; i < n; ++i) {
    s.add_implication(lits[i], Lit::pos(r[i][0]));
    s.add_implication(Lit::pos(r[i - 1][0]), Lit::pos(r[i][0]));
    for (std::int32_t j = 1; j < k; ++j) {
      // x_i ∧ r[i-1][j-1] -> r[i][j]
      s.add_ternary(~lits[i], ~Lit::pos(r[i - 1][j - 1]), Lit::pos(r[i][j]));
      s.add_implication(Lit::pos(r[i - 1][j]), Lit::pos(r[i][j]));
    }
    // x_i ∧ r[i-1][k-1] -> conflict
    s.add_binary(~lits[i], ~Lit::pos(r[i - 1][k - 1]));
  }
}

}  // namespace qfto::sat
