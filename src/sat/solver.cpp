#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/fault.hpp"
#include "common/types.hpp"

namespace qfto::sat {

const std::vector<Lit> Solver::kNoAssumptions;

namespace {

/// SplitMix64 finalizer — the per-variable hash behind diversify(). Local
/// so the solver stays dependency-free.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::int32_t Solver::new_var() {
  const std::int32_t v = num_vars();
  assign_.push_back(kUndef);
  level_.push_back(-1);
  reason_.push_back(-1);
  phase_.push_back(0);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  if (diversify_seed_ != 0) {
    const std::uint64_t h = mix64(diversify_seed_ ^ static_cast<std::uint64_t>(v));
    phase_.back() = static_cast<std::uint8_t>(h & 1);
    // Sub-unit jitter: breaks activity ties between lanes without ever
    // outranking a genuinely bumped variable.
    activity_.back() = static_cast<double>(h >> 40) * 1e-9;
  }
  return v;
}

void Solver::diversify(std::uint64_t seed) {
  diversify_seed_ = seed;
  for (std::int32_t v = 0; v < num_vars(); ++v) {
    if (seed == 0) {
      phase_[v] = 0;
      activity_[v] = 0.0;
      continue;
    }
    const std::uint64_t h = mix64(seed ^ static_cast<std::uint64_t>(v));
    phase_[v] = static_cast<std::uint8_t>(h & 1);
    activity_[v] = static_cast<double>(h >> 40) * 1e-9;
  }
  rebuild_order();
}

void Solver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return;
  // Incremental use adds clauses between solve() calls; the level-0
  // simplification and watch initialization below are only sound at the root,
  // so drop any leftover search state (this invalidates a previous model).
  if (!trail_lim_.empty()) backtrack(0);
  // Normalize: drop duplicate literals; detect tautologies.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) return;  // x ∨ ¬x: tautology
  }
  // Remove literals already false at level 0; satisfied clauses are dropped.
  std::vector<Lit> kept;
  for (Lit l : lits) {
    require(l.var() >= 0 && l.var() < num_vars(), "add_clause: unknown var");
    const std::int8_t v = lit_value(l);
    if (v == kTrue && level_[l.var()] == 0) return;
    if (v == kFalse && level_[l.var()] == 0) continue;
    kept.push_back(l);
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    if (lit_value(kept[0]) == kFalse) {
      unsat_ = true;
    } else if (lit_value(kept[0]) == kUndef) {
      enqueue(kept[0], -1);
      if (propagate() >= 0) unsat_ = true;
    }
    return;
  }
  const std::int32_t ci = static_cast<std::int32_t>(clauses_.size());
  clauses_.push_back({std::move(kept), false, 0.0});
  watches_[clauses_[ci].lits[0].code].push_back(ci);
  watches_[clauses_[ci].lits[1].code].push_back(ci);
}

void Solver::enqueue(Lit l, std::int32_t reason) {
  assign_[l.var()] = l.sign() ? kFalse : kTrue;
  level_[l.var()] =
      static_cast<std::int32_t>(trail_lim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

std::int32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    // Clauses watching ~p must find a new watch or propagate/conflict.
    auto& watch_list = watches_[(~p).code];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
      const std::int32_t ci = watch_list[wi];
      auto& lits = clauses_[ci].lits;
      // Ensure the falsified literal is at slot 1.
      if (lits[0] == ~p) std::swap(lits[0], lits[1]);
      if (lit_value(lits[0]) == kTrue) {
        watch_list[keep++] = ci;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (lit_value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[lits[1].code].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      watch_list[keep++] = ci;
      if (lit_value(lits[0]) == kFalse) {
        // Conflict: keep remaining watches and report.
        for (std::size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      enqueue(lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump_var(std::int32_t v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void Solver::decay_var_activity() { var_inc_ *= (1.0 / 0.95); }

void Solver::analyze(std::int32_t confl, std::vector<Lit>& learnt,
                     std::int32_t& bt_level) {
  learnt.clear();
  learnt.push_back(Lit{-1});  // slot for the asserting literal
  std::vector<std::uint8_t> seen(num_vars(), 0);
  std::int32_t counter = 0;
  Lit p{-1};
  std::size_t index = trail_.size();
  const std::int32_t current_level =
      static_cast<std::int32_t>(trail_lim_.size());

  std::int32_t ci = confl;
  do {
    const auto& lits = clauses_[ci].lits;
    for (const Lit q : lits) {
      if (p.code != -1 && q == p) continue;
      if (!seen[q.var()] && level_[q.var()] > 0) {
        seen[q.var()] = 1;
        bump_var(q.var());
        if (level_[q.var()] >= current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk back the trail to the next marked literal.
    while (!seen[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen[p.var()] = 0;
    ci = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
}

void Solver::backtrack(std::int32_t target_level) {
  while (static_cast<std::int32_t>(trail_lim_.size()) > target_level) {
    const std::int32_t lim = trail_lim_.back();
    trail_lim_.pop_back();
    while (static_cast<std::int32_t>(trail_.size()) > lim) {
      const Lit l = trail_.back();
      trail_.pop_back();
      phase_[l.var()] = l.sign() ? 0 : 1;
      assign_[l.var()] = kUndef;
      reason_[l.var()] = -1;
      level_[l.var()] = -1;
    }
  }
  qhead_ = trail_.size();
}

void Solver::rebuild_order() {
  order_.resize(num_vars());
  for (std::int32_t v = 0; v < num_vars(); ++v) order_[v] = v;
  std::sort(order_.begin(), order_.end(), [this](std::int32_t a, std::int32_t b) {
    return activity_[a] > activity_[b];
  });
}

Lit Solver::pick_branch() {
  for (std::int32_t v : order_) {
    if (assign_[v] == kUndef) {
      return phase_[v] ? Lit::pos(v) : Lit::neg(v);
    }
  }
  for (std::int32_t v = 0; v < num_vars(); ++v) {
    if (assign_[v] == kUndef) return phase_[v] ? Lit::pos(v) : Lit::neg(v);
  }
  return Lit{-1};
}

void Solver::reduce_learnts() {
  // Simple policy: drop the lower-activity half of long learnt clauses that
  // are not currently reasons. Rebuild watches afterwards.
  std::vector<Clause> kept;
  std::vector<std::uint8_t> is_reason(clauses_.size(), 0);
  for (std::int32_t v = 0; v < num_vars(); ++v) {
    if (reason_[v] >= 0) is_reason[reason_[v]] = 1;
  }
  std::vector<double> acts;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].learnt && !is_reason[i] && clauses_[i].lits.size() > 2) {
      acts.push_back(clauses_[i].activity);
    }
  }
  if (acts.size() < 64) return;
  std::nth_element(acts.begin(), acts.begin() + acts.size() / 2, acts.end());
  const double cutoff = acts[acts.size() / 2];

  std::vector<std::int32_t> remap(clauses_.size(), -1);
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    const bool drop = clauses_[i].learnt && !is_reason[i] &&
                      clauses_[i].lits.size() > 2 &&
                      clauses_[i].activity < cutoff;
    if (!drop) {
      remap[i] = static_cast<std::int32_t>(kept.size());
      kept.push_back(std::move(clauses_[i]));
    }
  }
  for (std::int32_t v = 0; v < num_vars(); ++v) {
    if (reason_[v] >= 0) reason_[v] = remap[reason_[v]];
  }
  clauses_ = std::move(kept);
  for (auto& w : watches_) w.clear();
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    watches_[clauses_[i].lits[0].code].push_back(static_cast<std::int32_t>(i));
    watches_[clauses_[i].lits[1].code].push_back(static_cast<std::int32_t>(i));
  }
}

void Solver::simplify_at_root() {
  // Root-level database simplification (MiniSat's simplifyDB): with the
  // trail at level 0 and propagation at fixpoint, drop every clause
  // satisfied by a root fact — retired SATMAP horizons turn whole clause
  // families into dead weight — and strip false literals from the rest.
  // Sound: removed clauses are implied by the remaining formula plus the
  // root facts, which dump_dimacs emits as units.
  if (!trail_lim_.empty() || simplified_at_ == trail_.size()) return;
  simplified_at_ = trail_.size();
  std::vector<Clause> kept;
  kept.reserve(clauses_.size());
  for (Clause& c : clauses_) {
    bool satisfied = false;
    std::size_t w = 0;
    for (const Lit l : c.lits) {
      const std::int8_t v = lit_value(l);
      if (v == kTrue) {
        satisfied = true;
        break;
      }
      if (v == kUndef) c.lits[w++] = l;
    }
    if (satisfied) continue;
    c.lits.resize(w);
    // Propagation fixpoint at the root leaves no unit or empty clause here:
    // a would-be unit has its remaining literal already true (satisfied).
    kept.push_back(std::move(c));
  }
  clauses_ = std::move(kept);
  // Root-assigned vars may hold reason indices into the old database; they
  // are never resolved (analyze skips level-0 literals), so drop them
  // rather than remap.
  for (std::int32_t v = 0; v < num_vars(); ++v) reason_[v] = -1;
  for (auto& wl : watches_) wl.clear();
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    watches_[clauses_[i].lits[0].code].push_back(
        static_cast<std::int32_t>(i));
    watches_[clauses_[i].lits[1].code].push_back(
        static_cast<std::int32_t>(i));
  }
}

std::int64_t Solver::luby(std::int64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 ...
  std::int64_t k = 1;
  while ((1ll << (k + 1)) <= i + 1) ++k;
  while ((1ll << k) - 1 != i + 1) {
    i = i - (1ll << k) + 1;
    k = 1;
    while ((1ll << (k + 1)) <= i + 1) ++k;
  }
  return 1ll << (k - 1);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     double budget_seconds, const std::atomic<bool>* cancel) {
  ++solve_calls_;
  if (unsat_) return Result::kUnsat;
  Deadline deadline(budget_seconds);
  const auto out_of_time = [&]() {
    return (cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
           (terminate_ && terminate_()) || deadline.expired();
  };
  if (out_of_time()) return Result::kTimeout;
  if (QFTO_FAULT_POINT("sat.budget.exhaust")) return Result::kTimeout;
  for (const Lit a : assumptions) {
    require(a.var() >= 0 && a.var() < num_vars(), "solve: unknown assumption");
  }
  // Incremental entry: drop the previous call's search state (keeping all
  // root-level facts and learnt clauses) and re-run root propagation, which
  // may now reach a contradiction from clauses added since.
  backtrack(0);
  if (propagate() >= 0) {
    unsat_ = true;
    return Result::kUnsat;
  }
  simplify_at_root();

  std::int64_t restart_idx = 0;
  std::int64_t conflicts_until_restart = 32 * luby(restart_idx);
  rebuild_order();

  while (true) {
    const std::int32_t confl = propagate();
    if (confl >= 0) {
      ++conflicts_;
      clauses_[confl].activity += 1.0;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return Result::kUnsat;
      }
      std::vector<Lit> learnt;
      std::int32_t bt = 0;
      analyze(confl, learnt, bt);
      // Learnt clauses resolve only clause-database reasons, so they are
      // implied by the formula alone — safe to retain across calls with
      // different assumptions. The backtrack may land inside the assumption
      // prefix; the decision step below re-establishes assumptions in order.
      backtrack(bt);
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        const std::int32_t ci = static_cast<std::int32_t>(clauses_.size());
        clauses_.push_back({learnt, true, 1.0});
        watches_[learnt[0].code].push_back(ci);
        watches_[learnt[1].code].push_back(ci);
        enqueue(learnt[0], ci);
      }
      decay_var_activity();
      if (--conflicts_until_restart <= 0) {
        backtrack(0);
        ++restarts_;
        conflicts_until_restart = 32 * luby(++restart_idx);
        rebuild_order();
        if (conflicts_ % 4096 == 0) reduce_learnts();
      }
      if ((conflicts_ & 255) == 0 && out_of_time()) {
        return Result::kTimeout;
      }
    } else {
      // Pin every assumption as its own decision level before any free
      // decision (MiniSat-style): already-true assumptions get an empty
      // level so level index keeps tracking assumption index; an assumption
      // that propagated false is UNSAT *under these assumptions* — the
      // instance itself stays usable.
      Lit next{-1};
      while (static_cast<std::size_t>(trail_lim_.size()) <
             assumptions.size()) {
        const Lit a = assumptions[trail_lim_.size()];
        const std::int8_t v = lit_value(a);
        if (v == kTrue) {
          trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
          continue;
        }
        if (v == kFalse) {
          backtrack(0);
          return Result::kUnsat;
        }
        next = a;
        break;
      }
      if (next.code == -1) next = pick_branch();
      if (next.code == -1) return Result::kSat;
      ++decisions_;
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      enqueue(next, -1);
      if ((decisions_ & 1023) == 0) {
        if (out_of_time()) return Result::kTimeout;
        rebuild_order();
      }
    }
  }
}

bool Solver::value(std::int32_t var) const { return assign_[var] == kTrue; }

SolverStats Solver::stats() const {
  SolverStats s;
  s.conflicts = conflicts_;
  s.decisions = decisions_;
  s.propagations = propagations_;
  s.restarts = restarts_;
  s.solve_calls = solve_calls_;
  s.clauses = static_cast<std::int64_t>(clauses_.size());
  s.vars = num_vars();
  return s;
}

void Solver::dump_dimacs(std::ostream& out,
                         const std::vector<Lit>& extra_units) const {
  // Root-level facts: original unit clauses land on the trail, not in the
  // clause database, and level-0 propagations are implied, so dumping the
  // whole root prefix keeps the instance equivalent.
  const std::size_t root_end =
      trail_lim_.empty() ? trail_.size()
                         : static_cast<std::size_t>(trail_lim_[0]);
  std::vector<const std::vector<Lit>*> original;
  original.reserve(clauses_.size());
  for (const Clause& c : clauses_) {
    if (!c.learnt) original.push_back(&c.lits);
  }
  write_dimacs(out, name(), unsat_, num_vars(), trail_.data(), root_end,
               original, extra_units);
}

}  // namespace qfto::sat
