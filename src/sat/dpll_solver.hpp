// Reference "dpll" backend: iterative DPLL with two-watched-literal unit
// propagation, chronological backtracking and a fixed branching order — no
// learning, no restarts, no heuristics. Deliberately simple: its job is
// differential testing of the clever backend (same verdicts on every
// instance the conformance suite and small SATMAP probes can reach), not
// performance. Supports the full SolverInterface contract, including
// solve-under-assumptions (assumptions are non-flippable prefix decisions)
// and incremental clause addition between calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sat/solver_interface.hpp"

namespace qfto::sat {

class DpllSolver final : public SolverInterface {
 public:
  DpllSolver() = default;

  std::string name() const override { return "dpll"; }

  std::int32_t new_var() override;
  std::int32_t num_vars() const override {
    return static_cast<std::int32_t>(assign_.size());
  }

  void add_clause(std::vector<Lit> lits) override;

  Result solve(const std::vector<Lit>& assumptions,
               double budget_seconds = 0.0,
               const std::atomic<bool>* cancel = nullptr) override;

  bool value(std::int32_t var) const override;

  SolverStats stats() const override;
  void dump_dimacs(std::ostream& out,
                   const std::vector<Lit>& extra_units = {}) const override;
  using SolverInterface::dump_dimacs;

 private:
  enum : std::int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  struct Frame {
    Lit decision;
    std::int32_t trail_start = 0;
    bool flipped = false;     // second branch already taken
    bool assumption = false;  // pinned by the caller; never flipped
  };

  std::int8_t lit_value(Lit l) const {
    const std::int8_t v = assign_[l.var()];
    if (v == kUndef) return kUndef;
    return l.sign() ? static_cast<std::int8_t>(-v) : v;
  }

  void enqueue(Lit l);
  bool propagate();  // false on conflict
  void undo_to(std::int32_t trail_start);

  std::vector<std::vector<Lit>> clauses_;
  std::vector<std::vector<std::int32_t>> watches_;  // per literal code
  std::vector<std::int8_t> assign_;
  std::vector<Lit> trail_;
  std::vector<Frame> frames_;
  std::size_t qhead_ = 0;
  bool unsat_ = false;
  std::int64_t conflicts_ = 0;
  std::int64_t decisions_ = 0;
  std::int64_t propagations_ = 0;
  std::int64_t solve_calls_ = 0;
};

}  // namespace qfto::sat
