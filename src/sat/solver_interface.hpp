// Abstract incremental SAT backend — the narrow waist between SATMAP's
// time-expanded encodings and whatever engine decides them. Modeled on the
// interchangeable solver wrappers of synthesis tools (percy's solver_wrapper,
// the IPASIR surface standardized across solver competitions): new_var /
// add_clause / solve-under-assumptions / value / stats. Backends register in
// a string-keyed registry mirroring the MapperEngine registry in
// src/pipeline/, so alternative engines plug in behind SatmapOptions::solver
// without the encoding layer changing.
//
// Incremental contract:
//  - Clauses only accumulate; there is no retraction. Constraints that must
//    be switchable are gated behind an activation variable `a` (encode
//    `¬a ∨ C`, pass `a` as an assumption to enable, add unit `¬a` to retire).
//  - solve(assumptions, ...) decides the accumulated formula under the
//    conjunction of the assumption literals. kUnsat under assumptions does
//    NOT poison the instance: a later call with different assumptions may
//    be kSat. No UNSAT cores are exposed — callers own their assumptions.
//  - Anything a backend learns (CDCL learnt clauses, saved phases, activity)
//    may be retained across calls; retained knowledge must be implied by the
//    accumulated clauses alone, never by a previous call's assumptions.
//  - add_clause invalidates the model of a previous kSat; extract models
//    before growing the instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace qfto::sat {

/// Literal: variable v (0-based) with sign; encoded as 2v (positive) or
/// 2v+1 (negated).
struct Lit {
  std::int32_t code = -1;

  static Lit pos(std::int32_t v) { return Lit{2 * v}; }
  static Lit neg(std::int32_t v) { return Lit{2 * v + 1}; }
  Lit operator~() const { return Lit{code ^ 1}; }
  std::int32_t var() const { return code >> 1; }
  bool sign() const { return code & 1; }  // true = negated
  bool operator==(const Lit& o) const { return code == o.code; }
};

enum class Result { kSat, kUnsat, kTimeout };

/// Cumulative search-effort counters, kept across solve() calls so a whole
/// iterative-deepening run reads off one struct. Surfaced end-to-end:
/// SatmapResult::stats -> MapResult::timings.sat -> the --serve JSON line.
struct SolverStats {
  std::int64_t conflicts = 0;
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t restarts = 0;
  std::int64_t solve_calls = 0;
  std::int64_t clauses = 0;  // current database size (learnt included)
  std::int64_t vars = 0;

  SolverStats& operator+=(const SolverStats& o) {
    conflicts += o.conflicts;
    decisions += o.decisions;
    propagations += o.propagations;
    restarts += o.restarts;
    solve_calls += o.solve_calls;
    clauses += o.clauses;
    vars += o.vars;
    return *this;
  }
};

class SolverInterface {
 public:
  virtual ~SolverInterface() = default;

  /// Registry key this backend was created under ("cdcl", "dpll", ...).
  virtual std::string name() const = 0;

  /// Creates a fresh variable, returns its index.
  virtual std::int32_t new_var() = 0;
  virtual std::int32_t num_vars() const = 0;

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  /// Invalidates the model of a previous kSat call.
  virtual void add_clause(std::vector<Lit> lits) = 0;

  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }
  /// a -> b.
  void add_implication(Lit a, Lit b) { add_clause({~a, b}); }

  /// Decides the accumulated formula under `assumptions`, with an optional
  /// wall-clock budget (<= 0: unlimited). `cancel`, when non-null, is polled
  /// at the same cadence as the deadline: another thread flipping it true
  /// makes solve() return kTimeout within a few thousand decisions.
  virtual Result solve(const std::vector<Lit>& assumptions,
                       double budget_seconds = 0.0,
                       const std::atomic<bool>* cancel = nullptr) = 0;

  /// Model access after kSat (valid until the next add_clause/solve).
  virtual bool value(std::int32_t var) const = 0;

  /// Cumulative counters across all solve() calls on this instance.
  virtual SolverStats stats() const = 0;

  /// Portfolio hook: perturb heuristic state (branching order, saved
  /// phases) deterministically from `seed` so racing lanes explore the
  /// search space in different orders. Never changes verdicts or the set of
  /// models — only which one a kSat call lands on first. Backends without a
  /// useful notion of it (dpll's fixed order, external IPASIR solvers)
  /// inherit this no-op.
  virtual void diversify(std::uint64_t /*seed*/) {}

  /// Debug hook: writes the accumulated *original* instance (root-level
  /// facts as units, no learnt clauses) in DIMACS CNF, appending
  /// `extra_units` — typically the assumptions of the probe being debugged —
  /// as unit clauses so a TLE'd probe replays verbatim in external solvers.
  virtual void dump_dimacs(std::ostream& out,
                           const std::vector<Lit>& extra_units = {}) const = 0;

  /// File convenience over the stream overload; false when `path` cannot be
  /// opened for writing.
  bool dump_dimacs(const std::string& path,
                   const std::vector<Lit>& extra_units = {}) const;
};

/// Shared DIMACS emission for backends whose instance is "root facts as
/// units + original clauses": comment header, the root-UNSAT stub, the
/// p-line and 1-based literal encoding. Backends hand over their root-fact
/// trail prefix and pointers to their (original, non-learnt) clauses.
void write_dimacs(std::ostream& out, const std::string& backend,
                  bool root_unsat, std::int32_t num_vars,
                  const Lit* root_facts, std::size_t num_root_facts,
                  const std::vector<const std::vector<Lit>*>& clauses,
                  const std::vector<Lit>& extra_units);

// ------------------------------------------------------- backend registry --

using SolverFactory = std::function<std::unique_ptr<SolverInterface>()>;

/// Registers (or replaces, by name) a backend factory. The two in-tree
/// backends ("cdcl", "dpll") are pre-registered.
void register_solver_backend(const std::string& name, SolverFactory factory);

/// Registered keys, sorted.
std::vector<std::string> solver_backend_names();

bool has_solver_backend(const std::string& name);

/// Fresh instance of the named backend; throws std::invalid_argument naming
/// the known backends when absent.
std::unique_ptr<SolverInterface> make_solver(const std::string& name);

}  // namespace qfto::sat
