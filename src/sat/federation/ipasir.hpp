// The IPASIR C ABI surface (the incremental-SAT interface standardized by
// the solver competitions: Re-entrant Incremental Satisfiability Application
// Program Interface, spelled backwards). Two consumers share these types:
//
//  * the dlopen bridge (ipasir_bridge.cpp) resolves the symbols out of an
//    external shared object and adapts them to sat::SolverInterface;
//  * the in-tree shim (ipasir_stub.cpp) *implements* them over the "cdcl"
//    backend, compiled as libqfto_ipasir_stub.so, so the bridge is exercised
//    end-to-end with zero external dependencies.
//
// Only the core surface is required here; ipasir_set_learn is optional on
// purpose (several deployed solvers ship without a useful implementation).
//
// State machine (per the official header): after init the solver is in
// INPUT; add/assume keep it there; solve moves it to SAT (returns 10),
// UNSAT (20) or leaves INPUT on interrupt (0); val/failed are only valid in
// SAT/UNSAT respectively. Literals are non-zero DIMACS-style signed ints.
#pragma once

#include <cstdint>

namespace qfto::sat {

using IpasirSignatureFn = const char* (*)();
using IpasirInitFn = void* (*)();
using IpasirReleaseFn = void (*)(void*);
using IpasirAddFn = void (*)(void*, std::int32_t);
using IpasirAssumeFn = void (*)(void*, std::int32_t);
using IpasirSolveFn = int (*)(void*);
using IpasirValFn = std::int32_t (*)(void*, std::int32_t);
using IpasirFailedFn = int (*)(void*, std::int32_t);
using IpasirTerminateCallback = int (*)(void*);
using IpasirSetTerminateFn = void (*)(void*, void*, IpasirTerminateCallback);
using IpasirLearnCallback = void (*)(void*, std::int32_t*);
using IpasirSetLearnFn = void (*)(void*, void*, int, IpasirLearnCallback);

/// ipasir_solve return codes.
enum : int { kIpasirSat = 10, kIpasirUnsat = 20, kIpasirInterrupted = 0 };

/// Resolved function-pointer table of one IPASIR library. The table is
/// copied into every solver instance; the shared object behind it is never
/// unloaded (registered factories keep executing its code), so the pointers
/// stay valid for the process lifetime.
struct IpasirApi {
  IpasirSignatureFn signature = nullptr;
  IpasirInitFn init = nullptr;
  IpasirReleaseFn release = nullptr;
  IpasirAddFn add = nullptr;
  IpasirAssumeFn assume = nullptr;
  IpasirSolveFn solve = nullptr;
  IpasirValFn val = nullptr;
  IpasirFailedFn failed = nullptr;
  IpasirSetTerminateFn set_terminate = nullptr;
  IpasirSetLearnFn set_learn = nullptr;  // optional
};

}  // namespace qfto::sat
