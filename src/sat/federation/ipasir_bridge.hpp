// IPASIR bridge: external incremental SAT solvers federated behind
// sat::SolverInterface. A shared object exporting the IPASIR C ABI is
// dlopen'ed once (load_solver_plugin / QFTO_SOLVER_PLUGINS), its surface is
// resolved into an IpasirApi table, and a factory minting IpasirSolver
// instances over that table is registered in the same string-keyed backend
// registry the in-tree "cdcl"/"dpll" engines live in — SATMAP, the serve
// path and the conformance battery reach a federated solver exactly the way
// they reach a built-in one, by name.
//
// Contract notes:
//  * Cooperative cancel and the wall-clock budget ride ipasir_set_terminate:
//    the callback polls the caller's cancel atomic and a Deadline, so
//    mid-solve aborts work without the external solver knowing our types.
//  * The bridge mirrors every original clause locally for dump_dimacs —
//    IPASIR has no read-back — which costs memory proportional to the
//    instance, the price of keeping the TLE-replay debug path alive.
//  * Search-effort counters (conflicts/decisions/...) stay zero: IPASIR
//    exposes no statistics surface. solve_calls/clauses/vars are tracked
//    bridge-side, so served stats remain meaningful.
//  * Loaded libraries are never dlclose'd: registered factories (and any
//    live solver) keep executing code from them for the process lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sat/federation/ipasir.hpp"
#include "sat/solver_interface.hpp"

namespace qfto::sat {

/// Where a registry key comes from, for `qftmap --list-solvers`: operators
/// auditing a replica see exactly which code answers to each backend name.
struct BackendProvenance {
  std::string name;       // registry key
  bool plugin = false;    // false: compiled into the binary
  std::string path;       // shared-object path (plugins only)
  std::string signature;  // ipasir_signature() string (plugins only)
};

/// Loads an IPASIR shared object and registers it as a solver backend.
/// `spec` is `path.so` or `name=path.so`; without an explicit name the
/// registry key is derived from the file stem (`libfoo.so.5` -> "foo").
/// Returns the registry key. Throws std::runtime_error when the object
/// cannot be loaded or is missing part of the required IPASIR surface.
/// Re-loading an existing name replaces the backend (last load wins).
std::string load_solver_plugin(const std::string& spec);

/// Loads every colon-separated spec in $QFTO_SOLVER_PLUGINS (same `spec`
/// grammar). Returns the registry keys loaded; empty when the variable is
/// unset or empty. Throws on the first failing spec.
std::vector<std::string> load_solver_plugins_from_env();

/// One row per registered backend (built-ins included), sorted by name.
std::vector<BackendProvenance> backend_provenance();

/// SolverInterface adapter over one IPASIR library. Instances are minted by
/// the registered factory; constructing one directly is only useful in
/// tests that exercise the bridge against a hand-resolved table.
class IpasirSolver final : public SolverInterface {
 public:
  /// `api` must be fully resolved (set_learn may be null). Throws
  /// std::runtime_error when ipasir_init fails.
  IpasirSolver(std::string name, const IpasirApi& api);
  ~IpasirSolver() override;

  IpasirSolver(const IpasirSolver&) = delete;
  IpasirSolver& operator=(const IpasirSolver&) = delete;

  std::string name() const override { return name_; }

  std::int32_t new_var() override;
  std::int32_t num_vars() const override { return num_vars_; }

  void add_clause(std::vector<Lit> lits) override;

  Result solve(const std::vector<Lit>& assumptions,
               double budget_seconds = 0.0,
               const std::atomic<bool>* cancel = nullptr) override;

  bool value(std::int32_t var) const override;

  SolverStats stats() const override;
  void dump_dimacs(std::ostream& out,
                   const std::vector<Lit>& extra_units = {}) const override;
  using SolverInterface::dump_dimacs;

 private:
  std::string name_;
  IpasirApi api_;
  void* solver_ = nullptr;
  std::int32_t num_vars_ = 0;
  bool root_unsat_ = false;  // an empty clause was added
  std::vector<std::vector<Lit>> clauses_;  // originals, for dump_dimacs
  SolverStats stats_;
};

}  // namespace qfto::sat
