// Portfolio racer: one SolverInterface that fans every clause out to N
// diversified backend lanes and races them on each solve() — the first lane
// returning a definitive verdict (kSat/kUnsat) wins the probe and cancels
// its siblings through per-lane cooperative-cancel atomics, the same
// mechanism the serving layer uses for deadline aborts. Racing changes
// wall-clock, never answers: every lane decides the same formula, so the
// verdict (and SATMAP's minimal T / minimal SWAP count downstream) is
// bit-identical to a single-backend run. Which lane answers first — and
// therefore which satisfying model is extracted — is wall-clock dependent;
// that is the documented determinism caveat.
//
// Scheduling: lanes are ranked by their win count so far (the bandit-style
// lane-ordering heuristic) and rank r starts its solve r*stagger_us after
// rank 0 — easy probes are decided by the historically-best lane before the
// others spin up, hard probes get the full portfolio. Lane threads are
// persistent: spawned once at construction, parked on a condition variable
// between probes, joined at destruction.
//
// Threading contract: the PortfolioSolver itself is single-caller, like
// every SolverInterface — new_var/add_clause/solve/value from one thread.
// solve() returns only after ALL lanes left their inner solve (losers
// included), so a subsequent add_clause can never race a still-running
// lane.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sat/solver_interface.hpp"

namespace qfto::sat {

struct PortfolioOptions {
  /// Number of racing lanes. 1 degenerates to a pass-through wrapper.
  std::int32_t lanes = 2;
  /// Backends spread round-robin across lanes (lane i runs
  /// backends[i % size]); empty -> every lane runs "cdcl". Lanes running
  /// the same backend are told apart by their diversify() seed.
  std::vector<std::string> backends;
  /// Base of the per-lane diversify() seed (lane i gets seed + i; lane 0
  /// keeps the backend's deterministic default so a 1-lane portfolio is
  /// bit-identical to the bare backend).
  std::uint64_t seed = 0x9f07'83a5'21c4'6e01ULL;
  /// Head start: rank r waits r * stagger_us before starting its solve.
  /// 0 disables staggering (pure simultaneous racing).
  std::int64_t stagger_us = 200;
  /// Cap the effective lane count at the machine's hardware concurrency.
  /// Racing more lanes than cores is pure waste — the lanes time-slice one
  /// another and wall-clock degrades toward lanes * single-lane instead of
  /// best-lane — so production keeps this on; tests that must exercise real
  /// multi-lane racing regardless of the runner's core count turn it off.
  /// Verdicts are lane-count independent either way.
  bool clamp_to_cores = true;
};

/// Process-wide racing counters, surfaced in the serve /metrics JSON.
struct PortfolioCounters {
  std::int64_t races = 0;              // portfolio solve() calls
  std::int64_t lane_cancellations = 0; // losing lanes interrupted or skipped
  std::map<std::string, std::int64_t> wins_by_backend;
};

/// Snapshot of the cumulative counters (all PortfolioSolver instances).
PortfolioCounters portfolio_counters();

/// Test hook: zero the process-wide counters.
void reset_portfolio_counters();

class PortfolioSolver final : public SolverInterface {
 public:
  explicit PortfolioSolver(const PortfolioOptions& opts = {});
  ~PortfolioSolver() override;

  PortfolioSolver(const PortfolioSolver&) = delete;
  PortfolioSolver& operator=(const PortfolioSolver&) = delete;

  /// "portfolio[cdcl#0,dpll#1]" — not a registry key; portfolios are
  /// assembled per-run from SatmapOptions, never registered.
  std::string name() const override;

  std::int32_t new_var() override;
  std::int32_t num_vars() const override;
  void add_clause(std::vector<Lit> lits) override;

  Result solve(const std::vector<Lit>& assumptions,
               double budget_seconds = 0.0,
               const std::atomic<bool>* cancel = nullptr) override;

  /// Model access after kSat: reads the winning lane's model.
  bool value(std::int32_t var) const override;

  /// Search effort summed across every lane (losers' work included —
  /// that's the real cost of racing); clauses/vars from lane 0 (identical
  /// everywhere); solve_calls counts portfolio-level probes.
  SolverStats stats() const override;

  void dump_dimacs(std::ostream& out,
                   const std::vector<Lit>& extra_units = {}) const override;
  using SolverInterface::dump_dimacs;

  /// Re-seeds every lane (lane i gets seed + i, lane 0 exempt — see
  /// PortfolioOptions::seed).
  void diversify(std::uint64_t seed) override;

  /// Label of the lane that decided the most recent definitive probe
  /// ("cdcl#1"); empty before the first decided probe.
  std::string winner() const;

  /// Losing-lane interruptions/skips accumulated by this instance.
  std::int64_t lane_cancellations() const;

  std::int32_t num_lanes() const;

 private:
  struct Lane;
  struct Shared;
  void lane_main(std::int32_t index);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<Shared> shared_;
  std::int64_t solve_calls_ = 0;
  std::int32_t last_winner_ = 0;  // lane index; model reads go here
  bool ever_won_ = false;
};

}  // namespace qfto::sat
