#include "sat/federation/ipasir_bridge.hpp"

#include <dlfcn.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace qfto::sat {

namespace {

/// Plugin book-keeping: provenance rows plus the dlopen handles, kept for
/// the process lifetime so registered factories (whose code lives inside
/// the mapped objects) never dangle. Reachability from this static also
/// keeps leak checkers quiet about the handles.
struct PluginTable {
  std::mutex mutex;
  std::map<std::string, BackendProvenance> by_name;
  std::vector<void*> handles;
};

PluginTable& plugin_table() {
  static PluginTable t;
  return t;
}

/// `libfoo.so.5.1` -> "foo"; `./bar.so` -> "bar"; fallback: the whole stem.
std::string derive_backend_name(const std::string& path) {
  std::string stem = path;
  const auto slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const auto so = stem.find(".so");
  if (so != std::string::npos) {
    stem = stem.substr(0, so);
  } else {
    const auto dot = stem.find_last_of('.');
    if (dot != std::string::npos) stem = stem.substr(0, dot);
  }
  if (stem.rfind("lib", 0) == 0) stem = stem.substr(3);
  return stem;
}

template <typename Fn>
void resolve(void* handle, const char* symbol, Fn& out, std::string& missing) {
  // The two-step cast silences the object/function pointer aliasing warning
  // the POSIX dlsym interface forces on everyone.
  void* sym = dlsym(handle, symbol);
  if (sym == nullptr) {
    if (!missing.empty()) missing += ", ";
    missing += symbol;
    return;
  }
  out = reinterpret_cast<Fn>(reinterpret_cast<std::uintptr_t>(sym));
}

}  // namespace

// ------------------------------------------------------------ plugin load --

std::string load_solver_plugin(const std::string& spec) {
  std::string name, path;
  const auto eq = spec.find('=');
  if (eq != std::string::npos) {
    name = spec.substr(0, eq);
    path = spec.substr(eq + 1);
  } else {
    path = spec;
  }
  if (path.empty()) {
    throw std::runtime_error("ipasir: empty plugin path in spec '" + spec +
                             "'");
  }

  void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    throw std::runtime_error("ipasir: cannot load '" + path +
                             "': " + (err != nullptr ? err : "dlopen failed"));
  }

  IpasirApi api;
  std::string missing;
  resolve(handle, "ipasir_signature", api.signature, missing);
  resolve(handle, "ipasir_init", api.init, missing);
  resolve(handle, "ipasir_release", api.release, missing);
  resolve(handle, "ipasir_add", api.add, missing);
  resolve(handle, "ipasir_assume", api.assume, missing);
  resolve(handle, "ipasir_solve", api.solve, missing);
  resolve(handle, "ipasir_val", api.val, missing);
  resolve(handle, "ipasir_failed", api.failed, missing);
  resolve(handle, "ipasir_set_terminate", api.set_terminate, missing);
  if (!missing.empty()) {
    dlclose(handle);
    throw std::runtime_error("ipasir: '" + path +
                             "' is not an IPASIR library (missing: " +
                             missing + ")");
  }
  std::string ignored;
  resolve(handle, "ipasir_set_learn", api.set_learn, ignored);  // optional

  const char* sig = api.signature();
  if (name.empty()) name = derive_backend_name(path);
  if (name.empty()) {
    dlclose(handle);
    throw std::runtime_error("ipasir: cannot derive a backend name from '" +
                             path + "' — use name=path");
  }

  register_solver_backend(name, [name, api] {
    return std::unique_ptr<SolverInterface>(
        std::make_unique<IpasirSolver>(name, api));
  });

  PluginTable& t = plugin_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  t.handles.push_back(handle);  // never dlclose'd; see header
  BackendProvenance& row = t.by_name[name];
  row.name = name;
  row.plugin = true;
  row.path = path;
  row.signature = sig != nullptr ? sig : "";
  return name;
}

std::vector<std::string> load_solver_plugins_from_env() {
  std::vector<std::string> loaded;
  const char* env = std::getenv("QFTO_SOLVER_PLUGINS");
  if (env == nullptr) return loaded;
  std::string specs(env);
  std::size_t start = 0;
  while (start <= specs.size()) {
    std::size_t end = specs.find(':', start);
    if (end == std::string::npos) end = specs.size();
    const std::string spec = specs.substr(start, end - start);
    if (!spec.empty()) loaded.push_back(load_solver_plugin(spec));
    start = end + 1;
  }
  return loaded;
}

std::vector<BackendProvenance> backend_provenance() {
  std::vector<BackendProvenance> rows;
  PluginTable& t = plugin_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  for (const std::string& name : solver_backend_names()) {
    const auto it = t.by_name.find(name);
    if (it != t.by_name.end()) {
      rows.push_back(it->second);
    } else {
      BackendProvenance row;
      row.name = name;
      rows.push_back(row);
    }
  }
  return rows;  // solver_backend_names() is already sorted
}

// ------------------------------------------------------------ the adapter --

IpasirSolver::IpasirSolver(std::string name, const IpasirApi& api)
    : name_(std::move(name)), api_(api) {
  solver_ = api_.init();
  if (solver_ == nullptr) {
    throw std::runtime_error("ipasir: " + name_ + ": ipasir_init failed");
  }
}

IpasirSolver::~IpasirSolver() {
  if (solver_ != nullptr) api_.release(solver_);
}

std::int32_t IpasirSolver::new_var() {
  // IPASIR has no explicit variable creation — variables exist by use. The
  // bridge only tracks the count so assumption/model sanity checks work.
  return num_vars_++;
}

namespace {
std::int32_t to_dimacs(Lit l) {
  return l.sign() ? -(l.var() + 1) : (l.var() + 1);
}
}  // namespace

void IpasirSolver::add_clause(std::vector<Lit> lits) {
  for (const Lit l : lits) {
    require(l.var() >= 0 && l.var() < num_vars_, "ipasir: unknown literal");
    api_.add(solver_, to_dimacs(l));
  }
  api_.add(solver_, 0);
  if (lits.empty()) root_unsat_ = true;
  clauses_.push_back(std::move(lits));
}

Result IpasirSolver::solve(const std::vector<Lit>& assumptions,
                           double budget_seconds,
                           const std::atomic<bool>* cancel) {
  ++stats_.solve_calls;
  struct TerminateCtx {
    Deadline deadline;
    const std::atomic<bool>* cancel;
  } ctx{Deadline(budget_seconds), cancel};
  api_.set_terminate(solver_, &ctx, [](void* data) -> int {
    const auto* c = static_cast<const TerminateCtx*>(data);
    const bool stop =
        (c->cancel != nullptr && c->cancel->load(std::memory_order_relaxed)) ||
        c->deadline.expired();
    return stop ? 1 : 0;
  });
  for (const Lit a : assumptions) {
    require(a.var() >= 0 && a.var() < num_vars_,
            "ipasir: unknown assumption");
    api_.assume(solver_, to_dimacs(a));
  }
  const int r = api_.solve(solver_);
  // Drop the callback before `ctx` goes out of scope — a solver is allowed
  // to invoke it from later calls otherwise.
  api_.set_terminate(solver_, nullptr, nullptr);
  switch (r) {
    case kIpasirSat:
      return Result::kSat;
    case kIpasirUnsat:
      return Result::kUnsat;
    default:
      return Result::kTimeout;
  }
}

bool IpasirSolver::value(std::int32_t var) const {
  require(var >= 0 && var < num_vars_, "ipasir: unknown variable");
  return api_.val(solver_, var + 1) > 0;
}

SolverStats IpasirSolver::stats() const {
  SolverStats s = stats_;
  s.clauses = static_cast<std::int64_t>(clauses_.size());
  s.vars = num_vars_;
  return s;
}

void IpasirSolver::dump_dimacs(std::ostream& out,
                               const std::vector<Lit>& extra_units) const {
  std::vector<const std::vector<Lit>*> ptrs;
  ptrs.reserve(clauses_.size());
  for (const auto& c : clauses_) ptrs.push_back(&c);
  write_dimacs(out, name_, root_unsat_, num_vars_, nullptr, 0, ptrs,
               extra_units);
}

}  // namespace qfto::sat
