#include "sat/federation/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#include "common/types.hpp"

namespace qfto::sat {

namespace {

struct GlobalCounters {
  std::mutex mutex;
  PortfolioCounters counters;
};

GlobalCounters& global_counters() {
  static GlobalCounters g;
  return g;
}

}  // namespace

PortfolioCounters portfolio_counters() {
  GlobalCounters& g = global_counters();
  std::lock_guard<std::mutex> lock(g.mutex);
  return g.counters;
}

void reset_portfolio_counters() {
  GlobalCounters& g = global_counters();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.counters = PortfolioCounters{};
}

// ------------------------------------------------------------------ state --

struct PortfolioSolver::Lane {
  std::string backend;  // registry key
  std::string label;    // "cdcl#1"
  std::unique_ptr<SolverInterface> solver;
  /// The lane's cooperative-cancel token: flipped by the winning sibling,
  /// by an external caller cancel, or at shutdown. Same mechanism the
  /// serving layer aborts deadline-blown jobs with.
  std::atomic<bool> interrupt{false};
  std::int64_t wins = 0;      // guarded by Shared::mutex
  std::int64_t delay_us = 0;  // this generation's stagger; same guard
  std::thread thread;
};

struct PortfolioSolver::Shared {
  mutable std::mutex mutex;
  std::condition_variable work_cv;  // lanes park here between probes
  std::condition_variable done_cv;  // solve() waits for the last lane here
  std::uint64_t generation = 0;
  bool shutdown = false;
  const std::vector<Lit>* assumptions = nullptr;
  double budget = 0.0;
  std::int32_t running = 0;
  std::int32_t winner = -1;  // of the current generation
  Result verdict = Result::kTimeout;
  std::int64_t cancellations = 0;  // cumulative, this instance
  std::int64_t stagger_us = 0;
};

PortfolioSolver::PortfolioSolver(const PortfolioOptions& opts)
    : shared_(std::make_unique<Shared>()) {
  std::int32_t lanes = std::max<std::int32_t>(1, opts.lanes);
  if (opts.clamp_to_cores) {
    const auto hw =
        static_cast<std::int32_t>(std::thread::hardware_concurrency());
    if (hw > 0) lanes = std::min(lanes, hw);
  }
  std::vector<std::string> backends = opts.backends;
  if (backends.empty()) backends.emplace_back("cdcl");
  shared_->stagger_us = std::max<std::int64_t>(0, opts.stagger_us);
  for (std::int32_t i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->backend = backends[static_cast<std::size_t>(i) % backends.size()];
    lane->label = lane->backend + "#" + std::to_string(i);
    lane->solver = make_solver(lane->backend);
    // Lane 0 keeps the backend's deterministic default so a 1-lane
    // portfolio is bit-identical to the bare backend.
    if (i > 0) lane->solver->diversify(opts.seed + static_cast<std::uint64_t>(i));
    lanes_.push_back(std::move(lane));
  }
  for (std::int32_t i = 0; i < lanes; ++i) {
    lanes_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { lane_main(i); });
  }
}

PortfolioSolver::~PortfolioSolver() {
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->shutdown = true;
  }
  shared_->work_cv.notify_all();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

// -------------------------------------------------------------- lane loop --

void PortfolioSolver::lane_main(std::int32_t index) {
  Lane& lane = *lanes_[static_cast<std::size_t>(index)];
  Shared& sh = *shared_;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(sh.mutex);
  for (;;) {
    sh.work_cv.wait(lock, [&] { return sh.shutdown || sh.generation != seen; });
    if (sh.shutdown) return;
    seen = sh.generation;
    const std::vector<Lit>* assumptions = sh.assumptions;
    const double budget = sh.budget;
    const std::int64_t delay_us = lane.delay_us;
    lock.unlock();

    // Serve the head start in small slices so a cancel arriving during the
    // stagger is honored promptly.
    for (std::int64_t waited = 0;
         waited < delay_us &&
         !lane.interrupt.load(std::memory_order_relaxed);
         waited += 50) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    Result r = Result::kTimeout;
    const bool skipped = lane.interrupt.load(std::memory_order_relaxed);
    if (!skipped) {
      r = lane.solver->solve(*assumptions, budget, &lane.interrupt);
    }

    lock.lock();
    const bool definitive = r == Result::kSat || r == Result::kUnsat;
    if (definitive && sh.winner < 0) {
      sh.winner = index;
      sh.verdict = r;
      ++lane.wins;
      for (auto& other : lanes_) {
        if (other.get() != &lane) {
          other->interrupt.store(true, std::memory_order_relaxed);
        }
      }
    } else if (!definitive && sh.winner >= 0) {
      // Interrupted mid-solve (or skipped outright) because a sibling
      // already decided the probe — the racing win being measured.
      ++sh.cancellations;
    }
    if (--sh.running == 0) sh.done_cv.notify_all();
  }
}

// ------------------------------------------------------ interface surface --

std::string PortfolioSolver::name() const {
  std::string out = "portfolio[";
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (i > 0) out += ',';
    out += lanes_[i]->label;
  }
  return out + "]";
}

std::int32_t PortfolioSolver::new_var() {
  const std::int32_t v = lanes_[0]->solver->new_var();
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    const std::int32_t vi = lanes_[i]->solver->new_var();
    require(vi == v, "portfolio: lanes drifted on variable numbering");
  }
  return v;
}

std::int32_t PortfolioSolver::num_vars() const {
  return lanes_[0]->solver->num_vars();
}

void PortfolioSolver::add_clause(std::vector<Lit> lits) {
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    lanes_[i]->solver->add_clause(lits);
  }
  lanes_[0]->solver->add_clause(std::move(lits));
}

Result PortfolioSolver::solve(const std::vector<Lit>& assumptions,
                              double budget_seconds,
                              const std::atomic<bool>* cancel) {
  ++solve_calls_;
  Shared& sh = *shared_;
  std::int64_t cancelled_this_probe = 0;
  std::int32_t winner = -1;
  Result verdict = Result::kTimeout;
  {
    std::unique_lock<std::mutex> lock(sh.mutex);
    const std::int64_t cancellations_before = sh.cancellations;

    // Bandit-style lane ordering: rank by wins so far (stable on ties), the
    // historically-best lane starts first and rank r waits r*stagger.
    std::vector<std::size_t> order(lanes_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return lanes_[a]->wins > lanes_[b]->wins;
                     });
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      Lane& lane = *lanes_[order[rank]];
      lane.delay_us = static_cast<std::int64_t>(rank) * sh.stagger_us;
      lane.interrupt.store(false, std::memory_order_relaxed);
    }

    sh.assumptions = &assumptions;
    sh.budget = budget_seconds;
    sh.winner = -1;
    sh.verdict = Result::kTimeout;
    sh.running = static_cast<std::int32_t>(lanes_.size());
    ++sh.generation;
    sh.work_cv.notify_all();

    // The winner's verdict arrives through the shared state; this thread
    // only has to keep forwarding an external cancel to the lanes (the
    // polling interval bounds cancel latency, nothing else). Without a
    // token there is nothing to forward, so wait without waking.
    while (sh.running > 0) {
      if (cancel == nullptr) {
        sh.done_cv.wait(lock, [&] { return sh.running == 0; });
        break;
      }
      sh.done_cv.wait_for(lock, std::chrono::milliseconds(2));
      if (cancel->load(std::memory_order_relaxed)) {
        for (auto& lane : lanes_) {
          lane->interrupt.store(true, std::memory_order_relaxed);
        }
      }
    }
    winner = sh.winner;
    verdict = winner >= 0 ? sh.verdict : Result::kTimeout;
    if (winner >= 0) {
      last_winner_ = winner;
      ever_won_ = true;
    }
    sh.assumptions = nullptr;
    cancelled_this_probe = sh.cancellations - cancellations_before;
  }

  GlobalCounters& g = global_counters();
  std::lock_guard<std::mutex> glock(g.mutex);
  ++g.counters.races;
  g.counters.lane_cancellations += cancelled_this_probe;
  if (winner >= 0) {
    ++g.counters
          .wins_by_backend[lanes_[static_cast<std::size_t>(winner)]->backend];
  }
  return verdict;
}

bool PortfolioSolver::value(std::int32_t var) const {
  return lanes_[static_cast<std::size_t>(last_winner_)]->solver->value(var);
}

SolverStats PortfolioSolver::stats() const {
  SolverStats total;
  for (const auto& lane : lanes_) {
    const SolverStats s = lane->solver->stats();
    total.conflicts += s.conflicts;
    total.decisions += s.decisions;
    total.propagations += s.propagations;
    total.restarts += s.restarts;
  }
  total.solve_calls = solve_calls_;
  const SolverStats s0 = lanes_[0]->solver->stats();
  total.clauses = s0.clauses;
  total.vars = s0.vars;
  return total;
}

void PortfolioSolver::dump_dimacs(std::ostream& out,
                                  const std::vector<Lit>& extra_units) const {
  lanes_[0]->solver->dump_dimacs(out, extra_units);
}

void PortfolioSolver::diversify(std::uint64_t seed) {
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    lanes_[i]->solver->diversify(seed + static_cast<std::uint64_t>(i));
  }
}

std::string PortfolioSolver::winner() const {
  if (!ever_won_) return "";
  return lanes_[static_cast<std::size_t>(last_winner_)]->label;
}

std::int64_t PortfolioSolver::lane_cancellations() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->cancellations;
}

std::int32_t PortfolioSolver::num_lanes() const {
  return static_cast<std::int32_t>(lanes_.size());
}

}  // namespace qfto::sat
