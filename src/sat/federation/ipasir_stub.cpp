// In-tree IPASIR shim over the "cdcl" backend, compiled as a standalone
// shared object (libqfto_ipasir_stub.so) and *not* part of the qfto library:
// its whole purpose is to be dlopen'ed back through the federation bridge so
// the plugin path — symbol resolution, DIMACS literal translation,
// ipasir_set_terminate cancellation — is exercised end-to-end with zero
// external dependencies. The conformance battery (test_sat_backends) runs
// the full SolverInterface contract against it, and CI loads it on every
// leg, sanitizers included.
//
// Built with hidden visibility: only the extern "C" ipasir_* surface is
// exported, so the private copies of the qfto::sat classes inside the .so
// can never clash with the host binary's own (RTLD_LOCAL on the bridge side
// closes the other half of that door).
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "sat/federation/ipasir.hpp"
#include "sat/solver.hpp"

#define QFTO_IPASIR_EXPORT __attribute__((visibility("default")))

namespace {

using qfto::sat::Lit;
using qfto::sat::Result;

struct StubSolver {
  qfto::sat::Solver solver;
  std::vector<Lit> clause;       // literals buffered until the closing 0
  std::vector<Lit> assumptions;  // consumed by the next ipasir_solve

  /// DIMACS literal -> internal Lit, growing the variable space on demand
  /// (IPASIR variables exist by use).
  Lit lit_from(std::int32_t dimacs) {
    const std::int32_t v = std::abs(dimacs) - 1;
    while (solver.num_vars() <= v) solver.new_var();
    return dimacs > 0 ? Lit::pos(v) : Lit::neg(v);
  }
};

StubSolver* stub(void* s) { return static_cast<StubSolver*>(s); }

}  // namespace

extern "C" {

QFTO_IPASIR_EXPORT const char* ipasir_signature() {
  return "qfto-cdcl-ipasir-stub-1.0";
}

QFTO_IPASIR_EXPORT void* ipasir_init() { return new StubSolver; }

QFTO_IPASIR_EXPORT void ipasir_release(void* s) { delete stub(s); }

QFTO_IPASIR_EXPORT void ipasir_add(void* s, std::int32_t lit_or_zero) {
  StubSolver* st = stub(s);
  if (lit_or_zero == 0) {
    st->solver.add_clause(st->clause);
    st->clause.clear();
  } else {
    st->clause.push_back(st->lit_from(lit_or_zero));
  }
}

QFTO_IPASIR_EXPORT void ipasir_assume(void* s, std::int32_t lit) {
  StubSolver* st = stub(s);
  st->assumptions.push_back(st->lit_from(lit));
}

QFTO_IPASIR_EXPORT int ipasir_solve(void* s) {
  StubSolver* st = stub(s);
  const std::vector<Lit> assumptions = std::move(st->assumptions);
  st->assumptions.clear();
  // No budget, no cancel atomic: interruption arrives exclusively through
  // the ipasir_set_terminate hook, exactly like an external solver.
  switch (st->solver.solve(assumptions, 0.0, nullptr)) {
    case Result::kSat:
      return qfto::sat::kIpasirSat;
    case Result::kUnsat:
      return qfto::sat::kIpasirUnsat;
    case Result::kTimeout:
      break;
  }
  return qfto::sat::kIpasirInterrupted;
}

QFTO_IPASIR_EXPORT std::int32_t ipasir_val(void* s, std::int32_t lit) {
  StubSolver* st = stub(s);
  const std::int32_t v = std::abs(lit) - 1;
  if (v < 0 || v >= st->solver.num_vars()) return 0;
  const bool truth = st->solver.value(v);
  return truth == (lit > 0) ? lit : -lit;
}

QFTO_IPASIR_EXPORT int ipasir_failed(void* /*s*/, std::int32_t /*lit*/) {
  // The backend keeps no assumption cores; "every assumption was used" is
  // the sound conservative answer the spec allows.
  return 1;
}

QFTO_IPASIR_EXPORT void ipasir_set_terminate(
    void* s, void* data, qfto::sat::IpasirTerminateCallback terminate) {
  StubSolver* st = stub(s);
  if (terminate == nullptr) {
    st->solver.set_terminate(nullptr);
  } else {
    st->solver.set_terminate([data, terminate] { return terminate(data) != 0; });
  }
}

QFTO_IPASIR_EXPORT void ipasir_set_learn(void* /*s*/, void* /*data*/,
                                         int /*max_length*/,
                                         qfto::sat::IpasirLearnCallback
                                         /*learn*/) {
  // Accepted and ignored: the stub exports no learnt clauses.
}

}  // extern "C"
