#include "sat/dpll_solver.hpp"

#include <algorithm>
#include <ostream>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace qfto::sat {

std::int32_t DpllSolver::new_var() {
  const std::int32_t v = num_vars();
  assign_.push_back(kUndef);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void DpllSolver::enqueue(Lit l) {
  assign_[l.var()] = l.sign() ? kFalse : kTrue;
  trail_.push_back(l);
}

void DpllSolver::undo_to(std::int32_t trail_start) {
  while (static_cast<std::int32_t>(trail_.size()) > trail_start) {
    assign_[trail_.back().var()] = kUndef;
    trail_.pop_back();
  }
  qhead_ = trail_.size();
}

void DpllSolver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return;
  // Root-only simplification: drop any leftover search state first (this
  // invalidates a previous model, per the interface contract).
  if (!frames_.empty()) {
    undo_to(frames_.front().trail_start);
    frames_.clear();
  }
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) return;  // x ∨ ¬x: tautology
  }
  std::vector<Lit> kept;
  for (Lit l : lits) {
    require(l.var() >= 0 && l.var() < num_vars(), "add_clause: unknown var");
    const std::int8_t v = lit_value(l);
    if (v == kTrue) return;  // satisfied at the root
    if (v == kFalse) continue;
    kept.push_back(l);
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    enqueue(kept[0]);
    if (!propagate()) unsat_ = true;
    return;
  }
  const std::int32_t ci = static_cast<std::int32_t>(clauses_.size());
  clauses_.push_back(std::move(kept));
  watches_[clauses_[ci][0].code].push_back(ci);
  watches_[clauses_[ci][1].code].push_back(ci);
}

bool DpllSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    auto& watch_list = watches_[(~p).code];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
      const std::int32_t ci = watch_list[wi];
      auto& lits = clauses_[ci];
      if (lits[0] == ~p) std::swap(lits[0], lits[1]);
      if (lit_value(lits[0]) == kTrue) {
        watch_list[keep++] = ci;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (lit_value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[lits[1].code].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      watch_list[keep++] = ci;
      if (lit_value(lits[0]) == kFalse) {
        for (std::size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return false;
      }
      enqueue(lits[0]);
    }
    watch_list.resize(keep);
  }
  return true;
}

Result DpllSolver::solve(const std::vector<Lit>& assumptions,
                         double budget_seconds,
                         const std::atomic<bool>* cancel) {
  ++solve_calls_;
  if (unsat_) return Result::kUnsat;
  Deadline deadline(budget_seconds);
  const auto out_of_time = [&]() {
    return (cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
           deadline.expired();
  };
  if (out_of_time()) return Result::kTimeout;
  for (const Lit a : assumptions) {
    require(a.var() >= 0 && a.var() < num_vars(), "solve: unknown assumption");
  }
  // Incremental entry: back to the root, re-run propagation over the whole
  // trail (clauses added since the last call may tighten it).
  if (!frames_.empty()) {
    undo_to(frames_.front().trail_start);
    frames_.clear();
  }
  qhead_ = 0;
  if (!propagate()) {
    unsat_ = true;
    return Result::kUnsat;
  }

  // Assumptions are pinned, non-flippable prefix decisions; exhausting the
  // search below them (or propagating one false) is UNSAT *under these
  // assumptions* — the instance itself stays usable.
  const std::int32_t root = static_cast<std::int32_t>(trail_.size());
  const auto give_up_assumptions = [&]() {
    undo_to(root);
    frames_.clear();
    return Result::kUnsat;
  };
  for (const Lit a : assumptions) {
    const std::int8_t v = lit_value(a);
    Frame frame;
    frame.decision = a;
    frame.trail_start = static_cast<std::int32_t>(trail_.size());
    frame.flipped = true;
    frame.assumption = true;
    frames_.push_back(frame);
    if (v == kTrue) continue;
    if (v == kFalse) return give_up_assumptions();
    enqueue(a);
    if (!propagate()) {
      ++conflicts_;
      return give_up_assumptions();
    }
  }

  for (;;) {
    // Fixed branching order: lowest unassigned variable, positive first.
    std::int32_t branch = -1;
    for (std::int32_t v = 0; v < num_vars(); ++v) {
      if (assign_[v] == kUndef) {
        branch = v;
        break;
      }
    }
    if (branch == -1) return Result::kSat;
    Frame frame;
    frame.decision = Lit::pos(branch);
    frame.trail_start = static_cast<std::int32_t>(trail_.size());
    frames_.push_back(frame);
    enqueue(frame.decision);
    if ((++decisions_ & 255) == 0 && out_of_time()) return Result::kTimeout;

    while (!propagate()) {
      if ((++conflicts_ & 255) == 0 && out_of_time()) return Result::kTimeout;
      // Chronological backtracking: flip the deepest untried branch.
      for (;;) {
        if (frames_.empty()) {
          unsat_ = true;
          return Result::kUnsat;
        }
        Frame& f = frames_.back();
        if (f.assumption) return give_up_assumptions();
        if (f.flipped) {
          undo_to(f.trail_start);
          frames_.pop_back();
          continue;
        }
        undo_to(f.trail_start);
        f.flipped = true;
        f.decision = ~f.decision;
        enqueue(f.decision);
        break;
      }
    }
  }
}

bool DpllSolver::value(std::int32_t var) const {
  return assign_[var] == kTrue;
}

SolverStats DpllSolver::stats() const {
  SolverStats s;
  s.conflicts = conflicts_;
  s.decisions = decisions_;
  s.propagations = propagations_;
  s.restarts = 0;
  s.solve_calls = solve_calls_;
  s.clauses = static_cast<std::int64_t>(clauses_.size());
  s.vars = num_vars();
  return s;
}

void DpllSolver::dump_dimacs(std::ostream& out,
                             const std::vector<Lit>& extra_units) const {
  const std::size_t root_end =
      frames_.empty() ? trail_.size()
                      : static_cast<std::size_t>(frames_.front().trail_start);
  std::vector<const std::vector<Lit>*> original;
  original.reserve(clauses_.size());
  for (const auto& lits : clauses_) original.push_back(&lits);
  write_dimacs(out, name(), unsat_, num_vars(), trail_.data(), root_end,
               original, extra_units);
}

}  // namespace qfto::sat
