// Dependency DAGs over a circuit's gate list.
//
// * Strict DAG: conventional per-wire ordering — every pair of gates sharing a
//   qubit is ordered. This is what general-purpose routers (SABRE, SATMAP)
//   consume.
// * Relaxed DAG (the paper's Insight 1): diagonal gates (CPHASE, RZ) that
//   share a qubit commute, so only "Type II" dependences remain — a
//   non-diagonal gate (H, SWAP, CNOT, X) acts as a barrier on its wires.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

struct Dag {
  /// succ[i] = indices of gates that must run after gate i.
  std::vector<std::vector<std::int32_t>> succ;
  /// pred[i] = indices of gates that must run before gate i.
  std::vector<std::vector<std::int32_t>> pred;

  std::size_t size() const { return succ.size(); }

  /// Gate indices with no predecessors.
  std::vector<std::int32_t> roots() const;

  /// One topological order (Kahn). Throws if the graph has a cycle.
  std::vector<std::int32_t> topological_order() const;
};

/// True if the gate is diagonal in the computational basis.
bool is_diagonal(GateKind kind);

Dag build_strict_dag(const Circuit& c);
Dag build_relaxed_dag(const Circuit& c);

/// Checks that `order` (a permutation of gate indices) respects `dag`.
bool respects_dag(const Dag& dag, const std::vector<std::int32_t>& order);

}  // namespace qfto
