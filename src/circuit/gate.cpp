#include "circuit/gate.hpp"

#include <cmath>
#include <cstdio>

namespace qfto {

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "H";
    case GateKind::kX: return "X";
    case GateKind::kRz: return "RZ";
    case GateKind::kCPhase: return "CP";
    case GateKind::kSwap: return "SWAP";
    case GateKind::kCnot: return "CNOT";
  }
  return "?";
}

Gate Gate::h(std::int32_t q) { return Gate{GateKind::kH, q, kInvalidQubit, 0.0}; }
Gate Gate::x(std::int32_t q) { return Gate{GateKind::kX, q, kInvalidQubit, 0.0}; }

Gate Gate::rz(std::int32_t q, double angle) {
  return Gate{GateKind::kRz, q, kInvalidQubit, angle};
}

Gate Gate::cphase(std::int32_t a, std::int32_t b, double angle) {
  return Gate{GateKind::kCPhase, a, b, angle};
}

Gate Gate::swap(std::int32_t a, std::int32_t b) {
  return Gate{GateKind::kSwap, a, b, 0.0};
}

Gate Gate::cnot(std::int32_t control, std::int32_t target) {
  return Gate{GateKind::kCnot, control, target, 0.0};
}

std::string Gate::to_string() const {
  char buf[96];
  if (two_qubit()) {
    if (kind == GateKind::kCPhase) {
      std::snprintf(buf, sizeof(buf), "CP(%d,%d;%.6g)", q0, q1, angle);
    } else {
      std::snprintf(buf, sizeof(buf), "%s(%d,%d)", gate_name(kind).c_str(), q0,
                    q1);
    }
  } else if (kind == GateKind::kRz) {
    std::snprintf(buf, sizeof(buf), "RZ(%d;%.6g)", q0, angle);
  } else {
    std::snprintf(buf, sizeof(buf), "%s(%d)", gate_name(kind).c_str(), q0);
  }
  return buf;
}

bool operator==(const Gate& a, const Gate& b) {
  return a.kind == b.kind && a.q0 == b.q0 && a.q1 == b.q1 &&
         std::abs(a.angle - b.angle) < 1e-12;
}

}  // namespace qfto
