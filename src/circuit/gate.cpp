#include "circuit/gate.hpp"

#include <cmath>
#include <cstdio>

namespace qfto {

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "H";
    case GateKind::kX: return "X";
    case GateKind::kRz: return "RZ";
    case GateKind::kCPhase: return "CP";
    case GateKind::kSwap: return "SWAP";
    case GateKind::kCnot: return "CNOT";
  }
  return "?";
}

std::string Gate::to_string() const {
  char buf[96];
  if (two_qubit()) {
    if (kind == GateKind::kCPhase) {
      std::snprintf(buf, sizeof(buf), "CP(%d,%d;%.6g)", q0, q1, angle);
    } else {
      std::snprintf(buf, sizeof(buf), "%s(%d,%d)", gate_name(kind).c_str(), q0,
                    q1);
    }
  } else if (kind == GateKind::kRz) {
    std::snprintf(buf, sizeof(buf), "RZ(%d;%.6g)", q0, angle);
  } else {
    std::snprintf(buf, sizeof(buf), "%s(%d)", gate_name(kind).c_str(), q0);
  }
  return buf;
}

bool operator==(const Gate& a, const Gate& b) {
  return a.kind == b.kind && a.q0 == b.q0 && a.q1 == b.q1 &&
         std::abs(a.angle - b.angle) < 1e-12;
}

}  // namespace qfto
