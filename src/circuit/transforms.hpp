// Circuit lowering and approximation passes.
//
// * decompose_to_cnot: expand SWAP (3 CNOTs) and CPHASE (2 CNOTs + 3 RZ)
//   into the CNOT+1q basis — the native cost model behind the paper's
//   lattice-surgery latencies (§2.3: "SWAPs ... have to be implemented using
//   three CNOT gates").
// * prune_small_rotations: Coppersmith's approximate QFT [paper ref 9] —
//   drop CPHASEs with rotation angle below pi/2^max_k. Works on logical or
//   mapped circuits (the angle identifies the logical distance); SWAPs are
//   untouched so hardware compliance of a mapped kernel is preserved.
#pragma once

#include "circuit/circuit.hpp"

namespace qfto {

/// Exact lowering to {H, X, RZ, CNOT}.
Circuit decompose_to_cnot(const Circuit& c);

/// Drops CPHASE gates with |angle| < pi / 2^max_k (i.e. logical qubit
/// distance > max_k). max_k >= n-1 keeps the circuit exact.
Circuit prune_small_rotations(const Circuit& c, std::int32_t max_k);

/// Number of CPHASE gates an n-qubit AQFT with cutoff max_k retains.
std::int64_t aqft_pair_count(std::int64_t n, std::int64_t max_k);

}  // namespace qfto
