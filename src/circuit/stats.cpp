#include "circuit/stats.hpp"

#include <cstdio>

namespace qfto {

std::string GateCounts::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "H=%lld X=%lld RZ=%lld CP=%lld SWAP=%lld CNOT=%lld",
                static_cast<long long>(h), static_cast<long long>(x),
                static_cast<long long>(rz), static_cast<long long>(cphase),
                static_cast<long long>(swap), static_cast<long long>(cnot));
  return buf;
}

GateCounts count_gates(const Circuit& c) {
  GateCounts gc;
  for (const auto& g : c) {
    switch (g.kind) {
      case GateKind::kH: ++gc.h; break;
      case GateKind::kX: ++gc.x; break;
      case GateKind::kRz: ++gc.rz; break;
      case GateKind::kCPhase: ++gc.cphase; break;
      case GateKind::kSwap: ++gc.swap; break;
      case GateKind::kCnot: ++gc.cnot; break;
    }
  }
  return gc;
}

}  // namespace qfto
