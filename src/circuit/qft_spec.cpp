#include "circuit/qft_spec.hpp"

#include <cmath>

namespace qfto {

double qft_angle(LogicalQubit i, LogicalQubit j) {
  require(i < j, "qft_angle: expects i < j");
  // R_k in the textbook circuit applies phase 2*pi/2^k with k = j - i + 1,
  // i.e. pi / 2^{j-i}. ldexp scales the exponent directly — bit-identical to
  // dividing by pow(2, j-i), without the libm call per gate.
  return std::ldexp(M_PI, -(j - i));
}

Circuit qft_logical(std::int32_t n) {
  Circuit c(n);
  for (LogicalQubit i = 0; i < n; ++i) {
    c.append(Gate::h(i));
    for (LogicalQubit j = i + 1; j < n; ++j) {
      c.append(Gate::cphase(i, j, qft_angle(i, j)));
    }
  }
  return c;
}

}  // namespace qfto
