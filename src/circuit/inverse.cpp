#include "circuit/inverse.hpp"

namespace qfto {

Circuit inverse_circuit(const Circuit& c) {
  Circuit inv(c.num_qubits());
  for (std::size_t i = c.size(); i-- > 0;) {
    Gate g = c[i];
    switch (g.kind) {
      case GateKind::kRz:
      case GateKind::kCPhase:
        g.angle = -g.angle;
        break;
      case GateKind::kH:
      case GateKind::kX:
      case GateKind::kSwap:
      case GateKind::kCnot:
        break;  // self-inverse
    }
    inv.append(g);
  }
  return inv;
}

MappedCircuit inverse_mapped(const MappedCircuit& mc) {
  MappedCircuit inv;
  inv.circuit = inverse_circuit(mc.circuit);
  inv.initial = mc.final_mapping;
  inv.final_mapping = mc.initial;
  return inv;
}

}  // namespace qfto
