// A circuit is an ordered gate list over `num_qubits` wires. The order is a
// valid topological order of whichever dependency relation produced it; the
// scheduler (scheduler.hpp) turns it into parallel layers / weighted depth.
//
// Storage is a flat, manually-grown Gate array rather than std::vector: the
// emit hot path appends tens of millions of gates at device scale, and the
// vector's per-push end-pointer write-back plus its value-initializing resize
// measurably throttled emission (QFT-8192 produces a ~1.6 GB gate stream).
// With a trivial Gate and an explicit size_ kept in a register across the
// emitter's loop, an append compiles down to one bounds-predictable branch
// and one 24-byte store.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "circuit/gate.hpp"

namespace qfto {

static_assert(std::is_trivially_copyable_v<Gate> &&
                  std::is_trivially_default_constructible_v<Gate>,
              "Circuit's flat store relies on Gate staying trivial");

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::int32_t num_qubits);

  Circuit(const Circuit& other) { *this = other; }
  Circuit& operator=(const Circuit& other);
  Circuit(Circuit&& other) noexcept { *this = std::move(other); }
  Circuit& operator=(Circuit&& other) noexcept;

  std::int32_t num_qubits() const { return num_qubits_; }

  /// Appends a gate; validates qubit indices are in range and distinct.
  /// Inline: this is the emit hot path (one call per mapped gate, tens of
  /// millions at device scale), and the three guards are branch-predictable.
  void append(const Gate& g) {
    require(g.q0 >= 0 && g.q0 < num_qubits_,
            "Circuit::append: q0 out of range");
    if (g.two_qubit()) {
      require(g.q1 >= 0 && g.q1 < num_qubits_,
              "Circuit::append: q1 out of range");
      require(g.q0 != g.q1,
              "Circuit::append: two-qubit gate on a single wire");
    }
    if (size_ == capacity_) grow(size_ + 1);
    store_[size_++] = g;
  }

  /// Pre-sizes the gate store. Emitters with a good a-priori gate-count
  /// estimate call this once: growth reallocation (copying the whole tail)
  /// dominated device-scale emission before. Large reservations are also
  /// prefaulted in one batched pass (see circuit.cpp), which beats taking
  /// soft page faults interleaved with the emit loop.
  void reserve(std::size_t gate_count);
  std::size_t capacity() const { return capacity_; }

  /// Appends every gate of `other` (qubit counts must match).
  void extend(const Circuit& other);

  const Gate* data() const { return store_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Gate& operator[](std::size_t i) const { return store_[i]; }

  const Gate* begin() const { return store_.get(); }
  const Gate* end() const { return store_.get() + size_; }

  /// Multi-line dump, one gate per line (debugging / golden tests).
  std::string to_string() const;

  /// Order-sensitive 64-bit content fingerprint over (num_qubits, every
  /// gate's kind/qubits/angle bit pattern). This is what keys general
  /// circuits in the ResultCache, so two different circuits of the same size
  /// and options never collide on a cache entry (up to 64-bit hash
  /// collisions).
  std::uint64_t fingerprint() const;

 private:
  void grow(std::size_t need);

  std::int32_t num_qubits_ = 0;
  std::unique_ptr<Gate[]> store_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace qfto
