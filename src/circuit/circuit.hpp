// A circuit is an ordered gate list over `num_qubits` wires. The order is a
// valid topological order of whichever dependency relation produced it; the
// scheduler (scheduler.hpp) turns it into parallel layers / weighted depth.
#pragma once

#include <vector>

#include "circuit/gate.hpp"

namespace qfto {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::int32_t num_qubits);

  std::int32_t num_qubits() const { return num_qubits_; }

  /// Appends a gate; validates qubit indices are in range and distinct.
  void append(const Gate& g);

  /// Appends every gate of `other` (qubit counts must match).
  void extend(const Circuit& other);

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }
  const Gate& operator[](std::size_t i) const { return gates_[i]; }

  auto begin() const { return gates_.begin(); }
  auto end() const { return gates_.end(); }

  /// Multi-line dump, one gate per line (debugging / golden tests).
  std::string to_string() const;

  /// Order-sensitive 64-bit content fingerprint over (num_qubits, every
  /// gate's kind/qubits/angle bit pattern). This is what keys general
  /// circuits in the ResultCache, so two different circuits of the same size
  /// and options never collide on a cache entry (up to 64-bit hash
  /// collisions).
  std::uint64_t fingerprint() const;

 private:
  std::int32_t num_qubits_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qfto
