// Result of qubit mapping: a hardware circuit over physical qubits plus the
// logical->physical mapping at entry and exit. Architecture-agnostic so the
// checker, simulator and every mapper/baseline can share it.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

struct MappedCircuit {
  /// Gates act on physical qubit ids (0 .. circuit.num_qubits()-1).
  Circuit circuit;
  /// initial[l] = physical qubit holding logical l before the first gate.
  std::vector<PhysicalQubit> initial;
  /// final_mapping[l] = physical qubit holding logical l after the last gate.
  std::vector<PhysicalQubit> final_mapping;

  std::int32_t num_logical() const {
    return static_cast<std::int32_t>(initial.size());
  }
  std::int32_t num_physical() const { return circuit.num_qubits(); }
};

/// Validates that `mapping` is an injection of logicals into physicals.
bool valid_mapping(const std::vector<PhysicalQubit>& mapping,
                   std::int32_t num_physical);

}  // namespace qfto
