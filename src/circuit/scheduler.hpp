// Latency-aware ASAP scheduling.
//
// The paper's depth numbers are "cycles to finish all gate operations": on the
// NISQ backends every gate (1q, CPHASE, SWAP) occupies one cycle; on the
// lattice-surgery FT backend latencies are heterogeneous (CNOT = 2 cycles,
// diagonal-link SWAP = 2, axial-link SWAP = 6). The scheduler therefore takes
// a per-gate latency callback and computes the makespan over wires, honouring
// the gate-list order per wire (our emitters produce dependency-ordered
// lists, so per-wire ASAP equals DAG ASAP).
//
// The core loop is a template over the latency callable: concrete models
// (arch/latency_model.hpp's LatencyModel) inline straight into it with no
// std::function hop, which is what the hot verify/schedule path uses. The
// LatencyFn overloads remain for ad-hoc callers.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

/// Returns the duration (in cycles) of a gate. Receives the gate so that
/// architecture latency models can inspect which physical link it uses.
using LatencyFn = std::function<Cycle(const Gate&)>;

/// Unit latency: every gate takes one cycle (the paper's NISQ step count).
Cycle unit_latency(const Gate& g);

struct Schedule {
  std::vector<Cycle> start;  // start cycle of each gate
  Cycle depth = 0;           // makespan

  /// Gates grouped by start cycle (ascending); within a group gates are
  /// disjoint on wires only under unit latency — used for layer dumps.
  std::vector<std::vector<std::int32_t>> layers() const;
};

/// ASAP core, generic over the latency callable so concrete models are
/// devirtualized at the call site.
template <typename Latency>
Schedule schedule_asap_with(const Circuit& c, Latency&& latency) {
  Schedule s;
  s.start.resize(c.size(), 0);
  std::vector<Cycle> ready(c.num_qubits(), 0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c[i];
    Cycle t = ready[g.q0];
    if (g.two_qubit()) t = std::max(t, ready[g.q1]);
    const Cycle dur = latency(g);
    s.start[i] = t;
    ready[g.q0] = t + dur;
    if (g.two_qubit()) ready[g.q1] = t + dur;
    s.depth = std::max(s.depth, t + dur);
  }
  return s;
}

Schedule schedule_asap(const Circuit& c, const LatencyFn& latency);

/// Convenience: makespan only.
Cycle circuit_depth(const Circuit& c, const LatencyFn& latency = unit_latency);

}  // namespace qfto
