// Latency-aware ASAP scheduling.
//
// The paper's depth numbers are "cycles to finish all gate operations": on the
// NISQ backends every gate (1q, CPHASE, SWAP) occupies one cycle; on the
// lattice-surgery FT backend latencies are heterogeneous (CNOT = 2 cycles,
// diagonal-link SWAP = 2, axial-link SWAP = 6). The scheduler therefore takes
// a per-gate latency callback and computes the makespan over wires, honouring
// the gate-list order per wire (our emitters produce dependency-ordered
// lists, so per-wire ASAP equals DAG ASAP).
#pragma once

#include <functional>
#include <vector>

#include "circuit/circuit.hpp"

namespace qfto {

/// Returns the duration (in cycles) of a gate. Receives the gate so that
/// architecture latency models can inspect which physical link it uses.
using LatencyFn = std::function<Cycle(const Gate&)>;

/// Unit latency: every gate takes one cycle (the paper's NISQ step count).
Cycle unit_latency(const Gate& g);

struct Schedule {
  std::vector<Cycle> start;  // start cycle of each gate
  Cycle depth = 0;           // makespan

  /// Gates grouped by start cycle (ascending); within a group gates are
  /// disjoint on wires only under unit latency — used for layer dumps.
  std::vector<std::vector<std::int32_t>> layers() const;
};

Schedule schedule_asap(const Circuit& c, const LatencyFn& latency);

/// Convenience: makespan only.
Cycle circuit_depth(const Circuit& c, const LatencyFn& latency = unit_latency);

}  // namespace qfto
