// The logical QFT kernel (Fig. 2 of the paper) and its angle convention.
//
// Convention used throughout qfto:
//   for i in 0..n-1:  H(q_i);  for j in i+1..n-1: CPHASE(q_i, q_j, pi/2^{j-i})
//
// This is the textbook circuit *without* the trailing bit-reversal swaps; the
// linear-depth hardware solutions end with the qubits reversed on the device
// (q_i -> Q_{n-1-i}), which plays the role of the bit reversal.
#pragma once

#include "circuit/circuit.hpp"

namespace qfto {

/// Rotation angle of the QFT CPHASE between logical qubits i < j.
double qft_angle(LogicalQubit i, LogicalQubit j);

/// Textbook-ordered logical QFT circuit on n qubits:
/// n H gates + n(n-1)/2 CPHASE gates.
Circuit qft_logical(std::int32_t n);

/// Number of CPHASE gates in QFT(n).
inline std::int64_t qft_pair_count(std::int64_t n) { return n * (n - 1) / 2; }

}  // namespace qfto
