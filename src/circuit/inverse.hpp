// Circuit inversion. Applications built on the QFT kernel (QPE, Shor) need
// the *inverse* QFT; a mapped forward kernel inverts mechanically — reverse
// the gate list, conjugate the rotations — and the entry/exit mappings swap
// roles. Linear depth and hardware compliance are preserved verbatim.
#pragma once

#include "circuit/mapped_circuit.hpp"

namespace qfto {

/// Adjoint of a circuit over the H/X/RZ/CPHASE/SWAP/CNOT alphabet.
Circuit inverse_circuit(const Circuit& c);

/// Adjoint of a mapped circuit; initial and final mappings trade places.
MappedCircuit inverse_mapped(const MappedCircuit& mc);

}  // namespace qfto
