// Gate-level IR. The QFT mapping problem only needs a small gate alphabet:
// H, CPHASE (controlled phase), SWAP, CNOT, plus X/RZ for the example apps.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace qfto {

enum class GateKind : std::uint8_t {
  kH,       // Hadamard (1q)
  kX,       // Pauli-X (1q)
  kRz,      // Z-rotation by `angle` (1q)
  kCPhase,  // controlled phase by `angle`; diagonal, symmetric in its qubits
  kSwap,    // SWAP (2q)
  kCnot,    // CNOT, q0 = control, q1 = target
};

/// Number of GateKind enumerators (latency tables index on it).
inline constexpr std::size_t kGateKindCount = 6;
static_assert(static_cast<std::size_t>(GateKind::kCnot) + 1 == kGateKindCount,
              "update kGateKindCount when extending GateKind");

/// Returns true for two-qubit kinds. Inline: the scheduler and verifier ask
/// once per gate.
inline bool is_two_qubit(GateKind kind) {
  return kind == GateKind::kCPhase || kind == GateKind::kSwap ||
         kind == GateKind::kCnot;
}

/// Human-readable mnemonic ("H", "CP", "SWAP", ...).
std::string gate_name(GateKind kind);

/// One gate instance. For 1q gates `q1 == kInvalidQubit`.
/// For CPHASE we keep the (control, target) the producer supplied even though
/// the unitary is symmetric, so checkers can report the paper's G(Qi, Qj)
/// orientation.
///
/// Deliberately no default member initializers: every Gate is built through
/// the factories below (which set all four fields), and keeping the type
/// trivially default-constructible lets Circuit allocate a device-scale gate
/// store (GBs at QFT-8192) without an up-front zero/fill pass over it.
struct Gate {
  GateKind kind;
  std::int32_t q0;
  std::int32_t q1;
  double angle;

  // Inline: emitters construct tens of millions of gates on the hot path.
  static Gate h(std::int32_t q) {
    return Gate{GateKind::kH, q, kInvalidQubit, 0.0};
  }
  static Gate x(std::int32_t q) {
    return Gate{GateKind::kX, q, kInvalidQubit, 0.0};
  }
  static Gate rz(std::int32_t q, double angle) {
    return Gate{GateKind::kRz, q, kInvalidQubit, angle};
  }
  static Gate cphase(std::int32_t a, std::int32_t b, double angle) {
    return Gate{GateKind::kCPhase, a, b, angle};
  }
  static Gate swap(std::int32_t a, std::int32_t b) {
    return Gate{GateKind::kSwap, a, b, 0.0};
  }
  static Gate cnot(std::int32_t control, std::int32_t target) {
    return Gate{GateKind::kCnot, control, target, 0.0};
  }

  bool two_qubit() const { return is_two_qubit(kind); }

  /// True if the gate acts on qubit q.
  bool touches(std::int32_t q) const { return q0 == q || q1 == q; }

  std::string to_string() const;
};

bool operator==(const Gate& a, const Gate& b);

}  // namespace qfto
