// Gate-level IR. The QFT mapping problem only needs a small gate alphabet:
// H, CPHASE (controlled phase), SWAP, CNOT, plus X/RZ for the example apps.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace qfto {

enum class GateKind : std::uint8_t {
  kH,       // Hadamard (1q)
  kX,       // Pauli-X (1q)
  kRz,      // Z-rotation by `angle` (1q)
  kCPhase,  // controlled phase by `angle`; diagonal, symmetric in its qubits
  kSwap,    // SWAP (2q)
  kCnot,    // CNOT, q0 = control, q1 = target
};

/// Number of GateKind enumerators (latency tables index on it).
inline constexpr std::size_t kGateKindCount = 6;
static_assert(static_cast<std::size_t>(GateKind::kCnot) + 1 == kGateKindCount,
              "update kGateKindCount when extending GateKind");

/// Returns true for two-qubit kinds. Inline: the scheduler and verifier ask
/// once per gate.
inline bool is_two_qubit(GateKind kind) {
  return kind == GateKind::kCPhase || kind == GateKind::kSwap ||
         kind == GateKind::kCnot;
}

/// Human-readable mnemonic ("H", "CP", "SWAP", ...).
std::string gate_name(GateKind kind);

/// One gate instance. For 1q gates `q1 == kInvalidQubit`.
/// For CPHASE we keep the (control, target) the producer supplied even though
/// the unitary is symmetric, so checkers can report the paper's G(Qi, Qj)
/// orientation.
struct Gate {
  GateKind kind;
  std::int32_t q0 = kInvalidQubit;
  std::int32_t q1 = kInvalidQubit;
  double angle = 0.0;

  static Gate h(std::int32_t q);
  static Gate x(std::int32_t q);
  static Gate rz(std::int32_t q, double angle);
  static Gate cphase(std::int32_t a, std::int32_t b, double angle);
  static Gate swap(std::int32_t a, std::int32_t b);
  static Gate cnot(std::int32_t control, std::int32_t target);

  bool two_qubit() const { return is_two_qubit(kind); }

  /// True if the gate acts on qubit q.
  bool touches(std::int32_t q) const { return q0 == q || q1 == q; }

  std::string to_string() const;
};

bool operator==(const Gate& a, const Gate& b);

}  // namespace qfto
