#include "circuit/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace qfto {

std::vector<std::int32_t> Dag::roots() const {
  std::vector<std::int32_t> indeg(size(), 0);
  for (const auto& ss : succ) {
    for (auto s : ss) ++indeg[s];
  }
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (indeg[i] == 0) out.push_back(static_cast<std::int32_t>(i));
  }
  return out;
}

std::vector<std::int32_t> Dag::topological_order() const {
  std::vector<std::int32_t> indeg(size(), 0);
  for (const auto& ss : succ) {
    for (auto s : ss) ++indeg[s];
  }
  std::vector<std::int32_t> queue;
  for (std::size_t i = 0; i < size(); ++i) {
    if (indeg[i] == 0) queue.push_back(static_cast<std::int32_t>(i));
  }
  std::vector<std::int32_t> order;
  order.reserve(size());
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::int32_t g = queue[head];
    order.push_back(g);
    for (auto s : succ[g]) {
      if (--indeg[s] == 0) queue.push_back(s);
    }
  }
  if (order.size() != size()) {
    throw std::logic_error("Dag::topological_order: cycle detected");
  }
  return order;
}

bool is_diagonal(GateKind kind) {
  return kind == GateKind::kCPhase || kind == GateKind::kRz;
}

namespace {

void add_edge(Dag& dag, std::int32_t from, std::int32_t to) {
  if (from == to) return;
  dag.succ[from].push_back(to);
  dag.pred[to].push_back(from);
}

void dedup(Dag& dag) {
  auto clean = [](std::vector<std::int32_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (auto& v : dag.succ) clean(v);
  for (auto& v : dag.pred) clean(v);
}

}  // namespace

Dag build_strict_dag(const Circuit& c) {
  Dag dag;
  dag.succ.resize(c.size());
  dag.pred.resize(c.size());
  std::vector<std::int32_t> last(c.num_qubits(), -1);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c[i];
    const std::int32_t gi = static_cast<std::int32_t>(i);
    if (last[g.q0] >= 0) add_edge(dag, last[g.q0], gi);
    last[g.q0] = gi;
    if (g.two_qubit()) {
      if (last[g.q1] >= 0) add_edge(dag, last[g.q1], gi);
      last[g.q1] = gi;
    }
  }
  dedup(dag);
  return dag;
}

Dag build_relaxed_dag(const Circuit& c) {
  Dag dag;
  dag.succ.resize(c.size());
  dag.pred.resize(c.size());
  // Per qubit: index of the last non-diagonal ("barrier") gate, and the
  // diagonal gates seen since that barrier.
  std::vector<std::int32_t> last_barrier(c.num_qubits(), -1);
  std::vector<std::vector<std::int32_t>> diag_since(c.num_qubits());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c[i];
    const std::int32_t gi = static_cast<std::int32_t>(i);
    const bool diag = is_diagonal(g.kind);
    auto visit_wire = [&](std::int32_t q) {
      if (diag) {
        if (last_barrier[q] >= 0) add_edge(dag, last_barrier[q], gi);
        diag_since[q].push_back(gi);
      } else {
        for (auto d : diag_since[q]) add_edge(dag, d, gi);
        if (last_barrier[q] >= 0) add_edge(dag, last_barrier[q], gi);
        diag_since[q].clear();
        last_barrier[q] = gi;
      }
    };
    visit_wire(g.q0);
    if (g.two_qubit()) visit_wire(g.q1);
  }
  dedup(dag);
  return dag;
}

bool respects_dag(const Dag& dag, const std::vector<std::int32_t>& order) {
  if (order.size() != dag.size()) return false;
  std::vector<std::int32_t> pos(dag.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::int32_t g = order[i];
    if (g < 0 || static_cast<std::size_t>(g) >= dag.size() || pos[g] >= 0) {
      return false;
    }
    pos[g] = static_cast<std::int32_t>(i);
  }
  for (std::size_t g = 0; g < dag.size(); ++g) {
    for (auto s : dag.succ[g]) {
      if (pos[g] >= pos[s]) return false;
    }
  }
  return true;
}

}  // namespace qfto
