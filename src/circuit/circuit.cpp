#include "circuit/circuit.hpp"

namespace qfto {

Circuit::Circuit(std::int32_t num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 0, "Circuit: negative qubit count");
}

void Circuit::append(const Gate& g) {
  require(g.q0 >= 0 && g.q0 < num_qubits_, "Circuit::append: q0 out of range");
  if (g.two_qubit()) {
    require(g.q1 >= 0 && g.q1 < num_qubits_,
            "Circuit::append: q1 out of range");
    require(g.q0 != g.q1, "Circuit::append: two-qubit gate on a single wire");
  }
  gates_.push_back(g);
}

void Circuit::extend(const Circuit& other) {
  require(other.num_qubits_ == num_qubits_,
          "Circuit::extend: qubit count mismatch");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

std::string Circuit::to_string() const {
  std::string out;
  for (const auto& g : gates_) {
    out += g.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace qfto
