#include "circuit/circuit.hpp"

#include <cstring>

#include "common/prng.hpp"

namespace qfto {

namespace {

/// Hash-combine via the shared SplitMix64 (full-avalanche finalizer).
std::uint64_t mix64(std::uint64_t x) { return SplitMix64(x).next(); }

}  // namespace

Circuit::Circuit(std::int32_t num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 0, "Circuit: negative qubit count");
}

void Circuit::append(const Gate& g) {
  require(g.q0 >= 0 && g.q0 < num_qubits_, "Circuit::append: q0 out of range");
  if (g.two_qubit()) {
    require(g.q1 >= 0 && g.q1 < num_qubits_,
            "Circuit::append: q1 out of range");
    require(g.q0 != g.q1, "Circuit::append: two-qubit gate on a single wire");
  }
  gates_.push_back(g);
}

void Circuit::extend(const Circuit& other) {
  require(other.num_qubits_ == num_qubits_,
          "Circuit::extend: qubit count mismatch");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

std::uint64_t Circuit::fingerprint() const {
  std::uint64_t h = mix64(0x51ab5u ^ static_cast<std::uint64_t>(num_qubits_));
  for (const auto& g : gates_) {
    std::uint64_t angle_bits = 0;
    std::memcpy(&angle_bits, &g.angle, sizeof(angle_bits));
    h = mix64(h ^ static_cast<std::uint64_t>(g.kind));
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.q0))
                   << 32 |
                   static_cast<std::uint32_t>(g.q1)));
    h = mix64(h ^ angle_bits);
  }
  return h;
}

std::string Circuit::to_string() const {
  std::string out;
  for (const auto& g : gates_) {
    out += g.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace qfto
