#include "circuit/circuit.hpp"

#include <cstdint>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/prng.hpp"

namespace qfto {

namespace {

/// Hash-combine via the shared SplitMix64 (full-avalanche finalizer).
std::uint64_t mix64(std::uint64_t x) { return SplitMix64(x).next(); }

}  // namespace

Circuit::Circuit(std::int32_t num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 0, "Circuit: negative qubit count");
}

Circuit& Circuit::operator=(const Circuit& other) {
  if (this == &other) return *this;
  num_qubits_ = other.num_qubits_;
  size_ = other.size_;
  capacity_ = other.size_;  // copies are exact-sized, not reservation-sized
  store_.reset(size_ > 0 ? new Gate[size_] : nullptr);
  if (size_ > 0) {
    std::memcpy(store_.get(), other.store_.get(), size_ * sizeof(Gate));
  }
  return *this;
}

Circuit& Circuit::operator=(Circuit&& other) noexcept {
  num_qubits_ = other.num_qubits_;
  store_ = std::move(other.store_);
  size_ = other.size_;
  capacity_ = other.capacity_;
  other.size_ = 0;
  other.capacity_ = 0;
  return *this;
}

void Circuit::grow(std::size_t need) {
  std::size_t cap = capacity_ == 0 ? 16 : capacity_ * 2;
  if (cap < need) cap = need;
  // Gate is trivially default-constructible, so new[] leaves the tail
  // uninitialized — no zero/fill pass over what can be a multi-GB block.
  std::unique_ptr<Gate[]> fresh(new Gate[cap]);
  if (size_ > 0) {
    std::memcpy(fresh.get(), store_.get(), size_ * sizeof(Gate));
  }
  store_ = std::move(fresh);
  capacity_ = cap;
}

void Circuit::reserve(std::size_t gate_count) {
  if (gate_count <= capacity_) return;
  grow(gate_count);
#if defined(__linux__) && defined(MADV_POPULATE_WRITE)
  // Batch the soft page faults of a device-scale reservation up front: one
  // kernel pass over the fresh mapping is measurably cheaper than taking the
  // same faults interleaved with the emit loop. Deliberately NOT
  // MADV_HUGEPAGE: with `defrag=madvise` (the common default) huge-page
  // faults run synchronous compaction and can be several times slower per
  // byte than plain 4 KiB population. Best-effort: errors are ignored (the
  // advice flag is 5.14+; pre-populate is an optimization, not a contract).
  constexpr std::uintptr_t kPage = 4096;
  const std::size_t bytes = capacity_ * sizeof(Gate);
  if (bytes >= (std::size_t{16} << 20)) {
    const auto base = reinterpret_cast<std::uintptr_t>(store_.get());
    const std::uintptr_t lo = (base + kPage - 1) & ~(kPage - 1);
    const std::uintptr_t hi = (base + bytes) & ~(kPage - 1);
    if (hi > lo) {
      madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_POPULATE_WRITE);
    }
  }
#endif
}

void Circuit::extend(const Circuit& other) {
  require(other.num_qubits_ == num_qubits_,
          "Circuit::extend: qubit count mismatch");
  if (other.size_ == 0) return;
  if (size_ + other.size_ > capacity_) grow(size_ + other.size_);
  std::memcpy(store_.get() + size_, other.store_.get(),
              other.size_ * sizeof(Gate));
  size_ += other.size_;
}

std::uint64_t Circuit::fingerprint() const {
  std::uint64_t h = mix64(0x51ab5u ^ static_cast<std::uint64_t>(num_qubits_));
  for (const auto& g : *this) {
    std::uint64_t angle_bits = 0;
    std::memcpy(&angle_bits, &g.angle, sizeof(angle_bits));
    h = mix64(h ^ static_cast<std::uint64_t>(g.kind));
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.q0))
                   << 32 |
                   static_cast<std::uint32_t>(g.q1)));
    h = mix64(h ^ angle_bits);
  }
  return h;
}

std::string Circuit::to_string() const {
  std::string out;
  for (const auto& g : *this) {
    out += g.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace qfto
