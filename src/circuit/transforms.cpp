#include "circuit/transforms.hpp"

#include <cmath>

namespace qfto {

Circuit decompose_to_cnot(const Circuit& c) {
  Circuit out(c.num_qubits());
  for (const auto& g : c) {
    switch (g.kind) {
      case GateKind::kSwap:
        out.append(Gate::cnot(g.q0, g.q1));
        out.append(Gate::cnot(g.q1, g.q0));
        out.append(Gate::cnot(g.q0, g.q1));
        break;
      case GateKind::kCPhase:
        // diag(1,1,1,e^{i a}) == Rz_c(a/2) Rz_t(a/2) CNOT Rz_t(-a/2) CNOT
        // with Rz = diag(1, e^{i a}) (exact, no global phase residue).
        out.append(Gate::rz(g.q0, g.angle / 2));
        out.append(Gate::rz(g.q1, g.angle / 2));
        out.append(Gate::cnot(g.q0, g.q1));
        out.append(Gate::rz(g.q1, -g.angle / 2));
        out.append(Gate::cnot(g.q0, g.q1));
        break;
      default:
        out.append(g);
        break;
    }
  }
  return out;
}

Circuit prune_small_rotations(const Circuit& c, std::int32_t max_k) {
  require(max_k >= 1, "prune_small_rotations: max_k >= 1");
  const double threshold = M_PI / std::pow(2.0, static_cast<double>(max_k));
  Circuit out(c.num_qubits());
  for (const auto& g : c) {
    if (g.kind == GateKind::kCPhase &&
        std::abs(g.angle) < threshold * (1.0 - 1e-12)) {
      continue;
    }
    out.append(g);
  }
  return out;
}

std::int64_t aqft_pair_count(std::int64_t n, std::int64_t max_k) {
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    count += std::min(n - 1 - i, max_k);
  }
  return count;
}

}  // namespace qfto
