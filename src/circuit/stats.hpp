// Gate-count statistics used by every benchmark table.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"

namespace qfto {

struct GateCounts {
  std::int64_t h = 0;
  std::int64_t x = 0;
  std::int64_t rz = 0;
  std::int64_t cphase = 0;
  std::int64_t swap = 0;
  std::int64_t cnot = 0;

  std::int64_t total() const { return h + x + rz + cphase + swap + cnot; }
  std::int64_t two_qubit() const { return cphase + swap + cnot; }

  std::string to_string() const;
};

GateCounts count_gates(const Circuit& c);

}  // namespace qfto
