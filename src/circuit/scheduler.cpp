#include "circuit/scheduler.hpp"

namespace qfto {

Cycle unit_latency(const Gate&) { return 1; }

std::vector<std::vector<std::int32_t>> Schedule::layers() const {
  if (start.empty()) return {};
  // Start cycles are bounded by the makespan, so a bucket fill replaces the
  // former std::map: no comparisons, no per-node allocations. Size by the
  // max start actually present — hand-filled Schedules may carry starts past
  // their depth field (or a huge depth with small starts), and trailing
  // empty buckets are dropped anyway.
  Cycle last = 0;
  for (const Cycle s : start) {
    require(s >= 0, "Schedule::layers: negative start cycle");
    last = std::max(last, s);
  }
  std::vector<std::vector<std::int32_t>> buckets(
      static_cast<std::size_t>(last) + 1);
  for (std::size_t i = 0; i < start.size(); ++i) {
    buckets[static_cast<std::size_t>(start[i])].push_back(
        static_cast<std::int32_t>(i));
  }
  std::vector<std::vector<std::int32_t>> out;
  for (auto& gates : buckets) {
    if (!gates.empty()) out.push_back(std::move(gates));
  }
  return out;
}

Schedule schedule_asap(const Circuit& c, const LatencyFn& latency) {
  return schedule_asap_with(c, latency);
}

Cycle circuit_depth(const Circuit& c, const LatencyFn& latency) {
  return schedule_asap(c, latency).depth;
}

}  // namespace qfto
