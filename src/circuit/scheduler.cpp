#include "circuit/scheduler.hpp"

#include <algorithm>
#include <map>

namespace qfto {

Cycle unit_latency(const Gate&) { return 1; }

std::vector<std::vector<std::int32_t>> Schedule::layers() const {
  std::map<Cycle, std::vector<std::int32_t>> by_start;
  for (std::size_t i = 0; i < start.size(); ++i) {
    by_start[start[i]].push_back(static_cast<std::int32_t>(i));
  }
  std::vector<std::vector<std::int32_t>> out;
  out.reserve(by_start.size());
  for (auto& [cycle, gates] : by_start) out.push_back(std::move(gates));
  return out;
}

Schedule schedule_asap(const Circuit& c, const LatencyFn& latency) {
  Schedule s;
  s.start.resize(c.size(), 0);
  std::vector<Cycle> ready(c.num_qubits(), 0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c[i];
    Cycle t = ready[g.q0];
    if (g.two_qubit()) t = std::max(t, ready[g.q1]);
    const Cycle dur = latency(g);
    s.start[i] = t;
    ready[g.q0] = t + dur;
    if (g.two_qubit()) ready[g.q1] = t + dur;
    s.depth = std::max(s.depth, t + dur);
  }
  return s;
}

Cycle circuit_depth(const Circuit& c, const LatencyFn& latency) {
  return schedule_asap(c, latency).depth;
}

}  // namespace qfto
