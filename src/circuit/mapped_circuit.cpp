#include "circuit/mapped_circuit.hpp"

namespace qfto {

bool valid_mapping(const std::vector<PhysicalQubit>& mapping,
                   std::int32_t num_physical) {
  std::vector<std::uint8_t> seen(num_physical, 0);
  for (PhysicalQubit p : mapping) {
    if (p < 0 || p >= num_physical || seen[p]) return false;
    seen[p] = 1;
  }
  return true;
}

}  // namespace qfto
