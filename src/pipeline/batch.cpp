#include "pipeline/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace qfto {

std::vector<BatchItem> map_qft_batch(const std::vector<BatchRequest>& requests,
                                     std::int32_t num_threads,
                                     const MapperPipeline& pipeline) {
  std::vector<BatchItem> items(requests.size());
  if (requests.empty()) return items;

  if (num_threads <= 0) {
    num_threads = static_cast<std::int32_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  num_threads = std::min<std::int32_t>(
      num_threads, static_cast<std::int32_t>(requests.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1); i < requests.size();
         i = next.fetch_add(1)) {
      const BatchRequest& req = requests[i];
      try {
        items[i].result = pipeline.run(req.engine, req.n, req.options);
        items[i].ok = true;
      } catch (const std::exception& e) {
        items[i].error = e.what();
      } catch (...) {
        // Exceptions may not escape the worker thread (std::terminate);
        // custom engines are not bound to std::exception.
        items[i].error = "unknown error";
      }
    }
  };

  if (num_threads == 1) {
    worker();
    return items;
  }
  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (std::int32_t t = 0; t < num_threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return items;
}

}  // namespace qfto
