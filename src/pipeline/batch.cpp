#include "pipeline/batch.hpp"

#include <algorithm>
#include <optional>

#include "service/mapping_service.hpp"

namespace qfto {

std::vector<BatchItem> map_qft_batch(const std::vector<BatchRequest>& requests,
                                     std::int32_t num_threads,
                                     const MapperPipeline& pipeline) {
  std::vector<BatchItem> items(requests.size());
  if (requests.empty()) return items;

  // The shared service owns the persistent worker pool — no per-call thread
  // spawn/join. A caller-supplied registry cannot ride that pool (it is
  // bound to the global pipeline), so it gets a service scoped to the call:
  // same code path, private workers.
  std::optional<MappingService> local;
  MappingService* service;
  if (&pipeline == &MapperPipeline::global()) {
    service = &MappingService::shared();
  } else {
    MappingService::Options options;
    options.num_threads = num_threads;
    local.emplace(options, pipeline);
    service = &*local;
  }

  // `num_threads` keeps its historic meaning as the concurrency bound: at
  // most that many requests are in flight at once (windowed submission over
  // the pool). Collection order is request order, which also makes the
  // oldest handle the natural one to wait on.
  const std::size_t window =
      num_threads <= 0 ? requests.size()
                       : static_cast<std::size_t>(num_threads);
  std::vector<JobHandle> handles(requests.size());
  std::size_t submitted = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    while (submitted < requests.size() && submitted - i < window) {
      handles[submitted] = service->submit(requests[submitted]);
      ++submitted;
    }
    JobResult outcome = handles[i].wait();
    if (outcome.ok()) {
      items[i].ok = true;
      // A cache hit aliases the shared cache entry and must be copied out,
      // but a miss is owned solely by this batch's private job (the cache
      // keeps its own normalized copy, never this object): the only two
      // references are `outcome.result` and the job state behind our local
      // handle, so moving out skips a potentially multi-megabyte deep copy
      // per item.
      if (!outcome.result->cache_hit && outcome.result.use_count() == 2) {
        items[i].result =
            std::move(const_cast<MapResult&>(*outcome.result));
      } else {
        items[i].result = *outcome.result;
      }
    } else {
      // Engine failures were exceptions in the thread-pool era; the service
      // captures them per job, so the error text flows through unchanged.
      items[i].error = outcome.error.empty() ? "unknown error" : outcome.error;
    }
  }
  return items;
}

}  // namespace qfto
