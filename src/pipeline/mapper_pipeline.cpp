#include "pipeline/mapper_pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "common/timer.hpp"

namespace qfto {

void MapperPipeline::register_engine(
    std::unique_ptr<const MapperEngine> engine) {
  require(engine != nullptr, "MapperPipeline: null engine");
  const std::string key = engine->name();
  require(!key.empty(), "MapperPipeline: engine with empty name");
  engines_[key] = std::move(engine);
}

std::vector<std::string> MapperPipeline::engine_names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [key, engine] : engines_) names.push_back(key);
  return names;  // std::map iteration order is already sorted
}

bool MapperPipeline::has(const std::string& name) const {
  return engines_.count(name) != 0;
}

const MapperEngine* MapperPipeline::find(const std::string& name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

const MapperEngine& MapperPipeline::at(const std::string& name) const {
  const MapperEngine* engine = find(name);
  if (engine == nullptr) {
    std::string known;
    for (const auto& key : engine_names()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::invalid_argument("MapperPipeline: unknown engine '" + name +
                                "' (known: " + known + ")");
  }
  return *engine;
}

MapResult MapperPipeline::run(const std::string& engine_name, std::int32_t n,
                              const MapOptions& opts) const {
  require(n >= 1, "MapperPipeline::run: n >= 1");
  // Sane ceiling: keeps native-size arithmetic (rounding up to squares /
  // multiples of five) comfortably inside int32 on hostile CLI input.
  require(n <= 16'777'216, "MapperPipeline::run: n too large");
  const MapperEngine& engine = at(engine_name);

  // Serving checks: between stages the run honours the cooperative cancel
  // token and the per-run deadline. Analytical engines finish a stage in
  // microseconds-to-milliseconds, so stage granularity bounds cancel
  // latency; SATMAP additionally polls the token mid-solve.
  Deadline deadline(opts.deadline_seconds);
  const auto ensure_live = [&](const char* stage) {
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed)) {
      throw MapCancelled(false, std::string("cancelled before ") + stage);
    }
    if (opts.deadline_seconds > 0.0 && deadline.expired()) {
      throw MapCancelled(true,
                         std::string("deadline exceeded before ") + stage);
    }
  };

  MapResult result;
  result.engine = engine.name();
  result.requested_n = n;
  result.n = engine.native_size(n);
  ensure_live("graph build");
  result.graph = engine.build_graph(result.n, opts);
  ensure_live("map");

  WallTimer timer;
  // Install a stats sink so SAT-backed engines report their search effort
  // into MapResult::timings; a caller-supplied sink still gets the numbers —
  // also on engine failure (a TLE'd SATMAP run throws after recording real
  // counters, the primary diagnostic use of the sink).
  MapOptions map_opts = opts;
  map_opts.satmap.stats_out = &result.timings.sat;
  const auto copy_back_stats = [&]() {
    if (opts.satmap.stats_out != nullptr) {
      *opts.satmap.stats_out = result.timings.sat;
    }
  };
  try {
    result.mapped = engine.map(result.n, result.graph, map_opts);
  } catch (...) {
    copy_back_stats();
    throw;
  }
  copy_back_stats();
  result.timings.map_seconds = timer.seconds();
  ensure_live("verify");

  if (opts.verify) {
    timer.reset();
    const LatencyModel latency = engine.latency_model(result.graph);
    // Streaming path: one fused pass (adjacency/ordering/angle checks, ASAP
    // depth, gate counts) through IncrementalQftChecker. The replay path is
    // the pre-rewrite algorithm, kept selectable for differential testing.
    result.check =
        opts.incremental_verify
            ? check_qft_mapping(result.mapped, result.graph, latency)
            : check_qft_mapping_replay(result.mapped, result.graph,
                                       LatencyFn(latency));
    result.timings.check_seconds = timer.seconds();
  }
  return result;
}

const MapperPipeline& MapperPipeline::global() {
  static const MapperPipeline pipeline = MapperPipeline::with_paper_engines();
  return pipeline;
}

MapResult map_qft(const std::string& arch, std::int32_t n,
                  const MapOptions& opts) {
  return MapperPipeline::global().run(arch, n, opts);
}

}  // namespace qfto
