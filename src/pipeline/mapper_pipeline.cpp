#include "pipeline/mapper_pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "arch/device_model.hpp"
#include "circuit/qft_spec.hpp"
#include "common/timer.hpp"
#include "verify/circuit_checker.hpp"
#include "verify/fidelity.hpp"

namespace qfto {

MappedCircuit MapperEngine::map(std::int32_t n, const CouplingGraph& g,
                                const MapOptions& opts) const {
  return map_circuit(qft_logical(n), g, opts);
}

MappedCircuit MapperEngine::map_circuit(const Circuit& logical,
                                        const CouplingGraph& g,
                                        const MapOptions& opts) const {
  SabreOptions sopts = opts.sabre;
  if (opts.objective == Objective::kFidelity) {
    sopts.fidelity_objective = true;
    sopts.device = opts.device.get();
  }
  return sabre_route(logical, g, sopts);
}

void MapperPipeline::register_engine(
    std::unique_ptr<const MapperEngine> engine) {
  require(engine != nullptr, "MapperPipeline: null engine");
  const std::string key = engine->name();
  require(!key.empty(), "MapperPipeline: engine with empty name");
  engines_[key] = std::move(engine);
}

std::vector<std::string> MapperPipeline::engine_names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [key, engine] : engines_) names.push_back(key);
  return names;  // std::map iteration order is already sorted
}

bool MapperPipeline::has(const std::string& name) const {
  return engines_.count(name) != 0;
}

const MapperEngine* MapperPipeline::find(const std::string& name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.get();
}

const MapperEngine& MapperPipeline::at(const std::string& name) const {
  const MapperEngine* engine = find(name);
  if (engine == nullptr) {
    std::string known;
    for (const auto& key : engine_names()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::invalid_argument("MapperPipeline: unknown engine '" + name +
                                "' (known: " + known + ")");
  }
  return *engine;
}

namespace {

/// Serving checks shared by both entry points: between stages the run
/// honours the cooperative cancel token and the per-run deadline. Analytical
/// engines finish a stage in microseconds-to-milliseconds, so stage
/// granularity bounds cancel latency; SATMAP additionally polls the token
/// mid-solve.
class LiveGuard {
 public:
  explicit LiveGuard(const MapOptions& opts)
      : opts_(opts), deadline_(opts.deadline_seconds) {}

  void ensure(const char* stage) const {
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      throw MapCancelled(false, std::string("cancelled before ") + stage);
    }
    if (opts_.deadline_seconds > 0.0 && deadline_.expired()) {
      throw MapCancelled(true,
                         std::string("deadline exceeded before ") + stage);
    }
  }

 private:
  const MapOptions& opts_;
  Deadline deadline_;
};

/// Runs the map stage with the SAT stats sink installed so SAT-backed
/// engines report their search effort into MapResult::timings; a caller-
/// supplied sink still gets the numbers — also on engine failure (a TLE'd
/// SATMAP run throws after recording real counters, the primary diagnostic
/// use of the sink).
template <typename MapFn>
void timed_map_stage(MapResult& result, const MapOptions& opts,
                     MapFn&& map_fn) {
  WallTimer timer;
  MapOptions map_opts = opts;
  map_opts.satmap.stats_out = &result.timings.sat;
  map_opts.satmap.winner_out = &result.timings.sat_winner;
  const auto copy_back_stats = [&]() {
    if (opts.satmap.stats_out != nullptr) {
      *opts.satmap.stats_out = result.timings.sat;
    }
    if (opts.satmap.winner_out != nullptr) {
      *opts.satmap.winner_out = result.timings.sat_winner;
    }
  };
  try {
    result.mapped = map_fn(map_opts);
  } catch (...) {
    copy_back_stats();
    throw;
  }
  copy_back_stats();
  result.timings.map_seconds = timer.seconds();
}

/// Pipeline-entry validation of MapOptions::device against the engine.
void check_device(const MapperEngine& engine, const MapOptions& opts) {
  if (opts.device == nullptr) return;
  require(opts.target == nullptr,
          "MapperPipeline: device and target are mutually exclusive");
  require(engine.accepts_device(),
          "MapperPipeline: engine '" + engine.name() +
              "' owns its topology and does not accept a device model "
              "(routed engines do: sabre, satmap)");
}

/// Verification charges the device's calibration table when the run carries
/// one; the engine's native model otherwise.
LatencyModel resolved_latency(const MapperEngine& engine,
                              const MapOptions& opts, const CouplingGraph& g) {
  return opts.device != nullptr ? opts.device->latency_model(g)
                                : engine.latency_model(g);
}

/// Fills MapResult::log10_fidelity once the check passed: the per-edge
/// calibrated walk under a device, the closed-form NoiseModel estimate over
/// the checker's already-computed counts and depth otherwise.
void fill_fidelity(MapResult& result, const MapOptions& opts) {
  if (!result.check.ok) return;
  result.log10_fidelity =
      opts.device != nullptr
          ? log10_fidelity(result.mapped.circuit, *opts.device,
                           opts.device->latency_model(result.graph))
          : log10_fidelity(result.check.counts, result.check.depth,
                           NoiseModel{});
}

}  // namespace

MapResult MapperPipeline::run(const std::string& engine_name, std::int32_t n,
                              const MapOptions& opts) const {
  require(n >= 1, "MapperPipeline::run: n >= 1");
  // Sane ceiling: keeps native-size arithmetic (rounding up to squares /
  // multiples of five) comfortably inside int32 on hostile CLI input.
  require(n <= 16'777'216, "MapperPipeline::run: n too large");
  const MapperEngine& engine = at(engine_name);
  check_device(engine, opts);
  const LiveGuard live(opts);

  MapResult result;
  result.engine = engine.name();
  result.requested_n = n;
  result.n = engine.native_size(n);
  live.ensure("graph build");
  result.graph = engine.build_graph(result.n, opts);
  live.ensure("map");

  // Fused mode: hand the engine an audit sink so the emitter verifies while
  // it emits. Engines that bypass LayerEmitter (the routed baselines) simply
  // never engage it, and the streaming fallback below picks up the check.
  verify::EmitAudit audit;
  const bool fused = opts.verify && opts.verify_mode == VerifyMode::kFused;
  if (fused) audit.model = resolved_latency(engine, opts, result.graph);

  timed_map_stage(result, opts, [&](MapOptions map_opts) {
    if (fused) map_opts.audit = &audit;
    return engine.map(result.n, result.graph, map_opts);
  });
  live.ensure("verify");

  if (opts.verify) {
    if (fused && audit.engaged) {
      // The verdict was computed gate-by-gate inside the map stage; there is
      // no separate pass to time.
      result.check = std::move(audit.result);
    } else {
      WallTimer timer;
      const LatencyModel latency = resolved_latency(engine, opts, result.graph);
      // Streaming path: one fused pass (adjacency/ordering/angle checks,
      // ASAP depth, gate counts) through IncrementalQftChecker. The replay
      // path is the pre-rewrite algorithm, kept for differential testing.
      result.check =
          opts.verify_mode == VerifyMode::kReplay
              ? check_qft_mapping_replay(result.mapped, result.graph,
                                         LatencyFn(latency))
              : check_qft_mapping(result.mapped, result.graph, latency);
      result.timings.check_seconds = timer.seconds();
    }
    fill_fidelity(result, opts);
  }
  return result;
}

MapResult MapperPipeline::run_circuit(const std::string& engine_name,
                                      const Circuit& logical,
                                      const MapOptions& opts) const {
  const std::int32_t n = logical.num_qubits();
  require(n >= 1, "MapperPipeline::run_circuit: circuit has no qubits");
  require(n <= 16'777'216, "MapperPipeline::run_circuit: circuit too large");
  const MapperEngine& engine = at(engine_name);
  check_device(engine, opts);
  const LiveGuard live(opts);

  MapResult result;
  result.engine = engine.name();
  // A circuit is never resized: both size fields report its qubit count and
  // result.graph carries the (possibly snapped-larger) physical register.
  result.requested_n = n;
  result.n = n;
  live.ensure("graph build");
  result.graph = engine.build_graph(engine.native_size(n), opts);
  require(result.graph.num_qubits() >= n,
          "MapperPipeline::run_circuit: engine graph smaller than the "
          "circuit");
  live.ensure("map");

  timed_map_stage(result, opts, [&](const MapOptions& map_opts) {
    return engine.map_circuit(logical, result.graph, map_opts);
  });
  live.ensure("verify");

  if (opts.verify) {
    WallTimer timer;
    // General inputs verify through the MappingTracker-based replay matcher
    // (per-entry-point verification: only QFT requests can use the QFT-spec
    // streaming checker).
    result.check = check_circuit_mapping(result.mapped, logical, result.graph,
                                         resolved_latency(engine, opts,
                                                          result.graph));
    result.timings.check_seconds = timer.seconds();
    fill_fidelity(result, opts);
  }
  return result;
}

const MapperPipeline& MapperPipeline::global() {
  static const MapperPipeline pipeline = MapperPipeline::with_paper_engines();
  return pipeline;
}

MapResult map_qft(const std::string& arch, std::int32_t n,
                  const MapOptions& opts) {
  return MapperPipeline::global().run(arch, n, opts);
}

MapResult map_circuit(const std::string& arch, const Circuit& logical,
                      const MapOptions& opts) {
  return MapperPipeline::global().run_circuit(arch, logical, opts);
}

}  // namespace qfto
