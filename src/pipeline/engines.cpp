// The seven paper engines registered behind MapperPipeline: the four
// structured mappers (§2.2, §4, §5, §6) and the three baselines (§7).
#include <algorithm>
#include <memory>
#include <stdexcept>

#include "arch/device_model.hpp"
#include "arch/grid.hpp"
#include "arch/heavy_hex.hpp"
#include "arch/lattice_surgery.hpp"
#include "arch/line.hpp"
#include "arch/sycamore.hpp"
#include "baseline/lnn_baseline.hpp"
#include "circuit/qft_spec.hpp"
#include "mapper/heavy_hex_mapper.hpp"
#include "mapper/lattice_mapper.hpp"
#include "mapper/lnn_mapper.hpp"
#include "mapper/sycamore_mapper.hpp"
#include "pipeline/mapper_pipeline.hpp"

namespace qfto {
namespace {

/// Smallest m >= lo with m*m >= n. 64-bit square so huge n cannot overflow.
std::int32_t grid_side(std::int32_t n, std::int32_t lo) {
  std::int32_t m = lo;
  while (static_cast<std::int64_t>(m) * m < n) ++m;
  return m;
}

// ------------------------------------------------------ structured mappers --

class LnnEngine final : public MapperEngine {
 public:
  std::string name() const override { return "lnn"; }
  std::string description() const override {
    return "linear-depth LNN QFT (Maslov/Zhang base case, §2.2)";
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    return make_line(n);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    return map_qft_lnn(n, opts.audit);
  }
};

class HeavyHexEngine final : public MapperEngine {
 public:
  std::string name() const override { return "heavy_hex"; }
  std::string description() const override {
    return "heavy-hex main line + dangling points (§4, N multiple of 5)";
  }
  std::int32_t native_size(std::int32_t n) const override {
    return n <= 5 ? 5 : (n + 4) / 5 * 5;
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    return make_heavy_hex(heavy_hex_layout(n));
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    return map_qft_heavy_hex(n, opts.audit);
  }
};

/// The *full* heavy-hex device engine (Appendix 1): builds the unreduced
/// device graph — rows of `kCols` qubits joined by bridge qubits — then maps
/// via the reduction-to-main-line path of map_qft_heavy_hex_device. The
/// mapped circuit is valid on the full device graph; the deleted links are
/// simply never used.
class HeavyHexDeviceEngine final : public MapperEngine {
 public:
  /// IBM-style 13-qubit rows (cols ≡ 1 mod 4 so both row ends carry a
  /// bridge). With 4 bridges per gap, r rows give N = 17r - 4 qubits.
  static constexpr std::int32_t kCols = 13;

  std::string name() const override { return "heavy_hex_device"; }
  std::string description() const override {
    return "full heavy-hex device via the Appendix-1 reduction (N = 17r - 4)";
  }
  std::int32_t native_size(std::int32_t n) const override {
    const std::int32_t r =
        std::max<std::int32_t>(1, static_cast<std::int32_t>((n + 4 + 16) / 17));
    return 17 * r - 4;
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    return make_heavy_hex_device(rows_for(n), kCols).graph;
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    return map_qft_heavy_hex_device(make_heavy_hex_device(rows_for(n), kCols),
                                    opts.audit);
  }

 private:
  /// Rows for a *native* n (n = 17r - 4 exactly).
  static std::int32_t rows_for(std::int32_t n) {
    const std::int32_t r = (n + 4) / 17;
    require(17 * r - 4 == n, "heavy_hex_device: n is not a native size");
    return r;
  }
};

class SycamoreEngine final : public MapperEngine {
 public:
  std::string name() const override { return "sycamore"; }
  std::string description() const override {
    return "Sycamore unit divide-and-conquer (§5, N = m*m with even m)";
  }
  std::int32_t native_size(std::int32_t n) const override {
    std::int32_t m = grid_side(n, 2);
    if (m % 2 != 0) ++m;
    return m * m;
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    return make_sycamore(grid_side(n, 2));
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    return map_qft_sycamore(grid_side(n, 2), opts.strict_ie, opts.audit);
  }
};

class LatticeEngine final : public MapperEngine {
 public:
  std::string name() const override { return "lattice"; }
  std::string description() const override {
    return "lattice-surgery row units on the rotated graph (§6, N = m*m)";
  }
  std::int32_t native_size(std::int32_t n) const override {
    const std::int32_t m = grid_side(n, 2);
    return m * m;
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    return make_lattice_surgery_rotated(grid_side(n, 2));
  }
  LatencyModel latency_model(const CouplingGraph& g) const override {
    return LatencyModel::lattice(g);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    LatticeMapperOptions lopts;
    lopts.strict_ie = opts.strict_ie;
    lopts.phase_offset = opts.lattice_phase_offset;
    lopts.transversal_unit_swap = opts.transversal_unit_swap;
    return map_qft_lattice(grid_side(n, 2), lopts, opts.audit);
  }
};

class Grid2dEngine final : public MapperEngine {
 public:
  std::string name() const override { return "grid"; }
  std::string description() const override {
    return "row-unit scheme on the plain 2D grid (Appendix 7, N = m*m)";
  }
  std::int32_t native_size(std::int32_t n) const override {
    const std::int32_t m = grid_side(n, 2);
    return m * m;
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    const std::int32_t m = grid_side(n, 2);
    return make_grid(m, m);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph&,
                    const MapOptions& opts) const override {
    LatticeMapperOptions lopts;
    lopts.strict_ie = opts.strict_ie;
    lopts.phase_offset = opts.lattice_phase_offset;
    lopts.transversal_unit_swap = opts.transversal_unit_swap;
    return map_qft_grid2d(grid_side(n, 2), lopts, opts.audit);
  }
};

// --------------------------------------------------------------- baselines --

class LnnBaselineEngine final : public MapperEngine {
 public:
  std::string name() const override { return "lnn_baseline"; }
  std::string description() const override {
    return "LNN snake path on the full lattice-surgery graph (§7, Fig. 19)";
  }
  std::int32_t native_size(std::int32_t n) const override {
    const std::int32_t m = grid_side(n, 2);
    return m * m;
  }
  CouplingGraph build_graph(std::int32_t n, const MapOptions&) const override {
    return make_lattice_surgery_full(grid_side(n, 2));
  }
  LatencyModel latency_model(const CouplingGraph& g) const override {
    // The snake rides the axial links; charging the §2.3 weighted model is
    // exactly the comparison the paper makes against this baseline.
    return LatencyModel::lattice(g);
  }
  MappedCircuit map(std::int32_t n, const CouplingGraph& g,
                    const MapOptions& opts) const override {
    return map_qft_on_path(g, lattice_snake_path(grid_side(n, 2)), opts.audit);
  }
};

/// Shared target-graph selection for the routed baselines: a calibrated
/// DeviceModel when the request carries one, else the caller-supplied target
/// graph (§7.2 gives baselines all links), else the native line.
CouplingGraph routed_target(std::int32_t n, const MapOptions& opts,
                            const char* who) {
  if (opts.device != nullptr) {
    require(opts.device->num_qubits() >= n,
            std::string(who) + ": device '" + opts.device->name() +
                "' has fewer qubits than the circuit");
    return opts.device->build_graph();
  }
  if (opts.target == nullptr) return make_line(n);
  require(opts.target->num_qubits() >= n,
          std::string(who) + ": target graph smaller than the circuit");
  return *opts.target;
}

class SabreEngine final : public MapperEngine {
 public:
  std::string name() const override { return "sabre"; }
  std::string description() const override {
    return "SABRE heuristic router (ASPLOS'19 baseline; line or target graph)";
  }
  bool accepts_device() const override { return true; }
  CouplingGraph build_graph(std::int32_t n,
                            const MapOptions& opts) const override {
    return routed_target(n, opts, "sabre");
  }
  // map()/map_circuit() are the base-class defaults: route the circuit (or
  // the QFT spec) with SABRE on the target graph; the base bridge forwards
  // MapOptions::objective/device into SabreOptions for the fidelity mode.
};

class SatmapEngine final : public MapperEngine {
 public:
  std::string name() const override { return "satmap"; }
  std::string description() const override {
    return "SATMAP optimal SAT router (MICRO'22 baseline; TLE beyond ~10q)";
  }
  bool deterministic() const override {
    // Solved-vs-TLE depends on wall-clock load, so identical requests may
    // legitimately differ run to run — never serve SATMAP from the cache.
    return false;
  }
  /// Maps onto the device's graph and verifies under its latency table, but
  /// the SAT search itself stays depth-optimal: MapOptions::objective is a
  /// routing heuristic knob and SATMAP has no heuristic to steer.
  bool accepts_device() const override { return true; }
  CouplingGraph build_graph(std::int32_t n,
                            const MapOptions& opts) const override {
    return routed_target(n, opts, "satmap");
  }
  MappedCircuit map_circuit(const Circuit& logical, const CouplingGraph& g,
                            const MapOptions& opts) const override {
    // Serving hooks: a deadlined job hands SATMAP only the remaining budget
    // (so it TLEs inside the deadline), and the cancel token reaches the
    // CDCL search loop for mid-solve abort. map() inherits the base-class
    // QFT-spec wrapper, so QFT and general requests share this one path.
    SatmapOptions sopts = opts.satmap;
    sopts.cancel = opts.cancel;
    if (opts.deadline_seconds > 0.0 &&
        (sopts.time_budget_seconds <= 0.0 ||
         opts.deadline_seconds < sopts.time_budget_seconds)) {
      sopts.time_budget_seconds = opts.deadline_seconds;
    }
    const SatmapResult result = satmap_route(logical, g, sopts);
    if (result.cancelled) {
      throw MapCancelled(false, "satmap: cancelled mid-solve");
    }
    if (!result.solved) {
      throw std::runtime_error(
          result.timed_out
              ? "satmap: time budget exhausted (the Table 1 TLE outcome)"
              : "satmap: no schedule within the layer bound");
    }
    return result.mapped;
  }
};

}  // namespace

MapperPipeline MapperPipeline::with_paper_engines() {
  MapperPipeline pipeline;
  pipeline.register_engine(std::make_unique<LnnEngine>());
  pipeline.register_engine(std::make_unique<HeavyHexEngine>());
  pipeline.register_engine(std::make_unique<HeavyHexDeviceEngine>());
  pipeline.register_engine(std::make_unique<SycamoreEngine>());
  pipeline.register_engine(std::make_unique<LatticeEngine>());
  pipeline.register_engine(std::make_unique<Grid2dEngine>());
  pipeline.register_engine(std::make_unique<LnnBaselineEngine>());
  pipeline.register_engine(std::make_unique<SabreEngine>());
  pipeline.register_engine(std::make_unique<SatmapEngine>());
  return pipeline;
}

}  // namespace qfto
