// Unified mapping pipeline: every QFT mapper and baseline in qfto behind one
// string-keyed facade, in the spirit of percy's interchangeable SAT engines.
//
//   MapResult r = map_qft("sycamore", 36);
//   r.mapped     — the hardware circuit + initial/final mappings
//   r.graph      — the native coupling graph the circuit targets
//   r.check      — static-checker verdict, depth (native latency) and counts
//   r.timings    — wall-clock split between mapping and verification
//
// Engines snap the requested size up to the nearest native size (e.g.
// `sycamore` maps n=30 on the m=6 grid, N=36) and report both numbers.
// Structured mappers own their topology; the routed baselines (`sabre`,
// `satmap`) route the logical QFT on a line by default and accept any
// target graph via MapOptions::target.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "arch/latency_model.hpp"
#include "baseline/sabre.hpp"
#include "baseline/satmap.hpp"
#include "circuit/mapped_circuit.hpp"
#include "verify/qft_checker.hpp"
#include "verify/verifier.hpp"

namespace qfto {

class DeviceModel;

/// What the mapper optimizes for (MapOptions::objective). Depth is the
/// paper's metric and the default; fidelity scores candidate SWAPs by the
/// calibrated expected log-success (SABRE's fidelity-aware cost mode) and
/// picks the trial with the best log10_fidelity. Only the routed engines
/// honour it — structured mappers are analytical constructions.
enum class Objective : std::uint8_t {
  kDepth = 0,
  kFidelity = 1,
};

/// How MapResult::check is produced (MapOptions::verify_mode).
enum class VerifyMode : std::uint8_t {
  /// Fused: the emitter audits as it emits (verify::EmitAudit) and the
  /// separate verification pass disappears (check_seconds ≈ 0). Engines
  /// that bypass LayerEmitter (`sabre`, `satmap`) fall back to kStream.
  kFused = 0,
  /// One streaming pass through IncrementalQftChecker after mapping.
  kStream = 1,
  /// Legacy post-hoc replay (check_qft_mapping_replay): separate check,
  /// schedule and count walks. Kept selectable so the three paths stay
  /// comparable in tests and benchmarks — results are bit-identical.
  kReplay = 2,
};

struct MapOptions {
  // Structured-mapper ablation knobs (§3.3 strict IE, §6 lattice variants).
  bool strict_ie = false;
  std::int32_t lattice_phase_offset = 1;
  bool transversal_unit_swap = true;

  // Routed-baseline knobs, forwarded verbatim.
  SabreOptions sabre;
  SatmapOptions satmap;

  /// Routed engines (`sabre`, `satmap`) run on this graph instead of their
  /// native line when set (§7.2 gives baselines the full link set). Must
  /// outlive the call. Structured mappers ignore it — they own their
  /// topology. Mutually exclusive with `device`.
  const CouplingGraph* target = nullptr;

  /// Calibrated device description (arch/device_model.hpp): routed engines
  /// build their coupling graph from it, verification charges its latency
  /// table, MapResult::log10_fidelity is computed against its error rates,
  /// and the ResultCache folds its content fingerprint into the key (so
  /// device-keyed results ARE cacheable, unlike raw `target` graphs).
  /// shared_ptr because queued service jobs outlive the request that parsed
  /// the device file. Engines that own their topology reject it.
  std::shared_ptr<const DeviceModel> device;

  /// Depth (default) or calibrated-fidelity routing; see Objective.
  Objective objective = Objective::kDepth;

  /// Run the static checker and fill MapResult::check. On by default; turn
  /// off only for timing-only runs where verification is done elsewhere.
  bool verify = true;

  /// Verification strategy (see VerifyMode). All modes produce bit-identical
  /// QftCheckResults; they differ only in when the work happens.
  VerifyMode verify_mode = VerifyMode::kFused;

  /// Fused-verification plumbing: the pipeline installs its EmitAudit here
  /// before calling MapperEngine::map, and the structured engines hand it to
  /// their LayerEmitter. Callers invoking engines directly may install their
  /// own; under the pipeline entry points leave it null.
  verify::EmitAudit* audit = nullptr;

  // ------------------------------------------------------- serving knobs --
  // Not part of the result-cache fingerprint: they shape how a run is
  // executed, never what it produces.

  /// Cooperative cancellation: when non-null and flipped true by another
  /// thread, the run aborts with MapCancelled — between pipeline stages for
  /// the analytical engines (graph build / map / verify), and mid-solve for
  /// SATMAP (the flag is forwarded into the CDCL search loop). Must outlive
  /// the call. The MappingService installs its per-job token here.
  const std::atomic<bool>* cancel = nullptr;

  /// Wall-clock budget for this run (<= 0: none). Checked between pipeline
  /// stages; SATMAP additionally clamps SatmapOptions::time_budget_seconds
  /// to the remaining budget so a deadlined job TLEs inside it. Expiry
  /// throws MapCancelled with deadline_expired() == true.
  double deadline_seconds = 0.0;
};

/// Thrown by MapperPipeline::run when MapOptions::cancel flips mid-run or
/// MapOptions::deadline_seconds is exhausted. The service layer maps it to
/// the job's terminal status (cancelled vs expired).
class MapCancelled : public std::runtime_error {
 public:
  MapCancelled(bool deadline_expired, const std::string& what)
      : std::runtime_error(what), deadline_expired_(deadline_expired) {}
  bool deadline_expired() const { return deadline_expired_; }

 private:
  bool deadline_expired_;
};

struct MapTimings {
  double map_seconds = 0.0;
  double check_seconds = 0.0;
  /// Cumulative SAT-solver effort (conflicts/decisions/restarts/...) when
  /// the engine ran a SAT search — zero-initialized (solve_calls == 0) for
  /// the analytical engines. Zeroed on cache hits like the wall-clock
  /// fields: no work was done.
  sat::SolverStats sat;
  /// Portfolio-racing provenance: the lane that decided the last definitive
  /// SAT probe ("cdcl#1"). Empty for non-portfolio (and non-SAT) runs, and
  /// zeroed on cache hits with the rest of the struct.
  std::string sat_winner;
  double total_seconds() const { return map_seconds + check_seconds; }
};

struct MapResult {
  std::string engine;
  std::int32_t requested_n = 0;  // size the caller asked for
  std::int32_t n = 0;            // engine-native size actually mapped
  MappedCircuit mapped;
  CouplingGraph graph;   // coupling graph `mapped` is valid on
  QftCheckResult check;  // empty unless MapOptions::verify
  MapTimings timings;
  /// log10 of the estimated success probability (verify/fidelity.hpp),
  /// filled whenever verification passed: per-edge calibrated when the run
  /// carried a DeviceModel, the closed-form NoiseModel estimate otherwise.
  /// Always <= 0; higher is better.
  double log10_fidelity = 0.0;
  /// True when the MappingService served this result from its ResultCache —
  /// bit-identical to a fresh run, with timings zeroed (no work was done).
  bool cache_hit = false;
};

/// One mapping engine behind the facade. Implementations are stateless and
/// callable concurrently.
class MapperEngine {
 public:
  virtual ~MapperEngine() = default;

  /// Registry key (`lnn`, `heavy_hex`, `sycamore`, `lattice`, `sabre`,
  /// `satmap`, `lnn_baseline`).
  virtual std::string name() const = 0;

  /// One-line human description for `--list-engines` style output.
  virtual std::string description() const = 0;

  /// True when identical (native n, MapOptions) requests produce identical
  /// results — the precondition for serving this engine from the
  /// ResultCache. The analytical mappers and seeded SABRE qualify; SATMAP
  /// does not (its TLE-vs-solved outcome depends on wall-clock load).
  virtual bool deterministic() const { return true; }

  /// True when the engine maps onto a caller-supplied DeviceModel
  /// (MapOptions::device). The routed baselines qualify; structured mappers
  /// own their topology and the pipeline rejects a device for them.
  virtual bool accepts_device() const { return false; }

  /// Smallest engine-feasible size >= n (sycamore/lattice round up to a
  /// square, heavy_hex to a multiple of five).
  virtual std::int32_t native_size(std::int32_t n) const { return n; }

  /// Native coupling graph for a *native* size n.
  virtual CouplingGraph build_graph(std::int32_t n,
                                    const MapOptions& opts) const = 0;

  /// Latency model depth is charged under on this backend. The model may
  /// reference `g`; the graph must outlive it. This is what the pipeline's
  /// verify/schedule hot path consumes (no std::function indirection).
  virtual LatencyModel latency_model(const CouplingGraph& g) const {
    (void)g;
    return LatencyModel::unit();
  }

  /// Convenience adapter for callers that want a callable; derived from
  /// latency_model(), so engines only override that.
  LatencyFn latency(const CouplingGraph& g) const {
    return LatencyFn(latency_model(g));
  }

  /// Maps QFT(n) onto `g` (n native, g = build_graph(n, opts)). Throws on
  /// engine failure (e.g. SATMAP exhausting its time budget). The default
  /// is a thin QFT-spec wrapper: route qft_logical(n) through map_circuit —
  /// which is exactly what the routed baselines do; structured mappers
  /// override with their analytical constructions.
  virtual MappedCircuit map(std::int32_t n, const CouplingGraph& g,
                            const MapOptions& opts) const;

  /// Maps an arbitrary logical circuit onto `g`
  /// (g = build_graph(native_size(logical.num_qubits()), opts), which may be
  /// larger than the circuit). The default routes with SABRE on the engine's
  /// native topology, so every registered engine — including the structured
  /// QFT mappers, whose contribution is then their graph and latency model —
  /// accepts general circuits; SAT-backed engines override with their own
  /// router.
  virtual MappedCircuit map_circuit(const Circuit& logical,
                                    const CouplingGraph& g,
                                    const MapOptions& opts) const;
};

/// String-keyed engine registry plus the run loop (map → check → package).
class MapperPipeline {
 public:
  /// The seven paper engines (four structured mappers + three baselines)
  /// plus the Appendix-7 `grid` target.
  static MapperPipeline with_paper_engines();

  /// Shared default instance used by the free `map_qft`.
  static const MapperPipeline& global();

  /// Registers (or replaces, by name) an engine.
  void register_engine(std::unique_ptr<const MapperEngine> engine);

  /// Registered keys, sorted.
  std::vector<std::string> engine_names() const;

  bool has(const std::string& name) const;

  /// Null when `name` is not registered.
  const MapperEngine* find(const std::string& name) const;

  /// Throws std::invalid_argument naming the known engines when absent.
  const MapperEngine& at(const std::string& name) const;

  /// Full pipeline: snap size, build graph, map, verify, time each stage.
  MapResult run(const std::string& engine, std::int32_t n,
                const MapOptions& opts = {}) const;

  /// General-circuit pipeline: build the engine's native graph (snapped to
  /// fit the circuit), route the supplied circuit onto it, and verify with
  /// the general checker (verify/circuit_checker.hpp) under the engine's
  /// latency model. Unlike run(), verification is per-entry-point: QFT
  /// requests keep the streaming IncrementalQftChecker, arbitrary circuits
  /// are replayed through the MappingTracker-based matcher. requested_n and
  /// n both report the circuit's qubit count (a circuit is never resized);
  /// MapResult::graph carries the possibly-larger physical register.
  MapResult run_circuit(const std::string& engine, const Circuit& logical,
                        const MapOptions& opts = {}) const;

 private:
  std::map<std::string, std::unique_ptr<const MapperEngine>> engines_;
};

/// Facade over MapperPipeline::global().
MapResult map_qft(const std::string& arch, std::int32_t n,
                  const MapOptions& opts = {});

/// General-circuit facade over MapperPipeline::global() — any OpenQASM
/// producer's entry point: `map_circuit(arch, from_qasm(text))`.
MapResult map_circuit(const std::string& arch, const Circuit& logical,
                      const MapOptions& opts = {});

}  // namespace qfto
