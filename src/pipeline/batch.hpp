// Parallel batch mapping over the MapperPipeline: compile many (engine, n)
// requests concurrently on a bounded thread pool. Engines are stateless and
// every run builds its own graph, so requests never share mutable state —
// this is the seam the ROADMAP's batch-service direction grows from.
#pragma once

#include <string>
#include <vector>

#include "pipeline/mapper_pipeline.hpp"

namespace qfto {

struct BatchRequest {
  std::string engine;
  std::int32_t n = 0;
  MapOptions options;  // `target`, if set, must outlive the batch call
};

/// Per-request outcome. Engine failures (unknown engine, SATMAP TLE, bad
/// target) are captured here instead of aborting the whole batch.
struct BatchItem {
  bool ok = false;
  std::string error;  // empty when ok
  MapResult result;   // valid when ok
};

/// Runs every request through `pipeline`, `num_threads` at a time
/// (0 = hardware concurrency). Results are returned in request order.
std::vector<BatchItem> map_qft_batch(
    const std::vector<BatchRequest>& requests, std::int32_t num_threads = 0,
    const MapperPipeline& pipeline = MapperPipeline::global());

}  // namespace qfto
