// Parallel batch mapping over the MapperPipeline: compile many (engine, n)
// requests concurrently. Since the service PR this is a thin driver over
// MappingService::shared() — the persistent worker pool — instead of
// spawning and joining a fresh std::thread pool per call; repeated
// deterministic requests are served from the service's ResultCache.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pipeline/mapper_pipeline.hpp"

namespace qfto {

struct BatchRequest {
  std::string engine;
  std::int32_t n = 0;
  MapOptions options;  // `target`, if set, must outlive the batch call
  /// Non-null switches the job to the general entry point: map *this*
  /// circuit (MapperPipeline::run_circuit) instead of QFT(n). `n` must then
  /// equal circuit->num_qubits() (or be 0: submit() fills it in). Held by
  /// shared_ptr so queued jobs and the serve front-end never deep-copy a
  /// large parsed circuit. Last member so existing {engine, n, options}
  /// aggregate initializers stay valid.
  std::shared_ptr<const Circuit> circuit;
};

/// Per-request outcome. Engine failures (unknown engine, SATMAP TLE, bad
/// target) are captured here instead of aborting the whole batch.
struct BatchItem {
  bool ok = false;
  std::string error;  // empty when ok
  MapResult result;   // valid when ok
};

/// Runs every request through `pipeline`, `num_threads` at a time
/// (0 = hardware concurrency). Results are returned in request order.
/// Requests ride the shared MappingService pool (no per-call thread spawn);
/// a non-global `pipeline` gets a service scoped to the call.
std::vector<BatchItem> map_qft_batch(
    const std::vector<BatchRequest>& requests, std::int32_t num_threads = 0,
    const MapperPipeline& pipeline = MapperPipeline::global());

}  // namespace qfto
