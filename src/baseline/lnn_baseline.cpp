#include "baseline/lnn_baseline.hpp"

#include "mapper/emitter.hpp"
#include "mapper/line_engine.hpp"

namespace qfto {

MappedCircuit map_qft_on_path(const CouplingGraph& g,
                              const std::vector<PhysicalQubit>& path,
                              verify::EmitAudit* audit) {
  const std::int32_t n = static_cast<std::int32_t>(path.size());
  require(n >= 1, "map_qft_on_path: empty path");
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    require(g.adjacent(path[i], path[i + 1]),
            "map_qft_on_path: path not hardware-contiguous");
  }
  QftState state(n);
  // Logical i starts at the i-th node of the path.
  LayerEmitter em(g, path, state, audit);
  em.reserve_gates(2 * (static_cast<std::int64_t>(n) * (n - 1) / 2 + n));
  run_line_qft(em, Line(em, path));
  return std::move(em).finish();
}

std::vector<PhysicalQubit> lattice_snake_path(std::int32_t m) {
  std::vector<PhysicalQubit> path;
  path.reserve(static_cast<std::size_t>(m) * m);
  for (std::int32_t r = 0; r < m; ++r) {
    if (r % 2 == 0) {
      for (std::int32_t c = 0; c < m; ++c) path.push_back(r * m + c);
    } else {
      for (std::int32_t c = m - 1; c >= 0; --c) path.push_back(r * m + c);
    }
  }
  return path;
}

}  // namespace qfto
