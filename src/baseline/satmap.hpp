// SATMAP-style optimal mapper (Molavi et al., MICRO'22) on top of our CDCL
// solver: a time-expanded SAT encoding of qubit mapping — free initial
// placement, per-step edge-local movement with swap consistency, adjacency
// for every two-qubit gate, strict dependency via scheduled-prefix variables.
// The minimal number of layers T is found by iterative deepening, then the
// SWAP count is minimized at that T with a sequential-counter budget. As in
// the paper (Table 1), the search space explodes with qubit count: expect
// answers only for the smallest instances and TLE elsewhere — that behaviour
// is part of what we reproduce.
#pragma once

#include <atomic>

#include "arch/coupling_graph.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapped_circuit.hpp"

namespace qfto {

struct SatmapOptions {
  double time_budget_seconds = 10.0;  // paper used 2h; scaled for CI
  std::int32_t max_layers = 96;
  bool minimize_swaps = true;

  /// Cooperative cancellation: when non-null, satmap_route polls the flag
  /// between deepening layers and the CDCL solver polls it inside the search
  /// loop, so another thread flipping it true aborts the run within a few
  /// thousand decisions. Must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
};

struct SatmapResult {
  bool solved = false;     // found a provably depth-minimal schedule
  bool timed_out = false;  // TLE (the Table 1 outcome for >= 10 qubits)
  bool cancelled = false;  // SatmapOptions::cancel flipped mid-solve
  MappedCircuit mapped;    // valid when solved
  std::int32_t layers = 0;
  std::int64_t swaps = 0;
  double seconds = 0.0;
};

/// Routes an arbitrary logical circuit; dependencies are its strict DAG.
SatmapResult satmap_route(const Circuit& logical, const CouplingGraph& g,
                          const SatmapOptions& opts = {});

}  // namespace qfto
