// SATMAP-style optimal mapper (Molavi et al., MICRO'22) on top of the
// pluggable sat::SolverInterface backends: a time-expanded SAT encoding of
// qubit mapping — free initial placement, per-step edge-local movement with
// swap consistency, adjacency for every two-qubit gate, strict dependency via
// scheduled-prefix variables. The minimal number of layers T is found by
// iterative deepening, then the SWAP count is minimized at that T with a
// sequential-counter budget.
//
// Two search drivers share the encoding:
//  - incremental (default): ONE solver instance for the whole search. Each
//    horizon T's "every gate executes by T" constraint is gated behind a
//    fresh activation literal, deepening solves under the assumption of the
//    current horizon's activator (retiring the previous one with a unit),
//    and SWAP minimization tightens a sequential-counter output chain with
//    assumptions — so learnt clauses, saved phases and activity carry across
//    every probe instead of being rebuilt and thrown away.
//  - monolithic: the paper-faithful re-encode-per-probe loop, kept as the
//    differential oracle and the bench_sat baseline.
// Both drivers produce the same solved/TLE/cancelled verdicts, the same
// minimal T and the same minimal SWAP count.
//
// As in the paper (Table 1), the search space explodes with qubit count:
// expect answers only for the smallest instances and TLE elsewhere — that
// behaviour is part of what we reproduce.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mapped_circuit.hpp"
#include "sat/solver_interface.hpp"

namespace qfto {

struct SatmapOptions {
  double time_budget_seconds = 10.0;  // paper used 2h; scaled for CI
  std::int32_t max_layers = 96;
  bool minimize_swaps = true;

  /// SAT backend registry key (see sat::solver_backend_names()): "cdcl" is
  /// the in-tree CDCL engine, "dpll" the reference backend for differential
  /// testing. Unknown names throw std::invalid_argument at route time.
  std::string solver = "cdcl";

  /// Drive the search on one incremental instance (assumption-based
  /// deepening); off re-encodes from scratch for every probe. Outcomes are
  /// identical — the flag exists so the two paths stay comparable in tests
  /// and benchmarks.
  bool incremental = true;

  /// Race each probe across `lanes` diversified solver instances — the
  /// first definitive verdict wins and cancels the sibling lanes
  /// (src/sat/federation/portfolio.hpp). Verdicts, minimal T and minimal
  /// SWAP count are identical to a single-backend run; which lane decides
  /// each probe (and therefore which of the equally-optimal schedules is
  /// extracted) is wall-clock dependent. The effective lane count is
  /// clamped to the machine's hardware concurrency — racing more lanes
  /// than cores only time-slices them against one another.
  bool portfolio = false;
  std::int32_t lanes = 2;

  /// Backends spread round-robin across portfolio lanes; empty -> every
  /// lane runs `solver`, told apart by diversification seeds.
  std::vector<std::string> portfolio_backends;

  /// Core-guided SWAP descent (incremental driver only): bisect the budget
  /// between the learnt infeasibility bound and the best model instead of
  /// decrementing by one, committing every UNSAT probe as a permanent
  /// lower-bound clause — with a portfolio, the winning lane's refutation
  /// is immediately shared with every other lane. Same minimal SWAP count
  /// (the search stays complete); fewer probes when the first model is far
  /// from optimal. The monolithic driver ignores this and keeps the
  /// paper-faithful decrement loop as the differential oracle.
  bool core_guided = true;

  /// Cooperative cancellation: when non-null, satmap_route polls the flag
  /// between deepening layers and the solver polls it inside the search
  /// loop, so another thread flipping it true aborts the run within a few
  /// thousand decisions. Must outlive the call.
  const std::atomic<bool>* cancel = nullptr;

  /// Debug hook: when non-empty, the instance in flight when the run ended
  /// (most usefully a TLE'd probe) is written here in DIMACS CNF, with the
  /// probe's assumptions appended as unit clauses, so it replays verbatim in
  /// external solvers. Serving knob — never part of the result.
  std::string dump_cnf_path;

  /// When non-null, receives the run's cumulative solver statistics (same
  /// numbers as SatmapResult::stats). Serving knob the pipeline uses to
  /// surface stats into MapResult::timings without widening MapperEngine.
  sat::SolverStats* stats_out = nullptr;

  /// When non-null, receives SatmapResult::winner (see there). Serving
  /// knob, mirroring stats_out.
  std::string* winner_out = nullptr;
};

struct SatmapResult {
  bool solved = false;     // found a provably depth-minimal schedule
  bool timed_out = false;  // TLE (the Table 1 outcome for >= 10 qubits)
  bool cancelled = false;  // SatmapOptions::cancel flipped mid-solve
  MappedCircuit mapped;    // valid when solved
  std::int32_t layers = 0;
  std::int64_t swaps = 0;
  double seconds = 0.0;
  /// Cumulative search effort across every probe (deepening + SWAP
  /// minimization), summed over solver instances on the monolithic path —
  /// and over every racing lane (losers included) on a portfolio run.
  sat::SolverStats stats;
  /// Portfolio runs: label of the lane that decided the last definitive
  /// probe ("cdcl#1"). Empty for single-backend runs.
  std::string winner;
};

/// Routes an arbitrary logical circuit; dependencies are its strict DAG.
SatmapResult satmap_route(const Circuit& logical, const CouplingGraph& g,
                          const SatmapOptions& opts = {});

}  // namespace qfto
