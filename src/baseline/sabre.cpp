#include "baseline/sabre.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "arch/device_model.hpp"
#include "circuit/dag.hpp"
#include "circuit/scheduler.hpp"
#include "circuit/stats.hpp"
#include "common/prng.hpp"
#include "verify/fidelity.hpp"
#include "verify/mapping_tracker.hpp"

namespace qfto {

namespace {

/// Per-candidate edge-error penalty for the fidelity objective: the
/// calibrated -log10(1-e2) of the SWAP's edge, normalized to (0, 1] by the
/// device's worst edge, then scaled by fidelity_weight. The scoring loop
/// multiplies this by a per-step tie scale that sits strictly below the
/// smallest distance-score quantum, so the penalty steers among
/// distance-equal swaps but can never outvote progress toward the front —
/// a penalty that rivals the distance terms livelocks the router on
/// low-error edges (zero-progress swaps win forever; the decay mechanism
/// resets every few swaps and cannot catch up). Inactive (zero-cost, no
/// device probes) unless the objective is on and a device is bound, so the
/// depth path computes exactly what it always did.
class EdgePenalty {
 public:
  explicit EdgePenalty(const SabreOptions& opts) {
    if (!opts.fidelity_objective || opts.device == nullptr) return;
    double worst = 0.0;
    for (const DeviceEdge& e : opts.device->edges()) {
      worst = std::max(worst, -std::log10(1.0 - e.error_2q));
    }
    if (worst <= 0.0) return;
    device_ = opts.device;
    inv_worst_ = 1.0 / worst;
    weight_ = opts.fidelity_weight;
  }

  bool active() const { return device_ != nullptr; }

  double operator()(PhysicalQubit a, PhysicalQubit b) const {
    return weight_ * -std::log10(1.0 - device_->edge_error(a, b)) * inv_worst_;
  }

 private:
  const DeviceModel* device_ = nullptr;
  double inv_worst_ = 1.0;
  double weight_ = 1.0;
};

struct SwapCandidate {
  PhysicalQubit a;
  PhysicalQubit b;
};

/// Physical endpoints of a two-qubit gate, flattened for the scoring loop.
struct EndpointPair {
  PhysicalQubit a;
  PhysicalQubit b;
};

/// Pass-scoped view over the DistanceOracle: pins row handles on first
/// touch so the scoring inner loop is a plain array load per query — no
/// oracle mutex, no closed-form dispatch. Pinned handles survive the
/// oracle's LRU eviction; the pin set itself is flushed when it would grow
/// past the oracle's own budget, keeping memory in rows-touched, not n².
class DistView {
 public:
  explicit DistView(const CouplingGraph& g)
      : oracle_(&g.distances()),
        rowptr_(static_cast<std::size_t>(g.num_qubits()), nullptr),
        limit_(std::max<std::size_t>(64, oracle_->row_budget())) {}

  const std::int32_t* row(PhysicalQubit a) {
    const std::int32_t* r = rowptr_[a];
    if (r == nullptr) {
      if (pinned_.size() >= limit_) {
        pinned_.clear();
        std::fill(rowptr_.begin(), rowptr_.end(), nullptr);
      }
      pinned_.push_back(oracle_->row(a));
      r = pinned_.back()->data();
      rowptr_[a] = r;
    }
    return r;
  }

 private:
  const DistanceOracle* oracle_;
  std::vector<const std::int32_t*> rowptr_;
  std::vector<DistanceOracle::RowPtr> pinned_;
  std::size_t limit_;
};

// One full routing pass. When `emit` is false only the final mapping is
// produced (used by the bidirectional initial-mapping refinement).
struct PassResult {
  Circuit circuit;
  std::vector<PhysicalQubit> final_mapping;
  std::int64_t swaps = 0;
};

PassResult route_pass(const Circuit& logical, const Dag& dag,
                      const CouplingGraph& g,
                      const std::vector<PhysicalQubit>& initial,
                      Xoshiro256ss& rng, const SabreOptions& opts, bool emit) {
  const std::int32_t n = logical.num_qubits();
  DistView dist(g);
  const EdgePenalty penalty(opts);
  MappingTracker map(initial, g.num_qubits());

  std::vector<std::int32_t> indeg(dag.size(), 0);
  for (const auto& ss : dag.succ) {
    for (auto s : ss) ++indeg[s];
  }
  std::vector<std::int32_t> front;
  for (std::size_t i = 0; i < dag.size(); ++i) {
    if (indeg[i] == 0) front.push_back(static_cast<std::int32_t>(i));
  }

  PassResult out;
  out.circuit = Circuit(g.num_qubits());
  std::vector<double> decay(n, 1.0);
  std::int32_t swaps_since_reset = 0;
  std::size_t executed = 0;

  auto resolve = [&](std::int32_t gi) {
    for (auto s : dag.succ[gi]) {
      if (--indeg[s] == 0) front.push_back(s);
    }
  };

  // Round-scoped scratch, hoisted so the blocked-step loop never allocates
  // once capacities have warmed up.
  std::vector<SwapCandidate> cands;
  std::vector<std::int32_t> extended;
  std::vector<std::int32_t> queue;
  std::vector<EndpointPair> front_pairs;
  std::vector<EndpointPair> ext_pairs;
  std::vector<std::size_t> best_set;

  const std::int64_t swap_cap =
      1000 + 64 * static_cast<std::int64_t>(dag.size()) *
                 std::max<std::int32_t>(1, g.num_qubits() / 8);

  while (executed < dag.size()) {
    // Execute everything executable in the front layer.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t fi = 0; fi < front.size();) {
        const std::int32_t gi = front[fi];
        const Gate& gate = logical[gi];
        const bool runnable =
            !gate.two_qubit() ||
            g.adjacent(map.physical_of(gate.q0), map.physical_of(gate.q1));
        if (runnable) {
          if (emit) {
            Gate hw = gate;
            hw.q0 = map.physical_of(gate.q0);
            if (gate.two_qubit()) hw.q1 = map.physical_of(gate.q1);
            out.circuit.append(hw);
          }
          front[fi] = front.back();
          front.pop_back();
          resolve(gi);
          ++executed;
          progress = true;
        } else {
          ++fi;
        }
      }
    }
    if (front.empty()) break;

    // Blocked: choose a SWAP. Candidates touch a front-layer qubit.
    cands.clear();
    for (auto gi : front) {
      const Gate& gate = logical[gi];
      for (LogicalQubit l : {gate.q0, gate.q1}) {
        const PhysicalQubit p = map.physical_of(l);
        for (PhysicalQubit nb : g.neighbors(p)) cands.push_back({p, nb});
      }
    }
    std::sort(cands.begin(), cands.end(), [](const auto& x, const auto& y) {
      return std::tie(x.a, x.b) < std::tie(y.a, y.b);
    });
    cands.erase(std::unique(cands.begin(), cands.end(),
                            [](const auto& x, const auto& y) {
                              return x.a == y.a && x.b == y.b;
                            }),
                cands.end());

    // Extended set: the next few two-qubit gates past the front layer.
    extended.clear();
    queue = front;
    for (std::size_t head = 0;
         head < queue.size() &&
         static_cast<std::int32_t>(extended.size()) < opts.extended_size;
         ++head) {
      for (auto s : dag.succ[queue[head]]) {
        if (logical[s].two_qubit()) extended.push_back(s);
        queue.push_back(s);
        if (static_cast<std::int32_t>(extended.size()) >= opts.extended_size)
          break;
      }
    }

    // Flatten the gates under consideration to physical endpoint pairs once
    // per blocked step; the candidate scoring loop then runs over flat
    // arrays with pinned oracle rows — no tracker lookups, no maps/sets.
    front_pairs.clear();
    for (auto gi : front) {
      const Gate& gate = logical[gi];
      if (!gate.two_qubit()) continue;
      front_pairs.push_back(
          {map.physical_of(gate.q0), map.physical_of(gate.q1)});
    }
    ext_pairs.clear();
    for (auto gi : extended) {
      const Gate& gate = logical[gi];
      ext_pairs.push_back(
          {map.physical_of(gate.q0), map.physical_of(gate.q1)});
    }

    // Distance scores move in quanta of 1/|front| (and W/|ext| for the
    // lookahead term); keeping the penalty below half the smallest quantum
    // guarantees any swap that shortens a front pair beats any that does
    // not, whatever the calibration says — convergence is the depth path's.
    double tie_scale = 0.0;
    if (penalty.active()) {
      const double fq =
          front_pairs.empty() ? 1.0
                              : 1.0 / static_cast<double>(front_pairs.size());
      const double eq =
          (!ext_pairs.empty() && opts.extended_weight > 0.0)
              ? opts.extended_weight / static_cast<double>(ext_pairs.size())
              : fq;
      tie_scale = 0.5 * std::min(fq, eq);
    }

    double best = 1e300;
    best_set.clear();
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      const SwapCandidate& cand = cands[ci];
      const PhysicalQubit sa = cand.a, sb = cand.b;
      // Position of endpoint p under the hypothetical swap sa<->sb.
      const auto swapped = [sa, sb](PhysicalQubit p) {
        return p == sa ? sb : (p == sb ? sa : p);
      };
      double basic = 0.0;
      for (const EndpointPair& ep : front_pairs) {
        basic += dist.row(swapped(ep.a))[swapped(ep.b)];
      }
      if (!front_pairs.empty()) basic /= static_cast<double>(front_pairs.size());
      double ext = 0.0;
      if (!ext_pairs.empty()) {
        for (const EndpointPair& ep : ext_pairs) {
          ext += dist.row(swapped(ep.a))[swapped(ep.b)];
        }
        ext /= static_cast<double>(ext_pairs.size());
      }
      const LogicalQubit la = map.logical_at(sa);
      const LogicalQubit lb = map.logical_at(sb);
      const double da = la == kInvalidQubit ? 1.0 : decay[la];
      const double db = lb == kInvalidQubit ? 1.0 : decay[lb];
      double score = std::max(da, db) * (basic + opts.extended_weight * ext);
      if (penalty.active()) score += tie_scale * penalty(sa, sb);
      if (score < best - 1e-12) {
        best = score;
        best_set.assign(1, ci);
      } else if (score <= best + 1e-12) {
        best_set.push_back(ci);
      }
    }
    require(!best_set.empty(), "sabre: no swap candidates on connected graph");
    const SwapCandidate chosen = cands[best_set[rng.uniform(best_set.size())]];

    if (emit) out.circuit.append(Gate::swap(chosen.a, chosen.b));
    const LogicalQubit la = map.logical_at(chosen.a);
    const LogicalQubit lb = map.logical_at(chosen.b);
    map.apply_swap(chosen.a, chosen.b);
    if (la != kInvalidQubit) decay[la] += opts.decay_delta;
    if (lb != kInvalidQubit) decay[lb] += opts.decay_delta;
    if (++swaps_since_reset >= opts.decay_reset) {
      std::fill(decay.begin(), decay.end(), 1.0);
      swaps_since_reset = 0;
    }
    if (++out.swaps > swap_cap) {
      throw std::logic_error("sabre: swap cap exceeded — routing diverged");
    }
  }

  out.final_mapping = map.logical_to_physical();
  return out;
}

Circuit reversed(const Circuit& c) {
  Circuit r(c.num_qubits());
  for (std::size_t i = c.size(); i-- > 0;) r.append(c[i]);
  return r;
}

std::vector<PhysicalQubit> random_injection(std::int32_t n, std::int32_t p,
                                            Xoshiro256ss& rng) {
  std::vector<PhysicalQubit> nodes(p);
  std::iota(nodes.begin(), nodes.end(), 0);
  for (std::int32_t i = p - 1; i > 0; --i) {
    std::swap(nodes[i], nodes[rng.uniform(static_cast<std::uint64_t>(i) + 1)]);
  }
  nodes.resize(n);
  return nodes;
}

}  // namespace

MappedCircuit sabre_route_single(const Circuit& logical, const CouplingGraph& g,
                                 std::uint64_t seed,
                                 const SabreOptions& opts) {
  require(logical.num_qubits() <= g.num_qubits(),
          "sabre: more logical qubits than physical");
  require(g.connected(), "sabre: coupling graph must be connected");
  const Dag dag =
      opts.use_relaxed_dag ? build_relaxed_dag(logical) : build_strict_dag(logical);
  Xoshiro256ss rng(seed);
  std::vector<PhysicalQubit> initial =
      random_injection(logical.num_qubits(), g.num_qubits(), rng);

  const Circuit rev = reversed(logical);
  const Dag rev_dag =
      opts.use_relaxed_dag ? build_relaxed_dag(rev) : build_strict_dag(rev);
  for (std::int32_t pass = 0; pass < opts.bidirectional_passes; ++pass) {
    initial = route_pass(logical, dag, g, initial, rng, opts, false).final_mapping;
    initial = route_pass(rev, rev_dag, g, initial, rng, opts, false).final_mapping;
  }

  PassResult res = route_pass(logical, dag, g, initial, rng, opts, true);
  MappedCircuit mc;
  mc.circuit = std::move(res.circuit);
  mc.initial = std::move(initial);
  mc.final_mapping = std::move(res.final_mapping);
  return mc;
}

MappedCircuit sabre_route(const Circuit& logical, const CouplingGraph& g,
                          const SabreOptions& opts) {
  require(opts.trials >= 1, "sabre: trials >= 1");
  if (opts.fidelity_objective) {
    // Fidelity objective: the trial winner is the route with the best
    // expected log-success under the calibration (ties break on swap
    // count). The device's cycle table drives the decoherence depth.
    const LatencyModel lat = opts.device != nullptr
                                 ? opts.device->latency_model(g)
                                 : LatencyModel::unit();
    std::optional<MappedCircuit> best;
    double best_fid = 0.0;
    std::int64_t best_swaps = 0;
    const auto consider = [&](MappedCircuit mc) {
      const double fid =
          opts.device != nullptr
              ? log10_fidelity(mc.circuit, *opts.device, lat)
              : log10_fidelity(mc.circuit, NoiseModel{}, lat);
      const std::int64_t swaps = count_gates(mc.circuit).swap;
      if (!best || fid > best_fid + 1e-12 ||
          (fid > best_fid - 1e-12 && swaps < best_swaps)) {
        best = std::move(mc);
        best_fid = fid;
        best_swaps = swaps;
      }
    };
    // Each trial contributes two routes: the unsteered one (exactly what
    // the depth path would produce for this seed) and its penalty-steered
    // twin. The winner pool therefore contains every route the depth
    // objective considers, so the fidelity objective can never lose to it
    // on expected log-success — steering only wins when the calibration
    // says it actually helped.
    SabreOptions plain = opts;
    plain.fidelity_objective = false;
    for (std::int32_t t = 0; t < opts.trials; ++t) {
      consider(sabre_route_single(logical, g, opts.seed + 7919ull * t, plain));
      try {
        consider(sabre_route_single(logical, g, opts.seed + 7919ull * t, opts));
      } catch (const std::logic_error&) {
        // A steered trial that trips the swap cap is dropped; its unsteered
        // twin above already covers the trial.
      }
    }
    return std::move(*best);
  }
  std::optional<MappedCircuit> best;
  Cycle best_depth = 0;
  std::int64_t best_swaps = 0;
  for (std::int32_t t = 0; t < opts.trials; ++t) {
    MappedCircuit mc =
        sabre_route_single(logical, g, opts.seed + 7919ull * t, opts);
    const Cycle depth = circuit_depth(mc.circuit);
    const std::int64_t swaps = count_gates(mc.circuit).swap;
    if (!best || depth < best_depth ||
        (depth == best_depth && swaps < best_swaps)) {
      best = std::move(mc);
      best_depth = depth;
      best_swaps = swaps;
    }
  }
  return std::move(*best);
}

}  // namespace qfto
