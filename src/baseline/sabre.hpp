// SABRE (Li, Ding, Xie — ASPLOS'19), reimplemented as the paper's primary
// baseline. Heuristic SWAP insertion with a front layer, a look-ahead
// extended set, and a decay term that spreads SWAPs across qubits; the
// initial mapping is refined with forward/backward passes, and the whole
// procedure is repeated over random seeds keeping the best result — which is
// exactly why its output varies run to run (Fig. 27).
#pragma once

#include <cstdint>
#include <optional>

#include "arch/coupling_graph.hpp"
#include "circuit/mapped_circuit.hpp"

namespace qfto {

class DeviceModel;

struct SabreOptions {
  std::uint64_t seed = 1;
  std::int32_t trials = 5;            // independent random restarts
  std::int32_t bidirectional_passes = 2;  // initial-mapping refinement sweeps
  double extended_weight = 0.5;       // W in the look-ahead term
  std::int32_t extended_size = 20;    // |E|
  double decay_delta = 0.001;
  std::int32_t decay_reset = 5;       // SWAPs between decay resets
  bool use_relaxed_dag = false;       // ablation: give SABRE commutativity

  // Fidelity-aware cost mode (MapOptions::objective = fidelity). When set,
  // candidate SWAPs additionally pay their edge's calibrated error cost
  // (normalized -log10(1-e2), scaled by fidelity_weight) and the trial
  // winner is the route with the best expected log-success instead of the
  // smallest depth. `device` holds the calibration; when null the default
  // NoiseModel rates apply (every edge equal, so only trial selection
  // changes). The depth objective's path is untouched — with
  // fidelity_objective false, routing is bit-identical to before.
  bool fidelity_objective = false;
  double fidelity_weight = 1.0;
  const DeviceModel* device = nullptr;  // not owned; must outlive the route
};

/// Routes `logical` onto `g`. The circuit may contain any gate kinds; only
/// two-qubit gates constrain routing.
MappedCircuit sabre_route(const Circuit& logical, const CouplingGraph& g,
                          const SabreOptions& opts = {});

/// One fixed-seed pass (no restarts/refinement) — exposes the raw randomness
/// for the Fig. 27 reproduction.
MappedCircuit sabre_route_single(const Circuit& logical, const CouplingGraph& g,
                                 std::uint64_t seed,
                                 const SabreOptions& opts = {});

}  // namespace qfto
