// LNN baseline (§7, Fig. 19): run the linear-depth LNN QFT along a
// Hamiltonian path of the device, ignoring link heterogeneity — exactly what
// the paper criticizes in §2.3. On lattice surgery the snake path uses the
// slow axial links, so its *weighted* depth loses badly to the unit-aware
// mapper even though its step count matches the LNN law.
#pragma once

#include "arch/coupling_graph.hpp"
#include "circuit/mapped_circuit.hpp"
#include "verify/verifier.hpp"

namespace qfto {

/// Runs the LNN QFT pattern along `path` (consecutive nodes must be coupled
/// in `g`; the path must visit every logical qubit's node). `audit`, when
/// non-null, engages fused verification (verify::EmitAudit).
MappedCircuit map_qft_on_path(const CouplingGraph& g,
                              const std::vector<PhysicalQubit>& path,
                              verify::EmitAudit* audit = nullptr);

/// Row-major boustrophedon over the m×m lattice (axial links only — valid in
/// both the full and the rotated lattice-surgery graphs).
std::vector<PhysicalQubit> lattice_snake_path(std::int32_t m);

}  // namespace qfto
