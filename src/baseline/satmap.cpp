#include "baseline/satmap.hpp"

#include <algorithm>

#include "circuit/dag.hpp"
#include "circuit/stats.hpp"
#include "common/timer.hpp"
#include "sat/cardinality.hpp"
#include "sat/solver.hpp"

namespace qfto {

namespace {

using sat::Lit;
using sat::Result;
using sat::Solver;

struct Encoding {
  // map_var[t][l][p], exec_var[t][i], sched_var[t][i] (prefix of exec).
  std::vector<std::vector<std::vector<std::int32_t>>> map_var;
  std::vector<std::vector<std::int32_t>> exec_var;
  std::vector<std::vector<std::int32_t>> sched_var;
  std::vector<std::int32_t> move_vars;  // one per (t, edge) when counting
};

Encoding build(Solver& s, const Circuit& logical, const CouplingGraph& g,
               std::int32_t layers, std::int32_t swap_budget) {
  const std::int32_t n = logical.num_qubits();
  const std::int32_t np = g.num_qubits();
  const std::int32_t ng = static_cast<std::int32_t>(logical.size());
  const std::int32_t tmax = layers;  // time steps 0..tmax (inclusive)

  Encoding e;
  e.map_var.assign(tmax + 1, {});
  for (std::int32_t t = 0; t <= tmax; ++t) {
    e.map_var[t].assign(n, std::vector<std::int32_t>(np));
    for (std::int32_t l = 0; l < n; ++l) {
      for (std::int32_t p = 0; p < np; ++p) e.map_var[t][l][p] = s.new_var();
    }
  }
  e.exec_var.assign(tmax + 1, std::vector<std::int32_t>(ng));
  e.sched_var.assign(tmax + 1, std::vector<std::int32_t>(ng));
  for (std::int32_t t = 0; t <= tmax; ++t) {
    for (std::int32_t i = 0; i < ng; ++i) {
      e.exec_var[t][i] = s.new_var();
      e.sched_var[t][i] = s.new_var();
    }
  }

  auto mp = [&](std::int32_t t, std::int32_t l, std::int32_t p) {
    return Lit::pos(e.map_var[t][l][p]);
  };
  auto ex = [&](std::int32_t t, std::int32_t i) {
    return Lit::pos(e.exec_var[t][i]);
  };
  auto sc = [&](std::int32_t t, std::int32_t i) {
    return Lit::pos(e.sched_var[t][i]);
  };

  // Mapping is an injection at every step.
  for (std::int32_t t = 0; t <= tmax; ++t) {
    for (std::int32_t l = 0; l < n; ++l) {
      std::vector<Lit> row;
      for (std::int32_t p = 0; p < np; ++p) row.push_back(mp(t, l, p));
      sat::add_exactly_one(s, row);
    }
    for (std::int32_t p = 0; p < np; ++p) {
      std::vector<Lit> col;
      for (std::int32_t l = 0; l < n; ++l) col.push_back(mp(t, l, p));
      sat::add_at_most_one(s, col);
    }
  }

  // Every gate executes exactly once; prefix variables are monotone and tied
  // to execution.
  for (std::int32_t i = 0; i < ng; ++i) {
    std::vector<Lit> times;
    for (std::int32_t t = 0; t <= tmax; ++t) times.push_back(ex(t, i));
    sat::add_exactly_one(s, times);
    // sched[t] <-> exec[0..t]
    s.add_implication(ex(0, i), sc(0, i));
    s.add_implication(sc(0, i), ex(0, i));
    for (std::int32_t t = 1; t <= tmax; ++t) {
      s.add_implication(ex(t, i), sc(t, i));
      s.add_implication(sc(t - 1, i), sc(t, i));
      // sched[t] -> sched[t-1] or exec[t]
      s.add_ternary(~sc(t, i), sc(t - 1, i), ex(t, i));
    }
  }

  // Strict dependencies: exec[j][t] -> sched[i][t] (shared-qubit gates can
  // never share a layer thanks to the per-qubit exclusion below, so this
  // yields strictly-before).
  const Dag dag = build_strict_dag(logical);
  for (std::size_t i = 0; i < dag.size(); ++i) {
    for (auto j : dag.succ[i]) {
      for (std::int32_t t = 0; t <= tmax; ++t) {
        s.add_implication(ex(t, j), sc(t, static_cast<std::int32_t>(i)));
      }
    }
  }

  // Per-qubit per-layer exclusion.
  for (std::int32_t l = 0; l < n; ++l) {
    std::vector<std::int32_t> touching;
    for (std::int32_t i = 0; i < ng; ++i) {
      if (logical[i].touches(l)) touching.push_back(i);
    }
    for (std::int32_t t = 0; t <= tmax; ++t) {
      std::vector<Lit> lits;
      for (auto i : touching) lits.push_back(ex(t, i));
      sat::add_at_most_one(s, lits);
    }
  }

  // Adjacency for two-qubit gates.
  for (std::int32_t i = 0; i < ng; ++i) {
    const Gate& gate = logical[i];
    if (!gate.two_qubit()) continue;
    for (std::int32_t t = 0; t <= tmax; ++t) {
      for (std::int32_t p = 0; p < np; ++p) {
        std::vector<Lit> cl{~ex(t, i), ~mp(t, gate.q0, p)};
        for (PhysicalQubit q : g.neighbors(p)) cl.push_back(mp(t, gate.q1, q));
        s.add_clause(cl);
      }
    }
  }

  // Movement: between steps a qubit stays or crosses one edge; crossings are
  // swaps (the displaced occupant moves the other way).
  for (std::int32_t t = 0; t < tmax; ++t) {
    for (std::int32_t l = 0; l < n; ++l) {
      for (std::int32_t p = 0; p < np; ++p) {
        std::vector<Lit> cl{~mp(t, l, p), mp(t + 1, l, p)};
        for (PhysicalQubit q : g.neighbors(p)) cl.push_back(mp(t + 1, l, q));
        s.add_clause(cl);
        for (PhysicalQubit q : g.neighbors(p)) {
          for (std::int32_t l2 = 0; l2 < n; ++l2) {
            if (l2 == l) continue;
            // l moves p->q and l2 was at q  =>  l2 moves q->p.
            s.add_clause({~mp(t, l, p), ~mp(t + 1, l, q), ~mp(t, l2, q),
                          mp(t + 1, l2, p)});
          }
        }
      }
    }
  }

  // Optional SWAP budget: indicator per (t, directed edge p<q).
  if (swap_budget >= 0) {
    std::vector<Lit> movers;
    for (std::int32_t t = 0; t < tmax; ++t) {
      for (std::int32_t p = 0; p < np; ++p) {
        for (PhysicalQubit q : g.neighbors(p)) {
          if (q < p) continue;
          const std::int32_t v = s.new_var();
          e.move_vars.push_back(v);
          movers.push_back(Lit::pos(v));
          for (std::int32_t l = 0; l < n; ++l) {
            s.add_ternary(~mp(t, l, p), ~mp(t + 1, l, q), Lit::pos(v));
            s.add_ternary(~mp(t, l, q), ~mp(t + 1, l, p), Lit::pos(v));
          }
        }
      }
    }
    sat::add_at_most_k(s, movers, swap_budget);
  }
  return e;
}

struct Extracted {
  MappedCircuit mapped;
  std::int64_t swaps = 0;
};

Extracted extract(const Solver& s, const Encoding& e, const Circuit& logical,
                  const CouplingGraph& g, std::int32_t layers) {
  const std::int32_t n = logical.num_qubits();
  const std::int32_t np = g.num_qubits();
  auto mapping_at = [&](std::int32_t t) {
    std::vector<PhysicalQubit> m(n, -1);
    for (std::int32_t l = 0; l < n; ++l) {
      for (std::int32_t p = 0; p < np; ++p) {
        if (s.value(e.map_var[t][l][p])) m[l] = p;
      }
    }
    return m;
  };

  Extracted out;
  out.mapped.circuit = Circuit(np);
  out.mapped.initial = mapping_at(0);
  for (std::int32_t t = 0; t <= layers; ++t) {
    const auto now = mapping_at(t);
    for (std::size_t i = 0; i < logical.size(); ++i) {
      if (!s.value(e.exec_var[t][i])) continue;
      Gate hw = logical[i];
      hw.q0 = now[logical[i].q0];
      if (hw.two_qubit()) hw.q1 = now[logical[i].q1];
      out.mapped.circuit.append(hw);
    }
    if (t == layers) break;
    const auto next = mapping_at(t + 1);
    for (std::int32_t l = 0; l < n; ++l) {
      if (next[l] == now[l]) continue;
      // Emit each transposition once (from the smaller physical id).
      if (now[l] < next[l]) {
        out.mapped.circuit.append(Gate::swap(now[l], next[l]));
        ++out.swaps;
      }
    }
  }
  out.mapped.final_mapping = mapping_at(layers);
  return out;
}

}  // namespace

SatmapResult satmap_route(const Circuit& logical, const CouplingGraph& g,
                          const SatmapOptions& opts) {
  require(logical.num_qubits() <= g.num_qubits(),
          "satmap: more logical than physical qubits");
  WallTimer timer;
  Deadline deadline(opts.time_budget_seconds);
  SatmapResult result;
  const auto cancelled = [&]() {
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_relaxed);
  };

  // Depth lower bound: critical path of the strict DAG.
  const Dag dag = build_strict_dag(logical);
  std::vector<std::int32_t> cp(dag.size(), 1);
  const auto topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    for (auto succ : dag.succ[*it]) cp[*it] = std::max(cp[*it], cp[succ] + 1);
  }
  std::int32_t lower = 1;
  for (auto c : cp) lower = std::max(lower, c);

  for (std::int32_t layers = lower; layers <= opts.max_layers; ++layers) {
    if (cancelled()) {
      result.cancelled = true;
      break;
    }
    if (deadline.expired()) {
      result.timed_out = true;
      break;
    }
    Solver solver;
    const Encoding enc = build(solver, logical, g, layers, -1);
    // The budget can run out *during* build(); Solver::solve treats a
    // non-positive budget as unlimited, so it must not be forwarded as 0.
    const double remaining = deadline.remaining_seconds();
    if (remaining <= 0.0) {
      result.timed_out = true;
      break;
    }
    const Result r = solver.solve(remaining, opts.cancel);
    if (r == Result::kTimeout) {
      // The solver reports kTimeout for both outcomes; the flag says which.
      if (cancelled()) {
        result.cancelled = true;
      } else {
        result.timed_out = true;
      }
      break;
    }
    if (r == Result::kUnsat) continue;

    Extracted best = extract(solver, enc, logical, g, layers);
    result.solved = true;
    result.layers = layers;

    if (opts.minimize_swaps) {
      std::int64_t budget = best.swaps - 1;
      while (budget >= 0 && !deadline.expired() && !cancelled()) {
        Solver s2;
        const Encoding enc2 =
            build(s2, logical, g, layers, static_cast<std::int32_t>(budget));
        const double rem2 = deadline.remaining_seconds();
        if (rem2 <= 0.0) break;  // keep the depth-minimal schedule found
        const Result r2 = s2.solve(rem2, opts.cancel);
        if (r2 != Result::kSat) break;
        best = extract(s2, enc2, logical, g, layers);
        budget = best.swaps - 1;
      }
    }
    result.mapped = std::move(best.mapped);
    result.swaps = best.swaps;
    break;
  }
  if (!result.solved && !result.timed_out && !result.cancelled) {
    result.timed_out = true;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qfto
