#include "baseline/satmap.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "circuit/dag.hpp"
#include "circuit/stats.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "sat/cardinality.hpp"
#include "sat/federation/portfolio.hpp"

namespace qfto {

namespace {

using sat::Lit;
using sat::Result;
using sat::SolverInterface;

// Per-step constraint machinery shared by both search drivers, so the
// incremental and monolithic paths can never drift apart on encoding
// content: map_var[t][l][p], exec_var[t][i], sched_var[t][i] (prefix of
// exec), grown one time step at a time. Only the horizon-completion
// constraint ("every gate executes by T") differs — gated behind an
// activation literal on the incremental path, asserted outright on the
// monolithic one — plus the SWAP bound (assumption-tightened counter vs
// baked-in at-most-k).
class Encoder {
 public:
  /// `dag` is the strict DAG of `logical` (built once by satmap_route and
  /// shared across probes — the monolithic driver constructs an Encoder per
  /// probe).
  Encoder(SolverInterface& s, const Circuit& logical, const CouplingGraph& g,
          const Dag& dag)
      : s_(s),
        logical_(logical),
        g_(g),
        n_(logical.num_qubits()),
        np_(g.num_qubits()),
        ng_(static_cast<std::int32_t>(logical.size())) {
    for (std::size_t i = 0; i < dag.size(); ++i) {
      for (auto j : dag.succ[i]) {
        dep_edges_.emplace_back(static_cast<std::int32_t>(i), j);
      }
    }
    touching_.resize(n_);
    for (std::int32_t l = 0; l < n_; ++l) {
      for (std::int32_t i = 0; i < ng_; ++i) {
        if (logical_[i].touches(l)) touching_[l].push_back(i);
      }
    }
  }

  /// Encodes time steps 0..layers (idempotent for layers already covered).
  void extend_to(std::int32_t layers) {
    while (static_cast<std::int32_t>(exec_var_.size()) <= layers) {
      add_step(static_cast<std::int32_t>(exec_var_.size()));
    }
  }

  /// Monolithic horizon: every gate executes within 0..layers, outright.
  void require_horizon(std::int32_t layers) {
    for (std::int32_t i = 0; i < ng_; ++i) {
      std::vector<Lit> times;
      for (std::int32_t t = 0; t <= layers; ++t) times.push_back(ex(t, i));
      s_.add_clause(times);
    }
  }

  /// Incremental horizon: a fresh activation literal `a` with
  /// a -> (gate i executes within 0..layers) for every gate. Solve under
  /// the assumption `a`; retire() it before gating the next horizon.
  Lit gate_horizon(std::int32_t layers) {
    const Lit a = Lit::pos(s_.new_var());
    for (std::int32_t i = 0; i < ng_; ++i) {
      std::vector<Lit> clause{~a};
      for (std::int32_t t = 0; t <= layers; ++t) clause.push_back(ex(t, i));
      s_.add_clause(clause);
    }
    return a;
  }

  /// Permanently deactivates a retired horizon's completion clauses (sound:
  /// larger horizons only weaken the constraint).
  void retire(Lit activation) { s_.add_unit(~activation); }

  /// Monolithic SWAP bound: move indicators over transitions 0..layers-1
  /// with a baked-in sequential-counter at-most-`budget`.
  void bound_swaps(std::int32_t layers, std::int32_t budget) {
    sat::add_at_most_k(s_, movers(layers), budget);
  }

  /// Incremental SWAP bound: the cached move indicators feeding a
  /// sequential counter of width `width`, returning the unary output chain
  /// s_j = "at least j+1 SWAPs across the schedule". Assuming ~s_b enforces
  /// at-most-b, so one encoding serves every budget probe at this horizon —
  /// and when the descent drops far below `width`, the caller re-requests a
  /// narrower counter over the same movers (old registers go quiescent:
  /// nothing constrains them once their outputs stop being assumed).
  std::vector<Lit> swap_outputs(std::int32_t layers, std::int32_t width) {
    const auto r = sat::add_sequential_counter(s_, movers(layers), width);
    return r.back();  // "at least j+1 SWAPs across the whole schedule"
  }

  std::int32_t map_var(std::int32_t t, std::int32_t l, std::int32_t p) const {
    return map_var_[t][l][p];
  }
  std::int32_t exec_var(std::int32_t t, std::int32_t i) const {
    return exec_var_[t][i];
  }

 private:
  Lit mp(std::int32_t t, std::int32_t l, std::int32_t p) const {
    return Lit::pos(map_var_[t][l][p]);
  }
  Lit ex(std::int32_t t, std::int32_t i) const {
    return Lit::pos(exec_var_[t][i]);
  }
  Lit sc(std::int32_t t, std::int32_t i) const {
    return Lit::pos(sched_var_[t][i]);
  }

  void add_step(std::int32_t t) {
    auto& row = map_var_.emplace_back();
    row.assign(n_, std::vector<std::int32_t>(np_));
    for (std::int32_t l = 0; l < n_; ++l) {
      for (std::int32_t p = 0; p < np_; ++p) row[l][p] = s_.new_var();
    }
    auto& exec = exec_var_.emplace_back();
    auto& sched = sched_var_.emplace_back();
    exec.resize(ng_);
    sched.resize(ng_);
    for (std::int32_t i = 0; i < ng_; ++i) {
      exec[i] = s_.new_var();
      sched[i] = s_.new_var();
    }

    // Mapping is an injection at this step.
    for (std::int32_t l = 0; l < n_; ++l) {
      std::vector<Lit> lits;
      for (std::int32_t p = 0; p < np_; ++p) lits.push_back(mp(t, l, p));
      sat::add_exactly_one(s_, lits);
    }
    for (std::int32_t p = 0; p < np_; ++p) {
      std::vector<Lit> col;
      for (std::int32_t l = 0; l < n_; ++l) col.push_back(mp(t, l, p));
      sat::add_at_most_one(s_, col);
    }

    // A gate executes at most once across time; prefix variables are
    // monotone and tied to execution. (The at-least-once half is the
    // horizon-completion constraint.)
    for (std::int32_t i = 0; i < ng_; ++i) {
      for (std::int32_t u = 0; u < t; ++u) {
        s_.add_binary(~ex(u, i), ~ex(t, i));
      }
      if (t == 0) {
        s_.add_implication(ex(0, i), sc(0, i));
        s_.add_implication(sc(0, i), ex(0, i));
      } else {
        s_.add_implication(ex(t, i), sc(t, i));
        s_.add_implication(sc(t - 1, i), sc(t, i));
        // sched[t] -> sched[t-1] or exec[t]
        s_.add_ternary(~sc(t, i), sc(t - 1, i), ex(t, i));
      }
    }

    // Strict dependencies: exec[j][t] -> sched[i][t] (shared-qubit gates can
    // never share a layer thanks to the per-qubit exclusion below, so this
    // yields strictly-before).
    for (const auto& [i, j] : dep_edges_) {
      s_.add_implication(ex(t, j), sc(t, i));
    }

    // Per-qubit per-layer exclusion.
    for (std::int32_t l = 0; l < n_; ++l) {
      std::vector<Lit> lits;
      for (auto i : touching_[l]) lits.push_back(ex(t, i));
      sat::add_at_most_one(s_, lits);
    }

    // Adjacency for two-qubit gates.
    for (std::int32_t i = 0; i < ng_; ++i) {
      const Gate& gate = logical_[i];
      if (!gate.two_qubit()) continue;
      for (std::int32_t p = 0; p < np_; ++p) {
        std::vector<Lit> cl{~ex(t, i), ~mp(t, gate.q0, p)};
        for (PhysicalQubit q : g_.neighbors(p)) cl.push_back(mp(t, gate.q1, q));
        s_.add_clause(cl);
      }
    }

    // Movement: between steps a qubit stays or crosses one edge; crossings
    // are swaps (the displaced occupant moves the other way).
    if (t > 0) {
      for (std::int32_t l = 0; l < n_; ++l) {
        for (std::int32_t p = 0; p < np_; ++p) {
          std::vector<Lit> cl{~mp(t - 1, l, p), mp(t, l, p)};
          for (PhysicalQubit q : g_.neighbors(p)) cl.push_back(mp(t, l, q));
          s_.add_clause(cl);
          for (PhysicalQubit q : g_.neighbors(p)) {
            for (std::int32_t l2 = 0; l2 < n_; ++l2) {
              if (l2 == l) continue;
              // l moves p->q and l2 was at q  =>  l2 moves q->p.
              s_.add_clause({~mp(t - 1, l, p), ~mp(t, l, q), ~mp(t - 1, l2, q),
                             mp(t, l2, p)});
            }
          }
        }
      }
    }
  }

  /// Indicator per (transition, undirected edge p<q): some qubit crossed
  /// it. Built once per horizon and cached — counters of different widths
  /// share the same indicators.
  const std::vector<Lit>& movers(std::int32_t layers) {
    require(movers_.empty() || movers_layers_ == layers,
            "movers: horizon changed after counters were built");
    if (!movers_.empty()) return movers_;
    movers_layers_ = layers;
    for (std::int32_t t = 0; t < layers; ++t) {
      for (std::int32_t p = 0; p < np_; ++p) {
        for (PhysicalQubit q : g_.neighbors(p)) {
          if (q < p) continue;
          const Lit v = Lit::pos(s_.new_var());
          movers_.push_back(v);
          for (std::int32_t l = 0; l < n_; ++l) {
            s_.add_ternary(~mp(t, l, p), ~mp(t + 1, l, q), v);
            s_.add_ternary(~mp(t, l, q), ~mp(t + 1, l, p), v);
          }
        }
      }
    }
    return movers_;
  }

  SolverInterface& s_;
  const Circuit& logical_;
  const CouplingGraph& g_;
  std::int32_t n_, np_, ng_;
  std::vector<std::pair<std::int32_t, std::int32_t>> dep_edges_;
  std::vector<std::vector<std::int32_t>> touching_;
  std::vector<std::vector<std::vector<std::int32_t>>> map_var_;
  std::vector<std::vector<std::int32_t>> exec_var_;
  std::vector<std::vector<std::int32_t>> sched_var_;
  std::vector<Lit> movers_;
  std::int32_t movers_layers_ = -1;
};

/// The probe solver: a bare registry backend, or — with portfolio racing on
/// — N diversified lanes behind one PortfolioSolver, fed the identical
/// encoding. Both drivers create their solvers through this one choke point
/// so racing composes with either search strategy.
std::unique_ptr<SolverInterface> make_search_solver(const SatmapOptions& opts) {
  if (!opts.portfolio || opts.lanes <= 1) return sat::make_solver(opts.solver);
  sat::PortfolioOptions popts;
  popts.lanes = opts.lanes;
  popts.backends = opts.portfolio_backends.empty()
                       ? std::vector<std::string>{opts.solver}
                       : opts.portfolio_backends;
  return std::make_unique<sat::PortfolioSolver>(popts);
}

/// Winning-lane label for provenance; empty for non-portfolio solvers.
std::string solver_winner(const SolverInterface& solver) {
  const auto* pf = dynamic_cast<const sat::PortfolioSolver*>(&solver);
  return pf != nullptr ? pf->winner() : std::string();
}

struct Extracted {
  MappedCircuit mapped;
  std::int64_t swaps = 0;
};

Extracted extract(const SolverInterface& s, const Encoder& e,
                  const Circuit& logical, const CouplingGraph& g,
                  std::int32_t layers) {
  const std::int32_t n = logical.num_qubits();
  const std::int32_t np = g.num_qubits();
  auto mapping_at = [&](std::int32_t t) {
    std::vector<PhysicalQubit> m(n, -1);
    for (std::int32_t l = 0; l < n; ++l) {
      for (std::int32_t p = 0; p < np; ++p) {
        if (s.value(e.map_var(t, l, p))) m[l] = p;
      }
    }
    return m;
  };

  Extracted out;
  out.mapped.circuit = Circuit(np);
  out.mapped.initial = mapping_at(0);
  std::vector<std::int32_t> occupant(np, -1);  // physical -> logical at t
  for (std::int32_t t = 0; t <= layers; ++t) {
    const auto now = mapping_at(t);
    for (std::size_t i = 0; i < logical.size(); ++i) {
      if (!s.value(e.exec_var(t, static_cast<std::int32_t>(i)))) continue;
      Gate hw = logical[i];
      hw.q0 = now[logical[i].q0];
      if (hw.two_qubit()) hw.q1 = now[logical[i].q1];
      out.mapped.circuit.append(hw);
    }
    if (t == layers) break;
    const auto next = mapping_at(t + 1);
    // The movement constraints admit exactly two kinds of move: a paired
    // exchange (the displaced occupant crosses back) and a slide into an
    // *empty* cell (n < np). Emit one SWAP per exchange (from the smaller
    // physical id) and one per slide — dropping slides would teleport the
    // qubit out from under the checker's occupancy tracking.
    std::fill(occupant.begin(), occupant.end(), -1);
    for (std::int32_t l = 0; l < n; ++l) occupant[now[l]] = l;
    for (std::int32_t l = 0; l < n; ++l) {
      if (next[l] == now[l]) continue;
      const std::int32_t partner = occupant[next[l]];
      if (partner >= 0 && now[l] > next[l]) continue;  // the pair's other half
      out.mapped.circuit.append(Gate::swap(now[l], next[l]));
      ++out.swaps;
    }
  }
  out.mapped.final_mapping = mapping_at(layers);
  return out;
}

struct SearchContext {
  const Circuit& logical;
  const CouplingGraph& g;
  const Dag& dag;
  const SatmapOptions& opts;
  std::int32_t lower;
  Deadline& deadline;

  bool cancelled() const {
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_relaxed);
  }
};

/// The paper-faithful driver: a fresh solver and a full re-encode for every
/// deepening layer and every SWAP-budget probe. Kept as the differential
/// oracle for the incremental driver and as the bench_sat baseline.
void route_monolithic(const SearchContext& ctx, SatmapResult& result) {
  const SatmapOptions& opts = ctx.opts;
  std::unique_ptr<SolverInterface> last_solver;  // kept alive for dump_cnf
  // The budget can run out *during* the (expensive) per-probe re-encode, and
  // SolverInterface::solve treats a non-positive budget as unlimited — so
  // the remaining budget is measured after encoding, and an exhausted one
  // comes back as kTimeout instead of reaching the solver.
  const auto probe = [&](std::int32_t layers, std::int32_t swap_budget) {
    last_solver = make_search_solver(opts);
    Encoder enc(*last_solver, ctx.logical, ctx.g, ctx.dag);
    enc.extend_to(layers);
    enc.require_horizon(layers);
    if (swap_budget >= 0) enc.bound_swaps(layers, swap_budget);
    const double remaining = ctx.deadline.remaining_seconds();
    const Result r =
        ctx.deadline.expired()
            ? Result::kTimeout
            : last_solver->solve({}, remaining, opts.cancel);
    result.stats += last_solver->stats();
    const std::string w = solver_winner(*last_solver);
    if (!w.empty()) result.winner = w;
    return std::make_pair(
        r, r == Result::kSat
               ? extract(*last_solver, enc, ctx.logical, ctx.g, layers)
               : Extracted{});
  };

  for (std::int32_t layers = ctx.lower; layers <= opts.max_layers; ++layers) {
    if (ctx.cancelled()) {
      result.cancelled = true;
      break;
    }
    if (ctx.deadline.expired()) {
      result.timed_out = true;
      break;
    }
    auto [r, best] = probe(layers, -1);
    if (r == Result::kTimeout) {
      // The solver reports kTimeout for both outcomes; the flag says which.
      if (ctx.cancelled()) {
        result.cancelled = true;
      } else {
        result.timed_out = true;
      }
      break;
    }
    if (r == Result::kUnsat) continue;

    result.solved = true;
    result.layers = layers;

    if (opts.minimize_swaps) {
      std::int64_t budget = best.swaps - 1;
      while (budget >= 0 && !ctx.deadline.expired() && !ctx.cancelled()) {
        auto [r2, tighter] =
            probe(layers, static_cast<std::int32_t>(budget));
        if (r2 != Result::kSat) break;  // keep the depth-minimal schedule
        best = std::move(tighter);
        budget = best.swaps - 1;
      }
    }
    result.mapped = std::move(best.mapped);
    result.swaps = best.swaps;
    break;
  }
  if (!opts.dump_cnf_path.empty() && last_solver != nullptr &&
      !last_solver->dump_dimacs(opts.dump_cnf_path)) {
    std::fprintf(stderr, "satmap: cannot write CNF dump to '%s'\n",
                 opts.dump_cnf_path.c_str());
  }
}

/// The incremental driver: ONE solver instance carries the whole search.
/// The max-layers skeleton grows step by step, each horizon's completion
/// constraint rides a fresh activation literal assumed for that probe (and
/// retired with a unit afterwards), and SWAP minimization tightens one
/// sequential-counter output chain with assumptions — learnt clauses, saved
/// phases and variable activity persist across every probe instead of being
/// rebuilt and thrown away.
void route_incremental(const SearchContext& ctx, SatmapResult& result) {
  const SatmapOptions& opts = ctx.opts;
  const std::unique_ptr<SolverInterface> solver = make_search_solver(opts);
  Encoder enc(*solver, ctx.logical, ctx.g, ctx.dag);
  Lit active{-1};
  std::vector<Lit> assumptions;  // the in-flight probe's, for dump_cnf

  for (std::int32_t layers = ctx.lower; layers <= opts.max_layers; ++layers) {
    if (ctx.cancelled()) {
      result.cancelled = true;
      break;
    }
    if (ctx.deadline.expired()) {
      result.timed_out = true;
      break;
    }
    if (active.code != -1) enc.retire(active);
    enc.extend_to(layers);
    active = enc.gate_horizon(layers);
    assumptions = {active};
    const double remaining = ctx.deadline.remaining_seconds();
    if (remaining <= 0.0) {
      result.timed_out = true;
      break;
    }
    const Result r = solver->solve(assumptions, remaining, opts.cancel);
    if (r == Result::kTimeout) {
      if (ctx.cancelled()) {
        result.cancelled = true;
      } else {
        result.timed_out = true;
      }
      break;
    }
    if (r == Result::kUnsat) continue;

    Extracted best = extract(*solver, enc, ctx.logical, ctx.g, layers);
    result.solved = true;
    result.layers = layers;

    if (opts.minimize_swaps && best.swaps > 0) {
      // A counter at the found horizon, wide enough for the first model's
      // SWAP count; every budget probe below is then a handful of
      // assumptions. When the feasible bound drops far below the current
      // width (models often shed many SWAPs per probe), re-encode a
      // narrower counter over the same cached move indicators — the wide
      // one's registers are dead weight the solver would otherwise branch
      // on. The narrow width always covers `hi`, so every future probe
      // (budget <= hi-1) stays expressible.
      //
      // Core-guided descent (opts.core_guided): the minimum lives in
      // [lo, hi] — `hi` feasible (best model), everything below `lo`
      // refuted. Instead of stepping hi-1, hi-2, ... probe the midpoint,
      // and commit every refutation as a *permanent* clause
      // (¬active ∨ at_least[b]): the horizon provably needs > b SWAPs, so
      // the learnt fact survives later probes — and on a portfolio run is
      // immediately shared with every lane, not just the one that found
      // it. The search stays complete, so the minimal SWAP count is
      // unchanged; only the probe count shrinks (O(log) vs O(n) when the
      // first model is far from optimal).
      std::int32_t width = static_cast<std::int32_t>(best.swaps);
      std::vector<Lit> at_least = enc.swap_outputs(layers, width);
      std::int64_t lo = 0;            // minimum is known to be >= lo
      std::int64_t hi = best.swaps;   // feasible: best realizes hi
      while (lo < hi && !ctx.deadline.expired() && !ctx.cancelled()) {
        const std::int64_t budget =
            opts.core_guided ? lo + (hi - 1 - lo) / 2 : hi - 1;
        if (2 * hi <= width) {
          width = static_cast<std::int32_t>(hi);
          at_least = enc.swap_outputs(layers, width);
        }
        // Assume the whole upper output chain false, not just ~s_budget:
        // "at most b" makes every higher register gratuitous (the counter
        // is one-directional, so a model never needs them true), and
        // pinning them keeps the solver from branching on dead counters.
        assumptions = {active};
        for (std::int32_t j = static_cast<std::int32_t>(budget); j < width;
             ++j) {
          assumptions.push_back(~at_least[j]);
        }
        // Measured after any counter re-encode so its cost stays inside the
        // budget; solve() treats non-positive budgets as unlimited.
        const double rem2 = ctx.deadline.remaining_seconds();
        if (ctx.deadline.expired() || rem2 <= 0.0) {
          break;  // keep the depth-minimal schedule found
        }
        const Result r2 = solver->solve(assumptions, rem2, opts.cancel);
        if (r2 == Result::kSat) {
          best = extract(*solver, enc, ctx.logical, ctx.g, layers);
          hi = best.swaps;
        } else if (r2 == Result::kUnsat) {
          lo = budget + 1;
          solver->add_clause(
              {~active, at_least[static_cast<std::int32_t>(budget)]});
        } else {
          break;  // timeout/cancel: keep the best schedule found
        }
      }
    }
    result.mapped = std::move(best.mapped);
    result.swaps = best.swaps;
    break;
  }
  result.stats = solver->stats();
  result.winner = solver_winner(*solver);
  if (!opts.dump_cnf_path.empty() &&
      !solver->dump_dimacs(opts.dump_cnf_path, assumptions)) {
    std::fprintf(stderr, "satmap: cannot write CNF dump to '%s'\n",
                 opts.dump_cnf_path.c_str());
  }
}

}  // namespace

SatmapResult satmap_route(const Circuit& logical, const CouplingGraph& g,
                          const SatmapOptions& opts) {
  require(logical.num_qubits() <= g.num_qubits(),
          "satmap: more logical than physical qubits");
  WallTimer timer;
  Deadline deadline(opts.time_budget_seconds);
  SatmapResult result;

  // Depth lower bound: critical path of the strict DAG.
  const Dag dag = build_strict_dag(logical);
  std::vector<std::int32_t> cp(dag.size(), 1);
  const auto topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    for (auto succ : dag.succ[*it]) cp[*it] = std::max(cp[*it], cp[succ] + 1);
  }
  std::int32_t lower = 1;
  for (auto c : cp) lower = std::max(lower, c);

  SearchContext ctx{logical, g, dag, opts, lower, deadline};
  if (opts.incremental) {
    route_incremental(ctx, result);
  } else {
    route_monolithic(ctx, result);
  }
  if (!result.solved && !result.timed_out && !result.cancelled) {
    result.timed_out = true;
  }
  result.seconds = timer.seconds();
  if (opts.stats_out != nullptr) *opts.stats_out = result.stats;
  if (opts.winner_out != nullptr) *opts.winner_out = result.winner;
  return result;
}

}  // namespace qfto
