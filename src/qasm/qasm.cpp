#include "qasm/qasm.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace qfto {

namespace {

std::string fmt_angle(double a) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", a);
  return buf;
}

}  // namespace

std::string to_qasm(const Circuit& c) {
  std::string out;
  out += "OPENQASM 2.0;\n";
  out += "include \"qelib1.inc\";\n";
  out += "qreg q[" + std::to_string(c.num_qubits()) + "];\n";
  for (const auto& g : c) {
    switch (g.kind) {
      case GateKind::kH:
        out += "h q[" + std::to_string(g.q0) + "];\n";
        break;
      case GateKind::kX:
        out += "x q[" + std::to_string(g.q0) + "];\n";
        break;
      case GateKind::kRz:
        out += "rz(" + fmt_angle(g.angle) + ") q[" + std::to_string(g.q0) +
               "];\n";
        break;
      case GateKind::kCPhase:
        out += "cu1(" + fmt_angle(g.angle) + ") q[" + std::to_string(g.q0) +
               "],q[" + std::to_string(g.q1) + "];\n";
        break;
      case GateKind::kSwap:
        out += "swap q[" + std::to_string(g.q0) + "],q[" +
               std::to_string(g.q1) + "];\n";
        break;
      case GateKind::kCnot:
        out += "cx q[" + std::to_string(g.q0) + "],q[" +
               std::to_string(g.q1) + "];\n";
        break;
    }
  }
  return out;
}

std::string to_qasm(const MappedCircuit& mc) {
  std::string out = "// qfto mapped circuit\n// initial mapping (logical->physical):";
  for (std::size_t l = 0; l < mc.initial.size(); ++l) {
    out += " " + std::to_string(l) + "->" + std::to_string(mc.initial[l]);
  }
  out += "\n// final mapping (logical->physical):";
  for (std::size_t l = 0; l < mc.final_mapping.size(); ++l) {
    out += " " + std::to_string(l) + "->" + std::to_string(mc.final_mapping[l]);
  }
  out += "\n";
  out += to_qasm(mc.circuit);
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::int32_t line = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("qasm parse error at line " +
                                std::to_string(line) + ": " + msg);
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char ch = text[pos];
      if (ch == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(ch))) {
        ++pos;
      } else if (ch == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool done() {
    skip_ws();
    return pos >= text.size();
  }

  bool try_literal(const std::string& lit) {
    skip_ws();
    if (text.compare(pos, lit.size(), lit) == 0) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  void expect(const std::string& lit) {
    if (!try_literal(lit)) fail("expected '" + lit + "'");
  }

  std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) fail("expected identifier");
    return text.substr(start, pos - start);
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos == start) fail("expected integer");
    return std::stoll(text.substr(start, pos - start));
  }

  double real() {
    skip_ws();
    // Accept "pi", "-pi", "pi/4", "k*pi/2^j"-free forms: we only need plain
    // decimals and the pi shorthands common in QASM emitters.
    if (try_literal("-pi")) return pi_tail(-M_PI);
    if (try_literal("pi")) return pi_tail(M_PI);
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == '-' || text[pos] == '+' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) fail("expected number");
    return std::stod(text.substr(start, pos - start));
  }

  double pi_tail(double value) {
    if (try_literal("/")) {
      const double d = real();
      if (d == 0.0) fail("division by zero in angle");
      return value / d;
    }
    if (try_literal("*")) return value * real();
    return value;
  }

  std::int32_t qubit_ref(const std::string& reg, std::int32_t n) {
    const std::string name = ident();
    if (name != reg) fail("unknown register '" + name + "'");
    expect("[");
    const std::int64_t idx = integer();
    expect("]");
    if (idx < 0 || idx >= n) fail("qubit index out of range");
    return static_cast<std::int32_t>(idx);
  }
};

}  // namespace

Circuit from_qasm(const std::string& text) {
  Parser p{text};
  p.expect("OPENQASM");
  p.expect("2.0");
  p.expect(";");
  if (p.try_literal("include")) {
    p.expect("\"qelib1.inc\"");
    p.expect(";");
  }
  p.expect("qreg");
  const std::string reg = p.ident();
  p.expect("[");
  const std::int64_t n = p.integer();
  p.expect("]");
  p.expect(";");
  if (n <= 0 || n > (1 << 20)) p.fail("bad register size");

  Circuit c(static_cast<std::int32_t>(n));
  while (!p.done()) {
    const std::string op = p.ident();
    if (op == "h" || op == "x") {
      const auto q = p.qubit_ref(reg, c.num_qubits());
      c.append(op == "h" ? Gate::h(q) : Gate::x(q));
    } else if (op == "rz") {
      p.expect("(");
      const double a = p.real();
      p.expect(")");
      const auto q = p.qubit_ref(reg, c.num_qubits());
      c.append(Gate::rz(q, a));
    } else if (op == "cu1" || op == "cp") {
      p.expect("(");
      const double a = p.real();
      p.expect(")");
      const auto q0 = p.qubit_ref(reg, c.num_qubits());
      p.expect(",");
      const auto q1 = p.qubit_ref(reg, c.num_qubits());
      c.append(Gate::cphase(q0, q1, a));
    } else if (op == "swap" || op == "cx") {
      const auto q0 = p.qubit_ref(reg, c.num_qubits());
      p.expect(",");
      const auto q1 = p.qubit_ref(reg, c.num_qubits());
      c.append(op == "swap" ? Gate::swap(q0, q1) : Gate::cnot(q0, q1));
    } else if (op == "barrier") {
      while (!p.try_literal(";")) {
        p.qubit_ref(reg, c.num_qubits());
        p.try_literal(",");
      }
      continue;
    } else {
      p.fail("unsupported gate '" + op + "'");
    }
    p.expect(";");
  }
  return c;
}

}  // namespace qfto
