#include "qasm/qasm.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace qfto {

namespace {

std::string fmt_angle(double a) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", a);
  return buf;
}

}  // namespace

std::string to_qasm(const Circuit& c) {
  std::string out;
  out += "OPENQASM 2.0;\n";
  out += "include \"qelib1.inc\";\n";
  out += "qreg q[" + std::to_string(c.num_qubits()) + "];\n";
  for (const auto& g : c) {
    switch (g.kind) {
      case GateKind::kH:
        out += "h q[" + std::to_string(g.q0) + "];\n";
        break;
      case GateKind::kX:
        out += "x q[" + std::to_string(g.q0) + "];\n";
        break;
      case GateKind::kRz:
        out += "rz(" + fmt_angle(g.angle) + ") q[" + std::to_string(g.q0) +
               "];\n";
        break;
      case GateKind::kCPhase:
        out += "cu1(" + fmt_angle(g.angle) + ") q[" + std::to_string(g.q0) +
               "],q[" + std::to_string(g.q1) + "];\n";
        break;
      case GateKind::kSwap:
        out += "swap q[" + std::to_string(g.q0) + "],q[" +
               std::to_string(g.q1) + "];\n";
        break;
      case GateKind::kCnot:
        out += "cx q[" + std::to_string(g.q0) + "],q[" +
               std::to_string(g.q1) + "];\n";
        break;
    }
  }
  return out;
}

std::string to_qasm(const MappedCircuit& mc) {
  std::string out = "// qfto mapped circuit\n// initial mapping (logical->physical):";
  for (std::size_t l = 0; l < mc.initial.size(); ++l) {
    out += " " + std::to_string(l) + "->" + std::to_string(mc.initial[l]);
  }
  out += "\n// final mapping (logical->physical):";
  for (std::size_t l = 0; l < mc.final_mapping.size(); ++l) {
    out += " " + std::to_string(l) + "->" + std::to_string(mc.final_mapping[l]);
  }
  out += "\n";
  out += to_qasm(mc.circuit);
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::int32_t line = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("qasm parse error at line " +
                                std::to_string(line) + ": " + msg);
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char ch = text[pos];
      if (ch == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(ch))) {
        ++pos;
      } else if (ch == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool done() {
    skip_ws();
    return pos >= text.size();
  }

  bool try_literal(const std::string& lit) {
    skip_ws();
    if (text.compare(pos, lit.size(), lit) == 0) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  void expect(const std::string& lit) {
    if (!try_literal(lit)) fail("expected '" + lit + "'");
  }

  std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) fail("expected identifier");
    return text.substr(start, pos - start);
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos == start) fail("expected integer");
    const std::string tok = text.substr(start, pos - start);
    // std::stoll throws raw std::out_of_range on oversized literals (e.g.
    // qreg q[99999999999999999999]) and raw std::invalid_argument on a lone
    // sign; both must surface as the documented positioned error.
    std::int64_t value = 0;
    try {
      value = std::stoll(tok);
    } catch (const std::out_of_range&) {
      fail("integer out of range '" + tok + "'");
    } catch (const std::invalid_argument&) {
      fail("expected integer");
    }
    return value;
  }

  double real() {
    skip_ws();
    // Accept "pi", "-pi", "pi/4", "k*pi/2^j"-free forms: we only need plain
    // decimals and the pi shorthands common in QASM emitters.
    if (try_literal("-pi")) return pi_tail(-M_PI);
    if (try_literal("pi")) return pi_tail(M_PI);
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == '-' || text[pos] == '+' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) fail("expected number");
    const std::string tok = text.substr(start, pos - start);
    // The scan above is permissive ('-'/'+'/'.'/'e' anywhere), so std::stod
    // must both not throw raw (1e99999 -> out_of_range, "-" ->
    // invalid_argument) and consume the whole token — otherwise "1.5-2"
    // silently parses as 1.5 and "1e+" as 1.
    double value = 0.0;
    std::size_t used = 0;
    try {
      value = std::stod(tok, &used);
    } catch (const std::out_of_range&) {
      fail("number out of range '" + tok + "'");
    } catch (const std::invalid_argument&) {
      fail("expected number");
    }
    if (used != tok.size()) fail("malformed number '" + tok + "'");
    return value;
  }

  double pi_tail(double value) {
    if (try_literal("/")) {
      const double d = real();
      if (d == 0.0) fail("division by zero in angle");
      return finite_angle(value / d);
    }
    if (try_literal("*")) return finite_angle(value * real());
    return value;
  }

  /// pi/x and pi*x can overflow to infinity even though both operands
  /// parsed (pi*1e308, pi/1e-308); a non-finite angle would emit as
  /// "rz(inf)" and break the parse->emit->reparse round trip.
  double finite_angle(double value) {
    if (!std::isfinite(value)) fail("angle expression out of range");
    return value;
  }

  std::int32_t qubit_ref(const std::string& reg, std::int32_t n) {
    const std::string name = ident();
    if (name != reg) fail("unknown register '" + name + "'");
    expect("[");
    const std::int64_t idx = integer();
    expect("]");
    if (idx < 0 || idx >= n) fail("qubit index out of range");
    return static_cast<std::int32_t>(idx);
  }
};

}  // namespace

Circuit from_qasm(const std::string& text) {
  Parser p{text};
  p.expect("OPENQASM");
  p.expect("2.0");
  p.expect(";");
  if (p.try_literal("include")) {
    p.expect("\"qelib1.inc\"");
    p.expect(";");
  }
  p.expect("qreg");
  const std::string reg = p.ident();
  p.expect("[");
  const std::int64_t n = p.integer();
  p.expect("]");
  p.expect(";");
  if (n <= 0 || n > (1 << 20)) p.fail("bad register size");

  Circuit c(static_cast<std::int32_t>(n));
  while (!p.done()) {
    const std::string op = p.ident();
    if (op == "h" || op == "x") {
      const auto q = p.qubit_ref(reg, c.num_qubits());
      c.append(op == "h" ? Gate::h(q) : Gate::x(q));
    } else if (op == "rz") {
      p.expect("(");
      const double a = p.real();
      p.expect(")");
      const auto q = p.qubit_ref(reg, c.num_qubits());
      c.append(Gate::rz(q, a));
    } else if (op == "cu1" || op == "cp") {
      p.expect("(");
      const double a = p.real();
      p.expect(")");
      const auto q0 = p.qubit_ref(reg, c.num_qubits());
      p.expect(",");
      const auto q1 = p.qubit_ref(reg, c.num_qubits());
      c.append(Gate::cphase(q0, q1, a));
    } else if (op == "swap" || op == "cx") {
      const auto q0 = p.qubit_ref(reg, c.num_qubits());
      p.expect(",");
      const auto q1 = p.qubit_ref(reg, c.num_qubits());
      c.append(op == "swap" ? Gate::swap(q0, q1) : Gate::cnot(q0, q1));
    } else if (op == "barrier") {
      // Operand list is optional: `barrier;` (whole-register barrier) is
      // legal QASM 2.0 alongside `barrier q[0],q[1];`.
      while (!p.try_literal(";")) {
        if (p.done()) p.fail("unterminated barrier");
        p.qubit_ref(reg, c.num_qubits());
        p.try_literal(",");
      }
      continue;
    } else {
      p.fail("unsupported gate '" + op + "'");
    }
    p.expect(";");
  }
  return c;
}

namespace {

/// Parses the `l->p l->p ...` pair list of one mapping header comment.
/// `line_no` positions errors at the comment's own line.
std::vector<PhysicalQubit> parse_mapping_pairs(const std::string& pairs,
                                               std::int32_t line_no) {
  Parser p{pairs};
  p.line = line_no;
  std::vector<PhysicalQubit> mapping;
  while (!p.done()) {
    const std::int64_t logical = p.integer();
    p.expect("->");
    const std::int64_t physical = p.integer();
    if (logical != static_cast<std::int64_t>(mapping.size())) {
      p.fail("mapping comment entries must be sequential from 0");
    }
    if (physical < 0 || physical > (1 << 20)) {
      p.fail("mapping comment physical index out of range");
    }
    mapping.push_back(static_cast<PhysicalQubit>(physical));
  }
  if (mapping.empty()) p.fail("empty mapping comment");
  return mapping;
}

}  // namespace

MappedCircuit mapped_from_qasm(const std::string& text) {
  // Scan the leading comment block (the only place to_qasm(MappedCircuit)
  // writes the mapping headers) before handing the body to from_qasm, which
  // treats comments as whitespace.
  std::vector<PhysicalQubit> initial, final_mapping;
  std::size_t pos = 0;
  std::int32_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++line_no;
    std::size_t begin = pos;
    while (begin < eol &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
      ++begin;
    }
    pos = eol + 1;
    if (begin == eol) continue;  // blank line
    if (text.compare(begin, 2, "//") != 0) break;  // comment block ends
    const std::string comment = text.substr(begin + 2, eol - begin - 2);
    const bool is_initial =
        comment.find("initial mapping") != std::string::npos;
    const bool is_final = comment.find("final mapping") != std::string::npos;
    if (!is_initial && !is_final) continue;
    const std::size_t colon = comment.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("qasm parse error at line " +
                                  std::to_string(line_no) +
                                  ": mapping comment missing ':'");
    }
    auto& target = is_initial ? initial : final_mapping;
    if (!target.empty()) {
      throw std::invalid_argument("qasm parse error at line " +
                                  std::to_string(line_no) +
                                  ": duplicate mapping comment");
    }
    target = parse_mapping_pairs(comment.substr(colon + 1), line_no);
  }

  MappedCircuit mc;
  mc.circuit = from_qasm(text);
  const auto n = static_cast<std::size_t>(mc.circuit.num_qubits());
  if (initial.empty() != final_mapping.empty()) {
    throw std::invalid_argument(
        "qasm parse error: mapped circuit needs both initial and final "
        "mapping comments (or neither)");
  }
  if (initial.empty()) {
    // No header: a plain kernel file maps every wire to itself.
    initial.resize(n);
    final_mapping.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      initial[i] = final_mapping[i] = static_cast<PhysicalQubit>(i);
    }
  }
  if (initial.size() != final_mapping.size()) {
    throw std::invalid_argument(
        "qasm parse error: initial and final mapping comments disagree on "
        "the number of logical qubits");
  }
  if (!valid_mapping(initial, mc.circuit.num_qubits()) ||
      !valid_mapping(final_mapping, mc.circuit.num_qubits())) {
    throw std::invalid_argument(
        "qasm parse error: mapping comment is not an injection into the "
        "register");
  }
  mc.initial = std::move(initial);
  mc.final_mapping = std::move(final_mapping);
  return mc;
}

}  // namespace qfto
