// OpenQASM 2.0 interchange: export any qfto circuit (CPHASE -> cu1,
// SWAP -> swap, H/X/RZ/CNOT -> h/x/rz/cx) and import the same subset back.
// This is how a downstream user runs our hardware kernels on their own stack
// (Qiskit, tket, simulators); round-tripping is exact for the gate alphabet
// the mappers emit.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/mapped_circuit.hpp"

namespace qfto {

/// OpenQASM 2.0 text for a circuit over one register q[0..n).
std::string to_qasm(const Circuit& c);

/// Adds the initial/final mapping as comments so the file is self-contained.
std::string to_qasm(const MappedCircuit& mc);

/// Parses the subset emitted by to_qasm (OPENQASM 2.0; qelib1.inc; gates
/// h, x, rz, cu1/cp, swap, cx on a single register; `barrier` with or
/// without an operand list). Throws std::invalid_argument with a line
/// number on malformed input — that is the only exception this parser may
/// escape with, on any byte sequence (enforced by the fuzz harness).
Circuit from_qasm(const std::string& text);

/// from_qasm plus the `// initial/final mapping` header comments
/// to_qasm(MappedCircuit) writes, making the pair a true round trip. A file
/// without mapping comments parses as an identity-mapped kernel; a file with
/// exactly one of the two comments, non-sequential entries, or a
/// non-injective mapping is rejected (std::invalid_argument, like
/// from_qasm).
MappedCircuit mapped_from_qasm(const std::string& text);

}  // namespace qfto
