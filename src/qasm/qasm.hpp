// OpenQASM 2.0 interchange: export any qfto circuit (CPHASE -> cu1,
// SWAP -> swap, H/X/RZ/CNOT -> h/x/rz/cx) and import the same subset back.
// This is how a downstream user runs our hardware kernels on their own stack
// (Qiskit, tket, simulators); round-tripping is exact for the gate alphabet
// the mappers emit.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/mapped_circuit.hpp"

namespace qfto {

/// OpenQASM 2.0 text for a circuit over one register q[0..n).
std::string to_qasm(const Circuit& c);

/// Adds the initial/final mapping as comments so the file is self-contained.
std::string to_qasm(const MappedCircuit& mc);

/// Parses the subset emitted by to_qasm (OPENQASM 2.0; qelib1.inc; gates
/// h, x, rz, cu1/cp, swap, cx on a single register). Throws
/// std::invalid_argument with a line number on malformed input.
Circuit from_qasm(const std::string& text);

}  // namespace qfto
